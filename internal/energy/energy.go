// Package energy implements the battery and radio power model of the
// sensor node.
//
// Each node has one battery and several energy consumers: the data radio
// (transmit / receive / idle-listen / sleep, plus a startup cost when
// leaving sleep), the tone radio (transmit / receive / sleep), the FEC
// codec, and an always-on MCU + sensing floor. Every draw is recorded
// against a Cause so experiments can attribute where the Joules went —
// this is how Figure 11 (energy per packet) and the ablations are built.
//
// Powers are in Watts, energies in Joules, durations in sim.Time.
package energy

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Cause labels an energy draw for accounting.
type Cause int

const (
	// DataTx is data-radio transmission airtime.
	DataTx Cause = iota
	// DataRx is data-radio reception airtime.
	DataRx
	// DataIdleListen is the data radio listening for incoming bursts
	// (cluster-head duty).
	DataIdleListen
	// DataSleep is the data radio's sleep floor.
	DataSleep
	// DataStartup is the data radio's sleep→active transition cost.
	DataStartup
	// ToneTx is tone-radio pulse transmission (cluster-head duty).
	ToneTx
	// ToneRx is tone-radio monitoring (sensor waiting/sensing).
	ToneRx
	// Codec is FEC encode/decode computation.
	Codec
	// Baseline is the MCU + sensing floor.
	Baseline
	numCauses
)

var causeNames = [...]string{
	DataTx:         "data-tx",
	DataRx:         "data-rx",
	DataIdleListen: "data-idle-listen",
	DataSleep:      "data-sleep",
	DataStartup:    "data-startup",
	ToneTx:         "tone-tx",
	ToneRx:         "tone-rx",
	Codec:          "codec",
	Baseline:       "baseline",
}

func (c Cause) String() string {
	if c >= 0 && int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("Cause(%d)", int(c))
}

// Causes returns all causes in declaration order.
func Causes() []Cause {
	out := make([]Cause, numCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// DeviceModel holds the node's power constants (Table II of the paper plus
// the DESIGN.md §4 assumptions for values the scan lost).
type DeviceModel struct {
	DataTxPower         float64  // W, data radio transmitting
	DataRxPower         float64  // W, data radio receiving
	DataIdleListenPower float64  // W, data radio idle-listening (CH duty)
	DataSleepPower      float64  // W, data radio sleeping
	DataStartupTime     sim.Time // sleep→active transition time
	DataStartupPower    float64  // W drawn during the transition

	ToneTxPower    float64 // W, tone radio emitting a pulse
	ToneRxPower    float64 // W, tone radio monitoring
	ToneSleepPower float64 // W, tone radio off

	BaselinePower float64 // W, MCU + sensing floor, always on while alive
}

// DefaultDeviceModel returns the Table II values with DESIGN.md §4 unit
// resolutions.
func DefaultDeviceModel() DeviceModel {
	return DeviceModel{
		DataTxPower:         0.66,
		DataRxPower:         0.305,
		DataIdleListenPower: 0.020,
		DataSleepPower:      3.5e-6,
		DataStartupTime:     500 * sim.Microsecond,
		DataStartupPower:    0.66,
		ToneTxPower:         0.092,
		ToneRxPower:         36e-6,
		ToneSleepPower:      1e-6,
		BaselinePower:       0.002,
	}
}

// Validate reports a configuration error, or nil.
func (d DeviceModel) Validate() error {
	type check struct {
		name string
		v    float64
	}
	for _, c := range []check{
		{"DataTxPower", d.DataTxPower},
		{"DataRxPower", d.DataRxPower},
		{"DataIdleListenPower", d.DataIdleListenPower},
		{"DataSleepPower", d.DataSleepPower},
		{"DataStartupPower", d.DataStartupPower},
		{"ToneTxPower", d.ToneTxPower},
		{"ToneRxPower", d.ToneRxPower},
		{"ToneSleepPower", d.ToneSleepPower},
		{"BaselinePower", d.BaselinePower},
	} {
		if c.v < 0 {
			return fmt.Errorf("energy: %s is negative (%v)", c.name, c.v)
		}
	}
	if d.DataStartupTime < 0 {
		return fmt.Errorf("energy: DataStartupTime is negative (%v)", d.DataStartupTime)
	}
	if d.DataSleepPower > d.DataIdleListenPower && d.DataIdleListenPower > 0 {
		return fmt.Errorf("energy: sleep power %v exceeds idle-listen power %v", d.DataSleepPower, d.DataIdleListenPower)
	}
	return nil
}

// StartupEnergy returns the energy of one sleep→active transition.
func (d DeviceModel) StartupEnergy() float64 {
	return d.DataStartupPower * d.DataStartupTime.Seconds()
}

// Battery is one node's energy ledger. A battery is Dead once the level
// reaches zero; further draws are ignored (the node has failed).
type Battery struct {
	initial   float64
	remaining float64
	recharged float64
	byCause   [numCauses]float64
	diedAt    sim.Time
	dead      bool
}

// NewBattery returns a battery holding initialJoules.
func NewBattery(initialJoules float64) *Battery {
	if initialJoules <= 0 {
		panic(fmt.Sprintf("energy: non-positive initial battery %v", initialJoules))
	}
	return &Battery{initial: initialJoules, remaining: initialJoules}
}

// Reset rewinds the battery to a fresh NewBattery(initialJoules) state
// in place: full charge, empty per-cause ledger, not dead. The reuse
// path for pooled simulation contexts.
func (b *Battery) Reset(initialJoules float64) {
	if initialJoules <= 0 {
		panic(fmt.Sprintf("energy: non-positive initial battery %v", initialJoules))
	}
	*b = Battery{initial: initialJoules, remaining: initialJoules}
}

// Initial returns the starting level in Joules.
func (b *Battery) Initial() float64 { return b.initial }

// Remaining returns the current level in Joules (never negative).
func (b *Battery) Remaining() float64 { return b.remaining }

// Consumed returns total energy drawn so far (recharges do not reduce it).
func (b *Battery) Consumed() float64 { return b.initial + b.recharged - b.remaining }

// Recharged returns total externally added energy (world top-up events).
func (b *Battery) Recharged() float64 { return b.recharged }

// Recharge adds joules to the battery — an external top-up (energy
// harvesting, battery swap, field service) driven by a world event. A dead
// battery returns to service once its level becomes positive; the
// per-cause consumption ledger is unaffected. Negative amounts panic.
func (b *Battery) Recharge(joules float64) {
	if joules < 0 {
		panic(fmt.Sprintf("energy: negative recharge %v", joules))
	}
	if joules == 0 {
		return
	}
	b.remaining += joules
	b.recharged += joules
	if b.dead && b.remaining > 0 {
		b.dead = false
	}
}

// ConsumedBy returns the energy attributed to a cause.
func (b *Battery) ConsumedBy(c Cause) float64 { return b.byCause[c] }

// Dead reports whether the battery is exhausted.
func (b *Battery) Dead() bool { return b.dead }

// DiedAt returns the time of exhaustion (meaningful only when Dead).
func (b *Battery) DiedAt() sim.Time { return b.diedAt }

// Draw removes joules attributed to cause at time now. If the draw
// exhausts the battery, the overdraft is truncated (the node dies
// mid-activity) and Draw returns false. Draws on a dead battery are
// no-ops returning false. Negative draws panic.
func (b *Battery) Draw(now sim.Time, cause Cause, joules float64) bool {
	if joules < 0 {
		panic(fmt.Sprintf("energy: negative draw %v for %v", joules, cause))
	}
	if b.dead {
		return false
	}
	if joules >= b.remaining {
		b.byCause[cause] += b.remaining
		b.remaining = 0
		b.dead = true
		b.diedAt = now
		return false
	}
	b.remaining -= joules
	b.byCause[cause] += joules
	return true
}

// DrawPower removes power×duration attributed to cause.
func (b *Battery) DrawPower(now sim.Time, cause Cause, powerW float64, dur sim.Time) bool {
	if dur < 0 {
		panic(fmt.Sprintf("energy: negative duration %v for %v", dur, cause))
	}
	return b.Draw(now, cause, powerW*dur.Seconds())
}

// Breakdown returns the per-cause consumption, descending by energy.
// Useful for reports and the caem-sim tool.
func (b *Battery) Breakdown() []CauseEnergy {
	out := make([]CauseEnergy, 0, numCauses)
	for c := Cause(0); c < numCauses; c++ {
		if b.byCause[c] > 0 {
			out = append(out, CauseEnergy{Cause: c, Joules: b.byCause[c]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Joules > out[j].Joules })
	return out
}

// CauseEnergy pairs a cause with its consumed energy.
type CauseEnergy struct {
	Cause  Cause
	Joules float64
}

func (ce CauseEnergy) String() string {
	return fmt.Sprintf("%s=%.4gJ", ce.Cause, ce.Joules)
}
