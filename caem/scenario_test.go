package caem

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestParseProtocol covers the CLI/scenario-file protocol spellings and
// the text round trip.
func TestParseProtocol(t *testing.T) {
	cases := map[string]Protocol{
		"leach": PureLEACH, "pure-LEACH": PureLEACH, "NONE": PureLEACH,
		"scheme1": Scheme1, "s1": Scheme1, "adaptive": Scheme1, "CAEM-scheme1": Scheme1,
		"scheme2": Scheme2, "s2": Scheme2, "fixed": Scheme2, "CAEM-scheme2": Scheme2,
	}
	for in, want := range cases {
		got, err := ParseProtocol(in)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseProtocol("scheme3"); err == nil {
		t.Error("unknown protocol accepted")
	}
	for _, p := range Protocols() {
		text, err := p.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		var back Protocol
		if err := back.UnmarshalText(text); err != nil || back != p {
			t.Errorf("text round trip %v -> %s -> %v (%v)", p, text, back, err)
		}
	}
	if _, err := Protocol(9).MarshalText(); err == nil {
		t.Error("unknown protocol marshalled")
	}
}

// TestConfigJSONRoundTrip: a marshalled-then-unmarshalled Config must
// produce a bit-identical run — the property scenario files rely on to
// embed config overrides.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = Scheme2
	cfg.Seed = 7
	cfg.Nodes = 30
	cfg.FieldWidthM, cfg.FieldHeightM = 55, 55
	cfg.TrafficLoad = 12
	cfg.BufferCapacity = 0 // unbounded: a meaningful zero must survive
	cfg.DurationSeconds = 60
	cfg.Advanced.DopplerHz = 4
	cfg.Advanced.MinBurst = 2

	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Config
	dec := json.NewDecoder(strings.NewReader(string(blob)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("config round trip mismatch:\n in  %+v\n out %+v", cfg, back)
	}

	want, err := Run(cfg)
	if err != nil {
		t.Fatalf("run original: %v", err)
	}
	got, err := Run(back)
	if err != nil {
		t.Fatalf("run round-tripped: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("round-tripped config produced a different run")
	}
}

// TestLibraryScenarios: every shipped scenario loads, resolves a valid
// config, and runs end to end at a short horizon.
func TestLibraryScenarios(t *testing.T) {
	lib, err := LibraryScenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) < 5 {
		t.Fatalf("library has %d scenarios, want >= 5", len(lib))
	}
	want := map[string]bool{
		"diurnal-load": false, "node-churn": false, "battery-heterogeneity": false,
		"fading-storm": false, "hotspot-cluster": false,
	}
	for _, sc := range lib {
		if _, ok := want[sc.Name]; ok {
			want[sc.Name] = true
		}
		if sc.Description == "" {
			t.Errorf("scenario %q has no description", sc.Name)
		}
		cfg, err := ScenarioConfig(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		cfg.DurationSeconds = 20
		res, err := RunScenario(sc, cfg)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if res.Generated == 0 {
			t.Errorf("%s: no traffic generated", sc.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("curated scenario %q missing from library", name)
		}
	}
	if _, err := FindScenario("node-churn"); err != nil {
		t.Errorf("FindScenario: %v", err)
	}
	if _, err := FindScenario("no-such"); err == nil {
		t.Error("FindScenario accepted a bogus name")
	}
}

// TestCampaignDeterminism: the full campaign grid must be bit-identical
// between serial (-workers=1) and parallel (-workers=N) execution — the
// property that makes grid campaigns trustworthy experiment artifacts.
func TestCampaignDeterminism(t *testing.T) {
	lib, err := LibraryScenarios()
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultConfig()
	base.DurationSeconds = 15
	seeds := []uint64{1, 2}

	base.Workers = 1
	serial, err := RunCampaign(base, lib, []Protocol{Scheme1}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	base.Workers = 4
	parallel, err := RunCampaign(base, lib, []Protocol{Scheme1}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(lib)*len(seeds) {
		t.Fatalf("grid size %d, want %d", len(serial), len(lib)*len(seeds))
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel campaign diverged from serial")
	}
	// Submission order: scenario-major, then seed.
	for i, cell := range serial {
		wantScenario := lib[i/len(seeds)].Name
		wantSeed := seeds[i%len(seeds)]
		if cell.Scenario != wantScenario || cell.Seed != wantSeed {
			t.Fatalf("cell %d = (%s, seed %d), want (%s, seed %d)",
				i, cell.Scenario, cell.Seed, wantScenario, wantSeed)
		}
	}
}

// TestScenarioChangesOutcome: the node-churn scenario's injected failures
// must visibly change the run relative to the same config without a
// scenario.
func TestScenarioChangesOutcome(t *testing.T) {
	sc, err := FindScenario("node-churn")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ScenarioConfig(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DurationSeconds = 200 // past the 150 s kill, before the 350 s revive

	static, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	churned, err := RunScenario(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if static.AliveAtEnd != cfg.Nodes {
		t.Fatalf("static baseline lost nodes (%d/%d) — shorten the horizon", static.AliveAtEnd, cfg.Nodes)
	}
	if churned.AliveAtEnd != cfg.Nodes-20 {
		t.Fatalf("churned alive = %d, want %d", churned.AliveAtEnd, cfg.Nodes-20)
	}
	if churned.Generated >= static.Generated {
		t.Fatalf("killing 20%% of sources did not reduce traffic: %d >= %d", churned.Generated, static.Generated)
	}
}
