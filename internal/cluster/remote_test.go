package cluster

import (
	"errors"
	"net/http"
	"path/filepath"
	"testing"
	"time"
)

// TestRemoteRotationOrder: table-driven unit coverage of the Remote's
// base-selection state machine — which errors advance the cursor, in
// what order, and how retarget() overrides the rotation.
func TestRemoteRotationOrder(t *testing.T) {
	unavailable := &UnavailableError{RetryAfter: time.Second}
	cases := []struct {
		name  string
		bases []string
		steps func(r *Remote)
		want  string
	}{
		{
			name:  "initial target is the first base",
			bases: []string{"http://a", "http://b", "http://c"},
			steps: func(r *Remote) {},
			want:  "http://a",
		},
		{
			name:  "rotate cycles in declaration order",
			bases: []string{"http://a", "http://b", "http://c"},
			steps: func(r *Remote) { r.rotate() },
			want:  "http://b",
		},
		{
			name:  "rotation wraps past the last base",
			bases: []string{"http://a", "http://b", "http://c"},
			steps: func(r *Remote) { r.rotate(); r.rotate(); r.rotate() },
			want:  "http://a",
		},
		{
			name:  "single base never rotates",
			bases: []string{"http://only"},
			steps: func(r *Remote) { r.rotate(); r.rotate() },
			want:  "http://only",
		},
		{
			name:  "fenced rotates",
			bases: []string{"http://a", "http://b"},
			steps: func(r *Remote) { r.checkFailover(ErrFenced) },
			want:  "http://b",
		},
		{
			name:  "unavailable rotates",
			bases: []string{"http://a", "http://b"},
			steps: func(r *Remote) { r.checkFailover(unavailable) },
			want:  "http://b",
		},
		{
			name:  "wrapped unavailable rotates",
			bases: []string{"http://a", "http://b"},
			steps: func(r *Remote) { r.checkFailover(errors.Join(errors.New("claim"), unavailable)) },
			want:  "http://b",
		},
		{
			name:  "lease-gone stays put",
			bases: []string{"http://a", "http://b"},
			steps: func(r *Remote) { r.checkFailover(ErrLeaseGone) },
			want:  "http://a",
		},
		{
			name:  "generic errors stay put",
			bases: []string{"http://a", "http://b"},
			steps: func(r *Remote) { r.checkFailover(errors.New("boom")) },
			want:  "http://a",
		},
		{
			name:  "retarget selects a known base in place",
			bases: []string{"http://a", "http://b", "http://c"},
			steps: func(r *Remote) { r.retarget("http://c") },
			want:  "http://c",
		},
		{
			name:  "retarget normalizes trailing slashes",
			bases: []string{"http://a", "http://b/"},
			steps: func(r *Remote) { r.retarget("http://b") },
			want:  "http://b",
		},
		{
			name:  "retarget adopts an unknown leader URL",
			bases: []string{"http://a"},
			steps: func(r *Remote) { r.retarget("http://new-leader") },
			want:  "http://new-leader",
		},
		{
			name:  "empty retarget is ignored",
			bases: []string{"http://a", "http://b"},
			steps: func(r *Remote) { r.retarget("") },
			want:  "http://a",
		},
		{
			name:  "rotation resumes in order after retarget",
			bases: []string{"http://a", "http://b", "http://c"},
			steps: func(r *Remote) { r.retarget("http://b"); r.rotate() },
			want:  "http://c",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := &Remote{Bases: c.bases}
			c.steps(r)
			if got := r.base(); got != c.want {
				t.Errorf("base() = %q, want %q", got, c.want)
			}
		})
	}
}

// TestRetryAfterHint: table-driven parse of the 503 Retry-After header
// into the *UnavailableError hint claimBackoff honors. Anything the
// header cannot cleanly express falls back to the 1s default.
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"no header defaults to 1s", "", time.Second},
		{"integer seconds honored", "5", 5 * time.Second},
		{"one second", "1", time.Second},
		{"long hint honored verbatim", "120", 120 * time.Second},
		{"zero falls back", "0", time.Second},
		{"negative falls back", "-3", time.Second},
		{"garbage falls back", "soon", time.Second},
		{"http-date form falls back", "Fri, 07 Aug 2026 00:00:00 GMT", time.Second},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := &http.Response{Header: http.Header{}}
			if c.header != "" {
				resp.Header.Set("Retry-After", c.header)
			}
			if got := retryAfterHint(resp); got != c.want {
				t.Errorf("retryAfterHint(%q) = %v, want %v", c.header, got, c.want)
			}
		})
	}

	// The hint flows through claimBackoff: honored verbatim under the
	// TTL cap, clamped at it above.
	w := &Worker{Name: "w1"}
	ttl := 2 * time.Second
	for _, c := range []struct {
		hint time.Duration
		want time.Duration
	}{
		{500 * time.Millisecond, 500 * time.Millisecond},
		{ttl - time.Millisecond, ttl - time.Millisecond},
		{ttl + time.Second, ttl},
		{time.Minute, ttl},
	} {
		got := w.claimBackoff(3, ttl, &UnavailableError{RetryAfter: c.hint}, 100*time.Millisecond)
		if got != c.want {
			t.Errorf("claimBackoff with hint %v = %v, want %v", c.hint, got, c.want)
		}
	}
}

// TestVerifyInlineRenewExtendsDeadline pins the exact contract of the
// lapsed-but-unchallenged branch of LeaderLock.Verify: the inline renew
// keeps the holder and epoch and pushes the deadline a full TTL past
// the injected clock.
func TestVerifyInlineRenewExtendsDeadline(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "leader.lock")
	l := lockAt(path, "primary", clk)
	epoch, err := l.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}

	// Stall well past the deadline with no successor in sight.
	clk.advance(5 * l.TTL)
	if err := l.Verify(epoch); err != nil {
		t.Fatalf("Verify after lapse without successor = %v, want inline renew", err)
	}
	info, err := ReadLockFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Holder != "primary" || info.Epoch != epoch {
		t.Fatalf("inline renew rewrote identity: %+v", info)
	}
	if want := clk.t.Add(l.TTL).UnixMilli(); info.Deadline != want {
		t.Fatalf("renewed deadline = %d, want %d (now + TTL)", info.Deadline, want)
	}
}
