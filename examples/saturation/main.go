// Saturation study: battlefield-surveillance style bursts — push the
// per-node traffic load up until the shared data channel saturates, and
// watch Scheme 1 degenerate toward pure LEACH (paper Fig. 10's key
// observation: under saturation the adaptive threshold sits at the lowest
// class most of the time, so channel adaptation buys nothing).
//
//	go run ./examples/saturation
package main

import (
	"fmt"
	"log"

	"repro/caem"
)

func main() {
	fmt.Println("saturation study: 60 nodes, load sweep 5 -> 30 pkt/s, 200 s windows")
	fmt.Println()
	fmt.Printf("%-6s | %-22s | %-22s | %s\n", "load", "pure-LEACH", "CAEM-scheme1", "S1 vs LEACH")
	fmt.Printf("%-6s | %-10s %-11s | %-10s %-11s | %s\n",
		"pkt/s", "J burned", "delivery", "J burned", "delivery", "energy/pkt saving")

	for _, load := range []float64{5, 10, 15, 20, 25, 30} {
		cfg := caem.DefaultConfig()
		cfg.Nodes = 60
		cfg.FieldWidthM, cfg.FieldHeightM = 80, 80
		cfg.TrafficLoad = load
		cfg.DurationSeconds = 200
		cfg.Seed = 11

		results, err := caem.RunComparison(cfg, caem.PureLEACH, caem.Scheme1)
		if err != nil {
			log.Fatal(err)
		}
		leach, s1 := results[0], results[1]
		saving := 1 - s1.EnergyPerPacketMilliJ/leach.EnergyPerPacketMilliJ
		fmt.Printf("%-6.0f | %8.1f J %9.1f%% | %8.1f J %9.1f%% | %.0f%%\n",
			load,
			leach.TotalConsumedJ, 100*leach.DeliveryRate,
			s1.TotalConsumedJ, 100*s1.DeliveryRate,
			100*saving)
	}

	fmt.Println()
	fmt.Println("as the channel saturates, delivery rates fall, queues pin at capacity,")
	fmt.Println("and Scheme 1's energy advantage narrows — the Fig. 10/11 convergence.")
}
