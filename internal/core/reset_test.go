package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/sim"
)

// traceBuf collects the full protocol event stream as comparable text.
func traceBuf(cfg *Config) *bytes.Buffer {
	var b bytes.Buffer
	cfg.Trace = func(ev TraceEvent) {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%s\n", int64(ev.T), int(ev.Kind), ev.Node, ev.Value, ev.Detail)
	}
	return &b
}

// assertSameRun asserts two Results (and optional trace captures) are
// bit-identical. reflect.DeepEqual covers every metric, series sample,
// per-node report, and round report.
func assertSameRun(t *testing.T, label string, fresh, reused Result, freshTrace, reusedTrace *bytes.Buffer) {
	t.Helper()
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("%s: fresh and reused results differ\nfresh:  %+v\nreused: %+v", label, fresh.Summary(), reused.Summary())
	}
	if freshTrace != nil {
		if !bytes.Equal(freshTrace.Bytes(), reusedTrace.Bytes()) {
			t.Fatalf("%s: fresh and reused trace streams differ (%d vs %d bytes)",
				label, freshTrace.Len(), reusedTrace.Len())
		}
	}
}

// TestResetEquivalence is the differential test behind the run-reuse
// engine: for every protocol, a Reset-then-Run on a dirtied context must
// be bit-identical — full Result and full protocol trace — to a fresh
// New-then-Run of the same configuration.
func TestResetEquivalence(t *testing.T) {
	for _, p := range []queueing.ThresholdPolicy{
		queueing.PolicyNone, queueing.PolicyAdaptive, queueing.PolicyFixedHighest,
	} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Policy = p
			fresh := cfg
			freshTrace := traceBuf(&fresh)
			want := New(fresh).Run()

			// Dirty a context with a different seed, policy, and load so
			// every piece of carried-over state (queues, batteries, link
			// matrix, election rotation, event arena, burst pool) is
			// nontrivially used before the reset.
			dirty := testConfig()
			dirty.Seed = cfg.Seed + 17
			dirty.Policy = queueing.PolicyAdaptive
			dirty.ArrivalRatePerSecond = 12
			net := New(dirty)
			net.Run()

			reused := cfg
			reusedTrace := traceBuf(&reused)
			net.Reset(reused)
			got := net.Run()

			assertSameRun(t, p.String(), want, got, freshTrace, reusedTrace)
		})
	}
}

// TestResetEquivalenceAcrossShapes resets a context to a different node
// count (the pool misses its shape and the context rebuilds what the new
// shape needs) and to a dynamic-world configuration, asserting the same
// bit-identity.
func TestResetEquivalenceAcrossShapes(t *testing.T) {
	small := testConfig()
	small.Nodes = 12
	big := testConfig()
	big.Nodes = 40
	big.World = []WorldEvent{
		{At: 10 * sim.Second, Apply: func(w *World) { w.Kill(3) }},
		{At: 20 * sim.Second, Apply: func(w *World) { w.Revive(3, 5) }},
		{At: 30 * sim.Second, Apply: func(w *World) { w.ScaleArrivalRate(5, 2) }},
	}

	wantSmall := New(small).Run()
	wantBig := New(big).Run()

	net := New(big)
	net.Run()
	net.Reset(small)
	gotSmall := net.Run()
	net.Reset(big)
	gotBig := net.Run()

	assertSameRun(t, "big->small", wantSmall, gotSmall, nil, nil)
	assertSameRun(t, "small->big", wantBig, gotBig, nil, nil)
}

// TestResetRepeatedStaysIdentical runs the same configuration many times
// on one context; every run must reproduce the first bit-for-bit (no
// state bleed accumulates across resets).
func TestResetRepeatedStaysIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.Horizon = 30 * sim.Second
	want := New(cfg).Run()
	net := New(cfg)
	net.Run()
	for i := 0; i < 4; i++ {
		net.Reset(cfg)
		got := net.Run()
		assertSameRun(t, fmt.Sprintf("reset %d", i), want, got, nil, nil)
	}
}

// FuzzResetEquivalence drives the differential property over the
// randomized configuration space: any valid configuration must produce
// bit-identical results fresh and reused, whatever configuration dirtied
// the context first.
func FuzzResetEquivalence(f *testing.F) {
	// Seed corpus: one entry per protocol plus cross-shape and stressed
	// variants, mirroring the deterministic differential tests.
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(7), uint64(7))
	f.Add(uint64(42), uint64(1000))
	f.Add(uint64(2024), uint64(5))
	f.Add(uint64(99), uint64(3))
	f.Fuzz(func(t *testing.T, seedA, seedB uint64) {
		ra := rng.NewSource(seedA).Stream("fuzz-reset", 0)
		rb := rng.NewSource(seedB).Stream("fuzz-reset", 1)
		cfg := randomConfig(ra, int(seedA%97))
		dirty := randomConfig(rb, int(seedB%89))
		cfg.Horizon = 15 * sim.Second
		dirty.Horizon = 10 * sim.Second

		want := New(cfg).Run()
		net := New(dirty)
		net.Run()
		net.Reset(cfg)
		got := net.Run()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("fresh and reused results differ for cfg %+v after dirty %+v", cfg, dirty)
		}
	})
}
