package cluster

import "time"

// Chaos is the deterministic fault-injection harness. Every hook is
// optional (nil = no fault) and configured explicitly by tests, so a
// chaotic run is exactly reproducible: the same hooks injected into the
// same campaign produce the same sequence of failures — and, by the
// determinism contract, the same final report as a fault-free run.
//
// Hooks that carry state across calls (counters, per-cell budgets) must
// be internally synchronized by the closure if shared between workers;
// each hook is called from the goroutine experiencing the fault.
type Chaos struct {
	// FailCell, consulted before executing a cell, injects a transient
	// cell failure: a non-nil error is reported to the coordinator as the
	// cell's result instead of running it. Drives the retry/backoff and
	// poison paths.
	FailCell func(c Cell) error

	// KillAfterCells, when positive, crashes the worker after it has
	// executed this many cells: Worker.Run returns ErrWorkerKilled
	// immediately, mid-lease, without completing or releasing — the
	// in-process stand-in for SIGKILL. Recovery happens only through
	// lease expiry.
	KillAfterCells int

	// DropRenewal, consulted before each heartbeat, drops the n-th
	// renewal (1-based) of the lease when it returns true — simulating a
	// lost heartbeat packet.
	DropRenewal func(leaseID string, n int) bool

	// DelayRenewal, consulted before each heartbeat, stalls the n-th
	// renewal by the returned duration — simulating scheduling delay or
	// network latency long enough to let a lease expire under a live
	// worker.
	DelayRenewal func(leaseID string, n int) time.Duration

	// FailStorePut injects a transient store-write error when the
	// coordinator's sink persists the cell (consulted by cmd/caem-serve's
	// sink, not by the worker). The coordinator re-queues the cell
	// through the same retry/backoff path as a reported cell failure.
	FailStorePut func(c Cell) error
}

// failCell applies the FailCell hook, tolerating a nil receiver.
func (ch *Chaos) failCell(c Cell) error {
	if ch == nil || ch.FailCell == nil {
		return nil
	}
	return ch.FailCell(c)
}

// shouldDie reports whether the worker has hit its kill budget.
func (ch *Chaos) shouldDie(cellsRun int) bool {
	return ch != nil && ch.KillAfterCells > 0 && cellsRun >= ch.KillAfterCells
}

// dropRenewal applies the DropRenewal hook, tolerating a nil receiver.
func (ch *Chaos) dropRenewal(leaseID string, n int) bool {
	return ch != nil && ch.DropRenewal != nil && ch.DropRenewal(leaseID, n)
}

// delayRenewal applies the DelayRenewal hook, tolerating a nil receiver.
func (ch *Chaos) delayRenewal(leaseID string, n int) time.Duration {
	if ch == nil || ch.DelayRenewal == nil {
		return 0
	}
	return ch.DelayRenewal(leaseID, n)
}

// failStorePut applies the FailStorePut hook, tolerating a nil receiver.
func (ch *Chaos) failStorePut(c Cell) error {
	if ch == nil || ch.FailStorePut == nil {
		return nil
	}
	return ch.FailStorePut(c)
}

// FailStorePutFor exposes the FailStorePut hook to sinks outside this
// package (cmd/caem-serve) with nil-safety included.
func (ch *Chaos) FailStorePutFor(c Cell) error { return ch.failStorePut(c) }
