package store

import (
	"repro/internal/obs"
)

// Metric families owned by the results store. Instrumentation is per
// append and per checkpoint — one Put is one stored cell result, so
// this granularity can never touch the simulation hot loop.
const (
	metricAppends     = "caem_store_appends_total"
	metricBytes       = "caem_store_bytes_written_total"
	metricFaults      = "caem_store_write_faults_total"
	metricFsync       = "caem_store_fsync_seconds"
	metricIndexCkpt   = "caem_store_index_checkpoint_seconds"
	metricRecovered   = "caem_store_recovered_bytes"
	metricCellsStored = "caem_store_cells"

	metricSegments     = "caem_store_segments"
	metricRolls        = "caem_store_segment_rolls_total"
	metricSegmentLoads = "caem_store_segment_loads_total"
	metricFullScans    = "caem_store_full_scans_total"
	metricCompactions  = "caem_store_compactions_total"
	metricCompacted    = "caem_store_compacted_records_total"
)

// storeMetrics holds the store's instrument handles. A nil
// *storeMetrics is valid and inert, so an unobserved Store pays one
// nil check per hook and nothing else.
type storeMetrics struct {
	appends   *obs.Counter
	bytes     *obs.Counter
	faults    *obs.CounterVec
	fsync     *obs.Histogram
	indexCkpt *obs.Histogram
	recovered *obs.Gauge
	cells     *obs.Gauge

	segments     *obs.Gauge
	rolls        *obs.Counter
	segmentLoads *obs.Counter
	fullScans    *obs.Counter
	compactions  *obs.Counter
	compacted    *obs.Counter
}

// RegisterMetrics registers the store's metric families on reg and
// returns the handles. Idempotent; also the catalog surface used by
// the obs-check lint.
func RegisterMetrics(reg *obs.Registry) *storeMetrics {
	return &storeMetrics{
		appends: reg.Counter(metricAppends,
			"Record lines appended to the active results tail."),
		bytes: reg.Counter(metricBytes,
			"Bytes appended to the active results tail."),
		faults: reg.CounterVec(metricFaults,
			"Write failures by operation (append, sync, index, roll, compact), including injected faults.",
			"op"),
		fsync: reg.Histogram(metricFsync,
			"Latency of the per-append log fsync in seconds.", obs.LatencyBuckets),
		indexCkpt: reg.Histogram(metricIndexCkpt,
			"Latency of index checkpoints (marshal + write + rename) in seconds.",
			obs.LatencyBuckets),
		recovered: reg.Gauge(metricRecovered,
			"Torn-tail bytes dropped during recovery when this store was opened."),
		cells: reg.Gauge(metricCellsStored,
			"Distinct cell results currently stored (segments plus active tail)."),
		segments: reg.Gauge(metricSegments,
			"Immutable segment files currently in the store."),
		rolls: reg.Counter(metricRolls,
			"Active-tail rolls into immutable segments."),
		segmentLoads: reg.Counter(metricSegmentLoads,
			"Lazy segment index loads (bloom/range pruning misses land here)."),
		fullScans: reg.Counter(metricFullScans,
			"Global-order materializations touching every segment (Records/Keys/index rebuild)."),
		compactions: reg.Counter(metricCompactions,
			"Completed compaction passes over the segment set."),
		compacted: reg.Counter(metricCompacted,
			"Superseded record lines dropped by compaction."),
	}
}

// Observe attaches the store to a metrics registry: families are
// registered get-or-create and the recovery/size gauges primed from
// current state. Call once after Open; a store never observed skips
// all instrumentation.
func (s *Store) Observe(reg *obs.Registry) {
	m := RegisterMetrics(reg)
	s.mu.Lock()
	s.met = m
	m.recovered.Set(float64(s.recovered))
	m.cells.Set(float64(s.distinct))
	m.segments.Set(float64(len(s.segs)))
	s.mu.Unlock()
}

func (m *storeMetrics) appendDone(bytes int, cells int) {
	if m == nil {
		return
	}
	m.appends.Inc()
	m.bytes.Add(float64(bytes))
	m.cells.Set(float64(cells))
}

func (m *storeMetrics) fault(op string) {
	if m == nil {
		return
	}
	m.faults.With(op).Inc()
}

func (m *storeMetrics) observeFsync(seconds float64) {
	if m == nil {
		return
	}
	m.fsync.Observe(seconds)
}

func (m *storeMetrics) observeIndexCheckpoint(seconds float64) {
	if m == nil {
		return
	}
	m.indexCkpt.Observe(seconds)
}

func (m *storeMetrics) rollDone(segments int) {
	if m == nil {
		return
	}
	m.rolls.Inc()
	m.segments.Set(float64(segments))
}

func (m *storeMetrics) segmentLoad() {
	if m == nil {
		return
	}
	m.segmentLoads.Inc()
}

func (m *storeMetrics) fullScan() {
	if m == nil {
		return
	}
	m.fullScans.Inc()
}

func (m *storeMetrics) compactionDone(dropped int, segments int) {
	if m == nil {
		return
	}
	m.compactions.Inc()
	m.compacted.Add(float64(dropped))
	m.segments.Set(float64(segments))
}
