//go:build unix

package cluster

import (
	"fmt"
	"os"
	"syscall"
	"time"
)

// claimWait bounds how long a claimer polls for the claim flock before
// reporting contention. The critical section is a handful of file
// operations — microseconds — so exhausting the wait means the holder
// is stalled (e.g. SIGSTOP mid-claim); degrading to ErrLockHeld lets
// the caller retry on its own schedule instead of deadlocking.
const claimWait = 250 * time.Millisecond

// acquireClaim takes an exclusive kernel lock (flock) on the claim
// sidecar. The kernel releases the lock when the holding process dies,
// however abruptly, so a crashed claimer never leaves a stale claim
// behind — which is what makes takeover atomic: there is no staleness
// heuristic for two sweepers to evaluate concurrently, remove each
// other's claims, and both enter the critical section at the same
// epoch.
func (l *LeaderLock) acquireClaim() (func(), error) {
	f, err := os.OpenFile(l.Path+".claim", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	deadline := time.Now().Add(claimWait)
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if err == nil {
			return func() {
				syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
				f.Close()
			}, nil
		}
		if err != syscall.EWOULDBLOCK && err != syscall.EINTR {
			f.Close()
			return nil, fmt.Errorf("cluster: claim flock: %w", err)
		}
		if time.Now().After(deadline) {
			f.Close()
			return nil, ErrLockHeld
		}
		time.Sleep(2 * time.Millisecond)
	}
}
