package stats

import "math"

// Quantile estimates one quantile of a stream in constant memory with
// the P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// running quantile with parabolic interpolation, so the estimator costs
// O(1) time and zero allocation per observation regardless of stream
// length. Exact for the first five observations; within the
// algorithm's published accuracy (a fraction of the local probability
// density) afterwards.
//
// Set P in (0, 1) before the first Add — NewQuantile does — and do not
// change it afterwards. Value of an empty stream is NaN.
type Quantile struct {
	// P is the target quantile (0.95 estimates the 95th percentile).
	P float64

	n   int        // observations seen
	h   [5]float64 // marker heights
	pos [5]float64 // actual marker positions (1-based ranks)
	des [5]float64 // desired marker positions
}

// NewQuantile returns an estimator for the p-quantile.
func NewQuantile(p float64) Quantile { return Quantile{P: p} }

// Add accumulates one observation.
func (q *Quantile) Add(x float64) {
	if q.n < 5 {
		// Insertion-sort the first five observations in place.
		i := q.n
		for i > 0 && q.h[i-1] > x {
			q.h[i] = q.h[i-1]
			i--
		}
		q.h[i] = x
		q.n++
		if q.n == 5 {
			p := q.P
			q.pos = [5]float64{1, 2, 3, 4, 5}
			q.des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}

	// Locate the cell k with h[k] <= x < h[k+1], extending the extremes.
	var k int
	switch {
	case x < q.h[0]:
		q.h[0] = x
		k = 0
	case x >= q.h[4]:
		q.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < q.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	q.n++
	p := q.P
	q.des[1] += p / 2
	q.des[2] += p
	q.des[3] += (1 + p) / 2
	q.des[4]++

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.des[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			hp := q.parabolic(i, sign)
			if q.h[i-1] < hp && hp < q.h[i+1] {
				q.h[i] = hp
			} else {
				q.h[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one rank in direction sign.
func (q *Quantile) parabolic(i int, sign float64) float64 {
	return q.h[i] + sign/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+sign)*(q.h[i+1]-q.h[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-sign)*(q.h[i]-q.h[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback height prediction when the parabola would
// leave the bracketing markers' range.
func (q *Quantile) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return q.h[i] + sign*(q.h[j]-q.h[i])/(q.pos[j]-q.pos[i])
}

// Count returns the number of observations.
func (q *Quantile) Count() int { return q.n }

// Value returns the current quantile estimate: NaN when empty, the
// exact (interpolated) sample quantile through the first five
// observations (at n == 5 the marker heights still are the complete
// sorted sample), and the P² center-marker height after.
func (q *Quantile) Value() float64 {
	switch {
	case q.n == 0:
		return math.NaN()
	case q.n <= 5:
		// h[:n] is sorted; interpolate the sample quantile.
		idx := q.P * float64(q.n-1)
		lo := int(idx)
		if lo >= q.n-1 {
			return q.h[q.n-1]
		}
		frac := idx - float64(lo)
		return q.h[lo] + frac*(q.h[lo+1]-q.h[lo])
	default:
		return q.h[2]
	}
}
