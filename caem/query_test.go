package caem

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// qcell builds a synthetic stored cell with a controlled delay metric.
func qcell(scen string, p Protocol, seed uint64, delay float64) CampaignCell {
	c := CampaignCell{Scenario: scen, Protocol: p, Seed: seed}
	c.Result.Protocol = p
	c.Result.MeanDelayMs = delay
	c.Result.DeliveryRate = 1 - delay/1000
	c.Result.TotalConsumedJ = delay * 2
	c.Result.AliveAtEnd = 100
	return c
}

// fillQueryStore stores a 2-scenario × 2-protocol × 4-seed grid with
// deterministic metric values and returns the full ref set in grid
// order.
func fillQueryStore(t *testing.T, cs *CampaignStore) []CellRef {
	t.Helper()
	refs := make([]CellRef, 0, 16)
	for _, scen := range []string{"churn", "storm"} {
		for _, p := range []Protocol{PureLEACH, Scheme1} {
			for seed := uint64(1); seed <= 4; seed++ {
				delay := float64(seed * 10)
				if scen == "storm" {
					delay += 100
				}
				if p == Scheme1 {
					delay += 1
				}
				if err := cs.PutCell("qtest", "cafe0123cafe0123", qcell(scen, p, seed, delay)); err != nil {
					t.Fatal(err)
				}
				refs = append(refs, CellRef{Hash: "cafe0123cafe0123", Scenario: scen, Protocol: p, Seed: seed})
			}
		}
	}
	return refs
}

// TestQueryCellsNoRescan is the acceptance-criteria test: filtered,
// range-limited, and top-k queries over a segmented store return
// correct results through point reads only — the store-level full-scan
// counter stays at zero throughout.
func TestQueryCellsNoRescan(t *testing.T) {
	cs, err := OpenStoreWith(t.TempDir(), StoreOptions{SegmentBytes: 700, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	refs := fillQueryStore(t, cs)
	if cs.Stats().Segments == 0 {
		t.Fatal("precondition: store did not segment")
	}
	scansBefore := cs.Stats().FullScans

	// Unfiltered: the whole grid in grid order.
	all, err := cs.QueryCells(refs, CellQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(refs) {
		t.Fatalf("unfiltered query returned %d cells, want %d", len(all), len(refs))
	}
	for i, c := range all {
		if c.Scenario != refs[i].Scenario || c.Protocol != refs[i].Protocol || c.Seed != refs[i].Seed {
			t.Fatalf("cell %d out of grid order: %+v", i, c)
		}
	}

	// Scenario + protocol filter.
	got, err := cs.QueryCells(refs, CellQuery{Scenario: "storm", Protocol: Scheme1.String()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("filtered query returned %d cells, want 4", len(got))
	}
	for _, c := range got {
		if c.Scenario != "storm" || c.Protocol != Scheme1 {
			t.Fatalf("filter leaked cell %+v", c)
		}
	}

	// Metric range: delays in churn are 10..41; keep [20, 31].
	lo, hi := 20.0, 31.0
	got, err = cs.QueryCells(refs, CellQuery{Scenario: "churn", Metric: "meanDelayMs", Min: &lo, Max: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // seeds 2,3 for both protocols
		t.Fatalf("range query returned %d cells, want 4", len(got))
	}
	for _, c := range got {
		if c.Result.MeanDelayMs < lo || c.Result.MeanDelayMs > hi {
			t.Fatalf("range query leaked delay %g", c.Result.MeanDelayMs)
		}
	}

	// Top-k by metric, descending.
	got, err = cs.QueryCells(refs, CellQuery{Metric: "meanDelayMs", Top: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("top-k returned %d cells, want 3", len(got))
	}
	wantDelays := []float64{141, 140, 131} // storm/scheme1 seed4, storm/leach seed4, storm/scheme1 seed3
	for i, c := range got {
		if c.Result.MeanDelayMs != wantDelays[i] {
			t.Fatalf("top-k[%d] delay = %g, want %g", i, c.Result.MeanDelayMs, wantDelays[i])
		}
	}

	if scans := cs.Stats().FullScans; scans != scansBefore {
		t.Fatalf("queries performed %d full scans", scans-scansBefore)
	}

	// Invalid queries are rejected, not silently misread.
	if _, err := cs.QueryCells(refs, CellQuery{Metric: "noSuchMetric", Top: 1}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := cs.QueryCells(refs, CellQuery{Top: 1}); err == nil {
		t.Fatal("top-k without metric accepted")
	}
	if _, err := cs.QueryCells(refs, CellQuery{Metric: "meanDelayMs", Min: &hi, Max: &lo}); err == nil {
		t.Fatal("empty range accepted")
	}
}

// TestQueryCellsSkipsUnstored: refs without stored cells (an in-flight
// campaign) resolve to the settled subset.
func TestQueryCellsSkipsUnstored(t *testing.T) {
	cs, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	if err := cs.PutCell("q", "aa11", qcell("churn", PureLEACH, 1, 5)); err != nil {
		t.Fatal(err)
	}
	refs := []CellRef{
		{Hash: "aa11", Scenario: "churn", Protocol: PureLEACH, Seed: 1},
		{Hash: "aa11", Scenario: "churn", Protocol: PureLEACH, Seed: 2}, // pending
	}
	got, err := cs.QueryCells(refs, CellQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seed != 1 {
		t.Fatalf("in-flight query = %+v, want just seed 1", got)
	}
}

// TestCachedAggregatesByteIdentical: the materialized aggregate cache
// is byte-identical to a fresh Aggregates pass at every point — after
// fills, after hits, and after a write invalidates it.
func TestCachedAggregatesByteIdentical(t *testing.T) {
	cs, err := OpenStoreWith(t.TempDir(), StoreOptions{SegmentBytes: 700, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	fillQueryStore(t, cs)

	compare := func(stage string) {
		t.Helper()
		fresh, err := cs.Aggregates()
		if err != nil {
			t.Fatal(err)
		}
		cached, err := cs.CachedAggregates()
		if err != nil {
			t.Fatal(err)
		}
		fb, err := json.Marshal(fresh)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := json.Marshal(cached)
		if err != nil {
			t.Fatal(err)
		}
		if string(fb) != string(cb) {
			t.Fatalf("%s: cached aggregates diverged:\n cached %s\n  fresh %s", stage, cb, fb)
		}
	}
	compare("initial fill")

	// A hit must not recompute: scans stay flat across repeated reads.
	if _, err := cs.CachedAggregates(); err != nil {
		t.Fatal(err)
	}
	scans := cs.Stats().FullScans
	for i := 0; i < 5; i++ {
		if _, err := cs.CachedAggregates(); err != nil {
			t.Fatal(err)
		}
	}
	if got := cs.Stats().FullScans; got != scans {
		t.Fatalf("cache hits performed %d full scans", got-scans)
	}
	compare("after hits")

	// A write invalidates; the next read recomputes and matches again.
	if err := cs.PutCell("qtest", "cafe0123cafe0123", qcell("churn", PureLEACH, 99, 77)); err != nil {
		t.Fatal(err)
	}
	compare("after invalidating write")
}

// TestFlatLogMigrationAggregates: a v1 flat-log store opened by the
// segmented store produces byte-identical aggregates after migration —
// the caem-level half of the store migration contract.
func TestFlatLogMigrationAggregates(t *testing.T) {
	dir := t.TempDir()
	cs, err := OpenStore(dir) // default threshold: stays a flat log
	if err != nil {
		t.Fatal(err)
	}
	fillQueryStore(t, cs)
	want, err := cs.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	wantBlob, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the index checkpoint as the pre-segmentation v1 document.
	idx := filepath.Join(dir, "index.json")
	blob, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	doc["v"] = 1
	delete(doc, "distinct")
	if blob, err = json.Marshal(doc); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idx, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	cs2, err := OpenStoreWith(dir, StoreOptions{SegmentBytes: 700, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cs2.Close()
	if cs2.Stats().Segments == 0 {
		t.Fatal("migration open did not segment the flat log")
	}
	got, err := cs2.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	gotBlob, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBlob) != string(wantBlob) {
		t.Fatalf("migrated aggregates diverged:\n got %s\nwant %s", gotBlob, wantBlob)
	}
	cached, err := cs2.CachedAggregates()
	if err != nil {
		t.Fatal(err)
	}
	cachedBlob, err := json.Marshal(cached)
	if err != nil {
		t.Fatal(err)
	}
	if string(cachedBlob) != string(wantBlob) {
		t.Fatal("migrated cached aggregates diverged")
	}
}

// TestMetricRegistry: every advertised metric extracts, unknown names
// fail closed.
func TestMetricRegistry(t *testing.T) {
	names := MetricNames()
	if len(names) < 20 {
		t.Fatalf("only %d metrics registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("MetricNames not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
	r := qcell("s", PureLEACH, 1, 42).Result
	for _, name := range names {
		if _, ok := MetricOf(r, name); !ok {
			t.Fatalf("advertised metric %q does not extract", name)
		}
	}
	if v, ok := MetricOf(r, "meanDelayMs"); !ok || v != 42 {
		t.Fatalf("meanDelayMs = %g ok=%v, want 42", v, ok)
	}
	if _, ok := MetricOf(r, "bogus"); ok {
		t.Fatal("unknown metric extracted")
	}
}

// TestPercentileSurface: exact order statistics per (scenario,
// protocol) group, with linear interpolation between ranks.
func TestPercentileSurface(t *testing.T) {
	cells := []CampaignCell{
		qcell("a", PureLEACH, 1, 10),
		qcell("a", PureLEACH, 2, 20),
		qcell("a", PureLEACH, 3, 30),
		qcell("a", PureLEACH, 4, 40),
		qcell("b", Scheme1, 1, 5),
	}
	surfaces, err := PercentileSurface(cells, "meanDelayMs", []float64{0, 50, 95, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(surfaces) != 2 {
		t.Fatalf("%d surfaces, want 2", len(surfaces))
	}
	a := surfaces[0]
	if a.Scenario != "a" || a.N != 4 || a.Metric != "meanDelayMs" {
		t.Fatalf("surface identity: %+v", a)
	}
	want := []float64{10, 25, 38.5, 40}
	for i, p := range a.Percentiles {
		if math.Abs(p.Value-want[i]) > 1e-12 {
			t.Fatalf("p%g = %g, want %g", p.P, p.Value, want[i])
		}
	}
	b := surfaces[1]
	if b.N != 1 || b.Percentiles[0].Value != 5 || b.Percentiles[3].Value != 5 {
		t.Fatalf("single-replicate surface: %+v", b)
	}

	if _, err := PercentileSurface(cells, "bogus", []float64{50}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := PercentileSurface(cells, "meanDelayMs", nil); err == nil {
		t.Fatal("empty percentile list accepted")
	}
	if _, err := PercentileSurface(cells, "meanDelayMs", []float64{101}); err == nil {
		t.Fatal("out-of-range percentile accepted")
	}
}
