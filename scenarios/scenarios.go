// Package scenarios embeds the curated dynamic-world scenario library.
//
// Each *.json file in this directory is one declarative scenario spec
// (internal/scenario.Spec): per-node heterogeneity plus a timeline of
// world events layered over a base configuration. The files are compiled
// into every binary, so `caem-sim -scenario <name>` and
// caem.LibraryScenarios work without a checkout; they also run directly
// from disk via `caem-sim -scenario path/to/file.json`.
package scenarios

import (
	"embed"
	"io/fs"
	"sort"
)

// FS holds the library scenario files.
//
//go:embed *.json
var FS embed.FS

// Files returns the embedded scenario file names, sorted.
func Files() []string {
	entries, err := fs.ReadDir(FS, ".")
	if err != nil {
		// The embed is compiled in; a read error is unreachable.
		panic(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}
