package runner

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/queueing"
	"repro/internal/sim"
)

// testJobs builds a small protocol × seed grid of fast, fully independent
// runs — the shape every experiment sweep has.
func testJobs() []Job {
	var jobs []Job
	for _, policy := range []queueing.ThresholdPolicy{
		queueing.PolicyNone, queueing.PolicyAdaptive, queueing.PolicyFixedHighest,
	} {
		for seed := uint64(1); seed <= 2; seed++ {
			cfg := core.DefaultConfig()
			cfg.Nodes = 20
			cfg.FieldWidth, cfg.FieldHeight = 45, 45
			cfg.Horizon = 25 * sim.Second
			cfg.SampleInterval = 5 * sim.Second
			cfg.Policy = policy
			cfg.Seed = seed
			jobs = append(jobs, Job{Label: "grid", Config: cfg})
		}
	}
	return jobs
}

// Parallel execution must be bit-identical to serial: each run owns its
// rng.Source, so worker count and completion order cannot leak into the
// results.
func TestParallelMatchesSerial(t *testing.T) {
	jobs := testJobs()
	serial := Run(Options{Workers: 1}, jobs)
	for _, workers := range []int{0, 2, 4, 16} {
		parallel := Run(Options{Workers: workers}, jobs)
		for i := range jobs {
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Fatalf("workers=%d: job %d diverged from the serial run", workers, i)
			}
		}
	}
}

// Results must come back in submission order even when completion order
// differs: each job gets a distinct horizon, which its result echoes back
// as Elapsed (no node dies within these short runs).
func TestSubmissionOrderPreserved(t *testing.T) {
	jobs := testJobs()
	for i := range jobs {
		jobs[i].Config.Horizon = sim.Time(20+i) * sim.Second
	}
	res := Run(Options{Workers: 4}, jobs)
	if len(res) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(res), len(jobs))
	}
	for i, j := range jobs {
		if res[i].Elapsed != j.Config.Horizon {
			t.Fatalf("result %d has Elapsed %v, want job %d's horizon %v", i, res[i].Elapsed, i, j.Config.Horizon)
		}
	}
}

// Worker-count edge cases: zero (NumCPU), more workers than jobs, a
// single job, and no jobs at all.
func TestWorkerEdgeCases(t *testing.T) {
	jobs := testJobs()
	want := Run(Options{Workers: 1}, jobs)

	for _, workers := range []int{0, len(jobs) + 50} {
		got := Run(Options{Workers: workers}, jobs)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d diverged", workers)
		}
	}
	one := Run(Options{Workers: 8}, jobs[:1])
	if len(one) != 1 || !reflect.DeepEqual(one[0], want[0]) {
		t.Fatal("single-job batch diverged")
	}
	if got := Run(Options{Workers: 8}, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// Progress must fire exactly once per job, serialized.
func TestProgressCalledOncePerJob(t *testing.T) {
	jobs := testJobs()
	for i := range jobs {
		jobs[i].Label = string(rune('a' + i))
	}
	var mu sync.Mutex
	seen := map[string]int{}
	opts := Options{
		Workers: 4,
		Progress: func(j Job, res core.Result) {
			mu.Lock()
			seen[j.Label]++
			mu.Unlock()
		},
	}
	Run(opts, jobs)
	if len(seen) != len(jobs) {
		t.Fatalf("progress saw %d distinct jobs, want %d", len(seen), len(jobs))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("job %q reported %d times", k, n)
		}
	}
}

// A panicking job must surface as a panic on the caller, not crash a
// worker goroutine, and it must be the lowest-indexed failing job.
func TestPanicPropagates(t *testing.T) {
	jobs := testJobs()
	jobs[2].Config.Nodes = 0 // invalid: core.New panics
	defer func() {
		if recover() == nil {
			t.Fatal("invalid job did not panic the caller")
		}
	}()
	Run(Options{Workers: 4}, jobs)
}

// Do covers the generic fan-out used by the public API wrappers.
func TestDo(t *testing.T) {
	for _, workers := range []int{1, 0, 3, 100, -2} {
		out := make([]int, 50)
		if i, v := Do(workers, len(out), func(i int) { out[i] = i + 1 }); i >= 0 {
			t.Fatalf("workers=%d: unexpected panic report (%d, %v)", workers, i, v)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
	Do(4, 0, func(int) { t.Fatal("fn called for n=0") })
}

// Do must capture worker panics instead of crashing the process, and
// report the lowest failing index for determinism.
func TestDoCapturesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		i, v := Do(workers, 10, func(i int) {
			if i == 3 || i == 7 {
				panic(fmt.Sprintf("boom-%d", i))
			}
		})
		if i != 3 {
			t.Fatalf("workers=%d: failed index = %d, want 3 (lowest)", workers, i)
		}
		if s, ok := v.(string); !ok || s != "boom-3" {
			t.Fatalf("workers=%d: panic value = %v", workers, v)
		}
	}
}
