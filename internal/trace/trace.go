// Package trace consumes the protocol event stream a simulation emits
// through core.Config.Trace: recording into a bounded ring, counting by
// kind, filtering, and rendering as text or CSV. It is the observability
// layer a user points at a run to understand *why* the metrics look the
// way they do (which nodes defer, where collisions cluster, how a cluster
// head's state evolves).
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// Recorder accumulates trace events. It counts every event by kind and
// retains the most recent Limit events in a ring (0 = retain everything;
// use a limit for long runs — a saturated 100-node run emits millions of
// events).
type Recorder struct {
	limit  int
	ring   []core.TraceEvent
	next   int
	filled bool

	counts  map[core.TraceKind]uint64
	byNode  map[int]uint64
	total   uint64
	dropped uint64
}

// NewRecorder returns a recorder retaining at most limit events
// (0 = unbounded).
func NewRecorder(limit int) *Recorder {
	if limit < 0 {
		panic(fmt.Sprintf("trace: negative recorder limit %d", limit))
	}
	r := &Recorder{
		limit:  limit,
		counts: make(map[core.TraceKind]uint64),
		byNode: make(map[int]uint64),
	}
	if limit > 0 {
		r.ring = make([]core.TraceEvent, 0, limit)
	}
	return r
}

// Observe is the core.Config.Trace callback.
func (r *Recorder) Observe(e core.TraceEvent) {
	r.total++
	r.counts[e.Kind]++
	if e.Node >= 0 {
		r.byNode[e.Node]++
	}
	switch {
	case r.limit == 0:
		r.ring = append(r.ring, e)
	case len(r.ring) < r.limit:
		r.ring = append(r.ring, e)
	default:
		r.ring[r.next] = e
		r.next = (r.next + 1) % r.limit
		r.filled = true
		r.dropped++
	}
}

// Total returns the number of events observed.
func (r *Recorder) Total() uint64 { return r.total }

// Dropped returns how many events fell out of the bounded ring.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Count returns the number of observed events of one kind.
func (r *Recorder) Count(k core.TraceKind) uint64 { return r.counts[k] }

// NodeCount returns the number of events attributed to a node.
func (r *Recorder) NodeCount(node int) uint64 { return r.byNode[node] }

// Events returns the retained events in observation order.
func (r *Recorder) Events() []core.TraceEvent {
	if !r.filled {
		return append([]core.TraceEvent(nil), r.ring...)
	}
	out := make([]core.TraceEvent, 0, r.limit)
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Summary renders the per-kind counts, descending.
func (r *Recorder) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events", r.total)
	if r.dropped > 0 {
		fmt.Fprintf(&b, " (%d beyond the %d-event ring)", r.dropped, r.limit)
	}
	b.WriteByte('\n')
	for _, k := range core.TraceKinds() {
		if c := r.counts[k]; c > 0 {
			fmt.Fprintf(&b, "  %-14s %d\n", k.String(), c)
		}
	}
	return b.String()
}

// Filter returns the retained events matching every provided predicate.
func (r *Recorder) Filter(preds ...func(core.TraceEvent) bool) []core.TraceEvent {
	var out []core.TraceEvent
	for _, e := range r.Events() {
		ok := true
		for _, p := range preds {
			if !p(e) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

// ByKind is a Filter predicate selecting one event kind.
func ByKind(k core.TraceKind) func(core.TraceEvent) bool {
	return func(e core.TraceEvent) bool { return e.Kind == k }
}

// ByNode is a Filter predicate selecting one node's events.
func ByNode(node int) func(core.TraceEvent) bool {
	return func(e core.TraceEvent) bool { return e.Node == node }
}

// After is a Filter predicate selecting events at or after t.
func After(t sim.Time) func(core.TraceEvent) bool {
	return func(e core.TraceEvent) bool { return e.T >= t }
}

// WriteText streams events to w, one per line.
func WriteText(w io.Writer, events []core.TraceEvent) error {
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV streams events to w as CSV with a header row.
func WriteCSV(w io.Writer, events []core.TraceEvent) error {
	if _, err := fmt.Fprintln(w, "time_s,kind,node,value,detail"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%.6f,%s,%d,%d,%s\n",
			e.T.Seconds(), e.Kind, e.Node, e.Value, e.Detail); err != nil {
			return err
		}
	}
	return nil
}

// Tee fans one trace callback out to several consumers.
func Tee(fns ...func(core.TraceEvent)) func(core.TraceEvent) {
	return func(e core.TraceEvent) {
		for _, fn := range fns {
			fn(e)
		}
	}
}

// StreamCSV returns a trace callback that encodes events to w as CSV rows
// (header written immediately), without retaining them — suitable for
// tracing arbitrarily long runs. Write errors disable the stream and are
// reported by the returned error function.
func StreamCSV(w io.Writer) (fn func(core.TraceEvent), errf func() error) {
	var err error
	if _, werr := fmt.Fprintln(w, "time_s,kind,node,value,detail"); werr != nil {
		err = werr
	}
	fn = func(e core.TraceEvent) {
		if err != nil {
			return
		}
		if _, werr := fmt.Fprintf(w, "%.6f,%s,%d,%d,%s\n",
			e.T.Seconds(), e.Kind, e.Node, e.Value, e.Detail); werr != nil {
			err = werr
		}
	}
	return fn, func() error { return err }
}
