// Package sim implements the deterministic discrete-event engine the whole
// simulation runs on.
//
// Time is an int64 count of microseconds. Integer time keeps the future
// event list exactly ordered (no floating-point ties) and makes runs
// bit-reproducible. One microsecond of resolution is two orders of
// magnitude below the shortest physical interval in the model (a 20 µs
// backoff slot), so quantization is immaterial.
//
// Ties are broken by scheduling order (a monotonically increasing sequence
// number), which is the property that makes event execution deterministic.
//
// The future event list is an index-based 4-ary heap over a slot arena
// with a free list, so the steady-state schedule/execute cycle performs no
// heap allocations: slots are recycled as events execute or cancelled
// entries drain out. Cancellation is lazy — a cancelled event stays in the
// heap until it surfaces and is discarded — which keeps every heap
// operation a pure push or pop-min. EventIDs carry a generation counter so
// an ID held across a slot's reuse can neither cancel nor validate the
// newer event.
package sim

import (
	"fmt"
)

// Time is a simulation timestamp in microseconds.
type Time int64

// Duration constructors and conversions.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a timestamp (or duration) to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a timestamp (or duration) to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds into a Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time {
	if s >= 0 {
		return Time(s*1e6 + 0.5)
	}
	return Time(s*1e6 - 0.5)
}

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Handler is an event callback. It runs at its scheduled time with the
// engine clock already advanced.
type Handler func()

type eventState uint8

const (
	evFree eventState = iota
	evPending
	evCancelled
)

// event is one arena slot. Slots are recycled through the free list; gen
// distinguishes successive occupants so stale EventIDs stay inert.
type event struct {
	at    Time
	seq   uint64
	fn    Handler
	label string
	gen   uint32
	state eventState
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// value is never valid.
type EventID struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// Valid reports whether the ID refers to a still-pending event.
func (id EventID) Valid() bool {
	if id.eng == nil {
		return false
	}
	ev := &id.eng.arena[id.slot]
	return ev.gen == id.gen && ev.state == evPending
}

// heapEntry is one future-event-list entry. The ordering key (at, seq)
// is carried in the heap itself rather than looked up through the slot,
// so sift comparisons touch only the contiguous heap array — the arena
// is consulted exactly once per executed event, not once per compare.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
}

// Engine is a single-threaded discrete-event simulation kernel.
type Engine struct {
	now      Time
	seq      uint64
	arena    []event
	free     []int32
	heap     []heapEntry // 4-ary min-heap ordered by (at, seq)
	live     int         // pending, non-cancelled events
	executed uint64
	stopped  bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Reset rewinds the engine to the zero state of a fresh NewEngine while
// keeping the arena, free list, and heap backing arrays, so a reused
// engine schedules its first events without growing anything. Every
// pending or cancelled slot is drained with its generation bumped, so
// EventIDs issued before the reset can neither cancel nor validate
// events of the next run. Behaviour after Reset is indistinguishable
// from a fresh engine: event ordering depends only on (time, sequence),
// never on slot indices or absolute generation numbers.
func (e *Engine) Reset() {
	for slot := range e.arena {
		ev := &e.arena[slot]
		if ev.state != evFree {
			ev.fn = nil
			ev.label = ""
			ev.gen++
			ev.state = evFree
			e.free = append(e.free, int32(slot))
		}
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
	e.live = 0
	e.executed = 0
	e.stopped = false
}

// Executed returns the number of events executed so far (for tests and
// performance accounting).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return e.live }

// Schedule runs fn after delay. A negative delay panics: the caller has a
// logic error, and silently clamping would hide it.
func (e *Engine) Schedule(delay Time, fn Handler) EventID {
	return e.ScheduleLabeled(delay, "", fn)
}

// ScheduleLabeled is Schedule with a debugging label attached to the event.
func (e *Engine) ScheduleLabeled(delay Time, label string, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v scheduling %q at %v", delay, label, e.now))
	}
	return e.at(e.now+delay, label, fn)
}

// ScheduleAt runs fn at the given absolute time, which must not be in the
// past.
func (e *Engine) ScheduleAt(at Time, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) in the past at %v", at, e.now))
	}
	return e.at(at, "", fn)
}

func (e *Engine) at(at Time, label string, fn Handler) EventID {
	if fn == nil {
		panic("sim: nil handler")
	}
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, event{})
		slot = int32(len(e.arena) - 1)
	}
	ev := &e.arena[slot]
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	ev.label = label
	ev.state = evPending
	e.seq++
	e.live++
	e.push(slot)
	return EventID{eng: e, slot: slot, gen: ev.gen}
}

// release returns an executed or drained slot to the free list, bumping
// its generation so outstanding EventIDs go stale.
func (e *Engine) release(slot int32) {
	ev := &e.arena[slot]
	ev.fn = nil
	ev.label = ""
	ev.gen++
	ev.state = evFree
	e.free = append(e.free, slot)
}

// Cancel removes a pending event. Cancelling an already-executed or
// already-cancelled event is a no-op and returns false. The slot drains
// out of the heap lazily when it surfaces.
func (e *Engine) Cancel(id EventID) bool {
	if id.eng != e || !id.Valid() {
		return false
	}
	e.arena[id.slot].state = evCancelled
	e.live--
	return true
}

// Stop makes the current Run call return after the in-flight event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the future event list is
// empty, the horizon is passed, or Stop is called. Events with timestamps
// strictly greater than horizon are left in the queue; the clock is
// advanced to horizon on normal completion so Now() is well-defined.
func (e *Engine) Run(horizon Time) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		top := e.heap[0]
		ev := &e.arena[top.slot]
		if ev.state == evCancelled {
			e.popMin()
			e.release(top.slot)
			continue
		}
		if top.at > horizon {
			break
		}
		e.popMin()
		fn := ev.fn
		e.now = top.at
		e.live--
		e.executed++
		e.release(top.slot)
		fn()
	}
	if !e.stopped && e.now < horizon {
		e.now = horizon
	}
}

// RunAll executes every pending event regardless of horizon. Useful in
// tests; production runs should bound time with Run.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		top := e.popMin()
		ev := &e.arena[top.slot]
		if ev.state == evCancelled {
			e.release(top.slot)
			continue
		}
		fn := ev.fn
		e.now = top.at
		e.live--
		e.executed++
		e.release(top.slot)
		fn()
	}
}

// less orders heap entries by (timestamp, scheduling sequence).
func less(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends a slot's entry and sifts it up the 4-ary heap.
func (e *Engine) push(slot int32) {
	ev := &e.arena[slot]
	h := append(e.heap, heapEntry{at: ev.at, seq: ev.seq, slot: slot})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// popMin removes and returns the root of the 4-ary heap, sifting the
// displaced last element down through a hole (one write per level
// instead of a swap).
func (e *Engine) popMin() heapEntry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if less(h[j], h[best]) {
					best = j
				}
			}
			if !less(h[best], last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	e.heap = h
	return top
}

// Timer is a restartable one-shot convenience wrapper around Schedule.
// Restarting an armed timer cancels the previous shot.
type Timer struct {
	eng *Engine
	id  EventID
}

// NewTimer returns a timer bound to the engine.
func NewTimer(eng *Engine) *Timer { return &Timer{eng: eng} }

// Arm schedules fn after delay, cancelling any previously armed shot.
func (t *Timer) Arm(delay Time, fn Handler) {
	t.Disarm()
	t.id = t.eng.Schedule(delay, fn)
}

// Disarm cancels the pending shot, if any.
func (t *Timer) Disarm() {
	if t.id.Valid() {
		t.eng.Cancel(t.id)
	}
	t.id = EventID{}
}

// Armed reports whether a shot is pending.
func (t *Timer) Armed() bool { return t.id.Valid() }
