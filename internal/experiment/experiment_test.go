package experiment

import (
	"strings"
	"testing"
)

// quickOpts runs experiments at a small scale that still exercises every
// code path: two seed replicates keep the CI machinery live (mean ± CI
// cells, paired deltas) at test speed.
func quickOpts() Options {
	return Options{Seed: 1, Scale: 0.2, Replications: 2}
}

func TestSeedListDefaults(t *testing.T) {
	if got := (Options{Seed: 3}).seedList(); len(got) != defaultReplications || got[0] != 3 || got[4] != 7 {
		t.Fatalf("default seed list = %v, want 5 consecutive from 3", got)
	}
	if got := (Options{Seed: 1, Replications: 2}).seedList(); len(got) != 2 || got[1] != 2 {
		t.Fatalf("2-rep seed list = %v", got)
	}
	pinned := []uint64{7, 11, 13}
	if got := (Options{Seed: 1, Replications: 9, Seeds: pinned}).seedList(); len(got) != 3 || got[0] != 7 {
		t.Fatalf("pinned seed list = %v, want %v", got, pinned)
	}
}

func TestTableHelpers(t *testing.T) {
	tab := Table{Headers: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.Render()
	if !strings.Contains(out, "a    bb") {
		t.Fatalf("render misaligned:\n%s", out)
	}
	csv := tab.CSV()
	if csv != "a,bb\n1,2\n333,4\n" {
		t.Fatalf("csv = %q", csv)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tab := Table{Headers: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("mismatched row did not panic")
		}
	}()
	tab.AddRow("only-one")
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 0.2}
	if n := o.nodes(); n != 20 {
		t.Errorf("nodes at 0.2 scale = %d, want 20", n)
	}
	o.Scale = 0
	if o.scale() != 1.0 {
		t.Error("zero scale should default to 1")
	}
	o.Scale = 2
	if o.scale() != 1.0 {
		t.Error("out-of-range scale should default to 1")
	}
	if len((Options{Scale: 0.2}).loads()) >= len((Options{Scale: 1}).loads()) {
		t.Error("scaled sweep not thinner")
	}
}

func TestTableI(t *testing.T) {
	r := TableI(quickOpts())
	if r.ID != "table1" {
		t.Fatalf("id = %q", r.ID)
	}
	if len(r.Table.Rows) != 4 {
		t.Fatalf("Table I has %d rows, want 4 states", len(r.Table.Rows))
	}
	out := r.Render()
	for _, want := range []string{"idle", "receive", "collision", "transmit", "50.0", "10.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableII(t *testing.T) {
	r := TableII(quickOpts())
	if len(r.Table.Rows) < 20 {
		t.Fatalf("Table II has only %d rows", len(r.Table.Rows))
	}
	out := r.Render()
	for _, want := range []string{"0.66 W", "0.305 W", "2000 bits", "10 J", "3 / 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestFigure8(t *testing.T) {
	r := Figure8(quickOpts())
	if len(r.Table.Rows) < 10 {
		t.Fatalf("Figure 8 has %d rows", len(r.Table.Rows))
	}
	if len(r.Table.Headers) != 4 {
		t.Fatalf("Figure 8 headers: %v", r.Table.Headers)
	}
	// First row is t=0 with full batteries in every replicate: the mean
	// is exactly 10 and the CI is exactly ±0 (constant series).
	first := r.Table.Rows[0]
	for _, cell := range first[1:] {
		if cell != "10.000±0.000" {
			t.Errorf("t=0 energy cell = %q, want 10.000±0.000", cell)
		}
	}
}

func TestFigure9(t *testing.T) {
	r := Figure9(quickOpts())
	if len(r.Table.Rows) < 10 {
		t.Fatalf("Figure 9 has %d rows", len(r.Table.Rows))
	}
	if len(r.Notes) == 0 {
		t.Fatal("Figure 9 has no notes")
	}
}

func TestFigure10(t *testing.T) {
	r := Figure10(quickOpts())
	if len(r.Table.Rows) != len(quickOpts().loads()) {
		t.Fatalf("Figure 10 rows = %d, want one per load", len(r.Table.Rows))
	}
}

func TestFigure11(t *testing.T) {
	r := Figure11(quickOpts())
	if len(r.Table.Rows) != len(quickOpts().loads()) {
		t.Fatalf("Figure 11 rows = %d", len(r.Table.Rows))
	}
	// The saving column must be present and positive at the first load.
	row := r.Table.Rows[0]
	if !strings.Contains(row[len(row)-1], "%") {
		t.Fatalf("saving cell = %q", row[len(row)-1])
	}
	if strings.HasPrefix(row[len(row)-1], "-") {
		t.Errorf("Scheme 1 saving negative at load %s: %s", row[0], row[len(row)-1])
	}
}

func TestFigure12(t *testing.T) {
	r := Figure12(quickOpts())
	if len(r.Table.Rows) != len(quickOpts().loads()) {
		t.Fatalf("Figure 12 rows = %d", len(r.Table.Rows))
	}
}

func TestNetworkPerformance(t *testing.T) {
	r := NetworkPerformance(quickOpts())
	want := len(quickOpts().loads()) * 3
	if len(r.Table.Rows) != want {
		t.Fatalf("netperf rows = %d, want %d", len(r.Table.Rows), want)
	}
}

func TestAblations(t *testing.T) {
	if r := AblationThresholdParams(quickOpts()); len(r.Table.Rows) == 0 {
		t.Error("threshold ablation empty")
	}
	if r := AblationDoppler(quickOpts()); len(r.Table.Rows) == 0 {
		t.Error("doppler ablation empty")
	}
	if r := AblationBurst(quickOpts()); len(r.Table.Rows) == 0 {
		t.Error("burst ablation empty")
	}
	if r := AblationCSINoise(quickOpts()); len(r.Table.Rows) == 0 {
		t.Error("csi-noise ablation empty")
	}
	if r := AblationRician(quickOpts()); len(r.Table.Rows) == 0 {
		t.Error("rician ablation empty")
	}
}

func TestSeedSweep(t *testing.T) {
	r := SeedSweep(quickOpts())
	// One row per protocol plus one paired-delta row per CAEM variant.
	if len(r.Table.Rows) != 5 {
		t.Fatalf("seed sweep rows = %d, want 3 protocols + 2 delta rows", len(r.Table.Rows))
	}
	if got := r.Table.Rows[3][0]; !strings.Contains(got, "Scheme1") || !strings.Contains(got, "Δ") {
		t.Fatalf("delta row label = %q", got)
	}
	// The energy/pkt delta column must carry a paired CI (2 replicates).
	if got := r.Table.Rows[3][3]; !strings.Contains(got, "±") {
		t.Fatalf("paired delta cell = %q, want mean±CI", got)
	}
	var sawVerdict bool
	for _, n := range r.Notes {
		if strings.Contains(n, "significant") {
			sawVerdict = true
		}
	}
	if !sawVerdict {
		t.Fatalf("no significance verdict in notes: %v", r.Notes)
	}
}

// Every simulation-backed report must carry mean ± 95% CI cells when
// replications are on — the acceptance criterion that converts each
// downstream figure from anecdote to estimate.
func TestReportsCarryConfidenceIntervals(t *testing.T) {
	opts := quickOpts()
	for _, rep := range []Report{Figure11(opts), Figure12(opts), NetworkPerformance(opts), DynamicWorld(opts)} {
		found := false
		for _, row := range rep.Table.Rows {
			for _, cell := range row {
				if strings.Contains(cell, "±") {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s: no ± cell in any row", rep.ID)
		}
		csv := rep.Table.CSV()
		if !strings.Contains(csv, "±") {
			t.Errorf("%s: CSV lost the CI columns", rep.ID)
		}
	}
}

// A single replication must reproduce the legacy single-seed table
// shape: bare means, no interval glyphs.
func TestSingleReplicationHasNoIntervals(t *testing.T) {
	opts := quickOpts()
	opts.Replications, opts.Seeds = 1, nil
	r := Figure12(opts)
	for _, row := range r.Table.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "±") {
				t.Fatalf("1-rep cell %q carries a CI", cell)
			}
		}
	}
}

// Parallel sweeps must render byte-identical reports: every run owns its
// random streams, and the runner returns results in submission order, so
// the worker count cannot leak into any artifact.
func TestDynamicWorld(t *testing.T) {
	r := DynamicWorld(quickOpts())
	if len(r.Table.Rows) != 3 {
		t.Fatalf("DynamicWorld rows = %d, want one per protocol", len(r.Table.Rows))
	}
	if len(r.Notes) < 2 {
		t.Fatalf("DynamicWorld notes = %v", r.Notes)
	}
	if len(r.Charts) != 2 {
		t.Fatalf("DynamicWorld charts = %d, want 2", len(r.Charts))
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "did NOT survive") {
			t.Errorf("unexpected ordering inversion: %s", n)
		}
	}
}

func TestParallelReportsBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(Options) Report
	}{
		{"Figure9", Figure9},
		{"AblationDoppler", AblationDoppler},
		{"DynamicWorld", DynamicWorld},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := Options{Seed: 1, Scale: 0.1, Replications: 2, Workers: 1}
			parallel := Options{Seed: 1, Scale: 0.1, Replications: 2, Workers: 4}
			want := tc.run(serial).Render()
			got := tc.run(parallel).Render()
			if want != got {
				t.Fatalf("parallel report diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}

// TestReplicationDeterminism is the acceptance gate for the replicated
// statistics engine: the full cell × seed grid must aggregate
// bit-identically whether the runs execute serially or fan out across
// workers — rendered report AND raw CSV payload — because the runner
// returns results in submission order and every aggregation consumes
// them in that order.
func TestReplicationDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(Options) Report
	}{
		{"Figure11", Figure11},
		{"SeedSweep", SeedSweep},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := Options{Seed: 1, Scale: 0.1, Replications: 3, Workers: 1}
			parallel := Options{Seed: 1, Scale: 0.1, Replications: 3, Workers: 8}
			wantRep, gotRep := tc.run(serial), tc.run(parallel)
			if want, got := wantRep.Render(), gotRep.Render(); want != got {
				t.Fatalf("parallel replicated report diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
			if want, got := wantRep.Table.CSV(), gotRep.Table.CSV(); want != got {
				t.Fatalf("parallel replicated CSV diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}

func TestProgressCallback(t *testing.T) {
	opts := quickOpts()
	var lines int
	opts.Progress = func(string, ...any) { lines++ }
	TableI(opts) // no runs: no progress required
	Figure8(opts)
	if lines == 0 {
		t.Fatal("no progress lines emitted by Figure8")
	}
}

func TestFigureChartsPresent(t *testing.T) {
	opts := quickOpts()
	for _, rep := range []Report{Figure8(opts), Figure10(opts)} {
		if len(rep.Charts) == 0 {
			t.Errorf("%s has no chart", rep.ID)
			continue
		}
		svg := rep.Charts[0].SVG()
		if !strings.Contains(svg, "<polyline") {
			t.Errorf("%s chart has no data polylines", rep.ID)
		}
		if !strings.Contains(svg, "Scheme1") {
			t.Errorf("%s chart missing legend", rep.ID)
		}
	}
}
