// Fairness study: the cost of waiting for a perfect channel. Scheme 2
// fixes the transmission threshold at the 2 Mbps class, so sensors far
// from their cluster head — whose links rarely reach 16 dB — starve while
// nearby sensors monopolize the channel. Scheme 1's adaptive threshold
// returns bandwidth to them.
//
// The example reproduces the paper's §IV.C analysis per node: it buckets
// sensors by their delivered-packet share and prints the queue-length
// fairness index, using unbounded buffers as the paper does.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/caem"
)

func main() {
	cfg := caem.DefaultConfig()
	cfg.Nodes = 60
	cfg.FieldWidthM, cfg.FieldHeightM = 100, 100
	cfg.TrafficLoad = 8
	cfg.BufferCapacity = 0 // §IV.C: buffers large enough to never drop
	cfg.DurationSeconds = 300
	cfg.Seed = 5

	fmt.Println("fairness study: 60 nodes at 8 pkt/s, unbounded buffers, 300 s")
	fmt.Println()

	results, err := caem.RunComparison(cfg, caem.Scheme1, caem.Scheme2)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range results {
		shares := make([]uint64, 0, len(r.Nodes))
		var total uint64
		for _, n := range r.Nodes {
			shares = append(shares, n.DeliveredCount)
			total += n.DeliveredCount
		}
		sort.Slice(shares, func(i, j int) bool { return shares[i] < shares[j] })
		sum := func(xs []uint64) (s uint64) {
			for _, x := range xs {
				s += x
			}
			return
		}
		n := len(shares)
		bottom := sum(shares[:n/5])
		top := sum(shares[n-n/5:])

		fmt.Printf("%v:\n", r.Protocol)
		fmt.Printf("  queue-length stddev (fairness index): %8.2f\n", r.QueueStdDev)
		fmt.Printf("  mean packet delay:                    %8.1f ms (max %.0f ms)\n", r.MeanDelayMs, r.MaxDelayMs)
		fmt.Printf("  service share, bottom fifth of nodes: %8.1f%%\n", 100*float64(bottom)/float64(total))
		fmt.Printf("  service share, top fifth of nodes:    %8.1f%%\n", 100*float64(top)/float64(total))
		fmt.Printf("  deferrals for channel quality:        %8d\n\n", r.DeferralsCSI)
	}

	fmt.Println("Scheme 2 shows the starvation the paper warns about: a smaller bottom-fifth")
	fmt.Println("share and a larger queue spread. Scheme 1 narrows both at a modest energy cost.")
}
