// Package tone implements the tone signaling channel of CAEM (§III.A).
//
// The cluster head owns a second, low-power radio on a separate frequency.
// It broadcasts pulse series whose inter-pulse interval encodes the state
// of the shared data channel (Table I of the paper): idle, receive,
// transmit, collision. A sensor with a pending packet turns on its tone
// receiver, decodes the state from the pulse interval, and — because the
// tone channel shares propagation characteristics with the data channel
// and the link is reciprocal — estimates the data-channel CSI from the
// measured tone SNR.
//
// This package holds the pulse-pattern definitions, the interval decoder a
// sensor runs, and the CSI estimator. The event-driven broadcasting itself
// lives in internal/netsim, which charges tone-radio energy through
// internal/energy.
package tone

import (
	"fmt"

	"repro/internal/sim"
)

// State is the data-channel state advertised on the tone channel.
type State int

const (
	// Idle: the data channel is free; sensors may contend.
	Idle State = iota
	// Receive: the cluster head is receiving a burst; pulses every 10 ms
	// also let the sender re-adapt its error protection mid-burst.
	Receive
	// Transmit: the cluster head is sending processed data to the base
	// station. The paper defines the state but does not exercise it ("we
	// do not consider this in this paper at this stage"); it is modelled
	// for completeness and used by an extension experiment.
	Transmit
	// Collision: the cluster head detected packet corruption from
	// overlapping transmissions; senders must abort.
	Collision
	numStates
)

func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Receive:
		return "receive"
	case Transmit:
		return "transmit"
	case Collision:
		return "collision"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// States returns all tone states in declaration order.
func States() []State {
	out := make([]State, numStates)
	for i := range out {
		out[i] = State(i)
	}
	return out
}

// Pattern is the pulse series for one state: pulses of Duration sent every
// Interval, Repeat times (0 = repeat until the state changes).
type Pattern struct {
	State    State
	Duration sim.Time // pulse on-air duration
	Interval sim.Time // inter-pulse period identifying the state
	Repeat   int      // 0 = unbounded
}

// Scheme is the full Table I: one pattern per state, with intervals
// distinct enough to decode.
type Scheme struct {
	patterns [numStates]Pattern
}

// DefaultScheme returns the paper's tone parameters (§III.A, Table I):
//
//   - idle: 1 ms pulses every 50 ms, broadcast periodically while free;
//   - receive: 0.5 ms pulses every 10 ms while a burst is arriving;
//   - transmit: 0.5 ms pulses every 15 ms (state defined but unused at
//     this stage of the paper);
//   - collision: one 0.5 ms pulse pair at 5 ms spacing, sent once on
//     detecting corruption.
func DefaultScheme() Scheme {
	var s Scheme
	s.patterns[Idle] = Pattern{State: Idle, Duration: 1 * sim.Millisecond, Interval: 50 * sim.Millisecond, Repeat: 0}
	s.patterns[Receive] = Pattern{State: Receive, Duration: 500 * sim.Microsecond, Interval: 10 * sim.Millisecond, Repeat: 0}
	s.patterns[Transmit] = Pattern{State: Transmit, Duration: 500 * sim.Microsecond, Interval: 15 * sim.Millisecond, Repeat: 0}
	s.patterns[Collision] = Pattern{State: Collision, Duration: 500 * sim.Microsecond, Interval: 5 * sim.Millisecond, Repeat: 2}
	return s
}

// Pattern returns the pulse pattern for a state.
func (s Scheme) Pattern(st State) Pattern { return s.patterns[st] }

// Patterns returns all patterns in state order (Table I rows).
func (s Scheme) Patterns() []Pattern {
	out := make([]Pattern, numStates)
	for i := range s.patterns {
		out[i] = s.patterns[i]
	}
	return out
}

// Validate checks that the scheme is decodable: positive durations,
// intervals strictly longer than pulse durations, and pairwise-distinct
// intervals (the interval is the information carrier).
func (s Scheme) Validate() error {
	seen := map[sim.Time]State{}
	for st := State(0); st < numStates; st++ {
		p := s.patterns[st]
		if p.Duration <= 0 {
			return fmt.Errorf("tone: state %v has non-positive pulse duration %v", st, p.Duration)
		}
		if p.Interval <= p.Duration {
			return fmt.Errorf("tone: state %v interval %v not longer than pulse %v", st, p.Interval, p.Duration)
		}
		if prev, dup := seen[p.Interval]; dup {
			return fmt.Errorf("tone: states %v and %v share interval %v (undecodable)", prev, st, p.Interval)
		}
		seen[p.Interval] = st
		if p.Repeat < 0 {
			return fmt.Errorf("tone: state %v has negative repeat %d", st, p.Repeat)
		}
	}
	return nil
}

// Decode maps a measured inter-pulse interval back to the advertised
// state, tolerating up to tol of timing error. ok=false when no state
// matches (e.g. the sensor missed a pulse).
func (s Scheme) Decode(interval sim.Time, tol sim.Time) (State, bool) {
	for st := State(0); st < numStates; st++ {
		d := interval - s.patterns[st].Interval
		if d < 0 {
			d = -d
		}
		if d <= tol {
			return st, true
		}
	}
	return Idle, false
}

// MinDecodeTolerance returns the largest safe decoding tolerance: just
// under half the minimum gap between any two state intervals.
func (s Scheme) MinDecodeTolerance() sim.Time {
	var minGap sim.Time = 1<<62 - 1
	for a := State(0); a < numStates; a++ {
		for b := a + 1; b < numStates; b++ {
			g := s.patterns[a].Interval - s.patterns[b].Interval
			if g < 0 {
				g = -g
			}
			if g < minGap {
				minGap = g
			}
		}
	}
	return minGap/2 - 1
}

// DutyCycle returns the fraction of time the tone transmitter is on while
// continuously advertising the given state — the quantity that makes the
// tone channel "energy efficient" per §III.B (e.g. idle: 1 ms / 50 ms = 2%).
func (s Scheme) DutyCycle(st State) float64 {
	p := s.patterns[st]
	return p.Duration.Seconds() / p.Interval.Seconds()
}

// CSIEstimator turns a measured tone-pulse SNR into a data-channel CSI
// estimate. Because the paper assumes the two channels share attenuation
// and fading parameters and that links are reciprocal (§III.A assumptions
// 1-2), the estimate is the measured SNR plus a calibration offset (zero
// by default) and optional quantization to model a real estimator's
// resolution.
type CSIEstimator struct {
	// OffsetDB calibrates between tone-radio and data-radio link budgets.
	OffsetDB float64
	// QuantizeDB rounds the estimate to this granularity; 0 = exact.
	QuantizeDB float64
}

// Estimate returns the data-channel CSI inferred from a tone measurement.
func (e CSIEstimator) Estimate(toneSNRdB float64) float64 {
	v := toneSNRdB + e.OffsetDB
	if e.QuantizeDB > 0 {
		steps := v / e.QuantizeDB
		if steps >= 0 {
			steps = float64(int64(steps + 0.5))
		} else {
			steps = float64(int64(steps - 0.5))
		}
		v = steps * e.QuantizeDB
	}
	return v
}
