// Package metrics implements the measurement instruments for the paper's
// evaluation (§IV.A): energy traces, alive-node counts, network lifetime,
// per-packet energy, packet delay, aggregate throughput, delivery rate,
// and the queue-length standard deviation used as the short-term fairness
// index.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Welford is the numerically stable online mean/variance accumulator
// with min/max tracking, now provided by the shared statistics engine
// (population-variance semantics; see internal/stats for the
// sample-statistics Stream the replicated experiments use).
type Welford = stats.Welford

// Point is one (time, value) sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// TimeSeries records sampled values over simulation time (e.g. average
// remaining energy for Fig. 8, alive count for Fig. 9).
type TimeSeries struct {
	Name   string
	points []Point
}

// NewTimeSeries returns an empty named series. There is deliberately no
// in-place reset: a finished run's series belong to its Result, so the
// reusable simulation context allocates fresh series instead of
// truncating ones a caller may still hold.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Record appends a sample. Samples must be appended in non-decreasing time
// order; out-of-order appends panic because downstream interpolation
// relies on ordering.
func (ts *TimeSeries) Record(t sim.Time, v float64) {
	if n := len(ts.points); n > 0 && ts.points[n-1].T > t {
		panic(fmt.Sprintf("metrics: out-of-order sample at %v after %v in %q", t, ts.points[n-1].T, ts.Name))
	}
	ts.points = append(ts.points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns the samples (callers must not mutate).
func (ts *TimeSeries) Points() []Point { return ts.points }

// At returns the last recorded value at or before t (step interpolation);
// ok=false before the first sample.
func (ts *TimeSeries) At(t sim.Time) (float64, bool) {
	i := sort.Search(len(ts.points), func(i int) bool { return ts.points[i].T > t })
	if i == 0 {
		return 0, false
	}
	return ts.points[i-1].V, true
}

// FirstCrossingBelow returns the earliest sample time at which the series
// value is <= level; ok=false if it never crosses.
func (ts *TimeSeries) FirstCrossingBelow(level float64) (sim.Time, bool) {
	for _, p := range ts.points {
		if p.V <= level {
			return p.T, true
		}
	}
	return 0, false
}

// Downsample returns at most n approximately evenly spaced points (always
// keeping the first and last), for plotting/printing.
func (ts *TimeSeries) Downsample(n int) []Point {
	if n <= 0 || len(ts.points) <= n {
		return append([]Point(nil), ts.points...)
	}
	out := make([]Point, 0, n)
	step := float64(len(ts.points)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, ts.points[int(float64(i)*step+0.5)])
	}
	out[len(out)-1] = ts.points[len(ts.points)-1]
	return out
}

// DelayStats accumulates packet delays (creation → delivery at the CH),
// tracking mean/max/stddev plus a constant-memory P² estimate of the
// 95th percentile (the tail the mean hides under bursty service).
type DelayStats struct {
	w   Welford
	p95 stats.Quantile
}

// Observe records one delivered packet's delay.
func (d *DelayStats) Observe(delay sim.Time) {
	if d.w.Count() == 0 {
		d.p95 = stats.NewQuantile(0.95)
	}
	d.w.Add(delay.Millis())
	d.p95.Add(delay.Millis())
}

// Count returns delivered-packet count.
func (d *DelayStats) Count() uint64 { return d.w.Count() }

// MeanMs returns the average delay in milliseconds (§IV.A measures delay
// in ms).
func (d *DelayStats) MeanMs() float64 { return d.w.Mean() }

// MaxMs returns the largest observed delay in milliseconds.
func (d *DelayStats) MaxMs() float64 { return d.w.Max() }

// StdDevMs returns the delay standard deviation in milliseconds.
func (d *DelayStats) StdDevMs() float64 { return d.w.StdDev() }

// P95Ms returns the streaming 95th-percentile delay estimate in
// milliseconds (0 when no packet has been delivered, matching the
// other accessors' empty behaviour).
func (d *DelayStats) P95Ms() float64 {
	if d.w.Count() == 0 {
		return 0
	}
	return d.p95.Value()
}

// FairnessProbe computes the paper's short-term fairness index: the
// standard deviation of per-node queue lengths, snapshotted periodically
// and averaged over the observation window (§IV.C, Fig. 12).
type FairnessProbe struct {
	snapshots Welford
}

// Snapshot records one instant's queue lengths across all alive nodes.
func (f *FairnessProbe) Snapshot(queueLengths []int) {
	n := len(queueLengths)
	if n == 0 {
		return
	}
	var sum float64
	for _, q := range queueLengths {
		sum += float64(q)
	}
	mean := sum / float64(n)
	var ss float64
	for _, q := range queueLengths {
		d := float64(q) - mean
		ss += d * d
	}
	f.snapshots.Add(math.Sqrt(ss / float64(n)))
}

// Snapshots returns how many snapshots were taken.
func (f *FairnessProbe) Snapshots() uint64 { return f.snapshots.Count() }

// MeanStdDev returns the average of the snapshot standard deviations —
// the Fig. 12 y-axis.
func (f *FairnessProbe) MeanStdDev() float64 { return f.snapshots.Mean() }

// Lifetime tracks node deaths (and scenario revivals) and derives the
// network lifetime: the paper calls the network dead once the fraction of
// dead nodes passes a threshold (value lost in the scan; DESIGN.md fixes
// 80%). With revivals in play the dead count is a step function of time,
// so the lifetime is the first instant the *concurrent* dead fraction
// reaches the threshold — a node dying twice is not double-counted.
type Lifetime struct {
	total      int
	deadTimes  []sim.Time
	deltas     []lifeDelta // +1 death / -1 revival, in occurrence order
	deadsSoFar int
}

type lifeDelta struct {
	at    sim.Time
	delta int
}

// NewLifetime tracks a population of total nodes.
func NewLifetime(total int) *Lifetime {
	return &Lifetime{total: total}
}

// Reset rewinds the tracker to a fresh NewLifetime(total) state while
// keeping the event storage. The reuse path for pooled simulation
// contexts (death times handed to a Result are copied, never aliased).
func (l *Lifetime) Reset(total int) {
	l.total = total
	l.deadTimes = l.deadTimes[:0]
	l.deltas = l.deltas[:0]
	l.deadsSoFar = 0
}

// NodeDied records one death.
func (l *Lifetime) NodeDied(at sim.Time) {
	l.deadsSoFar++
	l.deadTimes = append(l.deadTimes, at)
	l.deltas = append(l.deltas, lifeDelta{at: at, delta: 1})
}

// NodeRevived records one node returning to service at the given time
// (scenario world events). The death history is retained — FirstDeath
// keeps reporting the first exhaustion — while Alive and NetworkDeadAt
// reflect the concurrent population.
func (l *Lifetime) NodeRevived(at sim.Time) {
	if l.deadsSoFar == 0 {
		panic("metrics: NodeRevived without a prior death")
	}
	l.deadsSoFar--
	l.deltas = append(l.deltas, lifeDelta{at: at, delta: -1})
}

// Alive returns the current alive count.
func (l *Lifetime) Alive() int { return l.total - l.deadsSoFar }

// Deaths returns the death times in occurrence order.
func (l *Lifetime) Deaths() []sim.Time { return l.deadTimes }

// FirstDeath returns the time of the first exhaustion; ok=false if none.
func (l *Lifetime) FirstDeath() (sim.Time, bool) {
	if len(l.deadTimes) == 0 {
		return 0, false
	}
	return l.deadTimes[0], true
}

// NetworkDeadAt returns the first time the concurrent dead fraction
// reached deadFraction; ok=false if it never did. Revivals lower the
// concurrent count, so a churn world where nodes die, return, and die
// again is judged on how many are dead at once, not on cumulative death
// events.
func (l *Lifetime) NetworkDeadAt(deadFraction float64) (sim.Time, bool) {
	need := int(math.Ceil(deadFraction * float64(l.total)))
	if need < 1 {
		need = 1
	}
	dead := 0
	for _, d := range l.deltas {
		dead += d.delta
		if dead >= need {
			return d.at, true
		}
	}
	return 0, false
}

// Throughput accumulates delivered payload for the aggregate network
// throughput metric (kbps over the observation window, §IV.A).
type Throughput struct {
	deliveredBits uint64
	generated     uint64
	delivered     uint64
	droppedBuffer uint64
	droppedRetry  uint64
}

// PacketGenerated counts one generated packet.
func (t *Throughput) PacketGenerated() { t.generated++ }

// PacketDelivered counts one packet of the given size arriving at a sink.
func (t *Throughput) PacketDelivered(sizeBits int) {
	t.delivered++
	t.deliveredBits += uint64(sizeBits)
}

// PacketDroppedBuffer counts one buffer-overflow loss.
func (t *Throughput) PacketDroppedBuffer() { t.droppedBuffer++ }

// PacketDroppedRetry counts one retry-cap loss.
func (t *Throughput) PacketDroppedRetry() { t.droppedRetry++ }

// Generated returns the packets generated.
func (t *Throughput) Generated() uint64 { return t.generated }

// Delivered returns the packets delivered.
func (t *Throughput) Delivered() uint64 { return t.delivered }

// DroppedBuffer returns buffer-overflow losses.
func (t *Throughput) DroppedBuffer() uint64 { return t.droppedBuffer }

// DroppedRetry returns retry-cap losses.
func (t *Throughput) DroppedRetry() uint64 { return t.droppedRetry }

// DeliveryRate returns delivered/generated in [0, 1]; 0 when nothing was
// generated.
func (t *Throughput) DeliveryRate() float64 {
	if t.generated == 0 {
		return 0
	}
	return float64(t.delivered) / float64(t.generated)
}

// AggregateKbps returns the delivered-payload rate over the window.
func (t *Throughput) AggregateKbps(window sim.Time) float64 {
	s := window.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(t.deliveredBits) / s / 1000
}
