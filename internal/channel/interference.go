package channel

// InterferenceField tracks externally-imposed SNR penalties per node —
// the channel-layer model of cross-network interference bursts (a
// co-located WiFi deployment, a jammer, a microwave oven). A burst
// assigns each affected node a penalty in dB; a link's effective SNR is
// reduced by the strongest penalty at either endpoint, since the
// interferer raises the noise floor the receiver integrates over
// regardless of which side is receiving.
//
// Bursts may overlap: per-node penalties stack additively while their
// burst counts overlap, and a node's penalty snaps back to exactly zero
// when its last burst ends, so no floating-point residue survives an
// outage. The zero-penalty fast path is one integer compare, keeping
// the CSI hot path unaffected for scenarios without interference.
type InterferenceField struct {
	penalty []float64 // summed active penalty per node, dB
	bursts  []int     // active burst count per node
	active  int       // nodes with at least one active burst
}

// Reset sizes the field for n nodes and clears every active burst,
// reusing backing storage when the size is unchanged.
func (f *InterferenceField) Reset(n int) {
	if len(f.penalty) != n {
		f.penalty = make([]float64, n)
		f.bursts = make([]int, n)
	} else {
		clear(f.penalty)
		clear(f.bursts)
	}
	f.active = 0
}

// Add imposes db of penalty on node i for the duration of one burst.
func (f *InterferenceField) Add(i int, db float64) {
	if f.bursts[i] == 0 {
		f.active++
	}
	f.bursts[i]++
	f.penalty[i] += db
}

// Remove ends one burst's contribution of db on node i. The penalty
// returns to exactly zero when no bursts remain.
func (f *InterferenceField) Remove(i int, db float64) {
	if f.bursts[i] <= 0 {
		return
	}
	f.bursts[i]--
	if f.bursts[i] == 0 {
		f.active--
		f.penalty[i] = 0
	} else {
		f.penalty[i] -= db
	}
}

// PenaltyDB returns the SNR loss on the link between nodes a and b: the
// larger of the two endpoint penalties, or 0 when neither is inside an
// active burst.
func (f *InterferenceField) PenaltyDB(a, b int) float64 {
	if f.active == 0 {
		return 0
	}
	p := f.penalty[a]
	if q := f.penalty[b]; q > p {
		p = q
	}
	return p
}

// Active reports whether any node currently suffers a penalty.
func (f *InterferenceField) Active() bool { return f.active > 0 }
