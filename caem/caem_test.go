package caem

import (
	"math"
	"testing"
)

// quickConfig is a small, fast public-API configuration.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 20
	cfg.FieldWidthM, cfg.FieldHeightM = 50, 50
	cfg.DurationSeconds = 40
	cfg.SampleIntervalSeconds = 2
	return cfg
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 100 {
		t.Errorf("Nodes = %d, want 100", cfg.Nodes)
	}
	if cfg.PacketSizeBits != 2000 {
		t.Errorf("PacketSizeBits = %d, want 2000 (2 Kbits)", cfg.PacketSizeBits)
	}
	if cfg.BufferCapacity != 50 {
		t.Errorf("BufferCapacity = %d, want 50", cfg.BufferCapacity)
	}
	if cfg.InitialEnergyJ != 10 {
		t.Errorf("InitialEnergyJ = %v, want 10", cfg.InitialEnergyJ)
	}
	if cfg.TrafficLoad != 5 {
		t.Errorf("TrafficLoad = %v, want 5", cfg.TrafficLoad)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestProtocolStrings(t *testing.T) {
	if PureLEACH.String() != "pure-LEACH" || Scheme1.String() != "CAEM-scheme1" || Scheme2.String() != "CAEM-scheme2" {
		t.Fatal("protocol names wrong")
	}
	if len(Protocols()) != 3 {
		t.Fatal("Protocols() should list 3 variants")
	}
}

func TestRunProducesConsistentResult(t *testing.T) {
	cfg := quickConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != cfg.Protocol {
		t.Error("result protocol mismatch")
	}
	if res.DurationSeconds <= 0 || res.Rounds <= 0 {
		t.Errorf("duration %v, rounds %d", res.DurationSeconds, res.Rounds)
	}
	if res.Generated == 0 || res.Delivered == 0 {
		t.Fatal("no traffic moved")
	}
	if res.DeliveryRate < 0 || res.DeliveryRate > 1 {
		t.Errorf("delivery rate %v", res.DeliveryRate)
	}
	if len(res.Nodes) != cfg.Nodes {
		t.Errorf("node outcomes %d, want %d", len(res.Nodes), cfg.Nodes)
	}
	if len(res.EnergySeries) == 0 || len(res.AliveSeries) == 0 {
		t.Error("time series empty")
	}
	var share float64
	for _, s := range res.ModeShare {
		share += s
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("mode shares sum to %v", share)
	}
	if res.Summary() == "" {
		t.Error("empty summary")
	}
	// Energy breakdown sums to total consumed.
	var sum float64
	for _, j := range res.EnergyBreakdown {
		sum += j
	}
	if math.Abs(sum-res.TotalConsumedJ) > 1e-6 {
		t.Errorf("breakdown %v != consumed %v", sum, res.TotalConsumedJ)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := quickConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalConsumedJ != b.TotalConsumedJ || a.Delivered != b.Delivered || a.MeanDelayMs != b.MeanDelayMs {
		t.Fatal("equal configs diverged")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := quickConfig()
	cfg.Nodes = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted an invalid config")
	}
	cfg = quickConfig()
	cfg.Protocol = Protocol(99)
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted an unknown protocol")
	}
}

func TestRunComparison(t *testing.T) {
	results, err := RunComparison(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("comparison returned %d results", len(results))
	}
	for i, p := range Protocols() {
		if results[i].Protocol != p {
			t.Errorf("result %d is %v, want %v", i, results[i].Protocol, p)
		}
	}
	// All variants face the same topology + traffic (same seed).
	if results[0].Generated != results[1].Generated || results[1].Generated != results[2].Generated {
		t.Error("comparison runs generated different traffic")
	}
	// The paper's headline ordering.
	leach, s1, s2 := results[0], results[1], results[2]
	if !(s2.TotalConsumedJ < s1.TotalConsumedJ && s1.TotalConsumedJ < leach.TotalConsumedJ) {
		t.Errorf("energy ordering: leach=%.1f s1=%.1f s2=%.1f",
			leach.TotalConsumedJ, s1.TotalConsumedJ, s2.TotalConsumedJ)
	}
}

func TestRunComparisonSubset(t *testing.T) {
	results, err := RunComparison(quickConfig(), Scheme2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Protocol != Scheme2 {
		t.Fatal("subset comparison wrong")
	}
}

// RunSeeds must return seed-ordered results that match individual Run
// calls exactly, for any worker count.
func TestRunSeedsMatchesIndividualRuns(t *testing.T) {
	cfg := quickConfig()
	seeds := []uint64{3, 1, 7}
	want := make([]Result, len(seeds))
	for i, s := range seeds {
		cc := cfg
		cc.Seed = s
		r, err := Run(cc)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, workers := range []int{1, 0, 8} {
		cc := cfg
		cc.Workers = workers
		got, err := RunSeeds(cc, seeds)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(seeds) {
			t.Fatalf("workers=%d: %d results for %d seeds", workers, len(got), len(seeds))
		}
		for i := range seeds {
			if got[i].TotalConsumedJ != want[i].TotalConsumedJ ||
				got[i].Delivered != want[i].Delivered ||
				got[i].MeanDelayMs != want[i].MeanDelayMs {
				t.Fatalf("workers=%d: seed %d diverged from an individual run", workers, seeds[i])
			}
		}
	}
}

func TestAdvancedOverrides(t *testing.T) {
	cfg := quickConfig()
	cfg.Advanced = Advanced{
		RoundLengthSeconds: 5,
		DopplerHz:          4,
		QueueThreshold:     10,
		MinBurst:           2,
		MaxBurst:           4,
		StartupTimeMicros:  100,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 40 s / 5 s rounds = 8 rounds (+1 tolerance at the boundary).
	if res.Rounds < 8 || res.Rounds > 9 {
		t.Errorf("rounds = %d with 5 s rounds over 40 s", res.Rounds)
	}
	// Disabling shadowing via the negative sentinel still validates.
	cfg.Advanced.ShadowingSigmaDB = -1
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStopWhenNetworkDeadPublic(t *testing.T) {
	cfg := quickConfig()
	cfg.InitialEnergyJ = 0.2
	cfg.DurationSeconds = 1000
	cfg.StopWhenNetworkDead = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NetworkDead {
		t.Fatal("network survived on 0.2 J")
	}
	if res.DurationSeconds >= 1000 {
		t.Fatal("did not stop early")
	}
	if res.NetworkLifetimeSeconds <= 0 || res.NetworkLifetimeSeconds > res.DurationSeconds {
		t.Fatalf("lifetime %v outside run (%v)", res.NetworkLifetimeSeconds, res.DurationSeconds)
	}
}

func TestRoundOutcomesExposed(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundOutcomes) != res.Rounds {
		t.Fatalf("round outcomes %d != rounds %d", len(res.RoundOutcomes), res.Rounds)
	}
	var delivered uint64
	for _, r := range res.RoundOutcomes {
		if r.Heads < 1 {
			t.Fatalf("round %d has no head", r.Index)
		}
		delivered += r.Delivered
	}
	if delivered != res.Delivered {
		t.Fatalf("per-round delivered %d != total %d", delivered, res.Delivered)
	}
}
