// Package geom provides the 2-D geometry primitives used to lay out the
// sensor field: points, distances, and node-placement strategies.
package geom

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Point is a position on the sensor field, in meters.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q in meters.
func (p Point) Distance(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Field is the rectangular testing field, anchored at the origin.
type Field struct {
	Width, Height float64 // meters
}

// Contains reports whether p lies inside the field (inclusive borders).
func (f Field) Contains(p Point) bool {
	return p.X >= 0 && p.X <= f.Width && p.Y >= 0 && p.Y <= f.Height
}

// Center returns the field's center point.
func (f Field) Center() Point { return Point{X: f.Width / 2, Y: f.Height / 2} }

// Diagonal returns the field's diagonal length, the maximum possible
// node-to-node distance.
func (f Field) Diagonal() float64 { return math.Hypot(f.Width, f.Height) }

// PlaceUniform scatters n points independently and uniformly over the
// field, the deployment model used in the paper ("sensors are deployed in
// a forest or battlefield").
func PlaceUniform(f Field, n int, r *rng.Stream) []Point {
	return PlaceUniformInto(make([]Point, 0, n), f, n, r)
}

// PlaceUniformInto is PlaceUniform writing into dst (appended from
// length zero), so a reused simulation context re-places its geometry
// without reallocating. The draws are identical to PlaceUniform's.
func PlaceUniformInto(dst []Point, f Field, n int, r *rng.Stream) []Point {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, Point{X: r.Float64() * f.Width, Y: r.Float64() * f.Height})
	}
	return dst
}

// PlaceGrid lays n points on the most-square grid that fits them, with
// half-cell margins. Deterministic; used by examples that want
// reproducible geometry without an RNG.
func PlaceGrid(f Field, n int) []Point {
	if n <= 0 {
		return nil
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		r := i / cols
		c := i % cols
		pts = append(pts, Point{
			X: (float64(c) + 0.5) * f.Width / float64(cols),
			Y: (float64(r) + 0.5) * f.Height / float64(rows),
		})
	}
	return pts
}

// Nearest returns the index of the candidate nearest to p, and the
// distance. It panics on an empty candidate list.
func Nearest(p Point, candidates []Point) (int, float64) {
	if len(candidates) == 0 {
		panic("geom: Nearest with no candidates")
	}
	best := 0
	bestD := p.Distance(candidates[0])
	for i := 1; i < len(candidates); i++ {
		if d := p.Distance(candidates[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
