package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Wire bodies of the lease protocol. Leases and results reuse the Lease
// and CellResult JSON forms directly.
type claimRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

type settleRequest struct {
	Results []CellResult `json:"results"`
}

// RegisterHTTP mounts the lease protocol and cluster observability on
// mux:
//
//	POST /v1/leases/claim         {"worker","max"} → 200 Lease | 204 no work
//	POST /v1/leases/{id}/renew    → 204 | 410 lease gone
//	POST /v1/leases/{id}/complete {"results":[...]} → 204 | 410
//	POST /v1/leases/{id}/release  {"results":[...]} → 204 | 410
//	GET  /v1/cluster/status       → Status
//
// The legacy unversioned paths stay mounted for one release: the POST
// routes as aliases (a 301 would make net/http clients replay the
// request as a bodyless GET), the status GET as a 301 to its /v1
// twin. Errors use the uniform api envelope; 410 Gone maps to
// ErrLeaseGone on the Remote side, where the worker drops the batch
// and claims fresh work.
func (c *Coordinator) RegisterHTTP(mux *http.ServeMux) {
	c.registerHTTP(mux, nil)
}

// RegisterHTTPObserved mounts the same routes as RegisterHTTP with
// per-route request-count and latency instrumentation on reg, labeled
// by the mux pattern.
func (c *Coordinator) RegisterHTTPObserved(mux *http.ServeMux, reg *obs.Registry) {
	c.registerHTTP(mux, reg)
}

func (c *Coordinator) registerHTTP(mux *http.ServeMux, reg *obs.Registry) {
	handle := func(pattern string, h http.HandlerFunc) {
		if reg != nil {
			mux.Handle(pattern, obs.WrapHandler(reg, pattern, h))
			return
		}
		mux.HandleFunc(pattern, h)
	}
	// post mounts a POST route at its canonical /v1 path and, for one
	// release, at the legacy unversioned path.
	post := func(path string, h http.HandlerFunc) {
		handle("POST /v1"+path, h)
		handle("POST "+path, h)
	}
	post("/leases/claim", func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest,
				fmt.Sprintf("bad claim body: %v", err), nil)
			return
		}
		if req.Worker == "" {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest,
				"claim needs a worker name", nil)
			return
		}
		lease, err := c.Claim(req.Worker, req.Max)
		if err != nil {
			switch {
			case errors.Is(err, ErrDraining):
				// 503 + Retry-After: workers back off and retry (or fail over
				// to a standby) instead of tight-looping against a drain.
				sec := int(c.opts.LeaseTTL.Seconds())
				if sec < 1 {
					sec = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(sec))
				api.WriteError(w, http.StatusServiceUnavailable, api.CodeUnavailable, err.Error(), nil)
			case errors.Is(err, ErrFenced):
				api.WriteError(w, http.StatusGone, api.CodeFenced, err.Error(), nil)
			default:
				api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, err.Error(), nil)
			}
			return
		}
		if lease == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(lease)
	})
	post("/leases/{id}/renew", func(w http.ResponseWriter, r *http.Request) {
		settleHTTP(w, c.Renew(r.PathValue("id")))
	})
	post("/leases/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		var req settleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest,
				fmt.Sprintf("bad complete body: %v", err), nil)
			return
		}
		settleHTTP(w, c.Complete(r.PathValue("id"), req.Results))
	})
	post("/leases/{id}/release", func(w http.ResponseWriter, r *http.Request) {
		var req settleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest,
				fmt.Sprintf("bad release body: %v", err), nil)
			return
		}
		settleHTTP(w, c.Release(r.PathValue("id"), req.Results))
	})
	handle("GET /v1/cluster/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Status())
	})
	handle("GET /cluster/status", api.RedirectV1)
}

func settleHTTP(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrFenced):
		// Same 410 as a gone lease — the worker must drop the batch either
		// way — but with a distinct code so it also re-resolves the leader.
		api.WriteError(w, http.StatusGone, api.CodeFenced, err.Error(), nil)
	case errors.Is(err, ErrLeaseGone):
		api.WriteError(w, http.StatusGone, api.CodeGone, err.Error(), nil)
	case err != nil:
		api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, err.Error(), nil)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

// Remote is the worker-side Queue over HTTP: the client half of
// RegisterHTTP, used by cmd/caem-serve -join. It targets the /v1
// paths; joining a pre-/v1 coordinator is not supported (the reverse
// — a pre-/v1 worker joining this coordinator — works through the
// legacy aliases).
//
// For failover deployments list every coordinator (primary and
// standbys) in Bases: a connection failure, a fenced response, or a
// 503 rotates the Remote to the next URL, so a worker converges on
// whichever member currently leads without any explicit signal.
type Remote struct {
	// Base is the coordinator's base URL (no trailing slash needed).
	// Ignored when Bases is non-empty.
	Base string
	// Bases lists every coordinator URL in the cluster, primary first
	// by convention. The Remote targets one at a time and rotates on
	// failure.
	Bases []string
	// Client overrides http.DefaultClient when non-nil.
	Client *http.Client

	mu  sync.Mutex
	cur int
}

func (r *Remote) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

func (r *Remote) allBases() []string {
	if len(r.Bases) > 0 {
		return r.Bases
	}
	return []string{r.Base}
}

// base returns the currently targeted coordinator URL.
func (r *Remote) base() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.allBases()
	return strings.TrimRight(b[r.cur%len(b)], "/")
}

// rotate advances to the next coordinator URL after a failure talking
// to the current one. With a single base it is a no-op.
func (r *Remote) rotate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.allBases()); n > 1 {
		r.cur = (r.cur + 1) % n
	}
}

// retarget points the Remote at url. A url matching one of the
// configured bases (modulo trailing slash) is selected in place; an
// unknown url — a leader advertising an address that was not in the
// worker's -join list, common when the cluster re-addresses across a
// failover — is adopted into Bases and targeted, so ResolveLeader
// converges on the advertised leader instead of blindly rotating
// through stale configured members.
func (r *Remote) retarget(url string) {
	want := strings.TrimRight(url, "/")
	if want == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, b := range r.allBases() {
		if strings.TrimRight(b, "/") == want {
			r.cur = i
			return
		}
	}
	if len(r.Bases) == 0 {
		r.Bases = append(r.Bases, strings.TrimRight(r.Base, "/"))
	}
	r.Bases = append(r.Bases, want)
	r.cur = len(r.Bases) - 1
}

// decodeError maps a non-2xx response to the protocol error it
// carries, branching on the envelope code where the status alone is
// ambiguous (410 is both "lease gone" and "fenced").
func decodeError(path string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
	var body struct {
		Error api.Error `json:"error"`
	}
	code := ""
	if json.Unmarshal(msg, &body) == nil {
		code = body.Error.Code
	}
	switch {
	case code == api.CodeFenced:
		return ErrFenced
	case resp.StatusCode == http.StatusGone:
		return ErrLeaseGone
	case resp.StatusCode == http.StatusServiceUnavailable:
		return &UnavailableError{RetryAfter: retryAfterHint(resp)}
	}
	return fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
}

// retryAfterHint reads a 503's Retry-After seconds, defaulting to 1s.
func retryAfterHint(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return time.Second
}

// checkFailover rotates to the next coordinator URL on errors that
// mean "this member cannot serve me": connection failures, fenced
// epochs, and 503s (a standby that has not taken over yet).
func (r *Remote) checkFailover(err error) {
	var ua *UnavailableError
	if errors.Is(err, ErrFenced) || errors.As(err, &ua) {
		r.rotate()
	}
}

// post sends a JSON body and decodes a 2xx response into out (when
// non-nil). 410 maps to ErrLeaseGone or ErrFenced by envelope code,
// 503 to *UnavailableError; 204 leaves out untouched.
func (r *Remote) post(path string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	resp, err := r.client().Post(r.base()+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		r.rotate()
		return fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil
	case resp.StatusCode >= 300:
		perr := decodeError(path, resp)
		r.checkFailover(perr)
		return perr
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Claim implements Queue.
func (r *Remote) Claim(worker string, max int) (*Lease, error) {
	blob, err := json.Marshal(claimRequest{Worker: worker, Max: max})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	resp, err := r.client().Post(r.base()+"/v1/leases/claim", "application/json", bytes.NewReader(blob))
	if err != nil {
		r.rotate()
		return nil, fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil, nil
	case resp.StatusCode >= 300:
		perr := decodeError("claim", resp)
		r.checkFailover(perr)
		return nil, perr
	}
	var lease Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		return nil, fmt.Errorf("cluster: decoding lease: %w", err)
	}
	return &lease, nil
}

// ResolveLeader asks the currently targeted member (leader or standby)
// who leads and re-targets the Remote at that URL when it is among the
// configured bases. Workers call it after a fenced response to skip
// straight to the new leader instead of probing bases in order.
func (r *Remote) ResolveLeader() (LeaderInfo, error) {
	resp, err := r.client().Get(r.base() + "/v1/cluster/leader")
	if err != nil {
		r.rotate()
		return LeaderInfo{}, fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return LeaderInfo{}, decodeError("leader", resp)
	}
	var info LeaderInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return LeaderInfo{}, fmt.Errorf("cluster: decoding leader info: %w", err)
	}
	if info.LeaderURL != "" {
		r.retarget(info.LeaderURL)
	}
	return info, nil
}

// Renew implements Queue.
func (r *Remote) Renew(leaseID string) error {
	return r.post("/v1/leases/"+leaseID+"/renew", struct{}{}, nil)
}

// Complete implements Queue.
func (r *Remote) Complete(leaseID string, results []CellResult) error {
	return r.post("/v1/leases/"+leaseID+"/complete", settleRequest{Results: results}, nil)
}

// Release implements Queue.
func (r *Remote) Release(leaseID string, results []CellResult) error {
	return r.post("/v1/leases/"+leaseID+"/release", settleRequest{Results: results}, nil)
}

// WaitIdle polls the coordinator until it reports no queued, delayed,
// or leased work, or the timeout elapses — a convenience for tests and
// scripted drains.
func (r *Remote) WaitIdle(timeout, poll time.Duration) (Status, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := r.client().Get(r.base() + "/v1/cluster/status")
		if err == nil {
			var st Status
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr == nil && st.Queue == 0 && st.Delayed == 0 && len(st.Leases) == 0 {
				return st, nil
			}
		}
		if time.Now().After(deadline) {
			return Status{}, fmt.Errorf("cluster: coordinator not idle after %v", timeout)
		}
		time.Sleep(poll)
	}
}
