package caem

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// SeriesPoint is one sample of a simulation time series.
type SeriesPoint struct {
	TimeSeconds float64
	Value       float64
}

// RoundOutcome summarizes one LEACH round.
type RoundOutcome struct {
	Index        int
	StartSeconds float64
	EndSeconds   float64
	Heads        int
	AliveAtStart int
	Delivered    uint64
	ConsumedJ    float64
	Collisions   uint64
}

// NodeOutcome is the per-node slice of a Result.
type NodeOutcome struct {
	Index          int
	RemainingJ     float64
	ConsumedJ      float64
	Dead           bool
	DiedAtSeconds  float64
	QueueLen       int
	DeliveredCount uint64
}

// Result holds everything one simulation run measured. Fields follow the
// paper's evaluation metrics (§IV.A).
type Result struct {
	Protocol Protocol

	// DurationSeconds is the simulated time actually covered.
	DurationSeconds float64
	// Rounds is the number of LEACH rounds started.
	Rounds int

	// Energy and lifetime.
	AvgRemainingJ          float64
	TotalConsumedJ         float64
	AliveAtEnd             int
	FirstDeathSeconds      float64
	FirstDeathValid        bool
	NetworkLifetimeSeconds float64
	NetworkDead            bool
	// EnergyPerPacketMilliJ is the communication energy per successfully
	// delivered packet (Fig. 11's metric).
	EnergyPerPacketMilliJ float64
	// EnergyBreakdown maps consumption cause to Joules network-wide.
	EnergyBreakdown map[string]float64

	// Network performance.
	Generated      uint64
	Delivered      uint64
	DroppedBuffer  uint64
	DroppedRetry   uint64
	DeliveryRate   float64
	ThroughputKbps float64
	MeanDelayMs    float64
	P95DelayMs     float64
	MaxDelayMs     float64

	// Fairness: time-averaged standard deviation of per-node queue
	// lengths (Fig. 12's metric).
	QueueStdDev float64

	// MAC behaviour.
	Collisions    uint64
	ChannelFails  uint64
	DeferralsCSI  uint64
	DeferralsBusy uint64
	// ModeShare[i] is the fraction of delivered packets sent at ABICM
	// class i (0 = 250 kbps ... 3 = 2 Mbps).
	ModeShare []float64

	// Time series for the figure-style plots.
	EnergySeries []SeriesPoint // average remaining J vs time (Fig. 8)
	AliveSeries  []SeriesPoint // alive node count vs time (Fig. 9)

	// Per-node outcomes.
	Nodes []NodeOutcome

	// Rounds detail, one entry per LEACH round.
	RoundOutcomes []RoundOutcome
}

func publicResult(c Config, r core.Result) Result {
	out := Result{
		Protocol:              c.Protocol,
		DurationSeconds:       r.Elapsed.Seconds(),
		Rounds:                r.Rounds,
		AvgRemainingJ:         r.AvgRemainingJ,
		TotalConsumedJ:        r.TotalConsumedJ,
		AliveAtEnd:            r.AliveAtEnd,
		Generated:             r.Generated,
		Delivered:             r.Delivered,
		DroppedBuffer:         r.DroppedBuffer,
		DroppedRetry:          r.DroppedRetry,
		DeliveryRate:          r.DeliveryRate,
		ThroughputKbps:        r.AggregateKbps,
		MeanDelayMs:           r.MeanDelayMs,
		P95DelayMs:            r.P95DelayMs,
		MaxDelayMs:            r.MaxDelayMs,
		QueueStdDev:           r.QueueStdDev,
		Collisions:            r.MAC.Collisions,
		ChannelFails:          r.MAC.ChannelFails,
		DeferralsCSI:          r.MAC.DeferralsCSI,
		DeferralsBusy:         r.MAC.DeferralsBusy,
		EnergyBreakdown:       make(map[string]float64, len(r.EnergyByCause)),
		EnergyPerPacketMilliJ: 1000 * r.EnergyPerPktJ,
	}
	if r.FirstDeathValid {
		out.FirstDeathSeconds, out.FirstDeathValid = r.FirstDeath.Seconds(), true
	}
	if r.NetworkDead {
		out.NetworkLifetimeSeconds, out.NetworkDead = r.NetworkLifetime.Seconds(), true
	}
	for c, j := range r.EnergyByCause {
		out.EnergyBreakdown[c.String()] = j
	}
	var totalModes uint64
	for _, m := range r.ModeCounts {
		totalModes += m
	}
	out.ModeShare = make([]float64, len(r.ModeCounts))
	if totalModes > 0 {
		for i, m := range r.ModeCounts {
			out.ModeShare[i] = float64(m) / float64(totalModes)
		}
	}
	for _, p := range r.EnergySeries.Points() {
		out.EnergySeries = append(out.EnergySeries, SeriesPoint{p.T.Seconds(), p.V})
	}
	for _, p := range r.AliveSeries.Points() {
		out.AliveSeries = append(out.AliveSeries, SeriesPoint{p.T.Seconds(), p.V})
	}
	for _, rr := range r.RoundReports {
		out.RoundOutcomes = append(out.RoundOutcomes, RoundOutcome{
			Index:        rr.Index,
			StartSeconds: rr.Start.Seconds(),
			EndSeconds:   rr.End.Seconds(),
			Heads:        rr.Heads,
			AliveAtStart: rr.AliveAtStart,
			Delivered:    rr.Delivered,
			ConsumedJ:    rr.ConsumedJ,
			Collisions:   rr.Collisions,
		})
	}
	for _, n := range r.Nodes {
		out.Nodes = append(out.Nodes, NodeOutcome{
			Index:          n.Index,
			RemainingJ:     n.RemainingJ,
			ConsumedJ:      n.ConsumedJ,
			Dead:           n.Dead,
			DiedAtSeconds:  n.DiedAt.Seconds(),
			QueueLen:       n.QueueLen,
			DeliveredCount: n.ServiceShare,
		})
	}
	return out
}

// Summary renders a human-readable digest of the run.
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol          %v\n", r.Protocol)
	fmt.Fprintf(&b, "elapsed           %.1f s over %d LEACH rounds\n", r.DurationSeconds, r.Rounds)
	fmt.Fprintf(&b, "energy            avg remaining %.3f J, total consumed %.2f J\n", r.AvgRemainingJ, r.TotalConsumedJ)
	fmt.Fprintf(&b, "alive             %d/%d at end", r.AliveAtEnd, len(r.Nodes))
	if r.FirstDeathValid {
		fmt.Fprintf(&b, " (first death %.1f s)", r.FirstDeathSeconds)
	}
	if r.NetworkDead {
		fmt.Fprintf(&b, ", network lifetime %.1f s", r.NetworkLifetimeSeconds)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "traffic           generated %d, delivered %d (%.1f%%), drops: buffer %d retry %d\n",
		r.Generated, r.Delivered, 100*r.DeliveryRate, r.DroppedBuffer, r.DroppedRetry)
	fmt.Fprintf(&b, "performance       %.1f kbps, mean delay %.2f ms (p95 %.2f ms), queue stddev %.2f\n",
		r.ThroughputKbps, r.MeanDelayMs, r.P95DelayMs, r.QueueStdDev)
	fmt.Fprintf(&b, "per-packet energy %.3f mJ\n", r.EnergyPerPacketMilliJ)
	fmt.Fprintf(&b, "mac               collisions %d, channel fails %d, deferrals csi/busy %d/%d\n",
		r.Collisions, r.ChannelFails, r.DeferralsCSI, r.DeferralsBusy)
	if len(r.ModeShare) > 0 {
		b.WriteString("mode share       ")
		for i, s := range r.ModeShare {
			fmt.Fprintf(&b, " class%d=%.1f%%", i, 100*s)
		}
		b.WriteByte('\n')
	}
	keys := make([]string, 0, len(r.EnergyBreakdown))
	for k := range r.EnergyBreakdown {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return r.EnergyBreakdown[keys[i]] > r.EnergyBreakdown[keys[j]] })
	b.WriteString("energy breakdown ")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%.2fJ", k, r.EnergyBreakdown[k])
	}
	b.WriteByte('\n')
	return b.String()
}
