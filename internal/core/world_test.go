package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

// worldConfig is a small multi-node world with background traffic, used
// to exercise the World mutation surface.
func worldConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 10
	cfg.FieldWidth, cfg.FieldHeight = 30, 30
	cfg.Horizon = 40 * sim.Second
	cfg.RoundLength = 10 * sim.Second
	return cfg
}

// TestWorldKillHeadCollapsesCluster: killing the current cluster head
// must collapse its cluster — members go back to sleep until the next
// election — without disturbing determinism.
func TestWorldKillHeadCollapsesCluster(t *testing.T) {
	cfg := worldConfig()
	cfg.World = []WorldEvent{{At: 5 * sim.Second, Apply: func(w *World) {
		// Kill every current head (found via the live network below).
		for i := 0; i < w.NodeCount(); i++ {
			if w.net.nodes[i].isHead {
				w.Kill(i)
			}
		}
	}}}
	net := New(cfg)
	res := net.Run()
	if res.AliveAtEnd >= cfg.Nodes {
		t.Fatalf("no head died: alive %d", res.AliveAtEnd)
	}
	for _, cl := range net.clusters {
		if !cl.head.alive && !cl.collapsed {
			t.Fatal("dead head's cluster not collapsed")
		}
	}
	// Later rounds must still elect among the survivors.
	if res.Rounds < 3 {
		t.Fatalf("rounds = %d, want the run to continue past the kill", res.Rounds)
	}
}

// TestWorldReviveRejoinsElection: a revived node must re-enter clustering
// and resume generating traffic.
func TestWorldReviveRejoinsElection(t *testing.T) {
	cfg := worldConfig()
	cfg.World = []WorldEvent{
		{At: 2 * sim.Second, Apply: func(w *World) { w.Kill(3) }},
		{At: 15 * sim.Second, Apply: func(w *World) { w.Revive(3, 5) }},
	}
	net := New(cfg)
	res := net.Run()
	if res.AliveAtEnd != cfg.Nodes {
		t.Fatalf("alive = %d, want %d", res.AliveAtEnd, cfg.Nodes)
	}
	n := net.nodes[3]
	if !n.alive || n.clusterIdx < 0 {
		t.Fatalf("revived node not clustered: alive=%v clusterIdx=%d", n.alive, n.clusterIdx)
	}
	if n.serviceShare == 0 && n.buf.Len() == 0 && !n.isHead {
		t.Error("revived node generated no observable traffic")
	}
}

// TestWorldKillRecordsDeathTime: a world-event kill must report the kill
// instant as the death time even though the battery never exhausted, and
// network lifetime must reflect the concurrent dead fraction — nodes that
// die, revive, and die again are not double-counted.
func TestWorldKillRecordsDeathTime(t *testing.T) {
	cfg := worldConfig()
	cfg.DeadFraction = 0.5
	kill := func(w *World) {
		for i := 0; i < 4; i++ {
			w.Kill(i)
		}
	}
	cfg.World = []WorldEvent{
		{At: 5 * sim.Second, Apply: kill},
		{At: 15 * sim.Second, Apply: func(w *World) {
			for i := 0; i < 4; i++ {
				w.Revive(i, 1)
			}
		}},
		{At: 25 * sim.Second, Apply: kill},
	}
	res := New(cfg).Run()
	for i := 0; i < 4; i++ {
		if !res.Nodes[i].Dead {
			t.Fatalf("node %d not dead at end", i)
		}
		if res.Nodes[i].DiedAt != 25*sim.Second {
			t.Fatalf("node %d DiedAt = %v, want the second kill at 25 s", i, res.Nodes[i].DiedAt)
		}
	}
	// 8 cumulative death events, but never more than 4 dead at once out
	// of 10: the network (DeadFraction 0.5 -> need 5) never died.
	if res.NetworkDead {
		t.Fatalf("network declared dead at %v with at most 4/10 concurrently dead", res.NetworkLifetime)
	}
	if res.FirstDeath != 5*sim.Second || !res.FirstDeathValid {
		t.Fatalf("first death = %v (%v), want 5 s", res.FirstDeath, res.FirstDeathValid)
	}
}

// TestWorldReviveExhaustedBattery: a node that died of battery exhaustion
// can be revived with fresh charge and spends it.
func TestWorldReviveExhaustedBattery(t *testing.T) {
	cfg := worldConfig()
	cfg.NodeEnergyJ = []float64{10, 10, 10, 10, 10, 10, 10, 10, 10, 0.02}
	cfg.World = []WorldEvent{
		{At: 20 * sim.Second, Apply: func(w *World) {
			if w.Alive(9) {
				return
			}
			w.Revive(9, 1)
		}},
	}
	net := New(cfg)
	net.Run()
	n := net.nodes[9]
	if n.battery.Recharged() == 0 {
		t.Skip("node 9 survived on 0.02 J; cannot exercise exhausted-revive here")
	}
	if !n.alive && n.battery.Dead() && n.battery.Remaining() > 0 {
		t.Fatal("revived battery inconsistent")
	}
	if n.battery.Consumed() <= 0.02-1e-12 {
		t.Error("revived node never spent its fresh charge")
	}
}

// TestWorldRateAndEnergyMutations: arrival-rate changes and top-ups take
// effect mid-run.
func TestWorldRateAndEnergyMutations(t *testing.T) {
	cfg := worldConfig()
	cfg.World = []WorldEvent{
		{At: 1 * sim.Second, Apply: func(w *World) {
			for i := 0; i < w.NodeCount(); i++ {
				w.SetArrivalRate(i, 0)
			}
		}},
	}
	silenced := New(cfg).Run()

	cfg2 := worldConfig()
	base := New(cfg2).Run()
	if silenced.Generated >= base.Generated/4 {
		t.Fatalf("silencing all sources at 1 s left %d of %d packets", silenced.Generated, base.Generated)
	}

	cfg3 := worldConfig()
	cfg3.World = []WorldEvent{
		{At: 1 * sim.Second, Apply: func(w *World) { w.ScaleArrivalRate(0, 4) }},
		{At: 2 * sim.Second, Apply: func(w *World) { w.AddEnergy(0, 3) }},
	}
	net := New(cfg3)
	boosted := net.Run()
	if net.nodes[0].source.RatePerSecond != 4*cfg3.ArrivalRatePerSecond {
		t.Fatalf("rate = %v, want 4x", net.nodes[0].source.RatePerSecond)
	}
	if net.nodes[0].battery.Recharged() != 3 {
		t.Fatalf("recharged = %v, want 3", net.nodes[0].battery.Recharged())
	}
	if boosted.Generated <= base.Generated {
		t.Fatal("4x rate on one node did not raise total traffic")
	}
}

// TestWorldChannelUpdate: a channel-parameter shift rebuilds links under
// the new parameters deterministically, and an invalid shift panics.
func TestWorldChannelUpdate(t *testing.T) {
	run := func() Result {
		cfg := worldConfig()
		cfg.World = []WorldEvent{
			{At: 5 * sim.Second, Apply: func(w *World) {
				w.UpdateChannel(func(p *channel.Params) {
					p.DopplerHz = 15
					p.ShadowingSigmaDB = 9
				})
			}},
		}
		return New(cfg).Run()
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.TotalConsumedJ != b.TotalConsumedJ {
		t.Fatal("channel update broke determinism")
	}

	base := New(worldConfig()).Run()
	if a.Delivered == base.Delivered && a.MAC.ChannelFails == base.MAC.ChannelFails &&
		a.MAC.DeferralsCSI == base.MAC.DeferralsCSI {
		t.Fatal("channel shift had no observable effect")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("invalid channel shift did not panic")
		}
	}()
	cfg := worldConfig()
	cfg.World = []WorldEvent{
		{At: 1 * sim.Second, Apply: func(w *World) {
			w.UpdateChannel(func(p *channel.Params) { p.PathLossExponent = 99 })
		}},
	}
	New(cfg).Run()
}

// TestWorldConfigValidation: malformed World entries and per-node
// override arrays are rejected up front.
func TestWorldConfigValidation(t *testing.T) {
	cfg := worldConfig()
	cfg.World = []WorldEvent{{At: -1, Apply: func(w *World) {}}}
	if cfg.Validate() == nil {
		t.Error("negative world-event time accepted")
	}
	cfg = worldConfig()
	cfg.World = []WorldEvent{{At: 1}}
	if cfg.Validate() == nil {
		t.Error("nil Apply accepted")
	}
	cfg = worldConfig()
	cfg.NodeArrivalRate = []float64{1, 2}
	if cfg.Validate() == nil {
		t.Error("short NodeArrivalRate accepted")
	}
	cfg = worldConfig()
	cfg.NodeEnergyJ = make([]float64, cfg.Nodes)
	if cfg.Validate() == nil {
		t.Error("zero NodeEnergyJ entries accepted")
	}
}

// TestWorldKillSenderMidBurst: killing the node that currently holds the
// data channel must settle the burst and leave the cluster serviceable.
func TestWorldKillSenderMidBurst(t *testing.T) {
	cfg := worldConfig()
	cfg.ArrivalRatePerSecond = 30 // keep the channel busy
	killed := -1
	cfg.World = []WorldEvent{{At: 3 * sim.Second, Apply: func(w *World) {
		for _, cl := range w.net.clusters {
			if cl.activeTx != nil {
				killed = cl.activeTx.sender.idx
				w.Kill(killed)
				return
			}
		}
		// No burst in flight at this instant; kill any member instead so
		// the run still exercises a death.
		for i := 0; i < w.NodeCount(); i++ {
			if !w.net.nodes[i].isHead {
				killed = i
				w.Kill(i)
				return
			}
		}
	}}}
	net := New(cfg)
	res := net.Run()
	if killed < 0 {
		t.Fatal("kill hook never fired")
	}
	if net.nodes[killed].alive {
		t.Fatal("killed node still alive")
	}
	if res.AliveAtEnd != cfg.Nodes-1 {
		t.Fatalf("alive = %d, want %d", res.AliveAtEnd, cfg.Nodes-1)
	}
	for _, cl := range net.clusters {
		if cl.activeTx != nil && cl.activeTx.sender == net.nodes[killed] {
			t.Fatal("dead sender's burst never settled")
		}
	}
	if res.Delivered == 0 {
		t.Fatal("network stopped delivering after the mid-burst kill")
	}
}
