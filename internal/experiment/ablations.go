package experiment

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/queueing"
	"repro/internal/runner"
	"repro/internal/sim"
)

// AblationThresholdParams sweeps Scheme 1's two tuning constants — the
// activation level Q_th and the sampling period m — quantifying the
// energy/fairness/delay trade-off behind the paper's (15, 5) choice
// (DESIGN.md experiment A1).
func AblationThresholdParams(opts Options) Report {
	tab := Table{Headers: []string{"Q_th", "m", "energy/pkt(mJ)", "delay(ms)", "queue-stddev", "drops"}}
	qths := []int{5, 10, 15, 25, 40}
	ms := []int{1, 5, 10}
	if opts.scale() < 0.8 {
		qths = []int{5, 15, 40}
		ms = []int{1, 5}
	}
	var jobs []runner.Job
	for _, qth := range qths {
		for _, m := range ms {
			cfg := opts.baseConfig()
			cfg.Policy = queueing.PolicyAdaptive
			cfg.Adjust.QueueThreshold = qth
			cfg.Adjust.SampleEvery = m
			cfg.Horizon = opts.horizon(300 * sim.Second)
			jobs = append(jobs, runner.Job{Label: fmt.Sprintf("ablation-threshold/q%d-m%d", qth, m), Config: cfg})
		}
	}
	results := opts.run(jobs)
	for i, qth := range qths {
		for j, m := range ms {
			res := results[i*len(ms)+j]
			tab.AddRow(
				fmt.Sprintf("%d", qth),
				fmt.Sprintf("%d", m),
				f3(1000*res.EnergyPerPktJ),
				f1(res.MeanDelayMs),
				f2(res.QueueStdDev),
				fmt.Sprintf("%d", res.DroppedBuffer+res.DroppedRetry),
			)
		}
	}
	return Report{
		ID:    "ablation-threshold",
		Title: "Ablation A1: Scheme 1 threshold-adjustment parameters (Q_th, m)",
		Table: tab,
		Notes: []string{
			"small Q_th makes Scheme 1 permissive (more energy per packet, less delay); large Q_th approaches Scheme 2's behaviour",
			"m trades adjustment responsiveness against per-arrival computation; the paper's (15, 5) sits on the knee",
		},
	}
}

// AblationDoppler sweeps the fading rate (DESIGN.md experiment A2). The
// channel coherence time sets how long a deferring node waits for a good
// channel: very slow fading starves Scheme 2 (long fades), very fast
// fading makes the CSI stale between the idle tone and the transmission.
func AblationDoppler(opts Options) Report {
	tab := Table{Headers: []string{
		"doppler(Hz)", "coherence(ms)", "protocol", "energy/pkt(mJ)", "delay(ms)", "csi-deferrals", "channel-fails",
	}}
	dops := []float64{0.5, 1, 2, 4, 8}
	if opts.scale() < 0.8 {
		dops = []float64{0.5, 2, 8}
	}
	pcs := []protocolCase{
		{"Scheme1", queueing.PolicyAdaptive},
		{"Scheme2", queueing.PolicyFixedHighest},
	}
	var jobs []runner.Job
	for _, d := range dops {
		for _, pc := range pcs {
			cfg := opts.baseConfig()
			cfg.Policy = pc.policy
			cfg.Channel.DopplerHz = d
			cfg.Horizon = opts.horizon(300 * sim.Second)
			jobs = append(jobs, runner.Job{Label: fmt.Sprintf("ablation-doppler/%s/%.1fHz", pc.name, d), Config: cfg})
		}
	}
	results := opts.run(jobs)
	for i, d := range dops {
		for j, pc := range pcs {
			res := results[i*len(pcs)+j]
			tab.AddRow(
				f1(d),
				f1(jobs[i*len(pcs)+j].Config.Channel.CoherenceTime().Millis()),
				pc.name,
				f3(1000*res.EnergyPerPktJ),
				f1(res.MeanDelayMs),
				fmt.Sprintf("%d", res.MAC.DeferralsCSI),
				fmt.Sprintf("%d", res.MAC.ChannelFails),
			)
		}
	}
	return Report{
		ID:    "ablation-doppler",
		Title: "Ablation A2: channel dynamics (Doppler / coherence time)",
		Table: tab,
		Notes: []string{
			"slower fading (longer coherence) lengthens both good and bad channel spells: deferral counts fall but each wait is longer",
			"faster fading raises channel failures: the CSI measured at the tone pulse ages before the packet finishes",
		},
	}
}

// AblationBurst sweeps the burst-size rules (DESIGN.md experiment A3),
// isolating the radio-startup amortization argument the paper uses to
// justify the minimum of 3 packets per transmission.
func AblationBurst(opts Options) Report {
	tab := Table{Headers: []string{
		"min", "max", "energy/pkt(mJ)", "startup-share", "delay(ms)", "collisions",
	}}
	cases := []struct{ min, max int }{
		{1, 1}, {1, 8}, {3, 8}, {3, 16}, {8, 8},
	}
	if opts.scale() < 0.8 {
		cases = []struct{ min, max int }{{1, 1}, {3, 8}, {8, 8}}
	}
	var jobs []runner.Job
	for _, c := range cases {
		cfg := opts.baseConfig()
		cfg.Policy = queueing.PolicyAdaptive
		cfg.MAC.MinBurst = c.min
		cfg.MAC.MaxBurst = c.max
		cfg.Horizon = opts.horizon(300 * sim.Second)
		jobs = append(jobs, runner.Job{Label: fmt.Sprintf("ablation-burst/min%d-max%d", c.min, c.max), Config: cfg})
	}
	results := opts.run(jobs)
	for i, c := range cases {
		res := results[i]
		commJ := res.CommEnergyJ
		startShare := 0.0
		if commJ > 0 {
			startShare = res.EnergyByCause[energy.DataStartup] / commJ
		}
		tab.AddRow(
			fmt.Sprintf("%d", c.min),
			fmt.Sprintf("%d", c.max),
			f3(1000*res.EnergyPerPktJ),
			pct(startShare),
			f1(res.MeanDelayMs),
			fmt.Sprintf("%d", res.MAC.Collisions),
		)
	}
	return Report{
		ID:    "ablation-burst",
		Title: "Ablation A3: packets-per-transmission limits (min/max burst)",
		Table: tab,
		Notes: []string{
			"single-packet bursts pay one radio startup per packet — the startup share of communication energy quantifies the paper's min-burst-of-3 rule",
			"uncapped bursts save startups but let one node hold the channel longer, raising delay spread (the paper caps at 8 for fairness)",
		},
	}
}

// All returns every experiment report at the given options, in the
// DESIGN.md §3 index order.
func All(opts Options) []Report {
	return []Report{
		TableI(opts),
		TableII(opts),
		Figure8(opts),
		Figure9(opts),
		Figure10(opts),
		Figure11(opts),
		Figure12(opts),
		NetworkPerformance(opts),
		AblationThresholdParams(opts),
		AblationDoppler(opts),
		AblationBurst(opts),
		AblationCSINoise(opts),
		AblationRician(opts),
		SeedVariance(opts),
		DynamicWorld(opts),
	}
}

// AblationCSINoise sweeps the channel-estimation error (DESIGN.md
// experiment A4). The paper assumes perfect tone-based CSI via channel
// reciprocity; this quantifies how much estimation error the admission
// decision tolerates before CAEM's savings erode.
func AblationCSINoise(opts Options) Report {
	tab := Table{Headers: []string{
		"noise-sigma(dB)", "protocol", "energy/pkt(mJ)", "channel-fails", "delivery", "delay(ms)",
	}}
	sigmas := []float64{0, 1, 2, 4, 8}
	if opts.scale() < 0.8 {
		sigmas = []float64{0, 2, 8}
	}
	pcs := []protocolCase{
		{"Scheme1", queueing.PolicyAdaptive},
		{"Scheme2", queueing.PolicyFixedHighest},
	}
	var jobs []runner.Job
	for _, sigma := range sigmas {
		for _, pc := range pcs {
			cfg := opts.baseConfig()
			cfg.Policy = pc.policy
			cfg.CSINoiseSigmaDB = sigma
			cfg.Horizon = opts.horizon(300 * sim.Second)
			jobs = append(jobs, runner.Job{Label: fmt.Sprintf("ablation-csinoise/%s/%.0fdB", pc.name, sigma), Config: cfg})
		}
	}
	results := opts.run(jobs)
	for i, sigma := range sigmas {
		for j, pc := range pcs {
			res := results[i*len(pcs)+j]
			tab.AddRow(
				f1(sigma),
				pc.name,
				f3(1000*res.EnergyPerPktJ),
				fmt.Sprintf("%d", res.MAC.ChannelFails),
				pct(res.DeliveryRate),
				f1(res.MeanDelayMs),
			)
		}
	}
	return Report{
		ID:    "ablation-csinoise",
		Title: "Ablation A4: CSI estimation error (reciprocity-assumption robustness)",
		Table: tab,
		Notes: []string{
			"optimistic estimation errors admit transmissions the channel cannot carry: channel failures rise with the noise spread",
			"the per-packet mode choice still tracks the true channel through the receive-tone feedback, so moderate estimation noise costs little energy — the admission threshold, not the mode table, absorbs the error",
		},
	}
}

// AblationRician sweeps the Rice factor K (DESIGN.md experiment A5):
// line-of-sight deployments fade far less than the paper's Rayleigh
// assumption, which shrinks both the cost of ignoring the channel and the
// benefit of exploiting it.
func AblationRician(opts Options) Report {
	tab := Table{Headers: []string{
		"rician-K", "protocol", "energy/pkt(mJ)", "channel-fails", "csi-deferrals",
	}}
	ks := []float64{0, 1, 4, 10}
	if opts.scale() < 0.8 {
		ks = []float64{0, 4}
	}
	pcs := []protocolCase{
		{"pure-LEACH", queueing.PolicyNone},
		{"Scheme1", queueing.PolicyAdaptive},
	}
	var jobs []runner.Job
	for _, k := range ks {
		for _, pc := range pcs {
			cfg := opts.baseConfig()
			cfg.Policy = pc.policy
			cfg.Channel.RicianK = k
			cfg.Horizon = opts.horizon(300 * sim.Second)
			jobs = append(jobs, runner.Job{Label: fmt.Sprintf("ablation-rician/%s/K%.0f", pc.name, k), Config: cfg})
		}
	}
	results := opts.run(jobs)
	var savings []float64
	for i, k := range ks {
		var perPkt [2]float64
		for j, pc := range pcs {
			res := results[i*len(pcs)+j]
			perPkt[j] = 1000 * res.EnergyPerPktJ
			tab.AddRow(
				f1(k),
				pc.name,
				f3(1000*res.EnergyPerPktJ),
				fmt.Sprintf("%d", res.MAC.ChannelFails),
				fmt.Sprintf("%d", res.MAC.DeferralsCSI),
			)
		}
		savings = append(savings, 1-perPkt[1]/perPkt[0])
	}
	first, last := savings[0], savings[len(savings)-1]
	return Report{
		ID:    "ablation-rician",
		Title: "Ablation A5: Rice factor K (line-of-sight vs the paper's Rayleigh assumption)",
		Table: tab,
		Notes: []string{
			fmt.Sprintf("Scheme 1's per-packet saving over pure LEACH falls from %.0f%% at K=0 (Rayleigh) to %.0f%% at K=%.0f: with a strong LOS component the channel rarely leaves its mean, so there is less variation to exploit — CAEM targets exactly the hostile, scattered deployments the paper describes", 100*first, 100*last, ks[len(ks)-1]),
		},
	}
}

// SeedVariance quantifies realization noise: the headline load-5 metrics
// across independent seeds (DESIGN.md experiment A6). The EXPERIMENTS.md
// stability claims come from this report.
func SeedVariance(opts Options) Report {
	tab := Table{Headers: []string{
		"protocol", "seeds", "lifetime mean(s)", "lifetime sd(s)", "energy/pkt mean(mJ)", "energy/pkt sd(mJ)",
	}}
	seeds := []uint64{1, 2, 3, 4, 5}
	if opts.scale() < 0.8 {
		seeds = []uint64{1, 2, 3}
	}
	var jobs []runner.Job
	for _, pc := range protocolCases() {
		for _, seed := range seeds {
			cfg := opts.baseConfig()
			cfg.Seed = seed
			cfg.Policy = pc.policy
			cfg.Horizon = opts.horizon(4000 * sim.Second)
			cfg.StopWhenNetworkDead = true
			cfg.SampleInterval = 20 * sim.Second
			jobs = append(jobs, runner.Job{Label: fmt.Sprintf("seedvar/%s/seed%d", pc.name, seed), Config: cfg})
		}
	}
	results := opts.run(jobs)
	for i, pc := range protocolCases() {
		var life, epp metrics.Welford
		for j := range seeds {
			res := results[i*len(seeds)+j]
			if res.NetworkDead {
				life.Add(res.NetworkLifetime.Seconds())
			}
			epp.Add(1000 * res.EnergyPerPktJ)
		}
		tab.AddRow(
			pc.name,
			fmt.Sprintf("%d", len(seeds)),
			f1(life.Mean()), f1(life.StdDev()),
			f3(epp.Mean()), f3(epp.StdDev()),
		)
	}
	return Report{
		ID:    "seedvar",
		Title: "Ablation A6: realization variance across seeds (load 5)",
		Table: tab,
		Notes: []string{
			"the protocol orderings in Figures 8-11 are stable across independent topology/channel/traffic realizations; the standard deviations here bound the run-to-run noise on each headline number",
		},
	}
}
