// Command obscheck is the observability lint gate (`make obs-check`):
// it assembles the repo's full metric catalog — every family the
// cluster coordinator, workers, results store, HTTP mux, and build-info
// stamp can emit — onto one registry, then fails the build unless
//
//  1. every family passes the naming lint (caem_ prefix, non-empty
//     help, counters end in _total, gauges and histograms do not,
//     histograms carry a unit suffix, no reserved label names), and
//  2. the registry's text exposition round-trips through the strict
//     Prometheus 0.0.4 parser the tests scrape with.
//
// The catalog is assembled from the same Register* functions production
// code uses, so a metric added anywhere in the tree is linted here
// automatically — there is no second list to keep in sync.
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/caem"
	"repro/internal/cluster"
	"repro/internal/cluster/journal"
	"repro/internal/obs"
	"repro/internal/store"
)

func main() {
	reg := obs.NewRegistry()
	cluster.RegisterMetrics(reg)
	journal.RegisterMetrics(reg)
	store.RegisterMetrics(reg)
	caem.RegisterAggCacheMetrics(reg)
	obs.RegisterBuildInfo(reg, "obscheck")

	if errs := reg.Lint("caem_"); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", e)
		}
		fmt.Fprintf(os.Stderr, "obscheck: metric catalog fails the naming lint (%d problems)\n", len(errs))
		os.Exit(1)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: writing exposition: %v\n", err)
		os.Exit(1)
	}
	exp, err := obs.ParseText(&buf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: exposition does not parse as Prometheus text 0.0.4: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("obs-check passed: %d metric families lint clean and round-trip the text exposition\n",
		len(exp.Families))
}
