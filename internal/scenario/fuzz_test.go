package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// validSpecJSON is a well-formed spec exercising every event category;
// the fuzzer mutates it (and the near-miss seeds below) into the
// adversarial inputs Load must survive.
const validSpecJSON = `{
  "name": "fuzz-seed",
  "description": "all twelve event types",
  "nodes": [
    {"nodes": {"from": 0, "to": 4}, "rateScale": 2},
    {"nodes": {"indices": [7]}, "energyJ": 1.5}
  ],
  "timeline": [
    {"at": 5, "type": "kill", "nodes": {"indices": [1, 2]}},
    {"at": 10, "type": "revive", "nodes": {"indices": [1]}, "energyJ": 2},
    {"at": 12, "type": "top-up", "energyJ": 0.5},
    {"at": 15, "type": "set-rate", "ratePerSecond": 9},
    {"at": 18, "type": "scale-rate", "scale": 0.5},
    {"at": 20, "type": "ramp-rate", "ratePerSecond": 20, "durationSeconds": 10, "steps": 4},
    {"at": 32, "type": "burst", "scale": 3, "durationSeconds": 5},
    {"at": 40, "type": "channel", "channel": {"dopplerHz": 8}},
    {"at": 45, "type": "move", "nodes": {"indices": [3]}, "x": 10, "y": 20},
    {"at": 50, "type": "move", "nodes": {"from": 0, "to": 6}, "region": {"x": 5, "y": 5, "width": 30, "height": 30}},
    {"at": 55, "type": "interference", "region": {"x": 0, "y": 0, "width": 40, "height": 40}, "penaltyDB": 9, "durationSeconds": 8},
    {"at": 60, "type": "sink-down"},
    {"at": 70, "type": "sink-up"}
  ]
}`

// FuzzSpecLoad is the schema-robustness property: for ANY input bytes,
// Load either returns a validated spec or a clean error — it never
// panics. And any spec Load accepts must survive a marshal → Load round
// trip, so accepted specs are always re-serializable.
func FuzzSpecLoad(f *testing.F) {
	f.Add(validSpecJSON)
	// Near-misses: structurally plausible JSON that must error cleanly.
	for _, s := range []string{
		``,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"name":"x"}`,
		`{"name":"x","timeline":null}`,
		`{"name":"x","timeline":[null]}`,
		`{"name":"x","timeline":[{"at":-1,"type":"kill"}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"explode"}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"kill","nodse":{}}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"kill","nodes":{"from":"a"}}]}`,
		`{"name":"x","timeline":[{"at":1e999,"type":"kill"}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"move"}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"move","x":3}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"move","x":3,"y":4,"region":{"width":9,"height":9}}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"move","region":{"width":-1,"height":9}}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"interference"}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"interference","region":{"width":9,"height":9}}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"interference","region":{"width":9,"height":9},"penaltyDB":-2,"durationSeconds":5}]}`,
		`{"name":"x","timeline":[{"at":1,"type":"sink-down","unknown":true}]}`,
		`{"name":"x","nodes":[{}]}`,
		`{"name":"x","nodes":[{"nodes":{"indices":[-1]}}]}`,
		`{"name":"x","config":{"nodes":"many"}}`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, blob string) {
		s, err := Load(strings.NewReader(blob))
		if err != nil {
			return // a clean rejection is a pass; only panics fail
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		if _, err := Load(bytes.NewReader(out)); err != nil {
			t.Fatalf("accepted spec rejected after round trip: %v\n in  %s\n out %s", err, blob, out)
		}
	})
}
