package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/caem"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// serveFromEnv is the coordinator-process entry point for the failover
// test: TestMain re-executes the test binary as a real caem-serve
// primary or standby so the test can SIGKILL a genuine leader process.
func serveFromEnv(role string) int {
	logger, _ := obs.NewLogger(os.Stderr, "text", false)
	lockTTL, _ := time.ParseDuration(os.Getenv("CAEM_TEST_SERVE_LOCKTTL"))
	leaseTTL, _ := time.ParseDuration(os.Getenv("CAEM_TEST_SERVE_LEASETTL"))
	maxBatch, _ := strconv.Atoi(os.Getenv("CAEM_TEST_SERVE_MAXBATCH"))
	addrFile := os.Getenv("CAEM_TEST_SERVE_ADDRFILE")
	return serveMode(serveOptions{
		addr:     "127.0.0.1:0",
		storeDir: os.Getenv("CAEM_TEST_SERVE_STORE"),
		workers:  0, // every cell must flow through the HTTP lease protocol
		drain:    5 * time.Second,
		leaseTTL: leaseTTL,
		maxBatch: maxBatch,
		lockTTL:  lockTTL,
		standby:  role == "standby",
		primary:  os.Getenv("CAEM_TEST_SERVE_HINT"),
		log:      logger,
		addrReady: func(addr string) {
			os.WriteFile(addrFile+".tmp", []byte(addr), 0o644)
			os.Rename(addrFile+".tmp", addrFile)
		},
	})
}

// spawnServe re-executes the test binary as a coordinator process and
// waits for it to publish its bound address.
func spawnServe(t *testing.T, role, storeDir, hint string, lockTTL, leaseTTL time.Duration) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"CAEM_TEST_SERVE_ROLE="+role,
		"CAEM_TEST_SERVE_STORE="+storeDir,
		"CAEM_TEST_SERVE_ADDRFILE="+addrFile,
		"CAEM_TEST_SERVE_LOCKTTL="+lockTTL.String(),
		"CAEM_TEST_SERVE_LEASETTL="+leaseTTL.String(),
		"CAEM_TEST_SERVE_MAXBATCH=2", // small batches spread cells across workers
		"CAEM_TEST_SERVE_HINT="+hint,
	)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if blob, err := os.ReadFile(addrFile); err == nil {
			return cmd, "http://" + string(blob)
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("%s never published its address", role)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// healthDoc fetches /healthz; any transport error reads as "not up yet"
// (nil map), so callers can poll across a takeover window.
func healthDoc(base string) map[string]any {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var doc map[string]any
	if jsonDecode(resp.Body, &doc) != nil {
		return nil
	}
	return doc
}

// waitRole polls /healthz until the process reports the role, returning
// the health document that matched.
func waitRole(t *testing.T, base, role string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if doc := healthDoc(base); doc != nil && doc["role"] == role {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reported role %q", base, role)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// failoverRequest is a grid long enough that the coordinator dies with
// work still in flight: 2 protocols × 4 seeds = 8 cells of a few
// hundred simulated seconds.
const failoverRequest = `{
  "scenarios": ["node-churn"],
  "protocols": ["leach", "scheme1"],
  "seeds": [1, 2, 3, 4],
  "config": {"durationSeconds": 120}
}`

// TestCoordinatorFailover is the coordinator fault-tolerance gate: the
// leader is SIGKILLed mid-campaign with two live worker processes; the
// standby must take over within 2× the lock TTL (replaying the journal
// the dead leader wrote), fence the dead epoch's writes, and finish the
// campaign with a results document byte-identical to a fault-free run.
func TestCoordinatorFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess failover test skipped in -short mode")
	}
	const lockTTL, leaseTTL = time.Second, time.Second
	storeDir := t.TempDir()

	primary, purl := spawnServe(t, "primary", storeDir, "", lockTTL, leaseTTL)
	primaryDead := false
	defer func() {
		if !primaryDead {
			primary.Process.Kill()
			primary.Wait()
		}
	}()
	if doc := waitRole(t, purl, "leader", 30*time.Second); doc["ready"] != true {
		t.Fatalf("primary /healthz = %v, want ready=true", doc)
	}

	standby, surl := spawnServe(t, "standby", storeDir, purl, lockTTL, leaseTTL)
	defer func() {
		standby.Process.Signal(os.Interrupt)
		standby.Wait()
	}()
	// Satellite contract: a standby is alive but not ready until it
	// holds the lock.
	if doc := waitRole(t, surl, "standby", 30*time.Second); doc["ready"] != false || doc["ok"] != true {
		t.Fatalf("standby /healthz = %v, want ok=true ready=false", doc)
	}

	camp := postCampaign(t, purl, failoverRequest)
	if camp.State != "running" || camp.Total != 8 {
		t.Fatalf("campaign did not start fresh: %+v", camp)
	}

	// Workers join with both coordinator URLs so they can re-target.
	for i := 0; i < 2; i++ {
		wk := spawnWorker(t, purl+","+surl, 2)
		defer func() {
			wk.Process.Signal(os.Interrupt)
			wk.Wait()
		}()
	}

	// Wait until the primary has granted a lease, and record one of its
	// epoch-1 lease IDs: replaying it against the successor is the
	// deterministic fenced write (workers may or may not race one in
	// naturally during the takeover window).
	var victimLease string
	holdBy := time.Now().Add(60 * time.Second)
	for victimLease == "" {
		var cst cluster.Status
		if err := jsonDecode(bytes.NewReader(getBytes(t, purl+"/cluster/status")), &cst); err != nil {
			t.Fatal(err)
		}
		if len(cst.Leases) > 0 {
			victimLease = cst.Leases[0].ID
		}
		if time.Now().After(holdBy) {
			t.Fatal("primary never granted a lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.HasPrefix(victimLease, "lease-1-") {
		t.Fatalf("primary lease ID %q does not carry epoch 1", victimLease)
	}

	// SIGKILL the leader mid-campaign: no drain, no release, no lock
	// handoff — the standby must notice the lock expire on its own.
	if err := primary.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.Wait()
	primaryDead = true
	killedAt := time.Now()

	doc := waitRole(t, surl, "leader", 30*time.Second)
	took := time.Since(killedAt)
	if doc["ready"] != true {
		t.Fatalf("new leader /healthz = %v, want ready=true", doc)
	}
	if took > 2*lockTTL {
		t.Fatalf("takeover took %v, want <= %v (2x lock TTL)", took, 2*lockTTL)
	}

	// The dead epoch is fenced: renewing the victim's epoch-1 lease
	// against the new leader answers 410 with the "fenced" code, not
	// plain "gone" — the worker-visible signal to re-resolve the leader.
	resp, err := http.Post(surl+"/v1/leases/"+victimLease+"/renew", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	derr := jsonDecode(resp.Body, &envelope)
	resp.Body.Close()
	if derr != nil {
		t.Fatal(derr)
	}
	if resp.StatusCode != http.StatusGone || envelope.Error.Code != "fenced" {
		t.Fatalf("ghost renew = %s code %q, want 410 code \"fenced\"", resp.Status, envelope.Error.Code)
	}

	final := waitDone(t, surl, camp.ID)
	if final.State != "done" || final.Completed != final.Total || final.Failed != 0 {
		t.Fatalf("campaign did not survive the coordinator kill: %+v", final)
	}
	var cst cluster.Status
	if err := jsonDecode(bytes.NewReader(getBytes(t, surl+"/cluster/status")), &cst); err != nil {
		t.Fatal(err)
	}
	if cst.Epoch < 2 {
		t.Fatalf("successor epoch = %d, want >= 2", cst.Epoch)
	}
	if len(cst.Poisoned) != 0 {
		t.Fatalf("coordinator death must not poison cells: %+v", cst.Poisoned)
	}

	exp := scrapeMetrics(t, surl)
	if v, ok := exp.Value("caem_cluster_fenced_total"); !ok || v < 1 {
		t.Fatalf("caem_cluster_fenced_total = %v (ok=%v), want >= 1", v, ok)
	}
	if v, ok := exp.Value("caem_cluster_epoch"); !ok || v < 2 {
		t.Fatalf("caem_cluster_epoch = %v (ok=%v), want >= 2", v, ok)
	}
	if v, ok := exp.Value("caem_cluster_takeovers_total"); !ok || v < 1 {
		t.Fatalf("caem_cluster_takeovers_total = %v (ok=%v), want >= 1", v, ok)
	}
	if v, ok := exp.Value("caem_cells_poisoned_total"); ok && v != 0 {
		t.Fatalf("caem_cells_poisoned_total = %v, want 0", v)
	}
	failedOver := getBytes(t, surl+"/campaigns/"+camp.ID+"/results")

	// Reference: the same campaign, single process, no faults. The
	// failover must be invisible in the results document, byte for byte.
	refStore, err := caem.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	refSrv, err := newServer(refStore, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	refTS := httptest.NewServer(refSrv)
	defer refTS.Close()
	refCamp := postCampaign(t, refTS.URL, failoverRequest)
	if got := waitDone(t, refTS.URL, refCamp.ID); got.State != "done" {
		t.Fatalf("reference run failed: %+v", got)
	}
	reference := getBytes(t, refTS.URL+"/campaigns/"+refCamp.ID+"/results")

	if !bytes.Equal(failedOver, reference) {
		t.Fatalf("failed-over run is not byte-identical to the fault-free run:\n--- failover (%d bytes)\n%s\n--- fault-free (%d bytes)\n%s",
			len(failedOver), failedOver, len(reference), reference)
	}
}
