package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the repository's structured leveled logger: a
// log/slog logger writing to w in the given format ("text", the
// default, or "json"), at debug level when verbose is set and info
// otherwise. Commands pass their -log-format and -v flags through
// here so every binary logs the same schema: leveled records whose
// identifying attrs (worker_id, lease_id, campaign) are structured
// key/value pairs, machine-parseable in JSON mode.
func NewLogger(w io.Writer, format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// NopLogger returns a logger that discards every record — the default
// for library components whose caller did not inject one, so logging
// calls never need nil checks.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }
