GO ?= go

.PHONY: all build test race vet bench bench-smoke figures clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runner/ ./internal/experiment/ ./caem/

vet:
	$(GO) vet ./...

# Full benchmark sweep (one iteration each; the experiment benchmarks are
# whole-figure regenerations, so more iterations take minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# The hot-path smoke check CI runs: the event engine, channel sampling,
# and MAC, per simulated second at full scale.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkSimulatedSecond -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkFigure9_NodesAlive -benchtime 1x .

# Regenerate every paper artifact (tables, figures, ablations) into out/.
figures:
	$(GO) run ./cmd/caem-bench -out out/

clean:
	rm -rf out/
