package stats

import "math"

// TCritical returns the two-sided Student-t critical value t*(conf, df):
// the point with CDF mass conf centered on 0, i.e. the one-sided
// quantile at 1−(1−conf)/2. NaN for df < 1 or conf outside (0, 1).
//
// The inverse is computed by exponential search plus bisection on the
// exact CDF (via the regularized incomplete beta function), so it is
// accurate across the whole df range rather than relying on small-df
// tables with an asymptotic splice. It is not a hot path: experiments
// call it once per table cell.
func TCritical(conf float64, df int) float64 {
	if df < 1 || conf <= 0 || conf >= 1 {
		return math.NaN()
	}
	p := 1 - (1-conf)/2 // one-sided target, in (0.5, 1)

	// Exponential search for an upper bracket, then bisect. The CDF is
	// strictly increasing, so this converges unconditionally; 128
	// bisection steps put the error far below float64 formatting noise.
	hi := 1.0
	for tCDF(hi, float64(df)) < p {
		hi *= 2
		if hi > 1e12 { // p astronomically close to 1; clamp
			break
		}
	}
	lo := 0.0
	for i := 0; i < 128; i++ {
		mid := 0.5 * (lo + hi)
		if tCDF(mid, float64(df)) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// tCDF returns P(T ≤ t) for Student's t with df degrees of freedom,
// t ≥ 0, via the incomplete-beta identity
// P(T ≤ t) = 1 − I_x(df/2, 1/2)/2 with x = df/(df+t²).
func tCDF(t, df float64) float64 {
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 1 - 0.5*regIncBeta(df/2, 0.5, x)
}

// regIncBeta returns the regularized incomplete beta function
// I_x(a, b), evaluated with the continued-fraction expansion
// (Numerical Recipes §6.4), using the symmetry transformation for fast
// convergence on either side of the mean.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the incomplete-beta continued fraction with the
// modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
