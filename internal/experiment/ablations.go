package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/queueing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AblationThresholdParams sweeps Scheme 1's two tuning constants — the
// activation level Q_th and the sampling period m — quantifying the
// energy/fairness/delay trade-off behind the paper's (15, 5) choice
// (DESIGN.md experiment A1).
func AblationThresholdParams(opts Options) Report {
	tab := Table{Headers: []string{"Q_th", "m", "energy/pkt(mJ)", "delay(ms)", "queue-stddev", "drops"}}
	qths := []int{5, 10, 15, 25, 40}
	ms := []int{1, 5, 10}
	if opts.scale() < 0.8 {
		qths = []int{5, 15, 40}
		ms = []int{1, 5}
	}
	var cells []runner.Job
	for _, qth := range qths {
		for _, m := range ms {
			cfg := opts.baseConfig()
			cfg.Policy = queueing.PolicyAdaptive
			cfg.Adjust.QueueThreshold = qth
			cfg.Adjust.SampleEvery = m
			cfg.Horizon = opts.horizon(300 * sim.Second)
			cells = append(cells, runner.Job{Label: fmt.Sprintf("ablation-threshold/q%d-m%d", qth, m), Config: cfg})
		}
	}
	reps := opts.runReplicated(cells)
	for i, qth := range qths {
		for j, m := range ms {
			rep := reps[i*len(ms)+j]
			tab.AddRow(
				fmt.Sprintf("%d", qth),
				fmt.Sprintf("%d", m),
				rep.cell(f3, func(r core.Result) float64 { return 1000 * r.EnergyPerPktJ }),
				rep.cell(f1, func(r core.Result) float64 { return r.MeanDelayMs }),
				rep.cell(f2, func(r core.Result) float64 { return r.QueueStdDev }),
				rep.cell(f0, func(r core.Result) float64 { return float64(r.DroppedBuffer + r.DroppedRetry) }),
			)
		}
	}
	return Report{
		ID:    "ablation-threshold",
		Title: "Ablation A1: Scheme 1 threshold-adjustment parameters (Q_th, m)",
		Table: tab,
		Notes: []string{
			repNote(opts),
			"small Q_th makes Scheme 1 permissive (more energy per packet, less delay); large Q_th approaches Scheme 2's behaviour",
			"m trades adjustment responsiveness against per-arrival computation; the paper's (15, 5) sits on the knee",
		},
	}
}

// AblationDoppler sweeps the fading rate (DESIGN.md experiment A2). The
// channel coherence time sets how long a deferring node waits for a good
// channel: very slow fading starves Scheme 2 (long fades), very fast
// fading makes the CSI stale between the idle tone and the transmission.
func AblationDoppler(opts Options) Report {
	tab := Table{Headers: []string{
		"doppler(Hz)", "coherence(ms)", "protocol", "energy/pkt(mJ)", "delay(ms)", "csi-deferrals", "channel-fails",
	}}
	dops := []float64{0.5, 1, 2, 4, 8}
	if opts.scale() < 0.8 {
		dops = []float64{0.5, 2, 8}
	}
	pcs := []protocolCase{
		{"Scheme1", queueing.PolicyAdaptive},
		{"Scheme2", queueing.PolicyFixedHighest},
	}
	var cells []runner.Job
	for _, d := range dops {
		for _, pc := range pcs {
			cfg := opts.baseConfig()
			cfg.Policy = pc.policy
			cfg.Channel.DopplerHz = d
			cfg.Horizon = opts.horizon(300 * sim.Second)
			cells = append(cells, runner.Job{Label: fmt.Sprintf("ablation-doppler/%s/%.1fHz", pc.name, d), Config: cfg})
		}
	}
	reps := opts.runReplicated(cells)
	for i, d := range dops {
		for j, pc := range pcs {
			rep := reps[i*len(pcs)+j]
			tab.AddRow(
				f1(d),
				f1(cells[i*len(pcs)+j].Config.Channel.CoherenceTime().Millis()),
				pc.name,
				rep.cell(f3, func(r core.Result) float64 { return 1000 * r.EnergyPerPktJ }),
				rep.cell(f1, func(r core.Result) float64 { return r.MeanDelayMs }),
				rep.cell(f0, func(r core.Result) float64 { return float64(r.MAC.DeferralsCSI) }),
				rep.cell(f0, func(r core.Result) float64 { return float64(r.MAC.ChannelFails) }),
			)
		}
	}
	return Report{
		ID:    "ablation-doppler",
		Title: "Ablation A2: channel dynamics (Doppler / coherence time)",
		Table: tab,
		Notes: []string{
			repNote(opts),
			"slower fading (longer coherence) lengthens both good and bad channel spells: deferral counts fall but each wait is longer",
			"faster fading raises channel failures: the CSI measured at the tone pulse ages before the packet finishes",
		},
	}
}

// AblationBurst sweeps the burst-size rules (DESIGN.md experiment A3),
// isolating the radio-startup amortization argument the paper uses to
// justify the minimum of 3 packets per transmission.
func AblationBurst(opts Options) Report {
	tab := Table{Headers: []string{
		"min", "max", "energy/pkt(mJ)", "startup-share", "delay(ms)", "collisions",
	}}
	cases := []struct{ min, max int }{
		{1, 1}, {1, 8}, {3, 8}, {3, 16}, {8, 8},
	}
	if opts.scale() < 0.8 {
		cases = []struct{ min, max int }{{1, 1}, {3, 8}, {8, 8}}
	}
	startupShare := func(r core.Result) float64 {
		if r.CommEnergyJ <= 0 {
			return 0
		}
		return r.EnergyByCause[energy.DataStartup] / r.CommEnergyJ
	}
	var cells []runner.Job
	for _, c := range cases {
		cfg := opts.baseConfig()
		cfg.Policy = queueing.PolicyAdaptive
		cfg.MAC.MinBurst = c.min
		cfg.MAC.MaxBurst = c.max
		cfg.Horizon = opts.horizon(300 * sim.Second)
		cells = append(cells, runner.Job{Label: fmt.Sprintf("ablation-burst/min%d-max%d", c.min, c.max), Config: cfg})
	}
	reps := opts.runReplicated(cells)
	for i, c := range cases {
		rep := reps[i]
		tab.AddRow(
			fmt.Sprintf("%d", c.min),
			fmt.Sprintf("%d", c.max),
			rep.cell(f3, func(r core.Result) float64 { return 1000 * r.EnergyPerPktJ }),
			rep.cell(pct, startupShare),
			rep.cell(f1, func(r core.Result) float64 { return r.MeanDelayMs }),
			rep.cell(f0, func(r core.Result) float64 { return float64(r.MAC.Collisions) }),
		)
	}
	return Report{
		ID:    "ablation-burst",
		Title: "Ablation A3: packets-per-transmission limits (min/max burst)",
		Table: tab,
		Notes: []string{
			repNote(opts),
			"single-packet bursts pay one radio startup per packet — the startup share of communication energy quantifies the paper's min-burst-of-3 rule",
			"uncapped bursts save startups but let one node hold the channel longer, raising delay spread (the paper caps at 8 for fairness)",
		},
	}
}

// All returns every experiment report at the given options, in the
// DESIGN.md §3 index order.
func All(opts Options) []Report {
	return []Report{
		TableI(opts),
		TableII(opts),
		Figure8(opts),
		Figure9(opts),
		Figure10(opts),
		Figure11(opts),
		Figure12(opts),
		NetworkPerformance(opts),
		AblationThresholdParams(opts),
		AblationDoppler(opts),
		AblationBurst(opts),
		AblationCSINoise(opts),
		AblationRician(opts),
		SeedSweep(opts),
		DynamicWorld(opts),
	}
}

// AblationCSINoise sweeps the channel-estimation error (DESIGN.md
// experiment A4). The paper assumes perfect tone-based CSI via channel
// reciprocity; this quantifies how much estimation error the admission
// decision tolerates before CAEM's savings erode.
func AblationCSINoise(opts Options) Report {
	tab := Table{Headers: []string{
		"noise-sigma(dB)", "protocol", "energy/pkt(mJ)", "channel-fails", "delivery", "delay(ms)",
	}}
	sigmas := []float64{0, 1, 2, 4, 8}
	if opts.scale() < 0.8 {
		sigmas = []float64{0, 2, 8}
	}
	pcs := []protocolCase{
		{"Scheme1", queueing.PolicyAdaptive},
		{"Scheme2", queueing.PolicyFixedHighest},
	}
	var cells []runner.Job
	for _, sigma := range sigmas {
		for _, pc := range pcs {
			cfg := opts.baseConfig()
			cfg.Policy = pc.policy
			cfg.CSINoiseSigmaDB = sigma
			cfg.Horizon = opts.horizon(300 * sim.Second)
			cells = append(cells, runner.Job{Label: fmt.Sprintf("ablation-csinoise/%s/%.0fdB", pc.name, sigma), Config: cfg})
		}
	}
	reps := opts.runReplicated(cells)
	for i, sigma := range sigmas {
		for j, pc := range pcs {
			rep := reps[i*len(pcs)+j]
			tab.AddRow(
				f1(sigma),
				pc.name,
				rep.cell(f3, func(r core.Result) float64 { return 1000 * r.EnergyPerPktJ }),
				rep.cell(f0, func(r core.Result) float64 { return float64(r.MAC.ChannelFails) }),
				rep.cell(pct, func(r core.Result) float64 { return r.DeliveryRate }),
				rep.cell(f1, func(r core.Result) float64 { return r.MeanDelayMs }),
			)
		}
	}
	return Report{
		ID:    "ablation-csinoise",
		Title: "Ablation A4: CSI estimation error (reciprocity-assumption robustness)",
		Table: tab,
		Notes: []string{
			repNote(opts),
			"optimistic estimation errors admit transmissions the channel cannot carry: channel failures rise with the noise spread",
			"the per-packet mode choice still tracks the true channel through the receive-tone feedback, so moderate estimation noise costs little energy — the admission threshold, not the mode table, absorbs the error",
		},
	}
}

// AblationRician sweeps the Rice factor K (DESIGN.md experiment A5):
// line-of-sight deployments fade far less than the paper's Rayleigh
// assumption, which shrinks both the cost of ignoring the channel and the
// benefit of exploiting it.
func AblationRician(opts Options) Report {
	tab := Table{Headers: []string{
		"rician-K", "protocol", "energy/pkt(mJ)", "channel-fails", "csi-deferrals",
	}}
	ks := []float64{0, 1, 4, 10}
	if opts.scale() < 0.8 {
		ks = []float64{0, 4}
	}
	pcs := []protocolCase{
		{"pure-LEACH", queueing.PolicyNone},
		{"Scheme1", queueing.PolicyAdaptive},
	}
	eppMilli := func(r core.Result) float64 { return 1000 * r.EnergyPerPktJ }
	var cells []runner.Job
	for _, k := range ks {
		for _, pc := range pcs {
			cfg := opts.baseConfig()
			cfg.Policy = pc.policy
			cfg.Channel.RicianK = k
			cfg.Horizon = opts.horizon(300 * sim.Second)
			cells = append(cells, runner.Job{Label: fmt.Sprintf("ablation-rician/%s/K%.0f", pc.name, k), Config: cfg})
		}
	}
	reps := opts.runReplicated(cells)
	var savings []float64
	for i, k := range ks {
		var perPkt [2]float64
		for j, pc := range pcs {
			rep := reps[i*len(pcs)+j]
			perPkt[j] = rep.mean(eppMilli)
			tab.AddRow(
				f1(k),
				pc.name,
				rep.cell(f3, eppMilli),
				rep.cell(f0, func(r core.Result) float64 { return float64(r.MAC.ChannelFails) }),
				rep.cell(f0, func(r core.Result) float64 { return float64(r.MAC.DeferralsCSI) }),
			)
		}
		savings = append(savings, 1-perPkt[1]/perPkt[0])
	}
	first, last := savings[0], savings[len(savings)-1]
	return Report{
		ID:    "ablation-rician",
		Title: "Ablation A5: Rice factor K (line-of-sight vs the paper's Rayleigh assumption)",
		Table: tab,
		Notes: []string{
			repNote(opts),
			fmt.Sprintf("Scheme 1's per-packet saving over pure LEACH falls from %.0f%% at K=0 (Rayleigh) to %.0f%% at K=%.0f: with a strong LOS component the channel rarely leaves its mean, so there is less variation to exploit — CAEM targets exactly the hostile, scattered deployments the paper describes", 100*first, 100*last, ks[len(ks)-1]),
		},
	}
}

// significant reports whether a paired-delta stream's 95% CI excludes
// zero — the matched-seed t-test behind SeedSweep's verdicts.
func significant(s stats.Stream) bool {
	h := s.CI95()
	return s.Count() >= 2 && !math.IsNaN(h) && math.Abs(s.Mean()) > h
}

// deltaCell renders a paired-delta aggregate as "Δmean±half", starring
// statistically significant deltas; "-" when no pairs exist.
func deltaCell(s stats.Stream, prec int) string {
	switch {
	case s.Count() == 0:
		return "-"
	case s.Count() < 2:
		return fmt.Sprintf("%+.*f", prec, s.Mean())
	}
	cell := fmt.Sprintf("%+.*f±%.*f", prec, s.Mean(), prec, s.CI95())
	if significant(s) {
		cell += " *"
	}
	return cell
}

// SeedSweep is the statistical-rigor experiment that replaces the old
// ad-hoc seed-variance study (DESIGN.md experiment A6): the headline
// load-5 metrics of every protocol across the full seed grid, as
// mean ± 95% CI, plus paired protocol deltas at matched seeds with a
// significance verdict (a paired Student-t interval excluding zero).
// Matching seeds pairs each CAEM run against the pure-LEACH run with an
// identical topology/channel/traffic realization, which removes the
// between-seed variance from the comparison — the reason protocol
// deltas can be significant even when the per-protocol CIs overlap.
func SeedSweep(opts Options) Report {
	seeds := opts.seedList()
	var cells []runner.Job
	for _, pc := range protocolCases() {
		cfg := opts.baseConfig()
		cfg.Policy = pc.policy
		cfg.Horizon = opts.horizon(4000 * sim.Second)
		cfg.StopWhenNetworkDead = true
		cfg.SampleInterval = 20 * sim.Second
		cells = append(cells, runner.Job{Label: "seedsweep/" + pc.name, Config: cfg})
	}
	reps := opts.runReplicated(cells)

	eppMilli := func(r core.Result) float64 { return 1000 * r.EnergyPerPktJ }
	delivery := func(r core.Result) float64 { return r.DeliveryRate }

	tab := Table{Headers: []string{"protocol", "seeds", "lifetime(s)", "energy/pkt(mJ)", "delivery"}}
	for i, pc := range protocolCases() {
		rep := reps[i]
		tab.AddRow(
			pc.name,
			fmt.Sprintf("%d", len(seeds)),
			partialCell(rep.lifetimeStream(), len(seeds), f1),
			ciString(rep.stream(eppMilli), f3),
			ciString(rep.stream(delivery), pct),
		)
	}

	// Paired deltas vs the pure-LEACH baseline at matched seeds.
	paired := func(variant, baseline replicates, pick func(core.Result) float64, ok func(core.Result) bool) stats.Stream {
		var s stats.Stream
		for k := range variant.runs {
			if ok(variant.runs[k]) && ok(baseline.runs[k]) {
				s.Add(pick(variant.runs[k]) - pick(baseline.runs[k]))
			}
		}
		return s
	}
	always := func(core.Result) bool { return true }
	dead := func(r core.Result) bool { return r.NetworkDead }
	lifetimeSec := func(r core.Result) float64 { return r.NetworkLifetime.Seconds() }
	// Delivery deltas are reported in percentage points so the Δ rows
	// read on the same scale as the per-protocol percentage cells above
	// them.
	deliveryPct := func(r core.Result) float64 { return 100 * r.DeliveryRate }

	notes := []string{
		fmt.Sprintf("per-protocol rows are mean ± 95%% CI over %d matched seed(s); [k/n] marks lifetimes observed in only k replicates", len(seeds)),
		"Δ rows are paired per-seed differences vs pure-LEACH (delivery Δ in percentage points); * marks deltas whose 95% CI excludes 0 (significant at matched seeds)",
	}
	for i, pc := range protocolCases()[1:] {
		variant := reps[i+1]
		dLife := paired(variant, reps[0], lifetimeSec, dead)
		dEpp := paired(variant, reps[0], eppMilli, always)
		dDel := paired(variant, reps[0], deliveryPct, always)
		// The lifetime delta only exists for seeds where BOTH runs died;
		// disclose the actual pair count when it is below the grid size,
		// so the CI's degrees of freedom are not overstated.
		lifeDelta := deltaCell(dLife, 1)
		if c := int(dLife.Count()); c > 0 && c < len(seeds) {
			lifeDelta += pairMarker(c, len(seeds))
		}
		tab.AddRow(
			"Δ "+pc.name+"−LEACH",
			fmt.Sprintf("%d", len(seeds)),
			lifeDelta,
			deltaCell(dEpp, 3),
			deltaCell(dDel, 1),
		)
		verdict := func(s stats.Stream, metric, unit string) string {
			switch {
			case s.Count() < 2:
				return fmt.Sprintf("%s vs pure-LEACH %s: too few matched pairs for a verdict", pc.name, metric)
			case significant(s):
				return fmt.Sprintf("%s vs pure-LEACH %s: Δ=%+.3f±%.3f %s — significant (95%% CI excludes 0)", pc.name, metric, s.Mean(), s.CI95(), unit)
			default:
				return fmt.Sprintf("%s vs pure-LEACH %s: Δ=%+.3f±%.3f %s — NOT significant at these seeds", pc.name, metric, s.Mean(), s.CI95(), unit)
			}
		}
		notes = append(notes, verdict(dEpp, "energy/pkt", "mJ"))
		if dLife.Count() >= 2 {
			notes = append(notes, verdict(dLife, "lifetime", "s"))
		}
	}

	return Report{
		ID:    "seedsweep",
		Title: "A6: seed-replication sweep — protocol deltas with matched-seed significance (load 5)",
		Table: tab,
		Notes: notes,
	}
}
