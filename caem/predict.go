package caem

import (
	"fmt"
	"strings"

	"repro/internal/analytic"
	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/sim"
)

// LinkPrediction is the closed-form link-budget analysis for one
// sensor-to-cluster-head distance under the configured channel model. It
// answers, before running any simulation, the questions CAEM's design
// hinges on: how often is the channel good, how long does a node wait for
// the top class, and how much transmit energy does waiting save.
type LinkPrediction struct {
	// DistanceM is the analyzed link distance.
	DistanceM float64
	// MeanSNRdB is the local-mean SNR (path loss at this distance).
	MeanSNRdB float64
	// ModeOccupancy[i] is the probability that the instantaneous channel
	// admits exactly ABICM class i (0 = 250 kbps ... 3 = 2 Mbps).
	ModeOccupancy []float64
	// BelowAllProb is the probability the channel is below every class —
	// where pure LEACH transmits and likely fails.
	BelowAllProb float64
	// ExpectedAirtimeMs is the mean per-packet airtime of the
	// transmit-immediately policy (pure LEACH).
	ExpectedAirtimeMs float64
	// TopClassAirtimeMs is the airtime at the highest class (what a
	// waiting policy pays).
	TopClassAirtimeMs float64
	// ExpectedWaitTopClassMs is the mean time a sensor polling at the
	// idle-tone period waits until the channel admits the top class.
	ExpectedWaitTopClassMs float64
	// PredictedSaving is the transmit-energy fraction the
	// wait-for-top-class policy saves over transmit-immediately.
	PredictedSaving float64
}

// PredictLink computes the analytic link budget at the given distance for
// a configuration. The prediction assumes Rayleigh fading (the model's
// default); it intentionally ignores shadowing, contention, and queueing —
// it is the first-order story that the full simulation then refines.
func PredictLink(c Config, distanceM float64) (LinkPrediction, error) {
	sc, err := c.simConfig()
	if err != nil {
		return LinkPrediction{}, err
	}
	if err := sc.Validate(); err != nil {
		return LinkPrediction{}, err
	}
	if distanceM <= 0 {
		return LinkPrediction{}, fmt.Errorf("caem: non-positive link distance %v", distanceM)
	}
	return predictLink(sc.Channel, sc.Modes, sc.PacketSizeBits, sc.Tone.Pattern(toneIdlePattern).Interval, distanceM), nil
}

// toneIdlePattern avoids importing tone's State type into the public
// signature; the idle pattern's interval is the CSI polling period.
const toneIdlePattern = 0 // tone.Idle

func predictLink(ch channel.Params, modes phy.Table, packetBits int, poll sim.Time, distanceM float64) LinkPrediction {
	mean := ch.PathLossSNRdB(distanceM)
	occ, below := analytic.ModeOccupancy(mean, modes)
	return LinkPrediction{
		DistanceM:         distanceM,
		MeanSNRdB:         mean,
		ModeOccupancy:     occ,
		BelowAllProb:      below,
		ExpectedAirtimeMs: analytic.ExpectedAirtime(mean, modes, packetBits).Millis(),
		TopClassAirtimeMs: modes.Highest().Airtime(packetBits).Millis(),
		ExpectedWaitTopClassMs: 1000 * analytic.ExpectedWaitForClass(
			mean, modes.Highest().ThresholdSNRdB, poll),
		PredictedSaving: analytic.PredictedSavingVsTopClass(mean, modes, packetBits),
	}
}

// Summary renders the prediction for humans.
func (p LinkPrediction) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "link @ %.0f m: mean SNR %.1f dB\n", p.DistanceM, p.MeanSNRdB)
	b.WriteString("mode occupancy:  ")
	for i, o := range p.ModeOccupancy {
		fmt.Fprintf(&b, "class%d=%.1f%% ", i, 100*o)
	}
	fmt.Fprintf(&b, "below-all=%.1f%%\n", 100*p.BelowAllProb)
	fmt.Fprintf(&b, "airtime/packet:  transmit-now %.2f ms vs top-class %.2f ms\n",
		p.ExpectedAirtimeMs, p.TopClassAirtimeMs)
	fmt.Fprintf(&b, "wait for 2 Mbps: %.0f ms expected\n", p.ExpectedWaitTopClassMs)
	fmt.Fprintf(&b, "predicted tx-energy saving from waiting: %.0f%%\n", 100*p.PredictedSaving)
	return b.String()
}
