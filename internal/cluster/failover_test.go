package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/caem"
	"repro/internal/api"
	"repro/internal/cluster/journal"
)

// countingSink wraps testSink to count CellFailed deliveries — the map
// in testSink dedups by key, which hides re-deliveries.
type countingSink struct {
	*testSink
	failedN atomic.Int64
}

func (s *countingSink) CellFailed(c Cell, attempts int, err error) {
	s.failedN.Add(1)
	s.testSink.CellFailed(c, attempts, err)
}

// TestCoordinatorFencing: leases carry the coordinator's epoch;
// operations with a dead epoch's lease are rejected with ErrFenced,
// and a Fence()d coordinator rejects everything.
func TestCoordinatorFencing(t *testing.T) {
	sink := newTestSink()
	c := NewCoordinator(sink, Options{Epoch: 2, LeaseTTL: time.Minute})
	defer c.Stop()
	c.Submit(testCells(t, 4))

	lease, err := c.Claim("w1", 0)
	if err != nil || lease == nil {
		t.Fatalf("Claim: %v, %v", lease, err)
	}
	if lease.Epoch != 2 || !strings.HasPrefix(lease.ID, "lease-2-") {
		t.Fatalf("lease %q epoch %d, want epoch 2 embedded", lease.ID, lease.Epoch)
	}
	// A lease granted by the dead epoch-1 coordinator is fenced on every
	// verb, not answered with a plain "gone".
	for _, op := range []func() error{
		func() error { return c.Renew("lease-1-7") },
		func() error { return c.Complete("lease-1-7", nil) },
		func() error { return c.Release("lease-1-7", nil) },
	} {
		if err := op(); !errors.Is(err, ErrFenced) {
			t.Fatalf("dead-epoch lease op = %v, want ErrFenced", err)
		}
	}
	// An unknown lease of the *current* epoch is still just gone.
	if err := c.Renew("lease-2-999"); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("unknown current-epoch lease = %v, want ErrLeaseGone", err)
	}

	// Deposed: everything fences, including the worker's own live lease.
	c.Fence()
	if _, err := c.Claim("w1", 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("Claim on fenced coordinator = %v, want ErrFenced", err)
	}
	if err := c.Renew(lease.ID); !errors.Is(err, ErrFenced) {
		t.Fatalf("Renew on fenced coordinator = %v, want ErrFenced", err)
	}
	if got := c.met.fenced.Value(); got < 5 {
		t.Fatalf("fenced counter = %v, want >= 5", got)
	}
	if st := c.Status(); st.Epoch != 2 {
		t.Fatalf("Status.Epoch = %d, want 2", st.Epoch)
	}
}

// TestDrainClaimUnavailable: a draining coordinator answers claims
// with 503 + Retry-After over HTTP, which the Remote surfaces as
// *UnavailableError with the parsed hint.
func TestDrainClaimUnavailable(t *testing.T) {
	sink := newTestSink()
	c := NewCoordinator(sink, Options{LeaseTTL: 2 * time.Second})
	defer c.Stop()
	mux := http.NewServeMux()
	c.RegisterHTTP(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c.Drain()
	resp, err := http.Post(ts.URL+"/v1/leases/claim", "application/json",
		strings.NewReader(`{"worker":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("claim during drain = %s, want 503", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q (the lease TTL)", ra, "2")
	}
	var body struct {
		Error api.Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != api.CodeUnavailable {
		t.Fatalf("error code = %q, want %q", body.Error.Code, api.CodeUnavailable)
	}

	r := &Remote{Base: ts.URL}
	_, cerr := r.Claim("w1", 0)
	var ua *UnavailableError
	if !errors.As(cerr, &ua) || ua.RetryAfter != 2*time.Second {
		t.Fatalf("Remote claim during drain = %v, want UnavailableError{2s}", cerr)
	}
}

// TestFencedOverHTTP: a fenced settle maps to 410 with the "fenced"
// envelope code, which the Remote distinguishes from a gone lease.
func TestFencedOverHTTP(t *testing.T) {
	sink := newTestSink()
	c := NewCoordinator(sink, Options{Epoch: 3, LeaseTTL: time.Minute})
	defer c.Stop()
	mux := http.NewServeMux()
	c.RegisterHTTP(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	r := &Remote{Base: ts.URL}
	if err := r.Renew("lease-1-4"); !errors.Is(err, ErrFenced) {
		t.Fatalf("Remote renew of dead-epoch lease = %v, want ErrFenced", err)
	}
	if err := r.Renew("lease-3-99"); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("Remote renew of unknown lease = %v, want ErrLeaseGone", err)
	}
}

// TestJournalFailoverRoundTrip is the tentpole in miniature, without
// HTTP: a journaled coordinator makes scheduling decisions and "dies";
// a successor replays the journal, adopts cells whose results are
// already durable, re-queues the rest, and finishes the campaign with
// byte-identical results.
func TestJournalFailoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cells := testCells(t, 6)
	want := referenceResults(t, cells)

	j, st := mustOpenJournal(t, dir)
	if err := j.Begin(1, st); err != nil {
		t.Fatal(err)
	}
	sink1 := newTestSink()
	c1 := NewCoordinator(sink1, Options{Epoch: 1, Journal: j, LeaseTTL: time.Minute, MaxAttempts: 2})
	c1.Submit(cells)

	// One worker computes one batch (3 cells with a single worker) and
	// completes it; a second batch is claimed but never settled — the
	// coordinator "dies" with the lease outstanding.
	lease1, err := c1.Claim("w1", 3)
	if err != nil || lease1 == nil || len(lease1.Cells) != 3 {
		t.Fatalf("first claim: %+v, %v", lease1, err)
	}
	var results []CellResult
	for _, cell := range lease1.Cells {
		res := want[cell.Key()]
		results = append(results, CellResult{Campaign: cell.Campaign, Index: cell.Index, Result: &res})
	}
	if err := c1.Complete(lease1.ID, results); err != nil {
		t.Fatal(err)
	}
	lease2, err := c1.Claim("w1", 2)
	if err != nil || lease2 == nil {
		t.Fatalf("second claim: %v", err)
	}
	// Crash: no Release, no Complete. The journal is all that survives.
	c1.Stop()
	j.Close()

	// The successor replays, adopts what the "store" already has (the
	// results sink1 persisted), and re-queues the leased-but-unsettled
	// cells.
	j2, st2 := mustOpenJournal(t, dir)
	defer j2.Close()
	if err := j2.Begin(2, st2); err != nil {
		t.Fatal(err)
	}
	sink2 := newTestSink()
	c2 := NewCoordinator(sink2, Options{Epoch: 2, Journal: j2, LeaseTTL: time.Minute})
	defer c2.Stop()
	adopt := func(c Cell) bool {
		sink1.mu.Lock()
		defer sink1.mu.Unlock()
		_, ok := sink1.done[c.Key()]
		return ok
	}
	if err := c2.Restore(st2, adopt); err != nil {
		t.Fatal(err)
	}
	if st := c2.Status(); st.Epoch != 2 || st.Queue != 3 {
		t.Fatalf("restored status = epoch %d queue %d, want epoch 2 queue 3", st.Epoch, st.Queue)
	}
	// An epoch-1 lease arriving at the successor is fenced.
	if err := c2.Renew(lease2.ID); !errors.Is(err, ErrFenced) {
		t.Fatalf("old lease at successor = %v, want ErrFenced", err)
	}
	// Finish the campaign at epoch 2 and check byte-identical results
	// across the combined sinks.
	for {
		lease, err := c2.Claim("w2", 0)
		if err != nil {
			t.Fatal(err)
		}
		if lease == nil {
			break
		}
		var rs []CellResult
		pool := caem.NewSimPool()
		for _, cell := range lease.Cells {
			res, err := pool.RunScenario(cell.Scenario, cell.Config)
			if err != nil {
				t.Fatal(err)
			}
			rs = append(rs, CellResult{Campaign: cell.Campaign, Index: cell.Index, Result: &res})
		}
		if err := c2.Complete(lease.ID, rs); err != nil {
			t.Fatal(err)
		}
	}
	for _, cell := range cells {
		key := cell.Key()
		got, ok := sink1.done[key]
		if !ok {
			got, ok = sink2.done[key]
		}
		if !ok {
			t.Fatalf("cell %s never settled", key)
		}
		if !reflect.DeepEqual(got, want[key]) {
			t.Fatalf("cell %s result diverged across failover", key)
		}
	}
}

// TestSubmitReconciliation: re-submitting over journal-restored state
// never double-queues; a journal-settled cell whose result the store
// lost is un-settled and re-run; a journal-poisoned cell is re-reported
// to the sink instead of queued.
func TestSubmitReconciliation(t *testing.T) {
	cells := testCells(t, 3)
	sink := &countingSink{testSink: newTestSink()}
	c := NewCoordinator(sink, Options{LeaseTTL: time.Minute, MaxAttempts: 1})
	defer c.Stop()

	c.Submit(cells)
	if st := c.Status(); st.Queue != 3 {
		t.Fatalf("queue = %d, want 3", st.Queue)
	}
	c.Submit(cells) // replay: everything already queued
	if st := c.Status(); st.Queue != 3 {
		t.Fatalf("queue after duplicate submit = %d, want 3", st.Queue)
	}

	// Poison cells[0] (MaxAttempts 1: first failure is terminal), settle
	// cells[1] normally, leave cells[2] queued.
	lease, err := c.Claim("w1", 3)
	if err != nil || len(lease.Cells) != 2 {
		t.Fatalf("claim: %+v, %v", lease, err)
	}
	res := referenceResults(t, cells[1:2])[cells[1].Key()]
	if err := c.Complete(lease.ID, []CellResult{
		{Campaign: cells[0].Campaign, Index: cells[0].Index, Error: "boom"},
		{Campaign: cells[1].Campaign, Index: cells[1].Index, Result: &res},
	}); err != nil {
		t.Fatal(err)
	}
	if n := sink.failedN.Load(); n != 1 {
		t.Fatalf("CellFailed deliveries = %d, want 1", n)
	}

	// A re-plan resubmits the poisoned cell (its result is absent from
	// the store): the poison is re-delivered, not re-queued.
	c.Submit(cells[:1])
	if n := sink.failedN.Load(); n != 2 {
		t.Fatalf("CellFailed deliveries after resubmit = %d, want 2", n)
	}
	if st := c.Status(); st.Queue != 1 {
		t.Fatalf("queue = %d, want 1 (poisoned cell must not re-queue)", st.Queue)
	}

	// The settled cell resubmitted means the store lost it: un-settle
	// and re-queue.
	c.Submit(cells[1:2])
	if st := c.Status(); st.Queue != 2 {
		t.Fatalf("queue = %d, want 2 (settled-but-lost cell re-queued)", st.Queue)
	}
}

// TestClaimBackoff: deterministic, exponential, capped by the lease
// TTL, and deferent to an explicit Retry-After hint.
func TestClaimBackoff(t *testing.T) {
	w := &Worker{Name: "w1"}
	poll := 200 * time.Millisecond
	ttl := time.Second
	prev := time.Duration(0)
	for n := 1; n <= 10; n++ {
		d := w.claimBackoff(n, ttl, errors.New("connection refused"), poll)
		if d != w.claimBackoff(n, ttl, errors.New("connection refused"), poll) {
			t.Fatalf("claimBackoff(%d) is not deterministic", n)
		}
		if d > ttl {
			t.Fatalf("claimBackoff(%d) = %v exceeds the lease TTL %v", n, d, ttl)
		}
		if d < prev && d != ttl {
			t.Fatalf("claimBackoff(%d) = %v shrank below attempt %d's %v before hitting the cap", n, d, n-1, prev)
		}
		prev = d
	}
	// With no observed TTL the cap is the 15s default, never exceeded.
	if d := w.claimBackoff(10, 0, errors.New("x"), poll); d > 15*time.Second {
		t.Fatalf("uncapped backoff = %v, want <= 15s", d)
	}
	// An Unavailable hint is honored under the cap.
	if d := w.claimBackoff(1, ttl, &UnavailableError{RetryAfter: 500 * time.Millisecond}, poll); d != 500*time.Millisecond {
		t.Fatalf("hinted backoff = %v, want 500ms", d)
	}
	if d := w.claimBackoff(1, ttl, &UnavailableError{RetryAfter: 30 * time.Second}, poll); d != ttl {
		t.Fatalf("hinted backoff = %v, want capped at %v", d, ttl)
	}
}

// TestRemoteFailoverRotation: a Remote with multiple bases rotates off
// a member that answers fenced/503 and converges on the leader; a
// leader document re-targets it directly.
func TestRemoteFailoverRotation(t *testing.T) {
	sink := newTestSink()
	c := NewCoordinator(sink, Options{Epoch: 2, LeaseTTL: time.Minute})
	defer c.Stop()
	c.Submit(testCells(t, 2))
	leaderMux := http.NewServeMux()
	c.RegisterHTTP(leaderMux)
	leader := httptest.NewServer(leaderMux)
	defer leader.Close()

	// A deposed member: fences every lease verb, but still knows who
	// leads.
	deposedMux := http.NewServeMux()
	deposedMux.HandleFunc("POST /v1/leases/", func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, http.StatusGone, api.CodeFenced, ErrFenced.Error(), nil)
	})
	deposedMux.HandleFunc("GET /v1/cluster/leader", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(LeaderInfo{LeaderURL: leader.URL, Epoch: 2, Role: "standby"})
	})
	deposed := httptest.NewServer(deposedMux)
	defer deposed.Close()

	r := &Remote{Bases: []string{deposed.URL, leader.URL}}
	if _, err := r.Claim("w1", 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("claim at deposed member = %v, want ErrFenced", err)
	}
	// The fenced response rotated the Remote; the retry lands on the
	// leader.
	lease, err := r.Claim("w1", 0)
	if err != nil || lease == nil || lease.Epoch != 2 {
		t.Fatalf("claim after rotation = %+v, %v", lease, err)
	}
	if err := r.Release(lease.ID, nil); err != nil {
		t.Fatal(err)
	}

	// ResolveLeader re-targets directly instead of probing in order.
	r2 := &Remote{Bases: []string{deposed.URL, leader.URL}}
	info, err := r2.ResolveLeader()
	if err != nil || info.LeaderURL != leader.URL {
		t.Fatalf("ResolveLeader = %+v, %v", info, err)
	}
	if got := r2.base(); got != leader.URL {
		t.Fatalf("Remote targets %q after ResolveLeader, want %q", got, leader.URL)
	}

	// A worker that only knows the deposed member still converges: the
	// advertised leader URL is adopted even though it was never in the
	// configured bases.
	r3 := &Remote{Bases: []string{deposed.URL}}
	info, err = r3.ResolveLeader()
	if err != nil || info.LeaderURL != leader.URL {
		t.Fatalf("ResolveLeader from deposed-only bases = %+v, %v", info, err)
	}
	if got := r3.base(); got != leader.URL {
		t.Fatalf("Remote targets %q after adopting the advertised leader, want %q", got, leader.URL)
	}
	if lease, err := r3.Claim("w2", 0); err != nil || lease == nil {
		t.Fatalf("claim via adopted leader URL = %+v, %v", lease, err)
	}
}

// TestGuardFencesZombieSettle: the write-time leadership guard. A
// coordinator whose renew loop has not yet noticed deposition (the
// SIGSTOP-then-resume zombie) is fenced synchronously at the first
// grant or settle after a successor takes the lock — its stale results
// never reach the sink.
func TestGuardFencesZombieSettle(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "leader.lock")
	lock := lockAt(path, "primary", clk)
	epoch, err := lock.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}

	sink := newTestSink()
	c := NewCoordinator(sink, Options{
		Epoch:    epoch,
		LeaseTTL: time.Minute,
		Guard:    func() error { return lock.Verify(epoch) },
	})
	defer c.Stop()
	cells := testCells(t, 4)
	want := referenceResults(t, cells)
	c.Submit(cells)

	// While we hold the lock, the guard is invisible: claims and settles
	// proceed.
	lease1, err := c.Claim("w1", 2)
	if err != nil || lease1 == nil {
		t.Fatalf("claim while leading: %+v, %v", lease1, err)
	}
	var rs []CellResult
	for _, cell := range lease1.Cells {
		res := want[cell.Key()]
		rs = append(rs, CellResult{Campaign: cell.Campaign, Index: cell.Index, Result: &res})
	}
	if err := c.Complete(lease1.ID, rs); err != nil {
		t.Fatalf("complete while leading: %v", err)
	}
	lease2, err := c.Claim("w1", 2)
	if err != nil || lease2 == nil {
		t.Fatalf("second claim: %+v, %v", lease2, err)
	}

	// The coordinator stalls past its TTL; a standby takes the lock. The
	// renew loop hasn't run — only the guard stands between the zombie's
	// in-flight settle and the store.
	clk.advance(1100 * time.Millisecond)
	standby := lockAt(path, "standby", clk)
	if _, err := standby.TryAcquire(); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(lease2.ID, nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie settle = %v, want ErrFenced", err)
	}
	if _, err := c.Claim("w1", 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie claim = %v, want ErrFenced", err)
	}
	// Only the pre-takeover batch reached the sink.
	sink.mu.Lock()
	n := len(sink.done)
	sink.mu.Unlock()
	if n != len(lease1.Cells) {
		t.Fatalf("sink has %d cells, want %d (zombie writes must not land)", n, len(lease1.Cells))
	}
}

func mustOpenJournal(t *testing.T, dir string) (*journal.Journal, journal.State) {
	t.Helper()
	j, st, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return j, st
}
