// Command docscheck is the documentation quality gate behind
// `make docs-check`. It fails the build when the documentation surface
// rots:
//
//   - every package in the module must carry a package comment on a
//     non-test file, so `go doc` is never empty;
//   - every fenced ```go block in the given markdown files must build
//     against the real module (complete files build as-is; statement
//     snippets are wrapped in a function with inferred imports);
//   - every fenced ```json block in the scenario docs must parse and
//     validate through the real scenario loader.
//
// The Example* doc tests themselves run via `go test -run '^Example'`
// in the same make target; docscheck covers what the test runner
// cannot see.
//
// Usage:
//
//	docscheck -docs README.md,ARCHITECTURE.md,scenarios/SPEC.md -scenario-docs scenarios/SPEC.md
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/scenario"
)

func main() {
	var (
		root         = flag.String("root", ".", "module root to scan")
		docs         = flag.String("docs", "", "comma-separated markdown files whose ```go blocks must build")
		scenarioDocs = flag.String("scenario-docs", "", "comma-separated markdown files whose ```json blocks must validate as scenario specs")
	)
	flag.Parse()

	var problems []string

	missing, err := packagesMissingDocs(*root)
	if err != nil {
		fatal(err)
	}
	for _, dir := range missing {
		problems = append(problems, fmt.Sprintf("package %s has no package comment (add a doc.go)", dir))
	}

	var goBlocks []block
	for _, f := range splitList(*docs) {
		bs, err := extractBlocks(f, "go")
		if err != nil {
			fatal(err)
		}
		goBlocks = append(goBlocks, bs...)
	}
	if len(goBlocks) > 0 {
		probs, err := buildGoBlocks(*root, goBlocks)
		if err != nil {
			fatal(err)
		}
		problems = append(problems, probs...)
	}

	nspecs := 0
	for _, f := range splitList(*scenarioDocs) {
		bs, err := extractBlocks(f, "json")
		if err != nil {
			fatal(err)
		}
		for _, b := range bs {
			nspecs++
			if _, err := scenario.Load(strings.NewReader(b.body)); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: scenario block does not validate: %v", b.file, b.line, err))
			}
		}
	}

	if len(problems) > 0 {
		fmt.Fprintln(os.Stderr, "docscheck: FAIL")
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "  - "+p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: ok (%d packages documented, %d go blocks build, %d scenario blocks validate)\n",
		packagesScanned, len(goBlocks), nspecs)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
	os.Exit(1)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

var packagesScanned int

// packagesMissingDocs walks every package directory under root and
// returns those whose non-test files carry no package comment.
func packagesMissingDocs(root string) ([]string, error) {
	skip := map[string]bool{".git": true, "out": true, "testdata": true, ".github": true}
	var missing []string

	// Collect package dirs (any dir with a non-test .go file).
	dirs := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skip[d.Name()] && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	sorted := make([]string, 0, len(dirs))
	for dir := range dirs {
		sorted = append(sorted, dir)
	}
	sort.Strings(sorted)
	packagesScanned = len(sorted)

	fset := token.NewFileSet()
	for _, dir := range sorted {
		documented := false
		for _, file := range dirs[dir] {
			f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", file, err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			missing = append(missing, dir)
		}
	}
	return missing, nil
}

// block is one fenced code block.
type block struct {
	file string
	line int // 1-based line of the opening fence
	body string
}

// extractBlocks returns the fenced blocks of the given language.
func extractBlocks(file, lang string) ([]block, error) {
	blob, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var (
		out     []block
		cur     []string
		curLine int
		in      bool
	)
	for i, line := range strings.Split(string(blob), "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case !in && trimmed == "```"+lang:
			in, cur, curLine = true, nil, i+1
		case in && trimmed == "```":
			in = false
			out = append(out, block{file: file, line: curLine, body: strings.Join(cur, "\n") + "\n"})
		case in:
			cur = append(cur, line)
		}
	}
	if in {
		return nil, fmt.Errorf("%s:%d: unterminated ```%s block", file, curLine, lang)
	}
	return out, nil
}

// knownImports maps selector roots a doc snippet may use to their
// import paths. Snippets keep to this vocabulary by construction; a new
// root shows up as a build failure naming the undefined identifier.
var knownImports = map[string]string{
	"fmt":      "fmt",
	"os":       "os",
	"errors":   "errors",
	"strings":  "strings",
	"bytes":    "bytes",
	"io":       "io",
	"time":     "time",
	"math":     "math",
	"sort":     "sort",
	"json":     "encoding/json",
	"http":     "net/http",
	"caem":     "repro/caem",
	"scenario": "repro/internal/scenario",
	"stats":    "repro/internal/stats",
	"runner":   "repro/internal/runner",
	"store":    "repro/internal/store",
}

// topLevelRe detects snippet bodies that already contain file-level
// declarations and so must not be wrapped inside a function.
var topLevelRe = regexp.MustCompile(`(?m)^(func|type|var|const)\s`)

// wrapSnippet turns a statement-or-declaration snippet into a
// compilable file with inferred imports.
func wrapSnippet(body string) string {
	var imports []string
	for root, path := range knownImports {
		if regexp.MustCompile(`\b` + root + `\.`).MatchString(body) {
			imports = append(imports, path)
		}
	}
	sort.Strings(imports)
	var b strings.Builder
	b.WriteString("package snippet\n\n")
	if len(imports) > 0 {
		b.WriteString("import (\n")
		for _, p := range imports {
			fmt.Fprintf(&b, "\t%q\n", p)
		}
		b.WriteString(")\n\n")
	}
	if topLevelRe.MatchString(body) {
		b.WriteString(body)
	} else {
		b.WriteString("func _() {\n")
		b.WriteString(body)
		b.WriteString("}\n")
	}
	return b.String()
}

// buildGoBlocks materializes every block as its own package in a temp
// module that replaces repro with the local checkout, then builds them
// all in one `go build ./...`.
func buildGoBlocks(root string, blocks []block) ([]string, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp("", "docscheck")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	gomod := fmt.Sprintf("module docsnippets\n\ngo 1.24\n\nrequire repro v0.0.0\n\nreplace repro => %s\n", absRoot)
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte(gomod), 0o644); err != nil {
		return nil, err
	}

	where := make(map[string]block, len(blocks)) // package dir name → origin
	for i, b := range blocks {
		src := b.body
		if !strings.HasPrefix(strings.TrimSpace(src), "package ") {
			src = wrapSnippet(src)
		}
		name := fmt.Sprintf("b%02d", i)
		dir := filepath.Join(tmp, name)
		if err := os.Mkdir(dir, 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(src), 0o644); err != nil {
			return nil, err
		}
		where[name] = b
	}

	// `go mod tidy` resolves the require/replace pair offline; `go vet`
	// then fully type-checks every snippet package, main and non-main
	// alike, without writing binaries (`go build -o dir ./...` silently
	// skips non-main packages, and plain `go build ./...` drops main-
	// package executables into the working directory).
	for _, args := range [][]string{{"mod", "tidy"}, {"vet", "./..."}} {
		cmd := exec.Command("go", args...)
		cmd.Dir = tmp
		cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=-mod=mod")
		if out, err := cmd.CombinedOutput(); err != nil {
			return attributeFailures(string(out), where), nil
		}
	}
	return nil, nil
}

// attributeFailures maps compiler output lines back to the markdown
// blocks they came from.
func attributeFailures(out string, where map[string]block) []string {
	var problems []string
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		for name, b := range where {
			if strings.Contains(line, name+string(os.PathSeparator)+"snippet.go") && !seen[name] {
				seen[name] = true
				problems = append(problems, fmt.Sprintf("%s:%d: go block fails to build: %s", b.file, b.line, strings.TrimSpace(line)))
			}
		}
	}
	if len(problems) == 0 { // e.g. go.mod resolution failure
		problems = append(problems, "doc snippet build failed:\n"+out)
	}
	sort.Strings(problems)
	return problems
}
