package runner

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Job is one simulation to execute.
type Job struct {
	// Label identifies the run in progress reporting ("figure9/Scheme1").
	Label string
	// Config fully specifies the run.
	Config core.Config
}

// Options tunes the pool.
type Options struct {
	// Workers is the number of concurrent runs: 0 means NumCPU, 1 runs
	// serially inline on the calling goroutine (the legacy behaviour),
	// larger values cap at the job count.
	Workers int
	// Progress, when non-nil, is called once per completed run. Calls are
	// serialized, but arrive in completion order, not submission order.
	Progress func(job Job, res core.Result)
}

// workers resolves the effective worker count for a batch of n jobs.
// Zero means NumCPU; a negative value falls back to serial (the
// conservative reading of an underflowed caller computation).
func (o Options) workers(n int) int {
	w := o.Workers
	if w == 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Pool is a cache of resident simulation contexts keyed by configuration
// shape (node count). Instead of building a fresh world per run — the
// dominant fixed cost of a replication grid, whose cells differ only by
// seed — a Pool keeps one *core.Network per shape and resets it in place
// for each run: arenas, free lists, stream allocations, the link matrix,
// and metric storage all survive between runs.
//
// A Pool is NOT safe for concurrent use; give each worker goroutine its
// own (as Run and DoPooled do). Determinism is unaffected: a pooled
// Reset-then-Run is bit-identical to a fresh New-then-Run, so results do
// not depend on which jobs a worker's context previously executed.
type Pool struct {
	byShape map[int]*core.Network
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{byShape: make(map[int]*core.Network)} }

// Run executes one simulation on the pool's resident context for the
// configuration's shape, creating it on first use.
func (p *Pool) Run(cfg core.Config) core.Result {
	if net, ok := p.byShape[cfg.Nodes]; ok {
		net.Reset(cfg)
		return net.Run()
	}
	net := core.New(cfg)
	p.byShape[cfg.Nodes] = net
	return net.Run()
}

// Run executes every job and returns the results in submission order.
// With the same seeds, the output is bit-identical for every worker
// count: each run is single-threaded over its own state, and the workers
// share nothing but the job list. Each worker runs its jobs on a
// resident pooled context (reset in place per job) rather than building
// a fresh world every time, which is what makes an N-seed replication
// grid cost less than N times a cold run.
//
// A panic inside any run (e.g. an invalid Config) is re-raised on the
// calling goroutine — deterministically the panic of the lowest-indexed
// failing job — after the remaining jobs have drained.
func Run(opts Options, jobs []Job) []core.Result {
	results := make([]core.Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	var mu sync.Mutex // serializes Progress
	failed, failVal := DoPooled(opts.Workers, len(jobs), func(p *Pool, i int) {
		res := p.Run(jobs[i].Config)
		results[i] = res
		if opts.Progress != nil {
			mu.Lock()
			opts.Progress(jobs[i], res)
			mu.Unlock()
		}
	})
	if failed >= 0 {
		panic(fmt.Sprintf("runner: job %d (%s) panicked: %v", failed, jobs[failed].Label, failVal))
	}
	return results
}

// Do is the pool primitive Run is built on, and the generic escape hatch
// for callers whose work is not a core.Config (the public caem
// wrappers): it invokes fn(0..n-1) across the worker policy (0 = NumCPU,
// 1 or negative = serial inline). fn must be safe to call concurrently
// when more than one worker resolves.
//
// A panic inside fn is captured — the lowest failing index wins, for
// determinism — and returned as (index, value) after every other task
// has drained; (-1, nil) means all tasks completed. Callers that cannot
// continue should re-raise it with context, as Run does.
func Do(workers, n int, fn func(int)) (failedIndex int, panicValue any) {
	return DoWorkers(workers, n, func(_, i int) { fn(i) })
}

// DoPooled is Do with a worker-local context Pool handed to fn: each
// worker goroutine owns one Pool for the batch, so consecutive jobs on
// the same worker reuse a resident simulation context. fn must treat the
// Pool as worker-private (it is never shared across goroutines).
func DoPooled(workers, n int, fn func(p *Pool, i int)) (failedIndex int, panicValue any) {
	if n <= 0 {
		return -1, nil
	}
	pools := make([]*Pool, EffectiveWorkers(workers, n))
	for j := range pools {
		pools[j] = NewPool()
	}
	return DoWorkers(workers, n, func(w, i int) { fn(pools[w], i) })
}

// EffectiveWorkers resolves the worker policy for a batch of n tasks:
// 0 means NumCPU, negative means serial, and the count never exceeds n.
func EffectiveWorkers(workers, n int) int {
	return Options{Workers: workers}.workers(n)
}

// DoWorkers is the scheduling primitive beneath Do and DoPooled: it
// invokes fn(worker, i) for i in 0..n-1, where worker identifies the
// executing goroutine densely in [0, EffectiveWorkers(workers, n)).
// Worker-local state (resident contexts, scratch arenas) keys off the
// worker index; task results must key off i — which tasks land on which
// worker depends on runtime scheduling, only the per-i results are
// deterministic.
//
// Panic policy is Do's: lowest failing index wins, returned after every
// task has drained.
func DoWorkers(workers, n int, fn func(worker, i int)) (failedIndex int, panicValue any) {
	var (
		mu       sync.Mutex
		panicked = -1
		panicVal any
	)
	task := func(w, i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if panicked < 0 || i < panicked {
					panicked, panicVal = i, r
				}
				mu.Unlock()
			}
		}()
		fn(w, i)
	}
	if n <= 0 {
		return -1, nil
	}
	if w := EffectiveWorkers(workers, n); w == 1 {
		for i := 0; i < n; i++ {
			task(0, i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for i := range idx {
					task(worker, i)
				}
			}(wi)
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	return panicked, panicVal
}
