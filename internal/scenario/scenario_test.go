package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func fp(v float64) *float64 { return &v }

// testConfig is a small fast world: 20 nodes, 60 simulated seconds.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes = 20
	cfg.FieldWidth, cfg.FieldHeight = 45, 45
	cfg.Horizon = 60 * sim.Second
	cfg.InitialEnergyJ = 2
	return cfg
}

func runCompiled(t *testing.T, s Spec) core.Result {
	t.Helper()
	cfg := testConfig()
	if err := Compile(s, &cfg); err != nil {
		t.Fatalf("compile: %v", err)
	}
	return core.New(cfg).Run()
}

func TestSelectorResolve(t *testing.T) {
	cases := []struct {
		sel  Selector
		n    int
		want []int
	}{
		{Selector{}, 4, []int{0, 1, 2, 3}},
		{Selector{All: true}, 3, []int{0, 1, 2}},
		{Selector{Indices: []int{2, 0, 2}}, 4, []int{0, 2}},
		{Selector{From: 1, To: 4}, 6, []int{1, 2, 3}},
		{Selector{From: 0, To: 6, Every: 2}, 6, []int{0, 2, 4}},
		{Selector{Indices: []int{5}, From: 0, To: 2}, 6, []int{0, 1, 5}},
	}
	for i, c := range cases {
		got, err := c.sel.Resolve(c.n)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
	for i, c := range []struct {
		sel Selector
		n   int
	}{
		{Selector{Indices: []int{4}}, 4},
		{Selector{Indices: []int{-1}}, 4},
		{Selector{From: 3, To: 2}, 4},
		{Selector{From: 0, To: 8}, 4},
		{Selector{From: 0, To: 4, Every: -1}, 4},
	} {
		if _, err := c.sel.Resolve(c.n); err == nil {
			t.Errorf("bad case %d: no error", i)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := Spec{
		Name:        "rt",
		Description: "round trip",
		Nodes: []NodeRule{
			{Nodes: Selector{From: 0, To: 5}, RateScale: 4},
			{Nodes: Selector{Indices: []int{7}}, EnergyJ: fp(1)},
		},
		Timeline: []Event{
			{AtSeconds: 5, Type: EventKill, Nodes: Selector{Indices: []int{1, 2}}},
			{AtSeconds: 10, Type: EventRevive, Nodes: Selector{Indices: []int{1}}, EnergyJ: 2},
			{AtSeconds: 12, Type: EventTopUp, EnergyJ: 0.5},
			{AtSeconds: 15, Type: EventSetRate, RatePerSecond: fp(9)},
			{AtSeconds: 18, Type: EventScaleRate, Scale: 0.5},
			{AtSeconds: 20, Type: EventRampRate, RatePerSecond: fp(20), DurationSeconds: 10, Steps: 4},
			{AtSeconds: 32, Type: EventBurst, Scale: 3, DurationSeconds: 5},
			{AtSeconds: 40, Type: EventChannel, Channel: &ChannelShift{DopplerHz: fp(8)}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := Load(strings.NewReader(string(blob)))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", s, got)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"name":"x","timeline":[{"at":1,"type":"kill","nodse":{}}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x", Timeline: []Event{{AtSeconds: -1, Type: EventKill}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: "explode"}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventTopUp}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventSetRate}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventScaleRate}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventRampRate, RatePerSecond: fp(5)}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventBurst, Scale: 2}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventChannel}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventChannel, Channel: &ChannelShift{}}}},
		{Name: "x", Nodes: []NodeRule{{}}},
		// move: needs exactly one of (x,y) or region.
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventMove}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventMove, X: fp(5)}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventMove, X: fp(5), Y: fp(5), Region: &Region{X: 0, Y: 0, Width: 10, Height: 10}}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventMove, Region: &Region{Width: -1, Height: 10}}}},
		// interference: needs a region, a positive penalty, and a duration.
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventInterference}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventInterference, Region: &Region{Width: 10, Height: 10}, DurationSeconds: 5}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventInterference, Region: &Region{Width: 10, Height: 10}, PenaltyDB: 6}}},
		{Name: "x", Timeline: []Event{{AtSeconds: 1, Type: EventInterference, Region: &Region{Width: 10}, PenaltyDB: 6, DurationSeconds: 5}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// TestKillChangesMetrics: injected node deaths must provably change the
// run vs the static baseline — fewer alive at the end, less traffic
// delivered from the killed majority era.
func TestKillChangesMetrics(t *testing.T) {
	base := runCompiled(t, Spec{Name: "static"})
	churn := runCompiled(t, Spec{
		Name: "churn",
		Timeline: []Event{
			{AtSeconds: 10, Type: EventKill, Nodes: Selector{From: 0, To: 10}},
		},
	})
	if churn.AliveAtEnd != base.AliveAtEnd-10 {
		t.Fatalf("alive at end: churn %d, base %d (want base-10)", churn.AliveAtEnd, base.AliveAtEnd)
	}
	if len(churn.Deaths) < 10 {
		t.Fatalf("deaths recorded = %d, want >= 10", len(churn.Deaths))
	}
	if churn.Delivered >= base.Delivered {
		t.Fatalf("killing half the nodes did not reduce delivered (%d >= %d)", churn.Delivered, base.Delivered)
	}
}

// TestReviveRestoresNodes: killed-then-revived nodes return to service and
// resume generating traffic.
func TestReviveRestoresNodes(t *testing.T) {
	res := runCompiled(t, Spec{
		Name: "churn-revive",
		Timeline: []Event{
			{AtSeconds: 10, Type: EventKill, Nodes: Selector{From: 0, To: 8}},
			{AtSeconds: 30, Type: EventRevive, Nodes: Selector{From: 0, To: 8}},
		},
	})
	if res.AliveAtEnd != 20 {
		t.Fatalf("alive at end = %d, want all 20 back", res.AliveAtEnd)
	}
	if len(res.Deaths) != 8 {
		t.Fatalf("death history = %d entries, want 8", len(res.Deaths))
	}
	// The alive series must dip to 12 and recover.
	sawDip := false
	for _, p := range res.AliveSeries.Points() {
		if p.V == 12 {
			sawDip = true
		}
	}
	if !sawDip {
		t.Fatal("alive series never showed the churn dip to 12")
	}
}

// TestTopUpAddsEnergy: an energy top-up raises the final remaining energy
// by exactly the injected amount relative to the baseline ledger
// (consumption paths are identical because topup does not perturb
// scheduling of protocol events).
func TestTopUpAddsEnergy(t *testing.T) {
	base := runCompiled(t, Spec{Name: "static"})
	boosted := runCompiled(t, Spec{
		Name: "boost",
		Timeline: []Event{
			{AtSeconds: 30, Type: EventTopUp, EnergyJ: 1.5, Nodes: Selector{Indices: []int{3}}},
		},
	})
	dRemaining := boosted.AvgRemainingJ*20 - base.AvgRemainingJ*20
	if dRemaining < 1.49 || dRemaining > 1.51 {
		t.Fatalf("total remaining delta = %v, want ~1.5", dRemaining)
	}
	if boosted.TotalConsumedJ < base.TotalConsumedJ-1e-9 || boosted.TotalConsumedJ > base.TotalConsumedJ+1e-9 {
		t.Fatalf("topup perturbed consumption: %v vs %v", boosted.TotalConsumedJ, base.TotalConsumedJ)
	}
}

// TestTrafficEventsChangeLoad: rate events must change generated traffic
// in the expected direction.
func TestTrafficEventsChangeLoad(t *testing.T) {
	base := runCompiled(t, Spec{Name: "static"})
	silenced := runCompiled(t, Spec{
		Name: "silence",
		Timeline: []Event{
			{AtSeconds: 10, Type: EventSetRate, RatePerSecond: fp(0)},
		},
	})
	burst := runCompiled(t, Spec{
		Name: "burst",
		Timeline: []Event{
			{AtSeconds: 10, Type: EventBurst, Scale: 5, DurationSeconds: 20},
		},
	})
	ramp := runCompiled(t, Spec{
		Name: "ramp",
		Timeline: []Event{
			{AtSeconds: 10, Type: EventRampRate, RatePerSecond: fp(25), DurationSeconds: 20, Steps: 5},
		},
	})
	if silenced.Generated >= base.Generated/2 {
		t.Fatalf("silencing at 10s barely reduced traffic: %d vs %d", silenced.Generated, base.Generated)
	}
	if burst.Generated <= base.Generated {
		t.Fatalf("burst did not add traffic: %d vs %d", burst.Generated, base.Generated)
	}
	if ramp.Generated <= burst.Generated {
		t.Fatalf("ramp to 5x for 30s should outweigh 5x for 20s: %d vs %d", ramp.Generated, burst.Generated)
	}
}

// TestChannelShiftChangesRun: a mid-run fading/shadowing storm must change
// protocol behaviour (CSI deferrals or channel failures move).
func TestChannelShiftChangesRun(t *testing.T) {
	base := runCompiled(t, Spec{Name: "static"})
	storm := runCompiled(t, Spec{
		Name: "storm",
		Timeline: []Event{
			{AtSeconds: 10, Type: EventChannel, Channel: &ChannelShift{
				DopplerHz:        fp(10),
				ShadowingSigmaDB: fp(8),
				ReferenceSNRdB:   fp(18),
			}},
		},
	})
	if storm.Delivered == base.Delivered && storm.MAC.DeferralsCSI == base.MAC.DeferralsCSI &&
		storm.MAC.ChannelFails == base.MAC.ChannelFails {
		t.Fatal("channel storm left the run untouched")
	}
}

// TestNodeRulesHeterogeneity: per-node rules must produce heterogeneous
// budgets and loads.
func TestNodeRulesHeterogeneity(t *testing.T) {
	cfg := testConfig()
	err := Compile(Spec{
		Name: "hetero",
		Nodes: []NodeRule{
			{Nodes: Selector{From: 0, To: 10}, RateScale: 3},
			{Nodes: Selector{From: 10, To: 20}, EnergyJ: fp(0.5)},
		},
	}, &cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if cfg.NodeArrivalRate[0] != 3*cfg.ArrivalRatePerSecond || cfg.NodeArrivalRate[19] != cfg.ArrivalRatePerSecond {
		t.Fatalf("rates not heterogeneous: %v", cfg.NodeArrivalRate)
	}
	if cfg.NodeEnergyJ[0] != cfg.InitialEnergyJ || cfg.NodeEnergyJ[19] != 0.5 {
		t.Fatalf("energies not heterogeneous: %v", cfg.NodeEnergyJ)
	}
	res := core.New(cfg).Run()
	var lowBudget, highBudget float64
	for _, n := range res.Nodes {
		if n.Index < 10 {
			highBudget += n.ConsumedJ
		} else {
			lowBudget += n.ConsumedJ
		}
	}
	if highBudget <= lowBudget {
		t.Fatalf("3x-loaded half consumed less: %v vs %v", highBudget, lowBudget)
	}
}

// TestCompileDeterministic: the same spec compiled twice and run twice
// must produce identical results, and a compiled config must be reusable
// for a second run (closures are stateless).
func TestCompileDeterministic(t *testing.T) {
	spec := Spec{
		Name: "det",
		Nodes: []NodeRule{
			{Nodes: Selector{From: 0, To: 4}, RateScale: 2},
		},
		Timeline: []Event{
			{AtSeconds: 5, Type: EventKill, Nodes: Selector{Indices: []int{2, 3}}},
			{AtSeconds: 15, Type: EventRevive, Nodes: Selector{Indices: []int{2}}},
			{AtSeconds: 20, Type: EventBurst, Scale: 4, DurationSeconds: 10},
			{AtSeconds: 25, Type: EventChannel, Channel: &ChannelShift{DopplerHz: fp(6)}},
			{AtSeconds: 40, Type: EventTopUp, EnergyJ: 0.2},
		},
	}
	a := runCompiled(t, spec)
	b := runCompiled(t, spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two compilations of the same spec diverged")
	}
	// Same compiled config run twice (fresh Network each time).
	cfg := testConfig()
	if err := Compile(spec, &cfg); err != nil {
		t.Fatalf("compile: %v", err)
	}
	c := core.New(cfg).Run()
	d := core.New(cfg).Run()
	if !reflect.DeepEqual(c, d) {
		t.Fatal("re-running one compiled config diverged (stateful closure?)")
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("recompilation changed the run")
	}
}

// TestRampExpansion: a ramp lowers into its staircase of world events.
func TestRampExpansion(t *testing.T) {
	cfg := testConfig()
	err := Compile(Spec{
		Name: "ramp",
		Timeline: []Event{
			{AtSeconds: 10, Type: EventRampRate, RatePerSecond: fp(20), DurationSeconds: 10, Steps: 4},
		},
	}, &cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(cfg.World) != 4 {
		t.Fatalf("ramp expanded to %d events, want 4", len(cfg.World))
	}
	wantTimes := []sim.Time{
		sim.FromSeconds(12.5), sim.FromSeconds(15), sim.FromSeconds(17.5), sim.FromSeconds(20),
	}
	for i, ev := range cfg.World {
		if ev.At != wantTimes[i] {
			t.Errorf("step %d at %v, want %v", i, ev.At, wantTimes[i])
		}
	}
}

// TestCompileRejectsBadSelectors: selector errors surface at compile time
// with the config's node count.
func TestCompileRejectsBadSelectors(t *testing.T) {
	cfg := testConfig() // 20 nodes
	err := Compile(Spec{
		Name: "oops",
		Timeline: []Event{
			{AtSeconds: 1, Type: EventKill, Nodes: Selector{Indices: []int{25}}},
		},
	}, &cfg)
	if err == nil {
		t.Fatal("out-of-range selector accepted")
	}
}
