// Package obs is the repository's zero-dependency observability layer:
// a race-clean metrics registry (atomic counters, gauges, and
// fixed-bucket histograms) with Prometheus text-format exposition, a
// small exposition parser reused as the CI metric lint, structured
// leveled logging helpers on log/slog, and per-route HTTP
// instrumentation middleware.
//
// Instruments are cheap enough to update at cell/lease/store
// granularity from many goroutines — a counter increment is one atomic
// CAS, a histogram observation one binary search plus three atomics,
// and neither allocates — but they are deliberately NOT wired into the
// simulation hot path: the event engine stays alloc-free and
// instrumentation lives at the orchestration layer around it
// (internal/cluster, internal/store, the caem-serve HTTP mux).
//
// The registry hands out get-or-create instrument families, so
// independent subsystems observing the same Registry converge on one
// coherent exposition, and the same family constructors can be run
// standalone (scripts/obscheck) to lint the full production metric
// catalog without starting a server. Callers cache the returned
// instrument handles; the family map is only consulted at registration
// time, never on the update path.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types, as exposed in "# TYPE" exposition comments.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// atomicFloat is a float64 updated with CAS on its bit pattern —
// lock-free, race-clean, and allocation-free.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric. Negative deltas panic:
// a decreasing counter silently corrupts every rate() computed from it.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v, which must be non-negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decreased")
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Value() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add adjusts the gauge by v (negative deltas allowed).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Value() }

// Histogram counts observations into fixed cumulative buckets — the
// Prometheus histogram model: bucket le=B counts observations ≤ B,
// plus a sum and total count for mean computation.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is >= v; equal values land in the bucket,
	// matching le (less-or-equal) semantics.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Default bucket sets for the latencies this repository measures.
var (
	// LatencyBuckets suits sub-millisecond-to-seconds I/O and RPC
	// latencies (fsync, heartbeat RTT, HTTP handlers), in seconds.
	LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}
	// SizeBuckets suits small integer size distributions (lease batch
	// sizes, queue depths).
	SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}
)

// family is one named metric family: a type, a help string, a fixed
// label-name set, and the series materialized so far.
type family struct {
	name       string
	help       string
	typ        string
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
}

// series is one labeled instrument within a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
}

// seriesKey encodes label values unambiguously (values may contain any
// byte except the separator, which label escaping forbids anyway).
func seriesKey(values []string) string { return strings.Join(values, "\x00") }

// get returns the series for the given label values, creating it on
// first use. Handles are stable: callers cache them and update without
// further locking.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		switch f.typ {
		case TypeCounter:
			s.counter = &Counter{}
		case TypeGauge:
			s.gauge = &Gauge{}
		case TypeHistogram:
			s.histogram = &Histogram{
				bounds: f.buckets,
				counts: make([]atomic.Uint64, len(f.buckets)+1),
			}
		}
		f.series[key] = s
	}
	return s
}

// snapshot returns the family's series sorted by label values, for
// deterministic exposition.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	return out
}

// Registry holds metric families and renders them as one coherent
// exposition. All methods are safe for concurrent use; instrument
// registration is idempotent (get-or-create), so independent
// subsystems can declare the same family and share its series.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelNameRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// register returns the named family, creating it on first registration
// and panicking on a conflicting re-registration — two subsystems
// disagreeing about a metric's shape is a programming error the first
// scrape would otherwise surface as corrupt exposition.
func (r *Registry) register(name, help, typ string, labelNames []string, buckets []float64) *family {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !labelNameRe.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: metric %s has invalid label name %q", name, l))
		}
	}
	if typ == TypeHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %s needs buckets", name))
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %s buckets not strictly increasing", name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different type or label set", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or finds) a counter family with the given
// label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, TypeCounter, labelNames, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or finds) a gauge family with the given label
// names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, TypeGauge, labelNames, nil)}
}

// Histogram registers (or finds) an unlabeled histogram with the given
// bucket upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or finds) a histogram family with the given
// label names and bucket upper bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, TypeHistogram, labelNames, buckets)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label
// name, in registration order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.get(labelValues).counter }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.get(labelValues).gauge }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.get(labelValues).histogram }

// snapshotFamilies returns the registry's families sorted by name.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		out = append(out, r.families[n])
	}
	return out
}
