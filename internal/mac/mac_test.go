package mac

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default MAC config invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.SlotTime = 0 },
		func(c *Config) { c.ContentionWindow = 0 },
		func(c *Config) { c.MaxRetries = -1 },
		func(c *Config) { c.MinBurst = 0 },
		func(c *Config) { c.MaxBurst = c.MinBurst - 1 },
		func(c *Config) { c.SensingDelay = -1 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

// The paper's burst rules: min 3 packets per transmission (startup
// amortization), max 8 (fairness).
func TestBurstSize(t *testing.T) {
	c := DefaultConfig()
	cases := []struct{ queue, want int }{
		{0, 0}, {1, 0}, {2, 0}, // below minimum: no transmission
		{3, 3}, {5, 5}, {8, 8},
		{9, 8}, {100, 8}, // capped at maximum
	}
	for _, cse := range cases {
		if got := c.BurstSize(cse.queue); got != cse.want {
			t.Errorf("BurstSize(%d) = %d, want %d", cse.queue, got, cse.want)
		}
	}
}

func TestBackoffWithinWindow(t *testing.T) {
	c := DefaultConfig()
	r := rng.NewSource(1).Stream("backoff", 0)
	for retries := 0; retries <= c.MaxRetries+2; retries++ {
		maxB := c.MaxBackoff(retries)
		for i := 0; i < 1000; i++ {
			d := c.Backoff(retries, r)
			if d < 1 || d > maxB {
				t.Fatalf("backoff(%d) = %v outside (0, %v]", retries, d, maxB)
			}
		}
	}
}

// Binary exponential growth: the window doubles per retry up to the cap.
func TestMaxBackoffDoubles(t *testing.T) {
	c := DefaultConfig()
	base := c.MaxBackoff(0)
	if base != sim.Time(c.ContentionWindow)*c.SlotTime {
		t.Fatalf("base window = %v", base)
	}
	for n := 1; n <= c.MaxRetries; n++ {
		if c.MaxBackoff(n) != 2*c.MaxBackoff(n-1) {
			t.Fatalf("window did not double at retry %d", n)
		}
	}
	// Past the cap the window stops growing.
	if c.MaxBackoff(c.MaxRetries+3) != c.MaxBackoff(c.MaxRetries) {
		t.Fatal("window grew past the retry cap")
	}
	// Negative retries clamp to 0.
	if c.MaxBackoff(-5) != c.MaxBackoff(0) {
		t.Fatal("negative retries not clamped")
	}
}

func TestBackoffMeanGrowsWithRetries(t *testing.T) {
	c := DefaultConfig()
	r := rng.NewSource(2).Stream("backoff", 0)
	mean := func(retries int) float64 {
		var sum float64
		for i := 0; i < 5000; i++ {
			sum += float64(c.Backoff(retries, r))
		}
		return sum / 5000
	}
	m0, m3 := mean(0), mean(3)
	if m3 < 6*m0 {
		t.Fatalf("mean backoff at 3 retries (%v) not ~8x the base (%v)", m3, m0)
	}
}

func TestShouldDrop(t *testing.T) {
	c := DefaultConfig()
	if c.ShouldDrop(c.MaxRetries) {
		t.Fatal("dropped at exactly MaxRetries")
	}
	if !c.ShouldDrop(c.MaxRetries + 1) {
		t.Fatal("did not drop past MaxRetries")
	}
}

func TestStateStrings(t *testing.T) {
	if SensorSleep.String() != "sleep" || SensorSensing.String() != "sensing" ||
		SensorBackoff.String() != "backoff" || SensorTransmit.String() != "transmit" {
		t.Fatal("sensor state names wrong")
	}
	if HeadIdle.String() != "idle" || HeadReceive.String() != "receive" ||
		HeadCollision.String() != "collision" || HeadTransmit.String() != "transmit" {
		t.Fatal("head state names wrong")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Attempts: 1, Collisions: 2, ChannelFails: 3, RetryDrops: 4, PacketsSent: 5, BurstsDone: 6, DeferralsCSI: 7, DeferralsBusy: 8}
	b := a
	a.Add(b)
	if a.Attempts != 2 || a.Collisions != 4 || a.ChannelFails != 6 || a.RetryDrops != 8 ||
		a.PacketsSent != 10 || a.BurstsDone != 12 || a.DeferralsCSI != 14 || a.DeferralsBusy != 16 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

// Property: burst size is always 0 or within [MinBurst, MaxBurst] and
// never exceeds the queue length.
func TestBurstSizeProperty(t *testing.T) {
	c := DefaultConfig()
	check := func(qRaw uint16) bool {
		q := int(qRaw % 200)
		k := c.BurstSize(q)
		if k == 0 {
			return q < c.MinBurst
		}
		return k >= c.MinBurst && k <= c.MaxBurst && k <= q
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBackoff(b *testing.B) {
	c := DefaultConfig()
	r := rng.NewSource(1).Stream("bench", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Backoff(i%7, r)
	}
}
