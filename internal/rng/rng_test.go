package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewSource(42).Stream("test", 7)
	b := NewSource(42).Stream("test", 7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestStreamIndependenceByID(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("test", 1)
	b := src.Stream("test", 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different ids produced %d identical 64-bit draws in 1000", same)
	}
}

func TestStreamIndependenceByKind(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("alpha", 1)
	b := src.Stream("beta", 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("streams with different kinds produced identical first draws")
	}
}

func TestSeedChangesOutput(t *testing.T) {
	a := NewSource(1).Stream("x", 0)
	b := NewSource(2).Stream("x", 0)
	if a.Uint64() == b.Uint64() {
		t.Fatal("different master seeds produced identical first draws")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewSource(3).Stream("f", 0)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewSource(4).Stream("f", 0)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewSource(5).Stream("i", 0)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewSource(6).Stream("i", 0)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d has %d draws, want %v ± 5%%", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewSource(7).Stream("i", 0)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewSource(8).Stream("e", 0)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewSource(9).Stream("n", 0)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewSource(10).Stream("p", 0)
	for _, mean := range []float64{0.5, 3, 10, 50, 200} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		// Tolerance ~4 standard errors of the mean.
		tol := 4 * math.Sqrt(mean/float64(n))
		if math.Abs(got-mean) > tol+0.01*mean {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	r := NewSource(11).Stream("p", 0)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Poisson(-1) did not panic")
			}
		}()
		r.Poisson(-1)
	}()
}

func TestPermIsPermutation(t *testing.T) {
	r := NewSource(12).Stream("perm", 0)
	check := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewSource(13).Stream("sh", 0)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: sum %d -> %d", sum, got)
	}
}

// Property: any (kind, id) pair yields a usable, non-degenerate stream.
func TestStreamNeverDegenerate(t *testing.T) {
	src := NewSource(0) // adversarial master seed
	check := func(id uint64, kind string) bool {
		s := src.Stream(kind, id)
		zero := 0
		for i := 0; i < 64; i++ {
			if s.Uint64() == 0 {
				zero++
			}
		}
		return zero < 3
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := NewSource(1).Stream("bench", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := NewSource(1).Stream("bench", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
