// Command benchgate is the CI bench-regression guard and comparator: it
// runs the gated benchmarks (ns per simulated second for the static,
// scenario, and generated-scenario engines, the Figure 9 replication
// grid, the obs instrument hot path, and the store query/aggregate-cache
// paths behind the /v1 results API) and checks both time (ns/op) and allocation
// (allocs/op) results against the committed baseline. The time factor
// is deliberately loose — CI runners are noisy shared machines — so
// only order-of-magnitude regressions (an accidentally quadratic hot
// path, a reintroduced per-event allocation storm) trip it, not
// scheduler jitter. Allocation counts are nearly deterministic, so
// their factor is tighter — and benchmarks matched by -exactallocs get
// no factor at all: measured allocs/op must equal the baseline
// exactly. That is how the repo pins the simulated-second hot path at
// 4 allocs/op and the metrics update path at 0.
//
// Usage (from the repository root):
//
//	go run ./scripts/benchgate -baseline BENCH_7.json -factor 2.5 -allocfactor 2.0 \
//	    -exactallocs '^(BenchmarkSimulatedSecond/|BenchmarkMetricsHotPath$|BenchmarkAggregateCached$)'
//	go run ./scripts/benchgate -baseline BENCH_7.json -gate=false -report out/bench-compare.txt
//
// The second form is `make bench-compare`: it never fails the build; it
// prints (and optionally writes) a benchstat-style delta table of the
// PR's numbers against the committed baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metric is one benchmark's baseline or measured numbers.
type metric struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// baseline mirrors the slice of the BENCH_*.json schema the gate
// consumes: per-protocol numbers for the static hot path, and single
// results for the scenario engine, the Figure 9 replication grid, the
// obs instrument hot path, and the store query/aggregate-cache paths.
type baseline struct {
	Benchmarks struct {
		SimulatedSecond struct {
			After map[string]metric `json:"after"`
		} `json:"BenchmarkSimulatedSecond"`
		ScenarioSecond struct {
			Result metric `json:"result"`
		} `json:"BenchmarkScenarioSecond"`
		GeneratedScenarioSecond struct {
			Result metric `json:"result"`
		} `json:"BenchmarkGeneratedScenarioSecond"`
		Figure9 struct {
			Result metric `json:"result"`
		} `json:"BenchmarkFigure9_NodesAlive"`
		MetricsHotPath struct {
			Result metric `json:"result"`
		} `json:"BenchmarkMetricsHotPath"`
		QueryTopK struct {
			Result metric `json:"result"`
		} `json:"BenchmarkQueryTopK"`
		AggregateCached struct {
			Result metric `json:"result"`
		} `json:"BenchmarkAggregateCached"`
	} `json:"benchmarks"`
}

// series is one gated benchmark run configuration: which benchmarks and
// at what benchtime. The benchtime MUST match the one the baseline was
// recorded at — the per-second cost is horizon-dependent (the network
// dies partway through a long run and dead seconds are nearly free), so
// comparing across benchtimes skews the ratio.
type series struct {
	pattern   string
	benchtime string
}

var gatedSeries = []series{
	{pattern: "^(BenchmarkSimulatedSecond|BenchmarkScenarioSecond|BenchmarkGeneratedScenarioSecond)$", benchtime: "1000x"},
	{pattern: "^BenchmarkFigure9_NodesAlive$", benchtime: "3x"},
	{pattern: "^BenchmarkMetricsHotPath$", benchtime: "100000x"},
	{pattern: "^BenchmarkQueryTopK$", benchtime: "100x"},
	{pattern: "^BenchmarkAggregateCached$", benchtime: "100000x"},
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_7.json", "committed baseline JSON with the reference values")
		factor       = flag.Float64("factor", 2.5, "fail when measured ns/op exceeds factor x baseline")
		allocFactor  = flag.Float64("allocfactor", 2.0, "fail when measured allocs/op exceeds allocfactor x baseline (allocation counts are nearly deterministic, so this is tighter than the time factor)")
		exactAllocs  = flag.String("exactallocs", "", "regexp of benchmark names whose measured allocs/op must equal the baseline exactly — no factor slack (empty disables)")
		gate         = flag.Bool("gate", true, "fail on regressions; false = compare-only (always exit 0)")
		report       = flag.String("report", "", "also write the delta table to this file (for CI artifacts)")
	)
	flag.Parse()

	var exactRe *regexp.Regexp
	if *exactAllocs != "" {
		var err error
		if exactRe, err = regexp.Compile(*exactAllocs); err != nil {
			fatal("bad -exactallocs pattern: %v", err)
		}
	}

	refs, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal("loading baseline: %v", err)
	}
	if len(refs) == 0 {
		fatal("baseline %s holds no recognizable entries", *baselinePath)
	}

	got := make(map[string]metric)
	for _, s := range gatedSeries {
		m, raw, err := runBenchmarks(s.pattern, s.benchtime)
		if err != nil {
			fatal("running benchmarks %s: %v\n%s", s.pattern, err, raw)
		}
		for k, v := range m {
			got[k] = v
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %14s %14s %8s   %12s %12s %8s\n",
		"benchmark", "base ns/op", "new ns/op", "delta", "base allocs", "new allocs", "delta")
	failed := false
	for _, name := range sortedKeys(refs) {
		ref := refs[name]
		m, ok := got[name]
		if !ok {
			fmt.Fprintf(&b, "%-42s %14.0f %14s %8s   %12.0f %12s %8s\n",
				name, ref.NsOp, "MISSING", "-", ref.AllocsOp, "MISSING", "-")
			failed = true
			continue
		}
		nsVerdict := ""
		if ref.NsOp > 0 && m.NsOp/ref.NsOp > *factor {
			nsVerdict = " REGRESSION"
			failed = true
		}
		allocVerdict := ""
		if exactRe != nil && exactRe.MatchString(name) {
			if m.AllocsOp != ref.AllocsOp {
				allocVerdict = " ALLOC-EXACT-MISMATCH"
				failed = true
			}
		} else if ref.AllocsOp > 0 && m.AllocsOp/ref.AllocsOp > *allocFactor {
			allocVerdict = " ALLOC-REGRESSION"
			failed = true
		}
		fmt.Fprintf(&b, "%-42s %14.0f %14.0f %+7.1f%%   %12.0f %12.0f %+7.1f%%%s%s\n",
			name, ref.NsOp, m.NsOp, delta(ref.NsOp, m.NsOp),
			ref.AllocsOp, m.AllocsOp, delta(ref.AllocsOp, m.AllocsOp),
			nsVerdict, allocVerdict)
	}
	fmt.Print(b.String())
	if *report != "" {
		if err := os.WriteFile(*report, []byte(b.String()), 0o644); err != nil {
			fatal("writing -report: %v", err)
		}
		fmt.Printf("wrote %s\n", *report)
	}
	if !*gate {
		fmt.Printf("bench compare done (gating disabled) against %s\n", *baselinePath)
		return
	}
	if failed {
		fatal("bench gate FAILED: a benchmark regressed beyond %.1fx ns/op or %.1fx allocs/op of its %s baseline, broke an -exactallocs pin, or went missing",
			*factor, *allocFactor, *baselinePath)
	}
	fmt.Printf("bench gate passed: every series within %.1fx ns/op and %.1fx allocs/op of %s (exact-alloc pins held)\n",
		*factor, *allocFactor, *baselinePath)
}

// delta returns the percentage change from ref to measured.
func delta(ref, measured float64) float64 {
	if ref == 0 {
		return 0
	}
	return 100 * (measured - ref) / ref
}

func loadBaseline(path string) (map[string]metric, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(blob, &b); err != nil {
		return nil, err
	}
	refs := make(map[string]metric)
	for proto, v := range b.Benchmarks.SimulatedSecond.After {
		if v.NsOp > 0 {
			refs["BenchmarkSimulatedSecond/"+proto] = v
		}
	}
	if v := b.Benchmarks.ScenarioSecond.Result; v.NsOp > 0 {
		refs["BenchmarkScenarioSecond"] = v
	}
	if v := b.Benchmarks.GeneratedScenarioSecond.Result; v.NsOp > 0 {
		refs["BenchmarkGeneratedScenarioSecond"] = v
	}
	if v := b.Benchmarks.Figure9.Result; v.NsOp > 0 {
		refs["BenchmarkFigure9_NodesAlive"] = v
	}
	if v := b.Benchmarks.MetricsHotPath.Result; v.NsOp > 0 {
		refs["BenchmarkMetricsHotPath"] = v
	}
	if v := b.Benchmarks.QueryTopK.Result; v.NsOp > 0 {
		refs["BenchmarkQueryTopK"] = v
	}
	if v := b.Benchmarks.AggregateCached.Result; v.NsOp > 0 {
		refs["BenchmarkAggregateCached"] = v
	}
	return refs, nil
}

// runBenchmarks executes one gated series and returns measured metrics
// keyed by benchmark name (GOMAXPROCS suffix stripped).
func runBenchmarks(pattern, benchtime string) (map[string]metric, string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchtime", benchtime, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, string(out), err
	}
	got := make(map[string]metric)
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcSuffix(fields[0])
		var m metric
		for i := 2; i+1 < len(fields); i++ {
			v, perr := strconv.ParseFloat(fields[i], 64)
			if perr != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsOp = v
			case "allocs/op":
				m.AllocsOp = v
			}
		}
		if m.NsOp > 0 {
			got[name] = m
		}
	}
	return got, string(out), nil
}

// stripProcSuffix removes the trailing "-<GOMAXPROCS>" from a
// benchmark name ("BenchmarkScenarioSecond-8" → "BenchmarkScenarioSecond").
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func sortedKeys(m map[string]metric) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
