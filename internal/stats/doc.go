// Package stats is the streaming statistics engine behind every
// replicated experiment: numerically stable mean/variance accumulation
// (Welford's algorithm), two-sided Student-t confidence intervals, and
// constant-memory P² quantile estimation.
//
// Everything is allocation-free in the steady state: the accumulators
// are plain value types whose Add methods touch no heap, so they can
// sit inside simulation hot paths (per-packet delay tracking) as well
// as aggregate replicated run metrics at the experiment layer.
//
// The three accumulators:
//
//   - Welford — online mean and population variance with min/max, the
//     shared base for simulation metrics that describe a complete
//     population of packets or snapshots.
//   - Stream — Welford plus the sample-statistics view for replicated
//     experiments: unbiased sample variance and exact Student-t
//     confidence intervals (critical values by incomplete-beta
//     bisection, no table interpolation).
//   - Quantile — the P² algorithm: a fixed five-marker estimate of any
//     single quantile (the p95 delay tracker), O(1) memory regardless
//     of observation count.
//
// NaN policy: statistics that are undefined for the observed sample
// count return NaN rather than a misleading zero — SampleVariance and
// every confidence-interval accessor need at least two observations
// (one replicate carries no dispersion information), and quantiles of
// an empty stream have no value. Callers render NaN as a bare mean or
// "-". Welford's population Variance keeps its legacy 0-for-small-n
// behaviour because the simulation metrics built on it (delay spread,
// fairness index) treat "no spread observed" as 0.
package stats
