package caem_test

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/caem"
)

// exampleConfig is a reduced-scale configuration that keeps the doc
// examples fast: the physics are identical to DefaultConfig, only the
// world is smaller and the horizon shorter.
func exampleConfig() caem.Config {
	cfg := caem.DefaultConfig()
	cfg.Nodes = 20
	cfg.DurationSeconds = 20
	return cfg
}

// Run one simulation and inspect its headline metrics. Results are
// deterministic given Config.Seed.
func ExampleRun() {
	cfg := exampleConfig()
	cfg.Protocol = caem.Scheme1
	res, err := caem.Run(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("protocol %v over %.0f simulated seconds\n", res.Protocol, res.DurationSeconds)
	fmt.Printf("all %d nodes alive: %v, traffic delivered: %v\n",
		len(res.Nodes), res.AliveAtEnd == len(res.Nodes), res.Delivered > 0)
	// Output:
	// protocol CAEM-scheme1 over 20 simulated seconds
	// all 20 nodes alive: true, traffic delivered: true
}

// Compare all three protocols under identical topology, traffic, and
// channel realizations — the paper's core experimental pattern.
func ExampleRunComparison() {
	results, err := caem.RunComparison(exampleConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range results {
		fmt.Printf("%-12v delivered >0: %v\n", r.Protocol, r.Delivered > 0)
	}
	// Output:
	// pure-LEACH   delivered >0: true
	// CAEM-scheme1 delivered >0: true
	// CAEM-scheme2 delivered >0: true
}

// ParseProtocol accepts canonical names and the common CLI aliases.
func ExampleParseProtocol() {
	for _, s := range []string{"leach", "s1", "CAEM-scheme2"} {
		p, err := caem.ParseProtocol(s)
		fmt.Println(p, err)
	}
	// Output:
	// pure-LEACH <nil>
	// CAEM-scheme1 <nil>
	// CAEM-scheme2 <nil>
}

// AggregateOf summarizes replicate metric values as mean ± 95% CI.
func ExampleAggregateOf() {
	a := caem.AggregateOf(10, 11, 12, 13)
	fmt.Println("n =", a.N)
	fmt.Println(a.Format(2))
	// Output:
	// n = 4
	// 11.50±2.05
}

// Load a declarative dynamic-world scenario from JSON and run it. The
// same schema powers the embedded library (LibraryScenarios) and
// on-disk spec files; see scenarios/SPEC.md for the full reference.
func ExampleLoadScenario() {
	spec := `{
	  "name": "midrun-outage",
	  "timeline": [
	    {"at": 8, "type": "kill", "nodes": {"from": 0, "to": 5}},
	    {"at": 14, "type": "revive", "nodes": {"from": 0, "to": 5}}
	  ]
	}`
	sc, err := caem.LoadScenario(strings.NewReader(spec))
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := caem.RunScenario(sc, exampleConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d timeline events, all nodes back at end: %v\n",
		sc.Name, sc.EventCount(), res.AliveAtEnd == 20)
	// Output:
	// midrun-outage: 2 timeline events, all nodes back at end: true
}

// A campaign expands the scenario × protocol × seed grid; the cells
// come back in submission order and aggregate into mean ± CI groups.
func ExampleRunCampaign() {
	sc, err := caem.FindScenario("node-churn")
	if err != nil {
		fmt.Println(err)
		return
	}
	base := caem.DefaultConfig()
	base.DurationSeconds = 12
	cells, err := caem.RunCampaign(base, []caem.Scenario{sc},
		[]caem.Protocol{caem.PureLEACH, caem.Scheme1}, []uint64{1, 2, 3})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("cells:", len(cells))
	for _, g := range caem.AggregateCampaign(cells) {
		fmt.Printf("%s/%v aggregates %d seeds\n", g.Scenario, g.Protocol, g.Seeds)
	}
	// Output:
	// cells: 6
	// node-churn/pure-LEACH aggregates 3 seeds
	// node-churn/CAEM-scheme1 aggregates 3 seeds
}

// RunCampaignWith persists completed cells into a store and resumes a
// checkpointed campaign without re-running stored cells — byte-identical
// to an uninterrupted run.
func ExampleRunCampaignWith() {
	dir, err := os.MkdirTemp("", "caem-store-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	st, err := caem.OpenStore(dir)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer st.Close()

	sc, _ := caem.FindScenario("node-churn")
	base := caem.DefaultConfig()
	base.DurationSeconds = 12
	protos := []caem.Protocol{caem.Scheme1}
	seeds := []uint64{1, 2, 3}

	// First invocation halts at a 1-cell checkpoint ("the kill").
	_, err = caem.RunCampaignWith(base, []caem.Scenario{sc}, protos, seeds,
		caem.CampaignOptions{Store: st, Resume: true, MaxRuns: 1})
	fmt.Println("halted:", errors.Is(err, caem.ErrCampaignHalted), "stored:", st.Len())

	// The second invocation restores the stored cell and finishes.
	cells, err := caem.RunCampaignWith(base, []caem.Scenario{sc}, protos, seeds,
		caem.CampaignOptions{Store: st, Resume: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	restored := 0
	for _, c := range cells {
		if c.Restored {
			restored++
		}
	}
	fmt.Printf("resumed to %d cells (%d restored), stored: %d\n", len(cells), restored, st.Len())
	// Output:
	// halted: true stored: 1
	// resumed to 3 cells (1 restored), stored: 3
}
