package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeSemantics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("caem_test_events_total", "events")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative counter Add did not panic")
			}
		}()
		c.Add(-1)
	}()

	g := reg.Gauge("caem_test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("caem_test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	// Cumulative buckets: le=0.01 covers {0.005, 0.01} — equality lands
	// in the bucket.
	for _, want := range []string{
		`caem_test_latency_seconds_bucket{le="0.01"} 2`,
		`caem_test_latency_seconds_bucket{le="0.1"} 3`,
		`caem_test_latency_seconds_bucket{le="1"} 4`,
		`caem_test_latency_seconds_bucket{le="+Inf"} 5`,
		`caem_test_latency_seconds_count 5`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.CounterVec("caem_test_cells_total", "cells", "worker")
	b := reg.CounterVec("caem_test_cells_total", "cells", "worker")
	a.With("w1").Inc()
	b.With("w1").Inc()
	if got := a.With("w1").Value(); got != 2 {
		t.Fatalf("re-registered family did not share series: %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("conflicting re-registration did not panic")
			}
		}()
		reg.GaugeVec("caem_test_cells_total", "cells", "worker")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("wrong label arity did not panic")
			}
		}()
		a.With("w1", "extra")
	}()
}

func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("caem_test_requests_total", "requests", "route", "code").
		With(`GET /x`, "200").Add(12)
	reg.Gauge("caem_test_queue_depth", `depth with "quotes" and \slashes`).Set(3)
	h := reg.Histogram("caem_test_rtt_seconds", "rtt", []float64{0.001, 0.01})
	h.Observe(0.002)
	RegisterBuildInfo(reg, "v-test")

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, buf.String())
	}
	if v, ok := exp.Value("caem_test_requests_total", "route", "GET /x", "code", "200"); !ok || v != 12 {
		t.Fatalf("requests = %v (ok=%v), want 12", v, ok)
	}
	if v, ok := exp.Value("caem_test_queue_depth"); !ok || v != 3 {
		t.Fatalf("gauge = %v (ok=%v), want 3", v, ok)
	}
	if v, ok := exp.Value("caem_test_rtt_seconds_bucket", "le", "0.01"); !ok || v != 1 {
		t.Fatalf("bucket = %v (ok=%v), want 1", v, ok)
	}
	if !exp.Has("caem_build_info") {
		t.Fatal("build info family missing")
	}
	if fam := exp.Families["caem_test_rtt_seconds"]; fam.Type != TypeHistogram {
		t.Fatalf("rtt family type = %q", fam.Type)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"sample without TYPE":    "caem_x_total 1\n",
		"bad value":              "# TYPE caem_x_total counter\ncaem_x_total one\n",
		"unterminated labels":    "# TYPE caem_x_total counter\ncaem_x_total{a=\"b 1\n",
		"duplicate series":       "# TYPE caem_x_total counter\ncaem_x_total 1\ncaem_x_total 2\n",
		"suffix on counter":      "# TYPE caem_x_total counter\ncaem_x_total_sum 1\n",
		"histogram missing +Inf": "# TYPE caem_h histogram\ncaem_h_bucket{le=\"1\"} 1\ncaem_h_sum 1\ncaem_h_count 1\n",
		"histogram inf != count": "# TYPE caem_h histogram\ncaem_h_bucket{le=\"+Inf\"} 1\ncaem_h_sum 1\ncaem_h_count 2\n",
		"unknown type":           "# TYPE caem_x widget\ncaem_x 1\n",
		"bad escape":             "# TYPE caem_x counter\ncaem_x{a=\"\\q\"} 1\n",
		"trailing garbage":       "# TYPE caem_x_total counter\ncaem_x_total 1 extra stuff\n",
		"bare histogram sample":  "# TYPE caem_h histogram\ncaem_h 1\n",
		"duplicate label":        "# TYPE caem_x_total counter\ncaem_x_total{a=\"1\",a=\"2\"} 1\n",
	} {
		if _, err := ParseText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, doc)
		}
	}
}

func TestLint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("caem_good_total", "fine")
	reg.Gauge("caem_good_depth", "fine")
	reg.Histogram("caem_good_seconds", "fine", LatencyBuckets)
	if errs := reg.Lint("caem_"); len(errs) != 0 {
		t.Fatalf("clean registry flagged: %v", errs)
	}

	bad := NewRegistry()
	bad.Counter("caem_missing_suffix", "counter without _total")
	bad.Gauge("caem_bogus_total", "gauge with _total")
	bad.Counter("other_prefix_total", "wrong prefix")
	bad.Counter("caem_nohelp_total", "   ")
	bad.Histogram("caem_unitless", "histogram without a unit", SizeBuckets)
	errs := bad.Lint("caem_")
	if len(errs) != 5 {
		t.Fatalf("lint found %d issues, want 5: %v", len(errs), errs)
	}
}

// TestRegistryRace hammers one registry from many goroutines — the
// package promise is race-clean instruments under -race.
func TestRegistryRace(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("caem_race_cells_total", "cells", "worker")
	g := reg.Gauge("caem_race_depth", "depth")
	h := reg.Histogram("caem_race_rtt_seconds", "rtt", LatencyBuckets)
	var wg sync.WaitGroup
	const workers, n = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := cv.With(string(rune('a' + id)))
			for i := 0; i < n; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) / n)
				if i%500 == 0 {
					var buf bytes.Buffer
					reg.WriteText(&buf) // concurrent scrape
				}
			}
		}(w)
	}
	wg.Wait()
	if total, _ := expositionSum(t, reg, "caem_race_cells_total"); total != workers*n {
		t.Fatalf("lost increments: %v, want %d", total, workers*n)
	}
	if h.Count() != workers*n {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*n)
	}
}

func expositionSum(t *testing.T, reg *Registry, name string) (float64, bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return exp.Sum(name)
}

// TestInstrumentsDoNotAllocate pins the hot-path property the
// benchgate enforces at full scale: counter/gauge/histogram updates
// are allocation-free.
func TestInstrumentsDoNotAllocate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("caem_alloc_total", "x")
	g := reg.Gauge("caem_alloc_depth", "x")
	h := reg.Histogram("caem_alloc_seconds", "x", LatencyBuckets)
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(1)
		h.Observe(0.01)
	}); n != 0 {
		t.Fatalf("instrument updates allocate %v per op, want 0", n)
	}
}
