GO ?= go

# Build version stamped into caem-serve (-version, /healthz, and the
# caem_build_info metric) at link time. Defaults to git describe so a
# local build is traceable to a commit; release pipelines override:
#   make build VERSION=v1.2.3
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)

.PHONY: all build test race vet lint chaos failover fuzz bench bench-smoke bench-gate bench-compare profile determinism resume-check docs-check obs-check api-check figures scenarios examples clean

all: build test vet

build:
	$(GO) build -ldflags "-X main.version=$(VERSION)" ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runner/ ./internal/experiment/ ./internal/cluster/ ./internal/obs/ ./internal/store/ ./caem/ ./cmd/caem-serve/

# Cluster fault-tolerance gate: a campaign distributed to real worker
# processes, one of which is SIGKILLed mid-lease, must produce a
# byte-identical results document to the same campaign run
# single-process with no faults. Race-enabled: the lease protocol and
# the settlement sink are exactly where concurrency bugs would hide.
chaos:
	$(GO) test -race -count=1 -v -timeout 300s -run 'TestClusterChaos|TestTransientStoreFaultHealsInvisibly|TestChaos|TestDroppedHeartbeats' ./cmd/caem-serve/ ./internal/cluster/

# Coordinator fault-tolerance gate: the leader is SIGKILLed mid-campaign
# with two live worker processes; the hot standby must take over within
# 2x the lock TTL (replaying the coordinator journal), fence the dead
# epoch's writes (410 + "fenced", observed via the scraped
# caem_cluster_fenced_total), and finish the campaign with a results
# document byte-identical to a fault-free run. Race-enabled for the same
# reason as chaos: election, journal replay, and the handler swap are
# exactly where concurrency bugs would hide.
failover:
	$(GO) test -race -count=1 -v -timeout 300s -run 'TestCoordinatorFailover|TestLeaderLock|TestCoordinatorFencing|TestJournalFailoverRoundTrip' ./cmd/caem-serve/ ./internal/cluster/

vet:
	$(GO) vet ./...

# Property-based fuzzing gate. Each fuzzer's seed corpus (under
# testdata/fuzz/) already runs as deterministic subtests in plain
# `go test`; this target explores BEYOND the corpus for a bounded
# budget per fuzzer (go's fuzz engine allows one -fuzz target per
# invocation, hence three runs):
#   FuzzSpecLoad            — adversarial JSON never panics the loader
#   FuzzGeneratorValidity   — every generated spec loads and regenerates
#                             byte-identically
#   FuzzScenarioDeterminism — generated scenarios run bit-identically
#                             across serial, parallel, and pooled+Reset
#                             execution
# Override the budget: make fuzz FUZZTIME=2m
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzSpecLoad$$' -fuzztime $(FUZZTIME) ./internal/scenario/
	$(GO) test -run '^$$' -fuzz '^FuzzGeneratorValidity$$' -fuzztime $(FUZZTIME) ./internal/scenario/gen/
	$(GO) test -run '^$$' -fuzz '^FuzzScenarioDeterminism$$' -fuzztime $(FUZZTIME) ./caem/

# Fast-fail lint pass: formatting, vet, and staticcheck when available
# (CI installs it; locally it is optional).
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipped"; fi

# Full benchmark sweep (one iteration each; the experiment benchmarks are
# whole-figure regenerations, so more iterations take minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# The hot-path smoke check CI runs: the event engine, channel sampling,
# and MAC, per simulated second at full scale.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkSimulatedSecond -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkFigure9_NodesAlive -benchtime 1x .

# Bench regression guard: the gated benchmarks (hot-path ns per
# simulated second, the scenario engine, the Figure 9 replication grid,
# the obs instrument hot path, and the store query/aggregate-cache
# paths behind /v1 results) must stay within BENCH_GATE_FACTOR x the
# committed BENCH_7.json baseline on ns/op and BENCH_ALLOC_FACTOR x
# on allocs/op. The time bound is loose by design: the baseline was
# recorded on one machine and CI runners differ and are noisy, so the
# gate catches order-of-magnitude regressions (allocation storms,
# accidental complexity), not jitter; allocation counts are nearly
# deterministic, so their bound is tighter — and the series matched by
# BENCH_EXACT_ALLOCS get no slack at all: the simulated-second hot path
# must stay at exactly 4 allocs/op and the metrics update and
# aggregate-cache hit paths at exactly 0, proving instrumentation never
# leaked into the engine and the cache hit path never started copying.
# Override either factor without a code change if a runner generation
# shifts the cross-machine ratio:
#   make bench-gate BENCH_GATE_FACTOR=4
BENCH_GATE_FACTOR ?= 2.5
BENCH_ALLOC_FACTOR ?= 2.0
BENCH_EXACT_ALLOCS ?= ^(BenchmarkSimulatedSecond/|BenchmarkMetricsHotPath$$|BenchmarkAggregateCached$$)
bench-gate:
	$(GO) run ./scripts/benchgate -baseline BENCH_7.json -factor $(BENCH_GATE_FACTOR) -allocfactor $(BENCH_ALLOC_FACTOR) -exactallocs '$(BENCH_EXACT_ALLOCS)'

# Bench comparator (CI artifact): run the gated benchmarks and print a
# benchstat-style delta table against the committed baseline. Never
# fails the build — it is the human-readable evidence attached to a PR,
# not a gate.
bench-compare:
	@mkdir -p out
	$(GO) run ./scripts/benchgate -baseline BENCH_7.json -gate=false -report out/bench-compare.txt

# Capture pprof CPU + allocation profiles for the gated benchmarks into
# out/profiles/. Inspect with `go tool pprof out/profiles/<name>.cpu`.
# (cmd/caem-bench also takes -cpuprofile/-memprofile for profiling a
# full-scale experiment regeneration instead of the reduced-scale
# benchmarks.)
profile:
	@mkdir -p out/profiles
	$(GO) test -run '^$$' -bench '^(BenchmarkSimulatedSecond|BenchmarkScenarioSecond)$$' -benchtime 1000x \
		-cpuprofile out/profiles/hotpath.cpu -memprofile out/profiles/hotpath.mem .
	$(GO) test -run '^$$' -bench '^BenchmarkFigure9_NodesAlive$$' -benchtime 3x \
		-cpuprofile out/profiles/figure9.cpu -memprofile out/profiles/figure9.mem .
	@echo "profiles written to out/profiles/"

# Golden-determinism gate: regenerate a pinned-seed replicated figure
# serially and with 8 workers and require byte-identical CSVs — the
# invariant every parallel sweep in this repo promises.
determinism:
	rm -rf out/determinism
	$(GO) run ./cmd/caem-bench -experiment figure11 -scale 0.3 -reps 3 -seed 1 -workers 1 -quiet -out out/determinism/serial
	$(GO) run ./cmd/caem-bench -experiment figure11 -scale 0.3 -reps 3 -seed 1 -workers 8 -quiet -out out/determinism/parallel
	cmp out/determinism/serial/figure11.csv out/determinism/parallel/figure11.csv
	@echo "golden determinism: serial and parallel CSVs are byte-identical"

# Resume-determinism gate: a campaign checkpointed mid-flight
# (-halt-after, the deterministic stand-in for a kill) and resumed from
# its results store must print byte-identical output to the same
# campaign run uninterrupted. This is the store's core promise: stored
# cells round-trip exactly and are only reused for bit-identical reruns.
RESUME_ARGS = -scenario node-churn -protocol all -seeds 2 -duration 60 -nodes 50 -workers 4
resume-check:
	rm -rf out/resume
	@mkdir -p out/resume
	$(GO) run ./cmd/caem-sim $(RESUME_ARGS) -store out/resume/full > out/resume/full.txt
	$(GO) run ./cmd/caem-sim $(RESUME_ARGS) -store out/resume/ckpt -halt-after 2
	$(GO) run ./cmd/caem-sim $(RESUME_ARGS) -store out/resume/ckpt -resume > out/resume/resumed.txt
	cmp out/resume/full.txt out/resume/resumed.txt
	@echo "resume determinism: checkpointed+resumed output is byte-identical to the uninterrupted run"

# Documentation gate: run every Example doc test, then docscheck —
# every package needs a package comment, every ```go block in
# README/ARCHITECTURE/SPEC must build against the real module, and
# every ```json block in scenarios/SPEC.md must validate through the
# real scenario loader.
docs-check:
	$(GO) test -run '^Example' ./...
	$(GO) run ./scripts/docscheck -docs README.md,ARCHITECTURE.md,scenarios/SPEC.md -scenario-docs scenarios/SPEC.md

# Observability gate: the full metric catalog (coordinator + worker +
# store + HTTP + build info, assembled from the same Register*
# functions production uses) must pass the naming lint and its text
# exposition must round-trip through the strict Prometheus parser.
obs-check:
	$(GO) run ./scripts/obscheck

# API-surface gate: the /v1 route table (methods, paths, legacy
# redirect/alias policy) must match the committed golden exactly, and
# every row must probe live — canonical path mounted, legacy GETs 301
# with the query preserved, legacy POSTs/probes aliased. An intentional
# surface change regenerates the golden:
#   go test ./cmd/caem-serve -run TestAPIRouteTable -update
api-check:
	$(GO) test -count=1 -run 'TestAPIRouteTable|TestErrorEnvelope' ./cmd/caem-serve/

# Regenerate every paper artifact (tables, figures, ablations) into out/.
figures:
	$(GO) run ./cmd/caem-bench -out out/

# Smoke-run every library scenario through the real CLI (the library is
# also unit-tested by `go test ./caem/`; this drives file loading, flag
# overrides, and the full caem-sim path end to end). The 500 s horizon
# reaches past every library timeline event — all scenarios' last events
# fire by 480 s — so the smoke executes the world mutations themselves,
# not just spec loading.
scenarios:
	@set -e; for f in scenarios/*.json; do \
		echo "== $$f"; \
		$(GO) run ./cmd/caem-sim -scenario $$f -duration 500 >/dev/null; \
	done; echo "all scenarios ran"

# Compile and vet the examples explicitly (they are plain main packages,
# so a plain `go test ./...` would not catch vet regressions in them).
examples:
	$(GO) build ./examples/...
	$(GO) vet ./examples/...

clean:
	rm -rf out/
