package core

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/leach"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/phy"
	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tone"
)

// cluster is one LEACH cluster's run-time state for the current round.
type cluster struct {
	index     int
	head      *node
	members   []*node
	state     mac.HeadState
	gen       uint64 // round generation this cluster belongs to
	toneEv    sim.EventID
	activeTx  *burst
	collapsed bool // head died mid-round; cluster inert until re-election

	// toneFn is the cluster's reusable tone-pulse handler; toneGen and
	// toneState snapshot the (gen, state) guard for the single pending
	// tone event, so re-arming never allocates a closure.
	toneFn    func()
	toneGen   uint64
	toneState mac.HeadState

	// aggBits is the aggregated payload awaiting base-station forwarding
	// (only used when Config.BaseStationForwarding is on).
	aggBits float64
}

// burst is one in-flight data transmission (possibly joined by colliders
// within the CSMA/CD vulnerable window). Bursts are pooled on the Network
// and carry their event handlers with them, so the steady-state transmit
// path allocates neither bursts nor closures: the handlers read cl/gen
// from the struct, which releaseBurst invalidates before reuse.
type burst struct {
	cl        *cluster
	gen       uint64
	sender    *node
	start     sim.Time
	remaining int
	pktEv     sim.EventID
	pktStart  sim.Time
	pktMode   phy.Mode
	pktCSI    float64
	inFlight  bool

	sendFn    func()
	finishFn  func()
	resolveFn func()
	sendEv    sim.EventID
	released  bool

	colliders    []*node
	colliderJoin []sim.Time
	collisionEv  sim.EventID
	collisionSet bool

	// Packet-error-probability memo. The probability is a pure function
	// of (CSI, mode, size) and consecutive packets of a burst share one
	// fading block, so the erfc/exp tower behind PacketErrorProb runs
	// once per block instead of once per packet. Never invalidated: a
	// key match from any earlier burst (or run) is still the right value.
	perrCSI  float64
	perrSize int
	perrMode int
	perrVal  float64
	perrOK   bool
}

// acquireBurst takes a burst from the free list (or grows the pool) and
// initializes it for a new transmission. The three event handlers are
// created once per pool entry and read their context from the struct.
func (net *Network) acquireBurst(cl *cluster, n *node, now sim.Time, k int) *burst {
	var tx *burst
	if last := len(net.burstFree) - 1; last >= 0 {
		tx = net.burstFree[last]
		net.burstFree = net.burstFree[:last]
	} else {
		tx = &burst{}
		tx.sendFn = func() { net.sendPacket(tx.cl, tx, tx.gen) }
		tx.finishFn = func() { net.finishPacket(tx.cl, tx, tx.gen) }
		tx.resolveFn = func() { net.resolveCollision(tx.cl, tx, tx.gen) }
	}
	tx.cl = cl
	tx.gen = net.roundGen
	tx.sender = n
	tx.start = now
	tx.remaining = k
	tx.inFlight = false
	tx.released = false
	tx.colliders = tx.colliders[:0]
	tx.colliderJoin = tx.colliderJoin[:0]
	tx.collisionSet = false
	tx.sendEv, tx.pktEv, tx.collisionEv = sim.EventID{}, sim.EventID{}, sim.EventID{}
	return tx
}

// releaseBurst returns a settled burst to the free list, cancelling any
// events that still reference it so a recycled burst can never receive a
// stale callback. Idempotent: failure paths can settle a burst through
// more than one route (e.g. a node death inside a collision resolution),
// and only the first release counts. Field contents are left intact so
// any caller still holding the burst sees consistent (stale) state.
func (net *Network) releaseBurst(tx *burst) {
	if tx.released {
		return
	}
	tx.released = true
	net.eng.Cancel(tx.sendEv)
	net.eng.Cancel(tx.pktEv)
	net.eng.Cancel(tx.collisionEv)
	net.burstFree = append(net.burstFree, tx)
}

// Network is one simulation run's world — and, through Reset, a reusable
// simulation context: every piece of run state can be rewound in place,
// so a worker that executes a replication grid pays world construction
// once and resets thereafter (see internal/runner's context pool).
type Network struct {
	cfg Config
	eng *sim.Engine
	src *rng.Source

	positions []geom.Point
	nodes     []*node
	aliveMask []bool

	// links is the dense flat link matrix: the channel between nodes a<b
	// lives at index a*linkN+b, materialized lazily (linkInit) from the
	// pair's deterministic stream. Replaces the old pairKey-hashed map:
	// the lookup on the CSI hot path is one multiply-add instead of a
	// hash probe, and the Link values (with their oscillator tables) are
	// reusable storage that Reset simply marks uninitialized.
	links    []channel.Link
	linkInit []bool
	linkN    int

	election       *leach.Election
	electionStream rng.Stream
	scratchStream  rng.Stream // transient stream state (placement, link init)
	mobilityStream rng.Stream // move-event scatter draws (world events)

	// interference is the channel-layer penalty field for cross-network
	// interference bursts; interferenceByID remembers which nodes each
	// active burst caught, so the burst-end event releases exactly the
	// penalties its start imposed even if nodes moved in between.
	interference     channel.InterferenceField
	interferenceByID map[uint64][]int

	// sinkDown suspends base-station forwarding while a sink outage
	// world event is in effect (heads keep aggregating).
	sinkDown     bool
	clusters     []*cluster
	clusterPool  []*cluster // reusable cluster slots with their tone closures
	assign       leach.Assignment
	headsBuf     []int
	queueScratch []int
	roundGen     uint64
	rounds       int

	// Reusable handlers and the burst free list: the steady-state event
	// loop schedules only preallocated closures.
	bookkeepingFn sim.Handler
	sampleTickFn  sim.Handler
	startRoundFn  sim.Handler
	burstFree     []*burst

	// metrics
	life            *metrics.Lifetime
	thr             metrics.Throughput
	delays          metrics.DelayStats
	fairness        metrics.FairnessProbe
	energySeries    *metrics.TimeSeries
	aliveSeries     *metrics.TimeSeries
	modeCounts      []uint64
	collisionEvents uint64
	forwardedBits   uint64
	roundStats      []RoundStat

	nextPacketID uint64
}

// New builds a simulation from the configuration. It panics on an invalid
// configuration (use Config.Validate to check first when the values come
// from user input).
func New(cfg Config) *Network {
	net := &Network{}
	net.init(cfg)
	return net
}

// Reset rewinds the Network in place to the state New(cfg) would build,
// reusing node structs, stream allocations, arenas, free lists, the link
// matrix, and metric storage. A Reset-then-Run is bit-identical to a
// fresh New-then-Run for the same configuration: every random stream is
// rewound to its deterministic origin and event ordering depends only on
// (time, sequence), never on recycled slot identities.
//
// The previous run's Result stays valid: anything a Result references is
// either copied at build time or (the two time series) handed over —
// Reset allocates fresh series rather than truncating the old ones.
func (net *Network) Reset(cfg Config) {
	net.init(cfg)
}

// init is the shared construction/reset path. Every field of the
// Network is either rewound in place (keeping its backing storage) or
// rebuilt when the configuration shape (node count, mode table) changed.
func (net *Network) init(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	net.cfg = cfg
	if net.eng == nil {
		net.eng = sim.NewEngine()
	} else {
		net.eng.Reset()
	}
	if net.src == nil {
		net.src = rng.NewSource(cfg.Seed)
	} else {
		net.src.Reseed(cfg.Seed)
	}

	// Metrics. The finished run's series were handed to its Result, so
	// they get fresh objects; everything else rewinds in place.
	if net.life == nil {
		net.life = metrics.NewLifetime(cfg.Nodes)
	} else {
		net.life.Reset(cfg.Nodes)
	}
	net.energySeries = metrics.NewTimeSeries("avg-remaining-energy-J")
	net.aliveSeries = metrics.NewTimeSeries("nodes-alive")
	net.thr = metrics.Throughput{}
	net.delays = metrics.DelayStats{}
	net.fairness = metrics.FairnessProbe{}
	if cap(net.modeCounts) >= cfg.Modes.Len() {
		net.modeCounts = net.modeCounts[:cfg.Modes.Len()]
		clear(net.modeCounts)
	} else {
		net.modeCounts = make([]uint64, cfg.Modes.Len())
	}
	net.collisionEvents = 0
	net.forwardedBits = 0
	net.roundStats = net.roundStats[:0]
	net.roundGen = 0
	net.rounds = 0
	net.nextPacketID = 0
	net.clusters = net.clusters[:0]

	// Geometry and per-node state.
	field := geom.Field{Width: cfg.FieldWidth, Height: cfg.FieldHeight}
	net.src.InitStream(&net.scratchStream, "placement", 0)
	net.positions = geom.PlaceUniformInto(net.positions, field, cfg.Nodes, &net.scratchStream)
	if cap(net.aliveMask) >= cfg.Nodes {
		net.aliveMask = net.aliveMask[:cfg.Nodes]
	} else {
		net.aliveMask = make([]bool, cfg.Nodes)
	}
	if len(net.nodes) != cfg.Nodes {
		net.nodes = make([]*node, cfg.Nodes)
		for i := range net.nodes {
			net.nodes[i] = &node{
				idx:           i,
				backoffStream: &rng.Stream{},
				perStream:     &rng.Stream{},
				csiStream:     &rng.Stream{},
				arrivalStream: &rng.Stream{},
			}
		}
	}
	for i, n := range net.nodes {
		initialJ := cfg.InitialEnergyJ
		if len(cfg.NodeEnergyJ) == cfg.Nodes {
			initialJ = cfg.NodeEnergyJ[i]
		}
		rate := cfg.ArrivalRatePerSecond
		if len(cfg.NodeArrivalRate) == cfg.Nodes {
			rate = cfg.NodeArrivalRate[i]
		}
		net.src.InitStream(n.backoffStream, "backoff", uint64(i))
		net.src.InitStream(n.perStream, "per", uint64(i))
		net.src.InitStream(n.csiStream, "csinoise", uint64(i))
		net.src.InitStream(n.arrivalStream, "arrival", uint64(i))
		if n.battery == nil {
			n.battery = energy.NewBattery(initialJ)
			n.buf = queueing.NewBuffer(cfg.BufferCapacity)
			n.adjust = queueing.NewThresholdAdjuster(cfg.Adjust)
			n.source = queueing.NewPoissonSource(rate, cfg.PacketSizeBits, i, n.arrivalStream, &net.nextPacketID)
			n.arrivalFn = func() { net.onArrival(n) }
			n.backoffFn = func() { net.onBackoffExpire(n, n.backoffCl, n.backoffGen) }
		} else {
			n.battery.Reset(initialJ)
			n.buf.Reset(cfg.BufferCapacity)
			n.adjust.Reset(cfg.Adjust)
			n.source.Reset(rate, cfg.PacketSizeBits)
		}
		n.pos = net.positions[i]
		n.counters = mac.Counters{}
		n.state = mac.SensorSleep
		n.isHead = false
		n.clusterIdx = -1
		n.sensingSince = 0
		n.lastAccrual = 0
		n.diedAt = 0
		n.arrivalEv, n.backoffEv = sim.EventID{}, sim.EventID{}
		n.backoffCl, n.backoffGen = nil, 0
		n.alive = true
		n.serviceShare = 0
		net.aliveMask[i] = true
	}

	if net.bookkeepingFn == nil {
		net.bookkeepingFn = net.bookkeeping
		net.sampleTickFn = net.sampleTick
		net.startRoundFn = net.startRound
	}

	net.src.InitStream(&net.mobilityStream, "mobility", 0)
	net.interference.Reset(cfg.Nodes)
	clear(net.interferenceByID)
	net.sinkDown = false

	net.src.InitStream(&net.electionStream, "election", 0)
	ecfg := leach.Config{HeadFraction: cfg.HeadFraction, Nodes: cfg.Nodes}
	if net.election == nil {
		net.election = leach.NewElection(ecfg, &net.electionStream)
	} else {
		net.election.Reset(ecfg, &net.electionStream)
	}

	net.linkN = cfg.Nodes
	if len(net.links) != cfg.Nodes*cfg.Nodes {
		net.links = make([]channel.Link, cfg.Nodes*cfg.Nodes)
		net.linkInit = make([]bool, cfg.Nodes*cfg.Nodes)
	} else {
		clear(net.linkInit)
	}

	// The pooled burst free list survives the reset, but its
	// packet-error memos are keyed by mode *index* — a different Modes
	// table in the next run could alias an index to different physics.
	for _, tx := range net.burstFree {
		tx.perrOK = false
	}
}

// pairKey identifies the unordered node pair; it names the pair's RNG
// stream, so link realizations are a pure function of (seed, pair).
func pairKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// linkFor returns (materializing on first use) the channel between two
// nodes, a direct index into the flat link matrix. The link realization
// is a deterministic function of the pair and the master seed, so
// re-clustering — or a context reset — reproduces the same channel.
func (net *Network) linkFor(a, b int) *channel.Link {
	if a > b {
		a, b = b, a
	}
	idx := a*net.linkN + b
	l := &net.links[idx]
	if !net.linkInit[idx] {
		net.linkInit[idx] = true
		d := net.positions[a].Distance(net.positions[b])
		net.src.InitStream(&net.scratchStream, "link", pairKey(a, b))
		l.Reseed(net.cfg.Channel, d, &net.scratchStream)
	}
	return l
}

// resetLinks discards every cached link realization; links re-materialize
// lazily from their per-pair streams (used when a world event mutates the
// propagation parameters).
func (net *Network) resetLinks() {
	clear(net.linkInit)
}

// resetLinksOf discards the cached link realizations touching node i —
// the per-row analogue of resetLinks, used when a mobility event moves a
// single node: only its links changed distance, so only they
// re-materialize (from the same per-pair streams, at the new geometry).
func (net *Network) resetLinksOf(i int) {
	for b := i + 1; b < net.linkN; b++ {
		net.linkInit[i*net.linkN+b] = false
	}
	for a := 0; a < i; a++ {
		net.linkInit[a*net.linkN+i] = false
	}
}

// snrBetween returns the effective data-channel SNR between two nodes at
// now: the link's propagation state minus any active interference
// penalty at either endpoint.
func (net *Network) snrBetween(a, b int, now sim.Time) float64 {
	snr := net.linkFor(a, b).SNRdB(now)
	if p := net.interference.PenaltyDB(a, b); p != 0 {
		snr -= p
	}
	return snr
}

// Run executes the simulation and returns the collected results.
func (net *Network) Run() Result {
	now := net.eng.Now()
	if now != 0 {
		panic("netsim: Run called twice")
	}
	// Initial samples, arrivals, bookkeeping, and the first round.
	net.sample()
	for _, n := range net.nodes {
		net.scheduleArrival(n)
	}
	// The scenario timeline: world events are scheduled before the first
	// protocol event fires, so their engine sequence numbers — and with
	// them the whole event interleaving — are a pure function of Config.
	world := &World{net: net}
	for i := range net.cfg.World {
		ev := net.cfg.World[i]
		net.eng.ScheduleAt(ev.At, func() { ev.Apply(world) })
	}
	net.eng.Schedule(net.cfg.BookkeepingInterval, net.bookkeepingFn)
	net.eng.Schedule(net.cfg.SampleInterval, net.sampleTickFn)
	net.startRound()
	net.eng.Run(net.cfg.Horizon)

	end := net.eng.Now()
	for _, n := range net.nodes {
		n.accrue(net, end)
	}
	return net.buildResult(end)
}

// ---------------------------------------------------------------------------
// Rounds and clustering

func (net *Network) startRound() {
	now := net.eng.Now()
	net.roundGen++
	net.rounds++

	// Close out the previous round: abort in-flight bursts (no retry
	// penalty — the epoch change, not the channel, interrupted them) and
	// settle all dwell energy under the old roles.
	for _, cl := range net.clusters {
		if cl.activeTx != nil {
			net.settlePartialTx(cl, now)
		}
		net.eng.Cancel(cl.toneEv)
	}
	for _, n := range net.nodes {
		n.accrue(net, now)
		net.eng.Cancel(n.backoffEv)
	}
	// The settle above belongs to the finished round; close its ledger
	// before anything attributable to the new round happens (the head
	// flushes below count as new-round deliveries).
	net.closeRoundStats(now)

	if net.life.Alive() == 0 {
		net.eng.Stop()
		return
	}

	heads := net.election.ElectInto(net.headsBuf[:0], net.aliveMask)
	net.headsBuf = heads
	leach.AssignInto(&net.assign, heads, net.positions, net.aliveMask)
	assign := &net.assign

	// Clusters are pooled: each slot carries its tone closure for life,
	// and every per-round field is re-initialized on reuse, so round
	// turnover costs no allocations once the pool covers the head count.
	for len(net.clusterPool) < len(heads) {
		cl := &cluster{}
		cl.toneFn = func() { net.onTonePulse(cl, cl.toneGen, cl.toneState) }
		net.clusterPool = append(net.clusterPool, cl)
	}
	net.clusters = net.clusters[:0]
	for c, h := range heads {
		cl := net.clusterPool[c]
		cl.index = c
		cl.head = net.nodes[h]
		cl.members = cl.members[:0]
		cl.state = mac.HeadIdle
		cl.gen = net.roundGen
		cl.toneEv = sim.EventID{}
		cl.activeTx = nil
		cl.collapsed = false
		cl.aggBits = 0
		net.clusters = append(net.clusters, cl)
	}
	net.roundStats = append(net.roundStats, RoundStat{
		Index:          net.rounds - 1,
		Start:          now,
		Heads:          len(heads),
		AliveAtStart:   net.life.Alive(),
		deliveredBase:  net.thr.Delivered(),
		consumedBaseJ:  net.totalConsumed(),
		collisionsBase: net.collisionEvents,
	})
	for i, n := range net.nodes {
		if !n.alive {
			n.clusterIdx = -1
			continue
		}
		c := assign.ClusterOf[i]
		n.clusterIdx = c
		wasHead := n.isHead
		n.isHead = assign.HeadOf(i) == i
		_ = wasHead
		if n.isHead {
			n.state = mac.SensorSleep // sensor FSM suspended while head
			net.flushHeadBuffer(n, now)
		} else {
			net.clusters[c].members = append(net.clusters[c].members, n)
			if net.cfg.MAC.BurstSize(n.buf.Len()) > 0 {
				n.state = mac.SensorSensing
				n.sensingSince = now
			} else {
				n.state = mac.SensorSleep
			}
		}
	}
	net.emit(TraceRound, -1, len(heads), "")
	for _, cl := range net.clusters {
		net.scheduleTone(cl, 1*sim.Millisecond)
		if net.cfg.BaseStationForwarding {
			cl := cl
			gen := net.roundGen
			net.eng.Schedule(net.cfg.ForwardInterval, func() { net.forwardTick(cl, gen) })
		}
	}
	net.eng.Schedule(net.cfg.RoundLength, net.startRoundFn)
}

// forwardTick is the base-station forwarding extension (§III.A's transmit
// state, which the paper defines but defers): when the data channel is
// idle and aggregated data is pending, the head occupies the channel —
// advertising transmit tone pulses — for the airtime of the aggregate at
// the top ABICM class. The head→BS link is provisioned infrastructure and
// assumed to sustain the highest mode.
func (net *Network) forwardTick(cl *cluster, gen uint64) {
	if gen != net.roundGen || cl.collapsed || !cl.head.alive {
		return
	}
	now := net.eng.Now()
	reschedule := func(delay sim.Time) {
		net.eng.Schedule(delay, func() { net.forwardTick(cl, gen) })
	}
	if net.sinkDown || cl.state != mac.HeadIdle || cl.activeTx != nil || cl.aggBits < 1 {
		// Sink outage, busy, or nothing worth a transmission yet. During
		// an outage the aggregate keeps accumulating and the tick polls
		// at the unhurried interval; the first tick after recovery
		// flushes the backlog.
		if !net.sinkDown && cl.aggBits >= 1 {
			reschedule(50 * sim.Millisecond)
		} else {
			reschedule(net.cfg.ForwardInterval)
		}
		return
	}
	cl.head.accrue(net, now)
	if !cl.head.alive {
		return
	}
	bits := int(cl.aggBits + 0.5)
	cl.aggBits = 0
	airtime := net.cfg.Modes.Highest().Airtime(bits)
	cl.state = mac.HeadTransmit
	net.scheduleTone(cl, 500*sim.Microsecond)
	net.eng.Schedule(airtime, func() {
		if gen != net.roundGen || cl.collapsed || !cl.head.alive {
			return
		}
		end := net.eng.Now()
		cl.head.accrue(net, end)
		if !cl.head.alive {
			return
		}
		if !cl.head.battery.DrawPower(end, energy.DataTx, net.cfg.Device.DataTxPower, airtime) {
			net.nodeDied(cl.head, end)
			return
		}
		net.forwardedBits += uint64(bits)
		cl.state = mac.HeadIdle
		net.scheduleTone(cl, 1*sim.Millisecond)
		reschedule(net.cfg.ForwardInterval)
	})
}

// accumulateAggregate records delivered payload for later base-station
// forwarding (extension only; a no-op when forwarding is off).
func (net *Network) accumulateAggregate(cl *cluster, sizeBits int) {
	if net.cfg.BaseStationForwarding && cl != nil {
		cl.aggBits += float64(sizeBits) * net.cfg.AggregationRatio
	}
}

// totalConsumed sums consumption over all nodes (round accounting).
func (net *Network) totalConsumed() float64 {
	var sum float64
	for _, n := range net.nodes {
		sum += n.battery.Consumed()
	}
	return sum
}

// closeRoundStats finalizes the most recent round's deltas at time now.
func (net *Network) closeRoundStats(now sim.Time) {
	if len(net.roundStats) == 0 {
		return
	}
	rs := &net.roundStats[len(net.roundStats)-1]
	if rs.closed {
		return
	}
	rs.closed = true
	rs.End = now
	rs.Delivered = net.thr.Delivered() - rs.deliveredBase
	rs.ConsumedJ = net.totalConsumed() - rs.consumedBaseJ
	rs.Collisions = net.collisionEvents - rs.collisionsBase
}

// flushHeadBuffer delivers a newly elected head's queued packets locally:
// the node that buffered them has become the sink, so the data has reached
// its destination without further radio work.
func (net *Network) flushHeadBuffer(n *node, now sim.Time) {
	for {
		p, ok := n.buf.Dequeue()
		if !ok {
			break
		}
		net.thr.PacketDelivered(p.SizeBits)
		net.delays.Observe(now - p.CreatedAt)
		n.serviceShare++
	}
	n.adjust.OnServiced(0)
}

// settlePartialTx charges the airtime consumed by an interrupted burst and
// releases the sender(s) without retry penalties.
func (net *Network) settlePartialTx(cl *cluster, now sim.Time) {
	tx := cl.activeTx
	if tx == nil {
		return
	}
	// Event cancellation is releaseBurst's job (it cancels all three
	// tracked events before the slot can be recycled).
	if tx.inFlight {
		net.chargeTxAirtime(tx.sender, tx.pktStart, now, tx.pktMode)
	}
	if tx.sender.alive && tx.sender.state == mac.SensorTransmit {
		tx.sender.state = mac.SensorSleep
	}
	for _, col := range tx.colliders {
		if col.alive && col.state == mac.SensorTransmit {
			col.state = mac.SensorSleep
		}
	}
	cl.activeTx = nil
	net.releaseBurst(tx)
}

// chargeTxAirtime bills a sender's data radio for time actually on air.
func (net *Network) chargeTxAirtime(n *node, from, to sim.Time, _ phy.Mode) {
	if to <= from || !n.alive {
		return
	}
	if !n.battery.DrawPower(to, energy.DataTx, net.cfg.Device.DataTxPower, to-from) {
		net.nodeDied(n, to)
	}
}

// ---------------------------------------------------------------------------
// Traffic arrivals

func (net *Network) scheduleArrival(n *node) {
	if !n.source.Active() || !n.alive {
		return
	}
	gap := n.source.NextInterarrival()
	n.arrivalEv = net.eng.Schedule(gap, n.arrivalFn)
}

func (net *Network) onArrival(n *node) {
	if !n.alive {
		return
	}
	now := net.eng.Now()
	p := n.source.Generate(now)
	net.thr.PacketGenerated()
	if n.isHead {
		// The sink itself sensed the data: delivered on the spot.
		net.thr.PacketDelivered(p.SizeBits)
		n.serviceShare++
		if n.clusterIdx >= 0 && n.clusterIdx < len(net.clusters) {
			net.accumulateAggregate(net.clusters[n.clusterIdx], p.SizeBits)
		}
	} else if n.buf.Enqueue(p) {
		n.adjust.OnArrival(n.buf.Len())
		if n.state == mac.SensorSleep && n.clusterIdx >= 0 &&
			net.cfg.MAC.BurstSize(n.buf.Len()) > 0 {
			cl := net.clusters[n.clusterIdx]
			if !cl.collapsed && cl.head.alive {
				n.accrue(net, now)
				if n.alive {
					n.state = mac.SensorSensing
					n.sensingSince = now
				}
			}
		}
	} else {
		net.thr.PacketDroppedBuffer()
		net.emit(TraceDrop, n.idx, 0, "buffer")
	}
	net.scheduleArrival(n)
}

// ---------------------------------------------------------------------------
// Tone channel

// scheduleTone arms the cluster's tone-pulse chain for its current state,
// first pulse after the given delay. The (gen, state) guard for the single
// pending tone event is snapshotted on the cluster, which is safe because
// the previous event is always cancelled first.
func (net *Network) scheduleTone(cl *cluster, delay sim.Time) {
	net.eng.Cancel(cl.toneEv)
	cl.toneGen = net.roundGen
	cl.toneState = cl.state
	cl.toneEv = net.eng.Schedule(delay, cl.toneFn)
}

func (net *Network) onTonePulse(cl *cluster, gen uint64, state mac.HeadState) {
	if gen != net.roundGen || cl.collapsed || cl.state != state || !cl.head.alive {
		return
	}
	now := net.eng.Now()
	var tst tone.State
	switch state {
	case mac.HeadIdle:
		tst = tone.Idle
	case mac.HeadReceive:
		tst = tone.Receive
	case mac.HeadTransmit:
		tst = tone.Transmit
	default:
		return
	}
	pat := net.cfg.Tone.Pattern(tst)
	if !cl.head.battery.Draw(now, energy.ToneTx, net.cfg.Device.ToneTxPower*pat.Duration.Seconds()) {
		net.nodeDied(cl.head, now)
		return
	}
	if state == mac.HeadIdle {
		net.contend(cl)
	}
	if gen == net.roundGen && !cl.collapsed && cl.state == state {
		net.scheduleTone(cl, pat.Interval)
	}
}

// estimateCSI returns the data-channel CSI a sensor infers from the tone
// pulse it just received: the true reciprocal SNR, an optional Gaussian
// estimation error (Config.CSINoiseSigmaDB), and the estimator's
// calibration/quantization.
func (net *Network) estimateCSI(n *node, cl *cluster, now sim.Time) float64 {
	snr := net.snrBetween(n.idx, cl.head.idx, now)
	if net.cfg.CSINoiseSigmaDB > 0 {
		snr += net.cfg.CSINoiseSigmaDB * n.csiStream.NormFloat64()
	}
	return net.cfg.CSI.Estimate(snr)
}

// contend runs the idle-tone contention scan: every sensing member that
// has completed its sensing delay, holds a minimum burst, and (per its
// policy) sees adequate CSI enters backoff.
func (net *Network) contend(cl *cluster) {
	now := net.eng.Now()
	for _, n := range cl.members {
		if !n.alive || n.state != mac.SensorSensing {
			continue
		}
		if now-n.sensingSince < net.cfg.MAC.SensingDelay {
			continue
		}
		k := net.cfg.MAC.BurstSize(n.buf.Len())
		if k == 0 {
			continue
		}
		class, check := n.currentThresholdClass(net)
		if check {
			if net.estimateCSI(n, cl, now) < net.cfg.Modes.ThresholdForClass(class) {
				n.counters.DeferralsCSI++
				net.emit(TraceDeferral, n.idx, class, "csi")
				continue
			}
		}
		retries := 0
		if head := n.buf.Head(); head != nil {
			retries = head.Retries
		}
		d := net.cfg.MAC.Backoff(retries, n.backoffStream)
		n.state = mac.SensorBackoff
		// At most one backoff event is pending per node, so the handler's
		// context can live on the node instead of in a fresh closure.
		n.backoffCl = cl
		n.backoffGen = net.roundGen
		n.backoffEv = net.eng.Schedule(d, n.backoffFn)
	}
}

func (net *Network) onBackoffExpire(n *node, cl *cluster, gen uint64) {
	if gen != net.roundGen || !n.alive || n.state != mac.SensorBackoff || cl.collapsed {
		return
	}
	now := net.eng.Now()
	if !cl.head.alive {
		n.state = mac.SensorSleep
		return
	}
	if tx := cl.activeTx; tx != nil {
		if now-tx.start < net.cfg.DetectWindow {
			net.joinCollision(cl, n, now)
		} else {
			// The receive tone has been heard: stand down.
			n.counters.DeferralsBusy++
			net.emit(TraceDeferral, n.idx, 0, "busy")
			n.state = mac.SensorSensing
			n.sensingSince = now - net.cfg.MAC.SensingDelay // already synchronized
		}
		return
	}
	if cl.state != mac.HeadIdle {
		n.counters.DeferralsBusy++
		net.emit(TraceDeferral, n.idx, 0, "busy")
		n.state = mac.SensorSensing
		n.sensingSince = now - net.cfg.MAC.SensingDelay
		return
	}
	// Re-verify the CSI after the backoff (§III.B: both conditions must
	// still hold).
	k := net.cfg.MAC.BurstSize(n.buf.Len())
	if k == 0 {
		n.state = mac.SensorSleep
		return
	}
	class, check := n.currentThresholdClass(net)
	if check {
		if net.estimateCSI(n, cl, now) < net.cfg.Modes.ThresholdForClass(class) {
			n.counters.DeferralsCSI++
			net.emit(TraceDeferral, n.idx, class, "csi")
			n.state = mac.SensorSensing
			n.sensingSince = now - net.cfg.MAC.SensingDelay
			return
		}
	}
	net.startBurst(cl, n, k)
}

// ---------------------------------------------------------------------------
// Data bursts

func (net *Network) startBurst(cl *cluster, n *node, k int) {
	now := net.eng.Now()
	n.accrue(net, now)
	if !n.alive {
		return
	}
	// Data radio wake-up: the startup cost the min-burst rule amortizes.
	if !n.battery.Draw(now, energy.DataStartup, net.cfg.Device.StartupEnergy()) {
		net.nodeDied(n, now)
		return
	}
	n.state = mac.SensorTransmit
	n.counters.Attempts++
	net.emit(TraceBurstStart, n.idx, k, "")
	net.emit(TraceSensorState, n.idx, 0, mac.SensorTransmit.String())

	cl.head.accrue(net, now)
	if !cl.head.alive {
		return
	}
	cl.state = mac.HeadReceive
	net.emit(TraceHeadState, cl.head.idx, 0, mac.HeadReceive.String())
	tx := net.acquireBurst(cl, n, now, k)
	cl.activeTx = tx
	net.scheduleTone(cl, 500*sim.Microsecond) // receive-tone chain
	tx.sendEv = net.eng.Schedule(net.cfg.Device.DataStartupTime, tx.sendFn)
}

func (net *Network) sendPacket(cl *cluster, tx *burst, gen uint64) {
	if gen != net.roundGen || cl.activeTx != tx || tx.collisionSet {
		return
	}
	n := tx.sender
	if !n.alive || !cl.head.alive {
		return
	}
	now := net.eng.Now()
	pkt := n.buf.Head()
	if pkt == nil {
		net.finishBurst(cl, tx, true)
		return
	}
	// The receive tones (every 10 ms) let the sender re-adapt its error
	// protection per packet: mode selection uses the true instantaneous
	// CSI (§III.A assumption 3 keeps it constant over the packet).
	csi := net.snrBetween(n.idx, cl.head.idx, now)
	mode, ok := net.cfg.Modes.PickMode(csi)
	if !ok {
		// Below the lowest class. CAEM policies only reach here when the
		// channel degraded after admission; pure LEACH reaches here
		// routinely because it never checked. Transmit at the most
		// robust mode and let the error model decide.
		mode = net.cfg.Modes.Lowest()
	}
	tx.pktStart = now
	tx.pktMode = mode
	tx.pktCSI = csi
	tx.inFlight = true
	airtime := mode.Airtime(pkt.SizeBits)
	tx.pktEv = net.eng.Schedule(airtime, tx.finishFn)
}

func (net *Network) finishPacket(cl *cluster, tx *burst, gen uint64) {
	if gen != net.roundGen || cl.activeTx != tx || tx.collisionSet {
		return
	}
	n := tx.sender
	now := net.eng.Now()
	tx.inFlight = false

	// Sender: airtime + FEC encode. Head: decode (its Rx radio power is
	// accrued by headDwell while in HeadReceive).
	net.chargeTxAirtime(n, tx.pktStart, now, tx.pktMode)
	if !n.alive {
		net.abortBurst(cl, tx, now)
		return
	}
	pkt := n.buf.Head()
	if pkt == nil {
		net.finishBurst(cl, tx, true)
		return
	}
	if !n.battery.Draw(now, energy.Codec, net.cfg.Codec.EncodeEnergy(tx.pktMode, pkt.SizeBits)) {
		net.nodeDied(n, now)
		net.abortBurst(cl, tx, now)
		return
	}
	cl.head.accrue(net, now)
	if !cl.head.alive {
		net.abortBurst(cl, tx, now)
		return
	}
	if !cl.head.battery.Draw(now, energy.Codec, net.cfg.Codec.DecodeEnergy(tx.pktMode, pkt.SizeBits)) {
		net.nodeDied(cl.head, now)
		net.abortBurst(cl, tx, now)
		return
	}

	if !tx.perrOK || tx.perrCSI != tx.pktCSI || tx.perrMode != tx.pktMode.Index || tx.perrSize != pkt.SizeBits {
		tx.perrCSI, tx.perrMode, tx.perrSize = tx.pktCSI, tx.pktMode.Index, pkt.SizeBits
		tx.perrVal = tx.pktMode.PacketErrorProb(tx.pktCSI, pkt.SizeBits)
		tx.perrOK = true
	}
	perr := tx.perrVal
	if n.perStream.Float64() < perr {
		// Corrupted at the head: it answers with a collision tone
		// (§III.A rule 3 — corruption and collision are indistinguishable
		// to it), and the sender aborts the burst.
		n.counters.ChannelFails++
		net.emit(TraceChannelFail, n.idx, tx.pktMode.Index, "")
		pkt.Retries++
		if net.cfg.MAC.ShouldDrop(pkt.Retries) {
			n.buf.DropHead()
			net.thr.PacketDroppedRetry()
			n.counters.RetryDrops++
			net.emit(TraceDrop, n.idx, 0, "retry")
		}
		net.chargeCollisionTone(cl, now)
		net.abortBurst(cl, tx, now)
		return
	}

	// Delivered.
	p, _ := n.buf.Dequeue()
	net.thr.PacketDelivered(p.SizeBits)
	net.accumulateAggregate(cl, p.SizeBits)
	net.emit(TraceDelivered, n.idx, tx.pktMode.Index, "")
	net.delays.Observe(now - p.CreatedAt)
	n.counters.PacketsSent++
	n.serviceShare++
	net.modeCounts[tx.pktMode.Index]++
	tx.remaining--
	if tx.remaining > 0 && n.buf.Len() > 0 {
		net.sendPacket(cl, tx, gen)
		return
	}
	n.counters.BurstsDone++
	net.finishBurst(cl, tx, false)
}

// finishBurst ends a burst normally (or vacuously when the queue emptied).
func (net *Network) finishBurst(cl *cluster, tx *burst, vacuous bool) {
	if cl.activeTx != tx {
		return // already settled by a death path mid-handler
	}
	now := net.eng.Now()
	n := tx.sender
	cl.activeTx = nil
	net.releaseBurst(tx)
	if n.alive {
		n.adjust.OnServiced(n.buf.Len())
		if net.cfg.MAC.BurstSize(n.buf.Len()) > 0 {
			n.state = mac.SensorSensing
			n.sensingSince = now
		} else {
			n.state = mac.SensorSleep
		}
	}
	if cl.head.alive && !cl.collapsed {
		cl.head.accrue(net, now)
		cl.state = mac.HeadIdle
		net.scheduleTone(cl, 1*sim.Millisecond)
	}
	_ = vacuous
}

// abortBurst ends a burst after a failure; the sender returns to sensing.
func (net *Network) abortBurst(cl *cluster, tx *burst, now sim.Time) {
	if cl.activeTx != tx {
		return // already settled by a death path mid-handler
	}
	cl.activeTx = nil
	net.releaseBurst(tx)
	n := tx.sender
	if n.alive {
		n.adjust.OnServiced(n.buf.Len())
		if net.cfg.MAC.BurstSize(n.buf.Len()) > 0 {
			n.state = mac.SensorSensing
			n.sensingSince = now
		} else {
			n.state = mac.SensorSleep
		}
	}
	if cl.head.alive && !cl.collapsed {
		cl.head.accrue(net, now)
		cl.state = mac.HeadIdle
		net.scheduleTone(cl, 1*sim.Millisecond)
	}
}

func (net *Network) chargeCollisionTone(cl *cluster, now sim.Time) {
	if !cl.head.alive {
		return
	}
	pat := net.cfg.Tone.Pattern(tone.Collision)
	pulses := pat.Repeat
	if pulses <= 0 {
		pulses = 1
	}
	e := net.cfg.Device.ToneTxPower * pat.Duration.Seconds() * float64(pulses)
	if !cl.head.battery.Draw(now, energy.ToneTx, e) {
		net.nodeDied(cl.head, now)
	}
}

// ---------------------------------------------------------------------------
// Collisions

// joinCollision handles a contender whose backoff expired inside the
// vulnerable window of an already-started burst: its transmission overlaps
// and corrupts the burst.
func (net *Network) joinCollision(cl *cluster, n *node, now sim.Time) {
	tx := cl.activeTx
	n.accrue(net, now)
	if !n.alive {
		return
	}
	if !n.battery.Draw(now, energy.DataStartup, net.cfg.Device.StartupEnergy()) {
		net.nodeDied(n, now)
		return
	}
	n.state = mac.SensorTransmit
	n.counters.Attempts++
	tx.colliders = append(tx.colliders, n)
	tx.colliderJoin = append(tx.colliderJoin, now)
	if !tx.collisionSet {
		tx.collisionSet = true
		net.eng.Cancel(tx.pktEv)
		tx.collisionEv = net.eng.Schedule(net.cfg.CollisionResolveDelay, tx.resolveFn)
	}
}

func (net *Network) resolveCollision(cl *cluster, tx *burst, gen uint64) {
	if gen != net.roundGen || cl.activeTx != tx {
		return
	}
	now := net.eng.Now()
	net.collisionEvents++
	net.emit(TraceCollision, tx.sender.idx, 1+len(tx.colliders), "")

	// Collision tone from the head.
	net.chargeCollisionTone(cl, now)

	// Every participant pays for its wasted airtime, bumps its head
	// packet's retry count, and returns to sensing.
	release := func(p *node, onAirFrom sim.Time) {
		if tx.inFlight || p != tx.sender {
			net.chargeTxAirtime(p, onAirFrom, now, tx.pktMode)
		}
		if !p.alive {
			return
		}
		p.counters.Collisions++
		if pkt := p.buf.Head(); pkt != nil {
			pkt.Retries++
			if net.cfg.MAC.ShouldDrop(pkt.Retries) {
				p.buf.DropHead()
				net.thr.PacketDroppedRetry()
				p.counters.RetryDrops++
				net.emit(TraceDrop, p.idx, 0, "retry")
			}
		}
		if net.cfg.MAC.BurstSize(p.buf.Len()) > 0 {
			p.state = mac.SensorSensing
			p.sensingSince = now
		} else {
			p.state = mac.SensorSleep
		}
	}
	release(tx.sender, tx.pktStart)
	tx.inFlight = false
	for i, col := range tx.colliders {
		release(col, tx.colliderJoin[i]+net.cfg.Device.DataStartupTime)
	}

	cl.activeTx = nil
	net.releaseBurst(tx)
	if cl.head.alive && !cl.collapsed {
		cl.head.accrue(net, now)
		cl.state = mac.HeadIdle
		// Resume idle tones after the collision pattern finishes.
		pat := net.cfg.Tone.Pattern(tone.Collision)
		net.scheduleTone(cl, pat.Interval*sim.Time(pat.Repeat))
	}
}

// ---------------------------------------------------------------------------
// Death, bookkeeping, sampling

// headDwell charges a cluster head's data radio per its current receive
// duty. Called from node.accrue for head nodes.
func (net *Network) headDwell(n *node, dur sim.Time, now sim.Time) bool {
	d := &net.cfg.Device
	power := d.DataIdleListenPower
	cause := energy.DataIdleListen
	if n.clusterIdx >= 0 && n.clusterIdx < len(net.clusters) {
		cl := net.clusters[n.clusterIdx]
		if cl.head == n && cl.state == mac.HeadReceive {
			power = d.DataRxPower
			cause = energy.DataRx
		}
	}
	if !n.battery.DrawPower(now, cause, power, dur) {
		net.nodeDied(n, now)
		return false
	}
	return true
}

// nodeDied finalizes a node's failure: metric bookkeeping, event
// cancellation, and — when the node was a cluster head — cluster collapse
// (§III.B: members lose the tone signal and sleep until re-election).
func (net *Network) nodeDied(n *node, now sim.Time) {
	if !n.alive {
		return
	}
	n.alive = false
	n.lastAccrual = now
	n.diedAt = now
	net.aliveMask[n.idx] = false
	net.life.NodeDied(now)
	net.emit(TraceDeath, n.idx, 0, "")
	net.eng.Cancel(n.arrivalEv)
	net.eng.Cancel(n.backoffEv)

	if n.clusterIdx >= 0 && n.clusterIdx < len(net.clusters) {
		cl := net.clusters[n.clusterIdx]
		if cl.head == n && !cl.collapsed {
			cl.collapsed = true
			net.eng.Cancel(cl.toneEv)
			if cl.activeTx != nil {
				net.settlePartialTx(cl, now)
			}
			for _, m := range cl.members {
				if m.alive {
					m.accrue(net, now)
					if m.alive {
						m.state = mac.SensorSleep
						net.eng.Cancel(m.backoffEv)
					}
				}
			}
		} else if cl.activeTx != nil && cl.activeTx.sender == n {
			net.settlePartialTx(cl, now)
			if cl.head.alive && !cl.collapsed {
				cl.state = mac.HeadIdle
				net.scheduleTone(cl, 1*sim.Millisecond)
			}
		}
	}
}

func (net *Network) bookkeeping() {
	now := net.eng.Now()
	for _, n := range net.nodes {
		n.accrue(net, now)
	}
	if net.life.Alive() == 0 {
		net.eng.Stop()
		return
	}
	if net.cfg.StopWhenNetworkDead {
		if _, dead := net.life.NetworkDeadAt(net.cfg.DeadFraction); dead {
			net.eng.Stop()
			return
		}
	}
	net.eng.Schedule(net.cfg.BookkeepingInterval, net.bookkeepingFn)
}

func (net *Network) sampleTick() {
	net.sample()
	if net.life.Alive() > 0 {
		net.eng.Schedule(net.cfg.SampleInterval, net.sampleTickFn)
	}
}

func (net *Network) sample() {
	now := net.eng.Now()
	var sum float64
	queues := net.queueScratch[:0]
	for _, n := range net.nodes {
		sum += n.battery.Remaining()
		if n.alive && !n.isHead {
			queues = append(queues, n.buf.Len())
		}
	}
	net.queueScratch = queues
	net.energySeries.Record(now, sum/float64(len(net.nodes)))
	net.aliveSeries.Record(now, float64(net.life.Alive()))
	net.fairness.Snapshot(queues)
}

// Engine exposes the event engine for white-box tests.
func (net *Network) Engine() *sim.Engine { return net.eng }

// debugString summarizes run-time state (used by tests on failure paths).
func (net *Network) debugString() string {
	return fmt.Sprintf("t=%v rounds=%d alive=%d clusters=%d",
		net.eng.Now(), net.rounds, net.life.Alive(), len(net.clusters))
}
