package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/runner"
	"repro/internal/sim"
)

// protocolJobs builds one job per protocol variant from a shared
// configuration template, labelled "<prefix>/<protocol>".
func protocolJobs(opts Options, prefix string, mutate func(*core.Config)) []runner.Job {
	jobs := make([]runner.Job, 0, 3)
	for _, pc := range protocolCases() {
		cfg := opts.baseConfig()
		cfg.Policy = pc.policy
		if mutate != nil {
			mutate(&cfg)
		}
		jobs = append(jobs, runner.Job{Label: prefix + "/" + pc.name, Config: cfg})
	}
	return jobs
}

// chartSeries converts a metrics time series into a plot series,
// downsampled for rendering.
func chartSeries(name string, ts *metrics.TimeSeries) plot.Series {
	pts := ts.Downsample(240)
	out := plot.Series{Name: name, X: make([]float64, 0, len(pts)), Y: make([]float64, 0, len(pts))}
	for _, p := range pts {
		out.X = append(out.X, p.T.Seconds())
		out.Y = append(out.Y, p.V)
	}
	return out
}

// seriesColumn extracts a time series value at time t as a cell.
func seriesCell(ts *metrics.TimeSeries, t sim.Time) string {
	v, ok := ts.At(t)
	if !ok {
		return "-"
	}
	return f3(v)
}

// Figure8 reproduces "Average remaining power versus time": the mean
// per-node battery level of the three protocols at the reference load of
// 5 pkt/s with 10 J batteries, over the paper's 0-600 s window.
func Figure8(opts Options) Report {
	horizon := opts.horizon(600 * sim.Second)
	results := opts.run(protocolJobs(opts, "figure8", func(cfg *core.Config) {
		cfg.Horizon = horizon
	}))

	tab := Table{Headers: []string{"time(s)", "pure-LEACH(J)", "Scheme1(J)", "Scheme2(J)"}}
	const points = 13
	for i := 0; i <= points-1; i++ {
		t := sim.Time(int64(horizon) * int64(i) / int64(points-1))
		tab.AddRow(
			f1(t.Seconds()),
			seriesCell(results[0].EnergySeries, t),
			seriesCell(results[1].EnergySeries, t),
			seriesCell(results[2].EnergySeries, t),
		)
	}
	endL, _ := results[0].EnergySeries.At(horizon)
	endS1, _ := results[1].EnergySeries.At(horizon)
	endS2, _ := results[2].EnergySeries.At(horizon)
	return Report{
		ID:    "figure8",
		Title: "Average remaining energy vs elapsed time (load 5 pkt/s, 10 J initial)",
		Table: tab,
		Notes: []string{
			fmt.Sprintf("at %.0f s: pure-LEACH %.2f J, Scheme1 %.2f J, Scheme2 %.2f J remaining", horizon.Seconds(), endL, endS1, endS2),
			"both CAEM variants retain more energy than pure LEACH throughout; Scheme 2 (fixed highest threshold) is the most frugal, matching the paper's Fig. 8 ordering",
		},
		Charts: []plot.Chart{{
			Title:  "Fig. 8 — average remaining energy vs time",
			XLabel: "elapsed time (s)",
			YLabel: "average remaining energy (J)",
			Series: []plot.Series{
				chartSeries("pure-LEACH", results[0].EnergySeries),
				chartSeries("Scheme1", results[1].EnergySeries),
				chartSeries("Scheme2", results[2].EnergySeries),
			},
		}},
	}
}

// Figure9 reproduces "Number of nodes alive versus time" and the derived
// lifetime gains (paper: ~+40% for Scheme 1, ~+130% for Scheme 2 over
// pure LEACH at load 5).
func Figure9(opts Options) Report {
	horizon := opts.horizon(2500 * sim.Second)
	results := opts.run(protocolJobs(opts, "figure9", func(cfg *core.Config) {
		cfg.Horizon = horizon
	}))

	tab := Table{Headers: []string{"time(s)", "pure-LEACH", "Scheme1", "Scheme2"}}
	const points = 15
	for i := 0; i <= points-1; i++ {
		t := sim.Time(int64(horizon) * int64(i) / int64(points-1))
		row := []string{f1(t.Seconds())}
		for _, r := range results {
			v, ok := r.AliveSeries.At(t)
			if !ok {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.0f", v))
			}
		}
		tab.AddRow(row...)
	}

	notes := []string{}
	lifetime := func(r core.Result) (float64, bool) {
		if r.NetworkDead {
			return r.NetworkLifetime.Seconds(), true
		}
		return 0, false
	}
	l, okL := lifetime(results[0])
	s1, okS1 := lifetime(results[1])
	s2, okS2 := lifetime(results[2])
	if okL && okS1 && okS2 {
		notes = append(notes,
			fmt.Sprintf("network lifetime (80%% exhausted): pure-LEACH %.0f s, Scheme1 %.0f s (%+.0f%%), Scheme2 %.0f s (%+.0f%%)",
				l, s1, 100*(s1/l-1), s2, 100*(s2/l-1)),
			"paper reports ~+40% (Scheme 1) and ~+130% (Scheme 2); the ordering and the Scheme-2 magnitude reproduce, Scheme 1's gain lands above the paper's (see EXPERIMENTS.md)")
	} else {
		notes = append(notes, "not all protocols reached network death within the scaled horizon; rerun at Scale=1 for lifetime gains")
	}
	notes = append(notes, "curves drop steeply once deaths begin: LEACH rotation spreads the cluster-head burden, so exhaustion clusters in time (paper §IV.B)")
	return Report{
		ID:    "figure9",
		Title: "Number of nodes alive vs elapsed time (load 5 pkt/s)",
		Table: tab,
		Notes: notes,
		Charts: []plot.Chart{{
			Title:  "Fig. 9 — nodes alive vs time",
			XLabel: "elapsed time (s)",
			YLabel: "nodes alive",
			Series: []plot.Series{
				chartSeries("pure-LEACH", results[0].AliveSeries),
				chartSeries("Scheme1", results[1].AliveSeries),
				chartSeries("Scheme2", results[2].AliveSeries),
			},
		}},
	}
}

// Figure10 reproduces "Network lifetime versus traffic load": the 80%-dead
// time of each protocol as the per-node load sweeps 5..30 pkt/s.
func Figure10(opts Options) Report {
	tab := Table{Headers: []string{"load(pkt/s)", "pure-LEACH(s)", "Scheme1(s)", "Scheme2(s)", "S1-gain", "S2-gain"}}
	var firstGapS1, lastGapS1 float64
	sweep := make([]plot.Series, 3)
	for i, pc := range protocolCases() {
		sweep[i].Name = pc.name
	}
	var jobs []runner.Job
	for _, load := range opts.loads() {
		jobs = append(jobs, protocolJobs(opts, fmt.Sprintf("figure10/load%.0f", load), func(cfg *core.Config) {
			cfg.ArrivalRatePerSecond = load
			cfg.Horizon = opts.horizon(4000 * sim.Second)
			cfg.StopWhenNetworkDead = true
			cfg.SampleInterval = 20 * sim.Second
		})...)
	}
	results := opts.run(jobs)
	for i, load := range opts.loads() {
		row := []string{f1(load)}
		var lifetimes []float64
		for j := range protocolCases() {
			res := results[i*len(protocolCases())+j]
			if res.NetworkDead {
				lifetimes = append(lifetimes, res.NetworkLifetime.Seconds())
				row = append(row, f1(res.NetworkLifetime.Seconds()))
				sweep[len(lifetimes)-1].X = append(sweep[len(lifetimes)-1].X, load)
				sweep[len(lifetimes)-1].Y = append(sweep[len(lifetimes)-1].Y, res.NetworkLifetime.Seconds())
			} else {
				lifetimes = append(lifetimes, -1)
				row = append(row, fmt.Sprintf(">%.0f", res.Elapsed.Seconds()))
			}
		}
		gain := func(x float64) string {
			if lifetimes[0] <= 0 || x <= 0 {
				return "-"
			}
			return fmt.Sprintf("%+.0f%%", 100*(x/lifetimes[0]-1))
		}
		row = append(row, gain(lifetimes[1]), gain(lifetimes[2]))
		tab.AddRow(row...)
		if lifetimes[0] > 0 && lifetimes[1] > 0 {
			g := lifetimes[1]/lifetimes[0] - 1
			if i == 0 {
				firstGapS1 = g
			}
			lastGapS1 = g
		}
	}
	return Report{
		ID:    "figure10",
		Title: "Network lifetime vs traffic load (5..30 pkt/s)",
		Table: tab,
		Charts: []plot.Chart{{
			Title:  "Fig. 10 — network lifetime vs traffic load",
			XLabel: "added traffic load (pkt/s per node)",
			YLabel: "network lifetime (s)",
			Series: sweep,
		}},
		Notes: []string{
			"all lifetimes fall as load rises: more transmissions drain batteries faster (paper Fig. 10)",
			fmt.Sprintf("Scheme 1's advantage over pure LEACH shrinks with load (%+.0f%% at the lowest load vs %+.0f%% at the highest): under saturation its threshold sits at the lowest class most of the time, degenerating toward non-adaptive behaviour (paper §IV.B)",
				100*firstGapS1, 100*lastGapS1),
			"Scheme 2 keeps the longest lifetime across the sweep",
		},
	}
}

// Figure11 reproduces "Average amount of energy consumed versus traffic
// load": communication energy per successfully delivered packet, for pure
// LEACH vs Scheme 1 (the paper's comparison; Scheme 2 included as the
// floor reference).
func Figure11(opts Options) Report {
	tab := Table{Headers: []string{"load(pkt/s)", "pure-LEACH(mJ)", "Scheme1(mJ)", "Scheme2(mJ)", "S1-saving"}}
	var minSave, maxSave float64 = 1, 0
	var firstSave, lastSave float64
	sweep := make([]plot.Series, 3)
	for i, pc := range protocolCases() {
		sweep[i].Name = pc.name
	}
	var jobs []runner.Job
	for _, load := range opts.loads() {
		jobs = append(jobs, protocolJobs(opts, fmt.Sprintf("figure11/load%.0f", load), func(cfg *core.Config) {
			cfg.ArrivalRatePerSecond = load
			cfg.Horizon = opts.horizon(300 * sim.Second)
		})...)
	}
	results := opts.run(jobs)
	for i, load := range opts.loads() {
		row := []string{f1(load)}
		var perPkt []float64
		for j := range protocolCases() {
			res := results[i*len(protocolCases())+j]
			perPkt = append(perPkt, 1000*res.EnergyPerPktJ)
			row = append(row, f3(1000*res.EnergyPerPktJ))
			sweep[len(perPkt)-1].X = append(sweep[len(perPkt)-1].X, load)
			sweep[len(perPkt)-1].Y = append(sweep[len(perPkt)-1].Y, 1000*res.EnergyPerPktJ)
		}
		saving := 1 - perPkt[1]/perPkt[0]
		row = append(row, pct(saving))
		tab.AddRow(row...)
		if saving < minSave {
			minSave = saving
		}
		if saving > maxSave {
			maxSave = saving
		}
		if i == 0 {
			firstSave = saving
		}
		lastSave = saving
	}
	return Report{
		ID:    "figure11",
		Title: "Average communication energy per delivered packet vs traffic load",
		Table: tab,
		Charts: []plot.Chart{{
			Title:  "Fig. 11 — energy per delivered packet vs traffic load",
			XLabel: "added traffic load (pkt/s per node)",
			YLabel: "communication energy per packet (mJ)",
			Series: sweep,
		}},
		Notes: []string{
			fmt.Sprintf("Scheme 1 saves %.0f%%-%.0f%% per packet over pure LEACH across the sweep (paper: 30-40%%)", 100*minSave, 100*maxSave),
			fmt.Sprintf("the saving narrows with load (%.0f%% -> %.0f%%): Scheme 1 lowers its threshold more often as queues build (paper §IV.C)", 100*firstSave, 100*lastSave),
			"pure LEACH's per-packet energy falls with load: larger bursts amortize the radio startup cost (paper §IV.C)",
		},
	}
}

// Figure12 reproduces "Standard deviation of queue length versus traffic
// load": the short-term fairness index, with effectively unbounded buffers
// per §IV.C so the index reflects service shares rather than drops.
func Figure12(opts Options) Report {
	tab := Table{Headers: []string{"load(pkt/s)", "pure-LEACH", "Scheme1", "Scheme2"}}
	loads := opts.loads()
	var crossover float64 = -1
	sweep := make([]plot.Series, 3)
	for i, pc := range protocolCases() {
		sweep[i].Name = pc.name
	}
	var jobs []runner.Job
	for _, load := range loads {
		jobs = append(jobs, protocolJobs(opts, fmt.Sprintf("figure12/load%.0f", load), func(cfg *core.Config) {
			cfg.ArrivalRatePerSecond = load
			cfg.BufferCapacity = 0 // "substantially large enough" (§IV.C)
			cfg.Horizon = opts.horizon(300 * sim.Second)
		})...)
	}
	results := opts.run(jobs)
	for i, load := range loads {
		row := []string{f1(load)}
		var devs []float64
		for j := range protocolCases() {
			res := results[i*len(protocolCases())+j]
			devs = append(devs, res.QueueStdDev)
			row = append(row, f2(res.QueueStdDev))
			sweep[len(devs)-1].X = append(sweep[len(devs)-1].X, load)
			sweep[len(devs)-1].Y = append(sweep[len(devs)-1].Y, res.QueueStdDev)
		}
		tab.AddRow(row...)
		if devs[1] >= devs[2] && crossover < 0 {
			crossover = load
		}
	}
	var notes []string
	switch {
	case crossover < 0:
		notes = append(notes, "Scheme 1's adaptive threshold yields a lower queue-length standard deviation than Scheme 2 at every load: relaxing the threshold under queue growth returns bandwidth to nodes with poor channels (paper Fig. 12)")
	case crossover > loads[0]:
		notes = append(notes, fmt.Sprintf(
			"below saturation Scheme 1 is markedly fairer than Scheme 2, as the paper's Fig. 12 shows; from ~%.0f pkt/s the unbounded queues diverge and the index becomes a backlog/capacity measure, where Scheme 2's all-top-class transmissions give it higher service capacity (see EXPERIMENTS.md)", crossover))
	default:
		notes = append(notes, "WARNING: Scheme 1 was not fairer than Scheme 2 even at the lightest load; rerun at Scale=1")
	}
	notes = append(notes, "at light load pure LEACH is the fairest: it never withholds service on channel grounds, which is precisely why it wastes energy; once it saturates (its airtimes are the longest) its queues diverge fastest")
	return Report{
		ID:    "figure12",
		Title: "Standard deviation of queue length vs traffic load (short-term fairness)",
		Table: tab,
		Charts: []plot.Chart{{
			Title:  "Fig. 12 — queue-length standard deviation vs traffic load",
			XLabel: "added traffic load (pkt/s per node)",
			YLabel: "std dev of queue length",
			Series: sweep,
		}},
		Notes: notes,
	}
}

// NetworkPerformance is the X1 extension: the §IV.A network-performance
// metrics (average packet delay, aggregate throughput, successful delivery
// rate) that the paper defines but defers to its long version.
func NetworkPerformance(opts Options) Report {
	tab := Table{Headers: []string{
		"load(pkt/s)", "protocol", "delay(ms)", "throughput(kbps)", "delivery",
	}}
	var jobs []runner.Job
	for _, load := range opts.loads() {
		jobs = append(jobs, protocolJobs(opts, fmt.Sprintf("netperf/load%.0f", load), func(cfg *core.Config) {
			cfg.ArrivalRatePerSecond = load
			cfg.Horizon = opts.horizon(300 * sim.Second)
		})...)
	}
	results := opts.run(jobs)
	for i, load := range opts.loads() {
		for j, pc := range protocolCases() {
			res := results[i*len(protocolCases())+j]
			tab.AddRow(f1(load), pc.name, f1(res.MeanDelayMs), f1(res.AggregateKbps), pct(res.DeliveryRate))
		}
	}
	return Report{
		ID:    "netperf",
		Title: "Network performance vs traffic load (delay / throughput / delivery; paper §IV.A metrics, long-version results)",
		Table: tab,
		Notes: []string{
			"channel-adaptive buffering trades delay for energy: Scheme 2 has the largest delay and the lowest delivery rate at every load, Scheme 1 sits between it and pure LEACH",
		},
	}
}
