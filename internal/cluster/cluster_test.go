package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/caem"
)

// testSink records settlement callbacks.
type testSink struct {
	mu      sync.Mutex
	started map[string]int
	done    map[string]caem.Result
	failed  map[string]error
	putErr  func(c Cell) error // injected CellDone failure
}

func newTestSink() *testSink {
	return &testSink{
		started: make(map[string]int),
		done:    make(map[string]caem.Result),
		failed:  make(map[string]error),
	}
}

func (s *testSink) CellStarted(c Cell) {
	s.mu.Lock()
	s.started[c.Key()]++
	s.mu.Unlock()
}

func (s *testSink) CellDone(c Cell, res *caem.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.putErr != nil {
		if err := s.putErr(c); err != nil {
			return err
		}
	}
	s.done[c.Key()] = *res
	return nil
}

func (s *testSink) CellFailed(c Cell, attempts int, err error) {
	s.mu.Lock()
	s.failed[c.Key()] = fmt.Errorf("after %d attempts: %w", attempts, err)
	s.mu.Unlock()
}

func (s *testSink) counts() (done, failed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done), len(s.failed)
}

// testCells builds n real, fast campaign cells (one scenario, one
// protocol, seeds 1..n).
func testCells(t *testing.T, n int) []Cell {
	t.Helper()
	sc, err := caem.FindScenario("node-churn")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := caem.ScenarioConfig(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DurationSeconds = 6
	cfg.Workers = 1
	hash, err := caem.CellHash(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]Cell, 0, n)
	for i := 0; i < n; i++ {
		cc := cfg
		cc.Protocol = caem.PureLEACH
		cc.Seed = uint64(i + 1)
		cells = append(cells, Cell{
			Campaign: "test-campaign",
			Index:    i,
			Hash:     hash,
			Scenario: sc,
			Config:   cc,
		})
	}
	return cells
}

// referenceResults runs the same cells directly, no cluster involved.
func referenceResults(t *testing.T, cells []Cell) map[string]caem.Result {
	t.Helper()
	pool := caem.NewSimPool()
	out := make(map[string]caem.Result, len(cells))
	for _, c := range cells {
		res, err := pool.RunScenario(c.Scenario, c.Config)
		if err != nil {
			t.Fatal(err)
		}
		out[c.Key()] = res
	}
	return out
}

// waitSettled polls the sink until done+failed reaches want.
func waitSettled(t *testing.T, sink *testSink, want int) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		d, f := sink.counts()
		if d+f >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	d, f := sink.counts()
	t.Fatalf("only %d done + %d failed settled, want %d", d, f, want)
}

// TestLeaseLifecycle drives the protocol by hand: claim, renew,
// complete; verify batch sizing, sink callbacks, and settled counts.
func TestLeaseLifecycle(t *testing.T) {
	sink := newTestSink()
	c := NewCoordinator(sink, Options{MaxBatch: 3})
	defer c.Stop()
	cells := testCells(t, 4)
	c.Submit(cells)

	lease, err := c.Claim("w1", 0)
	if err != nil || lease == nil {
		t.Fatalf("claim = %v, %v", lease, err)
	}
	if len(lease.Cells) < 1 || len(lease.Cells) > 3 {
		t.Fatalf("lease has %d cells, want 1..3 (MaxBatch)", len(lease.Cells))
	}
	if err := c.Renew(lease.ID); err != nil {
		t.Fatalf("renew: %v", err)
	}

	results := make([]CellResult, 0, len(lease.Cells))
	pool := caem.NewSimPool()
	for _, cell := range lease.Cells {
		res, err := pool.RunScenario(cell.Scenario, cell.Config)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, CellResult{Campaign: cell.Campaign, Index: cell.Index, Result: &res})
	}
	if err := c.Complete(lease.ID, results); err != nil {
		t.Fatalf("complete: %v", err)
	}
	done, failed := sink.counts()
	if done != len(lease.Cells) || failed != 0 {
		t.Fatalf("settled %d/%d, want %d/0", done, failed, len(lease.Cells))
	}
	// Completing the same lease twice is a protocol error: lease gone.
	if err := c.Complete(lease.ID, results); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("double complete = %v, want ErrLeaseGone", err)
	}
	st := c.Status()
	if st.Settled != len(lease.Cells) || st.Queue != len(cells)-len(lease.Cells) {
		t.Fatalf("status = %+v", st)
	}
}

// TestLeaseExpiryRequeues: a lease that stops renewing is reclaimed by
// the sweep; its cells re-queue, a second worker claims and completes
// them, and the dead worker's late Complete is rejected and must not
// double-settle anything.
func TestLeaseExpiryRequeues(t *testing.T) {
	sink := newTestSink()
	c := NewCoordinator(sink, Options{LeaseTTL: time.Hour, MaxBatch: 8})
	defer c.Stop()

	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	cells := testCells(t, 3)
	c.Submit(cells)

	dead, err := c.Claim("doomed", 0)
	if err != nil || dead == nil {
		t.Fatalf("claim = %v, %v", dead, err)
	}
	if st := c.Status(); len(st.Leases) != 1 {
		t.Fatalf("status shows %d leases, want 1", len(st.Leases))
	}

	// No renewal; advance past the TTL and sweep.
	now = now.Add(2 * time.Hour)
	c.Sweep()
	if err := c.Renew(dead.ID); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("renew after expiry = %v, want ErrLeaseGone", err)
	}
	st := c.Status()
	if st.ExpiredLeases != 1 || st.Queue != len(cells) {
		t.Fatalf("after expiry status = %+v", st)
	}

	// A healthy worker picks the cells back up and completes them.
	pool := caem.NewSimPool()
	for {
		lease, err := c.Claim("healthy", 0)
		if err != nil {
			t.Fatal(err)
		}
		if lease == nil {
			break
		}
		var results []CellResult
		for _, cell := range lease.Cells {
			res, err := pool.RunScenario(cell.Scenario, cell.Config)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, CellResult{Campaign: cell.Campaign, Index: cell.Index, Result: &res})
		}
		if err := c.Complete(lease.ID, results); err != nil {
			t.Fatal(err)
		}
	}
	done, _ := sink.counts()
	if done != len(cells) {
		t.Fatalf("settled %d cells, want %d", done, len(cells))
	}

	// The doomed worker finally reports in: rejected, nothing changes.
	var late []CellResult
	for _, cell := range dead.Cells {
		res := sink.done[cell.Key()]
		late = append(late, CellResult{Campaign: cell.Campaign, Index: cell.Index, Result: &res})
	}
	if err := c.Complete(dead.ID, late); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("late complete = %v, want ErrLeaseGone", err)
	}
	if st := c.Status(); st.Settled != len(cells) {
		t.Fatalf("late complete double-settled: %+v", st)
	}
}

// TestRetryBackoffAndPoison: a cell that keeps failing is retried with
// growing, jittered delays and then poisoned; a cell that fails once
// and then succeeds settles normally.
func TestRetryBackoffAndPoison(t *testing.T) {
	sink := newTestSink()
	opts := Options{LeaseTTL: time.Hour, MaxAttempts: 3, BackoffBase: time.Second, MaxBatch: 8}
	c := NewCoordinator(sink, opts)
	defer c.Stop()
	now := time.Unix(5000, 0)
	c.SetClock(func() time.Time { return now })

	cells := testCells(t, 2)
	c.Submit(cells)
	flakyKey, poisonKey := cells[0].Key(), cells[1].Key()

	pool := caem.NewSimPool()
	attempt := map[string]int{}
	for round := 0; round < 10; round++ {
		lease, err := c.Claim("w", 0)
		if err != nil {
			t.Fatal(err)
		}
		if lease == nil {
			// Nothing ripe: jump past every backoff and try again.
			now = now.Add(5 * time.Minute)
			c.Sweep()
			if d, f := sink.counts(); d+f == len(cells) {
				break
			}
			continue
		}
		var results []CellResult
		for _, cell := range lease.Cells {
			attempt[cell.Key()]++
			r := CellResult{Campaign: cell.Campaign, Index: cell.Index}
			fail := cell.Key() == poisonKey || (cell.Key() == flakyKey && attempt[cell.Key()] == 1)
			if fail {
				r.Error = "injected transient failure"
			} else {
				res, err := pool.RunScenario(cell.Scenario, cell.Config)
				if err != nil {
					t.Fatal(err)
				}
				r.Result = &res
			}
			results = append(results, r)
		}
		if err := c.Complete(lease.ID, results); err != nil {
			t.Fatal(err)
		}
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if _, ok := sink.done[flakyKey]; !ok {
		t.Fatalf("flaky cell never settled: done=%v failed=%v", sink.done, sink.failed)
	}
	ferr, ok := sink.failed[poisonKey]
	if !ok {
		t.Fatalf("poison cell not reported as failed")
	}
	if attempt[poisonKey] != opts.MaxAttempts {
		t.Fatalf("poison cell ran %d times, want exactly MaxAttempts=%d", attempt[poisonKey], opts.MaxAttempts)
	}
	st := c.Status()
	if len(st.Poisoned) != 1 || st.Poisoned[0].Attempts != opts.MaxAttempts {
		t.Fatalf("status poisoned = %+v (sink: %v)", st.Poisoned, ferr)
	}
}

// TestBackoffDelaysAreDeterministic: the same cell and attempt must map
// to the same jitter, so chaotic runs replay exactly.
func TestBackoffDelaysAreDeterministic(t *testing.T) {
	for attempt := 1; attempt <= 5; attempt++ {
		a := jitter("camp/7", attempt, 400*time.Millisecond)
		b := jitter("camp/7", attempt, 400*time.Millisecond)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic: %v vs %v", attempt, a, b)
		}
		if a < 0 || a > 400*time.Millisecond {
			t.Fatalf("attempt %d: jitter %v out of [0, span]", attempt, a)
		}
	}
	if jitter("camp/7", 1, 400*time.Millisecond) == jitter("camp/8", 1, 400*time.Millisecond) &&
		jitter("camp/7", 2, 400*time.Millisecond) == jitter("camp/8", 2, 400*time.Millisecond) &&
		jitter("camp/7", 3, 400*time.Millisecond) == jitter("camp/8", 3, 400*time.Millisecond) {
		t.Fatal("jitter does not vary across cells at all")
	}
}

// TestTransientStorePutRetries: a sink whose CellDone fails once (the
// injected transient store-write error) re-queues the cell; the next
// completion persists it.
func TestTransientStorePutRetries(t *testing.T) {
	sink := newTestSink()
	var failOnce sync.Once
	fails := 0
	sink.putErr = func(c Cell) error {
		var err error
		failOnce.Do(func() {
			fails++
			err = errors.New("store write fault")
		})
		return err
	}
	c := NewCoordinator(sink, Options{LeaseTTL: time.Hour, BackoffBase: time.Millisecond, MaxBatch: 8})
	defer c.Stop()
	now := time.Unix(9000, 0)
	c.SetClock(func() time.Time { return now })

	cells := testCells(t, 1)
	c.Submit(cells)
	pool := caem.NewSimPool()
	for i := 0; i < 5; i++ {
		lease, err := c.Claim("w", 0)
		if err != nil {
			t.Fatal(err)
		}
		if lease == nil {
			now = now.Add(time.Minute)
			continue
		}
		var results []CellResult
		for _, cell := range lease.Cells {
			res, err := pool.RunScenario(cell.Scenario, cell.Config)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, CellResult{Campaign: cell.Campaign, Index: cell.Index, Result: &res})
		}
		if err := c.Complete(lease.ID, results); err != nil {
			t.Fatal(err)
		}
		if d, _ := sink.counts(); d == 1 {
			break
		}
	}
	if d, f := sink.counts(); d != 1 || f != 0 {
		t.Fatalf("after transient store fault: %d done, %d failed, want 1/0", d, f)
	}
	if fails != 1 {
		t.Fatalf("store fault injected %d times, want 1", fails)
	}
}

// TestWorkersProduceBitIdenticalResults: a full in-process cluster — a
// coordinator and three concurrent workers — must settle every cell
// with results bit-identical to direct execution.
func TestWorkersProduceBitIdenticalResults(t *testing.T) {
	cells := testCells(t, 9)
	want := referenceResults(t, cells)

	sink := newTestSink()
	c := NewCoordinator(sink, Options{LeaseTTL: 5 * time.Second, MaxBatch: 2})
	defer c.Stop()
	c.Submit(cells)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		w := &Worker{Queue: c, Name: fmt.Sprintf("w%d", i), Poll: 5 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	waitSettled(t, sink, len(cells))
	cancel()
	wg.Wait()

	sink.mu.Lock()
	defer sink.mu.Unlock()
	for key, ref := range want {
		got, ok := sink.done[key]
		if !ok {
			t.Fatalf("cell %s never settled", key)
		}
		if got.TotalConsumedJ != ref.TotalConsumedJ || got.DeliveryRate != ref.DeliveryRate ||
			got.MeanDelayMs != ref.MeanDelayMs || got.P95DelayMs != ref.P95DelayMs {
			t.Fatalf("cell %s diverged from direct execution:\n got %+v\nwant %+v", key, got, ref)
		}
	}
}

// TestChaosKilledWorkerRecoversThroughExpiry: one worker is killed
// mid-lease by chaos injection (no complete, no release, heartbeats
// stop); the lease expires and a surviving worker finishes the
// campaign with identical results.
func TestChaosKilledWorkerRecoversThroughExpiry(t *testing.T) {
	cells := testCells(t, 8)
	want := referenceResults(t, cells)

	sink := newTestSink()
	c := NewCoordinator(sink, Options{
		LeaseTTL:   300 * time.Millisecond,
		SweepEvery: 50 * time.Millisecond,
		MaxBatch:   3,
	})
	defer c.Stop()
	c.Submit(cells)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The victim runs alone first so its kill is guaranteed to land
	// mid-lease: as the only worker it claims 3 cells (MaxBatch) and dies
	// before the third, leaving the whole lease to expire.
	victim := &Worker{
		Queue: c, Name: "victim", Poll: 5 * time.Millisecond,
		Chaos: &Chaos{KillAfterCells: 2},
	}
	if err := victim.Run(ctx); !errors.Is(err, ErrWorkerKilled) {
		t.Fatalf("victim exited with %v, want ErrWorkerKilled", err)
	}
	if st := c.Status(); len(st.Leases) != 1 {
		t.Fatalf("victim died without an outstanding lease: %+v", st)
	}

	var wg sync.WaitGroup
	survivor := &Worker{Queue: c, Name: "survivor", Poll: 5 * time.Millisecond}
	wg.Add(1)
	go func() {
		defer wg.Done()
		survivor.Run(ctx)
	}()
	waitSettled(t, sink, len(cells))
	cancel()
	wg.Wait()

	st := c.Status()
	if st.ExpiredLeases == 0 {
		t.Fatalf("no lease expired — the kill was not mid-lease: %+v", st)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.failed) != 0 {
		t.Fatalf("worker death poisoned cells: %v", sink.failed)
	}
	for key, ref := range want {
		if got := sink.done[key]; got.TotalConsumedJ != ref.TotalConsumedJ {
			t.Fatalf("cell %s diverged after worker death: %v vs %v", key, got.TotalConsumedJ, ref.TotalConsumedJ)
		}
	}
}

// TestDroppedHeartbeatsExpireLiveWorker: a worker whose renewals are
// all dropped loses its lease mid-cell; the cells re-run elsewhere and
// the worker's late duplicate results are discarded without
// double-settling. The deaf worker's cells are long (≫ TTL) so the
// expiry is guaranteed mid-execution, not a timing race; the "healthy
// worker" is the test itself, draining the queue by hand.
func TestDroppedHeartbeatsExpireLiveWorker(t *testing.T) {
	cells := testCells(t, 3)
	for i := range cells {
		cells[i].Config.DurationSeconds = 600 // hundreds of ms per cell
	}
	sink := newTestSink()
	c := NewCoordinator(sink, Options{
		LeaseTTL:   50 * time.Millisecond,
		SweepEvery: 10 * time.Millisecond,
		MaxBatch:   1, // single-cell leases: expiry lands mid-cell, always
	})
	defer c.Stop()
	c.Submit(cells)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deaf := &Worker{
		Queue: c, Name: "deaf", Poll: 5 * time.Millisecond,
		Chaos: &Chaos{DropRenewal: func(string, int) bool { return true }},
	}
	deafDone := make(chan struct{})
	go func() {
		defer close(deafDone)
		deaf.Run(ctx)
	}()

	// Wait until the sweeper has reclaimed at least one of the deaf
	// worker's leases, then shut it down.
	expireBy := time.Now().Add(120 * time.Second)
	for c.Status().ExpiredLeases == 0 {
		if time.Now().After(expireBy) {
			t.Fatalf("dropped heartbeats never expired a lease: %+v", c.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-deafDone

	// Let the sweeper reclaim every lease the deaf worker abandoned,
	// then freeze the clock: the hand-driven drain below must not lose
	// its own leases to the same 50ms TTL while executing slow cells.
	reclaimBy := time.Now().Add(120 * time.Second)
	for len(c.Status().Leases) != 0 {
		if time.Now().After(reclaimBy) {
			t.Fatalf("deaf worker's leases never reclaimed: %+v", c.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	frozen := time.Now()
	c.SetClock(func() time.Time { return frozen })

	// Drain what is left by hand, acting as the healthy replacement
	// worker.
	pool := caem.NewSimPool()
	drainBy := time.Now().Add(120 * time.Second)
	for {
		if d, f := sink.counts(); d+f >= len(cells) {
			break
		}
		if time.Now().After(drainBy) {
			t.Fatalf("queue never drained: %+v", c.Status())
		}
		lease, err := c.Claim("healthy", 0)
		if err != nil {
			t.Fatal(err)
		}
		if lease == nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var results []CellResult
		for _, cell := range lease.Cells {
			res, err := pool.RunScenario(cell.Scenario, cell.Config)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, CellResult{Campaign: cell.Campaign, Index: cell.Index, Result: &res})
		}
		if err := c.Complete(lease.ID, results); err != nil && !errors.Is(err, ErrLeaseGone) {
			t.Fatal(err)
		}
	}

	done, failed := sink.counts()
	if done != len(cells) || failed != 0 {
		t.Fatalf("settled %d/%d, want %d/0", done, failed, len(cells))
	}
	st := c.Status()
	if st.ExpiredLeases == 0 || st.Settled != len(cells) {
		t.Fatalf("expiry bookkeeping off: %+v", st)
	}
	sink.mu.Lock()
	over := 0
	for _, n := range sink.started {
		if n > 1 {
			over++
		}
	}
	sink.mu.Unlock()
	if over == 0 {
		t.Fatal("no cell was ever handed out twice — expiry re-queue untested")
	}
}

// TestGracefulReleaseReturnsCells: cancelling a worker mid-lease
// releases the unfinished cells immediately — no expiry wait, no retry
// penalty — and settles what it already computed.
func TestGracefulReleaseReturnsCells(t *testing.T) {
	cells := testCells(t, 4)
	sink := newTestSink()
	c := NewCoordinator(sink, Options{LeaseTTL: time.Hour, MaxBatch: 4})
	defer c.Stop()
	c.Submit(cells)

	// Cancel after the first cell settles locally: FailCell doubles as a
	// progress probe (never failing, only counting).
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	w := &Worker{
		Queue: c, Name: "w", Poll: 5 * time.Millisecond,
		Chaos: &Chaos{FailCell: func(Cell) error {
			ran++
			if ran == 2 {
				cancel()
			}
			return nil
		}},
	}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker run: %v", err)
	}

	st := c.Status()
	if len(st.Leases) != 0 {
		t.Fatalf("release left a lease outstanding: %+v", st)
	}
	done, failed := sink.counts()
	if failed != 0 || done == 0 || done == len(cells) {
		t.Fatalf("graceful release settled %d/%d cells, want partial progress and zero failures (status %+v)",
			done, failed, st)
	}
	if st.Queue+st.Delayed != len(cells)-done {
		t.Fatalf("unfinished cells not re-queued: %+v with %d done", st, done)
	}
}

// TestHTTPQueueRoundTrip: the full lease protocol over real HTTP —
// Remote against RegisterHTTP — including 204 no-work, 410 lease-gone,
// and /cluster/status.
func TestHTTPQueueRoundTrip(t *testing.T) {
	cells := testCells(t, 4)
	want := referenceResults(t, cells)

	sink := newTestSink()
	c := NewCoordinator(sink, Options{LeaseTTL: 2 * time.Second, MaxBatch: 2})
	defer c.Stop()
	mux := http.NewServeMux()
	c.RegisterHTTP(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	remote := &Remote{Base: ts.URL}

	c.Submit(cells)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &Worker{Queue: remote, Name: fmt.Sprintf("http-%d", i), Poll: 5 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	waitSettled(t, sink, len(cells))
	cancel()
	wg.Wait()

	sink.mu.Lock()
	for key, ref := range want {
		if got := sink.done[key]; got.TotalConsumedJ != ref.TotalConsumedJ || got.P95DelayMs != ref.P95DelayMs {
			t.Fatalf("HTTP-executed cell %s diverged: %+v vs %+v", key, got, ref)
		}
	}
	sink.mu.Unlock()

	// Empty queue: 204 maps to a nil lease.
	lease, err := remote.Claim("http-0", 0)
	if err != nil || lease != nil {
		t.Fatalf("claim on empty queue = %v, %v; want nil, nil", lease, err)
	}
	// Unknown lease: 410 maps to ErrLeaseGone on every settle verb.
	if err := remote.Renew("lease-999"); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("renew unknown = %v, want ErrLeaseGone", err)
	}
	if err := remote.Complete("lease-999", nil); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("complete unknown = %v, want ErrLeaseGone", err)
	}
	if err := remote.Release("lease-999", nil); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("release unknown = %v, want ErrLeaseGone", err)
	}
	if _, err := remote.WaitIdle(5*time.Second, 10*time.Millisecond); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	st := c.Status()
	if st.Settled != len(cells) || len(st.Workers) < 2 {
		t.Fatalf("status after HTTP run = %+v", st)
	}
}
