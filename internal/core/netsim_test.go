package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/queueing"
	"repro/internal/sim"
)

// testConfig returns a small, fast configuration (25 nodes, 60 s) that
// still exercises clustering, contention, fading, and threshold logic.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 25
	cfg.FieldWidth = 60
	cfg.FieldHeight = 60
	cfg.Horizon = 60 * sim.Second
	cfg.SampleInterval = 2 * sim.Second
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.FieldWidth = 0 },
		func(c *Config) { c.ArrivalRatePerSecond = -1 },
		func(c *Config) { c.PacketSizeBits = 0 },
		func(c *Config) { c.BufferCapacity = -1 },
		func(c *Config) { c.InitialEnergyJ = 0 },
		func(c *Config) { c.RoundLength = 0 },
		func(c *Config) { c.HeadFraction = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.SampleInterval = 0 },
		func(c *Config) { c.BookkeepingInterval = 0 },
		func(c *Config) { c.DeadFraction = 0 },
		func(c *Config) { c.Adjust.Classes = 3 }, // mismatch with 4-mode table
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func runPolicy(t *testing.T, p queueing.ThresholdPolicy) Result {
	t.Helper()
	cfg := testConfig()
	cfg.Policy = p
	return New(cfg).Run()
}

// Energy conservation: for every node, initial = remaining + consumed, and
// the per-cause breakdown sums to the consumption.
func TestEnergyConservation(t *testing.T) {
	for _, p := range []queueing.ThresholdPolicy{queueing.PolicyNone, queueing.PolicyAdaptive, queueing.PolicyFixedHighest} {
		r := runPolicy(t, p)
		var byCause float64
		for _, j := range r.EnergyByCause {
			byCause += j
		}
		if math.Abs(byCause-r.TotalConsumedJ) > 1e-6 {
			t.Errorf("%v: cause breakdown %v != total consumed %v", p, byCause, r.TotalConsumedJ)
		}
		for _, n := range r.Nodes {
			if math.Abs(n.RemainingJ+n.ConsumedJ-10) > 1e-9 {
				t.Errorf("%v: node %d energy not conserved: %v + %v != 10", p, n.Index, n.RemainingJ, n.ConsumedJ)
			}
		}
	}
}

// Traffic conservation: delivered + drops <= generated, and the delivery
// rate matches the counts.
func TestTrafficAccounting(t *testing.T) {
	for _, p := range []queueing.ThresholdPolicy{queueing.PolicyNone, queueing.PolicyAdaptive, queueing.PolicyFixedHighest} {
		r := runPolicy(t, p)
		if r.Generated == 0 {
			t.Fatalf("%v: no packets generated", p)
		}
		if r.Delivered+r.DroppedBuffer+r.DroppedRetry > r.Generated {
			t.Errorf("%v: delivered %d + drops %d+%d exceeds generated %d",
				p, r.Delivered, r.DroppedBuffer, r.DroppedRetry, r.Generated)
		}
		if want := float64(r.Delivered) / float64(r.Generated); math.Abs(r.DeliveryRate-want) > 1e-12 {
			t.Errorf("%v: delivery rate %v, want %v", p, r.DeliveryRate, want)
		}
		if r.DeliveryRate < 0.5 {
			t.Errorf("%v: delivery rate %v suspiciously low at moderate load", p, r.DeliveryRate)
		}
	}
}

// Determinism: two runs with equal seeds are bit-identical; a different
// seed diverges.
func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	a := New(cfg).Run()
	b := New(cfg).Run()
	if a.TotalConsumedJ != b.TotalConsumedJ || a.Delivered != b.Delivered ||
		a.MeanDelayMs != b.MeanDelayMs || a.CollisionEvents != b.CollisionEvents {
		t.Fatalf("equal seeds diverged: %+v vs %+v", a.Generated, b.Generated)
	}
	for i := range a.Nodes {
		if a.Nodes[i].RemainingJ != b.Nodes[i].RemainingJ {
			t.Fatalf("node %d energy differs across identical runs", i)
		}
	}
	cfg.Seed = 2
	c := New(cfg).Run()
	if c.TotalConsumedJ == a.TotalConsumedJ && c.Delivered == a.Delivered {
		t.Fatal("different seeds produced identical results")
	}
}

// The paper's core energy ordering at moderate load: Scheme 2 <= Scheme 1
// <= pure LEACH in both total consumption and per-packet energy.
func TestProtocolEnergyOrdering(t *testing.T) {
	leach := runPolicy(t, queueing.PolicyNone)
	s1 := runPolicy(t, queueing.PolicyAdaptive)
	s2 := runPolicy(t, queueing.PolicyFixedHighest)
	if !(s2.TotalConsumedJ < s1.TotalConsumedJ && s1.TotalConsumedJ < leach.TotalConsumedJ) {
		t.Errorf("total energy ordering violated: leach=%.1f s1=%.1f s2=%.1f",
			leach.TotalConsumedJ, s1.TotalConsumedJ, s2.TotalConsumedJ)
	}
	if !(s2.EnergyPerPktJ < s1.EnergyPerPktJ && s1.EnergyPerPktJ < leach.EnergyPerPktJ) {
		t.Errorf("per-packet energy ordering violated: leach=%.4g s1=%.4g s2=%.4g",
			leach.EnergyPerPktJ, s1.EnergyPerPktJ, s2.EnergyPerPktJ)
	}
	// The headline claim: CAEM saves a substantial fraction per packet.
	saving := 1 - s1.EnergyPerPktJ/leach.EnergyPerPktJ
	if saving < 0.15 {
		t.Errorf("Scheme 1 per-packet saving only %.1f%%, want substantial", 100*saving)
	}
}

// Fairness ordering: Scheme 2 (fixed highest threshold) must be least fair
// (largest queue-length stddev); Scheme 1's adaptation must beat it.
func TestFairnessOrdering(t *testing.T) {
	s1 := runPolicy(t, queueing.PolicyAdaptive)
	s2 := runPolicy(t, queueing.PolicyFixedHighest)
	if !(s1.QueueStdDev < s2.QueueStdDev) {
		t.Errorf("fairness ordering violated: s1=%.2f s2=%.2f", s1.QueueStdDev, s2.QueueStdDev)
	}
}

// Channel-adaptive schemes defer on CSI; pure LEACH never does.
func TestDeferralBehaviour(t *testing.T) {
	leach := runPolicy(t, queueing.PolicyNone)
	s2 := runPolicy(t, queueing.PolicyFixedHighest)
	if leach.MAC.DeferralsCSI != 0 {
		t.Errorf("pure LEACH deferred on CSI %d times, want 0", leach.MAC.DeferralsCSI)
	}
	if s2.MAC.DeferralsCSI == 0 {
		t.Error("Scheme 2 never deferred on CSI")
	}
	// Pure LEACH transmits over bad channels, so it must see channel
	// failures; Scheme 2's admission control should make them rare.
	if leach.MAC.ChannelFails == 0 {
		t.Error("pure LEACH saw no channel failures on a fading channel")
	}
	if s2.MAC.ChannelFails > leach.MAC.ChannelFails {
		t.Errorf("Scheme 2 channel fails (%d) exceed pure LEACH (%d)",
			s2.MAC.ChannelFails, leach.MAC.ChannelFails)
	}
}

// Scheme 2 only ever transmits at the top class; pure LEACH uses the whole
// mode spectrum on a fading channel.
func TestModeUsageByPolicy(t *testing.T) {
	leach := runPolicy(t, queueing.PolicyNone)
	s2 := runPolicy(t, queueing.PolicyFixedHighest)
	top := len(s2.ModeCounts) - 1
	for c := 0; c < top; c++ {
		// Admission happens at the top threshold; the channel can decay
		// between admission and a later packet in the burst, so allow a
		// tiny residue below the top class.
		if s2.ModeCounts[c] > s2.ModeCounts[top]/20 {
			t.Errorf("Scheme 2 sent %d packets at class %d (top class: %d)", s2.ModeCounts[c], c, s2.ModeCounts[top])
		}
	}
	spread := 0
	for _, c := range leach.ModeCounts {
		if c > 0 {
			spread++
		}
	}
	if spread < 3 {
		t.Errorf("pure LEACH used only %d mode classes, want >= 3", spread)
	}
}

// Nodes must die when the battery is tiny, and death bookkeeping must be
// consistent.
func TestNodeDeathBookkeeping(t *testing.T) {
	cfg := testConfig()
	cfg.InitialEnergyJ = 0.3
	cfg.Horizon = 300 * sim.Second
	r := New(cfg).Run()
	if len(r.Deaths) == 0 {
		t.Fatal("no deaths with a 0.3 J battery over 300 s")
	}
	dead := 0
	for _, n := range r.Nodes {
		if n.Dead {
			dead++
			if n.RemainingJ != 0 {
				t.Errorf("dead node %d has %v J remaining", n.Index, n.RemainingJ)
			}
			if n.DiedAt <= 0 || n.DiedAt > r.Elapsed {
				t.Errorf("node %d died at %v outside the run", n.Index, n.DiedAt)
			}
		}
	}
	if dead != len(r.Deaths) {
		t.Fatalf("dead nodes %d != recorded deaths %d", dead, len(r.Deaths))
	}
	if r.AliveAtEnd != cfg.Nodes-dead {
		t.Fatalf("alive %d + dead %d != %d", r.AliveAtEnd, dead, cfg.Nodes)
	}
	// Deaths are recorded in time order.
	for i := 1; i < len(r.Deaths); i++ {
		if r.Deaths[i] < r.Deaths[i-1] {
			t.Fatal("deaths out of order")
		}
	}
}

// With StopWhenNetworkDead, the run ends near the 80%-dead crossing rather
// than the horizon.
func TestStopWhenNetworkDead(t *testing.T) {
	cfg := testConfig()
	cfg.InitialEnergyJ = 0.3
	cfg.Horizon = 2000 * sim.Second
	cfg.StopWhenNetworkDead = true
	r := New(cfg).Run()
	if !r.NetworkDead {
		t.Fatal("network did not die with 0.3 J batteries")
	}
	if r.Elapsed >= cfg.Horizon {
		t.Fatalf("run did not stop early: elapsed %v", r.Elapsed)
	}
	if r.Elapsed < r.NetworkLifetime {
		t.Fatalf("stopped (%v) before the recorded lifetime (%v)", r.Elapsed, r.NetworkLifetime)
	}
}

// The energy time series is monotone non-increasing (batteries only drain)
// and starts at the initial level.
func TestEnergySeriesMonotone(t *testing.T) {
	r := runPolicy(t, queueing.PolicyAdaptive)
	pts := r.EnergySeries.Points()
	if len(pts) < 10 {
		t.Fatalf("energy series has %d samples", len(pts))
	}
	if pts[0].V != 10 {
		t.Fatalf("first sample %v, want initial 10 J", pts[0].V)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].V > pts[i-1].V+1e-9 {
			t.Fatalf("average remaining energy increased at %v", pts[i].T)
		}
	}
}

// The alive series is monotone non-increasing and matches the final count.
func TestAliveSeries(t *testing.T) {
	cfg := testConfig()
	cfg.InitialEnergyJ = 0.3
	cfg.Horizon = 300 * sim.Second
	r := New(cfg).Run()
	pts := r.AliveSeries.Points()
	if pts[0].V != float64(cfg.Nodes) {
		t.Fatalf("alive series starts at %v", pts[0].V)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].V > pts[i-1].V {
			t.Fatal("alive count increased")
		}
	}
}

// Zero traffic: the network idles; only baseline/sleep/tone-idle power and
// cluster-head duty drain; no packets move.
func TestZeroTraffic(t *testing.T) {
	cfg := testConfig()
	cfg.ArrivalRatePerSecond = 0
	r := New(cfg).Run()
	if r.Generated != 0 || r.Delivered != 0 {
		t.Fatalf("zero-rate run moved packets: gen %d del %d", r.Generated, r.Delivered)
	}
	if r.EnergyByCause[energy.DataTx] != 0 {
		t.Fatalf("zero-rate run spent %v J on data tx", r.EnergyByCause[energy.DataTx])
	}
	if r.TotalConsumedJ <= 0 {
		t.Fatal("idle network consumed nothing (baseline/CH duty missing)")
	}
}

// Higher load must not decrease total energy consumption.
func TestLoadMonotonicity(t *testing.T) {
	cfg := testConfig()
	cfg.ArrivalRatePerSecond = 2
	low := New(cfg).Run()
	cfg.ArrivalRatePerSecond = 10
	high := New(cfg).Run()
	if high.TotalConsumedJ <= low.TotalConsumedJ {
		t.Errorf("energy did not grow with load: %.1f (load 2) vs %.1f (load 10)",
			low.TotalConsumedJ, high.TotalConsumedJ)
	}
	if high.Generated <= low.Generated {
		t.Error("generated packets did not grow with load")
	}
}

// Rounds advance on schedule.
func TestRoundRotation(t *testing.T) {
	cfg := testConfig()
	cfg.Horizon = 100 * sim.Second
	cfg.RoundLength = 10 * sim.Second
	r := New(cfg).Run()
	if r.Rounds < 10 || r.Rounds > 11 {
		t.Fatalf("rounds = %d over 100 s with 10 s rounds", r.Rounds)
	}
}

// Tiny network (one head, one member) still works end to end.
func TestTwoNodeNetwork(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 2
	cfg.FieldWidth, cfg.FieldHeight = 20, 20
	r := New(cfg).Run()
	if r.Delivered == 0 {
		t.Fatal("two-node network delivered nothing")
	}
}

// Unbounded buffers (fairness experiment setting) must never drop on
// overflow.
func TestUnboundedBuffers(t *testing.T) {
	cfg := testConfig()
	cfg.BufferCapacity = 0
	cfg.Policy = queueing.PolicyFixedHighest
	r := New(cfg).Run()
	if r.DroppedBuffer != 0 {
		t.Fatalf("unbounded buffers dropped %d packets", r.DroppedBuffer)
	}
}

// Delay accounting: delays are positive and bounded by the run length.
func TestDelayBounds(t *testing.T) {
	r := runPolicy(t, queueing.PolicyAdaptive)
	if r.MeanDelayMs < 0 {
		t.Fatalf("negative mean delay %v", r.MeanDelayMs)
	}
	if r.MaxDelayMs > r.Elapsed.Millis() {
		t.Fatalf("max delay %v ms exceeds run length", r.MaxDelayMs)
	}
	if r.MeanDelayMs > r.MaxDelayMs {
		t.Fatal("mean delay exceeds max delay")
	}
}

// Run panics if invoked twice on the same Network.
func TestRunTwicePanics(t *testing.T) {
	net := New(testConfig())
	net.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	net.Run()
}

func BenchmarkSimulationSecond(b *testing.B) {
	// Cost of simulating one network-second at the paper's scale.
	cfg := DefaultConfig()
	cfg.Horizon = sim.Time(b.N) * sim.Second
	cfg.SampleInterval = 100 * sim.Second
	b.ReportAllocs()
	b.ResetTimer()
	New(cfg).Run()
}

// Per-round statistics must cover the whole run: deliveries and energy
// sum to the totals, rounds tile the timeline.
func TestRoundReports(t *testing.T) {
	cfg := testConfig()
	r := New(cfg).Run()
	if len(r.RoundReports) != r.Rounds {
		t.Fatalf("round reports %d != rounds %d", len(r.RoundReports), r.Rounds)
	}
	var delivered uint64
	var consumed float64
	for i, rs := range r.RoundReports {
		if rs.Index != i {
			t.Fatalf("round %d has index %d", i, rs.Index)
		}
		if rs.End <= rs.Start && i < len(r.RoundReports)-1 {
			t.Fatalf("round %d has no duration (%v..%v)", i, rs.Start, rs.End)
		}
		if rs.Heads < 1 {
			t.Fatalf("round %d elected %d heads", i, rs.Heads)
		}
		if i > 0 && rs.Start != r.RoundReports[i-1].End {
			t.Fatalf("round %d does not start where round %d ended", i, i-1)
		}
		delivered += rs.Delivered
		consumed += rs.ConsumedJ
	}
	if delivered != r.Delivered {
		t.Fatalf("per-round delivered %d != total %d", delivered, r.Delivered)
	}
	if diff := consumed - r.TotalConsumedJ; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("per-round energy %v != total %v", consumed, r.TotalConsumedJ)
	}
}

func TestResultSummaryAndDebugHelpers(t *testing.T) {
	net := New(testConfig())
	if net.Engine() == nil {
		t.Fatal("Engine() nil")
	}
	res := net.Run()
	s := res.Summary()
	for _, want := range []string{"elapsed", "energy", "traffic", "mac", "mode usage"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if d := net.debugString(); !strings.Contains(d, "alive=") {
		t.Errorf("debugString = %q", d)
	}
}

func TestTraceKindStrings(t *testing.T) {
	kinds := TraceKinds()
	if len(kinds) != 14 {
		t.Fatalf("trace kinds = %d", len(kinds))
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "TraceKind(") {
			t.Errorf("kind %d unnamed", int(k))
		}
		if seen[name] {
			t.Errorf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if TraceKind(99).String() != "TraceKind(99)" {
		t.Error("unknown kind fallback wrong")
	}
	e := TraceEvent{T: sim.Second, Kind: TraceDrop, Node: 3, Detail: "buffer"}
	if !strings.Contains(e.String(), "drop") || !strings.Contains(e.String(), "buffer") {
		t.Errorf("event string = %q", e.String())
	}
	e2 := TraceEvent{T: sim.Second, Kind: TraceDeath, Node: 3}
	if !strings.Contains(e2.String(), "death") {
		t.Errorf("event string = %q", e2.String())
	}
}
