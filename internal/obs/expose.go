package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with # HELP
// and # TYPE comments, series sorted by label values, histograms
// expanded into cumulative _bucket/_sum/_count lines.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		series := f.snapshot()
		if len(series) == 0 {
			continue // a family with no series yet has nothing to say
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, s := range series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.typ {
	case TypeCounter:
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.name, labelString(f.labelNames, s.labelValues, "", ""), formatValue(s.counter.Value()))
		return err
	case TypeGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.name, labelString(f.labelNames, s.labelValues, "", ""), formatValue(s.gauge.Value()))
		return err
	case TypeHistogram:
		h := s.histogram
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelString(f.labelNames, s.labelValues, "le", formatValue(bound)), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labelNames, s.labelValues, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, labelString(f.labelNames, s.labelValues, "", ""), formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, labelString(f.labelNames, s.labelValues, "", ""), h.Count())
		return err
	}
	return fmt.Errorf("obs: unknown family type %q", f.typ)
}

// labelString renders a {a="b",...} label block, optionally appending
// one extra label (the histogram le bound); empty when there are no
// labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// Handler returns an http.Handler serving the registry as a
// text-format exposition — the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w)
	})
}
