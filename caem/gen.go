package caem

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/scenario/gen"
)

// GenFamily describes one preset scenario-generator family.
type GenFamily struct {
	// Name is the family identifier (the -gen spelling).
	Name string
	// Description is a one-line human summary of the family's event mix.
	Description string
}

// GeneratorFamilies lists the preset scenario-generator families.
// Between them the presets exercise every world-event category: node
// lifecycle, energy, traffic, channel weather, mobility, interference,
// and sink outages.
func GeneratorFamilies() []GenFamily {
	fams := gen.Families()
	out := make([]GenFamily, len(fams))
	for i, f := range fams {
		out[i] = GenFamily{Name: f.Name, Description: f.Description}
	}
	return out
}

// GenerateScenarios expands a preset family into count scenarios at
// indices 0..count-1. Generation is deterministic: the same (family,
// count, seed) always returns byte-identical specs, so generated
// scenarios content-address through a CampaignStore exactly like
// curated ones — a restarted campaign regenerates the same cells and
// restores their results by hash.
//
// Generated scenarios embed the family's topology (nodes, field,
// duration) as config overrides; resolve them with ScenarioConfig like
// any other scenario.
func GenerateScenarios(family string, count int, seed uint64) ([]Scenario, error) {
	if count < 1 {
		return nil, fmt.Errorf("caem: generate: count %d < 1", count)
	}
	f, err := gen.Find(family)
	if err != nil {
		return nil, fmt.Errorf("caem: %w", err)
	}
	out := make([]Scenario, count)
	for i := range out {
		sc, err := gen.Generate(f, i, seed)
		if err != nil {
			return nil, fmt.Errorf("caem: %w", err)
		}
		out[i] = sc
	}
	return out, nil
}

// ParseGenerate parses the "family:count[:seed]" spelling the CLI and
// HTTP surfaces share (seed defaults to 1) and expands it through
// GenerateScenarios.
func ParseGenerate(spec string) ([]Scenario, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("caem: generate spec %q: want family:count[:seed]", spec)
	}
	count, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("caem: generate spec %q: bad count: %w", spec, err)
	}
	seed := uint64(1)
	if len(parts) == 3 {
		seed, err = strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("caem: generate spec %q: bad seed: %w", spec, err)
		}
	}
	return GenerateScenarios(parts[0], count, seed)
}
