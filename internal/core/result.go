package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/energy"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// RoundStat summarizes one LEACH round: who led, what moved, what it
// cost. The experiment harness uses it to show how rotation spreads the
// cluster-head burden.
type RoundStat struct {
	Index        int
	Start, End   sim.Time
	Heads        int
	AliveAtStart int
	Delivered    uint64
	ConsumedJ    float64
	Collisions   uint64

	deliveredBase  uint64
	consumedBaseJ  float64
	collisionsBase uint64
	closed         bool
}

// NodeReport is the per-node slice of a Result.
type NodeReport struct {
	Index        int
	RemainingJ   float64
	ConsumedJ    float64
	Dead         bool
	DiedAt       sim.Time
	QueueLen     int
	ServiceShare uint64 // packets from this node that reached a sink
	MeanSNRdB    float64
}

// Result is everything a simulation run measured.
type Result struct {
	// Elapsed is the simulated time covered by the run.
	Elapsed sim.Time
	// Rounds is the number of LEACH rounds started.
	Rounds int

	// Energy.
	AvgRemainingJ  float64
	TotalConsumedJ float64
	EnergyByCause  map[energy.Cause]float64
	EnergySeries   *metrics.TimeSeries // avg remaining J vs time (Fig. 8)
	CommEnergyJ    float64             // communication-attributable energy
	EnergyPerPktJ  float64             // CommEnergyJ / Delivered (Fig. 11)

	// Lifetime.
	AliveAtEnd      int
	Deaths          []sim.Time
	AliveSeries     *metrics.TimeSeries // alive count vs time (Fig. 9)
	FirstDeath      sim.Time
	FirstDeathValid bool
	NetworkLifetime sim.Time // time to DeadFraction exhausted (Fig. 10)
	NetworkDead     bool

	// Traffic (§IV.A network performance).
	Generated     uint64
	Delivered     uint64
	DroppedBuffer uint64
	DroppedRetry  uint64
	DeliveryRate  float64
	AggregateKbps float64
	MeanDelayMs   float64
	P95DelayMs    float64
	MaxDelayMs    float64

	// Fairness (Fig. 12).
	QueueStdDev float64

	// MAC behaviour.
	MAC             mac.Counters
	CollisionEvents uint64
	// ForwardedBits is the aggregate payload the heads forwarded to the
	// base station (0 unless the forwarding extension is enabled).
	ForwardedBits uint64
	ModeCounts    []uint64 // delivered packets per ABICM class

	// Per-node detail.
	Nodes []NodeReport

	// RoundReports summarizes each LEACH round.
	RoundReports []RoundStat
}

func (net *Network) buildResult(end sim.Time) Result {
	net.closeRoundStats(end)
	r := Result{
		Elapsed:         end,
		Rounds:          net.rounds,
		EnergyByCause:   make(map[energy.Cause]float64),
		EnergySeries:    net.energySeries,
		AliveSeries:     net.aliveSeries,
		Generated:       net.thr.Generated(),
		Delivered:       net.thr.Delivered(),
		DroppedBuffer:   net.thr.DroppedBuffer(),
		DroppedRetry:    net.thr.DroppedRetry(),
		DeliveryRate:    net.thr.DeliveryRate(),
		AggregateKbps:   net.thr.AggregateKbps(end),
		MeanDelayMs:     net.delays.MeanMs(),
		P95DelayMs:      net.delays.P95Ms(),
		MaxDelayMs:      net.delays.MaxMs(),
		QueueStdDev:     net.fairness.MeanStdDev(),
		CollisionEvents: net.collisionEvents,
		ForwardedBits:   net.forwardedBits,
		ModeCounts:      append([]uint64(nil), net.modeCounts...),
		AliveAtEnd:      net.life.Alive(),
		RoundReports:    append([]RoundStat(nil), net.roundStats...),
		Deaths:          append([]sim.Time(nil), net.life.Deaths()...),
	}
	if t, ok := net.life.FirstDeath(); ok {
		r.FirstDeath, r.FirstDeathValid = t, true
	}
	if t, ok := net.life.NetworkDeadAt(net.cfg.DeadFraction); ok {
		r.NetworkLifetime, r.NetworkDead = t, true
	}

	var sumRemaining float64
	for _, n := range net.nodes {
		sumRemaining += n.battery.Remaining()
		r.TotalConsumedJ += n.battery.Consumed()
		for _, ce := range n.battery.Breakdown() {
			r.EnergyByCause[ce.Cause] += ce.Joules
		}
		r.MAC.Add(n.counters)
		rep := NodeReport{
			Index:        n.idx,
			RemainingJ:   n.battery.Remaining(),
			ConsumedJ:    n.battery.Consumed(),
			Dead:         !n.alive,
			QueueLen:     n.buf.Len(),
			ServiceShare: n.serviceShare,
		}
		if !n.alive {
			// The node's own record, not the battery's: a world-event kill
			// leaves charge behind, and a revived-then-dead node's latest
			// death is the one that matters.
			rep.DiedAt = n.diedAt
		}
		r.Nodes = append(r.Nodes, rep)
	}
	r.AvgRemainingJ = sumRemaining / float64(len(net.nodes))

	// Communication-attributable energy: what Fig. 11 divides by the
	// delivered-packet count. Baseline compute, sleep floors, and the
	// head's idle listening are excluded — they accrue with time, not
	// with packets (DESIGN.md §4).
	for _, c := range []energy.Cause{
		energy.DataTx, energy.DataRx, energy.DataStartup,
		energy.ToneTx, energy.ToneRx, energy.Codec,
	} {
		r.CommEnergyJ += r.EnergyByCause[c]
	}
	if r.Delivered > 0 {
		r.EnergyPerPktJ = r.CommEnergyJ / float64(r.Delivered)
	}
	return r
}

// Summary renders a human-readable digest of the run.
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed            %.1f s over %d LEACH rounds\n", r.Elapsed.Seconds(), r.Rounds)
	fmt.Fprintf(&b, "energy             avg remaining %.3f J, total consumed %.2f J\n", r.AvgRemainingJ, r.TotalConsumedJ)
	fmt.Fprintf(&b, "alive              %d at end", r.AliveAtEnd)
	if r.FirstDeathValid {
		fmt.Fprintf(&b, " (first death %.1f s)", r.FirstDeath.Seconds())
	}
	if r.NetworkDead {
		fmt.Fprintf(&b, ", network lifetime %.1f s", r.NetworkLifetime.Seconds())
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "traffic            generated %d, delivered %d (%.1f%%), buffer drops %d, retry drops %d\n",
		r.Generated, r.Delivered, 100*r.DeliveryRate, r.DroppedBuffer, r.DroppedRetry)
	fmt.Fprintf(&b, "performance        throughput %.1f kbps, mean delay %.2f ms (p95 %.2f ms), queue stddev %.2f\n",
		r.AggregateKbps, r.MeanDelayMs, r.P95DelayMs, r.QueueStdDev)
	fmt.Fprintf(&b, "per-packet energy  %.3f mJ over the air (comm energy %.2f J)\n",
		1000*r.EnergyPerPktJ, r.CommEnergyJ)
	fmt.Fprintf(&b, "mac                attempts %d, bursts %d, collisions %d (events %d), channel fails %d\n",
		r.MAC.Attempts, r.MAC.BurstsDone, r.MAC.Collisions, r.CollisionEvents, r.MAC.ChannelFails)
	fmt.Fprintf(&b, "deferrals          csi %d, busy %d\n", r.MAC.DeferralsCSI, r.MAC.DeferralsBusy)

	type ce struct {
		c energy.Cause
		j float64
	}
	var causes []ce
	for c, j := range r.EnergyByCause {
		causes = append(causes, ce{c, j})
	}
	sort.Slice(causes, func(i, j int) bool { return causes[i].j > causes[j].j })
	b.WriteString("energy breakdown  ")
	for _, x := range causes {
		fmt.Fprintf(&b, " %s=%.2fJ", x.c, x.j)
	}
	b.WriteByte('\n')
	if len(r.ModeCounts) > 0 {
		b.WriteString("mode usage        ")
		for i, c := range r.ModeCounts {
			fmt.Fprintf(&b, " class%d=%d", i, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
