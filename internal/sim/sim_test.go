package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		t    Time
		secs float64
	}{
		{0, 0},
		{Microsecond, 1e-6},
		{Millisecond, 1e-3},
		{Second, 1},
		{90 * Second, 90},
	}
	for _, c := range cases {
		if got := c.t.Seconds(); got != c.secs {
			t.Errorf("%v.Seconds() = %v, want %v", c.t, got, c.secs)
		}
		if got := FromSeconds(c.secs); got != c.t {
			t.Errorf("FromSeconds(%v) = %v, want %v", c.secs, got, c.t)
		}
	}
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis = %v, want 1.5", got)
	}
	if got := FromSeconds(-1.5); got != -1500*Millisecond {
		t.Errorf("FromSeconds(-1.5) = %v", got)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	e.Schedule(30*Millisecond, func() { order = append(order, e.Now()) })
	e.Schedule(10*Millisecond, func() { order = append(order, e.Now()) })
	e.Schedule(20*Millisecond, func() { order = append(order, e.Now()) })
	e.Run(Second)
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event %d ran at %v, want %v", i, order[i], want[i])
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Millisecond, func() { order = append(order, i) })
	}
	e.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("tied events ran out of scheduling order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(Millisecond, func() {
		hits = append(hits, e.Now())
		e.Schedule(Millisecond, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run(Second)
	if len(hits) != 2 || hits[0] != Millisecond || hits[1] != 2*Millisecond {
		t.Fatalf("nested scheduling produced %v", hits)
	}
}

func TestHorizonStopsAndAdvancesClock(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(2*Second, func() { ran = true })
	e.Run(Second)
	if ran {
		t.Fatal("event past the horizon ran")
	}
	if e.Now() != Second {
		t.Fatalf("clock = %v after Run(1s), want 1s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// A second Run picks the event up.
	e.Run(3 * Second)
	if !ran {
		t.Fatal("event did not run on the extended horizon")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.Schedule(Millisecond, func() { ran = true })
	if !id.Valid() {
		t.Fatal("fresh event id not valid")
	}
	if !e.Cancel(id) {
		t.Fatal("cancel of pending event returned false")
	}
	if id.Valid() {
		t.Fatal("cancelled id still valid")
	}
	if e.Cancel(id) {
		t.Fatal("double cancel returned true")
	}
	e.Run(Second)
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelExecutedEvent(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(Millisecond, func() {})
	e.Run(Second)
	if e.Cancel(id) {
		t.Fatal("cancelling an executed event returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	ids := make([]EventID, 10)
	for i := 0; i < 10; i++ {
		i := i
		ids[i] = e.Schedule(Time(i+1)*Millisecond, func() { got = append(got, i) })
	}
	e.Cancel(ids[4])
	e.Cancel(ids[7])
	e.Run(Second)
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(Second)
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d after Stop, want 7", e.Pending())
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		e.ScheduleAt(0, func() {})
	})
	e.Run(2 * Second)
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestRunAll(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(5*Second, func() { count++ })
	e.Schedule(10*Second, func() { count++ })
	e.RunAll()
	if count != 2 {
		t.Fatalf("RunAll executed %d events, want 2", count)
	}
	if e.Now() != 10*Second {
		t.Fatalf("clock = %v, want 10s", e.Now())
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i+1), func() {})
	}
	e.Run(Second)
	if e.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed())
	}
}

func TestTimer(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e)
	fired := 0
	tm.Arm(10*Millisecond, func() { fired++ })
	if !tm.Armed() {
		t.Fatal("timer not armed after Arm")
	}
	// Re-arming replaces the pending shot.
	tm.Arm(20*Millisecond, func() { fired += 100 })
	e.Run(Second)
	if fired != 100 {
		t.Fatalf("fired = %d, want 100 (re-armed shot only)", fired)
	}
	tm.Arm(10*Millisecond, func() { fired++ })
	tm.Disarm()
	if tm.Armed() {
		t.Fatal("timer armed after Disarm")
	}
	e.Run(2 * Second)
	if fired != 100 {
		t.Fatalf("disarmed shot fired (fired=%d)", fired)
	}
}

// Property: random schedules always execute in non-decreasing time order,
// with ties in scheduling order.
func TestOrderingProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%500) + 2
		r := rng.NewSource(seed).Stream("simtest", 0)
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var execd []rec
		for i := 0; i < n; i++ {
			i := i
			at := Time(r.Intn(1000)) * Millisecond
			e.ScheduleAt(at, func() { execd = append(execd, rec{e.Now(), i}) })
		}
		e.Run(2000 * Second)
		if len(execd) != n {
			return false
		}
		for i := 1; i < len(execd); i++ {
			if execd[i].at < execd[i-1].at {
				return false
			}
			if execd[i].at == execd[i-1].at && execd[i].seq < execd[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The schedule/execute cycle must not allocate once the arena has grown
// to the working set: slots are recycled through the free list and the
// 4-ary heap is index-based, so the steady-state event loop is
// allocation-free (the closure below is hoisted out of the measured
// region by being allocated once).
func TestScheduleExecuteZeroAlloc(t *testing.T) {
	e := NewEngine()
	var churn func()
	churn = func() {
		if e.Now() < 100*Second {
			e.Schedule(Millisecond, churn)
		}
	}
	// Warm-up: grow the arena, free list, and heap to steady state.
	e.Schedule(Millisecond, churn)
	e.Run(Second)

	allocs := testing.AllocsPerRun(100, func() {
		horizon := e.Now() + 100*Millisecond
		e.Run(horizon)
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/execute allocated %.1f times per run, want 0", allocs)
	}
}

// Cancelled slots must drain and be reused rather than growing the arena.
func TestCancelledSlotsAreRecycled(t *testing.T) {
	e := NewEngine()
	for round := 0; round < 1000; round++ {
		id := e.Schedule(Millisecond, func() {})
		e.Cancel(id)
		e.Run(e.Now() + 2*Millisecond)
	}
	if got := len(e.arena); got > 4 {
		t.Fatalf("arena grew to %d slots under schedule/cancel churn, want <= 4", got)
	}
}

// A stale EventID (its slot recycled by a newer event) must neither
// validate nor cancel the new occupant.
func TestStaleEventIDAfterSlotReuse(t *testing.T) {
	e := NewEngine()
	ran := false
	old := e.Schedule(Millisecond, func() {})
	e.Run(Second) // executes and releases the slot
	fresh := e.Schedule(Millisecond, func() { ran = true })
	if old.Valid() {
		t.Fatal("stale id still valid after slot reuse")
	}
	if e.Cancel(old) {
		t.Fatal("stale id cancelled the slot's new occupant")
	}
	if !fresh.Valid() {
		t.Fatal("fresh id not valid")
	}
	e.Run(2 * Second)
	if !ran {
		t.Fatal("new occupant did not run")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	var churn func()
	i := 0
	churn = func() {
		i++
		if i < b.N {
			e.Schedule(Microsecond, churn)
		}
	}
	e.Schedule(Microsecond, churn)
	b.ResetTimer()
	e.RunAll()
}
