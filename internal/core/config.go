// Package core assembles the full CAEM simulation: it drives the sensor
// and cluster-head state machines (internal/mac) from the discrete-event
// engine (internal/sim), samples the fading channel (internal/channel)
// exactly when the protocol learns the CSI (at tone pulses,
// internal/tone), charges the energy model (internal/energy), rotates
// clusters with LEACH (internal/leach), and collects the paper's metrics
// (internal/metrics).
//
// One Network value is one simulation run of one protocol variant; the
// experiment harness (internal/experiment) composes runs into the paper's
// figures.
package core

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/energy"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/tone"
)

// Config fully specifies one simulation run.
type Config struct {
	// Seed roots every random stream in the run.
	Seed uint64
	// Nodes is the network size (100 in Table II).
	Nodes int
	// FieldWidth and FieldHeight define the testing field in meters.
	FieldWidth, FieldHeight float64

	// Policy selects the protocol variant: PolicyNone = pure LEACH,
	// PolicyFixedHighest = Scheme 2, PolicyAdaptive = Scheme 1.
	Policy queueing.ThresholdPolicy

	// ArrivalRatePerSecond is the Poisson traffic load per node (the
	// paper's "added traffic load", 5..30 pkt/s).
	ArrivalRatePerSecond float64
	// NodeArrivalRate, when non-empty, overrides ArrivalRatePerSecond per
	// node (len must equal Nodes). The scenario engine uses it for
	// heterogeneous traffic profiles such as hotspot clusters.
	NodeArrivalRate []float64
	// PacketSizeBits is the information payload per packet (2 Kbits).
	PacketSizeBits int
	// BufferCapacity is the node buffer in packets (50; 0 = unbounded,
	// used by the fairness experiment per §IV.C).
	BufferCapacity int

	// InitialEnergyJ is the battery budget per node (10 J).
	InitialEnergyJ float64
	// NodeEnergyJ, when non-empty, overrides InitialEnergyJ per node (len
	// must equal Nodes) for heterogeneous battery budgets.
	NodeEnergyJ []float64

	// RoundLength is the LEACH round duration.
	RoundLength sim.Time
	// HeadFraction is LEACH's P (0.05).
	HeadFraction float64

	Device  energy.DeviceModel
	Channel channel.Params
	Modes   phy.Table
	Codec   phy.CodecEnergyModel
	Tone    tone.Scheme
	MAC     mac.Config
	Adjust  queueing.AdjusterConfig
	CSI     tone.CSIEstimator

	// Horizon bounds simulated time.
	Horizon sim.Time
	// SampleInterval is the cadence of the Fig. 8/9 time series and the
	// Fig. 12 fairness snapshots.
	SampleInterval sim.Time
	// BookkeepingInterval is the cadence of continuous-power accrual and
	// death checks between discrete events.
	BookkeepingInterval sim.Time

	// DetectWindow is the CSMA vulnerable window: a contender whose
	// backoff expires within this window of a burst start cannot yet
	// detect the transmission and causes a collision. §III.B's "the
	// sensor again checks whether the channel is free" is modelled as
	// listen-before-talk during the data radio's startup, so the window
	// is the carrier-detect turnaround, not the (much longer) latency of
	// the first receive-tone pulse.
	DetectWindow sim.Time
	// CollisionResolveDelay is the time from the colliding overlap to
	// the cluster head's collision tone reaching the senders.
	CollisionResolveDelay sim.Time

	// DeadFraction defines "network dead": the fraction of exhausted
	// nodes at which the network lifetime is declared (DESIGN.md: 0.8).
	DeadFraction float64
	// StopWhenNetworkDead ends the run at the DeadFraction crossing
	// instead of simulating to the horizon.
	StopWhenNetworkDead bool

	// BaseStationForwarding enables the extension the paper defines but
	// defers ("the sink is sending processed data to the base station
	// (we do not consider this in this paper at this stage)"): cluster
	// heads periodically forward aggregated data to the base station,
	// advertising the busy data channel with transmit tone pulses.
	// Off by default, so the paper's experiments are unaffected.
	BaseStationForwarding bool
	// ForwardInterval is how often a head flushes its aggregate.
	ForwardInterval sim.Time
	// AggregationRatio is the fraction of received payload bits that
	// survive in-cluster aggregation and must be forwarded (LEACH's
	// premise is that correlated data compresses well).
	AggregationRatio float64

	// CSINoiseSigmaDB models imperfect channel estimation: the CSI a
	// sensor infers from the tone pulse is the true SNR plus zero-mean
	// Gaussian error of this spread. The paper assumes perfect
	// reciprocity (§III.A assumptions 1-2); the A4 ablation uses this
	// knob to test how much estimation error CAEM's admission decisions
	// tolerate. Only the admission check is affected — the per-packet
	// mode choice still uses the receive-tone feedback loop, which
	// tracks the channel continuously.
	CSINoiseSigmaDB float64

	// World is the timeline of external world mutations (node failures,
	// revivals, battery service, traffic shifts, channel weather) applied
	// during the run. Events are scheduled into the discrete-event engine
	// before the first protocol event, so a given timeline is executed
	// deterministically. See internal/scenario for the declarative layer
	// that compiles to this field.
	World []WorldEvent

	// Trace, when non-nil, receives every protocol-level event
	// synchronously (round starts, FSM transitions, bursts, deliveries,
	// collisions, drops, deferrals, deaths). The callback must not
	// mutate simulation state. Nil (the default) costs nothing.
	Trace func(TraceEvent)
}

// DefaultConfig returns the Table II parameter set with the DESIGN.md §4
// resolutions, at the paper's reference load of 5 pkt/s, running Scheme 1.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		Nodes:                 100,
		FieldWidth:            100,
		FieldHeight:           100,
		Policy:                queueing.PolicyAdaptive,
		ArrivalRatePerSecond:  5,
		PacketSizeBits:        2000,
		BufferCapacity:        50,
		InitialEnergyJ:        10,
		RoundLength:           20 * sim.Second,
		HeadFraction:          0.05,
		Device:                energy.DefaultDeviceModel(),
		Channel:               channel.DefaultParams(),
		Modes:                 phy.Default4Mode(),
		Codec:                 phy.DefaultCodecEnergy(),
		Tone:                  tone.DefaultScheme(),
		MAC:                   mac.DefaultConfig(),
		Adjust:                queueing.DefaultAdjusterConfig(),
		CSI:                   tone.CSIEstimator{},
		Horizon:               2000 * sim.Second,
		SampleInterval:        5 * sim.Second,
		BookkeepingInterval:   500 * sim.Millisecond,
		DetectWindow:          40 * sim.Microsecond,
		CollisionResolveDelay: 1 * sim.Millisecond,
		DeadFraction:          0.8,
		StopWhenNetworkDead:   false,
		BaseStationForwarding: false,
		ForwardInterval:       2 * sim.Second,
		AggregationRatio:      0.1,
	}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("netsim: Nodes = %d, need >= 2 (a head and a member)", c.Nodes)
	case c.FieldWidth <= 0 || c.FieldHeight <= 0:
		return fmt.Errorf("netsim: field %vx%v not positive", c.FieldWidth, c.FieldHeight)
	case c.ArrivalRatePerSecond < 0:
		return fmt.Errorf("netsim: negative arrival rate %v", c.ArrivalRatePerSecond)
	case c.PacketSizeBits <= 0:
		return fmt.Errorf("netsim: PacketSizeBits = %d", c.PacketSizeBits)
	case c.BufferCapacity < 0:
		return fmt.Errorf("netsim: negative BufferCapacity %d", c.BufferCapacity)
	case c.InitialEnergyJ <= 0:
		return fmt.Errorf("netsim: InitialEnergyJ = %v", c.InitialEnergyJ)
	case c.RoundLength <= 0:
		return fmt.Errorf("netsim: RoundLength = %v", c.RoundLength)
	case c.HeadFraction <= 0 || c.HeadFraction > 1:
		return fmt.Errorf("netsim: HeadFraction %v outside (0, 1]", c.HeadFraction)
	case c.Horizon <= 0:
		return fmt.Errorf("netsim: Horizon = %v", c.Horizon)
	case c.SampleInterval <= 0:
		return fmt.Errorf("netsim: SampleInterval = %v", c.SampleInterval)
	case c.BookkeepingInterval <= 0:
		return fmt.Errorf("netsim: BookkeepingInterval = %v", c.BookkeepingInterval)
	case c.DetectWindow < 0:
		return fmt.Errorf("netsim: negative DetectWindow %v", c.DetectWindow)
	case c.CollisionResolveDelay < 0:
		return fmt.Errorf("netsim: negative CollisionResolveDelay %v", c.CollisionResolveDelay)
	case c.DeadFraction <= 0 || c.DeadFraction > 1:
		return fmt.Errorf("netsim: DeadFraction %v outside (0, 1]", c.DeadFraction)
	case c.Modes.Len() == 0:
		return fmt.Errorf("netsim: empty mode table")
	case c.Adjust.Classes != c.Modes.Len():
		return fmt.Errorf("netsim: Adjust.Classes = %d but mode table has %d classes", c.Adjust.Classes, c.Modes.Len())
	case c.BaseStationForwarding && c.ForwardInterval <= 0:
		return fmt.Errorf("netsim: forwarding enabled but ForwardInterval = %v", c.ForwardInterval)
	case c.BaseStationForwarding && (c.AggregationRatio <= 0 || c.AggregationRatio > 1):
		return fmt.Errorf("netsim: AggregationRatio %v outside (0, 1]", c.AggregationRatio)
	case c.CSINoiseSigmaDB < 0:
		return fmt.Errorf("netsim: negative CSINoiseSigmaDB %v", c.CSINoiseSigmaDB)
	}
	if err := c.Device.Validate(); err != nil {
		return err
	}
	if err := c.Channel.Validate(); err != nil {
		return err
	}
	if err := c.Tone.Validate(); err != nil {
		return err
	}
	if err := c.MAC.Validate(); err != nil {
		return err
	}
	if err := c.Adjust.Validate(); err != nil {
		return err
	}
	if len(c.NodeArrivalRate) != 0 {
		if len(c.NodeArrivalRate) != c.Nodes {
			return fmt.Errorf("netsim: NodeArrivalRate has %d entries for %d nodes", len(c.NodeArrivalRate), c.Nodes)
		}
		for i, r := range c.NodeArrivalRate {
			if r < 0 {
				return fmt.Errorf("netsim: NodeArrivalRate[%d] = %v is negative", i, r)
			}
		}
	}
	if len(c.NodeEnergyJ) != 0 {
		if len(c.NodeEnergyJ) != c.Nodes {
			return fmt.Errorf("netsim: NodeEnergyJ has %d entries for %d nodes", len(c.NodeEnergyJ), c.Nodes)
		}
		for i, e := range c.NodeEnergyJ {
			if e <= 0 {
				return fmt.Errorf("netsim: NodeEnergyJ[%d] = %v is not positive", i, e)
			}
		}
	}
	for i, ev := range c.World {
		if ev.At < 0 {
			return fmt.Errorf("netsim: World[%d] at negative time %v", i, ev.At)
		}
		if ev.Apply == nil {
			return fmt.Errorf("netsim: World[%d] has a nil Apply", i)
		}
	}
	return nil
}
