// Package journal is the coordinator's write-ahead log: an append-only
// JSONL record of every scheduling decision — campaign submissions,
// lease grants and renewals, settlements, retry counts, and poisons —
// durable enough that a restarted or successor coordinator rebuilds its
// exact queue/lease/backoff state instead of re-planning from store
// contents alone.
//
// The on-disk idioms mirror the results store: records are appended
// with WriteAt at a validated offset and fsynced, and Open truncates a
// torn tail (a crash mid-append) back to the last whole record. Each
// leadership epoch writes its own file, epoch-<n>.jsonl, whose first
// record is a snapshot of the fully-replayed predecessor state; once
// the new epoch's snapshot is durable, older epoch files are deleted.
// Replay therefore folds files in epoch order, each snapshot replacing
// the accumulated state, so recovery converges no matter where a crash
// interleaved with the hand-off.
//
// Durability is graded by what a lost record costs. Submissions,
// settlements, retry counts, and poisons are fsynced — losing one
// would re-run settled work, reset a poison budget, or resurrect a
// poisoned cell. Grants and renewals are appended without fsync: a
// lost grant merely re-queues cells the next leader would have
// reclaimed from the dead epoch anyway, and determinism makes the
// duplicate execution harmless.
//
// The journal stores cell payloads as opaque JSON keyed by the cell's
// queue key; it knows nothing of the cluster package's types, so the
// cluster coordinator can depend on it without a cycle.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// SubmitCell is one queued cell: its queue key plus the opaque payload
// the coordinator needs to reconstruct it on replay.
type SubmitCell struct {
	Key  string          `json:"k"`
	Cell json.RawMessage `json:"c"`
}

// State is the replayed journal: everything a successor coordinator
// needs to resume scheduling exactly where the last leader stopped.
// Queue holds every unsettled cell in recovery order — ready cells
// first, then cells reclaimed from the dead epoch's outstanding leases
// in grant order. Attempts carries absolute per-key failure counts
// (so a replayed retry cannot double-count), Settled the terminally
// settled keys, and Poisoned the opaque poison reports.
type State struct {
	Epoch    int64
	Queue    []SubmitCell
	Settled  map[string]bool
	Attempts map[string]int
	Poisoned map[string]json.RawMessage

	// leased tracks granted-but-unsettled payloads during replay so a
	// dead epoch's outstanding leases can be reclaimed onto the queue.
	// Always empty in a returned State.
	leased map[string]json.RawMessage
}

// hasKey reports whether the key is queued or leased.
func (st *State) hasKey(key string) bool {
	if _, ok := st.leased[key]; ok {
		return true
	}
	for _, q := range st.Queue {
		if q.Key == key {
			return true
		}
	}
	return false
}

// takeQueued removes the key from the queue, returning its payload.
func (st *State) takeQueued(key string) (json.RawMessage, bool) {
	for i, q := range st.Queue {
		if q.Key == key {
			st.Queue = append(st.Queue[:i], st.Queue[i+1:]...)
			return q.Cell, true
		}
	}
	return nil, false
}

// record is one JSONL line. T selects the variant; unused fields are
// omitted.
type record struct {
	T string `json:"t"` // snap | submit | grant | renew | settle | retry | poison

	// snap
	Epoch    int64                      `json:"epoch,omitempty"`
	Queue    []SubmitCell               `json:"queue,omitempty"`
	Settled  []string                   `json:"settled,omitempty"`
	Attempts map[string]int             `json:"attempts,omitempty"`
	Poisoned map[string]json.RawMessage `json:"poisoned,omitempty"`

	// submit
	Cells []SubmitCell `json:"cells,omitempty"`

	// grant / renew / settle / retry / poison
	Lease string          `json:"lease,omitempty"`
	Keys  []string        `json:"keys,omitempty"`
	Key   string          `json:"k,omitempty"`
	N     int             `json:"n,omitempty"`
	Cell  json.RawMessage `json:"c,omitempty"`
}

// Metric families owned by this package.
const (
	metricAppends   = "caem_journal_appends_total"
	metricBytes     = "caem_journal_bytes_total"
	metricFsync     = "caem_journal_fsync_seconds"
	metricReplayed  = "caem_journal_replayed_records"
	metricRecovered = "caem_journal_recovered_bytes"
)

type metrics struct {
	appends   *obs.Counter
	bytes     *obs.Counter
	fsync     *obs.Histogram
	replayed  *obs.Gauge
	recovered *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		appends: reg.Counter(metricAppends,
			"Records appended to the coordinator journal."),
		bytes: reg.Counter(metricBytes,
			"Bytes appended to the coordinator journal."),
		fsync: reg.Histogram(metricFsync,
			"Journal fsync latency in seconds (durable records only).",
			obs.LatencyBuckets),
		replayed: reg.Gauge(metricReplayed,
			"Journal records replayed by the last Open."),
		recovered: reg.Gauge(metricRecovered,
			"Torn-tail bytes truncated from the journal by the last Open."),
	}
}

// RegisterMetrics registers every metric family this package can emit
// on reg — the catalog surface used by the obs-check lint.
func RegisterMetrics(reg *obs.Registry) {
	newMetrics(reg)
}

// Journal is an open coordinator write-ahead log. After Open replays
// the directory, Begin starts the caller's epoch file; the append
// methods are then safe for concurrent use.
type Journal struct {
	dir string

	mu        sync.Mutex
	f         *os.File // current epoch file, nil until Begin
	size      int64    // validated length of the current file
	epoch     int64
	replayed  int
	recovered int64
	met       *metrics
}

// Open replays every epoch file under dir (creating it if absent) and
// returns the journal plus the folded state. The newest file's torn
// tail, if any, is truncated back to the last whole record; older
// files are read-only and merely stop parsing at a tear. Open does not
// start an epoch — call Begin before appending.
func Open(dir string) (*Journal, State, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, State{}, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir}
	files, err := j.epochFiles()
	if err != nil {
		return nil, State{}, err
	}
	st := emptyState()
	for i, name := range files {
		truncate := i == len(files)-1 // only the live tail is repaired
		if err := j.replayFile(filepath.Join(dir, name), &st, truncate); err != nil {
			return nil, State{}, err
		}
	}
	return j, st, nil
}

func emptyState() State {
	return State{
		Settled:  make(map[string]bool),
		Attempts: make(map[string]int),
		Poisoned: make(map[string]json.RawMessage),
		leased:   make(map[string]json.RawMessage),
	}
}

// epochFiles lists epoch-*.jsonl names in epoch order.
func (j *Journal) epochFiles() ([]string, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := epochOf(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(a, b int) bool {
		ea, _ := epochOf(names[a])
		eb, _ := epochOf(names[b])
		return ea < eb
	})
	return names, nil
}

func epochOf(name string) (int64, bool) {
	if !strings.HasPrefix(name, "epoch-") || !strings.HasSuffix(name, ".jsonl") {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "epoch-"), ".jsonl"), 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func epochFile(epoch int64) string { return fmt.Sprintf("epoch-%d.jsonl", epoch) }

// replayFile folds one epoch file into st, stopping at the first torn
// or undecodable line. When truncate is set the tear is cut off the
// file so the next append extends a clean tail.
func (j *Journal) replayFile(path string, st *State, truncate bool) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	// inflight mirrors the epoch's outstanding leases: grant moves keys
	// out of the queue, settle/retry/poison remove them, and whatever is
	// left at EOF belonged to a leader that died — those cells re-queue.
	inflight := make(map[string][]string) // lease id → keys, insertion-ordered
	var grantOrder []string
	valid := int64(0)
	for len(blob) > 0 {
		nl := bytes.IndexByte(blob, '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		line := blob[:nl]
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail: undecodable line
		}
		j.applyRecord(st, rec, inflight, &grantOrder)
		j.replayed++
		valid += int64(nl + 1)
		blob = blob[nl+1:]
	}
	if rest := int64(len(blob)); rest > 0 {
		j.recovered += rest
		if truncate {
			if err := os.Truncate(path, valid); err != nil {
				return fmt.Errorf("journal: truncating torn tail: %w", err)
			}
		}
	}
	// Reclaim cells this file's dead epoch still had leased, in grant
	// order: keys settled, retried, or poisoned after their grant have
	// already left the leased set and are skipped naturally.
	for _, id := range grantOrder {
		for _, key := range inflight[id] {
			if cell, ok := st.leased[key]; ok {
				delete(st.leased, key)
				st.Queue = append(st.Queue, SubmitCell{Key: key, Cell: cell})
			}
		}
	}
	return nil
}

func (j *Journal) applyRecord(st *State, rec record, inflight map[string][]string, grantOrder *[]string) {
	switch rec.T {
	case "snap":
		// A snapshot replaces everything accumulated so far — it is the
		// new epoch's authoritative view of its predecessors.
		*st = emptyState()
		st.Epoch = rec.Epoch
		st.Queue = append(st.Queue, rec.Queue...)
		for _, k := range rec.Settled {
			st.Settled[k] = true
		}
		for k, n := range rec.Attempts {
			st.Attempts[k] = n
		}
		for k, rep := range rec.Poisoned {
			st.Poisoned[k] = rep
			st.Settled[k] = true
		}
		for id := range inflight {
			delete(inflight, id)
		}
		*grantOrder = (*grantOrder)[:0]
	case "submit":
		for _, c := range rec.Cells {
			if st.Settled[c.Key] || st.hasKey(c.Key) {
				continue // replayed duplicate
			}
			st.Queue = append(st.Queue, c)
		}
	case "grant":
		if _, seen := inflight[rec.Lease]; !seen {
			*grantOrder = append(*grantOrder, rec.Lease)
		}
		for _, key := range rec.Keys {
			if cell, ok := st.takeQueued(key); ok {
				st.leased[key] = cell
				inflight[rec.Lease] = append(inflight[rec.Lease], key)
			}
		}
	case "renew":
		// Renewals carry no state; they exist so the journal is a
		// complete lease-lifecycle record for post-mortems.
	case "settle":
		for _, key := range rec.Keys {
			st.Settled[key] = true
			st.takeQueued(key)
			delete(st.leased, key)
		}
	case "retry":
		// Absolute count: replaying the same record twice cannot
		// double-charge the poison budget.
		if rec.N > st.Attempts[rec.Key] {
			st.Attempts[rec.Key] = rec.N
		}
		// The cell leaves its lease and waits out a backoff; on recovery
		// it is simply ready again.
		if cell, ok := st.leased[rec.Key]; ok {
			delete(st.leased, rec.Key)
			if !st.Settled[rec.Key] {
				st.Queue = append(st.Queue, SubmitCell{Key: rec.Key, Cell: cell})
			}
		}
	case "poison":
		if rec.N > st.Attempts[rec.Key] {
			st.Attempts[rec.Key] = rec.N
		}
		st.Settled[rec.Key] = true
		st.Poisoned[rec.Key] = rec.Cell
		st.takeQueued(rec.Key)
		delete(st.leased, rec.Key)
	}
}

// Begin starts the given epoch: it writes a new epoch file whose first
// record snapshots snap, fsyncs it, points the journal's appends at
// it, and deletes older epoch files (their content now lives in the
// snapshot). Safe to call on a fresh journal with an empty state.
func (j *Journal) Begin(epoch int64, snap State) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	path := filepath.Join(j.dir, epochFile(epoch))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	rec := record{
		T:        "snap",
		Epoch:    epoch,
		Queue:    snap.Queue,
		Attempts: snap.Attempts,
		Poisoned: snap.Poisoned,
	}
	for k := range snap.Settled {
		rec.Settled = append(rec.Settled, k)
	}
	sort.Strings(rec.Settled)
	if j.f != nil {
		j.f.Close()
	}
	j.f, j.size, j.epoch = f, 0, epoch
	if err := j.appendLocked(rec, true); err != nil {
		return err
	}
	// Make the new epoch file's directory entry durable BEFORE unlinking
	// predecessors: fsyncing the record's content alone leaves the
	// creation in the directory's dirty page, and a crash could persist
	// the unlinks while losing the creation — zero epoch files, total
	// loss of the state the WAL exists to preserve.
	if err := syncDir(j.dir); err != nil {
		return err
	}
	// The snapshot is durable; predecessors are now redundant.
	files, err := j.epochFiles()
	if err != nil {
		return err
	}
	for _, name := range files {
		if e, _ := epochOf(name); e < epoch {
			os.Remove(filepath.Join(j.dir, name))
		}
	}
	return syncDir(j.dir)
}

// syncDir fsyncs the directory itself, making file creations and
// unlinks inside it durable — the content fsync in appendLocked covers
// only the file's bytes, not its directory entry.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}

// appendLocked writes one record line at the validated offset,
// fsyncing when durable. Caller holds mu.
func (j *Journal) appendLocked(rec record, durable bool) error {
	if j.f == nil {
		return fmt.Errorf("journal: append before Begin")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.WriteAt(line, j.size); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if durable {
		start := time.Now()
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
		if j.met != nil {
			j.met.fsync.Observe(time.Since(start).Seconds())
		}
	}
	j.size += int64(len(line))
	if j.met != nil {
		j.met.appends.Inc()
		j.met.bytes.Add(float64(len(line)))
	}
	return nil
}

func (j *Journal) append(rec record, durable bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(rec, durable)
}

// Submit records newly queued cells. Durable: losing a submission
// would lose the cells until the campaign is re-planned.
func (j *Journal) Submit(cells []SubmitCell) error {
	return j.append(record{T: "submit", Cells: cells}, true)
}

// Grant records a lease hand-out. Not fsynced: a lost grant only
// re-queues cells a successor would reclaim from the dead epoch anyway.
func (j *Journal) Grant(leaseID string, keys []string) error {
	return j.append(record{T: "grant", Lease: leaseID, Keys: keys}, false)
}

// Renew records a heartbeat. Not fsynced; informational only.
func (j *Journal) Renew(leaseID string) error {
	return j.append(record{T: "renew", Lease: leaseID}, false)
}

// Settle records terminal settlement of the given keys. Durable:
// losing a settlement would re-run settled work after failover.
func (j *Journal) Settle(keys []string) error {
	return j.append(record{T: "settle", Keys: keys}, true)
}

// Retry records a cell failure with its absolute attempt count.
// Durable: losing it would reset the poison budget across failover.
func (j *Journal) Retry(key string, attempts int) error {
	return j.append(record{T: "retry", Key: key, N: attempts}, true)
}

// Poison records a terminally failed cell with its opaque report.
// Durable: a resurrected poisoned cell would livelock the successor.
func (j *Journal) Poison(key string, attempts int, report json.RawMessage) error {
	return j.append(record{T: "poison", Key: key, N: attempts, Cell: report}, true)
}

// Epoch returns the epoch Begin started, 0 before Begin.
func (j *Journal) Epoch() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// ReplayedRecords reports how many records the Open replay folded.
func (j *Journal) ReplayedRecords() int { return j.replayed }

// RecoveredBytes reports the torn-tail bytes Open dropped.
func (j *Journal) RecoveredBytes() int64 { return j.recovered }

// Observe attaches the journal's instruments to reg and publishes the
// replay gauges.
func (j *Journal) Observe(reg *obs.Registry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.met = newMetrics(reg)
	j.met.replayed.Set(float64(j.replayed))
	j.met.recovered.Set(float64(j.recovered))
}

// Close closes the current epoch file, if any.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
