// Package caem is the public API of the CAEM reproduction: channel
// adaptive energy management for wireless sensor networks (Lin & Kwok,
// ICPP Workshops 2005).
//
// The package runs whole-network discrete-event simulations of a
// cluster-based (LEACH) sensor network under one of three protocols:
//
//   - PureLEACH — the baseline without channel-adaptive scheduling: a
//     node transmits whenever it holds a minimum burst and the channel is
//     idle, regardless of link quality.
//   - Scheme2 — CAEM with the transmission threshold fixed at the highest
//     ABICM class (2 Mbps): maximal energy saving, worst fairness.
//   - Scheme1 — CAEM with adaptive threshold adjustment driven by queue
//     dynamics: a balance between energy and service quality.
//
// A minimal run:
//
//	cfg := caem.DefaultConfig()
//	cfg.Protocol = caem.Scheme1
//	res, err := caem.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.Summary())
//
// Everything is deterministic given Config.Seed: equal configurations
// produce bit-identical Results at any worker count, serial or
// parallel, fresh or pooled. That contract (see ARCHITECTURE.md) is
// what makes every higher layer trustworthy — parallel sweeps, resident
// context reuse, and resumed campaigns all promise byte-identical
// output.
//
// # Entry points
//
// Single runs: Run executes one configuration; RunScenario layers a
// declarative dynamic-world Scenario (node churn, traffic shifts,
// channel weather — see LoadScenario and LibraryScenarios) over it.
//
// Grids: RunComparison holds everything fixed and varies the protocol —
// the paper's core experimental pattern; RunSeeds replicates one
// configuration across seeds; RunCampaign expands a full scenario ×
// protocol × seed grid through the worker pool. AggregateCampaign and
// AggregateOf collapse replicated results into mean ± 95% CI summaries.
//
// Services: SimPool gives long-running callers a resident simulation
// context (reset in place between runs, never rebuilt). OpenStore opens
// the persistent campaign results store, and RunCampaignWith adds a
// store sink plus checkpoint/resume on top of RunCampaign — the engine
// behind cmd/caem-serve, the always-on HTTP campaign service, and the
// -store/-resume flags of cmd/caem-sim.
package caem
