package obs_test

import (
	"os"

	"repro/internal/obs"
)

// Example shows the full life of a metric: register on a Registry,
// update the instrument from the hot path, and render the Prometheus
// text exposition.
func Example() {
	reg := obs.NewRegistry()
	cells := reg.CounterVec("caem_worker_cells_completed_total",
		"Cells completed by each worker.", "worker")
	cells.With("w1").Add(3)

	reg.WriteText(os.Stdout)
	// Output:
	// # HELP caem_worker_cells_completed_total Cells completed by each worker.
	// # TYPE caem_worker_cells_completed_total counter
	// caem_worker_cells_completed_total{worker="w1"} 3
}
