package cluster

import (
	"fmt"
	"hash/fnv"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Options tunes the coordinator's fault-tolerance envelope. The zero
// value resolves to production-shaped defaults; tests and the chaos
// harness shrink the timings to force expiry paths quickly.
type Options struct {
	// LeaseTTL is how long a lease survives without a renewal before its
	// cells are presumed lost and re-queued. Default 15s.
	LeaseTTL time.Duration
	// SweepEvery is the expiry-check period. Default LeaseTTL/4.
	SweepEvery time.Duration
	// MaxAttempts bounds how many times a *failing* cell is retried
	// before it is poisoned. (Lease expiry re-queues are not attempts: a
	// dead worker says nothing about the cell.) Default 4.
	MaxAttempts int
	// BackoffBase is the first retry delay; attempt n waits
	// BackoffBase·2^(n-1) plus deterministic jitter. Default 250ms.
	BackoffBase time.Duration
	// MaxBatch caps the cells in one lease. Default 8.
	MaxBatch int
	// Metrics receives the coordinator's instruments. Nil gets a private
	// registry, so instrumentation never needs nil checks; callers who
	// want a /metrics endpoint pass the registry they expose.
	Metrics *obs.Registry
	// Logger receives structured lease-lifecycle records. Nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.SweepEvery <= 0 {
		o.SweepEvery = o.LeaseTTL / 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 250 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// lease is the coordinator's record of one outstanding batch.
type lease struct {
	id       string
	worker   string
	cells    []Cell
	deadline time.Time
	renews   int
}

// delayedCell is a failed cell waiting out its retry backoff.
type delayedCell struct {
	cell      Cell
	notBefore time.Time
}

// workerInfo is per-worker observability state. Settlement counts
// live in the registry (settledC is the worker's pre-bound handle on
// caem_worker_settled_total), not here — Status reads them back from
// the same instruments /metrics exposes.
type workerInfo struct {
	lastSeen time.Time
	settledC *obs.Counter
}

// PoisonReport records one terminally failed cell for /cluster/status.
type PoisonReport struct {
	Campaign string `json:"campaign"`
	Index    int    `json:"index"`
	Scenario string `json:"scenario"`
	Protocol string `json:"protocol"`
	Seed     uint64 `json:"seed"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

// Coordinator owns the cluster's work queue and lease table. All
// methods are safe for concurrent use; Sink callbacks run under the
// coordinator lock, serializing settlement with expiry sweeps.
type Coordinator struct {
	opts Options
	sink Sink
	now  func() time.Time // injectable clock (tests)
	met  *coordMetrics
	log  *slog.Logger

	mu       sync.Mutex
	queue    []Cell                 // ready to lease, FIFO
	delayed  []delayedCell          // backing off after a failure
	leases   map[string]*lease      // outstanding batches
	attempts map[string]int         // reported failures per cell key
	settled  map[string]bool        // terminally settled (done or poisoned)
	workers  map[string]*workerInfo // per-worker stats
	poisoned []PoisonReport
	leaseSeq int

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator starts a coordinator (including its expiry sweeper)
// delivering settlement callbacks to sink. Stop it with Stop.
func NewCoordinator(sink Sink, opts Options) *Coordinator {
	c := &Coordinator{
		opts:     opts.withDefaults(),
		sink:     sink,
		now:      time.Now,
		leases:   make(map[string]*lease),
		attempts: make(map[string]int),
		settled:  make(map[string]bool),
		workers:  make(map[string]*workerInfo),
		stop:     make(chan struct{}),
	}
	c.met = newCoordMetrics(c.opts.Metrics)
	c.log = c.opts.Logger
	c.wg.Add(1)
	go c.sweeper()
	return c
}

// Stop halts the expiry sweeper. Outstanding leases stay claimable to
// completion by in-flight workers; no new expiry reclaims happen.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	select {
	case <-c.stop:
		c.mu.Unlock()
		return
	default:
	}
	close(c.stop)
	c.mu.Unlock()
	c.wg.Wait()
}

func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// Submit enqueues cells for distribution. Cells re-submitted after
// already settling (a campaign re-planned across a coordinator restart)
// are filtered out by the caller; the coordinator trusts its input.
func (c *Coordinator) Submit(cells []Cell) {
	c.mu.Lock()
	c.queue = append(c.queue, cells...)
	c.syncGaugesLocked()
	c.mu.Unlock()
	c.log.Debug("cells submitted", "cells", len(cells))
}

// syncGaugesLocked republishes the structural depth gauges from the
// authoritative in-memory state. Called after every mutation under mu,
// so a /metrics scrape and a /cluster/status snapshot always agree.
func (c *Coordinator) syncGaugesLocked() {
	c.met.queueDepth.Set(float64(len(c.queue)))
	c.met.delayed.Set(float64(len(c.delayed)))
	c.met.inflight.Set(float64(len(c.leases)))
}

// Claim hands the worker a lease of at most max cells, sized by guided
// self-scheduling: roughly remaining/(2·workers), large while the queue
// is deep and shrinking toward 1 as it drains, so a slow irregular cell
// near the end cannot strand a big batch behind one worker.
func (c *Coordinator) Claim(worker string, max int) (*Lease, error) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[worker]
	if w == nil {
		w = &workerInfo{settledC: c.met.workerSettled.With(worker)}
		c.workers[worker] = w
		c.log.Info("worker joined", "worker_id", worker)
	}
	w.lastSeen = now
	c.promoteRipeLocked(now)
	// Drop queue copies of cells that settled while re-queued: an expiry
	// re-queue can race a late completion of the same cell, and handing
	// the stale copy out again would only waste a worker.
	if len(c.settled) > 0 {
		q := c.queue[:0]
		for _, cell := range c.queue {
			if !c.settled[cell.Key()] {
				q = append(q, cell)
			}
		}
		c.queue = q
	}
	if len(c.queue) == 0 {
		c.syncGaugesLocked()
		return nil, nil
	}

	n := (len(c.queue) + 2*len(c.workers) - 1) / (2 * len(c.workers))
	if n < 1 {
		n = 1
	}
	if n > c.opts.MaxBatch {
		n = c.opts.MaxBatch
	}
	if max > 0 && n > max {
		n = max
	}
	cells := make([]Cell, n)
	copy(cells, c.queue[:n])
	c.queue = c.queue[n:]

	c.leaseSeq++
	l := &lease{
		id:       fmt.Sprintf("lease-%d", c.leaseSeq),
		worker:   worker,
		cells:    cells,
		deadline: now.Add(c.opts.LeaseTTL),
	}
	c.leases[l.id] = l
	for _, cell := range cells {
		c.sink.CellStarted(cell)
	}
	c.met.claims.Inc()
	c.met.batchCells.Observe(float64(n))
	c.syncGaugesLocked()
	c.log.Debug("lease granted",
		"lease_id", l.id, "worker_id", worker, "cells", n, "queue", len(c.queue))
	return &Lease{ID: l.id, Worker: worker, Cells: cells, TTLMillis: c.opts.LeaseTTL.Milliseconds()}, nil
}

// promoteRipeLocked moves delayed cells whose backoff elapsed back onto
// the ready queue. Caller holds mu.
func (c *Coordinator) promoteRipeLocked(now time.Time) {
	kept := c.delayed[:0]
	for _, d := range c.delayed {
		if !d.notBefore.After(now) {
			c.queue = append(c.queue, d.cell)
		} else {
			kept = append(kept, d)
		}
	}
	c.delayed = kept
}

// Renew extends the lease's heartbeat deadline.
func (c *Coordinator) Renew(leaseID string) error {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[leaseID]
	if !ok {
		return ErrLeaseGone
	}
	l.deadline = now.Add(c.opts.LeaseTTL)
	l.renews++
	if w := c.workers[l.worker]; w != nil {
		w.lastSeen = now
	}
	c.met.renews.Inc()
	return nil
}

// Complete settles a lease with the worker's results. Against an
// already-expired lease it returns ErrLeaseGone and discards the
// results — the cells re-queued at expiry and will be recomputed
// bit-identically, so dropping a late completion is always safe.
func (c *Coordinator) Complete(leaseID string, results []CellResult) error {
	return c.settle(leaseID, results, false)
}

// Release returns a lease early — the graceful-shutdown path. Finished
// results settle normally; every other cell re-queues immediately with
// no retry penalty and no wait for expiry.
func (c *Coordinator) Release(leaseID string, results []CellResult) error {
	return c.settle(leaseID, results, true)
}

func (c *Coordinator) settle(leaseID string, results []CellResult, partial bool) error {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[leaseID]
	if !ok {
		return ErrLeaseGone
	}
	delete(c.leases, leaseID)
	w := c.workers[l.worker]
	if w != nil {
		w.lastSeen = now
	}
	if partial {
		c.met.released.Inc()
		c.log.Info("lease released",
			"lease_id", leaseID, "worker_id", l.worker, "results", len(results), "cells", len(l.cells))
	} else {
		c.met.completed.Inc()
		c.log.Debug("lease completed",
			"lease_id", leaseID, "worker_id", l.worker, "results", len(results))
	}

	byIndex := make(map[string]CellResult, len(results))
	for _, r := range results {
		byIndex[fmt.Sprintf("%s/%d", r.Campaign, r.Index)] = r
	}
	for _, cell := range l.cells {
		key := cell.Key()
		if c.settled[key] {
			continue // duplicate execution after an expiry re-queue
		}
		r, have := byIndex[key]
		switch {
		case !have:
			if !partial {
				// A Complete that omits a leased cell is a worker bug, but
				// losing the cell would hang its campaign forever; re-queue.
				c.queue = append(c.queue, cell)
				continue
			}
			c.queue = append(c.queue, cell) // released unfinished: no penalty
		case r.Result != nil:
			if err := c.sink.CellDone(cell, r.Result); err != nil {
				c.retryLocked(cell, now, err) // transient store fault
				continue
			}
			c.settled[key] = true
			c.met.cellsSettled.Inc()
			if w != nil {
				w.settledC.Inc()
			}
		default:
			c.retryLocked(cell, now, fmt.Errorf("%s", r.Error))
		}
	}
	c.syncGaugesLocked()
	return nil
}

// retryLocked schedules a failed cell's next attempt — exponential
// backoff with deterministic jitter — or poisons it once the attempt
// budget is spent. Caller holds mu.
func (c *Coordinator) retryLocked(cell Cell, now time.Time, cause error) {
	key := cell.Key()
	c.attempts[key]++
	n := c.attempts[key]
	if n >= c.opts.MaxAttempts {
		c.settled[key] = true
		c.poisoned = append(c.poisoned, PoisonReport{
			Campaign: cell.Campaign,
			Index:    cell.Index,
			Scenario: cell.Scenario.Name,
			Protocol: cell.Config.Protocol.String(),
			Seed:     cell.Config.Seed,
			Attempts: n,
			Error:    cause.Error(),
		})
		c.met.cellsPoisoned.Inc()
		c.log.Error("cell poisoned",
			"campaign", cell.Campaign, "cell", cell.Index, "attempts", n, "error", cause.Error())
		c.sink.CellFailed(cell, n, cause)
		return
	}
	c.met.cellsRetried.Inc()
	c.log.Warn("cell retry scheduled",
		"campaign", cell.Campaign, "cell", cell.Index, "attempt", n, "error", cause.Error())
	shift := n - 1
	if shift > 6 {
		shift = 6 // cap the exponent: 64× base is patient enough
	}
	delay := c.opts.BackoffBase << shift
	delay += jitter(key, n, delay/2)
	c.delayed = append(c.delayed, delayedCell{cell: cell, notBefore: now.Add(delay)})
}

// jitter derives a deterministic pseudo-random delay in [0, span] from
// the cell key and attempt number, de-synchronizing retry herds without
// sacrificing reproducibility.
func jitter(key string, attempt int, span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", key, attempt)
	return time.Duration(h.Sum64() % uint64(span+1))
}

// Sweep reclaims expired leases: every unsettled cell of a lease whose
// deadline passed re-queues immediately. Runs on the sweeper ticker;
// exposed for deterministic tests.
func (c *Coordinator) Sweep() {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, l := range c.leases {
		if l.deadline.After(now) {
			continue
		}
		delete(c.leases, id)
		c.met.expired.Inc()
		requeued := 0
		for _, cell := range l.cells {
			if !c.settled[cell.Key()] {
				c.queue = append(c.queue, cell)
				requeued++
			}
		}
		c.log.Warn("lease expired",
			"lease_id", id, "worker_id", l.worker, "requeued", requeued)
	}
	c.promoteRipeLocked(now)
	c.syncGaugesLocked()
}

// LeaseStatus is one outstanding lease in a Status snapshot.
type LeaseStatus struct {
	ID        string `json:"id"`
	Worker    string `json:"worker"`
	Cells     int    `json:"cells"`
	Renews    int    `json:"renews"`
	ExpiresMs int64  `json:"expiresInMs"`
}

// WorkerStatus is one worker's view in a Status snapshot.
type WorkerStatus struct {
	Name       string `json:"name"`
	Settled    int    `json:"settled"`
	LastSeenMs int64  `json:"lastSeenMsAgo"`
}

// Status is the /cluster/status observability snapshot.
type Status struct {
	Queue         int            `json:"queue"`
	Delayed       int            `json:"delayed"`
	Settled       int            `json:"settled"`
	ExpiredLeases int            `json:"expiredLeases"`
	Leases        []LeaseStatus  `json:"leases"`
	Workers       []WorkerStatus `json:"workers"`
	Poisoned      []PoisonReport `json:"poisoned,omitempty"`
}

// Status snapshots the coordinator for observability. Every numeric
// field is read back out of the registry instruments that /metrics
// exposes — the JSON status and a scrape are two views of the same
// counters and can never disagree.
func (c *Coordinator) Status() Status {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGaugesLocked()
	st := Status{
		Queue:         int(c.met.queueDepth.Value()),
		Delayed:       int(c.met.delayed.Value()),
		Settled:       int(c.met.cellsSettled.Value()),
		ExpiredLeases: int(c.met.expired.Value()),
		Leases:        make([]LeaseStatus, 0, len(c.leases)),
		Workers:       make([]WorkerStatus, 0, len(c.workers)),
		Poisoned:      append([]PoisonReport(nil), c.poisoned...),
	}
	for _, l := range c.leases {
		st.Leases = append(st.Leases, LeaseStatus{
			ID:        l.id,
			Worker:    l.worker,
			Cells:     len(l.cells),
			Renews:    l.renews,
			ExpiresMs: l.deadline.Sub(now).Milliseconds(),
		})
	}
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].ID < st.Leases[j].ID })
	for name, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			Name:       name,
			Settled:    int(w.settledC.Value()),
			LastSeenMs: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Name < st.Workers[j].Name })
	return st
}

// SetClock replaces the coordinator's time source — deterministic tests
// drive expiry by advancing a fake clock and calling Sweep directly.
func (c *Coordinator) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}
