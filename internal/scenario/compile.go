package scenario

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
)

// Compile lowers the spec onto cfg: node rules materialize into the
// per-node override arrays, and the timeline translates into
// core.WorldEvent hooks appended to cfg.World (ramps and bursts expand
// into multiple discrete events). The spec's embedded Config overlay is
// NOT applied here — that is the public layer's job (it owns the public
// config schema); Compile consumes the already-resolved core.Config.
//
// Every compiled closure captures only immutable data, so the resulting
// Config may be shared across concurrent runs.
func Compile(s Spec, cfg *core.Config) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if cfg.Nodes < 2 {
		return fmt.Errorf("scenario %q: config has %d nodes", s.Name, cfg.Nodes)
	}

	// Per-node heterogeneity: materialize full override arrays from the
	// homogeneous base (or pre-existing overrides), then apply rules in
	// order.
	rates := make([]float64, cfg.Nodes)
	energies := make([]float64, cfg.Nodes)
	for i := range rates {
		rates[i] = cfg.ArrivalRatePerSecond
		if len(cfg.NodeArrivalRate) == cfg.Nodes {
			rates[i] = cfg.NodeArrivalRate[i]
		}
		energies[i] = cfg.InitialEnergyJ
		if len(cfg.NodeEnergyJ) == cfg.Nodes {
			energies[i] = cfg.NodeEnergyJ[i]
		}
	}
	for ri, rule := range s.Nodes {
		idx, err := rule.Nodes.Resolve(cfg.Nodes)
		if err != nil {
			return fmt.Errorf("scenario %q: node rule %d: %w", s.Name, ri, err)
		}
		for _, i := range idx {
			if rule.RatePerSecond != nil {
				rates[i] = *rule.RatePerSecond
			}
			if rule.RateScale > 0 {
				rates[i] *= rule.RateScale
			}
			if rule.EnergyJ != nil {
				energies[i] = *rule.EnergyJ
			}
			if rule.EnergyScale > 0 {
				energies[i] *= rule.EnergyScale
			}
		}
	}
	if len(s.Nodes) > 0 {
		cfg.NodeArrivalRate = rates
		cfg.NodeEnergyJ = energies
	}

	for ei, ev := range s.Timeline {
		compiled, err := compileEvent(ev, cfg, rates)
		if err != nil {
			return fmt.Errorf("scenario %q: timeline[%d] (%s): %w", s.Name, ei, ev.Type, err)
		}
		cfg.World = append(cfg.World, compiled...)
	}
	return nil
}

// compileEvent lowers one declared event into one or more world events.
// baseRates holds the post-rule per-node base rates (the ramp default
// start).
func compileEvent(ev Event, cfg *core.Config, baseRates []float64) ([]core.WorldEvent, error) {
	at := sim.FromSeconds(ev.AtSeconds)
	idx := []int(nil)
	if ev.Type != EventChannel {
		var err error
		idx, err = ev.Nodes.Resolve(cfg.Nodes)
		if err != nil {
			return nil, err
		}
	}

	switch ev.Type {
	case EventKill:
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				w.Kill(i)
			}
		}}}, nil

	case EventRevive:
		charge := ev.EnergyJ
		perNode := charge == 0 // fall back to each node's initial budget
		energies := cfg.NodeEnergyJ
		initial := cfg.InitialEnergyJ
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				j := charge
				if perNode {
					j = initial
					if len(energies) > i {
						j = energies[i]
					}
				}
				w.Revive(i, j)
			}
		}}}, nil

	case EventTopUp:
		j := ev.EnergyJ
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				w.AddEnergy(i, j)
			}
		}}}, nil

	case EventSetRate:
		r := *ev.RatePerSecond
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				w.SetArrivalRate(i, r)
			}
		}}}, nil

	case EventScaleRate:
		f := ev.Scale
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				w.ScaleArrivalRate(i, f)
			}
		}}}, nil

	case EventRampRate:
		// A linear ramp is a staircase of absolute set-rate events: the
		// start and target are fixed at compile time, so the compiled
		// closures stay pure and the staircase is identical on every run.
		steps := ev.Steps
		if steps == 0 {
			steps = 8
		}
		target := *ev.RatePerSecond
		out := make([]core.WorldEvent, 0, steps)
		for s := 1; s <= steps; s++ {
			frac := float64(s) / float64(steps)
			stepAt := at + sim.FromSeconds(ev.DurationSeconds*frac)
			fromFixed := ev.FromRatePerSecond
			out = append(out, core.WorldEvent{At: stepAt, Apply: func(w *core.World) {
				for _, i := range idx {
					from := baseRates[i]
					if fromFixed != nil {
						from = *fromFixed
					}
					w.SetArrivalRate(i, from+(target-from)*frac)
				}
			}})
		}
		return out, nil

	case EventBurst:
		// Scale up at the start, divide back out at the end. Stateless by
		// design (no captured pre-burst snapshot), so overlapping events
		// compose multiplicatively and compiled configs stay shareable.
		f := ev.Scale
		end := at + sim.FromSeconds(ev.DurationSeconds)
		return []core.WorldEvent{
			{At: at, Apply: func(w *core.World) {
				for _, i := range idx {
					w.ScaleArrivalRate(i, f)
				}
			}},
			{At: end, Apply: func(w *core.World) {
				for _, i := range idx {
					w.ScaleArrivalRate(i, 1/f)
				}
			}},
		}, nil

	case EventChannel:
		shift := *ev.Channel
		// Pre-flight the shift against the config's own parameters so an
		// invalid combination fails at compile time, not mid-run. The
		// runtime re-check in UpdateChannel guards against shifts stacking
		// into invalidity (e.g. two events with partial fields).
		trial := cfg.Channel
		shift.apply(&trial)
		if err := trial.Validate(); err != nil {
			return nil, err
		}
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			w.UpdateChannel(func(p *channel.Params) { shift.apply(p) })
		}}}, nil
	}
	return nil, fmt.Errorf("unknown event type %q", ev.Type)
}

// apply writes the shift's non-nil fields onto p.
func (c ChannelShift) apply(p *channel.Params) {
	if c.DopplerHz != nil {
		p.DopplerHz = *c.DopplerHz
	}
	if c.ShadowingSigmaDB != nil {
		p.ShadowingSigmaDB = *c.ShadowingSigmaDB
	}
	if c.ShadowingCorr != nil {
		p.ShadowingCorr = *c.ShadowingCorr
	}
	if c.PathLossExponent != nil {
		p.PathLossExponent = *c.PathLossExponent
	}
	if c.ReferenceSNRdB != nil {
		p.ReferenceSNRdB = *c.ReferenceSNRdB
	}
	if c.RicianK != nil {
		p.RicianK = *c.RicianK
	}
}
