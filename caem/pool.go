package caem

import "repro/internal/runner"

// SimPool is a resident simulation-context pool for callers that
// schedule many runs themselves — long-running services like
// cmd/caem-serve, custom sweep drivers — instead of going through the
// multi-run entry points (RunComparison, RunSeeds, RunCampaign), which
// pool internally. Consecutive runs on one SimPool reuse the simulation
// world (arenas, RNG streams, the link matrix, metric storage) reset in
// place, so a stream of grid cells costs far less than building a fresh
// world per run.
//
// Determinism is unaffected: a pooled run is bit-identical to a fresh
// one, so results never depend on what a pool previously executed.
//
// A SimPool is NOT safe for concurrent use — give each worker goroutine
// its own, exactly as the internal runner does.
type SimPool struct {
	p *runner.Pool
}

// NewSimPool returns an empty pool; contexts materialize on first use,
// one per configuration shape.
func NewSimPool() *SimPool { return &SimPool{p: runner.NewPool()} }

// Run executes one simulation on the pool's resident context,
// equivalent to Run(cfg) but without world reconstruction.
func (sp *SimPool) Run(cfg Config) (Result, error) { return runPooled(sp.p, cfg) }

// RunScenario executes one scenario run on the pool's resident context,
// equivalent to RunScenario(sc, cfg) but without world reconstruction.
func (sp *SimPool) RunScenario(sc Scenario, cfg Config) (Result, error) {
	return runScenarioPooled(sp.p, sc, cfg)
}
