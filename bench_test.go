// Package repro's root benchmarks regenerate each table and figure of the
// paper at a reduced scale, one testing.B benchmark per artifact
// (DESIGN.md §3). Full-scale reproduction is cmd/caem-bench; these keep
// `go test -bench=.` under a minute while exercising the same code paths.
package repro

import (
	"fmt"
	"testing"

	"repro/caem"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/queueing"
	"repro/internal/scenario"
	"repro/internal/scenario/gen"
	"repro/internal/sim"
)

// benchOpts runs experiments small: 20 nodes, ~1/5 horizons, thin
// sweeps, at the default 5-seed replication grid (so the figure
// benchmarks price in the statistics engine's aggregation).
func benchOpts() experiment.Options {
	return experiment.Options{Seed: 1, Scale: 0.2}
}

func benchReport(b *testing.B, run func(experiment.Options) experiment.Report) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := run(benchOpts())
		if len(r.Table.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkTableI_ToneChannel regenerates paper Table I (tone pulse
// intervals per channel state).
func BenchmarkTableI_ToneChannel(b *testing.B) { benchReport(b, experiment.TableI) }

// BenchmarkTableII_Parameters regenerates paper Table II (simulation
// parameters).
func BenchmarkTableII_Parameters(b *testing.B) { benchReport(b, experiment.TableII) }

// BenchmarkFigure8_RemainingEnergy regenerates paper Fig. 8 (average
// remaining energy vs time, three protocols).
func BenchmarkFigure8_RemainingEnergy(b *testing.B) { benchReport(b, experiment.Figure8) }

// BenchmarkFigure9_NodesAlive regenerates paper Fig. 9 (alive nodes vs
// time and the lifetime gains).
func BenchmarkFigure9_NodesAlive(b *testing.B) { benchReport(b, experiment.Figure9) }

// BenchmarkFigure10_LifetimeVsLoad regenerates paper Fig. 10 (network
// lifetime vs traffic load).
func BenchmarkFigure10_LifetimeVsLoad(b *testing.B) { benchReport(b, experiment.Figure10) }

// BenchmarkFigure11_EnergyPerPacket regenerates paper Fig. 11 (average
// energy per delivered packet vs load).
func BenchmarkFigure11_EnergyPerPacket(b *testing.B) { benchReport(b, experiment.Figure11) }

// BenchmarkFigure12_QueueFairness regenerates paper Fig. 12 (queue-length
// standard deviation vs load).
func BenchmarkFigure12_QueueFairness(b *testing.B) { benchReport(b, experiment.Figure12) }

// BenchmarkNetworkPerformance regenerates the §IV.A long-version metrics
// (delay, throughput, delivery rate).
func BenchmarkNetworkPerformance(b *testing.B) { benchReport(b, experiment.NetworkPerformance) }

// BenchmarkAblationThreshold runs the A1 ablation (Q_th, m sweep).
func BenchmarkAblationThreshold(b *testing.B) { benchReport(b, experiment.AblationThresholdParams) }

// BenchmarkAblationDoppler runs the A2 ablation (channel dynamics sweep).
func BenchmarkAblationDoppler(b *testing.B) { benchReport(b, experiment.AblationDoppler) }

// BenchmarkAblationBurst runs the A3 ablation (burst-size rules sweep).
func BenchmarkAblationBurst(b *testing.B) { benchReport(b, experiment.AblationBurst) }

// BenchmarkAblationCSINoise runs the A4 ablation (CSI estimation error).
func BenchmarkAblationCSINoise(b *testing.B) { benchReport(b, experiment.AblationCSINoise) }

// BenchmarkAblationRician runs the A5 ablation (Rice factor sweep).
func BenchmarkAblationRician(b *testing.B) { benchReport(b, experiment.AblationRician) }

// BenchmarkSeedSweep runs the A6 seed-replication sweep (matched-seed
// significance study).
func BenchmarkSeedSweep(b *testing.B) { benchReport(b, experiment.SeedSweep) }

// BenchmarkScenarioSecond measures one simulated second at full scale
// under a busy dynamic-world timeline — a churn/burst/weather/service
// cycle every simulated minute — so the scenario engine's overhead can be
// compared directly against BenchmarkSimulatedSecond's static world.
func BenchmarkScenarioSecond(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Horizon = sim.Time(b.N) * sim.Second
	cfg.SampleInterval = 1000 * sim.Second

	spec := scenario.Spec{
		Name: "bench-dynamic",
		Nodes: []scenario.NodeRule{
			{Nodes: scenario.Selector{From: 0, To: 10}, RateScale: 3},
		},
	}
	for t := 10.0; t < float64(b.N); t += 60 {
		spec.Timeline = append(spec.Timeline,
			scenario.Event{AtSeconds: t, Type: scenario.EventKill,
				Nodes: scenario.Selector{From: 20, To: 25}},
			scenario.Event{AtSeconds: t + 15, Type: scenario.EventBurst,
				Scale: 2, DurationSeconds: 10},
			scenario.Event{AtSeconds: t + 30, Type: scenario.EventChannel,
				Channel: &scenario.ChannelShift{DopplerHz: benchFloat(8)}},
			scenario.Event{AtSeconds: t + 40, Type: scenario.EventChannel,
				Channel: &scenario.ChannelShift{DopplerHz: benchFloat(2)}},
			scenario.Event{AtSeconds: t + 45, Type: scenario.EventRevive,
				Nodes: scenario.Selector{From: 20, To: 25}},
			scenario.Event{AtSeconds: t + 50, Type: scenario.EventTopUp,
				EnergyJ: 0.05, Nodes: scenario.Selector{From: 20, To: 25}},
		)
	}
	if err := scenario.Compile(spec, &cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	core.New(cfg).Run()
}

func benchFloat(v float64) *float64 { return &v }

// BenchmarkGeneratedScenarioSecond measures one simulated second at
// full scale under a DENSE generated timeline — the gen package's
// "dense"-style mix (churn, bursty load, stormy weather, mobility,
// interference, sink outages) at 4x event density — so the overhead of
// the scenario engine's event hooks, link-row invalidation, and
// interference bookkeeping is regression-gated on a timeline far
// busier than BenchmarkScenarioSecond's hand-rolled cycle.
func BenchmarkGeneratedScenarioSecond(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Horizon = sim.Time(b.N) * sim.Second
	cfg.SampleInterval = 1000 * sim.Second
	cfg.BaseStationForwarding = true

	d := float64(b.N)
	if d < 60 {
		d = 60 // the generator's minimum horizon
	}
	fam := gen.Family{
		Name:  "bench-dense",
		Nodes: cfg.Nodes, FieldWidthM: cfg.FieldWidth, FieldHeightM: cfg.FieldHeight,
		DurationSeconds: d,
		ChurnRate:       3, LoadShape: "bursty", Weather: "stormy",
		Heterogeneity: 0.4, EventDensity: 4,
		MobilityRate: 3, InterferenceRate: 2, SinkOutages: 2,
	}
	spec, err := gen.Generate(fam, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := scenario.Compile(spec, &cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	core.New(cfg).Run()
}

// BenchmarkMetricsHotPath measures one round of the instrument updates
// the cluster and store emit per settled cell — counter Inc/Add, gauge
// Set, histogram Observe, and a pre-bound labeled counter — and proves
// the whole update path allocates nothing. Together with the
// exact-allocs entries in the committed bench baseline this is the
// gate that observability stays off the simulation hot loop: an
// allocation introduced anywhere in the instrument write path fails
// benchgate at 0 allocs/op, and any collateral damage to the engine
// itself fails BenchmarkSimulatedSecond at exactly 4.
func BenchmarkMetricsHotPath(b *testing.B) {
	reg := obs.NewRegistry()
	settled := reg.Counter("caem_cells_settled_total", "Cells settled.")
	simSecs := reg.Counter("caem_worker_simulated_seconds_total", "Simulated seconds completed.")
	queue := reg.Gauge("caem_coordinator_queue_depth", "Ready-queue depth.")
	batch := reg.Histogram("caem_lease_batch_cells", "Cells per lease.", obs.SizeBuckets)
	rtt := reg.Histogram("caem_worker_heartbeat_rtt_seconds", "Heartbeat RTT.", obs.LatencyBuckets)
	perWorker := reg.CounterVec("caem_worker_cells_completed_total",
		"Cells executed per worker.", "worker").With("bench-worker")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		settled.Inc()
		simSecs.Add(60)
		queue.Set(float64(i & 1023))
		batch.Observe(float64(i&31) + 1)
		rtt.Observe(float64(i&15) * 0.001)
		perWorker.Inc()
	}
}

// benchCampaignStore builds a store holding a settled synthetic campaign
// grid — 4 scenarios x 3 protocols x 32 seeds = 384 cells — and returns
// it with the refs that address every cell. Metric values are a fixed
// function of the grid position so runs are deterministic.
func benchCampaignStore(b *testing.B) (*caem.CampaignStore, []caem.CellRef) {
	b.Helper()
	cs, err := caem.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cs.Close() })
	scenarios := []string{"static", "node-churn", "interference", "mobility"}
	refs := make([]caem.CellRef, 0, len(scenarios)*3*32)
	for si, sc := range scenarios {
		hash := fmt.Sprintf("%016x", si+1)
		for _, p := range caem.Protocols() {
			for seed := uint64(1); seed <= 32; seed++ {
				v := float64((seed*7 + uint64(si)*13 + uint64(p)*29) % 97)
				cell := caem.CampaignCell{
					Scenario: sc, Protocol: p, Seed: seed,
					Result: caem.Result{
						Protocol:     p,
						MeanDelayMs:  v,
						DeliveryRate: 1 - v/200,
					},
				}
				if err := cs.PutCell("bench", hash, cell); err != nil {
					b.Fatal(err)
				}
				refs = append(refs, caem.CellRef{Hash: hash, Scenario: sc, Protocol: p, Seed: seed})
			}
		}
	}
	return cs, refs
}

// BenchmarkQueryTopK measures one top-k metric query over a 384-cell
// campaign grid: ref pruning, bloom/range-indexed point reads (never a
// log scan — the store's FullScans counter staying flat is asserted by
// the query tests), the metric filter, and the ordered cut.
func BenchmarkQueryTopK(b *testing.B) {
	cs, refs := benchCampaignStore(b)
	q := caem.CellQuery{Metric: "meanDelayMs", Top: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := cs.QueryCells(refs, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 10 {
			b.Fatalf("top-10 returned %d cells", len(cells))
		}
	}
}

// BenchmarkAggregateCached measures the CachedAggregates hit path — the
// generation check plus a defensive copy of the materialized per-group
// mean±CI table — which is what every results read pays once a campaign
// stops settling cells.
func BenchmarkAggregateCached(b *testing.B) {
	cs, _ := benchCampaignStore(b)
	if _, err := cs.CachedAggregates(); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggs, err := cs.CachedAggregates()
		if err != nil {
			b.Fatal(err)
		}
		if len(aggs) == 0 {
			b.Fatal("empty aggregate table")
		}
	}
}

// BenchmarkSimulatedSecond measures the raw cost of one simulated second
// at the paper's full scale (100 nodes, load 5), per protocol — the
// hot-path benchmark for the event engine, channel sampling, and MAC.
func BenchmarkSimulatedSecond(b *testing.B) {
	for _, pc := range []struct {
		name   string
		policy queueing.ThresholdPolicy
	}{
		{"PureLEACH", queueing.PolicyNone},
		{"Scheme1", queueing.PolicyAdaptive},
		{"Scheme2", queueing.PolicyFixedHighest},
	} {
		b.Run(pc.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Policy = pc.policy
			cfg.Horizon = sim.Time(b.N) * sim.Second
			cfg.SampleInterval = 1000 * sim.Second
			b.ReportAllocs()
			b.ResetTimer()
			core.New(cfg).Run()
		})
	}
}
