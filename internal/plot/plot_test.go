package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleChart() Chart {
	return Chart{
		Title:  "Average remaining energy",
		XLabel: "time (s)",
		YLabel: "J",
		Series: []Series{
			{Name: "pure-LEACH", X: []float64{0, 100, 200}, Y: []float64{10, 7, 4}},
			{Name: "Scheme1", X: []float64{0, 100, 200}, Y: []float64{10, 8.5, 7}},
		},
	}
}

func TestSVGIsWellFormedXML(t *testing.T) {
	svg := sampleChart().SVG()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg)
		}
	}
}

func TestSVGContainsContent(t *testing.T) {
	svg := sampleChart().SVG()
	for _, want := range []string{
		"<svg", "polyline", "pure-LEACH", "Scheme1",
		"Average remaining energy", "time (s)",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polyline count = %d, want 2", got)
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	c := sampleChart()
	c.Title = `a < b & "c"`
	svg := c.SVG()
	if strings.Contains(svg, `a < b &`) {
		t.Fatal("unescaped markup in title")
	}
	if !strings.Contains(svg, "a &lt; b &amp;") {
		t.Fatal("escaped title missing")
	}
}

func TestSVGEmptyChart(t *testing.T) {
	c := Chart{Title: "empty"}
	svg := c.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("empty chart did not render a document")
	}
}

func TestSVGDegenerateSeries(t *testing.T) {
	cases := []Series{
		{Name: "single", X: []float64{5}, Y: []float64{3}},
		{Name: "constant", X: []float64{0, 1, 2}, Y: []float64{7, 7, 7}},
		{Name: "holes", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}},
		{Name: "unbounded", X: []float64{0, math.Inf(1)}, Y: []float64{1, 2}},
		{Name: "mismatched", X: []float64{0, 1, 2}, Y: []float64{1}},
	}
	for _, s := range cases {
		c := Chart{Title: s.Name, Series: []Series{s}}
		svg := c.SVG()
		if !strings.Contains(svg, "</svg>") {
			t.Errorf("%s: truncated SVG", s.Name)
		}
		if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
			t.Errorf("%s: non-finite coordinates leaked into SVG", s.Name)
		}
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 100+1e-9 {
		t.Fatalf("ticks out of range: %v", ticks)
	}
	// Degenerate span.
	if got := niceTicks(5, 5, 4); len(got) < 2 {
		t.Fatalf("degenerate ticks = %v", got)
	}
	// Reversed bounds are normalized.
	if got := niceTicks(10, 0, 4); got[0] > got[len(got)-1] {
		t.Fatalf("reversed ticks = %v", got)
	}
}

// Property: tick positions are always strictly increasing and within the
// (normalized) input range for any finite bounds.
func TestNiceTicksProperty(t *testing.T) {
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e12 || math.Abs(b) > 1e12 {
			return true
		}
		ticks := niceTicks(a, b, 6)
		if len(ticks) < 2 {
			return false
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:    "0",
		100:  "100",
		1.5:  "1.5",
		0.25: "0.25",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatTick(2.5e7); !strings.Contains(got, "e") {
		t.Errorf("large tick not scientific: %q", got)
	}
}
