package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestAppendFaultIsTypedAndRecoverable: an injected append error must
// surface as a *WriteError with Op "append", leave the log untouched,
// and the same Put must succeed once the fault clears — the retry path
// the cluster layer leans on for transient store faults.
func TestAppendFaultIsTypedAndRecoverable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(rec(0)); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk on fire")
	s.SetFault(func(op string) error {
		if op == "append" {
			return boom
		}
		return nil
	})
	err = s.Put(rec(1))
	var we *WriteError
	if !errors.As(err, &we) || we.Op != "append" || !errors.Is(err, boom) {
		t.Fatalf("faulted Put = %v, want *WriteError{Op: append} wrapping cause", err)
	}
	if s.Len() != 1 {
		t.Fatalf("failed append mutated the index: %d cells", s.Len())
	}

	s.SetFault(nil)
	if err := s.Put(rec(1)); err != nil {
		t.Fatalf("Put after fault cleared: %v", err)
	}
	got, ok, err := s.Get(rec(1).Key())
	if err != nil || !ok {
		t.Fatalf("Get after recovery = %v, %v", ok, err)
	}
	want := rec(1)
	want.V = recordVersion
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered record differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestSyncFaultThenReopen: a fault between write and fsync means the
// store did not acknowledge the record (typed error, not indexed), yet
// the bytes may have reached the log — like a crash where the kernel
// flushed anyway. Reopen must absorb the orphan line cleanly: the
// record is complete and valid, so the scan legitimately adopts it.
func TestSyncFaultThenReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec(0)); err != nil {
		t.Fatal(err)
	}
	s.SetFault(func(op string) error {
		if op == "sync" {
			return errors.New("fsync lost power")
		}
		return nil
	})
	err = s.Put(rec(1))
	var we *WriteError
	if !errors.As(err, &we) || we.Op != "sync" {
		t.Fatalf("sync-faulted Put = %v, want *WriteError{Op: sync}", err)
	}
	if s.Has(rec(1).Key()) {
		t.Fatal("unacknowledged record is visible before reopen")
	}
	s.SetFault(nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after sync fault: %v", err)
	}
	defer s2.Close()
	if s2.RecoveredBytes() != 0 {
		t.Fatalf("complete orphan line reported as torn: %d bytes", s2.RecoveredBytes())
	}
	if !s2.Has(rec(0).Key()) || !s2.Has(rec(1).Key()) {
		t.Fatalf("reopen lost records: len=%d", s2.Len())
	}
	if err := s2.Put(rec(2)); err != nil {
		t.Fatalf("Put on reopened store: %v", err)
	}
}

// TestIndexFaultIsTypedAndLogSurvives: an injected index-checkpoint
// error must be a *WriteError with Op "index", and because the log is
// the source of truth, every record must still survive a reopen that
// rebuilds the index from scratch.
func TestIndexFaultIsTypedAndLogSurvives(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.SetFault(func(op string) error {
		if op == "index" {
			return errors.New("index partition read-only")
		}
		return nil
	})
	err = s.Flush()
	var we *WriteError
	if !errors.As(err, &we) || we.Op != "index" {
		t.Fatalf("faulted Flush = %v, want *WriteError{Op: index}", err)
	}
	// Close reports the same typed failure but still releases the file.
	if err := s.Close(); err == nil || !errors.As(err, &we) {
		t.Fatalf("faulted Close = %v, want *WriteError", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after index fault: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("reopen holds %d cells, want 5", s2.Len())
	}
	for i := 0; i < 5; i++ {
		if !s2.Has(rec(i).Key()) {
			t.Fatalf("record %d lost after index fault", i)
		}
	}
}

// TestMidAppendCrashRecovery extends the torn-tail suite: a writer that
// dies mid-append leaves a partial line (no terminating newline, or
// truncated JSON); reopen must drop exactly the torn bytes, keep every
// earlier record, and accept new appends — and a second crash at the
// same spot must recover just as cleanly.
func TestMidAppendCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate dying mid-append twice in a row: each reopen must truncate
	// the torn bytes and leave a log the next writer can extend.
	for crash := 0; crash < 2; crash++ {
		f, err := os.OpenFile(filepath.Join(dir, dataFile), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		torn := fmt.Sprintf(`{"v":1,"campaign":"test","hash":"deadbeef","scenario":"node-churn","protocol":"p","seed":%d,"summ`, 90+crash)
		if _, err := f.WriteString(torn); err != nil {
			t.Fatal(err)
		}
		f.Close()

		s, err = Open(dir)
		if err != nil {
			t.Fatalf("crash %d: reopen: %v", crash, err)
		}
		if got := s.RecoveredBytes(); got != int64(len(torn)) {
			t.Fatalf("crash %d: recovered %d bytes, want %d", crash, got, len(torn))
		}
		if s.Len() != 3+crash {
			t.Fatalf("crash %d: %d cells survive, want %d", crash, s.Len(), 3+crash)
		}
		if err := s.Put(rec(10 + crash)); err != nil {
			t.Fatalf("crash %d: append after recovery: %v", crash, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 5 {
		t.Fatalf("final store holds %d cells, want 5", s.Len())
	}
}
