// Package store is the persistent, append-only results store behind
// campaign checkpoint/resume and the caem-serve service: each completed
// (scenario, protocol, seed) campaign cell is one self-describing JSONL
// record in results.jsonl, and an index file maps cell keys to byte
// offsets so lookups stay O(1) without re-scanning the log.
//
// # Layout
//
// A store is a directory:
//
//	<dir>/results.jsonl   append-only log, one JSON Record per line
//	<dir>/index.json      key → (offset, length) index, rewritten atomically
//	<dir>/campaigns/      one JSON blob per campaign spec (service metadata)
//
// The log is the source of truth; the index is a cache. Open validates
// the index against the log length, scans any records appended after the
// last index flush, and rebuilds the index from scratch when it is
// missing or stale. A torn tail — a partial or undecodable final line
// left by a crash mid-append — is truncated away on Open and reported
// via RecoveredBytes, so a killed campaign can always restart cleanly.
//
// # Durability and determinism
//
// Put appends one record, syncs the log, and checkpoints the index every
// few dozen writes (and on Flush/Close). Records round-trip exactly:
// encoding/json preserves float64 values bit-for-bit, which is what lets
// a resumed campaign reproduce byte-identical aggregate output from
// stored cells (see caem.RunCampaignWith and TestResumeEquivalence).
//
// Appends from concurrent campaign workers are serialized internally;
// a Store is safe for concurrent use by one process. Multi-process
// single-writer discipline is the caller's responsibility.
//
// The package is deliberately independent of the public caem API: it
// stores flat Summary metrics and opaque campaign blobs, so the service
// layer and the CLI share one on-disk format without an import cycle.
package store
