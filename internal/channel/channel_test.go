package channel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
)

func testStream(id uint64) *rng.Stream {
	return rng.NewSource(77).Stream("chan-test", id)
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.ReferenceDistance = 0 },
		func(p *Params) { p.PathLossExponent = 0.5 },
		func(p *Params) { p.PathLossExponent = 7 },
		func(p *Params) { p.ShadowingSigmaDB = -1 },
		func(p *Params) { p.ShadowingBlock = 0 },
		func(p *Params) { p.ShadowingCorr = 1 },
		func(p *Params) { p.ShadowingCorr = -0.1 },
		func(p *Params) { p.DopplerHz = -1 },
		func(p *Params) { p.Oscillators = 0 },
		func(p *Params) { p.MinDistance = -1 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPathLossMonotoneInDistance(t *testing.T) {
	p := DefaultParams()
	prev := math.Inf(1)
	for d := 1.0; d <= 200; d += 1 {
		snr := p.PathLossSNRdB(d)
		if snr > prev+1e-12 {
			t.Fatalf("path-loss SNR increased with distance at %v m", d)
		}
		prev = snr
	}
}

func TestPathLossReferencePoint(t *testing.T) {
	p := DefaultParams()
	if got := p.PathLossSNRdB(p.ReferenceDistance); math.Abs(got-p.ReferenceSNRdB) > 1e-12 {
		t.Fatalf("SNR at reference distance = %v, want %v", got, p.ReferenceSNRdB)
	}
	// 10x the distance costs 10*n dB.
	got := p.PathLossSNRdB(p.ReferenceDistance * 10)
	want := p.ReferenceSNRdB - 10*p.PathLossExponent
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("decade slope: got %v, want %v", got, want)
	}
}

func TestMinDistanceClamp(t *testing.T) {
	p := DefaultParams()
	if got, lim := p.PathLossSNRdB(0.01), p.PathLossSNRdB(p.MinDistance); got != lim {
		t.Fatalf("tiny distance SNR %v not clamped to %v", got, lim)
	}
}

func TestCoherenceTime(t *testing.T) {
	p := DefaultParams()
	ct := p.CoherenceTime()
	want := sim.FromSeconds(9 / (16 * math.Pi * p.DopplerHz))
	if ct != want {
		t.Fatalf("CoherenceTime = %v, want %v", ct, want)
	}
	p.DopplerHz = 0
	if p.CoherenceTime() != 0 {
		t.Fatal("CoherenceTime with no fading should be 0")
	}
}

// The fading process must be normalized: time-averaged |h|^2 ~ 1, so the
// fading neither inflates nor deflates the mean link budget.
func TestFadingUnitMeanPower(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	l := NewLink(p, 10, testStream(1))
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		tm := sim.Time(i) * sim.Millisecond
		sum += l.FadingPowerGain(tm)
	}
	mean := sum / n
	if mean < 0.7 || mean > 1.3 {
		t.Fatalf("mean fading power gain = %v, want ~1", mean)
	}
}

// Fading must actually fade: over many coherence times the SNR should swing
// by at least several dB around its mean.
func TestFadingDynamicRange(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	l := NewLink(p, 10, testStream(2))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 20000; i++ {
		snr := l.SNRdB(sim.Time(i) * sim.Millisecond)
		lo = math.Min(lo, snr)
		hi = math.Max(hi, snr)
	}
	if hi-lo < 10 {
		t.Fatalf("fading dynamic range only %.1f dB over 20 s, want >= 10 dB", hi-lo)
	}
}

// Rayleigh depth check: the fraction of time the envelope power is below
// 10% of its mean should be around 1-exp(-0.1) ~ 9.5%.
func TestFadingDeepFadeFraction(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	l := NewLink(p, 10, testStream(3))
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if l.FadingPowerGain(sim.Time(i)*sim.Millisecond) < 0.1 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.04 || frac > 0.18 {
		t.Fatalf("deep-fade fraction = %v, want ~0.095 (Rayleigh)", frac)
	}
}

// Channel coherence: samples a tenth of a coherence time apart must be
// strongly correlated; samples many coherence times apart must not be.
func TestFadingTemporalCorrelation(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	ct := p.CoherenceTime()
	l := NewLink(p, 10, testStream(4))
	shortDiff, longDiff := 0.0, 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		base := sim.Time(i) * 100 * sim.Millisecond
		g0 := l.FadingPowerGain(base)
		gs := l.FadingPowerGain(base + ct/10)
		gl := l.FadingPowerGain(base + 50*ct)
		shortDiff += math.Abs(gs - g0)
		longDiff += math.Abs(gl - g0)
	}
	if shortDiff >= longDiff {
		t.Fatalf("short-lag variation (%v) not below long-lag variation (%v)", shortDiff/n, longDiff/n)
	}
}

// Determinism/purity: the fading gain is a pure function of t for a given
// link, and two links with the same stream are identical.
func TestLinkDeterminism(t *testing.T) {
	p := DefaultParams()
	a := NewLink(p, 25, testStream(5))
	b := NewLink(p, 25, testStream(5))
	for i := 0; i < 1000; i++ {
		tm := sim.Time(i) * 3 * sim.Millisecond
		if a.SNRdB(tm) != b.SNRdB(tm) {
			t.Fatalf("same-stream links diverged at %v", tm)
		}
	}
	// Re-querying the same instant returns the same value (purity).
	tm := 123456 * sim.Microsecond
	v1 := a.FadingPowerGain(tm)
	a.FadingPowerGain(tm + sim.Second)
	if v2 := a.FadingPowerGain(tm); v1 != v2 {
		t.Fatalf("fading gain not pure in t: %v vs %v", v1, v2)
	}
}

func TestLinksWithDifferentStreamsDiffer(t *testing.T) {
	p := DefaultParams()
	a := NewLink(p, 25, testStream(6))
	b := NewLink(p, 25, testStream(7))
	same := 0
	for i := 0; i < 100; i++ {
		tm := sim.Time(i) * 7 * sim.Millisecond
		if a.SNRdB(tm) == b.SNRdB(tm) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("independent links matched at %d/100 sample times", same)
	}
}

// Shadowing marginals: with fading off, the dB deviation around path loss
// should have roughly the configured sigma, sampled across many links.
func TestShadowingMarginalSigma(t *testing.T) {
	p := DefaultParams()
	p.DopplerHz = 0
	var sum, sumSq float64
	const n = 3000
	for i := 0; i < n; i++ {
		l := NewLink(p, 30, testStream(100+uint64(i)))
		dev := l.SNRdB(0) - l.MeanSNRdB()
		sum += dev
		sumSq += dev * dev
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.4 {
		t.Fatalf("shadowing mean = %v dB, want ~0", mean)
	}
	if math.Abs(sd-p.ShadowingSigmaDB) > 0.5 {
		t.Fatalf("shadowing sigma = %v dB, want ~%v", sd, p.ShadowingSigmaDB)
	}
}

// Shadowing is constant within a block and changes across blocks.
func TestShadowingBlockStructure(t *testing.T) {
	p := DefaultParams()
	p.DopplerHz = 0
	l := NewLink(p, 30, testStream(8))
	v0 := l.SNRdB(0)
	if v1 := l.SNRdB(p.ShadowingBlock / 2); v1 != v0 {
		t.Fatalf("shadowing changed within a block: %v vs %v", v0, v1)
	}
	changed := false
	v := v0
	for b := 1; b <= 5; b++ {
		nv := l.SNRdB(sim.Time(b)*p.ShadowingBlock + p.ShadowingBlock/2)
		if nv != v {
			changed = true
		}
		v = nv
	}
	if !changed {
		t.Fatal("shadowing never changed across 5 blocks")
	}
}

func TestDisabledComponents(t *testing.T) {
	p := DefaultParams()
	p.DopplerHz = 0
	p.ShadowingSigmaDB = 0
	l := NewLink(p, 42, testStream(9))
	want := p.PathLossSNRdB(42)
	for i := 0; i < 100; i++ {
		tm := sim.Time(i) * 100 * sim.Millisecond
		if got := l.SNRdB(tm); got != want {
			t.Fatalf("static channel moved: %v != %v at %v", got, want, tm)
		}
		if g := l.FadingPowerGain(tm); g != 1 {
			t.Fatalf("FadingPowerGain = %v with fading disabled", g)
		}
	}
}

// Property: SNR is always finite for any queried time.
func TestSNRAlwaysFinite(t *testing.T) {
	p := DefaultParams()
	l := NewLink(p, 60, testStream(10))
	check := func(ms uint32) bool {
		v := l.SNRdB(sim.Time(ms) * sim.Millisecond)
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The block-cached fading state must make the gain a pure function of the
// query time no matter the query order: forward sweeps, backward jumps,
// and re-queries across checkpoint boundaries all reproduce bit-identical
// values.
func TestFadingPureUnderArbitraryQueryOrder(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	fresh := func() *Link { return NewLink(p, 10, testStream(30)) }

	// Reference: one strictly forward sweep.
	ref := fresh()
	const n = 400
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		want[i] = ref.FadingPowerGain(sim.Time(i) * 40 * sim.Millisecond)
	}

	// Adversarial order: jump far ahead, then revisit every instant in a
	// shuffled-ish pattern that repeatedly crosses checkpoint boundaries.
	l := fresh()
	l.FadingPowerGain(sim.Time(n) * 40 * sim.Millisecond)
	for pass := 0; pass < 2; pass++ {
		for i := n - 1; i >= 0; i -= 3 {
			tm := sim.Time(i) * 40 * sim.Millisecond
			if got := l.FadingPowerGain(tm); got != want[i] {
				t.Fatalf("query order changed the gain at sample %d: %v != %v", i, got, want[i])
			}
		}
		for i := 0; i < n; i++ {
			tm := sim.Time(i) * 40 * sim.Millisecond
			if got := l.FadingPowerGain(tm); got != want[i] {
				t.Fatalf("re-query changed the gain at sample %d: %v != %v", i, got, want[i])
			}
		}
	}
}

// Samples inside one coherence time are served from the cached block gain.
func TestFadingConstantWithinCoherenceBlock(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	l := NewLink(p, 10, testStream(31))
	ct := p.CoherenceTime()
	base := 10 * ct
	g0 := l.FadingPowerGain(base)
	for _, off := range []sim.Time{1, ct / 7, ct / 3, ct - 1} {
		if g := l.FadingPowerGain(base + off); g != g0 {
			t.Fatalf("gain moved within one coherence block: %v != %v at +%v", g, g0, off)
		}
	}
	if g := l.FadingPowerGain(base + ct); g == g0 {
		t.Fatal("gain identical across adjacent coherence blocks (suspicious)")
	}
}

func BenchmarkSNRdB(b *testing.B) {
	l := NewLink(DefaultParams(), 30, testStream(11))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.SNRdB(sim.Time(i) * 50 * sim.Millisecond)
	}
}

// Rician fading: the LOS component must preserve unit mean power and
// shrink the fade depth relative to Rayleigh.
func TestRicianUnitMeanPower(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	p.RicianK = 5
	l := NewLink(p, 10, testStream(20))
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += l.FadingPowerGain(sim.Time(i) * sim.Millisecond)
	}
	mean := sum / n
	if mean < 0.7 || mean > 1.3 {
		t.Fatalf("Rician mean power gain = %v, want ~1", mean)
	}
}

func TestRicianShallowerFadesThanRayleigh(t *testing.T) {
	deepFrac := func(k float64, id uint64) float64 {
		p := DefaultParams()
		p.ShadowingSigmaDB = 0
		p.RicianK = k
		l := NewLink(p, 10, testStream(id))
		below := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if l.FadingPowerGain(sim.Time(i)*sim.Millisecond) < 0.1 {
				below++
			}
		}
		return float64(below) / n
	}
	rayleigh := deepFrac(0, 21)
	rician := deepFrac(8, 22)
	if rician >= rayleigh/2 {
		t.Fatalf("K=8 deep-fade fraction %v not well below Rayleigh's %v", rician, rayleigh)
	}
}

func TestRicianKValidation(t *testing.T) {
	p := DefaultParams()
	p.RicianK = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative RicianK accepted")
	}
}
