// Dynamic world: run a library scenario, then a programmatic one.
//
// The scenario engine layers a timeline of world events — node failures
// and revivals, battery service, traffic shifts, channel weather — over a
// base configuration. This example first runs the shipped "node-churn"
// scenario, then builds a custom scenario in code and compares CAEM
// Scheme 1 against pure LEACH under it with a seed-replicated campaign.
//
//	go run ./examples/dynamicworld
package main

import (
	"fmt"
	"log"

	"repro/caem"
)

func main() {
	// 1. A library scenario by name.
	churn, err := caem.FindScenario("node-churn")
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := caem.ScenarioConfig(churn) // scenario's embedded overrides
	if err != nil {
		log.Fatal(err)
	}
	cfg.DurationSeconds = 240 // long enough to cover the 150 s failure wave
	res, err := caem.RunScenario(churn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library scenario %q: alive %d/%d, delivered %d (%.1f%%)\n\n",
		churn.Name, res.AliveAtEnd, cfg.Nodes, res.Delivered, 100*res.DeliveryRate)

	// 2. A custom scenario built in code: a mid-run fading storm plus a
	// traffic burst while the storm rages.
	storm := 8.0
	custom := caem.Scenario{
		Name:        "storm-with-burst",
		Description: "fading storm at 60 s, 3x traffic burst during the storm",
		Timeline: []caem.ScenarioEvent{
			{AtSeconds: 60, Type: caem.EventChannel, Channel: &caem.ChannelShift{
				DopplerHz: &storm, ShadowingSigmaDB: &storm,
			}},
			{AtSeconds: 90, Type: caem.EventBurst, Scale: 3, DurationSeconds: 60},
		},
	}

	base := caem.DefaultConfig()
	base.DurationSeconds = 180
	cells, err := caem.RunCampaign(base, []caem.Scenario{custom},
		[]caem.Protocol{caem.PureLEACH, caem.Scheme1}, []uint64{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("custom scenario campaign (3 seeds):")
	for _, c := range cells {
		fmt.Printf("  %-12s seed %d: consumed %6.2f J, delivered %5d, deferrals(csi) %d\n",
			c.Protocol, c.Seed, c.Result.TotalConsumedJ, c.Result.Delivered, c.Result.DeferralsCSI)
	}
}
