package caem

import (
	"errors"
	"fmt"

	"repro/internal/runner"
)

// ErrCampaignHalted is returned (wrapped) by RunCampaignWith when the
// campaign stopped at the MaxRuns checkpoint with cells still pending.
// The cells completed so far are persisted in the store; rerun with
// Resume to continue from the checkpoint.
var ErrCampaignHalted = errors.New("campaign halted at checkpoint; rerun with Resume to continue")

// CampaignOptions extends RunCampaign with persistence and
// checkpoint/resume semantics. The zero value reproduces RunCampaign
// exactly.
type CampaignOptions struct {
	// Store, when non-nil, receives every freshly completed cell as an
	// append-only record (the sink survives kills: each cell is synced
	// as it completes).
	Store *CampaignStore
	// Resume skips cells already present in Store — matched by content
	// hash (CellHash), so only bit-identical reruns are reused — and
	// returns them as Restored summary-level cells. The resumed
	// campaign's cells and aggregates are byte-identical to an
	// uninterrupted run's: stored floats round-trip exactly. Requires
	// Store.
	Resume bool
	// MaxRuns, when positive, is a checkpoint budget: the campaign
	// executes at most this many fresh cells (the first MaxRuns pending
	// cells in submission order), persists them, and returns the
	// completed subset with ErrCampaignHalted. Requires Store — a halt
	// without persistence would just lose work.
	MaxRuns int
	// Campaign is the provenance id recorded on stored cells (optional).
	Campaign string
}

// RunCampaignWith is RunCampaign with a persistent store sink and
// checkpoint/resume: the scenario × protocol × seed grid expands in the
// same submission order (scenario-major, then protocol, then seed) and
// executes through the worker pool with bit-identical results at every
// worker count, but completed cells stream into opts.Store and, with
// opts.Resume, previously stored cells are restored instead of re-run.
//
// On a clean completion the returned slice covers the full grid; cells
// that were restored from the store carry summary-level Results (the
// headline metrics, exactly as first measured) with Restored set, so
// per-cell reports and AggregateCampaign output are byte-identical to
// an uninterrupted run. On a MaxRuns halt the slice covers only the
// cells that have results, and the error wraps ErrCampaignHalted.
func RunCampaignWith(base Config, scs []Scenario, protocols []Protocol, seeds []uint64, opts CampaignOptions) ([]CampaignCell, error) {
	if len(scs) == 0 {
		return nil, fmt.Errorf("caem: campaign needs at least one scenario")
	}
	if base.TraceCSV != nil {
		return nil, fmt.Errorf("caem: campaigns cannot stream traces from concurrent runs")
	}
	if opts.Store == nil && (opts.Resume || opts.MaxRuns > 0) {
		return nil, fmt.Errorf("caem: CampaignOptions.Resume/MaxRuns need a Store")
	}
	if len(protocols) == 0 {
		protocols = Protocols()
	}
	if len(seeds) == 0 {
		seeds = []uint64{base.Seed}
	}

	// Expand the grid in submission order and compute each scenario's
	// cell-family content hash once.
	cells := make([]CampaignCell, 0, len(scs)*len(protocols)*len(seeds))
	scFor := make([]Scenario, 0, cap(cells))
	hashFor := make([]string, 0, cap(cells))
	for _, sc := range scs {
		var hash string
		if opts.Store != nil {
			var err error
			if hash, err = CellHash(base, sc); err != nil {
				return nil, err
			}
		}
		for _, p := range protocols {
			for _, seed := range seeds {
				cells = append(cells, CampaignCell{Scenario: sc.Name, Protocol: p, Seed: seed})
				scFor = append(scFor, sc)
				hashFor = append(hashFor, hash)
			}
		}
	}

	// Restore already-stored cells instead of re-running them.
	pending := make([]int, 0, len(cells))
	for i := range cells {
		if opts.Resume {
			cell, ok, err := opts.Store.LookupCell(hashFor[i], cells[i].Scenario, cells[i].Protocol, cells[i].Seed)
			if err != nil {
				return nil, err
			}
			if ok {
				cells[i] = cell
				continue
			}
		}
		pending = append(pending, i)
	}

	// A checkpoint budget truncates the pending set deterministically:
	// the first MaxRuns pending cells in submission order run, the rest
	// wait for the resumed invocation.
	halted := false
	if opts.MaxRuns > 0 && len(pending) > opts.MaxRuns {
		pending = pending[:opts.MaxRuns]
		halted = true
	}

	results, err := runVariants(base.Workers, len(pending),
		func(j int) string {
			c := cells[pending[j]]
			return fmt.Sprintf("%s/%s/seed %d", c.Scenario, c.Protocol, c.Seed)
		},
		func(p *runner.Pool, j int) (Result, error) {
			i := pending[j]
			cc := base
			cc.Protocol = cells[i].Protocol
			cc.Seed = cells[i].Seed
			cc.Workers = 1 // the grid is the parallel unit
			res, err := runScenarioPooled(p, scFor[i], cc)
			if err != nil {
				return Result{}, err
			}
			if opts.Store != nil {
				cell := cells[i]
				cell.Result = res
				if err := opts.Store.PutCell(opts.Campaign, hashFor[i], cell); err != nil {
					return Result{}, err
				}
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	for j, i := range pending {
		cells[i].Result = results[j]
	}
	if opts.Store != nil {
		if err := opts.Store.Flush(); err != nil {
			return nil, err
		}
	}
	if halted {
		done := make([]CampaignCell, 0, len(pending))
		ran := make(map[int]bool, len(pending))
		for _, i := range pending {
			ran[i] = true
		}
		for i, c := range cells {
			if c.Restored || ran[i] {
				done = append(done, c)
			}
		}
		return done, fmt.Errorf("caem: %w (%d of %d cells done)", ErrCampaignHalted, len(done), len(cells))
	}
	return cells, nil
}
