// Command caem-sim runs one CAEM simulation and prints its summary.
//
// Usage:
//
//	caem-sim -protocol scheme1 -load 5 -duration 600 -nodes 100 -seed 1
//
// Protocols: leach (pure LEACH baseline), scheme1 (CAEM with adaptive
// threshold), scheme2 (CAEM with fixed highest threshold).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/caem"
)

func main() {
	var (
		protocol = flag.String("protocol", "scheme1", "protocol: leach | scheme1 | scheme2")
		load     = flag.Float64("load", 5, "per-node traffic load, packets/second")
		duration = flag.Float64("duration", 600, "simulated seconds")
		nodes    = flag.Int("nodes", 100, "number of sensor nodes")
		seed     = flag.Uint64("seed", 1, "master random seed")
		energy   = flag.Float64("energy", 10, "initial battery energy, Joules")
		field    = flag.Float64("field", 100, "square field side, meters")
		buffer   = flag.Int("buffer", 50, "buffer capacity in packets (0 = unbounded)")
		stopDead = flag.Bool("stop-when-dead", false, "stop at network death (80% exhausted)")
		perNode  = flag.Bool("per-node", false, "print per-node outcomes")
		traceOut = flag.String("trace", "", "write the protocol event stream as CSV to this file")
	)
	flag.Parse()

	cfg := caem.DefaultConfig()
	switch strings.ToLower(*protocol) {
	case "leach", "pure-leach", "none":
		cfg.Protocol = caem.PureLEACH
	case "scheme1", "s1", "adaptive":
		cfg.Protocol = caem.Scheme1
	case "scheme2", "s2", "fixed":
		cfg.Protocol = caem.Scheme2
	default:
		fmt.Fprintf(os.Stderr, "caem-sim: unknown protocol %q (want leach, scheme1, or scheme2)\n", *protocol)
		os.Exit(2)
	}
	cfg.TrafficLoad = *load
	cfg.DurationSeconds = *duration
	cfg.Nodes = *nodes
	cfg.Seed = *seed
	cfg.InitialEnergyJ = *energy
	cfg.FieldWidthM = *field
	cfg.FieldHeightM = *field
	cfg.BufferCapacity = *buffer
	cfg.StopWhenNetworkDead = *stopDead

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caem-sim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w := bufio.NewWriterSize(f, 1<<20)
		defer w.Flush()
		cfg.TraceCSV = w
	}

	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "caem-sim: invalid configuration: %v\n", err)
		os.Exit(2)
	}
	res, err := caem.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caem-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary())

	if *perNode {
		fmt.Println("\nnode  remaining(J)  consumed(J)  delivered  queue  status")
		for _, n := range res.Nodes {
			status := "alive"
			if n.Dead {
				status = fmt.Sprintf("died@%.1fs", n.DiedAtSeconds)
			}
			fmt.Printf("%4d  %11.3f  %10.3f  %9d  %5d  %s\n",
				n.Index, n.RemainingJ, n.ConsumedJ, n.DeliveredCount, n.QueueLen, status)
		}
	}
}
