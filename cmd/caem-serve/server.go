package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/caem"
	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/cluster/journal"
	"repro/internal/obs"
)

// campaignRequest is the POST /campaigns body: which scenarios to run
// (library names and/or inline specs), over which protocols and seeds,
// with optional partial-Config overrides applied on top of each
// scenario's embedded config. The canonical (re-marshalled) request is
// also the campaign's identity: equal requests map to the same campaign
// id, making submission idempotent.
type campaignRequest struct {
	// Scenarios names curated library scenarios.
	Scenarios []string `json:"scenarios,omitempty"`
	// Specs carries inline scenario specs (the scenarios/SPEC.md schema).
	Specs []json.RawMessage `json:"specs,omitempty"`
	// Generate expands preset generator families, each entry spelled
	// "family:count[:seed]" (seed defaults to 1). Generation is
	// deterministic, so the spelling stands in for the expanded specs in
	// the canonical request: recovery after a restart regenerates
	// byte-identical scenarios and the same cell hashes.
	Generate []string `json:"generate,omitempty"`
	// Protocols lists protocol names (ParseProtocol spellings); empty
	// means all three.
	Protocols []string `json:"protocols,omitempty"`
	// Seeds lists replicate seeds; empty means {1}.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Config is a partial caem.Config JSON object applied over each
	// scenario's resolved configuration.
	Config json.RawMessage `json:"config,omitempty"`
}

// cellRef identifies one campaign cell and its live status.
type cellRef struct {
	Scenario string `json:"scenario"`
	Protocol string `json:"protocol"`
	Seed     uint64 `json:"seed"`
	Status   string `json:"status"` // pending | running | done | restored | failed
	Error    string `json:"error,omitempty"`
}

// campaign is one scheduled grid. Static fields are set at launch; the
// mutable state is guarded by mu.
type campaign struct {
	id        string
	req       campaignRequest
	scenarios []caem.Scenario
	configs   []caem.Config // resolved base config per scenario
	hashes    []string      // CellHash per scenario
	protocols []caem.Protocol
	seeds     []uint64

	mu        sync.Mutex
	cells     []cellRef
	completed int // done + restored
	failed    int
	state     string // running | done | failed
	subs      []chan []byte
	// resGen counts settlements (guarded by mu). The materialized
	// results snapshot is stamped with the generation it was built at;
	// a stale stamp means a cell settled since and the next read
	// rebuilds.
	resGen uint64

	// resMu guards resCache only. It is never held while computing a
	// snapshot — rebuilds run outside every lock, so a storm of result
	// reads cannot block cell settlement (which takes mu).
	resMu    sync.Mutex
	resCache *resultsCache
}

// resultsCache is a campaign's materialized results snapshot: the
// settled cells in grid order plus their wire-form aggregates, built
// once per settlement generation instead of once per request.
type resultsCache struct {
	gen   uint64
	cells []caem.CampaignCell
	aggs  []resultAggregate
}

// progressEvent is one NDJSON line of GET /campaigns/{id}/progress.
type progressEvent struct {
	Campaign  string   `json:"campaign"`
	State     string   `json:"state"`
	Total     int      `json:"total"`
	Completed int      `json:"completed"`
	Failed    int      `json:"failed,omitempty"`
	Cell      *cellRef `json:"cell,omitempty"`
}

// snapshot returns the campaign's current status under its lock.
func (c *campaign) snapshot() campaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	cells := make([]cellRef, len(c.cells))
	copy(cells, c.cells)
	return campaignStatus{
		ID: c.id, State: c.state,
		Total: len(c.cells), Completed: c.completed, Failed: c.failed,
		Cells: cells,
	}
}

type campaignStatus struct {
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Total     int       `json:"total"`
	Completed int       `json:"completed"`
	Failed    int       `json:"failed"`
	Cells     []cellRef `json:"cells,omitempty"`
}

// serverConfig tunes a server beyond the worker count: the cluster
// fault-tolerance envelope and the chaos harness. The zero value means
// production defaults, no local workers, no injected faults.
type serverConfig struct {
	// workers is the number of local executor loops (each owning a
	// resident SimPool). 0 means coordinator-only: every cell is executed
	// by workers that join over HTTP.
	workers int
	// lease configures the coordinator (zero value = defaults).
	lease cluster.Options
	// chaos, when non-nil, injects deterministic faults into both the
	// local workers and the store-persistence sink.
	chaos *cluster.Chaos
	// metrics receives every instrument the server registers (cluster,
	// store, HTTP). Nil gets a private per-server registry — two servers
	// in one process (the chaos differential test) never share series.
	metrics *obs.Registry
	// logger receives structured records from the server, coordinator,
	// and local workers. Nil discards.
	logger *slog.Logger
	// version is the build version exposed in /healthz and
	// caem_build_info ("" reads as "dev").
	version string
	// jstate, when non-nil, is the replayed coordinator journal of a
	// predecessor: the coordinator restores it (adopting cells whose
	// results the store already holds) before campaign recovery replans.
	jstate *journal.State
	// advertise is the base URL workers use to reach this server,
	// published by GET /v1/cluster/leader ("" falls back to the request
	// host).
	advertise string
}

// server is the campaign service: an HTTP API over a persistent results
// store and a fault-tolerant work-distribution coordinator. Cells flow
// through lease/heartbeat scheduling (internal/cluster) whether they
// run on local worker loops or on worker processes joined over HTTP;
// the server is the coordinator's Sink, persisting every settled cell
// and folding it back into campaign progress. The store makes completed
// work durable, and restart recovery re-schedules whatever is missing.
type server struct {
	store     *caem.CampaignStore
	workers   int
	mux       *http.ServeMux
	coord     *cluster.Coordinator
	chaos     *cluster.Chaos
	reg       *obs.Registry
	log       *slog.Logger
	version   string
	advertise string
	quit      chan struct{}
	cancel    context.CancelFunc // stops the local workers
	wg        sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string
	closed    bool
}

// newServer starts a self-contained server: workers local executor
// loops (≤ 0 means one) and default cluster options.
func newServer(st *caem.CampaignStore, workers int) (*server, error) {
	if workers < 1 {
		workers = 1
	}
	return newServerWith(st, serverConfig{workers: workers})
}

// newServerWith starts the coordinator, recovers campaigns persisted in
// the store (completed ones become queryable, interrupted ones resume
// from their stored cells), and then starts the local workers.
func newServerWith(st *caem.CampaignStore, cfg serverConfig) (*server, error) {
	if cfg.metrics == nil {
		cfg.metrics = obs.NewRegistry()
	}
	if cfg.logger == nil {
		cfg.logger = obs.NopLogger()
	}
	s := &server{
		store:     st,
		workers:   cfg.workers,
		mux:       http.NewServeMux(),
		chaos:     cfg.chaos,
		reg:       cfg.metrics,
		log:       cfg.logger,
		version:   cfg.version,
		advertise: cfg.advertise,
		quit:      make(chan struct{}),
		campaigns: make(map[string]*campaign),
	}
	st.Observe(s.reg)
	obs.RegisterBuildInfo(s.reg, s.version)
	cfg.lease.Metrics = s.reg
	cfg.lease.Logger = s.log
	s.coord = cluster.NewCoordinator(s, cfg.lease)
	s.mountAPI()
	s.coord.RegisterHTTPObserved(s.mux, s.reg)
	registerPprof(s.mux)

	if cfg.jstate != nil {
		// Replay the predecessor's journal before recovery replans: cells
		// whose results already landed in the store are adopted as settled
		// (the crash window between PutCell and the journal settle record),
		// everything else resumes with its attempt counts intact.
		adopt := func(cell cluster.Cell) bool {
			return st.HasCell(cell.Hash, cell.Scenario.Name, cell.Config.Protocol, cell.Config.Seed)
		}
		if err := s.coord.Restore(*cfg.jstate, adopt); err != nil {
			s.coord.Stop()
			return nil, err
		}
	}
	if err := s.recover(); err != nil {
		s.coord.Stop()
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	for w := 0; w < cfg.workers; w++ {
		wk := &cluster.Worker{
			Queue:   s.coord,
			Name:    fmt.Sprintf("local-%d", w),
			Poll:    50 * time.Millisecond,
			Chaos:   cfg.chaos,
			Metrics: s.reg,
			Logger:  s.log,
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			wk.Run(ctx)
		}()
	}
	return s, nil
}

// handle mounts a route with per-route request and latency
// instrumentation, labeled by the mux pattern.
func (s *server) handle(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, obs.WrapHandler(s.reg, pattern, h))
}

// registerPprof mounts net/http/pprof under /debug/pprof/ on an
// explicit mux (the package's init only wires http.DefaultServeMux,
// which this server never serves).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close shuts down with no drain deadline: local workers finish their
// in-flight cell and release their leases, then the store flushes.
func (s *server) Close() { s.Shutdown(0) }

// Shutdown stops accepting campaigns, cancels the local workers, and
// waits up to drain (0 = indefinitely) for them to settle or release
// their leases. The coordinator then stops sweeping and the store index
// checkpoints; unfinished cells stay in the store's debt and are
// re-scheduled by the next process via recover().
func (s *server) Shutdown(drain time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.coord.Drain() // claims now answer 503 + Retry-After instead of handing out work
	s.cancel()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	if drain > 0 {
		select {
		case <-drained:
		case <-time.After(drain):
			err = fmt.Errorf("drain deadline (%v) passed with cells still in flight", drain)
		}
	} else {
		<-drained
	}
	s.coord.Stop()
	s.store.Flush()
	return err
}

// ---- cluster.Sink: settlement callbacks from the coordinator ----

// campaignByID is the sink-side campaign lookup.
func (s *server) campaignByID(id string) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// CellStarted marks the cell running. A duplicate hand-out after a
// lease expiry may arrive when the cell already settled; never downgrade
// a terminal status.
func (s *server) CellStarted(cell cluster.Cell) {
	c := s.campaignByID(cell.Campaign)
	if c == nil {
		return
	}
	c.mu.Lock()
	if st := c.cells[cell.Index].Status; st == "pending" || st == "running" {
		c.cells[cell.Index].Status = "running"
	}
	c.mu.Unlock()
}

// CellDone persists the result and folds it into campaign progress. A
// persistence failure is returned to the coordinator, which re-queues
// the cell through the retry/backoff path — a transient store fault
// must not lose the cell.
func (s *server) CellDone(cell cluster.Cell, res *caem.Result) error {
	if err := s.chaos.FailStorePutFor(cell); err != nil {
		return err
	}
	cc := caem.CampaignCell{
		Scenario: cell.Scenario.Name,
		Protocol: cell.Config.Protocol,
		Seed:     cell.Config.Seed,
		Result:   *res,
	}
	if err := s.store.PutCell(cell.Campaign, cell.Hash, cc); err != nil {
		return err
	}
	c := s.campaignByID(cell.Campaign)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	if st := c.cells[cell.Index].Status; st == "done" || st == "restored" || st == "failed" {
		c.mu.Unlock()
		return nil
	}
	c.cells[cell.Index].Status = "done"
	c.completed++
	s.finishLocked(c, cell.Index)
	return nil
}

// CellFailed marks a poisoned cell terminally failed: its retry budget
// is spent and the campaign completes without it.
func (s *server) CellFailed(cell cluster.Cell, attempts int, err error) {
	c := s.campaignByID(cell.Campaign)
	if c == nil {
		return
	}
	c.mu.Lock()
	if st := c.cells[cell.Index].Status; st == "done" || st == "restored" || st == "failed" {
		c.mu.Unlock()
		return
	}
	c.cells[cell.Index].Status = "failed"
	c.cells[cell.Index].Error = fmt.Sprintf("poisoned after %d attempts: %v", attempts, err)
	c.failed++
	s.finishLocked(c, cell.Index)
}

// finishLocked updates campaign state after a cell settles and emits
// the progress event. Caller holds c.mu; it is released here.
func (s *server) finishLocked(c *campaign, idx int) {
	c.resGen++ // invalidate the materialized results snapshot
	cell := c.cells[idx]
	final := c.completed+c.failed == len(c.cells)
	if final {
		if c.failed > 0 {
			c.state = "failed"
		} else {
			c.state = "done"
		}
	}
	ev := progressEvent{
		Campaign: c.id, State: c.state,
		Total: len(c.cells), Completed: c.completed, Failed: c.failed,
		Cell: &cell,
	}
	line, _ := json.Marshal(ev)
	line = append(line, '\n')
	// Publish under the lock: sends are non-blocking (buffered channel,
	// select-default), and serializing them against the final close is
	// what keeps concurrent workers from sending on a closed channel.
	for _, ch := range c.subs {
		select {
		case ch <- line:
		default: // slow consumer: drop the event, the final close still lands
		}
	}
	if final {
		for _, ch := range c.subs {
			close(ch)
		}
		c.subs = nil
	}
	c.mu.Unlock()

	if final {
		s.store.Flush()
	}
}

// plan resolves and fully validates a campaign request into an
// unregistered campaign: scenarios, protocols, per-scenario configs and
// content hashes, and the cell grid split against the store (cells
// already present are restored up front — the service always resumes).
// plan touches no server state, so a failed request leaves no trace.
func (s *server) plan(id string, req campaignRequest) (*campaign, []cluster.Cell, error) {
	scs, err := resolveScenarios(req)
	if err != nil {
		return nil, nil, err
	}
	protocols, err := resolveProtocols(req.Protocols)
	if err != nil {
		return nil, nil, err
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}

	c := &campaign{
		id: id, req: req, scenarios: scs,
		protocols: protocols, seeds: seeds, state: "running",
	}
	for _, sc := range scs {
		cfg, err := caem.ScenarioConfig(sc)
		if err != nil {
			return nil, nil, err
		}
		if len(req.Config) > 0 {
			dec := json.NewDecoder(bytes.NewReader(req.Config))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&cfg); err != nil {
				return nil, nil, fmt.Errorf("config overrides: %w", err)
			}
		}
		cfg.Workers = 1 // the service's worker budget is the parallel unit
		cfg.TraceCSV = nil
		if err := cfg.Validate(); err != nil {
			return nil, nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		hash, err := caem.CellHash(cfg, sc)
		if err != nil {
			return nil, nil, err
		}
		c.configs = append(c.configs, cfg)
		c.hashes = append(c.hashes, hash)
	}

	// Expand the grid in campaign submission order and split it into
	// restored and pending cells.
	var pending []cluster.Cell
	for si, sc := range scs {
		for _, p := range protocols {
			for _, seed := range seeds {
				ref := cellRef{Scenario: sc.Name, Protocol: p.String(), Seed: seed, Status: "pending"}
				idx := len(c.cells)
				if s.store.HasCell(c.hashes[si], sc.Name, p, seed) {
					ref.Status = "restored"
					c.completed++
				} else {
					cfg := c.configs[si]
					cfg.Protocol, cfg.Seed = p, seed
					pending = append(pending, cluster.Cell{
						Campaign: id, Index: idx, Hash: c.hashes[si],
						Scenario: sc, Config: cfg,
					})
				}
				c.cells = append(c.cells, ref)
			}
		}
	}
	if len(pending) == 0 {
		c.state = "done"
	}
	return c, pending, nil
}

// register claims the campaign id under the server lock. It returns the
// already-registered campaign when the id is taken — the idempotency
// path — so concurrent equal POSTs cannot both schedule the grid.
func (s *server) register(c *campaign) (*campaign, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server is shutting down")
	}
	if existing := s.campaigns[c.id]; existing != nil {
		return existing, nil
	}
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	return nil, nil
}

// schedule submits the campaign's pending cells to the coordinator for
// lease-based distribution across local and joined workers.
func (s *server) schedule(pending []cluster.Cell) {
	if len(pending) > 0 {
		s.coord.Submit(pending)
	}
}

// launch plans, registers, and schedules a campaign (the recovery
// path; handleCreate interleaves spec persistence between the steps).
func (s *server) launch(id string, req campaignRequest) (*campaign, error) {
	c, pending, err := s.plan(id, req)
	if err != nil {
		return nil, err
	}
	if existing, err := s.register(c); err != nil {
		return nil, err
	} else if existing != nil {
		return existing, nil
	}
	s.schedule(pending)
	return c, nil
}

// recover reloads every persisted campaign spec and relaunches it —
// completed campaigns restore entirely from the store, interrupted ones
// re-run only their missing cells. A spec that no longer resolves (for
// example a library scenario renamed across versions) is skipped with a
// warning rather than wedging the whole service on startup.
func (s *server) recover() error {
	ids, err := s.store.CampaignIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		blob, err := s.store.LoadCampaignSpec(id)
		if err != nil {
			return err
		}
		var req campaignRequest
		if err := json.Unmarshal(blob, &req); err != nil {
			s.log.Warn("skipping unrecoverable campaign", "campaign", id, "error", err.Error())
			continue
		}
		if _, err := s.launch(id, req); err != nil {
			s.log.Warn("skipping unrecoverable campaign", "campaign", id, "error", err.Error())
			continue
		}
		s.log.Info("campaign recovered", "campaign", id)
	}
	return nil
}

// campaignID derives the canonical idempotent id of a request.
func campaignID(req campaignRequest) (string, []byte, error) {
	canonical, err := json.Marshal(req)
	if err != nil {
		return "", nil, err
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])[:12], canonical, nil
}

func resolveScenarios(req campaignRequest) ([]caem.Scenario, error) {
	var scs []caem.Scenario
	for _, name := range req.Scenarios {
		sc, err := caem.FindScenario(name)
		if err != nil {
			return nil, err
		}
		scs = append(scs, sc)
	}
	for i, raw := range req.Specs {
		sc, err := caem.LoadScenario(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("specs[%d]: %w", i, err)
		}
		scs = append(scs, sc)
	}
	for i, g := range req.Generate {
		gen, err := caem.ParseGenerate(g)
		if err != nil {
			return nil, fmt.Errorf("generate[%d]: %w", i, err)
		}
		scs = append(scs, gen...)
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("campaign needs at least one scenario (scenarios, specs, or generate)")
	}
	return scs, nil
}

func resolveProtocols(names []string) ([]caem.Protocol, error) {
	if len(names) == 0 {
		return caem.Protocols(), nil
	}
	out := make([]caem.Protocol, 0, len(names))
	for _, n := range names {
		p, err := caem.ParseProtocol(n)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ---- HTTP handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes the uniform /v1 error envelope
// {"error":{"code","message","details"}} with a stable machine-readable
// code (api.Code*).
func writeError(w http.ResponseWriter, status int, code string, err error) {
	api.WriteError(w, status, code, err.Error(), nil)
}

// writeInvalid rejects a request with invalid_request and the
// offending parameter in details.
func writeInvalid(w http.ResponseWriter, err error, param, value string) {
	api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest, err.Error(),
		map[string]string{param: value})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.campaigns)
	s.mu.Unlock()
	v := s.version
	if v == "" {
		v = "dev"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"role":      "leader",
		"ready":     true,
		"epoch":     s.coord.Epoch(),
		"version":   v,
		"workers":   s.workers,
		"campaigns": n,
		"cells":     s.store.Len(),
		"store":     s.store.Dir(),
	})
}

// handleLeader answers the worker re-targeting probe: who is leading,
// at which epoch. A standby answers the same route from its lock-file
// view; here the server itself is the leader.
func (s *server) handleLeader(w http.ResponseWriter, r *http.Request) {
	url := s.advertise
	if url == "" {
		url = "http://" + r.Host
	}
	writeJSON(w, http.StatusOK, cluster.LeaderInfo{
		LeaderURL: url,
		Epoch:     s.coord.Epoch(),
		Role:      "leader",
	})
}

func (s *server) handleCreate(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req campaignRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeInvalidRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	id, canonical, err := campaignID(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeInvalidRequest, err)
		return
	}

	// Plan first (pure validation: an invalid request must leave no
	// trace, or its persisted spec would wedge every future recovery),
	// then atomically claim the id — the idempotency path for retried
	// and concurrent equal POSTs — then persist the spec BEFORE any cell
	// runs, so a crash mid-campaign can always recover it.
	c, pending, err := s.plan(id, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeInvalidRequest, err)
		return
	}
	existing, err := s.register(c)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, api.CodeUnavailable, err)
		return
	}
	if existing != nil { // idempotent re-POST
		writeJSON(w, http.StatusOK, existing.snapshot())
		return
	}
	if err := s.store.SaveCampaignSpec(id, canonical); err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err)
		return
	}
	s.schedule(pending)
	s.log.Info("campaign accepted",
		"campaign", id, "cells", len(c.cells), "pending", len(pending))
	writeJSON(w, http.StatusAccepted, c.snapshot())
}

// pageParams parses page_size and page_token, writing the 400 itself
// on failure. queryHash binds tokens to the rest of the query string —
// a token replayed under different filters is rejected.
func pageParams(w http.ResponseWriter, r *http.Request, queryHash string) (size int, cur api.Cursor, ok bool) {
	q := r.URL.Query()
	if v := q.Get("page_size"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeInvalid(w, fmt.Errorf("page_size must be a non-negative integer"), "page_size", v)
			return 0, api.Cursor{}, false
		}
		size = n
	}
	if tok := q.Get("page_token"); tok != "" {
		c, err := api.DecodeCursor(tok, queryHash)
		if err != nil {
			writeInvalid(w, err, "page_token", tok)
			return 0, api.Cursor{}, false
		}
		cur = c
	}
	return size, cur, true
}

// pageBounds clips one page [start, end) out of total items. size 0
// means everything after the cursor.
func pageBounds(total, size int, cur api.Cursor) (start, end int) {
	start = min(cur.Off, total)
	end = total
	if size > 0 && start+size < total {
		end = start + size
	}
	return start, end
}

// setNextLink advertises the next page as a Link header on the
// canonical /v1 path, regardless of which alias served the request.
func setNextLink(w http.ResponseWriter, r *http.Request, token string) {
	u := *r.URL
	if !strings.HasPrefix(u.Path, "/v1/") {
		u.Path = "/v1" + u.Path
	}
	q := u.Query()
	q.Set("page_token", token)
	u.RawQuery = q.Encode()
	w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", u.RequestURI(), "next"))
}

// listResponse is the GET /v1/campaigns wire doc. NextPageToken is
// omitted on the last (or only) page, so an unpaginated listing is
// byte-identical to the pre-/v1 response.
type listResponse struct {
	Campaigns     []campaignStatus `json:"campaigns"`
	NextPageToken string           `json:"nextPageToken,omitempty"`
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	size, cur, ok := pageParams(w, r, "") // the listing has no filters to bind
	if !ok {
		return
	}
	s.mu.Lock()
	all := make([]*campaign, 0, len(s.order))
	for _, id := range s.order {
		all = append(all, s.campaigns[id])
	}
	s.mu.Unlock()

	start, end := pageBounds(len(all), size, cur)
	out := listResponse{Campaigns: make([]campaignStatus, 0, end-start)}
	for _, c := range all[start:end] {
		st := c.snapshot()
		st.Cells = nil // list view stays small
		out.Campaigns = append(out.Campaigns, st)
	}
	if end < len(all) {
		out.NextPageToken = api.EncodeCursor(end, "")
		setNextLink(w, r, out.NextPageToken)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) campaignFor(w http.ResponseWriter, r *http.Request) *campaign {
	s.mu.Lock()
	c := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if c == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
	}
	return c
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c := s.campaignFor(w, r); c != nil {
		writeJSON(w, http.StatusOK, c.snapshot())
	}
}

// resultCell is the wire form of one completed cell: identity plus the
// stored summary metrics.
type resultCell struct {
	Scenario              string  `json:"scenario"`
	Protocol              string  `json:"protocol"`
	Seed                  uint64  `json:"seed"`
	DurationSeconds       float64 `json:"durationSeconds"`
	TotalConsumedJ        float64 `json:"totalConsumedJ"`
	DeliveryRate          float64 `json:"deliveryRate"`
	MeanDelayMs           float64 `json:"meanDelayMs"`
	P95DelayMs            float64 `json:"p95DelayMs"`
	EnergyPerPacketMilliJ float64 `json:"energyPerPacketMilliJ"`
	AliveAtEnd            int     `json:"aliveAtEnd"`
	Delivered             uint64  `json:"delivered"`
	Generated             uint64  `json:"generated"`
}

// resultAggregate pairs a (scenario, protocol) group with its
// mean ± CI aggregates.
type resultAggregate struct {
	Scenario              string         `json:"scenario"`
	Protocol              string         `json:"protocol"`
	Seeds                 int            `json:"seeds"`
	ConsumedJ             caem.Aggregate `json:"consumedJ"`
	DeliveryRate          caem.Aggregate `json:"deliveryRate"`
	MeanDelayMs           caem.Aggregate `json:"meanDelayMs"`
	P95DelayMs            caem.Aggregate `json:"p95DelayMs"`
	EnergyPerPacketMilliJ caem.Aggregate `json:"energyPerPacketMilliJ"`
	AliveAtEnd            caem.Aggregate `json:"aliveAtEnd"`
}

// cellRefs expands the campaign grid into store refs in submission
// order. Everything read here is immutable after launch, so no lock is
// needed.
func (c *campaign) cellRefs() []caem.CellRef {
	refs := make([]caem.CellRef, 0, len(c.cells))
	for si, sc := range c.scenarios {
		for _, p := range c.protocols {
			for _, seed := range c.seeds {
				refs = append(refs, caem.CellRef{
					Hash: c.hashes[si], Scenario: sc.Name, Protocol: p, Seed: seed,
				})
			}
		}
	}
	return refs
}

// cachedResults returns the campaign's materialized results snapshot,
// rebuilding it when a cell settled since the last build. The rebuild
// resolves the grid with indexed point reads (caem.QueryCells — never
// a log rescan) and runs outside every lock: settlement, which holds
// c.mu, is never blocked behind a read, and a snapshot that races a
// settling cell is simply stamped stale so the next read rebuilds.
func (s *server) cachedResults(c *campaign) (*resultsCache, error) {
	c.mu.Lock()
	gen := c.resGen
	c.mu.Unlock()
	c.resMu.Lock()
	if rc := c.resCache; rc != nil && rc.gen == gen {
		c.resMu.Unlock()
		return rc, nil
	}
	c.resMu.Unlock()

	cells, err := s.store.QueryCells(c.cellRefs(), caem.CellQuery{})
	if err != nil {
		return nil, err
	}
	rc := &resultsCache{gen: gen, cells: cells, aggs: wireAggregates(caem.AggregateCampaign(cells))}
	c.resMu.Lock()
	if c.resCache == nil || c.resCache.gen <= gen {
		c.resCache = rc
	}
	c.resMu.Unlock()
	return rc, nil
}

func wireCells(cells []caem.CampaignCell) []resultCell {
	var out []resultCell
	for _, cell := range cells {
		res := cell.Result
		out = append(out, resultCell{
			Scenario: cell.Scenario, Protocol: cell.Protocol.String(), Seed: cell.Seed,
			DurationSeconds: res.DurationSeconds, TotalConsumedJ: res.TotalConsumedJ,
			DeliveryRate: res.DeliveryRate, MeanDelayMs: res.MeanDelayMs,
			P95DelayMs: res.P95DelayMs, EnergyPerPacketMilliJ: res.EnergyPerPacketMilliJ,
			AliveAtEnd: res.AliveAtEnd, Delivered: res.Delivered, Generated: res.Generated,
		})
	}
	return out
}

func wireAggregates(aggs []caem.CampaignAggregate) []resultAggregate {
	var out []resultAggregate
	for _, a := range aggs {
		out = append(out, resultAggregate{
			Scenario: a.Scenario, Protocol: a.Protocol.String(), Seeds: a.Seeds,
			ConsumedJ: a.ConsumedJ, DeliveryRate: a.DeliveryRate,
			MeanDelayMs: a.MeanDelayMs, P95DelayMs: a.P95DelayMs,
			EnergyPerPacketMilliJ: a.EnergyPerPacketMilliJ, AliveAtEnd: a.AliveAtEnd,
		})
	}
	return out
}

// resultsResponse is the GET /v1/campaigns/{id}/results wire doc. The
// extension fields are omitted when unused, so the default
// (unfiltered, unpaginated) document is byte-identical to the pre-/v1
// response.
type resultsResponse struct {
	ID         string               `json:"id"`
	State      string               `json:"state"`
	Total      int                  `json:"total"`
	Completed  int                  `json:"completed"`
	Cells      []resultCell         `json:"cells"`
	Aggregates []resultAggregate    `json:"aggregates"`
	Surfaces   []caem.MetricSurface `json:"surfaces,omitempty"`
	// NextPageToken resumes cell pagination; aggregates and surfaces
	// always cover the whole filtered set, not just this page.
	NextPageToken string `json:"nextPageToken,omitempty"`
}

// resultsQuery parses the filter parameters of a results request into
// a cell query plus requested percentiles, and derives the hash that
// page tokens bind to. Parse errors are written as invalid_request.
func resultsQuery(w http.ResponseWriter, r *http.Request) (q caem.CellQuery, ps []float64, qhash string, ok bool) {
	v := r.URL.Query()
	q = caem.CellQuery{
		Scenario: v.Get("scenario"),
		Protocol: v.Get("protocol"),
		Metric:   v.Get("metric"),
	}
	for _, bound := range []struct {
		name string
		dst  **float64
	}{{"min", &q.Min}, {"max", &q.Max}} {
		raw := v.Get(bound.name)
		if raw == "" {
			continue
		}
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			writeInvalid(w, fmt.Errorf("%s must be a number", bound.name), bound.name, raw)
			return q, nil, "", false
		}
		*bound.dst = &f
	}
	if raw := v.Get("top"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeInvalid(w, fmt.Errorf("top must be a non-negative integer"), "top", raw)
			return q, nil, "", false
		}
		q.Top = n
	}
	if raw := v.Get("percentiles"); raw != "" {
		if q.Metric == "" {
			writeInvalid(w, fmt.Errorf("percentiles needs a metric"), "percentiles", raw)
			return q, nil, "", false
		}
		for _, part := range strings.Split(raw, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				writeInvalid(w, fmt.Errorf("percentiles must be comma-separated numbers"), "percentiles", raw)
				return q, nil, "", false
			}
			ps = append(ps, f)
		}
	}
	qhash = api.QueryHash(q.Scenario, q.Protocol, q.Metric,
		v.Get("min"), v.Get("max"), v.Get("top"), v.Get("percentiles"))
	return q, ps, qhash, true
}

// handleResults serves the campaign's completed cells from its
// materialized snapshot — built from the persistent store, so it works
// mid-run (partial results), after completion, and after a process
// restart — filtered, ordered, and paginated by the query parameters.
func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	c := s.campaignFor(w, r)
	if c == nil {
		return
	}
	q, ps, qhash, ok := resultsQuery(w, r)
	if !ok {
		return
	}
	size, cur, ok := pageParams(w, r, qhash)
	if !ok {
		return
	}
	rc, err := s.cachedResults(c)
	if err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err)
		return
	}

	cells := rc.cells
	aggs := rc.aggs
	if q != (caem.CellQuery{}) {
		if cells, err = caem.FilterCells(cells, q); err != nil {
			writeError(w, http.StatusBadRequest, api.CodeInvalidRequest, err)
			return
		}
		aggs = wireAggregates(caem.AggregateCampaign(cells))
	}
	out := resultsResponse{
		ID: c.id, Total: len(c.cells), Completed: len(rc.cells),
		Aggregates: aggs,
	}
	if len(ps) > 0 {
		if out.Surfaces, err = caem.PercentileSurface(cells, q.Metric, ps); err != nil {
			writeError(w, http.StatusBadRequest, api.CodeInvalidRequest, err)
			return
		}
	}
	start, end := pageBounds(len(cells), size, cur)
	out.Cells = wireCells(cells[start:end])
	if end < len(cells) {
		out.NextPageToken = api.EncodeCursor(end, qhash)
		setNextLink(w, r, out.NextPageToken)
	}
	c.mu.Lock()
	out.State = c.state
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleProgress streams campaign progress as NDJSON: one snapshot line
// immediately, then one line per settling cell until the campaign
// finishes (the stream then closes). `curl -N` renders it live.
func (s *server) handleProgress(w http.ResponseWriter, r *http.Request) {
	c := s.campaignFor(w, r)
	if c == nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")

	c.mu.Lock()
	snap := progressEvent{
		Campaign: c.id, State: c.state,
		Total: len(c.cells), Completed: c.completed, Failed: c.failed,
	}
	var ch chan []byte
	if c.state == "running" {
		ch = make(chan []byte, len(c.cells)+1)
		c.subs = append(c.subs, ch)
	}
	c.mu.Unlock()

	enc, _ := json.Marshal(snap)
	w.Write(append(enc, '\n'))
	if flusher != nil {
		flusher.Flush()
	}
	if ch == nil {
		return // already settled: snapshot is the whole story
	}
	for {
		select {
		case line, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		case <-s.quit:
			return
		}
	}
}
