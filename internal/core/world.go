package core

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/sim"
)

// WorldEvent is one scheduled mutation of the simulated world: an external
// condition change (node failure, battery service, traffic shift, channel
// weather) that the protocol under test must adapt to. World events are
// the execution layer of the scenario engine (internal/scenario): the
// declarative timeline compiles down to a []WorldEvent on the Config, and
// Run schedules each one into the discrete-event engine before the first
// protocol event fires, so event ordering — and therefore the whole run —
// stays deterministic for a given Config.
//
// Apply closures must be pure functions of the World they receive (no
// captured mutable state), so a compiled Config can be shared across
// concurrent runs.
type WorldEvent struct {
	// At is the absolute simulation time the mutation takes effect.
	At sim.Time
	// Apply performs the mutation through the World surface.
	Apply func(w *World)
}

// World is the mutation surface handed to world events. It exposes the
// externally-forceable state of the network — node lifecycle, batteries,
// traffic sources, propagation parameters — while keeping protocol state
// (FSMs, queues, clustering) under the simulation's own control.
type World struct {
	net *Network
}

// Now returns the current simulation time.
func (w *World) Now() sim.Time { return w.net.eng.Now() }

// NodeCount returns the network size.
func (w *World) NodeCount() int { return len(w.net.nodes) }

// Alive reports whether node i is currently operational.
func (w *World) Alive(i int) bool { return w.net.nodes[i].alive }

// RemainingEnergyJ returns node i's current battery level.
func (w *World) RemainingEnergyJ(i int) float64 { return w.net.nodes[i].battery.Remaining() }

// ArrivalRate returns node i's current traffic rate in packets/second.
func (w *World) ArrivalRate(i int) float64 { return w.net.nodes[i].source.RatePerSecond }

// Kill forces node i to fail immediately (crash, tampering, environmental
// damage — any failure other than battery exhaustion; the battery keeps
// its charge). The usual death bookkeeping applies: if the node headed a
// cluster, the cluster collapses until the next election. Killing a dead
// node is a no-op.
func (w *World) Kill(i int) {
	net := w.net
	n := net.nodes[i]
	if !n.alive {
		return
	}
	now := net.eng.Now()
	// Settle dwell energy under the pre-failure state first, so the
	// ledger is exact up to the failure instant.
	n.accrue(net, now)
	if n.alive {
		net.nodeDied(n, now)
	}
}

// Revive returns a dead node to service with energyJ added to whatever
// charge its battery retained (a battery swap / field repair). The node
// wakes in the sleep state outside any cluster and rejoins at the next
// LEACH election; its traffic source restarts immediately. Packets that
// were buffered when the node failed are lost (the repair replaces the
// hardware; a delivered months-stale reading would also poison the delay
// metric with repair downtime rather than MAC behaviour). Reviving an
// alive node is a no-op.
func (w *World) Revive(i int, energyJ float64) {
	net := w.net
	n := net.nodes[i]
	if n.alive {
		return
	}
	n.battery.Recharge(energyJ)
	if n.battery.Dead() {
		return // no usable charge; the repair failed
	}
	now := net.eng.Now()
	n.alive = true
	n.lastAccrual = now
	n.state = mac.SensorSleep
	n.isHead = false
	n.clusterIdx = -1
	for {
		if !n.buf.DropHead() {
			break
		}
	}
	n.adjust.OnServiced(0)
	net.aliveMask[i] = true
	net.life.NodeRevived(now)
	net.emit(TraceRevive, i, 0, "")
	net.scheduleArrival(n)
}

// AddEnergy tops up an alive node's battery by joules (energy harvesting,
// battery service). Dead nodes are unaffected — use Revive to also return
// the node to service.
func (w *World) AddEnergy(i int, joules float64) {
	n := w.net.nodes[i]
	if !n.alive {
		return
	}
	n.battery.Recharge(joules)
}

// SetArrivalRate changes node i's Poisson traffic rate to perSecond
// (0 silences the source). The next inter-arrival gap is redrawn at the
// new rate; the change applies even while the node is dead, taking effect
// if it is later revived.
func (w *World) SetArrivalRate(i int, perSecond float64) {
	if perSecond < 0 {
		panic(fmt.Sprintf("core: negative arrival rate %v for node %d", perSecond, i))
	}
	net := w.net
	n := net.nodes[i]
	n.source.RatePerSecond = perSecond
	net.eng.Cancel(n.arrivalEv)
	if n.alive {
		net.scheduleArrival(n)
	}
}

// ScaleArrivalRate multiplies node i's current traffic rate by factor.
func (w *World) ScaleArrivalRate(i int, factor float64) {
	if factor < 0 {
		panic(fmt.Sprintf("core: negative rate factor %v for node %d", factor, i))
	}
	w.SetArrivalRate(i, w.net.nodes[i].source.RatePerSecond*factor)
}

// MoveNode re-places node i at (x, y) — vehicle-mounted or relocated
// hardware, a mobility trace step. Every cached link realization
// touching the node is discarded and re-materializes lazily at the new
// distance from the pair's original deterministic stream (the same
// invalidation path weather events use, restricted to one row/column of
// the link matrix). Dead nodes move too: the new position takes effect
// if the node is later revived. It panics on a position outside the
// field — the scenario compiler validates targets up front.
func (w *World) MoveNode(i int, x, y float64) {
	net := w.net
	field := geom.Field{Width: net.cfg.FieldWidth, Height: net.cfg.FieldHeight}
	p := geom.Point{X: x, Y: y}
	if !field.Contains(p) {
		panic(fmt.Sprintf("core: world event moved node %d to (%v, %v), outside the %vx%v field",
			i, x, y, net.cfg.FieldWidth, net.cfg.FieldHeight))
	}
	n := net.nodes[i]
	d := n.pos.Distance(p)
	net.positions[i] = p
	n.pos = p
	net.resetLinksOf(i)
	net.emit(TraceMove, i, int(d), "")
}

// MoveNodeWithin re-places node i uniformly at random inside the given
// rectangle, drawing from the dedicated mobility stream so the draw —
// like every other stochastic process — is a pure function of the
// master seed and the event order.
func (w *World) MoveNodeWithin(i int, x, y, width, height float64) {
	st := &w.net.mobilityStream
	px := x + st.Float64()*width
	py := y + st.Float64()*height
	w.MoveNode(i, px, py)
}

// StartInterference begins a cross-network interference burst: every
// node currently positioned inside the rectangle suffers penaltyDB of
// SNR loss on all its links until EndInterference is called with the
// same id. Membership is fixed at burst start — a node that moves out
// keeps its penalty (the interferer tracks the neighbourhood, not the
// node), and the end event releases exactly what the start imposed. The
// id must be unique among in-flight bursts; the scenario compiler
// derives it from the event's position in the timeline.
func (w *World) StartInterference(id uint64, x, y, width, height float64, penaltyDB float64) {
	net := w.net
	if net.interferenceByID == nil {
		net.interferenceByID = make(map[uint64][]int)
	}
	if _, dup := net.interferenceByID[id]; dup {
		panic(fmt.Sprintf("core: interference burst id %d already active", id))
	}
	var affected []int
	for i, p := range net.positions {
		if p.X >= x && p.X < x+width && p.Y >= y && p.Y < y+height {
			affected = append(affected, i)
			net.interference.Add(i, penaltyDB)
		}
	}
	net.interferenceByID[id] = affected
	net.emit(TraceInterference, -1, len(affected), "start")
}

// EndInterference releases the penalties burst id imposed. Ending an
// unknown id is a no-op (the burst may have caught no nodes worth
// recording, but an empty burst is still registered, so in practice
// this only tolerates ends racing a horizon cut).
func (w *World) EndInterference(id uint64, penaltyDB float64) {
	net := w.net
	affected, ok := net.interferenceByID[id]
	if !ok {
		return
	}
	for _, i := range affected {
		net.interference.Remove(i, penaltyDB)
	}
	delete(net.interferenceByID, id)
	net.emit(TraceInterference, -1, len(affected), "end")
}

// InterferencePenaltyDB returns the SNR penalty currently imposed on the
// link between nodes a and b (0 when no burst covers either endpoint).
func (w *World) InterferencePenaltyDB(a, b int) float64 {
	return w.net.interference.PenaltyDB(a, b)
}

// SetSinkDown fails (true) or recovers (false) the base station. While
// the sink is down, cluster heads keep aggregating but the forwarding
// extension transmits nothing; the backlog flushes after recovery. The
// outage is metric-visible only with Config.BaseStationForwarding
// enabled, but the trace event is emitted regardless. Setting the
// current state again is a no-op (no trace event).
func (w *World) SetSinkDown(down bool) {
	net := w.net
	if net.sinkDown == down {
		return
	}
	net.sinkDown = down
	detail := "up"
	if down {
		detail = "down"
	}
	net.emit(TraceSink, -1, 0, detail)
}

// SinkDown reports whether a sink outage is currently in effect.
func (w *World) SinkDown() bool { return w.net.sinkDown }

// Position returns node i's current field coordinates.
func (w *World) Position(i int) (x, y float64) {
	p := w.net.positions[i]
	return p.X, p.Y
}

// UpdateChannel mutates the deployment-wide propagation parameters
// (Doppler, shadowing, path loss, link budget — the "weather"). Every
// cached link realization is discarded; links re-materialize lazily under
// the new parameters from their original per-pair streams, so the run
// stays a pure function of the master seed. It panics on parameters that
// fail validation — the scenario compiler validates values up front, so
// reaching an invalid combination here is a programming error.
func (w *World) UpdateChannel(mutate func(p *channel.Params)) {
	net := w.net
	params := net.cfg.Channel
	mutate(&params)
	if err := params.Validate(); err != nil {
		panic(fmt.Sprintf("core: world event produced invalid channel parameters: %v", err))
	}
	net.cfg.Channel = params
	net.resetLinks()
}
