// Command caem-serve is the always-on campaign service: an HTTP API
// over a persistent, append-only results store and a fault-tolerant
// cluster of simulation workers.
//
// Usage:
//
//	caem-serve -addr :8080 -store ./caem-store -workers 0
//	caem-serve -addr :8081 -store ./caem-store -standby http://primary:8080
//	caem-serve -join http://primary:8080,http://standby:8081 -workers 0
//
// The first form runs a coordinator: it owns the store, serves the
// campaign API, and executes cells on its local worker budget. The
// second runs a hot standby over the same store directory: it watches
// the coordinator's leader lock and takes over — replaying the
// coordinator journal, fencing the dead leader's epoch — the moment the
// lock expires. The third form runs a worker process that joins the
// cluster over HTTP (list every coordinator, comma-separated, so the
// worker can re-target across a failover): it claims leases of campaign
// cells, executes them on its own simulation pools, and pushes the
// results back. Workers hold no state — they can be added, removed, or
// killed at any point; the coordinator's lease/heartbeat protocol
// re-queues whatever a dead worker was holding, and determinism makes
// the recomputed results bit-identical.
//
// API (canonical paths live under /v1; see routes.go for the full
// table and testdata/api_routes.golden for the locked surface):
//
//	POST /v1/campaigns                submit a campaign (idempotent: equal
//	                                  requests map to the same campaign id)
//	GET  /v1/campaigns                list campaigns (cursor pagination:
//	                                  page_size, page_token)
//	GET  /v1/campaigns/{id}           status: per-cell states + counters
//	GET  /v1/campaigns/{id}/results   completed cells + mean±CI aggregates,
//	                                  read back from the store (works
//	                                  mid-run and after restarts);
//	                                  filterable (scenario, protocol,
//	                                  metric, min, max), orderable (top),
//	                                  percentile surfaces (percentiles),
//	                                  paginated (page_size, page_token)
//	GET  /v1/campaigns/{id}/progress  NDJSON progress stream (curl -N)
//	GET  /v1/healthz                  liveness + store stats + build version
//	GET  /v1/metrics                  Prometheus text-format exposition
//	GET  /v1/cluster/status           work queue, leases, workers, poisons
//	GET  /v1/cluster/leader           current leader URL, epoch, role
//	POST /v1/leases/...               the worker lease protocol (see
//	                                  internal/cluster)
//	GET  /debug/pprof/                runtime profiling (unversioned by Go
//	                                  convention)
//
// Legacy unversioned paths remain mounted for one release: GETs answer
// 301 to their /v1 twin (query string preserved); POSTs, /healthz, and
// /metrics are served at both paths (redirecting a POST would make
// net/http clients replay it as a bodyless GET, and probes/scrapers
// commonly treat redirects as failures). Every non-2xx response bodies
// the uniform envelope {"error":{"code","message","details"}} with a
// stable machine-readable code.
//
// Worker mode serves the same /metrics, /healthz, and /debug/pprof/
// surface on its own observability listener (-obs-addr, loopback by
// default), so every process of a cluster is scrapeable.
//
// A campaign request names library scenarios (or embeds inline specs),
// protocols, seeds, and partial config overrides:
//
//	curl -s localhost:8080/v1/campaigns -d '{
//	  "scenarios": ["node-churn"],
//	  "protocols": ["leach", "scheme1"],
//	  "seeds": [1, 2, 3],
//	  "config": {"durationSeconds": 300}
//	}'
//
// Every completed (scenario, protocol, seed) cell is persisted as it
// finishes, keyed by a content hash of its full configuration. The
// service survives restarts: campaign specs live in the store, so a
// restarted caem-serve re-registers every campaign, restores the cells
// already on disk, and re-runs only what is missing. Results are
// deterministic — a cell computed before a crash, after a crash, or on
// any worker of the cluster is bit-identical — so failures and recovery
// change nothing about the answers.
//
// Diagnostics are structured log/slog records on stderr (text by
// default, -log-format json for machine ingestion, -v for debug
// detail); worker and coordinator records carry worker_id, lease_id,
// and campaign attributes.
//
// On SIGTERM/SIGINT both modes drain gracefully: in-flight cells
// finish (bounded by -drain), worker mode releases its leases back to
// the coordinator, and the store flushes before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/caem"
	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/cluster/journal"
	"repro/internal/obs"
)

// version is the build version, stamped at link time via
//
//	go build -ldflags "-X main.version=v1.2.3"
//
// and surfaced in -version, /healthz, and the caem_build_info metric.
var version = "dev"

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (coordinator mode)")
		storeDir    = flag.String("store", "caem-store", "results-store directory (created if absent)")
		workers     = flag.Int("workers", 0, "simulation worker budget (0 = one per CPU)")
		join        = flag.String("join", "", "coordinator URL(s), comma-separated: run as a worker of that cluster instead of serving")
		standby     = flag.String("standby", "", "primary coordinator URL: run as a hot standby over the same store, taking over when its leader lock expires")
		advertise   = flag.String("advertise", "", "base URL workers should use to reach this coordinator (default http://<bound addr>)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight cells")
		leaseTTL    = flag.Duration("lease-ttl", 0, "worker lease TTL before cells re-queue (0 = default 15s)")
		lockTTL     = flag.Duration("lock-ttl", 3*time.Second, "leader-lock TTL before a standby may take over")
		obsAddr     = flag.String("obs-addr", "127.0.0.1:0", "worker-mode observability listen address for /metrics and /debug/pprof (empty disables)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		verbose     = flag.Bool("v", false, "enable debug logging")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Printf("caem-serve %s %s\n", version, runtime.Version())
		os.Exit(0)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
		os.Exit(2)
	}

	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if *join != "" {
		os.Exit(workerMain(workerConfig{
			join:    *join,
			workers: w,
			drain:   *drain,
			obsAddr: *obsAddr,
			log:     logger,
		}))
	}
	os.Exit(serveMode(serveOptions{
		addr:      *addr,
		storeDir:  *storeDir,
		workers:   w,
		drain:     *drain,
		leaseTTL:  *leaseTTL,
		lockTTL:   *lockTTL,
		advertise: *advertise,
		standby:   *standby != "",
		primary:   *standby,
		log:       logger,
	}))
}

// serveOptions parameterizes a coordinator-mode (or standby-mode)
// process.
type serveOptions struct {
	// addr is the listen address.
	addr string
	// storeDir is the results-store directory; the leader lock and the
	// coordinator journal live in its cluster/ subdirectory, so a primary
	// and its standbys must share it.
	storeDir string
	// workers is the local executor-loop budget.
	workers int
	// drain is the graceful-shutdown deadline.
	drain time.Duration
	// leaseTTL is the worker lease TTL (0 = coordinator default).
	leaseTTL time.Duration
	// maxBatch caps cells per lease (0 = coordinator default).
	maxBatch int
	// lockTTL is the leader-lock TTL (0 = lock default).
	lockTTL time.Duration
	// advertise is the URL published to workers via /v1/cluster/leader
	// ("" derives http://<bound addr>).
	advertise string
	// standby starts the process watching the leader lock instead of
	// claiming it; primary is the current leader's URL hint served to
	// workers until the lock file says otherwise.
	standby bool
	primary string
	// log receives structured records (nil discards).
	log *slog.Logger
	// addrReady, when non-nil, is called with the bound listen address
	// once the listener is up (tests use it to find the port).
	addrReady func(addr string)
}

// serveMode runs a coordinator: leader election, journal replay, store,
// campaign API, local workers. A primary claims the leader lock
// immediately and refuses to start if another coordinator holds it; a
// standby (-standby) serves only health/metrics/leader-lookup until the
// lock expires, then takes over at a higher epoch — replaying the
// journal the dead leader wrote — and fences everything the old epoch
// granted.
func serveMode(opts serveOptions) int {
	logger := opts.log
	if logger == nil {
		logger = obs.NopLogger()
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		logger.Error("listen failed", "addr", opts.addr, "error", err.Error())
		return 1
	}
	bound := ln.Addr().String()
	advertise := strings.TrimRight(opts.advertise, "/")
	if advertise == "" {
		advertise = "http://" + bound
	}

	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, version)
	takeovers := cluster.TakeoverCounter(reg)

	clusterDir := filepath.Join(opts.storeDir, "cluster")
	if err := os.MkdirAll(clusterDir, 0o755); err != nil {
		logger.Error("creating cluster dir failed", "error", err.Error())
		return 1
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "caem-serve"
	}
	lock := &cluster.LeaderLock{
		Path:   filepath.Join(clusterDir, "leader.lock"),
		TTL:    opts.lockTTL,
		Holder: fmt.Sprintf("%s-%d", host, os.Getpid()),
		URL:    advertise,
	}

	// The handler starts as the standby surface (health, metrics, leader
	// lookup, 503 for everything else) and is swapped for the full
	// campaign server once this process holds the lock. Atomic, so the
	// listener can come up before leadership is settled.
	var handler atomic.Pointer[http.Handler]
	var sb http.Handler = standbyMux(reg, lock.Path, opts.primary)
	handler.Store(&sb)
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	})}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	if opts.addrReady != nil {
		opts.addrReady(bound)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var epoch int64
	if opts.standby {
		logger.Info("standing by", "addr", bound, "primary", opts.primary,
			"lock", lock.Path, "version", version)
		poll := opts.lockTTL / 3
		if poll <= 0 {
			poll = time.Second
		}
		if poll < 50*time.Millisecond {
			poll = 50 * time.Millisecond
		}
		t := time.NewTicker(poll)
		defer t.Stop()
	standbyWait:
		for {
			select {
			case err := <-done:
				logger.Error("http server failed", "error", err.Error())
				return 1
			case <-sig:
				logger.Info("standby interrupted before taking over")
				httpSrv.Close()
				return 0
			case <-t.C:
			}
			epoch, err = lock.TryAcquire()
			if errors.Is(err, cluster.ErrLockHeld) {
				continue
			}
			if err != nil {
				logger.Error("leader lock acquisition failed", "error", err.Error())
				return 1
			}
			takeovers.Inc()
			logger.Warn("leader lock expired; taking over", "epoch", epoch)
			break standbyWait
		}
	} else {
		epoch, err = lock.TryAcquire()
		if errors.Is(err, cluster.ErrLockHeld) {
			info, _ := cluster.ReadLockFile(lock.Path)
			logger.Error("another coordinator holds the leader lock; start this one with -standby",
				"holder", info.Holder, "url", info.URL, "epoch", info.Epoch)
			return 1
		}
		if err != nil {
			logger.Error("leader lock acquisition failed", "error", err.Error())
			return 1
		}
	}

	// Leadership held at epoch. Open the store, replay the predecessor's
	// journal, and start journaling our own epoch before any scheduling.
	st, err := caem.OpenStore(opts.storeDir)
	if err != nil {
		logger.Error("opening store failed", "error", err.Error())
		return 1
	}
	if n := st.RecoveredBytes(); n > 0 {
		logger.Warn("store recovered from a torn tail", "dropped_bytes", n)
	}
	jnl, jstate, err := journal.Open(clusterDir)
	if err != nil {
		logger.Error("opening coordinator journal failed", "error", err.Error())
		return 1
	}
	jnl.Observe(reg)
	if n := jnl.ReplayedRecords(); n > 0 {
		logger.Info("coordinator journal replayed",
			"records", n, "epoch", jstate.Epoch, "queued", len(jstate.Queue))
	}
	if n := jnl.RecoveredBytes(); n > 0 {
		logger.Warn("journal recovered from a torn tail", "dropped_bytes", n)
	}
	if err := jnl.Begin(epoch, jstate); err != nil {
		logger.Error("starting journal epoch failed", "error", err.Error())
		return 1
	}
	srv, err := newServerWith(st, serverConfig{
		workers: opts.workers,
		lease: cluster.Options{
			LeaseTTL: opts.leaseTTL,
			MaxBatch: opts.maxBatch,
			Epoch:    epoch,
			Journal:  jnl,
			Guard:    func() error { return lock.Verify(epoch) },
		},
		metrics:   reg,
		logger:    logger,
		version:   version,
		jstate:    &jstate,
		advertise: advertise,
	})
	if err != nil {
		logger.Error("starting server failed", "error", err.Error())
		return 1
	}
	var full http.Handler = srv
	handler.Store(&full)
	logger.Info("caem-serve leading",
		"addr", bound, "store", st.Dir(), "workers", opts.workers,
		"epoch", epoch, "cells_on_disk", st.Len(), "version", version)

	// Renew the lock at TTL/3. Only a definitive deposition (ErrLockLost:
	// another holder or epoch owns the lock) fences immediately; a
	// transient renewal failure — claim contention, a slow filesystem —
	// retries at the next tick, because self-deposing on a hiccup while
	// the lock file still names us serves 410s with no successor to take
	// the work. If transient failures persist past the last successfully
	// written deadline, the lease we hold on disk has lapsed and a
	// standby may legitimately take over at any moment, so we fence then.
	renewStop := make(chan struct{})
	renewDone := make(chan struct{})
	lockTTL := opts.lockTTL
	if lockTTL <= 0 {
		lockTTL = 3 * time.Second
	}
	go func() {
		defer close(renewDone)
		period := lockTTL / 3
		if period <= 0 {
			period = time.Second
		}
		deadline := time.Now().Add(lockTTL)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-renewStop:
				return
			case <-t.C:
			}
			err := lock.Renew(epoch)
			switch {
			case err == nil:
				deadline = time.Now().Add(lockTTL)
			case errors.Is(err, cluster.ErrLockLost):
				logger.Error("leader lock lost; fencing", "epoch", epoch, "error", err.Error())
				srv.coord.Fence()
				return
			case time.Now().After(deadline):
				logger.Error("leader lock renewals failing past the lease deadline; fencing",
					"epoch", epoch, "error", err.Error())
				srv.coord.Fence()
				return
			default:
				logger.Warn("leader lock renewal failed; retrying",
					"epoch", epoch, "error", err.Error())
			}
		}
	}()

	code := 0
	select {
	case err := <-done:
		logger.Error("http server failed", "error", err.Error())
		code = 1
	case <-sig:
		logger.Info("draining", "deadline", opts.drain.String())
	}
	close(renewStop)
	<-renewDone
	httpSrv.Close()
	if err := srv.Shutdown(opts.drain); err != nil {
		logger.Error("shutdown incomplete", "error", err.Error())
		code = 1
	}
	lock.Release(epoch) // best-effort: a deposed leader has nothing to release
	if err := jnl.Close(); err != nil {
		logger.Error("closing journal failed", "error", err.Error())
		code = 1
	}
	if err := st.Close(); err != nil {
		logger.Error("closing store failed", "error", err.Error())
		code = 1
	}
	return code
}

// standbyMux is the HTTP surface of a coordinator that is not (yet)
// leading: health that says so, metrics, and the leader lookup workers
// use to re-target. Everything else answers 503 + Retry-After — never
// 410, which would make workers abandon leases that are still live
// under the real leader.
func standbyMux(reg *obs.Registry, lockPath, primaryHint string) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /v1/metrics", reg.Handler())
	health := func(w http.ResponseWriter, _ *http.Request) {
		v := version
		if v == "" {
			v = "dev"
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "role": "standby", "ready": false, "version": v,
		})
	}
	mux.HandleFunc("GET /healthz", health)
	mux.HandleFunc("GET /v1/healthz", health)
	leader := func(w http.ResponseWriter, _ *http.Request) {
		out := cluster.LeaderInfo{LeaderURL: primaryHint, Role: "standby"}
		if info, err := cluster.ReadLockFile(lockPath); err == nil {
			out.LeaderURL, out.Epoch = info.URL, info.Epoch
		}
		writeJSON(w, http.StatusOK, out)
	}
	mux.HandleFunc("GET /v1/cluster/leader", leader)
	mux.HandleFunc("GET /cluster/leader", api.RedirectV1)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			"standby: not leading yet", nil)
	})
	return mux
}

// workerConfig parameterizes a worker-mode process.
type workerConfig struct {
	// join lists coordinator base URLs, comma-separated. Workers rotate
	// through them on transport errors and fencing, and re-resolve the
	// leader via /v1/cluster/leader, so a failover needs no restart.
	join string
	// workers is the number of executor loops.
	workers int
	// drain is the graceful-shutdown deadline.
	drain time.Duration
	// obsAddr is the observability listen address serving /metrics,
	// /healthz, and /debug/pprof for this worker process ("" disables).
	obsAddr string
	// log receives structured records (nil discards).
	log *slog.Logger
	// obsReady, when non-nil, is called with the bound observability
	// address once the listener is up (tests use it to find the port).
	obsReady func(addr string)
}

// workerMain joins an existing coordinator: n executor loops claim
// leases over HTTP until interrupted, then release them and exit. The
// process serves its own observability endpoints on cfg.obsAddr.
func workerMain(cfg workerConfig) int {
	logger := cfg.log
	if logger == nil {
		logger = obs.NopLogger()
	}
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, version)

	var obsSrv *http.Server
	if cfg.obsAddr != "" {
		ln, err := net.Listen("tcp", cfg.obsAddr)
		if err != nil {
			logger.Error("observability listener failed", "addr", cfg.obsAddr, "error", err.Error())
			return 1
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintf(w, "{\"ok\":true,\"mode\":\"worker\",\"version\":%q}\n", version)
		})
		registerPprof(mux)
		obsSrv = &http.Server{Handler: mux}
		go obsSrv.Serve(ln)
		bound := ln.Addr().String()
		logger.Info("worker observability listening", "addr", bound)
		if cfg.obsReady != nil {
			cfg.obsReady(bound)
		}
	}

	var bases []string
	for _, b := range strings.Split(cfg.join, ",") {
		if b = strings.TrimRight(strings.TrimSpace(b), "/"); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		logger.Error("no coordinator URL in -join")
		return 1
	}
	remote := &cluster.Remote{Bases: bases}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.workers; i++ {
		w := &cluster.Worker{
			Queue:   remote,
			Name:    fmt.Sprintf("%s-%d-%d", host, os.Getpid(), i),
			Metrics: reg,
			Logger:  logger,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	logger.Info("workers joined", "count", cfg.workers, "coordinator", cfg.join, "version", version)

	<-ctx.Done()
	logger.Info("draining", "deadline", cfg.drain.String())
	drained := make(chan struct{})
	go func() {
		wg.Wait()
		close(drained)
	}()
	code := 0
	select {
	case <-drained:
	case <-time.After(cfg.drain):
		logger.Warn("drain deadline passed; abandoning leases (they expire and re-queue)")
		code = 1
	}
	if obsSrv != nil {
		obsSrv.Close()
	}
	return code
}
