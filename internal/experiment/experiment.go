// Package experiment regenerates every table and figure of the paper's
// evaluation (§IV), plus the extension metrics the paper defers to its
// long version and the ablations listed in DESIGN.md §3.
//
// Each experiment is a pure function from Options to a Report holding a
// formatted table, CSV payload, and headline notes. cmd/caem-bench runs
// them at full scale and writes the results; bench_test.go runs them at
// reduced Scale so `go test -bench` stays fast.
package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/queueing"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Options controls experiment scale, reproducibility, replication, and
// parallelism.
type Options struct {
	// Seed roots all runs: replicate k of every grid cell runs at seed
	// Seed+k unless Seeds pins an explicit list.
	Seed uint64
	// Scale in (0, 1] shrinks the experiment: node count, horizon, and
	// sweep sizes. 1.0 reproduces the paper's setup.
	Scale float64
	// Replications is the number of seed replicates behind every
	// reported cell: each grid configuration runs at Replications
	// consecutive seeds and tables carry mean ± 95% CI entries. 0 means
	// the default of 5; 1 disables aggregation (bare single-seed means,
	// the pre-replication table shape).
	Replications int
	// Seeds, when non-empty, pins the exact replication seed list and
	// overrides Replications.
	Seeds []uint64
	// Workers is the number of simulations run concurrently: 0 means one
	// per CPU, 1 restores the legacy serial execution. Every run owns its
	// own random streams and the replicated grid is aggregated in
	// submission order, so the reports are bit-identical for any value.
	Workers int
	// Progress, when non-nil, receives one line per completed run.
	Progress func(format string, args ...any)
}

// defaultReplications is the seed-grid size behind every table cell
// when Options.Replications is unset.
const defaultReplications = 5

// DefaultOptions runs at full paper scale, seed 1, five replications.
func DefaultOptions() Options {
	return Options{Seed: 1, Scale: 1.0}
}

// seedList resolves the replication seeds: the pinned Seeds list, or
// Replications (default 5) consecutive seeds from Seed.
func (o Options) seedList() []uint64 {
	if len(o.Seeds) > 0 {
		return o.Seeds
	}
	n := o.Replications
	if n <= 0 {
		n = defaultReplications
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = o.Seed + uint64(i)
	}
	return seeds
}

func (o Options) scale() float64 {
	if o.Scale <= 0 || o.Scale > 1 {
		return 1.0
	}
	return o.Scale
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// run submits a batch of labelled configurations to the worker pool and
// returns the results in submission order. All experiment sweeps funnel
// through here: the grid cells are fully independent simulations, so they
// fan out across Options.Workers goroutines with bit-identical output.
func (o Options) run(jobs []runner.Job) []core.Result {
	if len(jobs) > 1 {
		o.logf("running %d simulations (workers=%d; 0 means NumCPU)...", len(jobs), o.Workers)
	}
	return runner.Run(runner.Options{
		Workers: o.Workers,
		Progress: func(j runner.Job, res core.Result) {
			o.logf("  %s: consumed %.1f J, delivered %d, elapsed %.0f s",
				j.Label, res.TotalConsumedJ, res.Delivered, res.Elapsed.Seconds())
		},
	}, jobs)
}

// nodes returns the scaled node count (never below 20, so clustering and
// contention stay meaningful).
func (o Options) nodes() int {
	n := int(100*o.scale() + 0.5)
	if n < 20 {
		n = 20
	}
	return n
}

// horizon returns a scaled duration.
func (o Options) horizon(full sim.Time) sim.Time {
	h := sim.Time(float64(full) * o.scale())
	if h < 30*sim.Second {
		h = 30 * sim.Second
	}
	return h
}

// loads returns the paper's traffic-load sweep (Fig. 10-12 x-axis),
// thinned under scaling.
func (o Options) loads() []float64 {
	full := []float64{5, 10, 15, 20, 25, 30}
	if o.scale() >= 0.8 {
		return full
	}
	return []float64{5, 15, 30}
}

// baseConfig returns the Table II configuration at the experiment scale.
func (o Options) baseConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Nodes = o.nodes()
	// Keep node density constant when shrinking, so cluster geometry and
	// channel statistics stay comparable.
	side := 100.0 * sqrtf(float64(cfg.Nodes)/100.0)
	cfg.FieldWidth, cfg.FieldHeight = side, side
	return cfg
}

func sqrtf(x float64) float64 {
	// Newton iterations are plenty here and avoid importing math for one
	// call site... but clarity beats cleverness:
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// protocols lists the three variants in presentation order with the
// paper's labels.
type protocolCase struct {
	name   string
	policy queueing.ThresholdPolicy
}

func protocolCases() []protocolCase {
	return []protocolCase{
		{"pure-LEACH", queueing.PolicyNone},
		{"Scheme1", queueing.PolicyAdaptive},
		{"Scheme2", queueing.PolicyFixedHighest},
	}
}

// Table is a simple rectangular result table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; the cell count must match the headers.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("experiment: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render returns the table with aligned columns.
func (t Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (cells are simple
// numbers/labels, so no quoting is needed).
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Report is one experiment's output.
type Report struct {
	// ID is the experiment key ("figure8", "table1", ...).
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Table holds the regenerated rows/series.
	Table Table
	// Notes are headline observations (the claims EXPERIMENTS.md checks).
	Notes []string
	// Charts optionally carry figure renderings (cmd/caem-bench writes
	// them as SVG next to the CSVs).
	Charts []plot.Chart
}

// Render returns the full human-readable report.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	b.WriteString(r.Table.Render())
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// f0 renders count-valued metrics (packets, nodes, events): replicate
// means round to whole units, and a single replicate reproduces the
// legacy integer cells exactly.
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
