// Package phy models the adaptive physical layer (ABICM, §II.B of the
// paper): four modulation/coding modes with distinct effective throughputs
// (2 Mbps, 1 Mbps, 450 kbps, 250 kbps), burst-by-burst mode selection from
// the measured CSI, residual packet error probability, per-packet airtime,
// and the FEC encode/decode computation energy the paper charges to the
// battery (§I, consumption source 1).
//
// The paper uses ABICM "for illustration only"; what the scheduling layer
// needs from the PHY is (a) the airtime of a packet at each mode, (b) the
// SNR threshold above which each mode sustains the required BER, and
// (c) a residual error model. We therefore implement the standard
// uncoded-BER curves for BPSK/QPSK/16-QAM with per-mode coding gains
// rather than simulating the coded-modulation trellis itself; DESIGN.md §4
// records this substitution.
package phy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Modulation enumerates the constellations used by the four ABICM modes.
type Modulation int

const (
	BPSK Modulation = iota
	QPSK
	QAM16
)

func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns log2 of the constellation size.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	default:
		panic(fmt.Sprintf("phy: unknown modulation %d", int(m)))
	}
}

// Mode is one ABICM configuration: a constellation plus an error-control
// code, yielding an effective information throughput and an SNR threshold
// above which the target BER is met.
type Mode struct {
	// Index is the mode's class, 0 = most robust / slowest.
	Index int
	// Name is a human-readable label.
	Name string
	// Modulation is the constellation.
	Modulation Modulation
	// CodeRate is the FEC rate (information bits / coded bits).
	CodeRate float64
	// ThroughputBps is the effective information throughput after coding
	// and modulation (what the paper's "2 Mbps, 1 Mbps, 450 kbps,
	// 250 kbps" refer to).
	ThroughputBps float64
	// ThresholdSNRdB is the minimum CSI at which the transmitter selects
	// this mode.
	ThresholdSNRdB float64
	// CodingGainDB shifts the uncoded BER curve to model the FEC.
	CodingGainDB float64
}

// Airtime returns how long the data radio is on to carry an
// information payload of the given size at this mode. This is the paper's
// central energy quantity: lower modes keep the radio on longer per useful
// bit (consumption source 2 in §I).
func (m Mode) Airtime(payloadBits int) sim.Time {
	if payloadBits <= 0 {
		panic(fmt.Sprintf("phy: Airtime with payloadBits=%d", payloadBits))
	}
	return sim.FromSeconds(float64(payloadBits) / m.ThroughputBps)
}

// CodedBits returns the on-air bit count for a payload, i.e. payload
// inflated by the FEC redundancy.
func (m Mode) CodedBits(payloadBits int) int {
	return int(math.Ceil(float64(payloadBits) / m.CodeRate))
}

// qfunc is the Gaussian tail probability Q(x) = P(N(0,1) > x), computed
// from the complementary error function.
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// BitErrorRate returns the post-decoding bit error probability of the mode
// at the given SNR (per-symbol, dB). The uncoded curves are the textbook
// expressions; the coding gain shifts the effective SNR.
func (m Mode) BitErrorRate(snrDB float64) float64 {
	effSNR := math.Pow(10, (snrDB+m.CodingGainDB)/10)
	bps := float64(m.Modulation.BitsPerSymbol())
	// Per-bit SNR for Gray-mapped constellations.
	ebn0 := effSNR / bps
	var ber float64
	switch m.Modulation {
	case BPSK:
		ber = qfunc(math.Sqrt(2 * ebn0))
	case QPSK:
		// QPSK has the same per-bit error rate as BPSK.
		ber = qfunc(math.Sqrt(2 * ebn0))
	case QAM16:
		// Nearest-neighbour approximation for Gray-mapped square 16-QAM.
		ber = 0.75 * qfunc(math.Sqrt(4.0/5.0*ebn0))
	default:
		panic("phy: unknown modulation")
	}
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// PacketErrorProb returns the probability that a packet of the given
// payload size is corrupted when sent at this mode and SNR, assuming
// independent residual bit errors after decoding.
func (m Mode) PacketErrorProb(snrDB float64, payloadBits int) float64 {
	ber := m.BitErrorRate(snrDB)
	if ber <= 0 {
		return 0
	}
	// 1 - (1-ber)^L via log for numerical stability at tiny ber.
	return -math.Expm1(float64(payloadBits) * math.Log1p(-ber))
}

// Table is the ordered set of ABICM modes, ascending by threshold (and
// therefore by throughput).
type Table struct {
	modes []Mode
}

// Default4Mode returns the paper's 4-mode configuration. Thresholds follow
// DESIGN.md §4 (the scan loses the exact table): 5 / 8 / 12 / 16 dB for
// 250 k / 450 k / 1 M / 2 M. Coding gains are chosen so each mode achieves
// BER ≤ 1e-5 at its own threshold — i.e. operating a mode at its admission
// SNR is safe, and the residual packet error probability decays as the
// channel exceeds the threshold.
func Default4Mode() Table {
	modes := []Mode{
		{Index: 0, Name: "250kbps/BPSK r1/2", Modulation: BPSK, CodeRate: 0.5, ThroughputBps: 250e3, ThresholdSNRdB: 5, CodingGainDB: 6.5},
		{Index: 1, Name: "450kbps/QPSK r1/2", Modulation: QPSK, CodeRate: 0.5, ThroughputBps: 450e3, ThresholdSNRdB: 8, CodingGainDB: 6.5},
		{Index: 2, Name: "1Mbps/QPSK r3/4", Modulation: QPSK, CodeRate: 0.75, ThroughputBps: 1e6, ThresholdSNRdB: 12, CodingGainDB: 4.5},
		{Index: 3, Name: "2Mbps/16QAM r3/4", Modulation: QAM16, CodeRate: 0.75, ThroughputBps: 2e6, ThresholdSNRdB: 16, CodingGainDB: 5.0},
	}
	t, err := NewTable(modes)
	if err != nil {
		panic("phy: default table invalid: " + err.Error())
	}
	return t
}

// NewTable validates and builds a mode table. Modes must have strictly
// increasing thresholds and throughputs: a higher class must be both
// faster and more demanding, or mode selection is ill-defined.
func NewTable(modes []Mode) (Table, error) {
	if len(modes) == 0 {
		return Table{}, fmt.Errorf("phy: empty mode table")
	}
	ms := make([]Mode, len(modes))
	copy(ms, modes)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ThresholdSNRdB < ms[j].ThresholdSNRdB })
	for i := range ms {
		m := &ms[i]
		if m.ThroughputBps <= 0 {
			return Table{}, fmt.Errorf("phy: mode %q has non-positive throughput", m.Name)
		}
		if m.CodeRate <= 0 || m.CodeRate > 1 {
			return Table{}, fmt.Errorf("phy: mode %q has code rate %v outside (0, 1]", m.Name, m.CodeRate)
		}
		m.Index = i
		if i > 0 {
			if ms[i].ThresholdSNRdB == ms[i-1].ThresholdSNRdB {
				return Table{}, fmt.Errorf("phy: modes %q and %q share threshold %v dB", ms[i-1].Name, ms[i].Name, ms[i].ThresholdSNRdB)
			}
			if ms[i].ThroughputBps <= ms[i-1].ThroughputBps {
				return Table{}, fmt.Errorf("phy: mode %q not faster than lower-threshold mode %q", ms[i].Name, ms[i-1].Name)
			}
		}
	}
	return Table{modes: ms}, nil
}

// Len returns the number of modes (classes).
func (t Table) Len() int { return len(t.modes) }

// Mode returns the mode of the given class index.
func (t Table) Mode(i int) Mode {
	return t.modes[i]
}

// Modes returns a copy of the mode list, ascending by class.
func (t Table) Modes() []Mode {
	out := make([]Mode, len(t.modes))
	copy(out, t.modes)
	return out
}

// Highest returns the top class (fastest mode).
func (t Table) Highest() Mode { return t.modes[len(t.modes)-1] }

// Lowest returns class 0 (most robust mode).
func (t Table) Lowest() Mode { return t.modes[0] }

// PickMode returns the fastest mode whose threshold the given CSI
// satisfies, and ok=false if the CSI is below even the lowest class (the
// channel cannot sustain the target BER at any configuration; the paper's
// pure-LEACH baseline transmits anyway and the packet is likely lost).
func (t Table) PickMode(snrDB float64) (Mode, bool) {
	best := -1
	for i := range t.modes {
		if snrDB >= t.modes[i].ThresholdSNRdB {
			best = i
		} else {
			break
		}
	}
	if best < 0 {
		return t.modes[0], false
	}
	return t.modes[best], true
}

// ThresholdForClass returns the admission SNR of class i.
func (t Table) ThresholdForClass(i int) float64 { return t.modes[i].ThresholdSNRdB }

// CodecEnergyModel charges the battery for FEC encoding and decoding
// (consumption source 1 in §I). The cost is proportional to the number of
// redundancy bits processed: stronger codes (lower rate) at lower modes
// cost more per information bit.
type CodecEnergyModel struct {
	// EncodeJPerRedundantBit is the transmitter-side energy per FEC
	// redundancy bit. Typical microcontroller figures are a few nJ/bit;
	// the paper notes these are small next to the radio but still counts
	// them.
	EncodeJPerRedundantBit float64
	// DecodeJPerRedundantBit is the receiver-side (Viterbi-class) energy
	// per redundancy bit; decoding costs more than encoding.
	DecodeJPerRedundantBit float64
}

// DefaultCodecEnergy returns nJ-scale codec costs.
func DefaultCodecEnergy() CodecEnergyModel {
	return CodecEnergyModel{
		EncodeJPerRedundantBit: 1e-9,
		DecodeJPerRedundantBit: 5e-9,
	}
}

// EncodeEnergy returns the transmit-side codec energy for a payload at a
// mode.
func (c CodecEnergyModel) EncodeEnergy(m Mode, payloadBits int) float64 {
	red := m.CodedBits(payloadBits) - payloadBits
	return float64(red) * c.EncodeJPerRedundantBit
}

// DecodeEnergy returns the receive-side codec energy for a payload at a
// mode.
func (c CodecEnergyModel) DecodeEnergy(m Mode, payloadBits int) float64 {
	red := m.CodedBits(payloadBits) - payloadBits
	return float64(red) * c.DecodeJPerRedundantBit
}
