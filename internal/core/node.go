package core

import (
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/sim"
)

// node is one sensor's run-time state. The protocol logic lives in
// internal/mac and internal/queueing; node wires it to the event engine
// and the energy ledger.
type node struct {
	idx int
	pos geom.Point

	battery *energy.Battery
	buf     *queueing.Buffer
	source  *queueing.PoissonSource
	adjust  *queueing.ThresholdAdjuster

	counters mac.Counters

	state        mac.SensorState
	isHead       bool
	clusterIdx   int // index into net.clusters, -1 when unassigned/dead
	sensingSince sim.Time
	lastAccrual  sim.Time
	diedAt       sim.Time // latest death time (exhaustion or world kill)

	arrivalEv sim.EventID
	backoffEv sim.EventID

	// Reusable event handlers (created once in New) and the context the
	// single pending backoff event reads at fire time, so the arrival and
	// contention hot paths never allocate closures.
	arrivalFn  func()
	backoffFn  func()
	backoffCl  *cluster
	backoffGen uint64

	backoffStream *rng.Stream
	perStream     *rng.Stream
	csiStream     *rng.Stream
	arrivalStream *rng.Stream // owned by source; kept for in-place reseeding

	alive bool

	// queueSum/queueSamples accumulate the node's own time-averaged
	// queue length for the per-node fairness report.
	serviceShare uint64 // packets delivered from this node
}

// accrue charges the battery for the continuous power drawn since the last
// accrual, given the node's current radio states, and returns false if the
// battery died during the interval. Discrete costs (airtime, startup,
// pulses, codec) are charged separately at their events; accrue covers
// only dwell power, so the two never double count:
//
//   - sleep:            data sleep + tone sleep
//   - sensing/backoff:  data sleep + tone rx (monitoring)
//   - transmit:         tone rx only (data tx airtime is discrete)
//   - cluster head:     handled in clusterAccrue (data idle-listen / rx)
//
// The MCU+sensing baseline is always on while alive.
func (n *node) accrue(net *Network, now sim.Time) bool {
	dur := now - n.lastAccrual
	if dur <= 0 {
		return n.alive
	}
	n.lastAccrual = now
	if !n.alive {
		return false
	}
	d := &net.cfg.Device
	if !n.battery.DrawPower(now, energy.Baseline, d.BaselinePower, dur) {
		net.nodeDied(n, now)
		return false
	}
	if n.isHead {
		return net.headDwell(n, dur, now)
	}
	var dataP, toneP float64
	var dataCause, toneCause energy.Cause
	switch n.state {
	case mac.SensorSleep:
		dataP, dataCause = d.DataSleepPower, energy.DataSleep
		toneP, toneCause = d.ToneSleepPower, energy.ToneRx
	case mac.SensorSensing, mac.SensorBackoff:
		dataP, dataCause = d.DataSleepPower, energy.DataSleep
		toneP, toneCause = d.ToneRxPower, energy.ToneRx
	case mac.SensorTransmit:
		dataP, dataCause = 0, energy.DataSleep
		toneP, toneCause = d.ToneRxPower, energy.ToneRx
	}
	if dataP > 0 && !n.battery.DrawPower(now, dataCause, dataP, dur) {
		net.nodeDied(n, now)
		return false
	}
	if toneP > 0 && !n.battery.DrawPower(now, toneCause, toneP, dur) {
		net.nodeDied(n, now)
		return false
	}
	return true
}

// currentThresholdClass returns the ABICM class the node's policy
// currently demands, and whether a CSI check applies at all.
func (n *node) currentThresholdClass(net *Network) (class int, checkCSI bool) {
	switch net.cfg.Policy {
	case queueing.PolicyNone:
		return 0, false
	case queueing.PolicyFixedHighest:
		return net.cfg.Modes.Len() - 1, true
	case queueing.PolicyAdaptive:
		return n.adjust.Class(), true
	default:
		panic("netsim: unknown policy")
	}
}
