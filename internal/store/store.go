package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	dataFile     = "results.jsonl"
	indexFile    = "index.json"
	campaignsDir = "campaigns"

	// recordVersion is the on-disk record format version.
	recordVersion = 1
	// indexFlushEvery bounds how many appended records an index
	// checkpoint can trail behind; a crash re-scans at most this many
	// log lines on the next Open.
	indexFlushEvery = 64
)

// WriteError wraps a failure to make stored data durable: appending a
// record line ("append"), fsyncing the log ("sync"), or checkpointing
// the index ("index"). Callers that retry transient storage faults can
// detect it with errors.As; Unwrap exposes the underlying cause.
type WriteError struct {
	Op  string // "append" | "sync" | "index"
	Err error
}

func (e *WriteError) Error() string { return fmt.Sprintf("store: %s: %v", e.Op, e.Err) }
func (e *WriteError) Unwrap() error { return e.Err }

// Key identifies one stored campaign cell. Hash is the caller-computed
// content hash of everything that determines the cell's result besides
// (Scenario, Protocol, Seed) — for caem campaigns, the normalized base
// configuration plus the full scenario spec — so a stored cell is only
// ever reused for a bit-identical rerun.
type Key struct {
	Hash     string
	Scenario string
	Protocol string
	Seed     uint64
}

// String renders the canonical index key. Fields are escaped so that no
// scenario or protocol name can alias another key.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/%d",
		url.PathEscape(k.Hash), url.PathEscape(k.Scenario), url.PathEscape(k.Protocol), k.Seed)
}

// validate reports the first structural problem with the key.
func (k Key) validate() error {
	switch {
	case k.Hash == "":
		return fmt.Errorf("store: key has empty hash")
	case k.Scenario == "":
		return fmt.Errorf("store: key has empty scenario")
	case k.Protocol == "":
		return fmt.Errorf("store: key has empty protocol")
	}
	return nil
}

// Summary is the flat per-run metric set stored with each cell: the
// headline evaluation metrics every campaign report and aggregate is
// built from. It deliberately excludes the bulky per-run detail (time
// series, per-node outcomes, round reports) — a stored cell answers
// "what did this run measure", not "replay everything it did".
type Summary struct {
	DurationSeconds        float64 `json:"durationSeconds"`
	Rounds                 int     `json:"rounds"`
	TotalConsumedJ         float64 `json:"totalConsumedJ"`
	AvgRemainingJ          float64 `json:"avgRemainingJ"`
	AliveAtEnd             int     `json:"aliveAtEnd"`
	FirstDeathSeconds      float64 `json:"firstDeathSeconds,omitempty"`
	FirstDeathValid        bool    `json:"firstDeathValid,omitempty"`
	NetworkLifetimeSeconds float64 `json:"networkLifetimeSeconds,omitempty"`
	NetworkDead            bool    `json:"networkDead,omitempty"`
	EnergyPerPacketMilliJ  float64 `json:"energyPerPacketMilliJ"`
	Generated              uint64  `json:"generated"`
	Delivered              uint64  `json:"delivered"`
	DroppedBuffer          uint64  `json:"droppedBuffer"`
	DroppedRetry           uint64  `json:"droppedRetry"`
	DeliveryRate           float64 `json:"deliveryRate"`
	ThroughputKbps         float64 `json:"throughputKbps"`
	MeanDelayMs            float64 `json:"meanDelayMs"`
	P95DelayMs             float64 `json:"p95DelayMs"`
	MaxDelayMs             float64 `json:"maxDelayMs"`
	QueueStdDev            float64 `json:"queueStdDev"`
	Collisions             uint64  `json:"collisions"`
	ChannelFails           uint64  `json:"channelFails"`
}

// Record is one stored campaign cell: a self-describing line of
// results.jsonl. Campaign is informative (which campaign first produced
// the cell); lookups go through Key, so any campaign with the same
// content hash reuses the cell.
type Record struct {
	V        int     `json:"v"`
	Campaign string  `json:"campaign,omitempty"`
	Hash     string  `json:"hash"`
	Scenario string  `json:"scenario"`
	Protocol string  `json:"protocol"`
	Seed     uint64  `json:"seed"`
	Summary  Summary `json:"summary"`
}

// Key returns the record's cell identity.
func (r Record) Key() Key {
	return Key{Hash: r.Hash, Scenario: r.Scenario, Protocol: r.Protocol, Seed: r.Seed}
}

// indexEntry locates one record line inside results.jsonl.
type indexEntry struct {
	K   string `json:"k"`
	Off int64  `json:"off"`
	Len int    `json:"len"`
}

// indexDoc is the on-disk index: the entries in append order plus the
// log length they cover, so Open can detect staleness in O(1).
type indexDoc struct {
	V       int          `json:"v"`
	Size    int64        `json:"size"`
	Entries []indexEntry `json:"entries"`
}

// Store is an open results store. All methods are safe for concurrent
// use within one process.
type Store struct {
	dir string

	mu        sync.Mutex
	f         *os.File
	size      int64                 // current validated log length
	index     map[string]indexEntry // key → latest record line
	order     []Key                 // first-Put order, deduplicated
	dirty     int                   // records appended since last index flush
	recovered int64                 // torn-tail bytes dropped by Open
	fault     func(op string) error // injected write fault (tests)
	met       *storeMetrics         // nil until Observe; nil is inert
}

// SetFault installs a write-fault injector consulted before each log
// append ("append"), log fsync ("sync"), and index checkpoint ("index").
// A non-nil return surfaces from Put/Flush/Close as a *WriteError with
// that Op. Fault-injection instrumentation for tests; pass nil to clear.
//
// The injection points model real partial-failure windows: an "append"
// fault fails before any byte is written (the log is untouched); a
// "sync" fault fails after the line hit the page cache but before the
// store acknowledged it, so the record is not indexed in this process
// but — exactly like a crash between write and fsync that the kernel
// nevertheless flushed — may legitimately reappear on reopen.
func (s *Store) SetFault(f func(op string) error) {
	s.mu.Lock()
	s.fault = f
	s.mu.Unlock()
}

// faultAt reports the injected fault for op, if any. Caller holds mu.
func (s *Store) faultAt(op string) error {
	if s.fault == nil {
		return nil
	}
	if err := s.fault(op); err != nil {
		s.met.fault(op)
		return &WriteError{Op: op, Err: err}
	}
	return nil
}

// Open opens (creating if needed) the store rooted at dir, loading the
// index, scanning any log tail the index does not cover, and truncating
// a torn final line if the previous writer crashed mid-append.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, campaignsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, dataFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, f: f, index: make(map[string]indexEntry)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load restores the in-memory index: from index.json when it is present
// and consistent with the log, then by scanning whatever the index does
// not cover. A stale-beyond-the-log index (the log was truncated behind
// our back) is discarded and rebuilt from scratch.
func (s *Store) load() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	logLen := fi.Size()

	covered := int64(0)
	if blob, err := os.ReadFile(filepath.Join(s.dir, indexFile)); err == nil {
		var doc indexDoc
		if json.Unmarshal(blob, &doc) == nil && doc.V == recordVersion && doc.Size <= logLen {
			ok := true
			for _, e := range doc.Entries {
				if e.Off < 0 || e.Len <= 0 || e.Off+int64(e.Len) > doc.Size {
					ok = false
					break
				}
			}
			if ok {
				for _, e := range doc.Entries {
					if _, dup := s.index[e.K]; !dup {
						if k, err := s.keyAt(e); err == nil {
							s.order = append(s.order, k)
						} else {
							ok = false
							break
						}
					}
					s.index[e.K] = e
				}
				if ok {
					covered = doc.Size
				}
			}
			if !ok { // undecodable entry: fall back to a full rebuild
				s.index = make(map[string]indexEntry)
				s.order = nil
			}
		}
	}
	return s.scan(covered, logLen)
}

// keyAt re-reads the record at an index entry and returns its Key —
// used when rehydrating the append order from the index file.
func (s *Store) keyAt(e indexEntry) (Key, error) {
	var r Record
	if err := s.readAt(e, &r); err != nil {
		return Key{}, err
	}
	return r.Key(), nil
}

// scan decodes log records in [from, to), extending the index, and
// truncates the log at the first torn or undecodable line.
func (s *Store) scan(from, to int64) error {
	s.size = from
	if from >= to {
		return nil
	}
	buf := make([]byte, to-from)
	if _, err := s.f.ReadAt(buf, from); err != nil {
		return fmt.Errorf("store: reading log tail: %w", err)
	}
	off := from
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			break // torn tail: no final newline
		}
		line := buf[:nl]
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.V != recordVersion || r.Key().validate() != nil {
			break // undecodable or wrong-version line: stop here
		}
		k := r.Key()
		if _, dup := s.index[k.String()]; !dup {
			s.order = append(s.order, k)
		}
		s.index[k.String()] = indexEntry{K: k.String(), Off: off, Len: nl + 1}
		off += int64(nl + 1)
		buf = buf[nl+1:]
		s.size = off
	}
	if s.size < to {
		s.recovered = to - s.size
		if err := s.f.Truncate(s.size); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of distinct stored cells.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// RecoveredBytes reports how many torn-tail bytes Open dropped to
// restore a consistent log (0 for a clean shutdown).
func (s *Store) RecoveredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Has reports whether a cell with the given key is stored.
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[k.String()]
	return ok
}

// Get returns the stored record for the key, reading exactly one log
// line via the index (O(1) in the store size).
func (s *Store) Get(k Key) (Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[k.String()]
	if !ok {
		return Record{}, false, nil
	}
	var r Record
	if err := s.readAt(e, &r); err != nil {
		return Record{}, false, err
	}
	return r, true, nil
}

// readAt decodes the record line at an index entry. Caller holds mu (or
// is single-threaded during load).
func (s *Store) readAt(e indexEntry, r *Record) error {
	buf := make([]byte, e.Len)
	if _, err := s.f.ReadAt(buf, e.Off); err != nil {
		return fmt.Errorf("store: reading record at %d: %w", e.Off, err)
	}
	if err := json.Unmarshal(bytes.TrimSuffix(buf, []byte{'\n'}), r); err != nil {
		return fmt.Errorf("store: corrupt record at %d: %w", e.Off, err)
	}
	return nil
}

// Put appends one record and updates the index. Re-putting an existing
// key appends a fresh line and repoints the index at it (last write
// wins), keeping the log append-only.
func (s *Store) Put(r Record) error {
	r.V = recordVersion
	if err := r.Key().validate(); err != nil {
		return err
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.faultAt("append"); err != nil {
		return err
	}
	if _, err := s.f.WriteAt(line, s.size); err != nil {
		s.met.fault("append")
		return &WriteError{Op: "append", Err: err}
	}
	if err := s.faultAt("sync"); err != nil {
		return err
	}
	syncStart := time.Now()
	if err := s.f.Sync(); err != nil {
		s.met.fault("sync")
		return &WriteError{Op: "sync", Err: err}
	}
	s.met.observeFsync(time.Since(syncStart).Seconds())
	k := r.Key()
	if _, dup := s.index[k.String()]; !dup {
		s.order = append(s.order, k)
	}
	s.index[k.String()] = indexEntry{K: k.String(), Off: s.size, Len: len(line)}
	s.size += int64(len(line))
	s.dirty++
	s.met.appendDone(len(line), len(s.order))
	if s.dirty >= indexFlushEvery {
		return s.flushIndexLocked()
	}
	return nil
}

// Keys returns every stored cell key in first-Put order.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, len(s.order))
	copy(out, s.order)
	return out
}

// Records returns every stored record in first-Put order (for a re-put
// key, the latest version).
func (s *Store) Records() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.order))
	for _, k := range s.order {
		var r Record
		if err := s.readAt(s.index[k.String()], &r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Flush checkpoints the index to disk (atomically: temp file + rename).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushIndexLocked()
}

func (s *Store) flushIndexLocked() error {
	if err := s.faultAt("index"); err != nil {
		return err
	}
	start := time.Now()
	doc := indexDoc{V: recordVersion, Size: s.size, Entries: make([]indexEntry, 0, len(s.order))}
	for _, k := range s.order {
		doc.Entries = append(doc.Entries, s.index[k.String()])
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(s.dir, indexFile+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		s.met.fault("index")
		return &WriteError{Op: "index", Err: err}
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, indexFile)); err != nil {
		s.met.fault("index")
		return &WriteError{Op: "index", Err: err}
	}
	s.dirty = 0
	s.met.observeIndexCheckpoint(time.Since(start).Seconds())
	return nil
}

// Close checkpoints the index and releases the log file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.flushIndexLocked()
	cerr := s.f.Close()
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		return fmt.Errorf("store: %w", cerr)
	}
	return nil
}

// campaignPath maps a campaign id to its blob file. Ids are escaped so
// arbitrary identifiers cannot traverse outside the campaigns dir.
func (s *Store) campaignPath(id string) (string, error) {
	if id == "" {
		return "", fmt.Errorf("store: empty campaign id")
	}
	return filepath.Join(s.dir, campaignsDir, url.PathEscape(id)+".json"), nil
}

// PutCampaign persists an opaque campaign spec blob under id
// (atomically), creating or replacing it.
func (s *Store) PutCampaign(id string, blob []byte) error {
	path, err := s.campaignPath(id)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetCampaign returns the campaign spec blob stored under id.
func (s *Store) GetCampaign(id string) ([]byte, error) {
	path, err := s.campaignPath(id)
	if err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: campaign %q: %w", id, err)
	}
	return blob, nil
}

// Campaigns returns the ids of every stored campaign spec, sorted.
func (s *Store) Campaigns() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, campaignsDir))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id, err := url.PathUnescape(strings.TrimSuffix(name, ".json"))
		if err != nil {
			continue // not one of ours
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}
