package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name (including any
// _bucket/_sum/_count histogram suffix), its labels, and its value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family recovered from an exposition.
type ParsedFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// Exposition is a parsed Prometheus text-format document. The parser
// is deliberately strict — it is the test suite's format validator and
// the obs-check lint, so anything a real Prometheus scraper could
// trip over must be an error here, not a shrug.
type Exposition struct {
	// Families in document order, keyed by family (base) name.
	Families map[string]*ParsedFamily
	Order    []string
}

// Value returns the value of the sample with the exact name and label
// set (labels as alternating key, value pairs), and whether it exists.
func (e *Exposition) Value(name string, labels ...string) (float64, bool) {
	if len(labels)%2 != 0 {
		panic("obs: Value wants alternating label key/value pairs")
	}
	fam, ok := e.Families[familyName(name)]
	if !ok {
		return 0, false
	}
	for _, s := range fam.Samples {
		if s.Name != name || len(s.Labels) != len(labels)/2 {
			continue
		}
		match := true
		for i := 0; i < len(labels); i += 2 {
			if s.Labels[labels[i]] != labels[i+1] {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum returns the summed value of every sample with the given name
// regardless of labels — e.g. a counter totaled across its worker
// label — and whether at least one sample matched.
func (e *Exposition) Sum(name string) (float64, bool) {
	fam, ok := e.Families[familyName(name)]
	if !ok {
		return 0, false
	}
	total, matched := 0.0, false
	for _, s := range fam.Samples {
		if s.Name == name {
			total += s.Value
			matched = true
		}
	}
	return total, matched
}

// Has reports whether the exposition contains a family with the name.
func (e *Exposition) Has(name string) bool {
	_, ok := e.Families[familyName(name)]
	return ok
}

// familyName strips the histogram sample suffixes back to the family
// base name.
func familyName(sample string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base != sample {
			return base
		}
	}
	return sample
}

// ParseText parses and validates a Prometheus text-format exposition.
// It enforces the structural rules a scraper relies on: HELP/TYPE
// comments precede their samples, types are known, sample names belong
// to a declared family (allowing histogram suffixes only for
// histograms), label syntax is well-formed, values parse as floats,
// no series repeats, and histogram series carry le labels with an
// +Inf terminal bucket consistent with _count.
func ParseText(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Families: make(map[string]*ParsedFamily)}
	seen := make(map[string]bool) // duplicate-series detection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(exp, line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := familyName(sample.Name)
		fam := exp.Families[base]
		if fam == nil {
			// A histogram suffix on an undeclared family must not silently
			// invent a family named e.g. "x" from a stray "x_sum".
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, sample.Name)
		}
		if sample.Name != base && fam.Type != TypeHistogram {
			return nil, fmt.Errorf("line %d: %s sample %s carries a histogram suffix", lineNo, fam.Type, sample.Name)
		}
		if sample.Name == base && fam.Type == TypeHistogram {
			return nil, fmt.Errorf("line %d: histogram %s has a bare sample line", lineNo, base)
		}
		key := sample.Name + "{" + canonicalLabels(sample.Labels) + "}"
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range exp.Order {
		if err := checkHistogram(exp.Families[name]); err != nil {
			return nil, err
		}
	}
	return exp, nil
}

func parseComment(exp *Exposition, line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment: legal, ignored
	}
	name := fields[2]
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("invalid metric name %q in %s comment", name, fields[1])
	}
	fam := exp.Families[name]
	if fam == nil {
		fam = &ParsedFamily{Name: name}
		exp.Families[name] = fam
		exp.Order = append(exp.Order, name)
	}
	if fields[1] == "HELP" {
		if len(fields) == 4 {
			fam.Help = fields[3]
		}
		return nil
	}
	if len(fields) < 4 {
		return fmt.Errorf("# TYPE %s missing a type", name)
	}
	typ := strings.TrimSpace(fields[3])
	switch typ {
	case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
	default:
		return fmt.Errorf("unknown type %q for %s", typ, name)
	}
	if len(fam.Samples) > 0 {
		return fmt.Errorf("# TYPE %s after its samples", name)
	}
	fam.Type = typ
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := -1
		inQuote, escaped := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case escaped:
				escaped = false
			case inQuote && c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	valueStr := strings.TrimSpace(rest)
	// A trailing timestamp is legal in the format; this repo never emits
	// one, and allowing it here would let a corrupt value slip through.
	if strings.ContainsAny(valueStr, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parseValue(valueStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valueStr, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, out map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", body[i:])
		}
		name := body[i : i+eq]
		if !labelNameRe.MatchString(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("label %s value not quoted", name)
		}
		i++
		var b strings.Builder
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return fmt.Errorf("dangling escape in label %s", name)
				}
				switch body[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %s", body[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return fmt.Errorf("unterminated value for label %s", name)
		}
		if _, dup := out[name]; dup {
			return fmt.Errorf("duplicate label %s", name)
		}
		out[name] = b.String()
		if i < len(body) {
			if body[i] != ',' {
				return fmt.Errorf("expected ',' after label %s", name)
			}
			i++
		}
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistogram validates a histogram family's internal consistency:
// every series carries le-labeled buckets ending at +Inf whose
// cumulative count equals its _count sample.
func checkHistogram(fam *ParsedFamily) error {
	if fam.Type != TypeHistogram {
		return nil
	}
	type hseries struct {
		infBucket, count float64
		haveInf, haveCnt bool
	}
	groups := map[string]*hseries{}
	group := func(labels map[string]string) *hseries {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := canonicalLabels(rest)
		g := groups[key]
		if g == nil {
			g = &hseries{}
			groups[key] = g
		}
		return g
	}
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s has a bucket without le", fam.Name)
			}
			if le == "+Inf" {
				g := group(s.Labels)
				g.infBucket, g.haveInf = s.Value, true
			}
		case fam.Name + "_count":
			g := group(s.Labels)
			g.count, g.haveCnt = s.Value, true
		}
	}
	for key, g := range groups {
		if !g.haveInf || !g.haveCnt {
			return fmt.Errorf("histogram %s{%s} is missing its +Inf bucket or _count", fam.Name, key)
		}
		if g.infBucket != g.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != count %v", fam.Name, key, g.infBucket, g.count)
		}
	}
	return nil
}

func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	// insertion sort: tiny maps
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// Lint checks the registry's metric catalog against the project's
// naming conventions — the obs-check gate. prefix is the required
// family-name prefix ("caem_"); pass "" to skip the prefix rule.
//
// Rules: names match the Prometheus grammar and carry the prefix;
// every family has help text; counters end in _total; gauges and
// histograms do not (a histogram's _total would collide with a counter
// reading); histograms measuring time end in _seconds so dashboards
// can assume the unit; label names are well-formed and never "le"
// (reserved for histogram buckets).
func (r *Registry) Lint(prefix string) []error {
	var errs []error
	for _, f := range r.snapshotFamilies() {
		if prefix != "" && !strings.HasPrefix(f.name, prefix) {
			errs = append(errs, fmt.Errorf("%s: missing the %q prefix", f.name, prefix))
		}
		if strings.TrimSpace(f.help) == "" {
			errs = append(errs, fmt.Errorf("%s: no help text", f.name))
		}
		switch f.typ {
		case TypeCounter:
			if !strings.HasSuffix(f.name, "_total") {
				errs = append(errs, fmt.Errorf("%s: counter names must end in _total", f.name))
			}
		case TypeGauge, TypeHistogram:
			if strings.HasSuffix(f.name, "_total") {
				errs = append(errs, fmt.Errorf("%s: only counters may end in _total", f.name))
			}
		}
		if f.typ == TypeHistogram {
			if !strings.HasSuffix(f.name, "_seconds") && !strings.HasSuffix(f.name, "_cells") &&
				!strings.HasSuffix(f.name, "_bytes") {
				errs = append(errs, fmt.Errorf("%s: histogram names must state their unit (_seconds, _bytes, _cells)", f.name))
			}
		}
		for _, l := range f.labelNames {
			if l == "le" {
				errs = append(errs, fmt.Errorf("%s: label name le is reserved for histogram buckets", f.name))
			}
		}
	}
	return errs
}
