// Package leach implements the LEACH clustering substrate (Heinzelman et
// al., HICSS 2000) that the paper layers CAEM on top of (§IV).
//
// LEACH organizes the network into rounds. At the start of each round,
// every alive node draws a uniform random number and becomes a cluster
// head (CH) if the draw falls below the threshold
//
//	T(n) = P / (1 - P·(r mod ⌈1/P⌉))   if n ∈ G,   else 0
//
// where P is the desired CH fraction (5% in the paper), r is the round
// number, and G is the set of nodes that have not served as CH in the
// current rotation epoch of ⌈1/P⌉ rounds. Once every node has served, G
// resets. Non-CH nodes then join the nearest CH. Rotation spreads the
// expensive CH duty evenly, which is why the paper's lifetime curves
// (Fig. 9) drop abruptly: nodes exhaust their batteries nearly together.
package leach

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Config holds the LEACH parameters.
type Config struct {
	// HeadFraction is P, the desired fraction of nodes serving as CH per
	// round (0.05 in the paper).
	HeadFraction float64
	// Nodes is the network size.
	Nodes int
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if c.HeadFraction <= 0 || c.HeadFraction > 1 {
		return fmt.Errorf("leach: HeadFraction %v outside (0, 1]", c.HeadFraction)
	}
	if c.Nodes < 1 {
		return fmt.Errorf("leach: Nodes = %d, need >= 1", c.Nodes)
	}
	return nil
}

// EpochRounds returns ⌈1/P⌉, the number of rounds in one rotation epoch.
func (c Config) EpochRounds() int {
	return int(math.Ceil(1 / c.HeadFraction))
}

// Election runs the per-round CH self-election across rounds, maintaining
// the G set.
type Election struct {
	cfg    Config
	stream *rng.Stream
	// eligible[i] = node i has not served as CH in the current epoch.
	eligible []bool
	round    int
}

// NewElection builds the election state. The stream must be dedicated to
// the election so results are reproducible.
func NewElection(cfg Config, stream *rng.Stream) *Election {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Election{cfg: cfg, stream: stream, eligible: make([]bool, cfg.Nodes)}
	e.resetEpoch()
	return e
}

func (e *Election) resetEpoch() {
	for i := range e.eligible {
		e.eligible[i] = true
	}
}

// Reset rewinds the election to a fresh NewElection(cfg, stream) state,
// reusing the eligibility storage when the node count allows. The stream
// must already be rewound by the caller (it owns the stream's seeding).
func (e *Election) Reset(cfg Config, stream *rng.Stream) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e.cfg = cfg
	e.stream = stream
	if cap(e.eligible) >= cfg.Nodes {
		e.eligible = e.eligible[:cfg.Nodes]
	} else {
		e.eligible = make([]bool, cfg.Nodes)
	}
	e.round = 0
	e.resetEpoch()
}

// Round returns the next round number to be elected.
func (e *Election) Round() int { return e.round }

// Threshold returns T(n) for an eligible node in the given round.
func (e *Election) Threshold(round int) float64 {
	p := e.cfg.HeadFraction
	mod := round % e.cfg.EpochRounds()
	den := 1 - p*float64(mod)
	if den <= 0 {
		return 1
	}
	return p / den
}

// Elect runs one round over the alive-node mask and returns the CH
// indices. Dead nodes never become CH and do not consume election
// randomness (they have left the protocol). If no alive node self-elects,
// the fallback designates the alive eligible node with the smallest draw
// (a deterministic stand-in for the re-election a real deployment would
// perform), so every round has at least one CH while any node lives.
func (e *Election) Elect(alive []bool) []int {
	return e.ElectInto(nil, alive)
}

// ElectInto is Elect appending into dst (from length zero), so a
// round-driving caller can reuse one heads slice across rounds.
func (e *Election) ElectInto(dst []int, alive []bool) []int {
	if len(alive) != e.cfg.Nodes {
		panic(fmt.Sprintf("leach: alive mask has %d entries, want %d", len(alive), e.cfg.Nodes))
	}
	round := e.round
	e.round++
	if round > 0 && round%e.cfg.EpochRounds() == 0 {
		e.resetEpoch()
	}
	th := e.Threshold(round)

	heads := dst[:0]
	bestIdx := -1
	bestDraw := math.Inf(1)
	anyAlive := false
	for i := 0; i < e.cfg.Nodes; i++ {
		if !alive[i] {
			continue
		}
		anyAlive = true
		if !e.eligible[i] {
			continue
		}
		draw := e.stream.Float64()
		if draw < bestDraw {
			bestDraw, bestIdx = draw, i
		}
		if draw < th {
			heads = append(heads, i)
			e.eligible[i] = false
		}
	}
	if len(heads) == 0 && anyAlive {
		if bestIdx < 0 {
			// Every alive node already served this epoch; reset and use
			// the first alive node (epoch exhaustion with deaths).
			e.resetEpoch()
			for i := 0; i < e.cfg.Nodes; i++ {
				if alive[i] {
					bestIdx = i
					break
				}
			}
		}
		heads = append(heads, bestIdx)
		e.eligible[bestIdx] = false
	}
	return heads
}

// Assignment maps every alive node to its cluster for one round.
type Assignment struct {
	// Heads lists the CH node indices.
	Heads []int
	// ClusterOf[i] is the index into Heads of node i's cluster, or -1
	// for dead nodes. A CH belongs to its own cluster.
	ClusterOf []int
	// Members[c] lists the non-CH member node indices of cluster c.
	Members [][]int

	// headPts is the per-call scratch of CH positions, retained so a
	// reused Assignment forms clusters without allocating.
	headPts []geom.Point
}

// Assign forms clusters by nearest-CH (the LEACH join rule: strongest
// received advertisement ≈ nearest head for a common transmit power).
func Assign(heads []int, positions []geom.Point, alive []bool) Assignment {
	var a Assignment
	AssignInto(&a, heads, positions, alive)
	return a
}

// AssignInto is Assign writing into an existing Assignment, reusing its
// slices (including the per-cluster member lists) so the per-round
// clustering of a long run stops allocating once the working set peaks.
func AssignInto(a *Assignment, heads []int, positions []geom.Point, alive []bool) {
	a.Heads = append(a.Heads[:0], heads...)
	if cap(a.ClusterOf) >= len(positions) {
		a.ClusterOf = a.ClusterOf[:len(positions)]
	} else {
		a.ClusterOf = make([]int, len(positions))
	}
	for cap(a.Members) < len(heads) {
		a.Members = append(a.Members[:cap(a.Members)], nil)
	}
	a.Members = a.Members[:len(heads)]
	for c := range a.Members {
		a.Members[c] = a.Members[c][:0]
	}
	a.headPts = a.headPts[:0]
	for _, h := range heads {
		a.headPts = append(a.headPts, positions[h])
	}
	for i := range positions {
		if !alive[i] {
			a.ClusterOf[i] = -1
			continue
		}
		isHead := false
		for c, h := range heads {
			if h == i {
				a.ClusterOf[i] = c
				isHead = true
				break
			}
		}
		if isHead {
			continue
		}
		c, _ := geom.Nearest(positions[i], a.headPts)
		a.ClusterOf[i] = c
		a.Members[c] = append(a.Members[c], i)
	}
}

// HeadOf returns the CH node index serving node i, or -1 for dead nodes.
func (a Assignment) HeadOf(i int) int {
	c := a.ClusterOf[i]
	if c < 0 {
		return -1
	}
	return a.Heads[c]
}

// Size returns the member count of cluster c including the head.
func (a Assignment) Size(c int) int { return len(a.Members[c]) + 1 }
