package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestStreamZeroSamples(t *testing.T) {
	var s Stream
	if s.Count() != 0 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 0 {
		t.Fatalf("empty mean = %v, want 0 (Welford legacy)", s.Mean())
	}
	for name, v := range map[string]float64{
		"SampleVariance": s.SampleVariance(),
		"SampleStdDev":   s.SampleStdDev(),
		"StdErr":         s.StdErr(),
		"CI95":           s.CI95(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty %s = %v, want NaN", name, v)
		}
	}
}

// One sample: the mean is defined, the CI is not (NaN policy: one
// replicate carries no dispersion information).
func TestStreamOneSample(t *testing.T) {
	var s Stream
	s.Add(42)
	if s.Mean() != 42 || s.Count() != 1 {
		t.Fatalf("mean/count = %v/%d", s.Mean(), s.Count())
	}
	if !math.IsNaN(s.SampleVariance()) {
		t.Errorf("one-sample variance = %v, want NaN", s.SampleVariance())
	}
	if !math.IsNaN(s.CI95()) {
		t.Errorf("one-sample CI = %v, want NaN", s.CI95())
	}
	if lo, hi := s.CI(0.95); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("one-sample CI bounds = (%v, %v), want NaN", lo, hi)
	}
}

// A constant series has variance exactly 0 (not just approximately:
// every Welford delta is 0) and therefore a CI of exactly ±0.
func TestStreamConstantSeries(t *testing.T) {
	var s Stream
	for i := 0; i < 1000; i++ {
		s.Add(3.7)
	}
	if v := s.SampleVariance(); v != 0 {
		t.Fatalf("constant-series sample variance = %v, want exactly 0", v)
	}
	if v := s.Variance(); v != 0 {
		t.Fatalf("constant-series population variance = %v, want exactly 0", v)
	}
	if h := s.CI95(); h != 0 {
		t.Fatalf("constant-series CI half width = %v, want exactly 0", h)
	}
	if s.Min() != 3.7 || s.Max() != 3.7 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

// Property: Welford agrees with the naive two-pass implementation on
// random data, for both the population and the sample divisor.
func TestWelfordMatchesTwoPass(t *testing.T) {
	check := func(xs []float64) bool {
		var vals []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				vals = append(vals, x)
			}
		}
		if len(vals) < 2 {
			return true
		}
		var s Stream
		var sum float64
		for _, x := range vals {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, x := range vals {
			ss += (x - mean) * (x - mean)
		}
		popVar := ss / float64(len(vals))
		sampleVar := ss / float64(len(vals)-1)
		scale := math.Max(1, popVar)
		return math.Abs(s.Mean()-mean) < 1e-9*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Variance()-popVar) < 1e-6*scale &&
			math.Abs(s.SampleVariance()-sampleVar) < 1e-6*scale
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMerge(t *testing.T) {
	var a, b, all Welford
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, -3, 17}
	for i, x := range xs {
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merge mean/var = %v/%v, want %v/%v", a.Mean(), a.Variance(), all.Mean(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merge min/max wrong")
	}
}

// TCritical against the standard t-table (two-sided 95% and 99%).
func TestTCriticalTable(t *testing.T) {
	cases := []struct {
		conf float64
		df   int
		want float64
	}{
		{0.95, 1, 12.7062},
		{0.95, 2, 4.3027},
		{0.95, 4, 2.7764},
		{0.95, 9, 2.2622},
		{0.95, 29, 2.0452},
		{0.95, 100, 1.9840},
		{0.95, 10000, 1.9602}, // ≈ normal 1.9600
		{0.99, 4, 4.6041},
		{0.99, 9, 3.2498},
		{0.90, 9, 1.8331},
	}
	for _, c := range cases {
		got := TCritical(c.conf, c.df)
		if math.Abs(got-c.want) > 2e-3 {
			t.Errorf("TCritical(%v, %d) = %.4f, want %.4f", c.conf, c.df, got, c.want)
		}
	}
}

func TestTCriticalInvalid(t *testing.T) {
	for _, v := range []float64{TCritical(0.95, 0), TCritical(0, 5), TCritical(1, 5), TCritical(-1, 5)} {
		if !math.IsNaN(v) {
			t.Errorf("invalid TCritical input = %v, want NaN", v)
		}
	}
}

// The CI must cover the true mean at roughly the nominal rate. With 200
// independent replications of n=10 normal samples, the 95% CI's
// coverage is Binomial(200, 0.95): the [176, 198] acceptance band has
// a false-failure probability under 1e-4, and the RNG is fixed-seed.
func TestCICoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const reps, n, mu = 200, 10, 3.0
	covered := 0
	for r := 0; r < reps; r++ {
		var s Stream
		for i := 0; i < n; i++ {
			s.Add(mu + rng.NormFloat64())
		}
		if lo, hi := s.CI(0.95); lo <= mu && mu <= hi {
			covered++
		}
	}
	if covered < 176 || covered > 198 {
		t.Fatalf("95%% CI covered the true mean %d/200 times", covered)
	}
}

// P² against the exact sorted-sample quantile on random data.
func TestQuantileMatchesSorted(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		rng := rand.New(rand.NewSource(int64(1000 * p)))
		q := NewQuantile(p)
		const n = 20000
		xs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()
			q.Add(x)
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		exact := xs[int(p*float64(n-1))]
		// Tolerance in value space: a small multiple of the quantile's
		// sampling noise at this n, generous for the tail quantiles.
		if diff := math.Abs(q.Value() - exact); diff > 0.05 {
			t.Errorf("P²(%.2f) = %.4f, exact %.4f (|diff| = %.4f)", p, q.Value(), exact, diff)
		}
	}
}

func TestQuantileSmallStreams(t *testing.T) {
	q := NewQuantile(0.5)
	if !math.IsNaN(q.Value()) {
		t.Fatalf("empty quantile = %v, want NaN", q.Value())
	}
	q.Add(10)
	if q.Value() != 10 {
		t.Fatalf("1-sample median = %v", q.Value())
	}
	q.Add(20)
	if q.Value() != 15 {
		t.Fatalf("2-sample median = %v, want 15 (interpolated)", q.Value())
	}
	// Exactly five observations: markers initialize from the sorted
	// buffer, the median is the middle one.
	q2 := NewQuantile(0.5)
	for _, x := range []float64{5, 1, 4, 2, 3} {
		q2.Add(x)
	}
	if q2.Value() != 3 {
		t.Fatalf("5-sample median = %v, want 3", q2.Value())
	}
	if q2.Count() != 5 {
		t.Fatalf("count = %d", q2.Count())
	}
	// A tail quantile must not collapse to the median when the 5th
	// observation arrives: at n == 5 the buffer is still the exact
	// sorted sample, so p95 of {1..5} interpolates between 4 and 5.
	q3 := NewQuantile(0.95)
	for _, x := range []float64{1, 2, 3, 4} {
		q3.Add(x)
	}
	before := q3.Value() // exact: 1 + 0.95*3 = 3.85
	q3.Add(5)
	if got := q3.Value(); got < before {
		t.Fatalf("p95 fell from %v to %v when the 5th (maximum) sample arrived", before, got)
	}
	if want := 4.8; math.Abs(q3.Value()-want) > 1e-12 {
		t.Fatalf("5-sample p95 = %v, want %v (exact interpolation)", q3.Value(), want)
	}
}

func TestQuantileConstantStream(t *testing.T) {
	q := NewQuantile(0.95)
	for i := 0; i < 100; i++ {
		q.Add(2.5)
	}
	if q.Value() != 2.5 {
		t.Fatalf("constant-stream p95 = %v, want 2.5", q.Value())
	}
}

// The Add paths must not allocate: these accumulators sit in the
// simulation hot path (per-packet delay tracking) and in tight
// aggregation loops.
func TestAddPathsDoNotAllocate(t *testing.T) {
	var s Stream
	if avg := testing.AllocsPerRun(1000, func() { s.Add(1.5) }); avg != 0 {
		t.Errorf("Stream.Add allocates %.1f times per call", avg)
	}
	q := NewQuantile(0.95)
	x := 0.0
	if avg := testing.AllocsPerRun(1000, func() { x += 0.7; q.Add(x) }); avg != 0 {
		t.Errorf("Quantile.Add allocates %.1f times per call", avg)
	}
}

func BenchmarkStreamAdd(b *testing.B) {
	var s Stream
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
	if s.Count() == 0 {
		b.Fatal("no samples")
	}
}

func BenchmarkQuantileAdd(b *testing.B) {
	q := NewQuantile(0.95)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Add(float64(i % 1000))
	}
	if q.Count() == 0 {
		b.Fatal("no samples")
	}
}

func BenchmarkTCritical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if v := TCritical(0.95, 1+i%50); v <= 0 {
			b.Fatal("bad critical value")
		}
	}
}
