package stats

import "math"

// Welford is a numerically stable online accumulator for mean and
// population variance, with min/max tracking. It is the shared base of
// the simulation metrics (which describe a complete population of
// packets or snapshots) and of Stream (which adds the sample-statistics
// view for replicated experiments).
type Welford struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add accumulates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 for fewer than 2
// samples). A constant series has variance exactly 0: every update's
// delta is 0, so no rounding residue accumulates in m2.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Merge folds other into w (parallel Welford combination).
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	mean := w.mean + d*float64(other.n)/float64(n)
	m2 := w.m2 + other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
}

// Stream extends Welford with the inferential view a replicated
// experiment needs: unbiased (n−1) sample variance, the standard error
// of the mean, and Student-t confidence intervals. The zero value is
// ready to use; Add is inherited from Welford and allocation-free.
type Stream struct {
	Welford
}

// SampleVariance returns the unbiased sample variance m2/(n−1), or NaN
// for fewer than two observations (undefined, per the package policy).
func (s *Stream) SampleVariance() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// SampleStdDev returns the square root of SampleVariance (NaN for
// fewer than two observations).
func (s *Stream) SampleStdDev() float64 { return math.Sqrt(s.SampleVariance()) }

// StdErr returns the standard error of the mean, s/√n (NaN for fewer
// than two observations).
func (s *Stream) StdErr() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.SampleStdDev() / math.Sqrt(float64(s.n))
}

// CIHalfWidth returns the half width of the two-sided confidence
// interval for the mean at the given confidence level (e.g. 0.95):
// t*(conf, n−1) · s/√n. NaN for fewer than two observations; exactly 0
// for a constant series.
func (s *Stream) CIHalfWidth(conf float64) float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return TCritical(conf, int(s.n)-1) * s.StdErr()
}

// CI95 returns CIHalfWidth(0.95) — the experiment tables' "±" column.
func (s *Stream) CI95() float64 { return s.CIHalfWidth(0.95) }

// CI returns the two-sided confidence interval bounds at the given
// level; both bounds are NaN for fewer than two observations.
func (s *Stream) CI(conf float64) (lo, hi float64) {
	h := s.CIHalfWidth(conf)
	return s.mean - h, s.mean + h
}
