// Package queueing implements the sensor-side packet path: the packet
// type, the finite FIFO buffer, the Poisson traffic source, and the
// adaptive transmission-threshold adjustment that distinguishes CAEM
// Scheme 1 (§III.C, Fig. 6 of the paper).
package queueing

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Packet is one sensed-data packet awaiting delivery to the cluster head.
type Packet struct {
	// ID is unique across the whole simulation (assigned by the source).
	ID uint64
	// Source is the generating node's index.
	Source int
	// CreatedAt is the generation time; delivery minus creation is the
	// packet delay metric.
	CreatedAt sim.Time
	// SizeBits is the information payload size.
	SizeBits int
	// Retries counts transmission attempts that failed (collision or
	// channel error); the MAC drops the packet after the cap.
	Retries int
}

// Buffer is the node's finite FIFO packet queue (50 packets in Table II).
// A capacity of 0 means unbounded, which §IV.C uses for the fairness
// experiment ("buffer size substantially large enough").
//
// The storage is a power-of-two ring: head chases tail around a fixed
// array that only grows (doubling) while the occupancy demands it, so
// the steady-state enqueue/dequeue cycle — the single hottest allocation
// site in the simulation before this layout — touches the allocator
// exactly zero times once the ring has reached the working-set size.
type Buffer struct {
	capacity int
	ring     []Packet // power-of-two length; empty until first enqueue
	head     int      // index of the head packet
	count    int      // occupied slots

	enqueued  uint64
	dropped   uint64
	dequeued  uint64
	maxLength int
}

// NewBuffer returns a buffer holding at most capacity packets
// (0 = unbounded).
func NewBuffer(capacity int) *Buffer {
	if capacity < 0 {
		panic(fmt.Sprintf("queueing: negative buffer capacity %d", capacity))
	}
	return &Buffer{capacity: capacity}
}

// Reset rewinds the buffer to a fresh NewBuffer(capacity) state while
// keeping the ring storage, so a reused node re-enters service with a
// warmed queue. The reuse path for pooled simulation contexts.
func (b *Buffer) Reset(capacity int) {
	if capacity < 0 {
		panic(fmt.Sprintf("queueing: negative buffer capacity %d", capacity))
	}
	b.capacity = capacity
	b.head = 0
	b.count = 0
	b.enqueued, b.dropped, b.dequeued, b.maxLength = 0, 0, 0, 0
}

// Len returns the current queue length.
func (b *Buffer) Len() int { return b.count }

// Capacity returns the configured capacity (0 = unbounded).
func (b *Buffer) Capacity() int { return b.capacity }

// grow doubles the ring (minimum 8 slots), unrolling the wrapped
// contents into the front of the new array.
func (b *Buffer) grow() {
	n := 2 * len(b.ring)
	if n < 8 {
		n = 8
	}
	fresh := make([]Packet, n)
	copied := copy(fresh, b.ring[b.head:])
	copy(fresh[copied:], b.ring[:b.head])
	b.ring = fresh
	b.head = 0
}

// Enqueue appends p; on overflow the packet is dropped and Enqueue
// returns false (tail drop, the behaviour of a full sensor buffer).
func (b *Buffer) Enqueue(p Packet) bool {
	if b.capacity > 0 && b.count >= b.capacity {
		b.dropped++
		return false
	}
	if b.count == len(b.ring) {
		b.grow()
	}
	b.ring[(b.head+b.count)&(len(b.ring)-1)] = p
	b.count++
	b.enqueued++
	if b.count > b.maxLength {
		b.maxLength = b.count
	}
	return true
}

// Peek returns the head packet without removing it; ok=false when empty.
func (b *Buffer) Peek() (Packet, bool) {
	if b.count == 0 {
		return Packet{}, false
	}
	return b.ring[b.head], true
}

// PeekAt returns the i-th queued packet (0 = head) without removal, for
// assembling a burst.
func (b *Buffer) PeekAt(i int) (Packet, bool) {
	if i < 0 || i >= b.count {
		return Packet{}, false
	}
	return b.ring[(b.head+i)&(len(b.ring)-1)], true
}

// Dequeue removes and returns the head packet; ok=false when empty.
func (b *Buffer) Dequeue() (Packet, bool) {
	if b.count == 0 {
		return Packet{}, false
	}
	p := b.ring[b.head]
	b.head = (b.head + 1) & (len(b.ring) - 1)
	b.count--
	b.dequeued++
	return p, true
}

// Head returns a pointer to the head packet so the MAC can bump its retry
// counter in place; nil when empty.
func (b *Buffer) Head() *Packet {
	if b.count == 0 {
		return nil
	}
	return &b.ring[b.head]
}

// DropHead removes the head packet without counting it as dequeued
// service (used when the retry cap is exceeded). Returns false when empty.
func (b *Buffer) DropHead() bool {
	if b.count == 0 {
		return false
	}
	b.head = (b.head + 1) & (len(b.ring) - 1)
	b.count--
	b.dropped++
	return true
}

// Stats returns lifetime counters: packets accepted, dropped (overflow or
// retry-cap), served, and the maximum observed length.
func (b *Buffer) Stats() (enqueued, dropped, dequeued uint64, maxLen int) {
	return b.enqueued, b.dropped, b.dequeued, b.maxLength
}

// PoissonSource generates the paper's traffic: "each sensor node is a
// Poisson source". Inter-arrival times are exponential with mean
// 1/RatePerSecond.
type PoissonSource struct {
	RatePerSecond float64
	SizeBits      int
	SourceIndex   int

	stream *rng.Stream
	nextID *uint64
}

// NewPoissonSource builds a source for one node. nextID is a shared
// counter so packet IDs are unique network-wide.
func NewPoissonSource(rate float64, sizeBits, sourceIndex int, stream *rng.Stream, nextID *uint64) *PoissonSource {
	if rate < 0 {
		panic(fmt.Sprintf("queueing: negative arrival rate %v", rate))
	}
	if sizeBits <= 0 {
		panic(fmt.Sprintf("queueing: non-positive packet size %d", sizeBits))
	}
	return &PoissonSource{RatePerSecond: rate, SizeBits: sizeBits, SourceIndex: sourceIndex, stream: stream, nextID: nextID}
}

// Reset rewinds the source for a fresh run at a possibly different rate
// and packet size. The RNG stream and shared ID counter are kept — the
// owning context reseeds the stream and zeroes the counter itself.
func (s *PoissonSource) Reset(rate float64, sizeBits int) {
	if rate < 0 {
		panic(fmt.Sprintf("queueing: negative arrival rate %v", rate))
	}
	if sizeBits <= 0 {
		panic(fmt.Sprintf("queueing: non-positive packet size %d", sizeBits))
	}
	s.RatePerSecond = rate
	s.SizeBits = sizeBits
}

// NextInterarrival draws the next exponential gap. A zero-rate source
// never fires (returns a negative sentinel the caller must check with
// Active).
func (s *PoissonSource) NextInterarrival() sim.Time {
	if s.RatePerSecond <= 0 {
		return -1
	}
	gap := s.stream.ExpFloat64() / s.RatePerSecond
	t := sim.FromSeconds(gap)
	if t < 1 {
		t = 1 // quantize below 1 µs up to the clock resolution
	}
	return t
}

// Active reports whether the source generates traffic at all.
func (s *PoissonSource) Active() bool { return s.RatePerSecond > 0 }

// Generate mints the packet created at now.
func (s *PoissonSource) Generate(now sim.Time) Packet {
	id := *s.nextID
	*s.nextID++
	return Packet{ID: id, Source: s.SourceIndex, CreatedAt: now, SizeBits: s.SizeBits}
}

// ThresholdPolicy selects how a node's transmission threshold (the minimum
// ABICM class whose admission SNR the channel must reach before the node
// transmits) evolves. It is the axis along which the paper's three
// protocols differ.
type ThresholdPolicy int

const (
	// PolicyNone ignores the channel: transmit whenever the MAC allows
	// (pure LEACH baseline). Class() reports 0 so any feasible mode
	// qualifies, and transmission proceeds even below the lowest class.
	PolicyNone ThresholdPolicy = iota
	// PolicyFixedHighest pins the threshold at the top class (Scheme 2).
	PolicyFixedHighest
	// PolicyAdaptive adjusts the threshold from queue dynamics
	// (Scheme 1, §III.C).
	PolicyAdaptive
)

func (p ThresholdPolicy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyFixedHighest:
		return "fixed-highest"
	case PolicyAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("ThresholdPolicy(%d)", int(p))
	}
}

// AdjusterConfig parameterizes the Scheme 1 adaptive threshold mechanism.
type AdjusterConfig struct {
	// Classes is the number of ABICM classes (4 in the paper).
	Classes int
	// SampleEvery is m: the queue length is sampled every m packet
	// arrivals (5 in the paper) to bound computation overhead.
	SampleEvery int
	// QueueThreshold is Q_th: adjustment activates only once the queue
	// length reaches this value (15 in the paper); below it the
	// threshold rests at the highest class to save energy.
	QueueThreshold int
}

// DefaultAdjusterConfig returns the paper's §III.C constants.
func DefaultAdjusterConfig() AdjusterConfig {
	return AdjusterConfig{Classes: 4, SampleEvery: 5, QueueThreshold: 15}
}

// Validate reports a configuration error, or nil.
func (c AdjusterConfig) Validate() error {
	switch {
	case c.Classes < 1:
		return fmt.Errorf("queueing: Classes = %d, need >= 1", c.Classes)
	case c.SampleEvery < 1:
		return fmt.Errorf("queueing: SampleEvery = %d, need >= 1", c.SampleEvery)
	case c.QueueThreshold < 0:
		return fmt.Errorf("queueing: negative QueueThreshold %d", c.QueueThreshold)
	}
	return nil
}

// ThresholdAdjuster implements Fig. 6 of the paper. It tracks the queue
// length sampled every m arrivals; the difference ΔV between consecutive
// samples predicts the traffic trend. While the queue is at or above
// Q_th: ΔV > 0 (queue growing) lowers the threshold one class so the node
// gets more transmission opportunities; ΔV < 0 (queue draining) resets the
// threshold to the highest class to save energy; ΔV = 0 holds. While the
// queue is below Q_th the threshold rests at the highest class.
type ThresholdAdjuster struct {
	cfg AdjusterConfig

	class        int // current threshold class, 0..Classes-1
	arrivalCount int
	lastSample   int
	haveSample   bool
	active       bool

	// Counters for diagnostics/ablation.
	lowered int
	raised  int
}

// NewThresholdAdjuster starts at the highest class (the paper's initial
// threshold is 2 Mbps).
func NewThresholdAdjuster(cfg AdjusterConfig) *ThresholdAdjuster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &ThresholdAdjuster{cfg: cfg, class: cfg.Classes - 1}
}

// Reset rewinds the adjuster to a fresh NewThresholdAdjuster(cfg) state
// in place. The reuse path for pooled simulation contexts.
func (a *ThresholdAdjuster) Reset(cfg AdjusterConfig) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	*a = ThresholdAdjuster{cfg: cfg, class: cfg.Classes - 1}
}

// Class returns the current threshold class index (0 = lowest/most
// permissive, Classes-1 = highest/most selective).
func (a *ThresholdAdjuster) Class() int { return a.class }

// Active reports whether the adjustment mechanism is currently engaged
// (queue reached Q_th since the last drain below it).
func (a *ThresholdAdjuster) Active() bool { return a.active }

// Adjustments returns how many times the threshold was lowered and raised.
func (a *ThresholdAdjuster) Adjustments() (lowered, raised int) { return a.lowered, a.raised }

// OnArrival must be called at each packet arrival epoch with the queue
// length after the arrival. It implements the Fig. 6 pseudo-code: the
// mechanism "starts up" once the queue length reaches Q_th; while engaged,
// every m-th arrival compares the sampled queue length with the previous
// sample, lowering the threshold one class on a growing queue (ΔV > 0)
// and resetting it to the highest class on a draining one (ΔV < 0). The
// ΔV < 0 reset is also the disengagement point when the queue has fallen
// back below Q_th — the paper adjusts only at arrival epochs, so there is
// no separate service-time snap-back.
func (a *ThresholdAdjuster) OnArrival(queueLen int) {
	if queueLen >= a.cfg.QueueThreshold {
		a.active = true
	}

	a.arrivalCount++
	if a.arrivalCount < a.cfg.SampleEvery {
		return
	}
	a.arrivalCount = 0

	if !a.haveSample {
		a.lastSample = queueLen
		a.haveSample = true
		return
	}
	deltaV := queueLen - a.lastSample
	a.lastSample = queueLen

	if !a.active {
		return
	}
	switch {
	case deltaV > 0:
		a.setClass(a.class - 1)
	case deltaV < 0:
		a.setClass(a.cfg.Classes - 1)
		if queueLen < a.cfg.QueueThreshold {
			a.active = false
		}
	}
}

// OnServiced informs the adjuster that packets left the queue (after a
// successful burst or a head election). Draining the queue completely is
// the one service-side recovery signal: an empty queue means congestion
// is over, so the threshold returns to the highest class and the
// mechanism disengages until Q_th is reached again.
func (a *ThresholdAdjuster) OnServiced(queueLen int) {
	if queueLen == 0 && a.active {
		a.active = false
		a.setClass(a.cfg.Classes - 1)
		a.haveSample = false
		a.arrivalCount = 0
	}
}

func (a *ThresholdAdjuster) setClass(c int) {
	if c < 0 {
		c = 0
	}
	if c > a.cfg.Classes-1 {
		c = a.cfg.Classes - 1
	}
	if c < a.class {
		a.lowered++
	} else if c > a.class {
		a.raised++
	}
	a.class = c
}
