package tone

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDefaultSchemeValid(t *testing.T) {
	if err := DefaultScheme().Validate(); err != nil {
		t.Fatalf("default scheme invalid: %v", err)
	}
}

// Table I of the paper: idle pulses are 1 ms every 50 ms; receive pulses
// 0.5 ms every 10 ms; collision pulses 0.5 ms, sent once (a bounded
// pattern).
func TestPaperTableIValues(t *testing.T) {
	s := DefaultScheme()
	idle := s.Pattern(Idle)
	if idle.Duration != sim.Millisecond || idle.Interval != 50*sim.Millisecond {
		t.Errorf("idle pattern = %+v", idle)
	}
	rcv := s.Pattern(Receive)
	if rcv.Duration != 500*sim.Microsecond || rcv.Interval != 10*sim.Millisecond {
		t.Errorf("receive pattern = %+v", rcv)
	}
	col := s.Pattern(Collision)
	if col.Duration != 500*sim.Microsecond || col.Repeat == 0 {
		t.Errorf("collision pattern = %+v", col)
	}
}

func TestStateNames(t *testing.T) {
	want := map[State]string{Idle: "idle", Receive: "receive", Transmit: "transmit", Collision: "collision"}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), name)
		}
	}
	if len(States()) != 4 {
		t.Fatalf("States() has %d entries", len(States()))
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	s := DefaultScheme()
	tol := s.MinDecodeTolerance()
	for _, st := range States() {
		got, ok := s.Decode(s.Pattern(st).Interval, tol)
		if !ok || got != st {
			t.Errorf("Decode(%v interval) = (%v, %v)", st, got, ok)
		}
		// With timing error within tolerance it still decodes.
		got, ok = s.Decode(s.Pattern(st).Interval+tol/2, tol)
		if !ok || got != st {
			t.Errorf("Decode(%v interval + jitter) = (%v, %v)", st, got, ok)
		}
	}
}

func TestDecodeRejectsUnknownInterval(t *testing.T) {
	s := DefaultScheme()
	if _, ok := s.Decode(500*sim.Millisecond, sim.Millisecond); ok {
		t.Fatal("decoded a nonsense interval")
	}
}

// Property: with tolerance at MinDecodeTolerance, no two states can both
// claim one measured interval (unambiguous decoding).
func TestDecodeUnambiguous(t *testing.T) {
	s := DefaultScheme()
	tol := s.MinDecodeTolerance()
	check := func(usRaw uint32) bool {
		interval := sim.Time(usRaw % 100000) // 0..100 ms
		matches := 0
		for _, st := range States() {
			d := interval - s.Pattern(st).Interval
			if d < 0 {
				d = -d
			}
			if d <= tol {
				matches++
			}
		}
		return matches <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadSchemes(t *testing.T) {
	mutations := []func(*Scheme){
		func(s *Scheme) { s.patterns[Idle].Duration = 0 },
		func(s *Scheme) { s.patterns[Idle].Interval = s.patterns[Idle].Duration },
		func(s *Scheme) { s.patterns[Receive].Interval = s.patterns[Transmit].Interval },
		func(s *Scheme) { s.patterns[Collision].Repeat = -1 },
	}
	for i, mutate := range mutations {
		s := DefaultScheme()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

// §III.B claims the tone channel is energy-efficient because the idle
// broadcast has a tiny duty cycle: 1 ms per 50 ms = 2%.
func TestIdleDutyCycle(t *testing.T) {
	s := DefaultScheme()
	if dc := s.DutyCycle(Idle); math.Abs(dc-0.02) > 1e-12 {
		t.Fatalf("idle duty cycle = %v, want 0.02", dc)
	}
	if dc := s.DutyCycle(Receive); math.Abs(dc-0.05) > 1e-12 {
		t.Fatalf("receive duty cycle = %v, want 0.05", dc)
	}
}

func TestPatternsOrder(t *testing.T) {
	pats := DefaultScheme().Patterns()
	if len(pats) != 4 {
		t.Fatalf("Patterns() has %d entries", len(pats))
	}
	for i, p := range pats {
		if p.State != State(i) {
			t.Fatalf("pattern %d is for state %v", i, p.State)
		}
	}
}

func TestCSIEstimatorIdentityByDefault(t *testing.T) {
	var e CSIEstimator
	for _, v := range []float64{-10, 0, 3.7, 25} {
		if got := e.Estimate(v); got != v {
			t.Errorf("default estimator changed %v to %v", v, got)
		}
	}
}

func TestCSIEstimatorOffsetAndQuantize(t *testing.T) {
	e := CSIEstimator{OffsetDB: 2, QuantizeDB: 0.5}
	if got := e.Estimate(10.13); math.Abs(got-12.0) > 1e-12 {
		t.Errorf("Estimate(10.13) = %v, want 12.0", got)
	}
	if got := e.Estimate(10.38); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("Estimate(10.38) = %v, want 12.5", got)
	}
	// Negative values quantize symmetrically.
	en := CSIEstimator{QuantizeDB: 1}
	if got := en.Estimate(-2.6); math.Abs(got-(-3)) > 1e-12 {
		t.Errorf("Estimate(-2.6) = %v, want -3", got)
	}
}

// Property: quantization error is bounded by half a step.
func TestCSIQuantizationBounded(t *testing.T) {
	e := CSIEstimator{QuantizeDB: 0.25}
	check := func(v float64) bool {
		if math.IsNaN(v) || math.Abs(v) > 1e6 {
			return true
		}
		return math.Abs(e.Estimate(v)-v) <= 0.125+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
