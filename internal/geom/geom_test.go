package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDistance(t *testing.T) {
	cases := []struct {
		p, q Point
		d    float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 5}, 4},
		{Point{-2, 0}, Point{2, 0}, 4},
	}
	for _, c := range cases {
		if got := c.p.Distance(c.q); math.Abs(got-c.d) > 1e-12 {
			t.Errorf("Distance(%v, %v) = %v, want %v", c.p, c.q, got, c.d)
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	check := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Distance(b) == b.Distance(a)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldContains(t *testing.T) {
	f := Field{Width: 100, Height: 50}
	for _, p := range []Point{{0, 0}, {100, 50}, {50, 25}} {
		if !f.Contains(p) {
			t.Errorf("field should contain %v", p)
		}
	}
	for _, p := range []Point{{-1, 0}, {101, 0}, {0, 51}, {50, -0.1}} {
		if f.Contains(p) {
			t.Errorf("field should not contain %v", p)
		}
	}
}

func TestFieldCenterAndDiagonal(t *testing.T) {
	f := Field{Width: 100, Height: 100}
	if c := f.Center(); c.X != 50 || c.Y != 50 {
		t.Errorf("Center = %v", c)
	}
	if d := f.Diagonal(); math.Abs(d-100*math.Sqrt2) > 1e-9 {
		t.Errorf("Diagonal = %v", d)
	}
}

func TestPlaceUniformInField(t *testing.T) {
	f := Field{Width: 100, Height: 100}
	r := rng.NewSource(1).Stream("place", 0)
	pts := PlaceUniform(f, 1000, r)
	if len(pts) != 1000 {
		t.Fatalf("placed %d points, want 1000", len(pts))
	}
	var sx, sy float64
	for _, p := range pts {
		if !f.Contains(p) {
			t.Fatalf("point %v outside field", p)
		}
		sx += p.X
		sy += p.Y
	}
	if math.Abs(sx/1000-50) > 3 || math.Abs(sy/1000-50) > 3 {
		t.Errorf("placement centroid (%v, %v) far from field center", sx/1000, sy/1000)
	}
}

func TestPlaceUniformDeterministic(t *testing.T) {
	f := Field{Width: 100, Height: 100}
	a := PlaceUniform(f, 50, rng.NewSource(9).Stream("place", 0))
	b := PlaceUniform(f, 50, rng.NewSource(9).Stream("place", 0))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPlaceGrid(t *testing.T) {
	f := Field{Width: 100, Height: 100}
	for _, n := range []int{1, 2, 4, 9, 10, 100} {
		pts := PlaceGrid(f, n)
		if len(pts) != n {
			t.Fatalf("PlaceGrid(%d) returned %d points", n, len(pts))
		}
		seen := map[Point]bool{}
		for _, p := range pts {
			if !f.Contains(p) {
				t.Fatalf("grid point %v outside field", p)
			}
			if seen[p] {
				t.Fatalf("duplicate grid point %v for n=%d", p, n)
			}
			seen[p] = true
		}
	}
	if pts := PlaceGrid(f, 0); pts != nil {
		t.Fatalf("PlaceGrid(0) = %v, want nil", pts)
	}
}

func TestNearest(t *testing.T) {
	cands := []Point{{0, 0}, {10, 0}, {5, 5}}
	idx, d := Nearest(Point{9, 1}, cands)
	if idx != 1 {
		t.Fatalf("Nearest index = %d, want 1", idx)
	}
	if math.Abs(d-math.Hypot(1, 1)) > 1e-12 {
		t.Fatalf("Nearest distance = %v", d)
	}
}

func TestNearestSinglCandidate(t *testing.T) {
	idx, d := Nearest(Point{3, 4}, []Point{{0, 0}})
	if idx != 0 || math.Abs(d-5) > 1e-12 {
		t.Fatalf("Nearest = (%d, %v)", idx, d)
	}
}

func TestNearestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nearest with no candidates did not panic")
		}
	}()
	Nearest(Point{}, nil)
}

// Property: the reported nearest candidate is never beaten by another.
func TestNearestIsMinimal(t *testing.T) {
	r := rng.NewSource(2).Stream("near", 0)
	check := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		cands := make([]Point, n)
		for i := range cands {
			cands[i] = Point{r.Float64() * 100, r.Float64() * 100}
		}
		p := Point{r.Float64() * 100, r.Float64() * 100}
		idx, d := Nearest(p, cands)
		for _, c := range cands {
			if p.Distance(c) < d-1e-12 {
				return false
			}
		}
		return p.Distance(cands[idx]) == d
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
