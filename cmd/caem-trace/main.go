// Command caem-trace inspects a single sensor-to-head wireless link: it
// prints the CSI trace, the ABICM mode occupancy, and the per-mode airtime
// a 2 Kbit packet would need. This is the calibration tool behind the
// DESIGN.md §4 link-budget choices — it answers "how often is the channel
// above each transmission threshold at distance d?".
//
// Usage:
//
//	caem-trace -distance 25 -duration 60 -step 50ms
//	caem-trace -distance 40 -doppler 4 -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analytic"
	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	var (
		distance = flag.Float64("distance", 25, "link distance in meters")
		duration = flag.Float64("duration", 60, "trace duration in seconds")
		stepMs   = flag.Float64("step", 50, "sampling step in milliseconds (the idle-tone period)")
		doppler  = flag.Float64("doppler", 0, "override max Doppler in Hz (0 = default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		csv      = flag.Bool("csv", false, "emit the raw time,snr,class trace as CSV")
	)
	flag.Parse()

	params := channel.DefaultParams()
	if *doppler > 0 {
		params.DopplerHz = *doppler
	}
	if err := params.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "caem-trace: %v\n", err)
		os.Exit(2)
	}
	modes := phy.Default4Mode()
	link := channel.NewLink(params, *distance, rng.NewSource(*seed).Stream("trace", 0))

	step := sim.FromSeconds(*stepMs / 1000)
	horizon := sim.FromSeconds(*duration)
	samples := 0
	classCount := make([]int, modes.Len())
	belowCnt := 0
	var sumSNR, minSNR, maxSNR float64
	minSNR = 1e9
	maxSNR = -1e9

	if *csv {
		fmt.Println("time_s,snr_db,class")
	}
	for t := sim.Time(0); t <= horizon; t += step {
		snr := link.SNRdB(t)
		samples++
		sumSNR += snr
		if snr < minSNR {
			minSNR = snr
		}
		if snr > maxSNR {
			maxSNR = snr
		}
		m, ok := modes.PickMode(snr)
		cls := -1
		if ok {
			cls = m.Index
			classCount[m.Index]++
		} else {
			belowCnt++
		}
		if *csv {
			fmt.Printf("%.3f,%.2f,%d\n", t.Seconds(), snr, cls)
		}
	}
	if *csv {
		return
	}

	fmt.Printf("link:       distance %.1f m, path-loss SNR %.1f dB, coherence time %.1f ms\n",
		*distance, link.MeanSNRdB(), params.CoherenceTime().Millis())
	fmt.Printf("trace:      %d samples over %.0f s every %.0f ms\n", samples, *duration, *stepMs)
	fmt.Printf("snr:        mean %.1f dB, min %.1f dB, max %.1f dB\n", sumSNR/float64(samples), minSNR, maxSNR)
	fmt.Printf("below all thresholds: %.1f%% of samples (pure LEACH transmits here and likely fails)\n",
		100*float64(belowCnt)/float64(samples))
	// Analytic (Rayleigh, local-mean) expectations next to the empirical
	// trace: the trace includes shadowing, so moderate disagreement at one
	// distance is expected; the shapes should match.
	occ, below := analytic.ModeOccupancy(link.MeanSNRdB(), modes)
	fmt.Println("\nclass  mode                  threshold  occupancy  analytic  airtime(2Kb)")
	for i := 0; i < modes.Len(); i++ {
		m := modes.Mode(i)
		fmt.Printf("%5d  %-20s  %6.1f dB  %8.1f%%  %7.1f%%  %.2f ms\n",
			i, m.Name, m.ThresholdSNRdB,
			100*float64(classCount[i])/float64(samples),
			100*occ[i],
			m.Airtime(2000).Millis())
	}
	fmt.Printf("below  (pure LEACH fails here)           %8.1f%%  %7.1f%%\n",
		100*float64(belowCnt)/float64(samples), 100*below)

	fmt.Printf("\nanalytic expectations at this local mean:\n")
	fmt.Printf("  transmit-now airtime    %.2f ms/packet (pure LEACH)\n",
		analytic.ExpectedAirtime(link.MeanSNRdB(), modes, 2000).Millis())
	fmt.Printf("  wait for top class      %.0f ms expected (50 ms idle-tone polls)\n",
		1000*analytic.ExpectedWaitForClass(link.MeanSNRdB(), modes.Highest().ThresholdSNRdB, 50*sim.Millisecond))
	fmt.Printf("  tx-energy saving bound  %.0f%% (wait-for-top vs transmit-now)\n",
		100*analytic.PredictedSavingVsTopClass(link.MeanSNRdB(), modes, 2000))
}
