package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock is a settable time source shared by contending locks.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func lockAt(path, holder string, c *fakeClock) *LeaderLock {
	return &LeaderLock{Path: path, TTL: time.Second, Holder: holder, URL: "http://" + holder, now: c.now}
}

// TestLeaderLockHandoff walks the full leadership lifecycle: acquire,
// contention, renewal, voluntary release, takeover with an epoch bump,
// and fencing of the deposed holder's renewals.
func TestLeaderLockHandoff(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "leader.lock")
	primary := lockAt(path, "primary", clk)
	standby := lockAt(path, "standby", clk)

	epoch, err := primary.TryAcquire()
	if err != nil || epoch != 1 {
		t.Fatalf("TryAcquire = %d, %v; want 1, nil", epoch, err)
	}
	if _, err := standby.TryAcquire(); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("standby acquired a live lock: %v", err)
	}
	clk.advance(600 * time.Millisecond)
	if err := primary.Renew(epoch); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	// The renewal pushed the deadline out; the standby still loses.
	clk.advance(600 * time.Millisecond)
	if _, err := standby.TryAcquire(); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("standby acquired a renewed lock: %v", err)
	}

	// Voluntary release: the standby takes over immediately at epoch 2.
	if err := primary.Release(epoch); err != nil {
		t.Fatal(err)
	}
	e2, err := standby.TryAcquire()
	if err != nil || e2 != 2 {
		t.Fatalf("standby TryAcquire after release = %d, %v; want 2, nil", e2, err)
	}
	// The deposed primary's renewals are rejected — it must fence.
	if err := primary.Renew(epoch); !errors.Is(err, ErrLockLost) {
		t.Fatalf("deposed primary Renew = %v, want ErrLockLost", err)
	}
	info, err := ReadLockFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Holder != "standby" || info.Epoch != 2 || info.URL != "http://standby" {
		t.Fatalf("lock = %+v, want standby at epoch 2", info)
	}
}

// TestLeaderLockExpiry: a holder that stops renewing is deposed once
// its deadline lapses, and re-acquiring after deposition bumps the
// epoch past the usurper's.
func TestLeaderLockExpiry(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "leader.lock")
	primary := lockAt(path, "primary", clk)
	standby := lockAt(path, "standby", clk)

	if _, err := primary.TryAcquire(); err != nil {
		t.Fatal(err)
	}
	clk.advance(1100 * time.Millisecond) // past the 1s TTL: primary presumed dead
	e2, err := standby.TryAcquire()
	if err != nil || e2 != 2 {
		t.Fatalf("standby TryAcquire after expiry = %d, %v; want 2, nil", e2, err)
	}
	// The resurrected primary cannot renew epoch 1, but can rejoin the
	// rotation and win epoch 3 after the standby in turn goes silent.
	if err := primary.Renew(1); !errors.Is(err, ErrLockLost) {
		t.Fatalf("zombie Renew = %v, want ErrLockLost", err)
	}
	clk.advance(1100 * time.Millisecond)
	e3, err := primary.TryAcquire()
	if err != nil || e3 != 3 {
		t.Fatalf("primary re-acquire = %d, %v; want 3, nil", e3, err)
	}
}

// TestLeaderLockStaleClaim: a claim sidecar abandoned by a crashed
// claimer (older than the TTL) is swept aside; a fresh one blocks.
func TestLeaderLockStaleClaim(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "leader.lock")
	lock := lockAt(path, "primary", clk)

	claim := path + ".claim"
	if err := os.MkdirAll(filepath.Dir(claim), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(claim, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// A live sidecar (age < TTL) means real contention.
	if err := os.Chtimes(claim, clk.t, clk.t); err != nil {
		t.Fatal(err)
	}
	if _, err := lock.TryAcquire(); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("acquired through a live claim sidecar: %v", err)
	}
	// Age it past the TTL: presumed abandoned, removed, acquisition wins.
	old := clk.t.Add(-2 * time.Second)
	if err := os.Chtimes(claim, old, old); err != nil {
		t.Fatal(err)
	}
	if epoch, err := lock.TryAcquire(); err != nil || epoch != 1 {
		t.Fatalf("TryAcquire over stale claim = %d, %v; want 1, nil", epoch, err)
	}
}
