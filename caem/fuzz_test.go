package caem

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/runner"
	"repro/internal/scenario/gen"
)

// fuzzFamilies are compact variants of the generator presets: small
// worlds at a 60-second horizon with boosted event rates, so every fuzz
// input executes a dense timeline in milliseconds. Between them the
// seven variants emphasize each world-event category.
func fuzzFamilies() []gen.Family {
	base := gen.Family{
		Nodes: 24, FieldWidthM: 60, FieldHeightM: 60,
		DurationSeconds: 60, EventDensity: 3,
	}
	variants := []struct {
		name string
		mut  func(*gen.Family)
	}{
		{"fuzz-mixed", func(f *gen.Family) {
			f.ChurnRate, f.LoadShape, f.Weather = 3, "bursty", "variable"
			f.Heterogeneity, f.MobilityRate, f.InterferenceRate, f.SinkOutages = 0.3, 2, 2, 1
		}},
		{"fuzz-churn", func(f *gen.Family) { f.ChurnRate = 8 }},
		{"fuzz-mobile", func(f *gen.Family) { f.MobilityRate, f.Weather = 6, "variable" }},
		{"fuzz-interference", func(f *gen.Family) {
			f.InterferenceRate, f.Weather, f.LoadShape = 6, "stormy", "bursty"
		}},
		{"fuzz-sink", func(f *gen.Family) { f.SinkOutages, f.LoadShape = 2, "diurnal" }},
		{"fuzz-load", func(f *gen.Family) { f.LoadShape, f.Heterogeneity = "diurnal", 0.5 }},
		{"fuzz-dense", func(f *gen.Family) {
			f.ChurnRate, f.LoadShape, f.Weather = 4, "bursty", "stormy"
			f.Heterogeneity, f.MobilityRate, f.InterferenceRate, f.SinkOutages = 0.4, 4, 4, 2
		}},
	}
	out := make([]gen.Family, len(variants))
	for i, v := range variants {
		f := base
		f.Name = v.name
		v.mut(&f)
		out[i] = f
	}
	return out
}

// fuzzCorpus seeds FuzzScenarioDeterminism: three (index, seed) pairs
// per family variant, 21 specs total. TestFuzzCorpusSpansAllCategories
// proves the corpus exercises every world-event category.
var fuzzCorpus = []struct {
	family uint8
	index  int
	seed   uint64
}{
	{0, 0, 1}, {0, 1, 42}, {0, 5, 0xfeed},
	{1, 0, 1}, {1, 1, 42}, {1, 5, 0xfeed},
	{2, 0, 1}, {2, 1, 42}, {2, 5, 0xfeed},
	{3, 0, 1}, {3, 1, 42}, {3, 5, 0xfeed},
	{4, 0, 1}, {4, 1, 42}, {4, 5, 0xfeed},
	{5, 0, 1}, {5, 1, 42}, {5, 5, 0xfeed},
	{6, 0, 1}, {6, 1, 42}, {6, 5, 0xfeed},
}

// fuzzSpec maps one fuzz input to a generated scenario and its resolved
// run configuration (folding arbitrary fuzz values into range).
func fuzzSpec(t testing.TB, familyIdx uint8, index int, seed uint64) (Scenario, Config) {
	fams := fuzzFamilies()
	fam := fams[int(familyIdx)%len(fams)]
	if index < 0 {
		index = -(index + 1)
	}
	index %= 64
	sc, err := gen.Generate(fam, index, seed)
	if err != nil {
		t.Fatalf("generate(%s, %d, %d): %v", fam.Name, index, seed, err)
	}
	cfg, err := ScenarioConfig(sc)
	if err != nil {
		t.Fatalf("scenario config: %v", err)
	}
	cfg.Seed = seed%1000 + 1
	cfg.SampleIntervalSeconds = 10
	// Forwarding on, so sink-down events are behavior, not no-ops.
	cfg.Advanced.BaseStationForwarding = true
	return sc, cfg
}

// FuzzScenarioDeterminism is the tentpole property-based harness: ANY
// generated scenario must run bit-identically across every execution
// strategy. For each (family, index, seed) input it differential-tests
//
//   - a fresh one-shot context vs a resident pooled context, twice, so
//     the second pooled run exercises Reset-based reuse — Results and
//     full trace CSVs must match byte for byte;
//   - a serial (Workers=1) campaign grid vs a parallel (Workers=4) one
//     over two protocols and two seeds — cells must be deep-equal.
//
// In plain `go test` the corpus runs as 21 deterministic subtests
// spanning all seven world-event categories; `make fuzz` explores
// beyond the corpus.
func FuzzScenarioDeterminism(f *testing.F) {
	for _, c := range fuzzCorpus {
		f.Add(c.family, c.index, c.seed)
	}
	pool := runner.NewPool()
	f.Fuzz(func(t *testing.T, familyIdx uint8, index int, seed uint64) {
		sc, cfg := fuzzSpec(t, familyIdx, index, seed)

		var freshTrace bytes.Buffer
		freshCfg := cfg
		freshCfg.TraceCSV = &freshTrace
		fresh, err := RunScenario(sc, freshCfg)
		if err != nil {
			t.Fatalf("%s fresh: %v", sc.Name, err)
		}
		for round := 0; round < 2; round++ {
			var pooledTrace bytes.Buffer
			pooledCfg := cfg
			pooledCfg.TraceCSV = &pooledTrace
			pooled, err := runScenarioPooled(pool, sc, pooledCfg)
			if err != nil {
				t.Fatalf("%s pooled round %d: %v", sc.Name, round, err)
			}
			if !reflect.DeepEqual(fresh, pooled) {
				t.Fatalf("%s: fresh and pooled results differ (round %d)", sc.Name, round)
			}
			if !bytes.Equal(freshTrace.Bytes(), pooledTrace.Bytes()) {
				t.Fatalf("%s: fresh and pooled trace CSVs differ (round %d, %d vs %d bytes)",
					sc.Name, round, freshTrace.Len(), pooledTrace.Len())
			}
		}

		seeds := []uint64{cfg.Seed, cfg.Seed + 1}
		protos := []Protocol{PureLEACH, Scheme1}
		serialCfg := cfg
		serialCfg.Workers = 1
		serial, err := RunCampaign(serialCfg, []Scenario{sc}, protos, seeds)
		if err != nil {
			t.Fatalf("%s serial campaign: %v", sc.Name, err)
		}
		parallelCfg := cfg
		parallelCfg.Workers = 4
		parallel, err := RunCampaign(parallelCfg, []Scenario{sc}, protos, seeds)
		if err != nil {
			t.Fatalf("%s parallel campaign: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%s: serial and 4-worker campaigns differ", sc.Name)
		}
	})
}

// TestFuzzCorpusSpansAllCategories pins the acceptance property of the
// determinism corpus: the 21 seed specs between them must contain every
// world-event category, so the differential harness exercises mobility,
// interference, and sink failover alongside the original five.
func TestFuzzCorpusSpansAllCategories(t *testing.T) {
	categories := map[ScenarioEventType]string{
		EventKill: "lifecycle", EventRevive: "lifecycle",
		EventTopUp:   "energy",
		EventSetRate: "traffic", EventScaleRate: "traffic",
		EventRampRate: "traffic", EventBurst: "traffic",
		EventChannel:      "channel",
		EventMove:         "mobility",
		EventInterference: "interference",
		EventSinkDown:     "sink", EventSinkUp: "sink",
	}
	seen := map[string]bool{}
	for _, c := range fuzzCorpus {
		sc, _ := fuzzSpec(t, c.family, c.index, c.seed)
		for _, ev := range sc.Timeline {
			seen[categories[ev.Type]] = true
		}
	}
	for _, want := range []string{"lifecycle", "energy", "traffic", "channel", "mobility", "interference", "sink"} {
		if !seen[want] {
			t.Errorf("determinism corpus has no %s event", want)
		}
	}
}
