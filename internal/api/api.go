// Package api defines the wire conventions shared by every HTTP
// surface of the campaign service — the /v1 error envelope, the legacy
// unversioned-path redirect, and the opaque pagination cursor — so
// cmd/caem-serve and internal/cluster speak the same dialect without
// importing each other.
package api

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
)

// Stable machine-readable error codes of the /v1 surface. Clients
// branch on Code; Message is for humans and may change freely.
const (
	CodeInvalidRequest = "invalid_request"
	CodeNotFound       = "not_found"
	CodeGone           = "gone"
	CodeFenced         = "fenced"
	CodeUnavailable    = "unavailable"
	CodeInternal       = "internal"
)

// Error is the body of every non-2xx /v1 response:
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
type Error struct {
	Code    string            `json:"code"`
	Message string            `json:"message"`
	Details map[string]string `json:"details,omitempty"`
}

type errorBody struct {
	Error Error `json:"error"`
}

// WriteError writes the uniform error envelope with the given HTTP
// status.
func WriteError(w http.ResponseWriter, status int, code, message string, details map[string]string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(errorBody{Error: Error{Code: code, Message: message, Details: details}})
}

// RedirectV1 is the handler mounted at legacy unversioned GET paths:
// a 301 to the /v1 twin, preserving the query string. POST routes are
// aliased instead — net/http clients rewrite a redirected POST into a
// bodyless GET, which would silently drop the request payload.
func RedirectV1(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusMovedPermanently)
}

// cursorVersion is bumped when the cursor schema changes; tokens from
// another version are rejected rather than misread.
const cursorVersion = 1

// Cursor is the decoded form of a page_token: schema version, the
// offset the next page starts at, and a hash of the filter parameters
// the token was minted under. Binding the token to its query means a
// cursor replayed against different filters fails loudly instead of
// paging silently through the wrong result set.
type Cursor struct {
	V   int    `json:"v"`
	Off int    `json:"o"`
	Q   string `json:"q,omitempty"`
}

// EncodeCursor mints an opaque page token: base64url over the JSON
// cursor. Opaque means clients must not construct or inspect tokens —
// only replay them.
func EncodeCursor(off int, queryHash string) string {
	blob, _ := json.Marshal(Cursor{V: cursorVersion, Off: off, Q: queryHash})
	return base64.RawURLEncoding.EncodeToString(blob)
}

// DecodeCursor validates and decodes a page token minted by
// EncodeCursor under the same filter hash.
func DecodeCursor(token, queryHash string) (Cursor, error) {
	blob, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return Cursor{}, fmt.Errorf("api: page_token is not valid base64url: %w", err)
	}
	var c Cursor
	if err := json.Unmarshal(blob, &c); err != nil {
		return Cursor{}, fmt.Errorf("api: page_token does not decode: %w", err)
	}
	if c.V != cursorVersion {
		return Cursor{}, fmt.Errorf("api: page_token version %d not supported", c.V)
	}
	if c.Off < 0 {
		return Cursor{}, fmt.Errorf("api: page_token offset %d out of range", c.Off)
	}
	if c.Q != queryHash {
		return Cursor{}, fmt.Errorf("api: page_token was issued for a different query")
	}
	return c, nil
}

// QueryHash canonicalizes the filter parameters a cursor binds to:
// a short hash over the NUL-joined parts.
func QueryHash(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}
