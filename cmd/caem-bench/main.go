// Command caem-bench regenerates every table and figure of the paper's
// evaluation (and the DESIGN.md ablations), printing each report and
// optionally writing CSVs.
//
// Usage:
//
//	caem-bench                       # everything, full scale, 5 seed reps
//	caem-bench -experiment figure9   # one artifact
//	caem-bench -scale 0.3 -quiet     # quick pass
//	caem-bench -reps 10              # wider replication grid
//	caem-bench -seeds 7,11,13        # explicit seed list
//	caem-bench -out results/         # also write CSV files
//
// Every experiment cell runs across the replication seed grid and
// tables report mean ± 95% confidence intervals (Student-t).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiment"
)

// parseSeeds decodes the -seeds flag: a comma-separated uint64 list.
func parseSeeds(csv string) ([]uint64, error) {
	parts := strings.Split(csv, ",")
	seeds := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid -seeds entry %q: %w", p, err)
		}
		seeds = append(seeds, v)
	}
	return seeds, nil
}

func main() {
	var (
		which = flag.String("experiment", "all",
			"which artifact to regenerate: all | table1 | table2 | figure8 | figure9 | figure10 | figure11 | figure12 | netperf | ablation-threshold | ablation-doppler | ablation-burst | ablation-csinoise | ablation-rician | seedsweep | dynamicworld")
		scale   = flag.Float64("scale", 1.0, "experiment scale in (0, 1]: nodes, horizons, sweep sizes")
		seed    = flag.Uint64("seed", 1, "master random seed (replicate k runs at seed+k)")
		reps    = flag.Int("reps", 5, "seed replications per experiment cell; tables report mean ± 95% CI (1 = legacy single-seed point estimates)")
		seedCSV = flag.String("seeds", "", "comma-separated explicit replication seed list (overrides -reps and -seed)")
		out     = flag.String("out", "", "directory to write per-experiment CSV files (empty = don't)")
		quiet   = flag.Bool("quiet", false, "suppress per-run progress")
		workers = flag.Int("workers", 0, "concurrent simulations per sweep (0 = one per CPU, 1 = serial); results are identical for any value")
		cpuprof = flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment runs to this file")
		memprof = flag.String("memprofile", "", "write a pprof allocation profile (taken after the runs) to this file")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caem-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "caem-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		path := *memprof
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "caem-bench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle accounting so the profile reflects live + cumulative allocations
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "caem-bench: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	opts := experiment.Options{Seed: *seed, Scale: *scale, Replications: *reps, Workers: *workers}
	if *seedCSV != "" {
		seeds, err := parseSeeds(*seedCSV)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caem-bench: %v\n", err)
			os.Exit(2)
		}
		opts.Seeds = seeds
	}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	runners := map[string]func(experiment.Options) experiment.Report{
		"table1":             experiment.TableI,
		"table2":             experiment.TableII,
		"figure8":            experiment.Figure8,
		"figure9":            experiment.Figure9,
		"figure10":           experiment.Figure10,
		"figure11":           experiment.Figure11,
		"figure12":           experiment.Figure12,
		"netperf":            experiment.NetworkPerformance,
		"ablation-threshold": experiment.AblationThresholdParams,
		"ablation-doppler":   experiment.AblationDoppler,
		"ablation-burst":     experiment.AblationBurst,
		"ablation-csinoise":  experiment.AblationCSINoise,
		"ablation-rician":    experiment.AblationRician,
		"seedsweep":          experiment.SeedSweep,
		"dynamicworld":       experiment.DynamicWorld,
	}

	var reports []experiment.Report
	switch strings.ToLower(*which) {
	case "all":
		reports = experiment.All(opts)
	default:
		run, ok := runners[strings.ToLower(*which)]
		if !ok {
			fmt.Fprintf(os.Stderr, "caem-bench: unknown experiment %q\n", *which)
			os.Exit(2)
		}
		reports = []experiment.Report{run(opts)}
	}

	for _, r := range reports {
		fmt.Println(r.Render())
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "caem-bench: %v\n", err)
			os.Exit(1)
		}
		for _, r := range reports {
			path := filepath.Join(*out, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.Table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "caem-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			for ci, chart := range r.Charts {
				name := r.ID + ".svg"
				if ci > 0 {
					name = fmt.Sprintf("%s-%d.svg", r.ID, ci+1)
				}
				spath := filepath.Join(*out, name)
				if err := os.WriteFile(spath, []byte(chart.SVG()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "caem-bench: %v\n", err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", spath)
			}
		}
	}
}
