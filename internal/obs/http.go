package obs

import (
	"net/http"
	"runtime"
	"strconv"
	"time"
)

// HTTP-layer metric families. Registered get-or-create, so every
// wrapped route shares the same two families.
const (
	httpRequestsName = "caem_http_requests_total"
	httpLatencyName  = "caem_http_request_seconds"
)

// RegisterHTTPMetrics registers the per-route HTTP request counter and
// latency histogram families and returns them. Idempotent.
func RegisterHTTPMetrics(reg *Registry) (*CounterVec, *HistogramVec) {
	requests := reg.CounterVec(httpRequestsName,
		"HTTP requests served, by route pattern and status code.", "route", "code")
	latency := reg.HistogramVec(httpLatencyName,
		"HTTP request handling latency in seconds, by route pattern.", LatencyBuckets, "route")
	return requests, latency
}

// WrapHandler instruments an HTTP handler with a per-route request
// counter (labeled by status code) and latency histogram. route should
// be the mux pattern ("GET /campaigns/{id}"), not the concrete URL —
// bounded label cardinality is what keeps the exposition scrapeable.
func WrapHandler(reg *Registry, route string, h http.Handler) http.Handler {
	requests, latency := RegisterHTTPMetrics(reg)
	hist := latency.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		hist.Observe(time.Since(start).Seconds())
		requests.With(route, strconv.Itoa(sw.code)).Inc()
	})
}

// statusWriter records the response status code. It forwards Flush so
// streaming handlers (the NDJSON progress feed) keep working through
// the instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// RegisterBuildInfo registers the caem_build_info gauge: constant 1,
// carrying the stamped build version and Go runtime version as labels
// — the standard Prometheus idiom for joining build metadata onto any
// other series.
func RegisterBuildInfo(reg *Registry, version string) {
	if version == "" {
		version = "dev"
	}
	reg.GaugeVec("caem_build_info",
		"Build metadata: constant 1 labeled with the stamped version and Go runtime.",
		"version", "goversion").With(version, runtime.Version()).Set(1)
}
