// Command caem-serve is the always-on campaign service: an HTTP API
// over a persistent, append-only results store and a fault-tolerant
// cluster of simulation workers.
//
// Usage:
//
//	caem-serve -addr :8080 -store ./caem-store -workers 0
//	caem-serve -join http://coordinator:8080 -workers 0
//
// The first form runs a coordinator: it owns the store, serves the
// campaign API, and executes cells on its local worker budget. The
// second form runs a worker process that joins an existing coordinator
// over HTTP: it claims leases of campaign cells, executes them on its
// own simulation pools, and pushes the results back. Workers hold no
// state — they can be added, removed, or killed at any point; the
// coordinator's lease/heartbeat protocol re-queues whatever a dead
// worker was holding, and determinism makes the recomputed results
// bit-identical.
//
// API (canonical paths live under /v1; see routes.go for the full
// table and testdata/api_routes.golden for the locked surface):
//
//	POST /v1/campaigns                submit a campaign (idempotent: equal
//	                                  requests map to the same campaign id)
//	GET  /v1/campaigns                list campaigns (cursor pagination:
//	                                  page_size, page_token)
//	GET  /v1/campaigns/{id}           status: per-cell states + counters
//	GET  /v1/campaigns/{id}/results   completed cells + mean±CI aggregates,
//	                                  read back from the store (works
//	                                  mid-run and after restarts);
//	                                  filterable (scenario, protocol,
//	                                  metric, min, max), orderable (top),
//	                                  percentile surfaces (percentiles),
//	                                  paginated (page_size, page_token)
//	GET  /v1/campaigns/{id}/progress  NDJSON progress stream (curl -N)
//	GET  /v1/healthz                  liveness + store stats + build version
//	GET  /v1/metrics                  Prometheus text-format exposition
//	GET  /v1/cluster/status           work queue, leases, workers, poisons
//	POST /v1/leases/...               the worker lease protocol (see
//	                                  internal/cluster)
//	GET  /debug/pprof/                runtime profiling (unversioned by Go
//	                                  convention)
//
// Legacy unversioned paths remain mounted for one release: GETs answer
// 301 to their /v1 twin (query string preserved); POSTs, /healthz, and
// /metrics are served at both paths (redirecting a POST would make
// net/http clients replay it as a bodyless GET, and probes/scrapers
// commonly treat redirects as failures). Every non-2xx response bodies
// the uniform envelope {"error":{"code","message","details"}} with a
// stable machine-readable code.
//
// Worker mode serves the same /metrics, /healthz, and /debug/pprof/
// surface on its own observability listener (-obs-addr, loopback by
// default), so every process of a cluster is scrapeable.
//
// A campaign request names library scenarios (or embeds inline specs),
// protocols, seeds, and partial config overrides:
//
//	curl -s localhost:8080/v1/campaigns -d '{
//	  "scenarios": ["node-churn"],
//	  "protocols": ["leach", "scheme1"],
//	  "seeds": [1, 2, 3],
//	  "config": {"durationSeconds": 300}
//	}'
//
// Every completed (scenario, protocol, seed) cell is persisted as it
// finishes, keyed by a content hash of its full configuration. The
// service survives restarts: campaign specs live in the store, so a
// restarted caem-serve re-registers every campaign, restores the cells
// already on disk, and re-runs only what is missing. Results are
// deterministic — a cell computed before a crash, after a crash, or on
// any worker of the cluster is bit-identical — so failures and recovery
// change nothing about the answers.
//
// Diagnostics are structured log/slog records on stderr (text by
// default, -log-format json for machine ingestion, -v for debug
// detail); worker and coordinator records carry worker_id, lease_id,
// and campaign attributes.
//
// On SIGTERM/SIGINT both modes drain gracefully: in-flight cells
// finish (bounded by -drain), worker mode releases its leases back to
// the coordinator, and the store flushes before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/caem"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// version is the build version, stamped at link time via
//
//	go build -ldflags "-X main.version=v1.2.3"
//
// and surfaced in -version, /healthz, and the caem_build_info metric.
var version = "dev"

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (coordinator mode)")
		storeDir    = flag.String("store", "caem-store", "results-store directory (created if absent)")
		workers     = flag.Int("workers", 0, "simulation worker budget (0 = one per CPU)")
		join        = flag.String("join", "", "coordinator URL: run as a worker of that cluster instead of serving")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight cells")
		leaseTTL    = flag.Duration("lease-ttl", 0, "worker lease TTL before cells re-queue (0 = default 15s)")
		obsAddr     = flag.String("obs-addr", "127.0.0.1:0", "worker-mode observability listen address for /metrics and /debug/pprof (empty disables)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		verbose     = flag.Bool("v", false, "enable debug logging")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Printf("caem-serve %s %s\n", version, runtime.Version())
		os.Exit(0)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
		os.Exit(2)
	}

	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if *join != "" {
		os.Exit(workerMain(workerConfig{
			join:    *join,
			workers: w,
			drain:   *drain,
			obsAddr: *obsAddr,
			log:     logger,
		}))
	}
	os.Exit(serveMode(*addr, *storeDir, w, *drain, *leaseTTL, logger))
}

// serveMode runs the coordinator: store, campaign API, local workers.
func serveMode(addr, storeDir string, workers int, drain, leaseTTL time.Duration, logger *slog.Logger) int {
	st, err := caem.OpenStore(storeDir)
	if err != nil {
		logger.Error("opening store failed", "error", err.Error())
		return 1
	}
	if n := st.RecoveredBytes(); n > 0 {
		logger.Warn("store recovered from a torn tail", "dropped_bytes", n)
	}
	srv, err := newServerWith(st, serverConfig{
		workers: workers,
		lease:   cluster.Options{LeaseTTL: leaseTTL},
		logger:  logger,
		version: version,
	})
	if err != nil {
		logger.Error("starting server failed", "error", err.Error())
		return 1
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	logger.Info("caem-serve listening",
		"addr", addr, "store", st.Dir(), "workers", workers,
		"cells_on_disk", st.Len(), "version", version)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	code := 0
	select {
	case err := <-done:
		logger.Error("http server failed", "error", err.Error())
		code = 1
	case <-sig:
		logger.Info("draining", "deadline", drain.String())
	}
	httpSrv.Close()
	if err := srv.Shutdown(drain); err != nil {
		logger.Error("shutdown incomplete", "error", err.Error())
		code = 1
	}
	if err := st.Close(); err != nil {
		logger.Error("closing store failed", "error", err.Error())
		code = 1
	}
	return code
}

// workerConfig parameterizes a worker-mode process.
type workerConfig struct {
	// join is the coordinator base URL.
	join string
	// workers is the number of executor loops.
	workers int
	// drain is the graceful-shutdown deadline.
	drain time.Duration
	// obsAddr is the observability listen address serving /metrics,
	// /healthz, and /debug/pprof for this worker process ("" disables).
	obsAddr string
	// log receives structured records (nil discards).
	log *slog.Logger
	// obsReady, when non-nil, is called with the bound observability
	// address once the listener is up (tests use it to find the port).
	obsReady func(addr string)
}

// workerMain joins an existing coordinator: n executor loops claim
// leases over HTTP until interrupted, then release them and exit. The
// process serves its own observability endpoints on cfg.obsAddr.
func workerMain(cfg workerConfig) int {
	logger := cfg.log
	if logger == nil {
		logger = obs.NopLogger()
	}
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, version)

	var obsSrv *http.Server
	if cfg.obsAddr != "" {
		ln, err := net.Listen("tcp", cfg.obsAddr)
		if err != nil {
			logger.Error("observability listener failed", "addr", cfg.obsAddr, "error", err.Error())
			return 1
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintf(w, "{\"ok\":true,\"mode\":\"worker\",\"version\":%q}\n", version)
		})
		registerPprof(mux)
		obsSrv = &http.Server{Handler: mux}
		go obsSrv.Serve(ln)
		bound := ln.Addr().String()
		logger.Info("worker observability listening", "addr", bound)
		if cfg.obsReady != nil {
			cfg.obsReady(bound)
		}
	}

	remote := &cluster.Remote{Base: strings.TrimRight(cfg.join, "/")}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.workers; i++ {
		w := &cluster.Worker{
			Queue:   remote,
			Name:    fmt.Sprintf("%s-%d-%d", host, os.Getpid(), i),
			Metrics: reg,
			Logger:  logger,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	logger.Info("workers joined", "count", cfg.workers, "coordinator", cfg.join, "version", version)

	<-ctx.Done()
	logger.Info("draining", "deadline", cfg.drain.String())
	drained := make(chan struct{})
	go func() {
		wg.Wait()
		close(drained)
	}()
	code := 0
	select {
	case <-drained:
	case <-time.After(cfg.drain):
		logger.Warn("drain deadline passed; abandoning leases (they expire and re-queue)")
		code = 1
	}
	if obsSrv != nil {
		obsSrv.Close()
	}
	return code
}
