// Quickstart: run the paper's default operating point (Table II) under
// CAEM Scheme 1 and print the run summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/caem"
)

func main() {
	cfg := caem.DefaultConfig() // 100 nodes, 100 m x 100 m, 5 pkt/s, 10 J
	cfg.Protocol = caem.Scheme1
	cfg.DurationSeconds = 120 // keep the quickstart quick

	res, err := caem.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())

	// The result also carries the figure-style time series.
	fmt.Println("\naverage remaining energy over time:")
	step := len(res.EnergySeries) / 6
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.EnergySeries); i += step {
		p := res.EnergySeries[i]
		fmt.Printf("  t=%5.0fs  %.3f J\n", p.TimeSeconds, p.Value)
	}
}
