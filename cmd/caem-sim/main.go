// Command caem-sim runs one CAEM simulation and prints its summary.
//
// Usage:
//
//	caem-sim -protocol scheme1 -load 5 -duration 600 -nodes 100 -seed 1
//
// Protocols: leach (pure LEACH baseline), scheme1 (CAEM with adaptive
// threshold), scheme2 (CAEM with fixed highest threshold).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/caem"
	"repro/internal/metrics"
)

func main() {
	var (
		protocol = flag.String("protocol", "scheme1", "protocol: leach | scheme1 | scheme2")
		load     = flag.Float64("load", 5, "per-node traffic load, packets/second")
		duration = flag.Float64("duration", 600, "simulated seconds")
		nodes    = flag.Int("nodes", 100, "number of sensor nodes")
		seed     = flag.Uint64("seed", 1, "master random seed")
		energy   = flag.Float64("energy", 10, "initial battery energy, Joules")
		field    = flag.Float64("field", 100, "square field side, meters")
		buffer   = flag.Int("buffer", 50, "buffer capacity in packets (0 = unbounded)")
		stopDead = flag.Bool("stop-when-dead", false, "stop at network death (80% exhausted)")
		perNode  = flag.Bool("per-node", false, "print per-node outcomes")
		traceOut = flag.String("trace", "", "write the protocol event stream as CSV to this file")
		seeds    = flag.Int("seeds", 1, "number of replicate runs at consecutive seeds; >1 prints per-seed summaries plus a mean/sd aggregate")
		workers  = flag.Int("workers", 0, "concurrent replicate runs (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	cfg := caem.DefaultConfig()
	switch strings.ToLower(*protocol) {
	case "leach", "pure-leach", "none":
		cfg.Protocol = caem.PureLEACH
	case "scheme1", "s1", "adaptive":
		cfg.Protocol = caem.Scheme1
	case "scheme2", "s2", "fixed":
		cfg.Protocol = caem.Scheme2
	default:
		fmt.Fprintf(os.Stderr, "caem-sim: unknown protocol %q (want leach, scheme1, or scheme2)\n", *protocol)
		os.Exit(2)
	}
	cfg.TrafficLoad = *load
	cfg.DurationSeconds = *duration
	cfg.Nodes = *nodes
	cfg.Seed = *seed
	cfg.InitialEnergyJ = *energy
	cfg.FieldWidthM = *field
	cfg.FieldHeightM = *field
	cfg.BufferCapacity = *buffer
	cfg.StopWhenNetworkDead = *stopDead

	// Reject incompatible replication flags before touching the trace
	// file: os.Create truncates, and a rejected invocation must not
	// destroy an existing trace.
	if *seeds > 1 {
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "caem-sim: -trace is incompatible with -seeds > 1 (one trace stream per run)")
			os.Exit(2)
		}
		if *perNode {
			fmt.Fprintln(os.Stderr, "caem-sim: -per-node is incompatible with -seeds > 1; inspect one seed at a time")
			os.Exit(2)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caem-sim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w := bufio.NewWriterSize(f, 1<<20)
		defer w.Flush()
		cfg.TraceCSV = w
	}

	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "caem-sim: invalid configuration: %v\n", err)
		os.Exit(2)
	}

	if *seeds > 1 {
		runReplicates(cfg, *seed, *seeds, *workers)
		return
	}

	res, err := caem.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caem-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary())

	if *perNode {
		fmt.Println("\nnode  remaining(J)  consumed(J)  delivered  queue  status")
		for _, n := range res.Nodes {
			status := "alive"
			if n.Dead {
				status = fmt.Sprintf("died@%.1fs", n.DiedAtSeconds)
			}
			fmt.Printf("%4d  %11.3f  %10.3f  %9d  %5d  %s\n",
				n.Index, n.RemainingJ, n.ConsumedJ, n.DeliveredCount, n.QueueLen, status)
		}
	}
}

// runReplicates fans the same configuration across consecutive seeds in
// parallel and prints per-seed summaries plus a mean/sd aggregate of the
// headline metrics.
func runReplicates(cfg caem.Config, firstSeed uint64, n, workers int) {
	seedList := make([]uint64, n)
	for i := range seedList {
		seedList[i] = firstSeed + uint64(i)
	}
	cfg.Workers = workers
	results, err := caem.RunSeeds(cfg, seedList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caem-sim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s, %d replicates (seeds %d..%d)\n\n", cfg.Protocol, n, seedList[0], seedList[n-1])
	fmt.Println("seed  consumed(J)  delivered  delivery  energy/pkt(mJ)  delay(ms)  lifetime(s)")
	for i, r := range results {
		lifetime := "-"
		if r.NetworkDead {
			lifetime = fmt.Sprintf("%.1f", r.NetworkLifetimeSeconds)
		}
		fmt.Printf("%4d  %11.2f  %9d  %7.1f%%  %14.3f  %9.1f  %11s\n",
			seedList[i], r.TotalConsumedJ, r.Delivered, 100*r.DeliveryRate,
			r.EnergyPerPacketMilliJ, r.MeanDelayMs, lifetime)
	}

	meanSD := func(pick func(caem.Result) float64) (mean, sd float64) {
		var w metrics.Welford
		for _, r := range results {
			w.Add(pick(r))
		}
		return w.Mean(), w.StdDev()
	}
	fmt.Println()
	for _, m := range []struct {
		name string
		pick func(caem.Result) float64
	}{
		{"consumed energy (J)", func(r caem.Result) float64 { return r.TotalConsumedJ }},
		{"delivery rate", func(r caem.Result) float64 { return r.DeliveryRate }},
		{"energy per packet (mJ)", func(r caem.Result) float64 { return r.EnergyPerPacketMilliJ }},
		{"mean delay (ms)", func(r caem.Result) float64 { return r.MeanDelayMs }},
	} {
		mean, sd := meanSD(m.pick)
		fmt.Printf("%-24s mean %10.3f  sd %8.3f\n", m.name, mean, sd)
	}
}
