package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
)

func cellPayload(key string) SubmitCell {
	return SubmitCell{Key: key, Cell: json.RawMessage(`{"key":"` + key + `"}`)}
}

func openT(t *testing.T, dir string) (*Journal, State) {
	t.Helper()
	j, st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return j, st
}

func queueKeys(st State) []string {
	keys := make([]string, 0, len(st.Queue))
	for _, q := range st.Queue {
		keys = append(keys, q.Key)
	}
	return keys
}

// TestJournalRoundTrip writes one epoch's full record vocabulary and
// replays it: submissions minus settlements are queued, a dead grant's
// cells are reclaimed, attempts and poisons survive.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, st := openT(t, dir)
	if len(st.Queue) != 0 || len(st.Settled) != 0 {
		t.Fatalf("fresh journal is not empty: %+v", st)
	}
	if err := j.Begin(1, st); err != nil {
		t.Fatal(err)
	}
	cells := []SubmitCell{cellPayload("c/0"), cellPayload("c/1"), cellPayload("c/2"), cellPayload("c/3")}
	if err := j.Submit(cells); err != nil {
		t.Fatal(err)
	}
	if err := j.Grant("lease-1-1", []string{"c/0", "c/1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Renew("lease-1-1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Settle([]string{"c/0"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Retry("c/2", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Poison("c/3", 4, json.RawMessage(`{"error":"boom"}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, got := openT(t, dir)
	if got.Epoch != 1 {
		t.Fatalf("Epoch = %d, want 1", got.Epoch)
	}
	// c/1 was leased by the dead epoch and reclaims after the still-ready
	// c/2; c/0 settled, c/3 poisoned.
	if want := []string{"c/2", "c/1"}; !reflect.DeepEqual(queueKeys(got), want) {
		t.Fatalf("queue = %v, want %v", queueKeys(got), want)
	}
	if !got.Settled["c/0"] || !got.Settled["c/3"] {
		t.Fatalf("settled = %v, want c/0 and c/3", got.Settled)
	}
	if got.Attempts["c/2"] != 1 || got.Attempts["c/3"] != 4 {
		t.Fatalf("attempts = %v", got.Attempts)
	}
	if string(got.Poisoned["c/3"]) != `{"error":"boom"}` {
		t.Fatalf("poison report = %s", got.Poisoned["c/3"])
	}
	// Payloads round-trip exactly.
	for _, q := range got.Queue {
		if string(q.Cell) != `{"key":"`+q.Key+`"}` {
			t.Fatalf("payload for %s corrupted: %s", q.Key, q.Cell)
		}
	}
}

// TestJournalTornTailMidGrant cuts the file mid-way through a grant
// record: Open must truncate back to the last whole record and replay
// as if the grant never happened.
func TestJournalTornTailMidGrant(t *testing.T) {
	dir := t.TempDir()
	j, st := openT(t, dir)
	if err := j.Begin(1, st); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit([]SubmitCell{cellPayload("c/0"), cellPayload("c/1")}); err != nil {
		t.Fatal(err)
	}
	if err := j.Grant("lease-1-1", []string{"c/0"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	path := filepath.Join(dir, "epoch-1.jsonl")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail mid-record: drop the grant's trailing bytes.
	torn := blob[:len(blob)-9]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, got := openT(t, dir)
	if want := []string{"c/0", "c/1"}; !reflect.DeepEqual(queueKeys(got), want) {
		t.Fatalf("queue after torn grant = %v, want %v", queueKeys(got), want)
	}
	if j2.RecoveredBytes() == 0 {
		t.Fatal("torn tail recovered no bytes")
	}
	// The tear is physically gone: a re-open recovers nothing.
	j3, _ := openT(t, dir)
	if j3.RecoveredBytes() != 0 {
		t.Fatalf("second open still recovering %d bytes — tail was not truncated", j3.RecoveredBytes())
	}
	// And the truncated file accepts appends cleanly.
	if err := j3.Begin(2, got); err != nil {
		t.Fatal(err)
	}
	if err := j3.Submit([]SubmitCell{cellPayload("c/9")}); err != nil {
		t.Fatal(err)
	}
	j3.Close()
	_, again := openT(t, dir)
	if want := []string{"c/0", "c/1", "c/9"}; !reflect.DeepEqual(queueKeys(again), want) {
		t.Fatalf("queue after truncate+append = %v, want %v", queueKeys(again), want)
	}
}

// TestJournalReplayIdempotent: replay ≡ replay∘replay. Folding a
// journal, snapshotting the result into a new epoch, and folding again
// yields the same state — and two plain Opens agree byte for byte.
func TestJournalReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	j, st := openT(t, dir)
	if err := j.Begin(1, st); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit([]SubmitCell{cellPayload("c/0"), cellPayload("c/1"), cellPayload("c/2")}); err != nil {
		t.Fatal(err)
	}
	if err := j.Grant("lease-1-1", []string{"c/0"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Settle([]string{"c/1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Retry("c/2", 2); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, first := openT(t, dir)
	_, second := openT(t, dir)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two replays disagree:\n%+v\n%+v", first, second)
	}

	// Snapshot the replayed state into epoch 2 and replay once more: the
	// fold is a fixed point.
	j2, _ := openT(t, dir)
	if err := j2.Begin(2, first); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, third := openT(t, dir)
	third.Epoch = first.Epoch // the epoch advances by design; all else is fixed
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("replay∘replay diverged:\n%+v\n%+v", first, third)
	}
}

// TestJournalBeginPrunesOldEpochs: once a new epoch's snapshot is
// durable, predecessor files are deleted, and a crash between the
// snapshot write and the prune (both files present) still converges.
func TestJournalBeginPrunesOldEpochs(t *testing.T) {
	dir := t.TempDir()
	j, st := openT(t, dir)
	if err := j.Begin(1, st); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit([]SubmitCell{cellPayload("c/0")}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, st2 := openT(t, dir)
	if err := j2.Begin(2, st2); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if _, err := os.Stat(filepath.Join(dir, "epoch-1.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("epoch-1 file survived Begin(2): %v", err)
	}

	// Crash window: resurrect the old epoch file alongside the new one.
	// Replay folds in epoch order and the newer snapshot wins.
	if err := os.WriteFile(filepath.Join(dir, "epoch-1.jsonl"),
		[]byte(`{"t":"snap","epoch":1,"queue":[{"k":"stale/0","c":{}}]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, got := openT(t, dir)
	if got.Epoch != 2 {
		t.Fatalf("Epoch = %d, want 2", got.Epoch)
	}
	if want := []string{"c/0"}; !reflect.DeepEqual(queueKeys(got), want) {
		t.Fatalf("queue = %v, want %v (stale epoch-1 content leaked)", queueKeys(got), want)
	}
}

// TestJournalMetrics: instruments register lint-clean and the append
// counters move.
func TestJournalMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	j, st := openT(t, dir)
	j.Observe(reg)
	if err := j.Begin(1, st); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit([]SubmitCell{cellPayload("c/0")}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if errs := reg.Lint("caem_"); len(errs) != 0 {
		t.Fatalf("journal metrics fail the naming lint: %v", errs)
	}
}
