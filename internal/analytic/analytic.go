// Package analytic provides closed-form predictions for the quantities the
// simulator measures, derived from the same modelling assumptions
// (Rayleigh fading, Poisson arrivals, the ABICM mode table). They serve
// two purposes:
//
//  1. Cross-validation: the test suites compare simulated statistics
//     against these expressions, catching bugs that self-consistent
//     simulation tests cannot (a simulator can be deterministic and
//     conserving and still sample the wrong distribution).
//  2. Back-of-envelope tooling: cmd/caem-trace and the documentation use
//     them to explain *why* the measured curves look the way they do.
//
// All SNR arguments are mean (local-mean) SNRs in dB — path loss plus
// shadowing, with Rayleigh fading as the randomness being integrated over.
package analytic

import (
	"fmt"
	"math"

	"repro/internal/phy"
	"repro/internal/sim"
)

// dbToLin converts dB to linear power ratio.
func dbToLin(db float64) float64 { return math.Pow(10, db/10) }

// RayleighExceedProb returns P(SNR > threshold) for a Rayleigh-faded link
// with the given local-mean SNR: the instantaneous linear SNR is
// exponential with that mean, so P = exp(-thr_lin / mean_lin).
func RayleighExceedProb(meanSNRdB, thresholdDB float64) float64 {
	return math.Exp(-dbToLin(thresholdDB) / dbToLin(meanSNRdB))
}

// ModeOccupancy returns, for a Rayleigh link with the given local-mean
// SNR, the probability that the instantaneous CSI admits exactly class i
// of the table (index i of the returned slice), plus the probability that
// it is below every class (the second return). The slice and the scalar
// sum to 1.
func ModeOccupancy(meanSNRdB float64, table phy.Table) ([]float64, float64) {
	n := table.Len()
	occ := make([]float64, n)
	prev := 1.0 // P(SNR >= -inf)
	for i := 0; i < n; i++ {
		pAbove := RayleighExceedProb(meanSNRdB, table.ThresholdForClass(i))
		occ[i] = prev - pAbove // admitted exactly class i-1 band... shifted below
		prev = pAbove
	}
	// occ[i] currently holds P(threshold_{i-1} <= SNR < threshold_i) with
	// occ[0] = P(SNR < threshold_0) — re-map so occ[i] is "class i is the
	// best admissible", and below-all is the old occ[0].
	below := occ[0]
	for i := 0; i < n-1; i++ {
		occ[i] = occ[i+1]
	}
	occ[n-1] = prev // P(SNR >= top threshold)
	return occ, below
}

// ExpectedAirtime returns the mean on-air time for a payload on a Rayleigh
// link under the pure-LEACH policy (transmit immediately at the best
// admissible mode; below all thresholds, fall back to the most robust
// mode). Retransmissions are not included — this is the per-attempt
// airtime the Figure 11 baseline curve is built from.
func ExpectedAirtime(meanSNRdB float64, table phy.Table, payloadBits int) sim.Time {
	occ, below := ModeOccupancy(meanSNRdB, table)
	var t float64
	for i, p := range occ {
		t += p * table.Mode(i).Airtime(payloadBits).Seconds()
	}
	t += below * table.Lowest().Airtime(payloadBits).Seconds()
	return sim.FromSeconds(t)
}

// ExpectedWaitForClass returns the mean time a sensor waits for the
// channel to admit the given class, when it learns the CSI at periodic
// polls (the idle-tone period) and successive polls are roughly
// independent (poll interval ≳ coherence time). The wait is geometric:
// mean = interval × (1-p)/p with p the per-poll admission probability.
// p → 0 yields +Inf.
func ExpectedWaitForClass(meanSNRdB float64, thresholdDB float64, pollInterval sim.Time) float64 {
	p := RayleighExceedProb(meanSNRdB, thresholdDB)
	if p <= 0 {
		return math.Inf(1)
	}
	return pollInterval.Seconds() * (1 - p) / p
}

// DeferralProbability is the per-opportunity probability that a node
// waiting for the given class declines to transmit — the quantity behind
// the simulator's DeferralsCSI counter.
func DeferralProbability(meanSNRdB float64, thresholdDB float64) float64 {
	return 1 - RayleighExceedProb(meanSNRdB, thresholdDB)
}

// ExpectedHeads returns the expected number of cluster heads per LEACH
// round: over a full rotation epoch every node serves exactly once, so
// the long-run average is n×P per round.
func ExpectedHeads(nodes int, headFraction float64) float64 {
	return float64(nodes) * headFraction
}

// ClusterCapacityPktPerSec bounds the packet service rate of one cluster's
// shared data channel if every packet used the given airtime and the
// channel were perfectly scheduled. Offered load above this bound
// saturates the cluster (Figure 10/12's regime change).
func ClusterCapacityPktPerSec(airtime sim.Time) float64 {
	s := airtime.Seconds()
	if s <= 0 {
		return math.Inf(1)
	}
	return 1 / s
}

// SaturationLoad returns the per-node load (pkt/s) at which a cluster of
// the given size saturates, under the mean airtime given.
func SaturationLoad(clusterSize int, airtime sim.Time) float64 {
	if clusterSize <= 0 {
		return math.Inf(1)
	}
	return ClusterCapacityPktPerSec(airtime) / float64(clusterSize)
}

// EnergyPerPacketTx returns the transmitter-side radio energy for one
// packet at one mode: airtime × transmit power (no startup share).
func EnergyPerPacketTx(m phy.Mode, payloadBits int, txPowerW float64) float64 {
	return m.Airtime(payloadBits).Seconds() * txPowerW
}

// ExpectedEnergyPerPacketTx is the pure-LEACH counterpart of
// EnergyPerPacketTx on a Rayleigh link: the occupancy-weighted mean.
func ExpectedEnergyPerPacketTx(meanSNRdB float64, table phy.Table, payloadBits int, txPowerW float64) float64 {
	return ExpectedAirtime(meanSNRdB, table, payloadBits).Seconds() * txPowerW
}

// PredictedSavingVsTopClass returns the fraction of transmit energy the
// wait-for-top-class policy saves over transmit-immediately on a Rayleigh
// link — the analytic core of the paper's headline claim.
func PredictedSavingVsTopClass(meanSNRdB float64, table phy.Table, payloadBits int) float64 {
	immediate := ExpectedAirtime(meanSNRdB, table, payloadBits).Seconds()
	top := table.Highest().Airtime(payloadBits).Seconds()
	if immediate <= 0 {
		return 0
	}
	return 1 - top/immediate
}

// String renders a mode-occupancy vector for diagnostics.
func OccupancyString(occ []float64, below float64) string {
	s := ""
	for i, p := range occ {
		s += fmt.Sprintf("class%d=%.1f%% ", i, 100*p)
	}
	s += fmt.Sprintf("below=%.1f%%", 100*below)
	return s
}
