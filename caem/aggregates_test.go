package caem

import (
	"math"
	"testing"
)

// aggCell fabricates a summary-level cell with metric values that make
// floating-point accumulation order observable: adding them to a
// Welford stream in different orders drifts the final ulps.
func aggCell(scenario string, p Protocol, seed uint64) CampaignCell {
	f := float64(seed)
	return CampaignCell{
		Scenario: scenario,
		Protocol: p,
		Seed:     seed,
		Result: Result{
			Protocol:              p,
			TotalConsumedJ:        1e8 + f*math.Pi,
			DeliveryRate:          1 / (f + 3),
			MeanDelayMs:           math.Sqrt(f + 2),
			P95DelayMs:            math.Cbrt(f + 7),
			EnergyPerPacketMilliJ: math.Log(f + 2),
			AliveAtEnd:            int(90 + seed),
		},
	}
}

// TestStoreAggregatesCanonicalOrder: CampaignStore.Aggregates must be
// independent of store append order (completion order when cells ran
// concurrently) and exactly equal — not equal-modulo-ulps — to
// aggregating the same cells in canonical submission order.
func TestStoreAggregatesCanonicalOrder(t *testing.T) {
	scenarios := []string{"alpha", "beta"}
	protocols := []Protocol{PureLEACH, Scheme1}
	seeds := []uint64{1, 2, 3, 4, 5}

	// The canonical reference: submission order, as a serial
	// RunCampaign would aggregate.
	var canonical []CampaignCell
	for _, sc := range scenarios {
		for _, p := range protocols {
			for _, seed := range seeds {
				canonical = append(canonical, aggCell(sc, p, seed))
			}
		}
	}
	want := AggregateCampaign(canonical)

	// Store the same cells in a scrambled "completion" order.
	cs, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	perm := []int{13, 2, 19, 7, 0, 16, 9, 4, 11, 18, 1, 14, 6, 10, 3, 17, 8, 15, 5, 12}
	if len(perm) != len(canonical) {
		t.Fatalf("permutation covers %d cells, grid has %d", len(perm), len(canonical))
	}
	for _, i := range perm {
		c := canonical[i]
		c.Restored = false
		if err := cs.PutCell("agg-test", "feedc0defeedc0de", c); err != nil {
			t.Fatal(err)
		}
	}

	got, err := cs.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d aggregate groups, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Scenario != w.Scenario || g.Protocol != w.Protocol || g.Seeds != w.Seeds {
			t.Fatalf("group %d = %s/%s n=%d, want %s/%s n=%d",
				i, g.Scenario, g.Protocol, g.Seeds, w.Scenario, w.Protocol, w.Seeds)
		}
		for name, pair := range map[string][2]Aggregate{
			"consumedJ":    {g.ConsumedJ, w.ConsumedJ},
			"deliveryRate": {g.DeliveryRate, w.DeliveryRate},
			"meanDelayMs":  {g.MeanDelayMs, w.MeanDelayMs},
			"p95DelayMs":   {g.P95DelayMs, w.P95DelayMs},
			"energyPerPkt": {g.EnergyPerPacketMilliJ, w.EnergyPerPacketMilliJ},
			"aliveAtEnd":   {g.AliveAtEnd, w.AliveAtEnd},
		} {
			if pair[0] != pair[1] {
				t.Errorf("group %s/%s metric %s differs from canonical-order aggregation:\n got %+v\nwant %+v",
					g.Scenario, g.Protocol, name, pair[0], pair[1])
			}
		}
	}
}
