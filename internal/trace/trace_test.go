package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func ev(t sim.Time, k core.TraceKind, node int) core.TraceEvent {
	return core.TraceEvent{T: t, Kind: k, Node: node}
}

func TestRecorderCountsAndEvents(t *testing.T) {
	r := NewRecorder(0)
	r.Observe(ev(1, core.TraceDelivered, 3))
	r.Observe(ev(2, core.TraceDelivered, 3))
	r.Observe(ev(3, core.TraceCollision, 5))
	r.Observe(ev(4, core.TraceRound, -1))
	if r.Total() != 4 {
		t.Fatalf("total = %d", r.Total())
	}
	if r.Count(core.TraceDelivered) != 2 || r.Count(core.TraceCollision) != 1 {
		t.Fatal("kind counts wrong")
	}
	if r.NodeCount(3) != 2 || r.NodeCount(5) != 1 {
		t.Fatal("node counts wrong")
	}
	if r.NodeCount(-1) != 0 {
		t.Fatal("network-wide events must not count against a node")
	}
	evs := r.Events()
	if len(evs) != 4 || evs[0].T != 1 || evs[3].T != 4 {
		t.Fatalf("events = %v", evs)
	}
	if r.Dropped() != 0 {
		t.Fatal("unbounded recorder dropped")
	}
}

func TestRecorderRingKeepsNewest(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Observe(ev(sim.Time(i), core.TraceDelivered, 0))
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	for i, want := range []sim.Time{3, 4, 5} {
		if evs[i].T != want {
			t.Fatalf("ring order wrong: %v", evs)
		}
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5 (counts cover dropped events too)", r.Total())
	}
}

func TestRecorderNegativeLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative limit did not panic")
		}
	}()
	NewRecorder(-1)
}

func TestFilterPredicates(t *testing.T) {
	r := NewRecorder(0)
	r.Observe(ev(1, core.TraceDelivered, 1))
	r.Observe(ev(2, core.TraceDelivered, 2))
	r.Observe(ev(3, core.TraceCollision, 1))
	r.Observe(ev(4, core.TraceDelivered, 1))

	got := r.Filter(ByKind(core.TraceDelivered), ByNode(1))
	if len(got) != 2 || got[0].T != 1 || got[1].T != 4 {
		t.Fatalf("filtered = %v", got)
	}
	if got := r.Filter(After(3)); len(got) != 2 {
		t.Fatalf("After(3) = %v", got)
	}
	if got := r.Filter(ByNode(99)); len(got) != 0 {
		t.Fatalf("no-match filter returned %v", got)
	}
}

func TestWriters(t *testing.T) {
	events := []core.TraceEvent{
		{T: sim.Second, Kind: core.TraceDelivered, Node: 7, Value: 3},
		{T: 2 * sim.Second, Kind: core.TraceDrop, Node: 8, Detail: "buffer"},
	}
	var txt strings.Builder
	if err := WriteText(&txt, events); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "delivered") || !strings.Contains(txt.String(), "buffer") {
		t.Fatalf("text output:\n%s", txt.String())
	}
	var csv strings.Builder
	if err := WriteCSV(&csv, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "time_s,kind,node,value,detail" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.000000,delivered,7,3,") {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestTee(t *testing.T) {
	a := NewRecorder(0)
	b := NewRecorder(0)
	fn := Tee(a.Observe, b.Observe)
	fn(ev(1, core.TraceDeath, 2))
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatal("tee did not fan out")
	}
}

// End-to-end: a real simulation with tracing enabled must emit a stream
// whose counts agree with the run's result metrics.
func TestRecorderAgainstSimulation(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Nodes = 15
	cfg.FieldWidth, cfg.FieldHeight = 50, 50
	cfg.Horizon = 40 * sim.Second
	rec := NewRecorder(0)
	cfg.Trace = rec.Observe
	res := core.New(cfg).Run()

	if rec.Total() == 0 {
		t.Fatal("no trace events from a live run")
	}
	// Delivered trace events cover radio deliveries (head self-deliveries
	// and election flushes are local, not radio events).
	var modes uint64
	for _, m := range res.ModeCounts {
		modes += m
	}
	if got := rec.Count(core.TraceDelivered); got != modes {
		t.Fatalf("delivered trace events %d != radio deliveries %d", got, modes)
	}
	if got := rec.Count(core.TraceChannelFail); got != res.MAC.ChannelFails {
		t.Fatalf("channel-fail events %d != counter %d", got, res.MAC.ChannelFails)
	}
	if got := rec.Count(core.TraceCollision); got != res.CollisionEvents {
		t.Fatalf("collision events %d != counter %d", got, res.CollisionEvents)
	}
	if got := rec.Count(core.TraceDrop); got != res.DroppedBuffer+res.DroppedRetry {
		t.Fatalf("drop events %d != drops %d", got, res.DroppedBuffer+res.DroppedRetry)
	}
	if got := rec.Count(core.TraceRound); int(got) != res.Rounds {
		t.Fatalf("round events %d != rounds %d", got, res.Rounds)
	}
	if got := rec.Count(core.TraceDeferral); got != res.MAC.DeferralsCSI+res.MAC.DeferralsBusy {
		t.Fatalf("deferral events %d != counters %d", got, res.MAC.DeferralsCSI+res.MAC.DeferralsBusy)
	}
	// Events arrive in non-decreasing time order.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatal("trace events out of time order")
		}
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Observe(ev(sim.Time(i), core.TraceDelivered, 0))
	}
	r.Observe(ev(6, core.TraceDeath, 1))
	s := r.Summary()
	if !strings.Contains(s, "6 events") {
		t.Fatalf("summary missing total:\n%s", s)
	}
	if !strings.Contains(s, "delivered") || !strings.Contains(s, "death") {
		t.Fatalf("summary missing kinds:\n%s", s)
	}
	if !strings.Contains(s, "beyond the 2-event ring") {
		t.Fatalf("summary missing drop note:\n%s", s)
	}
}

func TestStreamCSV(t *testing.T) {
	var b strings.Builder
	fn, errf := StreamCSV(&b)
	fn(ev(1*sim.Second, core.TraceDelivered, 4))
	fn(ev(2*sim.Second, core.TraceDrop, 5))
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1.000000,delivered,4,") {
		t.Fatalf("row = %q", lines[1])
	}
}

// failingWriter errors after n successful writes.
type failingWriter struct{ remaining int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errFail
	}
	w.remaining--
	return len(p), nil
}

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "simulated write failure" }

func TestStreamCSVWriteFailure(t *testing.T) {
	fn, errf := StreamCSV(&failingWriter{remaining: 1})
	fn(ev(1, core.TraceDelivered, 0)) // fails
	fn(ev(2, core.TraceDelivered, 0)) // silently skipped after failure
	if errf() == nil {
		t.Fatal("write failure not reported")
	}
}

func TestWritersPropagateErrors(t *testing.T) {
	events := []core.TraceEvent{ev(1, core.TraceDelivered, 0)}
	if err := WriteText(&failingWriter{}, events); err == nil {
		t.Fatal("WriteText swallowed the error")
	}
	if err := WriteCSV(&failingWriter{}, events); err == nil {
		t.Fatal("WriteCSV swallowed the header error")
	}
	if err := WriteCSV(&failingWriter{remaining: 1}, events); err == nil {
		t.Fatal("WriteCSV swallowed the row error")
	}
}
