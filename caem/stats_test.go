package caem

import (
	"math"
	"strings"
	"testing"
)

func TestAggregateOf(t *testing.T) {
	a := AggregateOf(2, 4, 4, 4, 5, 5, 7, 9)
	if a.N != 8 || math.Abs(a.Mean-5) > 1e-12 {
		t.Fatalf("n/mean = %d/%v", a.N, a.Mean)
	}
	if a.Min != 2 || a.Max != 9 {
		t.Fatalf("min/max = %v/%v", a.Min, a.Max)
	}
	if math.IsNaN(a.CI95) || a.CI95 <= 0 {
		t.Fatalf("CI95 = %v", a.CI95)
	}
	if !strings.Contains(a.String(), "±") {
		t.Fatalf("String() = %q, want mean±ci", a.String())
	}
}

func TestAggregateSingleValue(t *testing.T) {
	a := AggregateOf(3.5)
	if !math.IsNaN(a.CI95) || !math.IsNaN(a.SD) {
		t.Fatalf("single-value CI/SD = %v/%v, want NaN", a.CI95, a.SD)
	}
	if got := a.Format(2); got != "3.50" {
		t.Fatalf("single-value Format = %q, want bare mean", got)
	}
}

func TestAggregateScaled(t *testing.T) {
	a := AggregateOf(0.5, 0.7).Scaled(100)
	if math.Abs(a.Mean-60) > 1e-9 || math.Abs(a.Min-50) > 1e-9 || math.Abs(a.Max-70) > 1e-9 {
		t.Fatalf("scaled aggregate = %+v", a)
	}
}

// AggregateCampaign must group by (scenario, protocol) in first-
// appearance order and summarize across seeds.
func TestAggregateCampaign(t *testing.T) {
	lib, err := LibraryScenarios()
	if err != nil {
		t.Fatal(err)
	}
	sc := lib[0]
	cfg, err := ScenarioConfig(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DurationSeconds = 30
	cfg.Workers = 1
	cells, err := RunCampaign(cfg, []Scenario{sc}, []Protocol{PureLEACH, Scheme1}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	aggs := AggregateCampaign(cells)
	if len(aggs) != 2 {
		t.Fatalf("aggregates = %d, want one per (scenario, protocol)", len(aggs))
	}
	if aggs[0].Protocol != PureLEACH || aggs[1].Protocol != Scheme1 {
		t.Fatalf("aggregate order = %v, %v", aggs[0].Protocol, aggs[1].Protocol)
	}
	for _, a := range aggs {
		if a.Scenario != sc.Name {
			t.Errorf("scenario = %q", a.Scenario)
		}
		if a.Seeds != 3 || a.ConsumedJ.N != 3 {
			t.Errorf("seeds = %d / %d, want 3", a.Seeds, a.ConsumedJ.N)
		}
		if a.ConsumedJ.Mean <= 0 {
			t.Errorf("consumed mean = %v", a.ConsumedJ.Mean)
		}
		if math.IsNaN(a.ConsumedJ.CI95) {
			t.Errorf("consumed CI is NaN with 3 seeds")
		}
		if a.ConsumedJ.Min > a.ConsumedJ.Mean || a.ConsumedJ.Max < a.ConsumedJ.Mean {
			t.Errorf("min/mean/max inconsistent: %+v", a.ConsumedJ)
		}
	}
}
