package queueing

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestBufferFIFO(t *testing.T) {
	b := NewBuffer(10)
	for i := uint64(0); i < 5; i++ {
		if !b.Enqueue(Packet{ID: i}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := uint64(0); i < 5; i++ {
		p, ok := b.Dequeue()
		if !ok || p.ID != i {
			t.Fatalf("dequeue %d: got (%v, %v)", i, p.ID, ok)
		}
	}
	if _, ok := b.Dequeue(); ok {
		t.Fatal("dequeue from empty buffer succeeded")
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 3; i++ {
		if !b.Enqueue(Packet{ID: uint64(i)}) {
			t.Fatal("enqueue within capacity failed")
		}
	}
	if b.Enqueue(Packet{ID: 99}) {
		t.Fatal("enqueue past capacity succeeded")
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d after overflow, want 3", b.Len())
	}
	enq, drop, deq, maxLen := b.Stats()
	if enq != 3 || drop != 1 || deq != 0 || maxLen != 3 {
		t.Fatalf("stats = (%d, %d, %d, %d)", enq, drop, deq, maxLen)
	}
}

func TestBufferUnbounded(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 10000; i++ {
		if !b.Enqueue(Packet{ID: uint64(i)}) {
			t.Fatalf("unbounded buffer rejected packet %d", i)
		}
	}
	if b.Len() != 10000 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestBufferPeekAndHead(t *testing.T) {
	b := NewBuffer(10)
	if _, ok := b.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	if b.Head() != nil {
		t.Fatal("head on empty not nil")
	}
	b.Enqueue(Packet{ID: 1})
	b.Enqueue(Packet{ID: 2})
	if p, ok := b.Peek(); !ok || p.ID != 1 {
		t.Fatalf("peek = (%v, %v)", p.ID, ok)
	}
	if p, ok := b.PeekAt(1); !ok || p.ID != 2 {
		t.Fatalf("peekAt(1) = (%v, %v)", p.ID, ok)
	}
	if _, ok := b.PeekAt(2); ok {
		t.Fatal("peekAt past end succeeded")
	}
	// Head gives in-place mutation for retry bookkeeping.
	b.Head().Retries = 5
	if p, _ := b.Peek(); p.Retries != 5 {
		t.Fatal("head mutation not visible")
	}
	if b.Len() != 2 {
		t.Fatal("peek/head changed the length")
	}
}

func TestDropHead(t *testing.T) {
	b := NewBuffer(10)
	if b.DropHead() {
		t.Fatal("DropHead on empty succeeded")
	}
	b.Enqueue(Packet{ID: 1})
	b.Enqueue(Packet{ID: 2})
	if !b.DropHead() {
		t.Fatal("DropHead failed")
	}
	if p, _ := b.Peek(); p.ID != 2 {
		t.Fatal("DropHead removed the wrong packet")
	}
	_, drop, _, _ := b.Stats()
	if drop != 1 {
		t.Fatalf("drops = %d, want 1", drop)
	}
}

// Property: for any interleaving of enqueues and dequeues, the buffer
// conserves packets: enqueued = dequeued + dropped_head + len.
func TestBufferConservation(t *testing.T) {
	check := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw % 20)
		b := NewBuffer(capacity)
		var id uint64
		for _, enq := range ops {
			if enq {
				b.Enqueue(Packet{ID: id})
				id++
			} else {
				b.Dequeue()
			}
		}
		enq, drop, deq, _ := b.Stats()
		return enq == deq+uint64(b.Len()) && enq+drop == id
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO order is preserved — IDs dequeue in enqueue order.
func TestBufferOrderProperty(t *testing.T) {
	check := func(nRaw uint8) bool {
		n := int(nRaw%100) + 1
		b := NewBuffer(0)
		for i := 0; i < n; i++ {
			b.Enqueue(Packet{ID: uint64(i)})
		}
		for i := 0; i < n; i++ {
			p, ok := b.Dequeue()
			if !ok || p.ID != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonSourceInterarrivals(t *testing.T) {
	var id uint64
	s := NewPoissonSource(5, 2000, 3, rng.NewSource(1).Stream("arr", 0), &id)
	if !s.Active() {
		t.Fatal("source with positive rate not active")
	}
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		gap := s.NextInterarrival()
		if gap <= 0 {
			t.Fatalf("non-positive interarrival %v", gap)
		}
		sum += gap.Seconds()
	}
	mean := sum / n
	if mean < 0.19 || mean > 0.21 {
		t.Fatalf("mean interarrival = %v s, want ~0.2 (rate 5)", mean)
	}
}

func TestPoissonSourceGenerate(t *testing.T) {
	var id uint64
	s := NewPoissonSource(5, 2000, 3, rng.NewSource(1).Stream("arr", 0), &id)
	p1 := s.Generate(10 * sim.Second)
	p2 := s.Generate(11 * sim.Second)
	if p1.ID == p2.ID {
		t.Fatal("packet IDs not unique")
	}
	if p1.Source != 3 || p1.SizeBits != 2000 || p1.CreatedAt != 10*sim.Second {
		t.Fatalf("packet fields wrong: %+v", p1)
	}
	if id != 2 {
		t.Fatalf("shared counter = %d, want 2", id)
	}
}

func TestZeroRateSourceInactive(t *testing.T) {
	var id uint64
	s := NewPoissonSource(0, 2000, 0, rng.NewSource(1).Stream("arr", 0), &id)
	if s.Active() {
		t.Fatal("zero-rate source active")
	}
	if gap := s.NextInterarrival(); gap >= 0 {
		t.Fatalf("zero-rate interarrival = %v, want negative sentinel", gap)
	}
}

func TestAdjusterConfigValidate(t *testing.T) {
	if err := DefaultAdjusterConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AdjusterConfig{
		{Classes: 0, SampleEvery: 5, QueueThreshold: 15},
		{Classes: 4, SampleEvery: 0, QueueThreshold: 15},
		{Classes: 4, SampleEvery: 5, QueueThreshold: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAdjusterStartsAtHighest(t *testing.T) {
	a := NewThresholdAdjuster(DefaultAdjusterConfig())
	if a.Class() != 3 {
		t.Fatalf("initial class = %d, want 3 (2 Mbps)", a.Class())
	}
	if a.Active() {
		t.Fatal("fresh adjuster already active")
	}
}

// Below Q_th the mechanism must not engage regardless of arrivals.
func TestAdjusterInactiveBelowQth(t *testing.T) {
	a := NewThresholdAdjuster(DefaultAdjusterConfig())
	for q := 1; q <= 14; q++ {
		a.OnArrival(q)
	}
	if a.Active() {
		t.Fatal("adjuster engaged below Q_th")
	}
	if a.Class() != 3 {
		t.Fatalf("class moved to %d while inactive", a.Class())
	}
}

// A steadily growing queue above Q_th lowers the class one step per m-th
// arrival, down to the floor.
func TestAdjusterLowersOnGrowth(t *testing.T) {
	cfg := DefaultAdjusterConfig()
	a := NewThresholdAdjuster(cfg)
	q := cfg.QueueThreshold
	a.OnArrival(q) // engage
	// Feed strictly growing queue samples.
	for i := 0; i < 5*cfg.SampleEvery; i++ {
		q++
		a.OnArrival(q)
	}
	if a.Class() != 0 {
		t.Fatalf("class = %d after sustained growth, want 0", a.Class())
	}
	lowered, _ := a.Adjustments()
	if lowered < 3 {
		t.Fatalf("lowered %d times, want >= 3", lowered)
	}
}

// A draining queue resets the threshold to the highest class.
func TestAdjusterResetsOnDrain(t *testing.T) {
	cfg := DefaultAdjusterConfig()
	a := NewThresholdAdjuster(cfg)
	q := 30
	for i := 0; i < 3*cfg.SampleEvery; i++ {
		q++
		a.OnArrival(q)
	}
	if a.Class() == cfg.Classes-1 {
		t.Fatal("setup failed: class did not lower")
	}
	// Now the queue drains (but stays above Q_th so we see the pure
	// ΔV < 0 path).
	for i := 0; i < 2*cfg.SampleEvery; i++ {
		q--
		a.OnArrival(q)
	}
	if a.Class() != cfg.Classes-1 {
		t.Fatalf("class = %d after drain, want %d", a.Class(), cfg.Classes-1)
	}
}

// Draining below Q_th disengages the mechanism.
func TestAdjusterDisengagesBelowQth(t *testing.T) {
	cfg := DefaultAdjusterConfig()
	a := NewThresholdAdjuster(cfg)
	q := 20
	for i := 0; i < 2*cfg.SampleEvery; i++ {
		q++
		a.OnArrival(q)
	}
	if !a.Active() {
		t.Fatal("setup failed: not active")
	}
	// Drain to below Q_th with a ΔV < 0 sample landing there.
	for q > 5 {
		q--
		a.OnArrival(q)
	}
	if a.Active() {
		t.Fatal("adjuster still active after queue fell below Q_th on a draining trend")
	}
	if a.Class() != cfg.Classes-1 {
		t.Fatalf("class = %d, want max", a.Class())
	}
}

func TestAdjusterOnServicedFullDrain(t *testing.T) {
	cfg := DefaultAdjusterConfig()
	a := NewThresholdAdjuster(cfg)
	q := 20
	for i := 0; i < 3*cfg.SampleEvery; i++ {
		q++
		a.OnArrival(q)
	}
	a.OnServiced(3) // partial drain: stays engaged
	if !a.Active() {
		t.Fatal("partial drain disengaged the adjuster")
	}
	a.OnServiced(0) // full drain: recovered
	if a.Active() || a.Class() != cfg.Classes-1 {
		t.Fatalf("full drain: active=%v class=%d", a.Active(), a.Class())
	}
}

// ΔV == 0 holds the class.
func TestAdjusterHoldsOnFlat(t *testing.T) {
	cfg := DefaultAdjusterConfig()
	a := NewThresholdAdjuster(cfg)
	// Engage and lower once.
	for i := 0; i <= cfg.SampleEvery*2; i++ {
		a.OnArrival(16 + i)
	}
	// One full sample cycle of flat queue so the previous sample is also
	// flat; only then is ΔV truly zero.
	for i := 0; i < cfg.SampleEvery; i++ {
		a.OnArrival(40)
	}
	c := a.Class()
	for i := 0; i < cfg.SampleEvery*4; i++ {
		a.OnArrival(40) // flat samples
	}
	if a.Class() != c {
		t.Fatalf("class moved from %d to %d on flat queue", c, a.Class())
	}
}

// Property: the class always stays within [0, Classes-1] for arbitrary
// queue-length sequences.
func TestAdjusterClassBounded(t *testing.T) {
	cfg := DefaultAdjusterConfig()
	check := func(qs []uint8) bool {
		a := NewThresholdAdjuster(cfg)
		for i, q := range qs {
			a.OnArrival(int(q))
			if i%7 == 0 {
				a.OnServiced(int(q) / 2)
			}
			if a.Class() < 0 || a.Class() > cfg.Classes-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyNone.String() != "none" || PolicyFixedHighest.String() != "fixed-highest" || PolicyAdaptive.String() != "adaptive" {
		t.Fatal("policy names wrong")
	}
}
