package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.StdDev()-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", w.StdDev())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty accumulator not zero")
	}
}

func TestWelfordMerge(t *testing.T) {
	var a, b, all Welford
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, -3, 17}
	for i, x := range xs {
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merge mean/var = %v/%v, want %v/%v", a.Mean(), a.Variance(), all.Mean(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merge min/max wrong")
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	b.Add(3)
	a.Merge(b) // into empty
	if a.Count() != 1 || a.Mean() != 3 {
		t.Fatal("merge into empty wrong")
	}
	var empty Welford
	a.Merge(empty) // from empty
	if a.Count() != 1 {
		t.Fatal("merge from empty changed state")
	}
}

// Property: Welford agrees with the naive two-pass computation.
func TestWelfordMatchesNaive(t *testing.T) {
	check := func(xs []float64) bool {
		var vals []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				vals = append(vals, x)
			}
		}
		if len(vals) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range vals {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, x := range vals {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(vals))
		scale := math.Max(1, naiveVar)
		return math.Abs(w.Mean()-mean) < 1e-9*math.Max(1, math.Abs(mean)) &&
			math.Abs(w.Variance()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Record(0, 10)
	ts.Record(sim.Second, 8)
	ts.Record(2*sim.Second, 6)
	if ts.Len() != 3 {
		t.Fatalf("len = %d", ts.Len())
	}
	if v, ok := ts.At(1500 * sim.Millisecond); !ok || v != 8 {
		t.Fatalf("At(1.5s) = (%v, %v), want (8, true)", v, ok)
	}
	if v, ok := ts.At(2 * sim.Second); !ok || v != 6 {
		t.Fatalf("At(2s) = (%v, %v)", v, ok)
	}
	if _, ok := ts.At(-1); ok {
		t.Fatal("At before first sample returned ok")
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Record(sim.Second, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order record did not panic")
		}
	}()
	ts.Record(0, 2)
}

func TestFirstCrossingBelow(t *testing.T) {
	ts := NewTimeSeries("energy")
	for i := 0; i <= 10; i++ {
		ts.Record(sim.Time(i)*sim.Second, float64(10-i))
	}
	at, ok := ts.FirstCrossingBelow(7)
	if !ok || at != 3*sim.Second {
		t.Fatalf("crossing = (%v, %v), want (3s, true)", at, ok)
	}
	if _, ok := ts.FirstCrossingBelow(-1); ok {
		t.Fatal("crossing below -1 found")
	}
}

func TestDownsample(t *testing.T) {
	ts := NewTimeSeries("x")
	for i := 0; i < 100; i++ {
		ts.Record(sim.Time(i)*sim.Second, float64(i))
	}
	ds := ts.Downsample(10)
	if len(ds) != 10 {
		t.Fatalf("downsample returned %d points", len(ds))
	}
	if ds[0].T != 0 || ds[len(ds)-1].T != 99*sim.Second {
		t.Fatal("downsample lost the endpoints")
	}
	// Requesting more points than exist returns all.
	if got := ts.Downsample(1000); len(got) != 100 {
		t.Fatalf("oversampling returned %d points", len(got))
	}
}

func TestDelayStats(t *testing.T) {
	var d DelayStats
	d.Observe(10 * sim.Millisecond)
	d.Observe(20 * sim.Millisecond)
	d.Observe(30 * sim.Millisecond)
	if d.Count() != 3 {
		t.Fatalf("count = %d", d.Count())
	}
	if math.Abs(d.MeanMs()-20) > 1e-9 {
		t.Fatalf("mean = %v ms", d.MeanMs())
	}
	if math.Abs(d.MaxMs()-30) > 1e-9 {
		t.Fatalf("max = %v ms", d.MaxMs())
	}
}

func TestFairnessProbe(t *testing.T) {
	var f FairnessProbe
	f.Snapshot([]int{5, 5, 5, 5}) // perfectly fair: stddev 0
	if f.MeanStdDev() != 0 {
		t.Fatalf("uniform queues gave stddev %v", f.MeanStdDev())
	}
	f.Snapshot([]int{0, 10}) // stddev 5
	if math.Abs(f.MeanStdDev()-2.5) > 1e-9 {
		t.Fatalf("mean of snapshot stddevs = %v, want 2.5", f.MeanStdDev())
	}
	if f.Snapshots() != 2 {
		t.Fatalf("snapshots = %d", f.Snapshots())
	}
	f.Snapshot(nil) // empty snapshots are ignored
	if f.Snapshots() != 2 {
		t.Fatal("empty snapshot counted")
	}
}

// Property: fairness of a constant vector is 0; scaling spread increases it.
func TestFairnessMonotoneInSpread(t *testing.T) {
	var a, b FairnessProbe
	a.Snapshot([]int{10, 10, 10, 10, 10, 10})
	b.Snapshot([]int{0, 4, 8, 12, 16, 20})
	if !(a.MeanStdDev() < b.MeanStdDev()) {
		t.Fatal("spread did not increase the fairness index")
	}
}

func TestLifetime(t *testing.T) {
	l := NewLifetime(10)
	if l.Alive() != 10 {
		t.Fatalf("alive = %d", l.Alive())
	}
	if _, ok := l.FirstDeath(); ok {
		t.Fatal("first death reported with no deaths")
	}
	for i := 0; i < 8; i++ {
		l.NodeDied(sim.Time(i+1) * 100 * sim.Second)
	}
	if l.Alive() != 2 {
		t.Fatalf("alive = %d after 8 deaths", l.Alive())
	}
	if at, ok := l.FirstDeath(); !ok || at != 100*sim.Second {
		t.Fatalf("first death = (%v, %v)", at, ok)
	}
	// 80% of 10 = 8 deaths -> the 8th death time.
	at, ok := l.NetworkDeadAt(0.8)
	if !ok || at != 800*sim.Second {
		t.Fatalf("NetworkDeadAt(0.8) = (%v, %v), want 800s", at, ok)
	}
	if _, ok := l.NetworkDeadAt(0.9); ok {
		t.Fatal("network reported dead at 90% with only 8/10 deaths")
	}
}

func TestLifetimeTinyFraction(t *testing.T) {
	l := NewLifetime(100)
	l.NodeDied(5 * sim.Second)
	// Any positive fraction needs at least one death.
	if at, ok := l.NetworkDeadAt(0.001); !ok || at != 5*sim.Second {
		t.Fatalf("NetworkDeadAt(0.001) = (%v, %v)", at, ok)
	}
}

func TestThroughput(t *testing.T) {
	var tr Throughput
	for i := 0; i < 10; i++ {
		tr.PacketGenerated()
	}
	for i := 0; i < 7; i++ {
		tr.PacketDelivered(2000)
	}
	tr.PacketDroppedBuffer()
	tr.PacketDroppedRetry()
	if tr.Generated() != 10 || tr.Delivered() != 7 {
		t.Fatalf("gen/del = %d/%d", tr.Generated(), tr.Delivered())
	}
	if math.Abs(tr.DeliveryRate()-0.7) > 1e-12 {
		t.Fatalf("delivery rate = %v", tr.DeliveryRate())
	}
	// 7 * 2000 bits over 2 s = 7 kbps.
	if got := tr.AggregateKbps(2 * sim.Second); math.Abs(got-7) > 1e-9 {
		t.Fatalf("throughput = %v kbps, want 7", got)
	}
	if tr.DroppedBuffer() != 1 || tr.DroppedRetry() != 1 {
		t.Fatal("drop counters wrong")
	}
}

func TestThroughputZeroWindow(t *testing.T) {
	var tr Throughput
	tr.PacketDelivered(1000)
	if tr.AggregateKbps(0) != 0 {
		t.Fatal("zero window should give zero throughput")
	}
	var empty Throughput
	if empty.DeliveryRate() != 0 {
		t.Fatal("empty delivery rate not 0")
	}
}
