package runner_test

import (
	"fmt"

	"repro/internal/runner"
)

// Do fans fn(0..n-1) across workers; per-index results land in
// per-index slots, so the output never depends on scheduling.
func ExampleDo() {
	squares := make([]int, 6)
	failed, _ := runner.Do(3, len(squares), func(i int) {
		squares[i] = i * i
	})
	fmt.Println(squares, failed)
	// Output:
	// [0 1 4 9 16 25] -1
}

// DoWorkers exposes the executing worker's dense index, for
// worker-local scratch state (resident pools, arenas).
func ExampleDoWorkers() {
	const workers = 2
	perWorker := make([]int, workers) // worker-local tallies: no locking needed
	runner.DoWorkers(workers, 8, func(w, i int) {
		perWorker[w]++
	})
	total := 0
	for _, n := range perWorker {
		total += n
	}
	fmt.Println("tasks executed:", total)
	// Output:
	// tasks executed: 8
}

// EffectiveWorkers resolves the worker policy: never more workers than
// tasks, never fewer than one.
func ExampleEffectiveWorkers() {
	fmt.Println(runner.EffectiveWorkers(8, 3))  // capped by task count
	fmt.Println(runner.EffectiveWorkers(-1, 3)) // negative = serial
	// Output:
	// 3
	// 1
}
