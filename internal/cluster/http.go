package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Wire bodies of the lease protocol. Leases and results reuse the Lease
// and CellResult JSON forms directly.
type claimRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

type settleRequest struct {
	Results []CellResult `json:"results"`
}

// RegisterHTTP mounts the lease protocol and cluster observability on
// mux:
//
//	POST /v1/leases/claim         {"worker","max"} → 200 Lease | 204 no work
//	POST /v1/leases/{id}/renew    → 204 | 410 lease gone
//	POST /v1/leases/{id}/complete {"results":[...]} → 204 | 410
//	POST /v1/leases/{id}/release  {"results":[...]} → 204 | 410
//	GET  /v1/cluster/status       → Status
//
// The legacy unversioned paths stay mounted for one release: the POST
// routes as aliases (a 301 would make net/http clients replay the
// request as a bodyless GET), the status GET as a 301 to its /v1
// twin. Errors use the uniform api envelope; 410 Gone maps to
// ErrLeaseGone on the Remote side, where the worker drops the batch
// and claims fresh work.
func (c *Coordinator) RegisterHTTP(mux *http.ServeMux) {
	c.registerHTTP(mux, nil)
}

// RegisterHTTPObserved mounts the same routes as RegisterHTTP with
// per-route request-count and latency instrumentation on reg, labeled
// by the mux pattern.
func (c *Coordinator) RegisterHTTPObserved(mux *http.ServeMux, reg *obs.Registry) {
	c.registerHTTP(mux, reg)
}

func (c *Coordinator) registerHTTP(mux *http.ServeMux, reg *obs.Registry) {
	handle := func(pattern string, h http.HandlerFunc) {
		if reg != nil {
			mux.Handle(pattern, obs.WrapHandler(reg, pattern, h))
			return
		}
		mux.HandleFunc(pattern, h)
	}
	// post mounts a POST route at its canonical /v1 path and, for one
	// release, at the legacy unversioned path.
	post := func(path string, h http.HandlerFunc) {
		handle("POST /v1"+path, h)
		handle("POST "+path, h)
	}
	post("/leases/claim", func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest,
				fmt.Sprintf("bad claim body: %v", err), nil)
			return
		}
		if req.Worker == "" {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest,
				"claim needs a worker name", nil)
			return
		}
		lease, err := c.Claim(req.Worker, req.Max)
		if err != nil {
			api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, err.Error(), nil)
			return
		}
		if lease == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(lease)
	})
	post("/leases/{id}/renew", func(w http.ResponseWriter, r *http.Request) {
		settleHTTP(w, c.Renew(r.PathValue("id")))
	})
	post("/leases/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		var req settleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest,
				fmt.Sprintf("bad complete body: %v", err), nil)
			return
		}
		settleHTTP(w, c.Complete(r.PathValue("id"), req.Results))
	})
	post("/leases/{id}/release", func(w http.ResponseWriter, r *http.Request) {
		var req settleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest,
				fmt.Sprintf("bad release body: %v", err), nil)
			return
		}
		settleHTTP(w, c.Release(r.PathValue("id"), req.Results))
	})
	handle("GET /v1/cluster/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Status())
	})
	handle("GET /cluster/status", api.RedirectV1)
}

func settleHTTP(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrLeaseGone):
		api.WriteError(w, http.StatusGone, api.CodeGone, err.Error(), nil)
	case err != nil:
		api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, err.Error(), nil)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

// Remote is the worker-side Queue over HTTP: the client half of
// RegisterHTTP, used by cmd/caem-serve -join. It targets the /v1
// paths; joining a pre-/v1 coordinator is not supported (the reverse
// — a pre-/v1 worker joining this coordinator — works through the
// legacy aliases).
type Remote struct {
	// Base is the coordinator's base URL (no trailing slash needed).
	Base string
	// Client overrides http.DefaultClient when non-nil.
	Client *http.Client
}

func (r *Remote) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

// post sends a JSON body and decodes a 2xx response into out (when
// non-nil). 410 maps to ErrLeaseGone; 204 leaves out untouched.
func (r *Remote) post(path string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	resp, err := r.client().Post(r.Base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusGone:
		return ErrLeaseGone
	case resp.StatusCode == http.StatusNoContent:
		return nil
	case resp.StatusCode >= 300:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Claim implements Queue.
func (r *Remote) Claim(worker string, max int) (*Lease, error) {
	blob, err := json.Marshal(claimRequest{Worker: worker, Max: max})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	resp, err := r.client().Post(r.Base+"/v1/leases/claim", "application/json", bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil, nil
	case resp.StatusCode >= 300:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: claim: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var lease Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		return nil, fmt.Errorf("cluster: decoding lease: %w", err)
	}
	return &lease, nil
}

// Renew implements Queue.
func (r *Remote) Renew(leaseID string) error {
	return r.post("/v1/leases/"+leaseID+"/renew", struct{}{}, nil)
}

// Complete implements Queue.
func (r *Remote) Complete(leaseID string, results []CellResult) error {
	return r.post("/v1/leases/"+leaseID+"/complete", settleRequest{Results: results}, nil)
}

// Release implements Queue.
func (r *Remote) Release(leaseID string, results []CellResult) error {
	return r.post("/v1/leases/"+leaseID+"/release", settleRequest{Results: results}, nil)
}

// WaitIdle polls the coordinator until it reports no queued, delayed,
// or leased work, or the timeout elapses — a convenience for tests and
// scripted drains.
func (r *Remote) WaitIdle(timeout, poll time.Duration) (Status, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := r.client().Get(r.Base + "/v1/cluster/status")
		if err == nil {
			var st Status
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr == nil && st.Queue == 0 && st.Delayed == 0 && len(st.Leases) == 0 {
				return st, nil
			}
		}
		if time.Now().After(deadline) {
			return Status{}, fmt.Errorf("cluster: coordinator not idle after %v", timeout)
		}
		time.Sleep(poll)
	}
}
