package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// LockInfo is the decoded leader lock: who leads, at which monotonic
// epoch, where workers reach them, and until when the claim holds
// without a renewal.
type LockInfo struct {
	Epoch    int64  `json:"epoch"`
	Holder   string `json:"holder"`
	URL      string `json:"url"`
	Deadline int64  `json:"deadlineUnixMs"`
}

// Expired reports whether the lock's deadline has passed at now.
func (l LockInfo) Expired(now time.Time) bool {
	return now.UnixMilli() > l.Deadline
}

// ErrLockHeld reports a TryAcquire against a live lock owned by
// someone else.
var ErrLockHeld = errors.New("cluster: leader lock held by another process")

// ErrLockLost reports a Renew after the lock moved to a new holder or
// epoch — the caller has been deposed and must fence itself: its epoch
// is dead, and any write it still performs would race the successor.
var ErrLockLost = errors.New("cluster: leader lock lost (deposed)")

// LeaderLock is a store-backed leadership lease with a TTL and a
// monotonic epoch. One process holds it at a time; a standby acquires
// it when the holder's deadline lapses without a renewal, bumping the
// epoch. Every lease the coordinator grants carries the epoch, so a
// deposed leader's writes are detectable (and fenced) forever.
//
// Atomicity: every read-validate-write cycle serializes through an
// exclusive claim on the <path>.claim sidecar — on unix a kernel
// flock, which the OS releases the instant a claimer dies, however
// abruptly, so a crashed claimer can never block its successors and
// there is no stale-claim sweep for two takeovers to race through
// (see acquireClaim for the per-platform mechanism). The lock document
// itself is replaced via write-to-temp + rename, so readers never
// observe a torn lock.
type LeaderLock struct {
	// Path is the lock file location, conventionally
	// <store>/cluster/leader.lock, shared by primary and standby.
	Path string
	// TTL is how long an acquisition or renewal holds without another
	// renewal. Default 3s.
	TTL time.Duration
	// Holder identifies this process in the lock (host-pid style).
	Holder string
	// URL is the base URL workers should target while this process
	// leads; published in the lock for /v1/cluster/leader.
	URL string

	now func() time.Time // injectable clock (tests)
}

func (l *LeaderLock) clock() time.Time {
	if l.now != nil {
		return l.now()
	}
	return time.Now()
}

func (l *LeaderLock) ttl() time.Duration {
	if l.TTL > 0 {
		return l.TTL
	}
	return 3 * time.Second
}

// ReadLockFile decodes the lock at path. A missing file returns
// os.ErrNotExist; a torn or undecodable file is an error.
func ReadLockFile(path string) (LockInfo, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return LockInfo{}, err
	}
	var info LockInfo
	if err := json.Unmarshal(blob, &info); err != nil {
		return LockInfo{}, fmt.Errorf("cluster: corrupt leader lock: %w", err)
	}
	return info, nil
}

// withClaim runs fn while holding the claim sidecar — the mutual
// exclusion for every read-validate-write of the lock document. A
// claimer that cannot take the claim promptly (the critical section is
// a handful of file operations, held for microseconds) reports
// ErrLockHeld and the caller polls again on its own schedule.
func (l *LeaderLock) withClaim(fn func() error) error {
	if err := os.MkdirAll(filepath.Dir(l.Path), 0o755); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	release, err := l.acquireClaim()
	if err != nil {
		return err
	}
	defer release()
	return fn()
}

// writeLocked atomically replaces the lock document. Caller holds the
// claim sidecar. The temp name is per-process so that even a claim
// breach on a platform without kernel locks cannot interleave two
// writers' bytes — rename keeps the document whole either way.
func (l *LeaderLock) writeLocked(info LockInfo) error {
	blob, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	tmp := fmt.Sprintf("%s.tmp.%d", l.Path, os.Getpid())
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if err := os.Rename(tmp, l.Path); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	return nil
}

// TryAcquire takes leadership if the lock is free, expired, or already
// ours, bumping the epoch past every predecessor. It returns the new
// epoch, or ErrLockHeld while another holder's claim is live.
func (l *LeaderLock) TryAcquire() (int64, error) {
	var epoch int64
	err := l.withClaim(func() error {
		now := l.clock()
		cur, err := ReadLockFile(l.Path)
		switch {
		case err == nil:
			if cur.Holder != l.Holder && !cur.Expired(now) {
				return ErrLockHeld
			}
			epoch = cur.Epoch + 1
		case os.IsNotExist(err):
			epoch = 1
		default:
			return err
		}
		return l.writeLocked(LockInfo{
			Epoch:    epoch,
			Holder:   l.Holder,
			URL:      l.URL,
			Deadline: now.Add(l.ttl()).UnixMilli(),
		})
	})
	if err != nil {
		return 0, err
	}
	return epoch, nil
}

// Renew extends the deadline of an acquisition at the given epoch. It
// returns ErrLockLost when the lock has moved to another holder or
// epoch — the caller is deposed and must fence itself immediately.
func (l *LeaderLock) Renew(epoch int64) error {
	return l.withClaim(func() error {
		cur, err := ReadLockFile(l.Path)
		if err != nil {
			if os.IsNotExist(err) {
				return ErrLockLost
			}
			return err
		}
		if cur.Holder != l.Holder || cur.Epoch != epoch {
			return ErrLockLost
		}
		cur.Deadline = l.clock().Add(l.ttl()).UnixMilli()
		cur.URL = l.URL
		return l.writeLocked(cur)
	})
}

// Verify confirms this process still holds the lock at epoch with an
// unexpired deadline — the synchronous, resource-level fence check run
// before durable writes to shared state. The renew loop notices
// deposition only at its next tick; a leader that stalled past its TTL
// and then resumed could otherwise keep writing to the shared store in
// the same window as the successor that took over. Verify reads the
// lock document directly (it is replaced atomically, so no claim is
// needed to read it); if our own deadline lapsed without a successor
// appearing, it renews inline so the write proceeds under a live
// lease. ErrLockLost means the caller has been deposed and must fence
// itself before touching shared state.
func (l *LeaderLock) Verify(epoch int64) error {
	cur, err := ReadLockFile(l.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return ErrLockLost
		}
		return err
	}
	if cur.Holder != l.Holder || cur.Epoch != epoch {
		return ErrLockLost
	}
	if cur.Expired(l.clock()) {
		return l.Renew(epoch)
	}
	return nil
}

// Release expires the lock immediately if still held at the given
// epoch, letting a standby take over without waiting out the TTL.
func (l *LeaderLock) Release(epoch int64) error {
	return l.withClaim(func() error {
		cur, err := ReadLockFile(l.Path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if cur.Holder != l.Holder || cur.Epoch != epoch {
			return nil // already someone else's; nothing to release
		}
		cur.Deadline = 0
		return l.writeLocked(cur)
	})
}
