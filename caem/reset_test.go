package caem

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/runner"
)

// TestPooledScenarioEquivalence is the public-surface half of the
// run-reuse differential test: running library scenarios through one
// resident context pool (the RunCampaign path) must produce Results and
// trace CSVs bit-identical to fresh one-shot runs, across protocols and
// scenarios sharing the pool in sequence.
func TestPooledScenarioEquivalence(t *testing.T) {
	names := []string{"node-churn", "diurnal-load"}
	pool := runner.NewPool()
	for _, name := range names {
		sc, err := FindScenario(name)
		if err != nil {
			t.Fatalf("library scenario %s: %v", name, err)
		}
		cfg, err := ScenarioConfig(sc)
		if err != nil {
			t.Fatalf("scenario config %s: %v", name, err)
		}
		// Keep the scenario's own topology (its timeline addresses
		// specific node indices); just shorten the run.
		cfg.DurationSeconds = 60
		for _, p := range Protocols() {
			cfg.Protocol = p

			freshCfg := cfg
			var freshTrace bytes.Buffer
			freshCfg.TraceCSV = &freshTrace
			fresh, err := RunScenario(sc, freshCfg)
			if err != nil {
				t.Fatalf("%s/%s fresh: %v", name, p, err)
			}

			pooledCfg := cfg
			var pooledTrace bytes.Buffer
			pooledCfg.TraceCSV = &pooledTrace
			pooled, err := runScenarioPooled(pool, sc, pooledCfg)
			if err != nil {
				t.Fatalf("%s/%s pooled: %v", name, p, err)
			}

			if !reflect.DeepEqual(fresh, pooled) {
				t.Fatalf("%s/%s: fresh and pooled results differ", name, p)
			}
			if !bytes.Equal(freshTrace.Bytes(), pooledTrace.Bytes()) {
				t.Fatalf("%s/%s: fresh and pooled trace CSVs differ (%d vs %d bytes)",
					name, p, freshTrace.Len(), pooledTrace.Len())
			}
		}
	}
}
