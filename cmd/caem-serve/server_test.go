package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/caem"
)

// testRequest is a small real campaign: one library scenario, two
// protocols, two seeds, at a short horizon.
const testRequest = `{
  "scenarios": ["node-churn"],
  "protocols": ["leach", "scheme1"],
  "seeds": [1, 2],
  "config": {"durationSeconds": 12}
}`

func startServer(t *testing.T, dir string) (*server, *httptest.Server, *caem.CampaignStore) {
	t.Helper()
	st, err := caem.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(st, 2)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	return srv, ts, st
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

// waitDone polls campaign status until it settles.
func waitDone(t *testing.T, base, id string) campaignStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st campaignStatus
		getJSON(t, base+"/campaigns/"+id, &st)
		if st.State != "running" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("campaign did not settle in time")
	return campaignStatus{}
}

type resultsDoc struct {
	ID         string            `json:"id"`
	State      string            `json:"state"`
	Total      int               `json:"total"`
	Completed  int               `json:"completed"`
	Cells      []resultCell      `json:"cells"`
	Aggregates []resultAggregate `json:"aggregates"`
}

// TestServeEndToEnd drives the acceptance path: POST a library-scenario
// campaign, watch it complete over HTTP, read results from the store,
// then restart the service on the same store and verify the campaign
// and its results are fully recovered without re-running anything.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, ts, st := startServer(t, dir)

	// Health before any work.
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if health["ok"] != true {
		t.Fatalf("healthz = %v", health)
	}

	// Submit.
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(testRequest))
	if err != nil {
		t.Fatal(err)
	}
	var created campaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /campaigns = %d (%+v)", resp.StatusCode, created)
	}
	if created.Total != 4 {
		t.Fatalf("campaign has %d cells, want 4", created.Total)
	}

	// Idempotent re-POST returns the same campaign.
	resp2, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(testRequest))
	if err != nil {
		t.Fatal(err)
	}
	var again campaignStatus
	json.NewDecoder(resp2.Body).Decode(&again)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || again.ID != created.ID {
		t.Fatalf("re-POST = %d id=%s, want 200 id=%s", resp2.StatusCode, again.ID, created.ID)
	}

	// Progress stream must carry events through to a terminal state.
	preq, err := http.Get(ts.URL + "/campaigns/" + created.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	sawFinal := false
	scanner := bufio.NewScanner(preq.Body)
	for scanner.Scan() {
		var ev progressEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad progress line %q: %v", scanner.Text(), err)
		}
		if ev.State == "done" {
			sawFinal = true
		}
	}
	preq.Body.Close()
	if !sawFinal {
		t.Fatal("progress stream ended without a final done event")
	}

	status := waitDone(t, ts.URL, created.ID)
	if status.State != "done" || status.Completed != 4 || status.Failed != 0 {
		t.Fatalf("campaign settled as %+v", status)
	}

	// Results straight from the store.
	var results resultsDoc
	getJSON(t, ts.URL+"/campaigns/"+created.ID+"/results", &results)
	if results.Completed != 4 || len(results.Cells) != 4 {
		t.Fatalf("results = %+v", results)
	}
	if len(results.Aggregates) != 2 { // one group per protocol
		t.Fatalf("aggregates = %d groups, want 2", len(results.Aggregates))
	}
	for _, a := range results.Aggregates {
		if a.Seeds != 2 {
			t.Fatalf("aggregate %s/%s has %d seeds, want 2", a.Scenario, a.Protocol, a.Seeds)
		}
	}

	// Restart: stop the service, reopen the same store, and verify full
	// recovery with zero re-execution.
	ts.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2, st2 := startServer(t, dir)
	defer func() { ts2.Close(); srv2.Close(); st2.Close() }()

	if st2.Len() != 4 {
		t.Fatalf("store holds %d cells after restart, want 4", st2.Len())
	}
	recovered := waitDone(t, ts2.URL, created.ID)
	if recovered.State != "done" || recovered.Completed != 4 {
		t.Fatalf("recovered campaign = %+v", recovered)
	}
	restored := 0
	for _, c := range recovered.Cells {
		if c.Status == "restored" {
			restored++
		}
	}
	if restored != 4 {
		t.Fatalf("recovered campaign restored %d cells, want 4 (no re-runs)", restored)
	}

	var results2 resultsDoc
	getJSON(t, ts2.URL+"/campaigns/"+created.ID+"/results", &results2)
	b1, _ := json.Marshal(results)
	b2, _ := json.Marshal(results2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("results diverged across restart:\n pre %s\npost %s", b1, b2)
	}
}

// TestServeInlineSpecAndErrors covers inline specs, validation
// failures, and 404s.
func TestServeInlineSpecAndErrors(t *testing.T) {
	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()

	// Inline spec with an all-nodes burst event.
	inline := `{
	  "specs": [{
	    "name": "inline-burst",
	    "timeline": [{"at": 3, "type": "burst", "scale": 3, "durationSeconds": 4}]
	  }],
	  "protocols": ["scheme2"],
	  "seeds": [7],
	  "config": {"durationSeconds": 10, "nodes": 20}
	}`
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(inline))
	if err != nil {
		t.Fatal(err)
	}
	var created campaignStatus
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || created.Total != 1 {
		t.Fatalf("inline POST = %d %+v", resp.StatusCode, created)
	}
	status := waitDone(t, ts.URL, created.ID)
	if status.State != "done" {
		t.Fatalf("inline campaign = %+v", status)
	}

	for name, body := range map[string]string{
		"no scenarios":     `{"protocols":["leach"]}`,
		"unknown scenario": `{"scenarios":["no-such-scenario"]}`,
		"unknown protocol": `{"scenarios":["node-churn"],"protocols":["tdma"]}`,
		"unknown field":    `{"scenarios":["node-churn"],"turbo":true}`,
		"bad config":       `{"scenarios":["node-churn"],"config":{"nodes":-5}}`,
		"unknown family":   `{"generate":["no-such-family:2"]}`,
		"bad gen count":    `{"generate":["mixed:0"]}`,
		"bad gen spec":     `{"generate":["mixed"]}`,
	} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: POST = %d, want 400", name, resp.StatusCode)
		}
	}

	resp, err = http.Get(ts.URL + "/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown campaign = %d, want 404", resp.StatusCode)
	}

	var list struct {
		Campaigns []campaignStatus `json:"campaigns"`
	}
	getJSON(t, ts.URL+"/campaigns", &list)
	if len(list.Campaigns) != 1 {
		t.Fatalf("list has %d campaigns, want 1", len(list.Campaigns))
	}
}

// TestServeGeneratedCampaignRecovers: a campaign submitted with the
// "generate" spelling persists only the spelling, not the expanded
// specs. Because generation is deterministic, a restarted service
// regenerates byte-identical scenarios, rehashes to the same cells, and
// restores every result from the store without re-running anything.
func TestServeGeneratedCampaignRecovers(t *testing.T) {
	dir := t.TempDir()
	srv, ts, st := startServer(t, dir)

	req := `{
	  "generate": ["mixed:2:42"],
	  "protocols": ["scheme1"],
	  "seeds": [3],
	  "config": {"durationSeconds": 10}
	}`
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var created campaignStatus
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || created.Total != 2 {
		t.Fatalf("generated POST = %d %+v", resp.StatusCode, created)
	}
	for _, c := range created.Cells {
		if !strings.HasPrefix(c.Scenario, "gen/mixed/42/") {
			t.Fatalf("generated cell has scenario %q", c.Scenario)
		}
	}
	status := waitDone(t, ts.URL, created.ID)
	if status.State != "done" || status.Completed != 2 {
		t.Fatalf("generated campaign settled as %+v", status)
	}
	var results resultsDoc
	getJSON(t, ts.URL+"/campaigns/"+created.ID+"/results", &results)

	ts.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2, st2 := startServer(t, dir)
	defer func() { ts2.Close(); srv2.Close(); st2.Close() }()
	recovered := waitDone(t, ts2.URL, created.ID)
	if recovered.State != "done" || recovered.Completed != 2 {
		t.Fatalf("recovered generated campaign = %+v", recovered)
	}
	for _, c := range recovered.Cells {
		if c.Status != "restored" {
			t.Fatalf("cell %s/%s/%d = %s after restart, want restored (rehash mismatch?)",
				c.Scenario, c.Protocol, c.Seed, c.Status)
		}
	}
	var results2 resultsDoc
	getJSON(t, ts2.URL+"/campaigns/"+created.ID+"/results", &results2)
	b1, _ := json.Marshal(results)
	b2, _ := json.Marshal(results2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("generated results diverged across restart:\n pre %s\npost %s", b1, b2)
	}
}

// TestServeRejectedRequestLeavesNoTrace: an invalid-but-parseable POST
// must not persist a campaign spec — a poisoned spec would wedge every
// future restart's recovery — and a service restart on the same store
// must come up clean.
func TestServeRejectedRequestLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	srv, ts, st := startServer(t, dir)

	resp, err := http.Post(ts.URL+"/campaigns", "application/json",
		strings.NewReader(`{"scenarios":["no-such-scenario"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST = %d, want 400", resp.StatusCode)
	}
	ids, err := st.CampaignIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("rejected request persisted campaign specs: %v", ids)
	}

	ts.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, ts2, st2 := startServer(t, dir) // must not wedge on recovery
	defer func() { ts2.Close(); srv2.Close(); st2.Close() }()
	var health map[string]any
	if code := getJSON(t, ts2.URL+"/healthz", &health); code != http.StatusOK || health["ok"] != true {
		t.Fatalf("restart after rejected POST unhealthy: %d %v", code, health)
	}
}

// TestServeConcurrentEqualPosts: racing identical submissions must
// resolve to ONE campaign — exactly one 202, the rest 200 with the same
// id — and the grid must not run twice.
func TestServeConcurrentEqualPosts(t *testing.T) {
	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()

	const n = 8
	type outcome struct {
		code int
		id   string
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(testRequest))
			if err != nil {
				results <- outcome{}
				return
			}
			var st campaignStatus
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			results <- outcome{resp.StatusCode, st.ID}
		}()
	}
	accepted, ids := 0, map[string]bool{}
	for i := 0; i < n; i++ {
		o := <-results
		if o.code == http.StatusAccepted {
			accepted++
		} else if o.code != http.StatusOK {
			t.Fatalf("concurrent POST = %d", o.code)
		}
		ids[o.id] = true
	}
	if accepted != 1 || len(ids) != 1 {
		t.Fatalf("concurrent equal POSTs: %d accepted, ids %v — want exactly 1 campaign", accepted, ids)
	}
	var id string
	for k := range ids {
		id = k
	}
	if done := waitDone(t, ts.URL, id); done.Total != 4 || done.Completed != 4 {
		t.Fatalf("campaign = %+v", done)
	}
	if st.Len() != 4 {
		t.Fatalf("store holds %d cells, want 4 (grid must not run twice)", st.Len())
	}
}

// TestServeResultsMatchLibraryRun: the service must produce the same
// numbers as the in-process campaign API for the same grid — the HTTP
// layer adds scheduling, not physics.
func TestServeResultsMatchLibraryRun(t *testing.T) {
	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()

	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(testRequest))
	if err != nil {
		t.Fatal(err)
	}
	var created campaignStatus
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	waitDone(t, ts.URL, created.ID)

	var results resultsDoc
	getJSON(t, ts.URL+"/campaigns/"+created.ID+"/results", &results)

	sc, err := caem.FindScenario("node-churn")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := caem.ScenarioConfig(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DurationSeconds = 12
	cfg.Workers = 1
	cells, err := caem.RunCampaign(cfg, []caem.Scenario{sc},
		[]caem.Protocol{caem.PureLEACH, caem.Scheme1}, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]float64, len(cells))
	for _, c := range cells {
		want[fmt.Sprintf("%s/%d", c.Protocol, c.Seed)] = c.Result.TotalConsumedJ
	}
	for _, c := range results.Cells {
		key := fmt.Sprintf("%s/%d", c.Protocol, c.Seed)
		if c.TotalConsumedJ != want[key] {
			t.Fatalf("cell %s consumed %v over HTTP, %v in-process", key, c.TotalConsumedJ, want[key])
		}
	}
}
