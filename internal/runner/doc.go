// Package runner fans independent simulation runs out across worker
// goroutines. Every experiment in the paper's evaluation is a grid of
// fully independent runs (protocol × load × seed), and each run roots all
// of its randomness in its own rng.Source derived from Config.Seed — so a
// parallel execution is bit-identical to a serial one, and results are
// always returned in submission order regardless of which worker finished
// first.
//
// The pool is deliberately simple: a shared index channel, one goroutine
// per worker, and a result slot per job. There is no cross-run state to
// synchronize; the only serialized section is the optional Progress
// callback.
//
// # Primitives
//
// Run executes a batch of core.Config jobs. Beneath it sit three
// composable scheduling primitives, also used directly by the public
// caem wrappers:
//
//   - Do(workers, n, fn) — invoke fn(0..n-1) under the worker policy
//     (0 = NumCPU, 1 or negative = serial inline).
//   - DoWorkers — Do with the executing worker's dense index, for
//     worker-local scratch state.
//   - DoPooled — DoWorkers with a worker-owned Pool of resident
//     simulation contexts, so consecutive jobs on one worker reset a
//     kept world in place instead of rebuilding it (the run-reuse
//     engine; see Pool).
//
// Panic policy is uniform: the panic of the lowest-indexed failing task
// wins — deterministically — and is surfaced after every other task has
// drained.
package runner
