// Package runner fans independent simulation runs out across worker
// goroutines. Every experiment in the paper's evaluation is a grid of
// fully independent runs (protocol × load × seed), and each run roots all
// of its randomness in its own rng.Source derived from Config.Seed — so a
// parallel execution is bit-identical to a serial one, and results are
// always returned in submission order regardless of which worker finished
// first.
//
// The pool is deliberately simple: a shared index channel, one goroutine
// per worker, and a result slot per job. There is no cross-run state to
// synchronize; the only serialized section is the optional Progress
// callback.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Job is one simulation to execute.
type Job struct {
	// Label identifies the run in progress reporting ("figure9/Scheme1").
	Label string
	// Config fully specifies the run.
	Config core.Config
}

// Options tunes the pool.
type Options struct {
	// Workers is the number of concurrent runs: 0 means NumCPU, 1 runs
	// serially inline on the calling goroutine (the legacy behaviour),
	// larger values cap at the job count.
	Workers int
	// Progress, when non-nil, is called once per completed run. Calls are
	// serialized, but arrive in completion order, not submission order.
	Progress func(job Job, res core.Result)
}

// workers resolves the effective worker count for a batch of n jobs.
// Zero means NumCPU; a negative value falls back to serial (the
// conservative reading of an underflowed caller computation).
func (o Options) workers(n int) int {
	w := o.Workers
	if w == 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every job and returns the results in submission order.
// With the same seeds, the output is bit-identical for every worker
// count: each run is single-threaded over its own state, and the workers
// share nothing but the job list.
//
// A panic inside any run (e.g. an invalid Config) is re-raised on the
// calling goroutine — deterministically the panic of the lowest-indexed
// failing job — after the remaining jobs have drained.
func Run(opts Options, jobs []Job) []core.Result {
	results := make([]core.Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	var mu sync.Mutex // serializes Progress
	failed, failVal := Do(opts.Workers, len(jobs), func(i int) {
		res := core.New(jobs[i].Config).Run()
		results[i] = res
		if opts.Progress != nil {
			mu.Lock()
			opts.Progress(jobs[i], res)
			mu.Unlock()
		}
	})
	if failed >= 0 {
		panic(fmt.Sprintf("runner: job %d (%s) panicked: %v", failed, jobs[failed].Label, failVal))
	}
	return results
}

// Do is the pool primitive Run is built on, and the generic escape hatch
// for callers whose work is not a core.Config (the public caem
// wrappers): it invokes fn(0..n-1) across the worker policy (0 = NumCPU,
// 1 or negative = serial inline). fn must be safe to call concurrently
// when more than one worker resolves.
//
// A panic inside fn is captured — the lowest failing index wins, for
// determinism — and returned as (index, value) after every other task
// has drained; (-1, nil) means all tasks completed. Callers that cannot
// continue should re-raise it with context, as Run does.
func Do(workers, n int, fn func(int)) (failedIndex int, panicValue any) {
	opts := Options{Workers: workers}
	var (
		mu       sync.Mutex
		panicked = -1
		panicVal any
	)
	task := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if panicked < 0 || i < panicked {
					panicked, panicVal = i, r
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	if n <= 0 {
		return -1, nil
	}
	if w := opts.workers(n); w == 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for ; w > 0; w-- {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					task(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	return panicked, panicVal
}
