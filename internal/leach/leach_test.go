package leach

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func allAlive(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{HeadFraction: 0.05, Nodes: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{HeadFraction: 0, Nodes: 100},
		{HeadFraction: 1.5, Nodes: 100},
		{HeadFraction: 0.05, Nodes: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEpochRounds(t *testing.T) {
	if got := (Config{HeadFraction: 0.05, Nodes: 100}).EpochRounds(); got != 20 {
		t.Fatalf("EpochRounds = %d, want 20", got)
	}
	if got := (Config{HeadFraction: 0.34, Nodes: 10}).EpochRounds(); got != 3 {
		t.Fatalf("EpochRounds = %d, want 3", got)
	}
}

// The paper's T(n): P/(1 - P*(r mod 1/P)). At the epoch's last round the
// threshold reaches 1, forcing every remaining eligible node to elect.
func TestThresholdFormula(t *testing.T) {
	e := NewElection(Config{HeadFraction: 0.05, Nodes: 100}, rng.NewSource(1).Stream("el", 0))
	if got := e.Threshold(0); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("T at round 0 = %v, want 0.05", got)
	}
	if got := e.Threshold(10); math.Abs(got-0.05/(1-0.05*10)) > 1e-12 {
		t.Fatalf("T at round 10 = %v", got)
	}
	if got := e.Threshold(19); math.Abs(got-1) > 1e-9 {
		t.Fatalf("T at round 19 = %v, want 1", got)
	}
	// Threshold grows monotonically within an epoch.
	prev := 0.0
	for r := 0; r < 20; r++ {
		th := e.Threshold(r)
		if th <= prev {
			t.Fatalf("threshold not increasing at round %d", r)
		}
		prev = th
	}
}

// Long-run CH fraction must be ~P.
func TestElectionFraction(t *testing.T) {
	cfg := Config{HeadFraction: 0.05, Nodes: 100}
	e := NewElection(cfg, rng.NewSource(2).Stream("el", 0))
	alive := allAlive(100)
	total := 0
	const rounds = 2000
	for r := 0; r < rounds; r++ {
		total += len(e.Elect(alive))
	}
	frac := float64(total) / float64(rounds*100)
	if math.Abs(frac-0.05) > 0.01 {
		t.Fatalf("long-run CH fraction = %v, want ~0.05", frac)
	}
}

// Every node serves exactly once per rotation epoch — LEACH's fairness
// guarantee, which the paper leans on for the "abrupt drop" in Fig. 9.
func TestEveryNodeServesOncePerEpoch(t *testing.T) {
	cfg := Config{HeadFraction: 0.05, Nodes: 100}
	e := NewElection(cfg, rng.NewSource(3).Stream("el", 0))
	alive := allAlive(100)
	served := make([]int, 100)
	for r := 0; r < cfg.EpochRounds(); r++ {
		for _, h := range e.Elect(alive) {
			served[h]++
		}
	}
	for i, s := range served {
		if s != 1 {
			t.Fatalf("node %d served %d times in one epoch, want exactly 1", i, s)
		}
	}
}

func TestAtLeastOneHeadWhileAlive(t *testing.T) {
	cfg := Config{HeadFraction: 0.05, Nodes: 10}
	e := NewElection(cfg, rng.NewSource(4).Stream("el", 0))
	alive := allAlive(10)
	for r := 0; r < 500; r++ {
		heads := e.Elect(alive)
		if len(heads) == 0 {
			t.Fatalf("round %d elected no cluster head", r)
		}
		for _, h := range heads {
			if !alive[h] {
				t.Fatalf("round %d elected dead node %d", r, h)
			}
		}
	}
}

func TestDeadNodesNeverElected(t *testing.T) {
	cfg := Config{HeadFraction: 0.2, Nodes: 20}
	e := NewElection(cfg, rng.NewSource(5).Stream("el", 0))
	alive := allAlive(20)
	for i := 0; i < 10; i++ {
		alive[i] = false
	}
	for r := 0; r < 200; r++ {
		for _, h := range e.Elect(alive) {
			if h < 10 {
				t.Fatalf("dead node %d elected in round %d", h, r)
			}
		}
	}
}

func TestElectionAllDead(t *testing.T) {
	cfg := Config{HeadFraction: 0.1, Nodes: 5}
	e := NewElection(cfg, rng.NewSource(6).Stream("el", 0))
	heads := e.Elect(make([]bool, 5))
	if len(heads) != 0 {
		t.Fatalf("elected %d heads from a dead network", len(heads))
	}
}

func TestElectionWrongMaskPanics(t *testing.T) {
	e := NewElection(Config{HeadFraction: 0.1, Nodes: 5}, rng.NewSource(7).Stream("el", 0))
	defer func() {
		if recover() == nil {
			t.Error("wrong-size alive mask did not panic")
		}
	}()
	e.Elect(make([]bool, 4))
}

func TestElectionDeterminism(t *testing.T) {
	run := func() [][]int {
		e := NewElection(Config{HeadFraction: 0.05, Nodes: 50}, rng.NewSource(8).Stream("el", 0))
		alive := allAlive(50)
		var out [][]int
		for r := 0; r < 40; r++ {
			out = append(out, e.Elect(alive))
		}
		return out
	}
	a, b := run(), run()
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("round %d head count differs", r)
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("round %d head %d differs", r, i)
			}
		}
	}
}

func TestAssignNearest(t *testing.T) {
	positions := []geom.Point{
		{X: 0, Y: 0},   // head 0
		{X: 100, Y: 0}, // head 1
		{X: 10, Y: 0},  // member, nearer head 0
		{X: 90, Y: 0},  // member, nearer head 1
		{X: 49, Y: 0},  // member, nearer head 0
	}
	a := Assign([]int{0, 1}, positions, allAlive(5))
	if a.HeadOf(2) != 0 || a.HeadOf(3) != 1 || a.HeadOf(4) != 0 {
		t.Fatalf("assignment wrong: %v", a.ClusterOf)
	}
	if a.HeadOf(0) != 0 || a.HeadOf(1) != 1 {
		t.Fatal("heads not in their own clusters")
	}
	if a.Size(0) != 3 || a.Size(1) != 2 {
		t.Fatalf("cluster sizes %d, %d", a.Size(0), a.Size(1))
	}
}

func TestAssignSkipsDead(t *testing.T) {
	positions := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}}
	alive := []bool{true, false, true}
	a := Assign([]int{0}, positions, alive)
	if a.ClusterOf[1] != -1 || a.HeadOf(1) != -1 {
		t.Fatal("dead node assigned to a cluster")
	}
	if len(a.Members[0]) != 1 || a.Members[0][0] != 2 {
		t.Fatalf("members = %v", a.Members[0])
	}
}

// Property: every alive node is assigned to its geometrically nearest
// head; dead nodes are unassigned.
func TestAssignProperty(t *testing.T) {
	r := rng.NewSource(9).Stream("assign", 0)
	check := func(nRaw, hRaw uint8) bool {
		n := int(nRaw%30) + 2
		h := int(hRaw%uint8(n-1)) + 1
		positions := make([]geom.Point, n)
		for i := range positions {
			positions[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		}
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = r.Float64() > 0.2
		}
		heads := r.Perm(n)[:h]
		for _, hd := range heads {
			alive[hd] = true
		}
		a := Assign(heads, positions, alive)
		headPts := make([]geom.Point, len(heads))
		for c, hd := range heads {
			headPts[c] = positions[hd]
		}
		for i := 0; i < n; i++ {
			if !alive[i] {
				if a.ClusterOf[i] != -1 {
					return false
				}
				continue
			}
			isHead := false
			for _, hd := range heads {
				if hd == i {
					isHead = true
				}
			}
			if isHead {
				if a.HeadOf(i) != i {
					return false
				}
				continue
			}
			nearest, _ := geom.Nearest(positions[i], headPts)
			if a.ClusterOf[i] != nearest {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
