// Command caem-serve is the always-on campaign service: an HTTP API
// over a persistent, append-only results store and a fault-tolerant
// cluster of simulation workers.
//
// Usage:
//
//	caem-serve -addr :8080 -store ./caem-store -workers 0
//	caem-serve -join http://coordinator:8080 -workers 0
//
// The first form runs a coordinator: it owns the store, serves the
// campaign API, and executes cells on its local worker budget. The
// second form runs a worker process that joins an existing coordinator
// over HTTP: it claims leases of campaign cells, executes them on its
// own simulation pools, and pushes the results back. Workers hold no
// state — they can be added, removed, or killed at any point; the
// coordinator's lease/heartbeat protocol re-queues whatever a dead
// worker was holding, and determinism makes the recomputed results
// bit-identical.
//
// API:
//
//	POST /campaigns                submit a campaign (idempotent: equal
//	                               requests map to the same campaign id)
//	GET  /campaigns                list campaigns
//	GET  /campaigns/{id}           status: per-cell states + counters
//	GET  /campaigns/{id}/results   completed cells + mean±CI aggregates,
//	                               read back from the store (works
//	                               mid-run and after restarts)
//	GET  /campaigns/{id}/progress  NDJSON progress stream (curl -N)
//	GET  /healthz                  liveness + store stats
//	GET  /cluster/status           work queue, leases, workers, poisons
//	POST /leases/...               the worker lease protocol (see
//	                               internal/cluster)
//
// A campaign request names library scenarios (or embeds inline specs),
// protocols, seeds, and partial config overrides:
//
//	curl -s localhost:8080/campaigns -d '{
//	  "scenarios": ["node-churn"],
//	  "protocols": ["leach", "scheme1"],
//	  "seeds": [1, 2, 3],
//	  "config": {"durationSeconds": 300}
//	}'
//
// Every completed (scenario, protocol, seed) cell is persisted as it
// finishes, keyed by a content hash of its full configuration. The
// service survives restarts: campaign specs live in the store, so a
// restarted caem-serve re-registers every campaign, restores the cells
// already on disk, and re-runs only what is missing. Results are
// deterministic — a cell computed before a crash, after a crash, or on
// any worker of the cluster is bit-identical — so failures and recovery
// change nothing about the answers.
//
// On SIGTERM/SIGINT both modes drain gracefully: in-flight cells
// finish (bounded by -drain), worker mode releases its leases back to
// the coordinator, and the store flushes before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/caem"
	"repro/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (coordinator mode)")
		storeDir = flag.String("store", "caem-store", "results-store directory (created if absent)")
		workers  = flag.Int("workers", 0, "simulation worker budget (0 = one per CPU)")
		join     = flag.String("join", "", "coordinator URL: run as a worker of that cluster instead of serving")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight cells")
		leaseTTL = flag.Duration("lease-ttl", 0, "worker lease TTL before cells re-queue (0 = default 15s)")
	)
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if *join != "" {
		os.Exit(workerMode(*join, w, *drain))
	}
	os.Exit(serveMode(*addr, *storeDir, w, *drain, *leaseTTL))
}

// serveMode runs the coordinator: store, campaign API, local workers.
func serveMode(addr, storeDir string, workers int, drain, leaseTTL time.Duration) int {
	st, err := caem.OpenStore(storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
		return 1
	}
	if n := st.RecoveredBytes(); n > 0 {
		fmt.Fprintf(os.Stderr, "caem-serve: store recovered from a torn tail (%d bytes dropped)\n", n)
	}
	srv, err := newServerWith(st, serverConfig{
		workers: workers,
		lease:   cluster.Options{LeaseTTL: leaseTTL},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
		return 1
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Printf("caem-serve: listening on %s, store %s, %d workers, %d cells on disk\n",
		addr, st.Dir(), workers, st.Len())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	code := 0
	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
		code = 1
	case <-sig:
		fmt.Fprintf(os.Stderr, "caem-serve: draining (in-flight cells get %v; pending cells resume on restart)\n", drain)
	}
	httpSrv.Close()
	if err := srv.Shutdown(drain); err != nil {
		fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
		code = 1
	}
	if err := st.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
		code = 1
	}
	return code
}

// workerMode joins an existing coordinator: n executor loops claim
// leases over HTTP until interrupted, then release them and exit.
func workerMode(join string, n int, drain time.Duration) int {
	remote := &cluster.Remote{Base: strings.TrimRight(join, "/")}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &cluster.Worker{
			Queue: remote,
			Name:  fmt.Sprintf("%s-%d-%d", host, os.Getpid(), i),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	fmt.Printf("caem-serve: %d workers joined %s\n", n, join)

	<-ctx.Done()
	fmt.Fprintf(os.Stderr, "caem-serve: draining (in-flight cells get %v, leases release to the coordinator)\n", drain)
	drained := make(chan struct{})
	go func() {
		wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return 0
	case <-time.After(drain):
		fmt.Fprintln(os.Stderr, "caem-serve: drain deadline passed; abandoning leases (they expire and re-queue)")
		return 1
	}
}
