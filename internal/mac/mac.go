// Package mac holds the protocol logic of the CAEM medium access control
// layer (§III.B of the paper): the sensor and cluster-head state machines
// (Figures 3 and 4), the binary-exponential backoff, the burst sizing
// rules (minimum 3, maximum 8 packets per transmission), and the
// retransmission policy (cap of 6).
//
// The types here are pure decision logic — no events, no energy — so they
// are unit-testable in isolation. internal/netsim drives them from the
// event engine and charges the energy model.
package mac

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// SensorState enumerates the sensor node states of Fig. 3.
type SensorState int

const (
	// SensorSleep: both radios off; entered when the queue cannot form a
	// minimum burst or the cluster head vanished.
	SensorSleep SensorState = iota
	// SensorSensing: tone radio on, monitoring the tone channel for an
	// idle indication with adequate CSI.
	SensorSensing
	// SensorBackoff: channel found idle and good; waiting the random
	// backoff before re-checking.
	SensorBackoff
	// SensorTransmit: data radio on, burst in flight (tone radio stays
	// on for collision detection).
	SensorTransmit
)

func (s SensorState) String() string {
	switch s {
	case SensorSleep:
		return "sleep"
	case SensorSensing:
		return "sensing"
	case SensorBackoff:
		return "backoff"
	case SensorTransmit:
		return "transmit"
	default:
		return fmt.Sprintf("SensorState(%d)", int(s))
	}
}

// HeadState enumerates the cluster-head states of Fig. 4.
type HeadState int

const (
	// HeadIdle: data channel free; idle tone pulses broadcast
	// periodically.
	HeadIdle HeadState = iota
	// HeadReceive: a burst is arriving; receive tone pulses every 10 ms.
	HeadReceive
	// HeadCollision: overlapping transmissions detected; collision tone
	// sent, then back to idle.
	HeadCollision
	// HeadTransmit: forwarding aggregated data to the base station
	// (defined by the paper, exercised only by the extension
	// experiment).
	HeadTransmit
)

func (s HeadState) String() string {
	switch s {
	case HeadIdle:
		return "idle"
	case HeadReceive:
		return "receive"
	case HeadCollision:
		return "collision"
	case HeadTransmit:
		return "transmit"
	default:
		return fmt.Sprintf("HeadState(%d)", int(s))
	}
}

// Config holds the MAC constants (Table II and §III.B/§IV of the paper).
type Config struct {
	// SlotTime is the backoff quantum (20 µs in the backoff expression).
	SlotTime sim.Time
	// ContentionWindow is CW (10 in Table II).
	ContentionWindow int
	// MaxRetries is the retransmission cap n_max (6 in §III.B).
	MaxRetries int
	// MinBurst is the minimum number of packets per transmission (3,
	// amortizing the radio startup cost, §IV).
	MinBurst int
	// MaxBurst is the maximum number of packets per transmission (8,
	// bounding one node's channel hold time for fairness, §IV).
	MaxBurst int
	// SensingDelay is the time a sensor needs to acquire and verify the
	// tone state before it may contend (8 ms, Table II).
	SensingDelay sim.Time
}

// DefaultConfig returns the paper's MAC constants. The backoff slot is
// interpreted as 0.2 ms rather than a literal 20 µs: the scan loses the
// unit, and 20 µs slots would make the initial contention window (200 µs)
// shorter than the tone-feedback latency (a 0.5 ms receive pulse), so any
// two simultaneous contenders would always collide on their first attempt
// — inconsistent with the performance the paper reports (DESIGN.md §4).
func DefaultConfig() Config {
	return Config{
		SlotTime:         200 * sim.Microsecond,
		ContentionWindow: 10,
		MaxRetries:       6,
		MinBurst:         3,
		MaxBurst:         8,
		SensingDelay:     8 * sim.Millisecond,
	}
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.SlotTime <= 0:
		return fmt.Errorf("mac: SlotTime %v not positive", c.SlotTime)
	case c.ContentionWindow < 1:
		return fmt.Errorf("mac: ContentionWindow %d < 1", c.ContentionWindow)
	case c.MaxRetries < 0:
		return fmt.Errorf("mac: negative MaxRetries %d", c.MaxRetries)
	case c.MinBurst < 1:
		return fmt.Errorf("mac: MinBurst %d < 1", c.MinBurst)
	case c.MaxBurst < c.MinBurst:
		return fmt.Errorf("mac: MaxBurst %d < MinBurst %d", c.MaxBurst, c.MinBurst)
	case c.SensingDelay < 0:
		return fmt.Errorf("mac: negative SensingDelay %v", c.SensingDelay)
	}
	return nil
}

// Backoff draws the random contention delay of §III.B:
//
//	rand() × 2^n × SlotTime × CW
//
// where rand() is uniform in [0, 1) and n is the packet's retransmission
// count, capped at MaxRetries. The exponential term spreads repeat
// colliders over a growing window.
func (c Config) Backoff(retries int, stream *rng.Stream) sim.Time {
	if retries < 0 {
		retries = 0
	}
	if retries > c.MaxRetries {
		retries = c.MaxRetries
	}
	window := float64(int64(1)<<uint(retries)) * float64(c.SlotTime) * float64(c.ContentionWindow)
	d := sim.Time(stream.Float64() * window)
	if d < 1 {
		d = 1 // never a zero backoff: two contenders must be separable
	}
	return d
}

// MaxBackoff returns the largest possible backoff for the given retry
// count — the bound tests and the collision-window logic rely on.
func (c Config) MaxBackoff(retries int) sim.Time {
	if retries < 0 {
		retries = 0
	}
	if retries > c.MaxRetries {
		retries = c.MaxRetries
	}
	return sim.Time(int64(1)<<uint(retries)) * c.SlotTime * sim.Time(c.ContentionWindow)
}

// BurstSize decides how many packets a node may send given its queue
// length: 0 if the queue cannot form a minimum burst, otherwise
// min(queueLen, MaxBurst).
func (c Config) BurstSize(queueLen int) int {
	if queueLen < c.MinBurst {
		return 0
	}
	if queueLen > c.MaxBurst {
		return c.MaxBurst
	}
	return queueLen
}

// ShouldDrop reports whether a packet that just failed its transmission
// should be discarded (retry count, after increment, exceeds the cap).
func (c Config) ShouldDrop(retriesAfterIncrement int) bool {
	return retriesAfterIncrement > c.MaxRetries
}

// Counters aggregates per-node MAC events for diagnostics and the
// fairness/performance experiments.
type Counters struct {
	Attempts      uint64 // bursts started
	Collisions    uint64 // bursts aborted by a collision tone
	ChannelFails  uint64 // packets lost to channel error (PER draw)
	RetryDrops    uint64 // packets discarded at the retry cap
	PacketsSent   uint64 // packets delivered to the CH
	BurstsDone    uint64 // bursts fully completed
	DeferralsCSI  uint64 // transmission opportunities declined: CSI below threshold
	DeferralsBusy uint64 // opportunities declined: channel not idle
}

// Add accumulates other into c (for network-wide totals).
func (c *Counters) Add(other Counters) {
	c.Attempts += other.Attempts
	c.Collisions += other.Collisions
	c.ChannelFails += other.ChannelFails
	c.RetryDrops += other.RetryDrops
	c.PacketsSent += other.PacketsSent
	c.BurstsDone += other.BurstsDone
	c.DeferralsCSI += other.DeferralsCSI
	c.DeferralsBusy += other.DeferralsBusy
}
