package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster/journal"
	"repro/internal/obs"
)

// Options tunes the coordinator's fault-tolerance envelope. The zero
// value resolves to production-shaped defaults; tests and the chaos
// harness shrink the timings to force expiry paths quickly.
type Options struct {
	// LeaseTTL is how long a lease survives without a renewal before its
	// cells are presumed lost and re-queued. Default 15s.
	LeaseTTL time.Duration
	// SweepEvery is the expiry-check period. Default LeaseTTL/4.
	SweepEvery time.Duration
	// MaxAttempts bounds how many times a *failing* cell is retried
	// before it is poisoned. (Lease expiry re-queues are not attempts: a
	// dead worker says nothing about the cell.) Default 4.
	MaxAttempts int
	// BackoffBase is the first retry delay; attempt n waits
	// BackoffBase·2^(n-1) plus deterministic jitter. Default 250ms.
	BackoffBase time.Duration
	// MaxBatch caps the cells in one lease. Default 8.
	MaxBatch int
	// Epoch is the leadership epoch this coordinator was elected at.
	// Every lease ID embeds it, so a successor coordinator can fence
	// operations carrying a dead epoch. Default 1 (a standalone
	// coordinator with no election behaves exactly as before).
	Epoch int64
	// Journal, when non-nil, receives a write-ahead record of every
	// scheduling decision so a successor coordinator can rebuild the
	// queue, lease, retry, and poison state after this one dies. The
	// caller must have called Journal.Begin for this epoch.
	Journal *journal.Journal
	// Guard, when non-nil, is the resource-level fence check consulted
	// before the coordinator grants a lease or settles one — the paths
	// that lead to durable writes on shared state. It returns nil while
	// this process's leadership lease is verifiably live; ErrLockLost
	// fences the coordinator permanently. cmd/caem-serve wires it to
	// LeaderLock.Verify, so a leader that stalled past its lock TTL and
	// resumed is fenced synchronously at the write — not at its next
	// renew tick, by which time it could already have interleaved store
	// appends with its successor's.
	Guard func() error
	// Metrics receives the coordinator's instruments. Nil gets a private
	// registry, so instrumentation never needs nil checks; callers who
	// want a /metrics endpoint pass the registry they expose.
	Metrics *obs.Registry
	// Logger receives structured lease-lifecycle records. Nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.SweepEvery <= 0 {
		o.SweepEvery = o.LeaseTTL / 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 250 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.Epoch <= 0 {
		o.Epoch = 1
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// lease is the coordinator's record of one outstanding batch.
type lease struct {
	id       string
	worker   string
	cells    []Cell
	deadline time.Time
	renews   int
}

// delayedCell is a failed cell waiting out its retry backoff.
type delayedCell struct {
	cell      Cell
	notBefore time.Time
}

// workerInfo is per-worker observability state. Settlement counts
// live in the registry (settledC is the worker's pre-bound handle on
// caem_worker_settled_total), not here — Status reads them back from
// the same instruments /metrics exposes.
type workerInfo struct {
	lastSeen time.Time
	settledC *obs.Counter
}

// PoisonReport records one terminally failed cell for /cluster/status.
type PoisonReport struct {
	Campaign string `json:"campaign"`
	Index    int    `json:"index"`
	Scenario string `json:"scenario"`
	Protocol string `json:"protocol"`
	Seed     uint64 `json:"seed"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

// Coordinator owns the cluster's work queue and lease table. All
// methods are safe for concurrent use; Sink callbacks run under the
// coordinator lock, serializing settlement with expiry sweeps.
type Coordinator struct {
	opts Options
	sink Sink
	now  func() time.Time // injectable clock (tests)
	met  *coordMetrics
	log  *slog.Logger

	mu       sync.Mutex
	queue    []Cell                 // ready to lease, FIFO
	delayed  []delayedCell          // backing off after a failure
	leases   map[string]*lease      // outstanding batches
	attempts map[string]int         // reported failures per cell key
	settled  map[string]bool        // terminally settled (done or poisoned)
	workers  map[string]*workerInfo // per-worker stats
	poisoned []PoisonReport
	leaseSeq int
	draining bool // shutting down: Claim answers ErrDraining
	fenced   bool // deposed: every operation answers ErrFenced

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator starts a coordinator (including its expiry sweeper)
// delivering settlement callbacks to sink. Stop it with Stop.
func NewCoordinator(sink Sink, opts Options) *Coordinator {
	c := &Coordinator{
		opts:     opts.withDefaults(),
		sink:     sink,
		now:      time.Now,
		leases:   make(map[string]*lease),
		attempts: make(map[string]int),
		settled:  make(map[string]bool),
		workers:  make(map[string]*workerInfo),
		stop:     make(chan struct{}),
	}
	c.met = newCoordMetrics(c.opts.Metrics)
	c.met.epoch.Set(float64(c.opts.Epoch))
	c.log = c.opts.Logger
	c.wg.Add(1)
	go c.sweeper()
	return c
}

// journal appends one write-ahead record, if a journal is attached. A
// journal write failure is logged and survived: stalling the cluster
// on a full disk would cost more than the degraded failover fidelity.
func (c *Coordinator) journal(op string, fn func(j *journal.Journal) error) {
	if c.opts.Journal == nil {
		return
	}
	if err := fn(c.opts.Journal); err != nil {
		c.log.Error("journal append failed", "op", op, "error", err.Error())
	}
}

// leaseEpoch extracts the epoch embedded in a lease ID
// ("lease-<epoch>-<seq>").
func leaseEpoch(id string) (int64, bool) {
	parts := strings.Split(id, "-")
	if len(parts) != 3 || parts[0] != "lease" {
		return 0, false
	}
	e, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || e <= 0 {
		return 0, false
	}
	return e, true
}

// fenceCheckLocked rejects operations that must not mutate state: any
// at all once this coordinator is deposed, and any carrying a lease
// from a different epoch. Caller holds mu.
func (c *Coordinator) fenceCheckLocked(leaseID string) error {
	if c.fenced {
		c.met.fenced.Inc()
		return ErrFenced
	}
	if leaseID != "" {
		if e, ok := leaseEpoch(leaseID); ok && e != c.opts.Epoch {
			c.met.fenced.Inc()
			c.log.Warn("fenced dead-epoch lease operation",
				"lease_id", leaseID, "lease_epoch", e, "epoch", c.opts.Epoch)
			return ErrFenced
		}
	}
	return nil
}

// verifyLeadershipLocked runs the Options.Guard resource check before
// a mutation that leads to durable writes. ErrLockLost fences the
// coordinator permanently and answers ErrFenced; any other guard error
// (a transient fault reading the lock) rejects just this operation —
// refusing one settle is cheap, the lease expiry re-queues its cells,
// whereas writing to a store a successor may concurrently be appending
// to could corrupt it. Caller holds mu.
func (c *Coordinator) verifyLeadershipLocked() error {
	if c.opts.Guard == nil {
		return nil
	}
	err := c.opts.Guard()
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrLockLost) {
		c.fenced = true
		c.met.fenced.Inc()
		c.log.Error("coordinator fenced: leadership verification failed",
			"epoch", c.opts.Epoch, "error", err.Error())
		return ErrFenced
	}
	c.log.Warn("leadership verification inconclusive; rejecting the write",
		"epoch", c.opts.Epoch, "error", err.Error())
	return err
}

// Drain stops granting new leases: every subsequent Claim answers
// ErrDraining (503 + Retry-After over HTTP) so workers back off
// instead of tight-looping against a shutting-down coordinator.
// Outstanding leases still settle normally.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.log.Info("coordinator draining: claims now answer unavailable")
}

// Fence permanently rejects every operation with ErrFenced — called on
// a coordinator that lost the leader lock, so a zombie leader cannot
// accept or settle work its successor now owns.
func (c *Coordinator) Fence() {
	c.mu.Lock()
	already := c.fenced
	c.fenced = true
	c.mu.Unlock()
	if !already {
		c.log.Error("coordinator fenced: leadership lost", "epoch", c.opts.Epoch)
	}
}

// Epoch returns the leadership epoch this coordinator was created at.
func (c *Coordinator) Epoch() int64 { return c.opts.Epoch }

// Stop halts the expiry sweeper. Outstanding leases stay claimable to
// completion by in-flight workers; no new expiry reclaims happen.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	select {
	case <-c.stop:
		c.mu.Unlock()
		return
	default:
	}
	close(c.stop)
	c.mu.Unlock()
	c.wg.Wait()
}

func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// Submit enqueues cells for distribution, deduplicating against
// everything the coordinator already tracks, so replaying a campaign
// plan over journal-restored state never double-queues a cell. Two
// reconciliations handle the journal/store crash windows — callers
// only submit cells whose results are absent from the store, which is
// evidence the journal and store disagree:
//
//   - a submitted cell the journal recorded as settled lost its result
//     to a torn store tail: it is un-settled and queued to re-run;
//   - a submitted cell the journal recorded as poisoned is re-reported
//     to the Sink as terminally failed, so the re-planned campaign
//     folds the poison in instead of waiting forever.
func (c *Coordinator) Submit(cells []Cell) {
	c.mu.Lock()
	if c.fenced {
		c.mu.Unlock()
		c.log.Warn("submit dropped: coordinator is fenced", "cells", len(cells))
		return
	}
	known := make(map[string]bool, len(c.queue)+len(c.delayed)+len(c.leases))
	for _, cell := range c.queue {
		known[cell.Key()] = true
	}
	for _, d := range c.delayed {
		known[d.cell.Key()] = true
	}
	for _, l := range c.leases {
		for _, cell := range l.cells {
			known[cell.Key()] = true
		}
	}
	var fresh []Cell
	var repoison []Cell
	for _, cell := range cells {
		key := cell.Key()
		if known[key] {
			continue
		}
		if c.settled[key] {
			if c.poisonReportLocked(key) != nil {
				repoison = append(repoison, cell)
				continue
			}
			delete(c.settled, key) // journal settled it, the store lost it
			c.log.Warn("re-running journal-settled cell missing from the store", "cell", key)
		}
		known[key] = true
		fresh = append(fresh, cell)
	}
	c.queue = append(c.queue, fresh...)
	if len(fresh) > 0 {
		c.journal("submit", func(j *journal.Journal) error {
			sub := make([]journal.SubmitCell, len(fresh))
			for i, cell := range fresh {
				blob, err := json.Marshal(cell)
				if err != nil {
					return err
				}
				sub[i] = journal.SubmitCell{Key: cell.Key(), Cell: blob}
			}
			return j.Submit(sub)
		})
	}
	// Re-deliver poisons under mu like every other Sink callback,
	// serialized with settlement.
	for _, cell := range repoison {
		rep := c.poisonReportLocked(cell.Key())
		c.sink.CellFailed(cell, rep.Attempts, errors.New(rep.Error))
	}
	c.syncGaugesLocked()
	c.mu.Unlock()
	c.log.Debug("cells submitted",
		"cells", len(cells), "queued", len(fresh), "repoisoned", len(repoison))
}

// poisonReportLocked finds the poison report for a key. Caller holds
// mu; poisons are rare, so the scan is fine.
func (c *Coordinator) poisonReportLocked(key string) *PoisonReport {
	for i := range c.poisoned {
		if fmt.Sprintf("%s/%d", c.poisoned[i].Campaign, c.poisoned[i].Index) == key {
			return &c.poisoned[i]
		}
	}
	return nil
}

// Restore rebuilds the coordinator from a replayed journal: queued and
// reclaimed cells, settled keys, absolute attempt counts, and poison
// reports. adopt, when non-nil, is consulted per queued cell; true
// means the cell's result is already durable (the predecessor crashed
// between persisting the result and journaling the settlement), so the
// cell is settled instead of re-queued — "adopted on replay". Call
// before submitting new work.
func (c *Coordinator) Restore(st journal.State, adopt func(Cell) bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, n := range st.Attempts {
		if n > c.attempts[k] {
			c.attempts[k] = n
		}
	}
	for k := range st.Settled {
		c.settled[k] = true
	}
	for key, blob := range st.Poisoned {
		var rep PoisonReport
		if err := json.Unmarshal(blob, &rep); err != nil {
			c.log.Warn("undecodable poison report in journal", "cell", key, "error", err.Error())
			continue
		}
		c.poisoned = append(c.poisoned, rep)
	}
	sort.Slice(c.poisoned, func(i, j int) bool {
		if c.poisoned[i].Campaign != c.poisoned[j].Campaign {
			return c.poisoned[i].Campaign < c.poisoned[j].Campaign
		}
		return c.poisoned[i].Index < c.poisoned[j].Index
	})
	var adopted []string
	restored := 0
	for _, q := range st.Queue {
		var cell Cell
		if err := json.Unmarshal(q.Cell, &cell); err != nil {
			return fmt.Errorf("cluster: journal cell %s does not decode: %w", q.Key, err)
		}
		if c.settled[q.Key] {
			continue
		}
		if adopt != nil && adopt(cell) {
			c.settled[q.Key] = true
			adopted = append(adopted, q.Key)
			c.met.cellsSettled.Inc()
			continue
		}
		c.queue = append(c.queue, cell)
		restored++
	}
	if len(adopted) > 0 {
		c.journal("settle", func(j *journal.Journal) error { return j.Settle(adopted) })
	}
	c.syncGaugesLocked()
	c.log.Info("coordinator state restored from journal",
		"queued", restored, "adopted", len(adopted),
		"settled", len(st.Settled), "poisoned", len(st.Poisoned))
	return nil
}

// syncGaugesLocked republishes the structural depth gauges from the
// authoritative in-memory state. Called after every mutation under mu,
// so a /metrics scrape and a /cluster/status snapshot always agree.
func (c *Coordinator) syncGaugesLocked() {
	c.met.queueDepth.Set(float64(len(c.queue)))
	c.met.delayed.Set(float64(len(c.delayed)))
	c.met.inflight.Set(float64(len(c.leases)))
}

// Claim hands the worker a lease of at most max cells, sized by guided
// self-scheduling: roughly remaining/(2·workers), large while the queue
// is deep and shrinking toward 1 as it drains, so a slow irregular cell
// near the end cannot strand a big batch behind one worker.
func (c *Coordinator) Claim(worker string, max int) (*Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if err := c.fenceCheckLocked(""); err != nil {
		return nil, err
	}
	if c.draining {
		return nil, ErrDraining
	}
	w := c.workers[worker]
	if w == nil {
		w = &workerInfo{settledC: c.met.workerSettled.With(worker)}
		c.workers[worker] = w
		c.log.Info("worker joined", "worker_id", worker)
	}
	w.lastSeen = now
	c.promoteRipeLocked(now)
	// Drop queue copies of cells that settled while re-queued: an expiry
	// re-queue can race a late completion of the same cell, and handing
	// the stale copy out again would only waste a worker.
	if len(c.settled) > 0 {
		q := c.queue[:0]
		for _, cell := range c.queue {
			if !c.settled[cell.Key()] {
				q = append(q, cell)
			}
		}
		c.queue = q
	}
	if len(c.queue) == 0 {
		c.syncGaugesLocked()
		return nil, nil
	}
	// About to grant: verify leadership at the lock file first, so a
	// zombie leader stops handing out work it has no right to settle.
	if err := c.verifyLeadershipLocked(); err != nil {
		return nil, err
	}

	n := (len(c.queue) + 2*len(c.workers) - 1) / (2 * len(c.workers))
	if n < 1 {
		n = 1
	}
	if n > c.opts.MaxBatch {
		n = c.opts.MaxBatch
	}
	if max > 0 && n > max {
		n = max
	}
	cells := make([]Cell, n)
	copy(cells, c.queue[:n])
	c.queue = c.queue[n:]

	c.leaseSeq++
	l := &lease{
		id:       fmt.Sprintf("lease-%d-%d", c.opts.Epoch, c.leaseSeq),
		worker:   worker,
		cells:    cells,
		deadline: now.Add(c.opts.LeaseTTL),
	}
	c.leases[l.id] = l
	c.journal("grant", func(j *journal.Journal) error {
		keys := make([]string, len(cells))
		for i, cell := range cells {
			keys[i] = cell.Key()
		}
		return j.Grant(l.id, keys)
	})
	for _, cell := range cells {
		c.sink.CellStarted(cell)
	}
	c.met.claims.Inc()
	c.met.batchCells.Observe(float64(n))
	c.syncGaugesLocked()
	c.log.Debug("lease granted",
		"lease_id", l.id, "worker_id", worker, "cells", n, "queue", len(c.queue))
	return &Lease{
		ID: l.id, Worker: worker, Cells: cells,
		TTLMillis: c.opts.LeaseTTL.Milliseconds(), Epoch: c.opts.Epoch,
	}, nil
}

// promoteRipeLocked moves delayed cells whose backoff elapsed back onto
// the ready queue. Caller holds mu.
func (c *Coordinator) promoteRipeLocked(now time.Time) {
	kept := c.delayed[:0]
	for _, d := range c.delayed {
		if !d.notBefore.After(now) {
			c.queue = append(c.queue, d.cell)
		} else {
			kept = append(kept, d)
		}
	}
	c.delayed = kept
}

// Renew extends the lease's heartbeat deadline.
func (c *Coordinator) Renew(leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if err := c.fenceCheckLocked(leaseID); err != nil {
		return err
	}
	l, ok := c.leases[leaseID]
	if !ok {
		return ErrLeaseGone
	}
	l.deadline = now.Add(c.opts.LeaseTTL)
	l.renews++
	if w := c.workers[l.worker]; w != nil {
		w.lastSeen = now
	}
	c.journal("renew", func(j *journal.Journal) error { return j.Renew(leaseID) })
	c.met.renews.Inc()
	return nil
}

// Complete settles a lease with the worker's results. Against an
// already-expired lease it returns ErrLeaseGone and discards the
// results — the cells re-queued at expiry and will be recomputed
// bit-identically, so dropping a late completion is always safe.
func (c *Coordinator) Complete(leaseID string, results []CellResult) error {
	return c.settle(leaseID, results, false)
}

// Release returns a lease early — the graceful-shutdown path. Finished
// results settle normally; every other cell re-queues immediately with
// no retry penalty and no wait for expiry.
func (c *Coordinator) Release(leaseID string, results []CellResult) error {
	return c.settle(leaseID, results, true)
}

func (c *Coordinator) settle(leaseID string, results []CellResult, partial bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if err := c.fenceCheckLocked(leaseID); err != nil {
		return err
	}
	l, ok := c.leases[leaseID]
	if !ok {
		return ErrLeaseGone
	}
	// Settlement is where results reach the shared store (Sink.CellDone
	// → PutCell). Verify leadership at the lock file before any of it:
	// a leader deposed between renew ticks must not append to segments
	// its successor is also writing. Rejecting here leaves the lease in
	// place — if we are wrong to reject, expiry re-queues the cells.
	if err := c.verifyLeadershipLocked(); err != nil {
		return err
	}
	delete(c.leases, leaseID)
	w := c.workers[l.worker]
	if w != nil {
		w.lastSeen = now
	}
	if partial {
		c.met.released.Inc()
		c.log.Info("lease released",
			"lease_id", leaseID, "worker_id", l.worker, "results", len(results), "cells", len(l.cells))
	} else {
		c.met.completed.Inc()
		c.log.Debug("lease completed",
			"lease_id", leaseID, "worker_id", l.worker, "results", len(results))
	}

	byIndex := make(map[string]CellResult, len(results))
	for _, r := range results {
		byIndex[fmt.Sprintf("%s/%d", r.Campaign, r.Index)] = r
	}
	var settledKeys []string
	for _, cell := range l.cells {
		key := cell.Key()
		if c.settled[key] {
			continue // duplicate execution after an expiry re-queue
		}
		r, have := byIndex[key]
		switch {
		case !have:
			if !partial {
				// A Complete that omits a leased cell is a worker bug, but
				// losing the cell would hang its campaign forever; re-queue.
				c.queue = append(c.queue, cell)
				continue
			}
			c.queue = append(c.queue, cell) // released unfinished: no penalty
		case r.Result != nil:
			if err := c.sink.CellDone(cell, r.Result); err != nil {
				c.retryLocked(cell, now, err) // transient store fault
				continue
			}
			c.settled[key] = true
			settledKeys = append(settledKeys, key)
			c.met.cellsSettled.Inc()
			if w != nil {
				w.settledC.Inc()
			}
		default:
			c.retryLocked(cell, now, fmt.Errorf("%s", r.Error))
		}
	}
	if len(settledKeys) > 0 {
		// Journaled after the Sink persisted the results: a crash between
		// PutCell and this settle record re-runs nothing — the successor
		// adopts the already-stored result on replay.
		c.journal("settle", func(j *journal.Journal) error { return j.Settle(settledKeys) })
	}
	c.syncGaugesLocked()
	return nil
}

// retryLocked schedules a failed cell's next attempt — exponential
// backoff with deterministic jitter — or poisons it once the attempt
// budget is spent. Caller holds mu.
func (c *Coordinator) retryLocked(cell Cell, now time.Time, cause error) {
	key := cell.Key()
	c.attempts[key]++
	n := c.attempts[key]
	if n >= c.opts.MaxAttempts {
		c.settled[key] = true
		rep := PoisonReport{
			Campaign: cell.Campaign,
			Index:    cell.Index,
			Scenario: cell.Scenario.Name,
			Protocol: cell.Config.Protocol.String(),
			Seed:     cell.Config.Seed,
			Attempts: n,
			Error:    cause.Error(),
		}
		c.poisoned = append(c.poisoned, rep)
		c.journal("poison", func(j *journal.Journal) error {
			blob, err := json.Marshal(rep)
			if err != nil {
				return err
			}
			return j.Poison(key, n, blob)
		})
		c.met.cellsPoisoned.Inc()
		c.log.Error("cell poisoned",
			"campaign", cell.Campaign, "cell", cell.Index, "attempts", n, "error", cause.Error())
		c.sink.CellFailed(cell, n, cause)
		return
	}
	c.journal("retry", func(j *journal.Journal) error { return j.Retry(key, n) })
	c.met.cellsRetried.Inc()
	c.log.Warn("cell retry scheduled",
		"campaign", cell.Campaign, "cell", cell.Index, "attempt", n, "error", cause.Error())
	shift := n - 1
	if shift > 6 {
		shift = 6 // cap the exponent: 64× base is patient enough
	}
	delay := c.opts.BackoffBase << shift
	delay += jitter(key, n, delay/2)
	c.delayed = append(c.delayed, delayedCell{cell: cell, notBefore: now.Add(delay)})
}

// jitter derives a deterministic pseudo-random delay in [0, span] from
// the cell key and attempt number, de-synchronizing retry herds without
// sacrificing reproducibility.
func jitter(key string, attempt int, span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", key, attempt)
	return time.Duration(h.Sum64() % uint64(span+1))
}

// Sweep reclaims expired leases: every unsettled cell of a lease whose
// deadline passed re-queues immediately. Runs on the sweeper ticker;
// exposed for deterministic tests.
func (c *Coordinator) Sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for id, l := range c.leases {
		if l.deadline.After(now) {
			continue
		}
		delete(c.leases, id)
		c.met.expired.Inc()
		requeued := 0
		for _, cell := range l.cells {
			if !c.settled[cell.Key()] {
				c.queue = append(c.queue, cell)
				requeued++
			}
		}
		c.log.Warn("lease expired",
			"lease_id", id, "worker_id", l.worker, "requeued", requeued)
	}
	c.promoteRipeLocked(now)
	c.syncGaugesLocked()
}

// LeaseStatus is one outstanding lease in a Status snapshot.
type LeaseStatus struct {
	ID        string `json:"id"`
	Worker    string `json:"worker"`
	Cells     int    `json:"cells"`
	Renews    int    `json:"renews"`
	ExpiresMs int64  `json:"expiresInMs"`
}

// WorkerStatus is one worker's view in a Status snapshot.
type WorkerStatus struct {
	Name       string `json:"name"`
	Settled    int    `json:"settled"`
	LastSeenMs int64  `json:"lastSeenMsAgo"`
}

// Status is the /cluster/status observability snapshot.
type Status struct {
	Epoch         int64          `json:"epoch"`
	Queue         int            `json:"queue"`
	Delayed       int            `json:"delayed"`
	Settled       int            `json:"settled"`
	ExpiredLeases int            `json:"expiredLeases"`
	Leases        []LeaseStatus  `json:"leases"`
	Workers       []WorkerStatus `json:"workers"`
	Poisoned      []PoisonReport `json:"poisoned,omitempty"`
}

// Status snapshots the coordinator for observability. Every numeric
// field is read back out of the registry instruments that /metrics
// exposes — the JSON status and a scrape are two views of the same
// counters and can never disagree.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.syncGaugesLocked()
	st := Status{
		Epoch:         c.opts.Epoch,
		Queue:         int(c.met.queueDepth.Value()),
		Delayed:       int(c.met.delayed.Value()),
		Settled:       int(c.met.cellsSettled.Value()),
		ExpiredLeases: int(c.met.expired.Value()),
		Leases:        make([]LeaseStatus, 0, len(c.leases)),
		Workers:       make([]WorkerStatus, 0, len(c.workers)),
		Poisoned:      append([]PoisonReport(nil), c.poisoned...),
	}
	for _, l := range c.leases {
		st.Leases = append(st.Leases, LeaseStatus{
			ID:        l.id,
			Worker:    l.worker,
			Cells:     len(l.cells),
			Renews:    l.renews,
			ExpiresMs: l.deadline.Sub(now).Milliseconds(),
		})
	}
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].ID < st.Leases[j].ID })
	for name, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			Name:       name,
			Settled:    int(w.settledC.Value()),
			LastSeenMs: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Name < st.Workers[j].Name })
	return st
}

// SetClock replaces the coordinator's time source — deterministic tests
// drive expiry by advancing a fake clock and calling Sweep directly.
func (c *Coordinator) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}
