package phy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDefault4ModeShape(t *testing.T) {
	tab := Default4Mode()
	if tab.Len() != 4 {
		t.Fatalf("mode count = %d, want 4", tab.Len())
	}
	wantBps := []float64{250e3, 450e3, 1e6, 2e6}
	for i, m := range tab.Modes() {
		if m.Index != i {
			t.Errorf("mode %d has Index %d", i, m.Index)
		}
		if m.ThroughputBps != wantBps[i] {
			t.Errorf("mode %d throughput = %v, want %v", i, m.ThroughputBps, wantBps[i])
		}
	}
	if tab.Lowest().ThroughputBps != 250e3 || tab.Highest().ThroughputBps != 2e6 {
		t.Error("Lowest/Highest wrong")
	}
}

func TestThresholdsStrictlyIncreasing(t *testing.T) {
	tab := Default4Mode()
	for i := 1; i < tab.Len(); i++ {
		if tab.Mode(i).ThresholdSNRdB <= tab.Mode(i-1).ThresholdSNRdB {
			t.Fatalf("threshold not increasing at class %d", i)
		}
		if tab.Mode(i).ThroughputBps <= tab.Mode(i-1).ThroughputBps {
			t.Fatalf("throughput not increasing at class %d", i)
		}
	}
}

func TestAirtime(t *testing.T) {
	tab := Default4Mode()
	// 2000 bits at 2 Mbps = 1 ms; at 250 kbps = 8 ms.
	if got := tab.Highest().Airtime(2000); got != sim.Millisecond {
		t.Fatalf("airtime at 2 Mbps = %v, want 1 ms", got)
	}
	if got := tab.Lowest().Airtime(2000); got != 8*sim.Millisecond {
		t.Fatalf("airtime at 250 kbps = %v, want 8 ms", got)
	}
}

func TestAirtimePanicsOnBadPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Airtime(0) did not panic")
		}
	}()
	Default4Mode().Highest().Airtime(0)
}

func TestCodedBits(t *testing.T) {
	m := Mode{CodeRate: 0.5, ThroughputBps: 1, Modulation: BPSK}
	if got := m.CodedBits(1000); got != 2000 {
		t.Fatalf("CodedBits(1000) at rate 1/2 = %d, want 2000", got)
	}
	m.CodeRate = 0.75
	if got := m.CodedBits(900); got != 1200 {
		t.Fatalf("CodedBits(900) at rate 3/4 = %d, want 1200", got)
	}
}

func TestQFunction(t *testing.T) {
	// Known values: Q(0)=0.5, Q(1)~0.1587, Q(3)~0.00135.
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.158655},
		{3, 0.001350},
	}
	for _, c := range cases {
		if got := qfunc(c.x); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("Q(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	// Symmetry: Q(-x) = 1 - Q(x).
	if got := qfunc(-1) + qfunc(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("Q(-1)+Q(1) = %v, want 1", got)
	}
}

func TestBERMonotoneInSNR(t *testing.T) {
	for _, m := range Default4Mode().Modes() {
		prev := 1.0
		for snr := -10.0; snr <= 40; snr += 0.5 {
			ber := m.BitErrorRate(snr)
			if ber < 0 || ber > 0.5 {
				t.Fatalf("%s: BER(%v) = %v outside [0, 0.5]", m.Name, snr, ber)
			}
			if ber > prev+1e-15 {
				t.Fatalf("%s: BER increased with SNR at %v dB", m.Name, snr)
			}
			prev = ber
		}
	}
}

// Each mode must meet a respectable BER at its own admission threshold —
// operating a mode where the table allows it must be safe.
func TestBERAcceptableAtThreshold(t *testing.T) {
	for _, m := range Default4Mode().Modes() {
		ber := m.BitErrorRate(m.ThresholdSNRdB)
		if ber > 1e-5 {
			t.Errorf("%s: BER at threshold = %v, want <= 1e-5", m.Name, ber)
		}
	}
}

// Below its threshold by a few dB, a mode should be visibly unreliable for
// 2 Kbit packets — this is what punishes pure LEACH for ignoring the CSI.
func TestPERPunishesBelowThreshold(t *testing.T) {
	m := Default4Mode().Lowest()
	per := m.PacketErrorProb(m.ThresholdSNRdB-4, 2000)
	if per < 0.05 {
		t.Errorf("PER 4 dB below lowest threshold = %v, want noticeable (>= 0.05)", per)
	}
	perAt := m.PacketErrorProb(m.ThresholdSNRdB, 2000)
	if perAt > 0.02 {
		t.Errorf("PER at threshold = %v, want small", perAt)
	}
}

func TestPERBoundsAndMonotone(t *testing.T) {
	m := Default4Mode().Mode(2)
	prev := 1.0
	for snr := -20.0; snr <= 40; snr += 1 {
		per := m.PacketErrorProb(snr, 2000)
		if per < 0 || per > 1 {
			t.Fatalf("PER(%v) = %v outside [0,1]", snr, per)
		}
		if per > prev+1e-12 {
			t.Fatalf("PER increased with SNR at %v", snr)
		}
		prev = per
	}
}

func TestPickMode(t *testing.T) {
	tab := Default4Mode()
	cases := []struct {
		snr    float64
		class  int
		usable bool
	}{
		{-3, 0, false},
		{4.9, 0, false},
		{5, 0, true},
		{7.9, 0, true},
		{8, 1, true},
		{12, 2, true},
		{15.9, 2, true},
		{16, 3, true},
		{30, 3, true},
	}
	for _, c := range cases {
		m, ok := tab.PickMode(c.snr)
		if ok != c.usable {
			t.Errorf("PickMode(%v): usable = %v, want %v", c.snr, ok, c.usable)
		}
		if ok && m.Index != c.class {
			t.Errorf("PickMode(%v) class = %d, want %d", c.snr, m.Index, c.class)
		}
	}
}

// Property: PickMode is monotone — more SNR never selects a slower mode.
func TestPickModeMonotone(t *testing.T) {
	tab := Default4Mode()
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		ml, okl := tab.PickMode(lo)
		mh, okh := tab.PickMode(hi)
		if okl && !okh {
			return false
		}
		if okl && okh {
			return mh.Index >= ml.Index
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTableRejectsBadConfigs(t *testing.T) {
	good := Mode{Name: "a", Modulation: BPSK, CodeRate: 0.5, ThroughputBps: 1e5, ThresholdSNRdB: 3}
	cases := [][]Mode{
		nil, // empty
		{good, {Name: "b", Modulation: BPSK, CodeRate: 0.5, ThroughputBps: 2e5, ThresholdSNRdB: 3}},  // duplicate threshold
		{good, {Name: "b", Modulation: BPSK, CodeRate: 0.5, ThroughputBps: 5e4, ThresholdSNRdB: 10}}, // slower at higher threshold
		{{Name: "z", Modulation: BPSK, CodeRate: 0.5, ThroughputBps: 0, ThresholdSNRdB: 1}},          // zero throughput
		{{Name: "z", Modulation: BPSK, CodeRate: 1.5, ThroughputBps: 1e5, ThresholdSNRdB: 1}},        // bad code rate
	}
	for i, ms := range cases {
		if _, err := NewTable(ms); err == nil {
			t.Errorf("case %d: NewTable accepted invalid modes", i)
		}
	}
}

func TestNewTableSortsByThreshold(t *testing.T) {
	ms := []Mode{
		{Name: "fast", Modulation: QAM16, CodeRate: 0.75, ThroughputBps: 2e6, ThresholdSNRdB: 16},
		{Name: "slow", Modulation: BPSK, CodeRate: 0.5, ThroughputBps: 250e3, ThresholdSNRdB: 5},
	}
	tab, err := NewTable(ms)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Mode(0).Name != "slow" || tab.Mode(1).Name != "fast" {
		t.Fatal("table not sorted ascending by threshold")
	}
}

func TestModulationBits(t *testing.T) {
	if BPSK.BitsPerSymbol() != 1 || QPSK.BitsPerSymbol() != 2 || QAM16.BitsPerSymbol() != 4 {
		t.Fatal("BitsPerSymbol wrong")
	}
	if BPSK.String() != "BPSK" || QAM16.String() != "16-QAM" {
		t.Fatal("modulation names wrong")
	}
}

func TestCodecEnergy(t *testing.T) {
	c := DefaultCodecEnergy()
	low := Default4Mode().Lowest()   // rate 1/2: 2000 redundancy bits per 2000-bit payload
	high := Default4Mode().Highest() // rate 3/4: ~667 redundancy bits
	if e := c.EncodeEnergy(low, 2000); math.Abs(e-2000*c.EncodeJPerRedundantBit) > 1e-18 {
		t.Errorf("encode energy at rate 1/2 = %v", e)
	}
	if c.EncodeEnergy(low, 2000) <= c.EncodeEnergy(high, 2000) {
		t.Error("stronger code should cost more encode energy")
	}
	if c.DecodeEnergy(low, 2000) <= c.EncodeEnergy(low, 2000) {
		t.Error("decoding should cost more than encoding")
	}
}

// Energy-per-bit sanity: sending a packet at a higher class must cost less
// radio energy (shorter airtime at a given radiated power), the core
// premise of the paper.
func TestHigherModeCheaperAirtime(t *testing.T) {
	tab := Default4Mode()
	for i := 1; i < tab.Len(); i++ {
		if tab.Mode(i).Airtime(2000) >= tab.Mode(i-1).Airtime(2000) {
			t.Fatalf("class %d airtime not shorter than class %d", i, i-1)
		}
	}
}

func BenchmarkPickMode(b *testing.B) {
	tab := Default4Mode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = tab.PickMode(float64(i % 30))
	}
}

func BenchmarkPacketErrorProb(b *testing.B) {
	m := Default4Mode().Mode(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.PacketErrorProb(float64(i%25), 2000)
	}
}
