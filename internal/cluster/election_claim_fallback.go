//go:build !unix

package cluster

import (
	"fmt"
	"os"
)

// acquireClaim on platforms without flock falls back to an
// O_CREATE|O_EXCL sidecar with a TTL staleness sweep. A claimer that
// died mid-claim leaves the sidecar behind; sidecars older than the
// TTL are presumed abandoned. The takeover of a stale sidecar goes
// through an atomic rename to a per-process name, so at most one
// contender proceeds per stale sidecar, and a fresh sidecar that
// appeared between the stat and the steal is restored untouched. This
// is best-effort — without a kernel lock the takeover cannot be made
// fully race-free; unix builds use flock instead.
func (l *LeaderLock) acquireClaim() (func(), error) {
	claim := l.Path + ".claim"
	for attempt := 0; ; attempt++ {
		f, err := os.OpenFile(claim, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(claim) }, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		st, serr := os.Stat(claim)
		if serr == nil && l.clock().Sub(st.ModTime()) <= l.ttl() {
			return nil, ErrLockHeld
		}
		if attempt > 0 {
			return nil, ErrLockHeld
		}
		// Steal the stale sidecar atomically: exactly one contender's
		// rename of the abandoned file succeeds; the losers see ENOENT
		// and back off.
		stale := fmt.Sprintf("%s.stale.%d", claim, os.Getpid())
		if os.Rename(claim, stale) != nil {
			return nil, ErrLockHeld
		}
		if st, err := os.Stat(stale); err == nil && l.clock().Sub(st.ModTime()) <= l.ttl() {
			// The file at the claim path was replaced between the stat and
			// the rename — we stole a live claim. Put it back and yield.
			os.Rename(stale, claim)
			return nil, ErrLockHeld
		}
		os.Remove(stale)
	}
}
