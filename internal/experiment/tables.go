package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tone"
)

// TableI regenerates the paper's Table I: the tone pulse patterns that
// encode each data-channel state, with the §III.B duty-cycle argument for
// the tone channel's energy efficiency.
func TableI(_ Options) Report {
	scheme := tone.DefaultScheme()
	tab := Table{Headers: []string{"state", "pulse(ms)", "interval(ms)", "repeat", "tx-duty"}}
	for _, p := range scheme.Patterns() {
		repeat := "until-change"
		if p.Repeat > 0 {
			repeat = fmt.Sprintf("%d", p.Repeat)
		}
		tab.AddRow(
			p.State.String(),
			f2(p.Duration.Millis()),
			f1(p.Interval.Millis()),
			repeat,
			pct(scheme.DutyCycle(p.State)),
		)
	}
	return Report{
		ID:    "table1",
		Title: "Tone-channel pulse intervals identifying channel states (paper Table I)",
		Table: tab,
		Notes: []string{
			"the inter-pulse interval is the information carrier; decoding tolerance " +
				fmt.Sprintf("%.1f ms", scheme.MinDecodeTolerance().Millis()),
			"idle broadcasts keep the cluster head's tone transmitter at a 2% duty cycle, the §III.B energy argument",
		},
	}
}

// TableII regenerates the paper's Table II: the physical simulation
// parameters, as resolved in DESIGN.md §4.
func TableII(opts Options) Report {
	cfg := core.DefaultConfig()
	tab := Table{Headers: []string{"parameter", "value", "source"}}
	row := func(name, value, source string) { tab.AddRow(name, value, source) }
	row("testing field", fmt.Sprintf("%.0f m x %.0f m", cfg.FieldWidth, cfg.FieldHeight), "assumed (scan lost)")
	row("number of nodes", fmt.Sprintf("%d", cfg.Nodes), "paper")
	row("bandwidth (ABICM modes)", "2 Mbps / 1 Mbps / 450 kbps / 250 kbps", "paper")
	row("percentage of CH", pct(cfg.HeadFraction), "paper")
	row("transmit power, data", fmt.Sprintf("%.2f W", cfg.Device.DataTxPower), "paper")
	row("receive power, data", fmt.Sprintf("%.3f W", cfg.Device.DataRxPower), "paper")
	row("sleep power, data", fmt.Sprintf("%.1f uW", cfg.Device.DataSleepPower*1e6), "paper value 3.5, unit resolved")
	row("idle-listen power, data (CH)", fmt.Sprintf("%.0f mW", cfg.Device.DataIdleListenPower*1e3), "assumed (not in paper)")
	row("transmit power, tone", fmt.Sprintf("%.0f mW", cfg.Device.ToneTxPower*1e3), "paper value 92, unit resolved")
	row("receive power, tone", fmt.Sprintf("%.0f uW", cfg.Device.ToneRxPower*1e6), "paper value 36, unit resolved")
	row("packet length", fmt.Sprintf("%d bits", cfg.PacketSizeBits), "paper (2 Kbits)")
	row("sensing delay", fmt.Sprintf("%.0f ms", cfg.MAC.SensingDelay.Millis()), "paper value 8, unit resolved")
	row("contention window", fmt.Sprintf("%d", cfg.MAC.ContentionWindow), "paper")
	row("backoff slot", fmt.Sprintf("%.0f us", float64(cfg.MAC.SlotTime)), "paper value 20, unit resolved to 0.2 ms")
	row("buffer size", fmt.Sprintf("%d packets", cfg.BufferCapacity), "paper")
	row("initial energy", fmt.Sprintf("%.0f J", cfg.InitialEnergyJ), "paper (Fig. 8)")
	row("min/max packets per burst", fmt.Sprintf("%d / %d", cfg.MAC.MinBurst, cfg.MAC.MaxBurst), "paper (3 / 8)")
	row("max retransmissions", fmt.Sprintf("%d", cfg.MAC.MaxRetries), "paper (6)")
	row("Q_th / m (Scheme 1)", fmt.Sprintf("%d / %d", cfg.Adjust.QueueThreshold, cfg.Adjust.SampleEvery), "paper (15 / 5)")
	row("radio startup", fmt.Sprintf("%.0f us", float64(cfg.Device.DataStartupTime)), "assumed (RFM figure, unit lost)")
	row("LEACH round length", fmt.Sprintf("%.0f s", cfg.RoundLength.Seconds()), "assumed (not in paper)")
	row("network-dead fraction", pct(cfg.DeadFraction), "assumed (value lost)")
	row("link budget SNR0 @ 10 m", fmt.Sprintf("%.0f dB", cfg.Channel.ReferenceSNRdB), "calibrated (DESIGN.md)")
	row("path-loss exponent", f1(cfg.Channel.PathLossExponent), "calibrated")
	row("shadowing sigma / block", fmt.Sprintf("%.0f dB / %.0f s", cfg.Channel.ShadowingSigmaDB, cfg.Channel.ShadowingBlock.Seconds()), "paper: 2-5 s macroscopic scale")
	row("max Doppler", fmt.Sprintf("%.1f Hz", cfg.Channel.DopplerHz), "paper: node speed < 1 m/s")
	row("mode thresholds", "5 / 8 / 12 / 16 dB", "assumed (table partially lost)")
	_ = opts
	return Report{
		ID:    "table2",
		Title: "Physical simulation parameters (paper Table II + DESIGN.md resolutions)",
		Table: tab,
	}
}
