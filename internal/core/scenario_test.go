package core

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/mac"
	"repro/internal/queueing"
	"repro/internal/sim"
)

// scenarioConfig builds a tightly controlled 2-node world: one head, one
// member, a static perfect channel (no fading, no shadowing), and no
// background traffic — individual protocol actions become observable and
// exactly countable.
func scenarioConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.FieldWidth, cfg.FieldHeight = 10, 10
	cfg.ArrivalRatePerSecond = 0 // traffic injected manually per test
	cfg.Channel.DopplerHz = 0
	cfg.Channel.ShadowingSigmaDB = 0
	cfg.Channel.ReferenceSNRdB = 30     // static, comfortably above every class
	cfg.HeadFraction = 0.05             // 2 nodes: fallback elects exactly one head
	cfg.RoundLength = 1000 * sim.Second // no re-election during a scenario
	cfg.Horizon = 10 * sim.Second
	return cfg
}

// inject enqueues n packets at the given member as if they had just been
// sensed, waking the node exactly as a real arrival does.
func inject(net *Network, nd *node, n int) {
	now := net.eng.Now()
	for i := 0; i < n; i++ {
		p := queueing.Packet{ID: net.nextPacketID, Source: nd.idx, CreatedAt: now, SizeBits: net.cfg.PacketSizeBits}
		net.nextPacketID++
		net.thr.PacketGenerated()
		if nd.buf.Enqueue(p) {
			nd.adjust.OnArrival(nd.buf.Len())
		}
	}
	if nd.state == mac.SensorSleep && nd.clusterIdx >= 0 &&
		net.cfg.MAC.BurstSize(nd.buf.Len()) > 0 {
		nd.state = mac.SensorSensing
		nd.sensingSince = now
	}
}

// member returns the non-head node after the first round has formed.
func member(net *Network) *node {
	for _, n := range net.nodes {
		if !n.isHead {
			return n
		}
	}
	return nil
}

// A minimum burst of 3 packets on a perfect static channel must be
// delivered completely at the top ABICM class, in one burst, with no
// retries, collisions, or failures.
func TestScenarioSingleBurstDelivery(t *testing.T) {
	cfg := scenarioConfig()
	rec := &eventLog{}
	cfg.Trace = rec.observe
	net := New(cfg)
	net.eng.Schedule(100*sim.Millisecond, func() { inject(net, member(net), 3) })
	res := net.Run()

	if res.Delivered != 3 {
		t.Fatalf("delivered %d, want 3", res.Delivered)
	}
	if res.MAC.BurstsDone != 1 || res.MAC.Attempts != 1 {
		t.Fatalf("bursts %d attempts %d, want 1/1", res.MAC.BurstsDone, res.MAC.Attempts)
	}
	if res.MAC.Collisions != 0 || res.MAC.ChannelFails != 0 || res.DroppedRetry != 0 {
		t.Fatalf("unexpected failures: %+v", res.MAC)
	}
	top := len(res.ModeCounts) - 1
	if res.ModeCounts[top] != 3 {
		t.Fatalf("mode counts %v, want all 3 at top class", res.ModeCounts)
	}
	// The sender must have paid exactly one radio startup.
	startupJ := res.EnergyByCause[energy.DataStartup]
	wantStartup := cfg.Device.StartupEnergy()
	if diff := startupJ - wantStartup; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("startup energy %v, want exactly one startup %v", startupJ, wantStartup)
	}
}

// Below the minimum burst the node must never transmit: two packets sit in
// the buffer forever on an otherwise idle network.
func TestScenarioMinBurstHoldsBack(t *testing.T) {
	cfg := scenarioConfig()
	net := New(cfg)
	net.eng.Schedule(100*sim.Millisecond, func() { inject(net, member(net), 2) })
	res := net.Run()
	if res.Delivered != 0 {
		t.Fatalf("delivered %d with a sub-minimum queue", res.Delivered)
	}
	if res.MAC.Attempts != 0 {
		t.Fatalf("attempts %d, want 0", res.MAC.Attempts)
	}
	if res.Nodes[0].QueueLen+res.Nodes[1].QueueLen != 2 {
		t.Fatal("packets vanished from the buffer")
	}
}

// A queue above MaxBurst is served 8 packets per transmission: 20 packets
// need ceil(20/8) = 3 bursts.
func TestScenarioMaxBurstSplits(t *testing.T) {
	cfg := scenarioConfig()
	net := New(cfg)
	net.eng.Schedule(100*sim.Millisecond, func() { inject(net, member(net), 20) })
	res := net.Run()
	if res.Delivered != 20 {
		t.Fatalf("delivered %d, want 20", res.Delivered)
	}
	if res.MAC.BurstsDone != 3 {
		t.Fatalf("bursts %d, want 3 (8+8+4)", res.MAC.BurstsDone)
	}
}

// On a channel below every mode threshold, a CAEM (Scheme 2) member must
// defer indefinitely and never transmit, while pure LEACH transmits and
// loses packets to the channel.
func TestScenarioHopelessChannel(t *testing.T) {
	base := scenarioConfig()
	base.Channel.ReferenceSNRdB = -5 // far below class 0's 5 dB
	base.Horizon = 30 * sim.Second

	s2cfg := base
	s2cfg.Policy = queueing.PolicyFixedHighest
	net := New(s2cfg)
	net.eng.Schedule(100*sim.Millisecond, func() { inject(net, member(net), 5) })
	res := net.Run()
	if res.MAC.Attempts != 0 {
		t.Fatalf("Scheme 2 transmitted %d times on a hopeless channel", res.MAC.Attempts)
	}
	if res.MAC.DeferralsCSI == 0 {
		t.Fatal("Scheme 2 never recorded a CSI deferral")
	}

	lcfg := base
	lcfg.Policy = queueing.PolicyNone
	net = New(lcfg)
	net.eng.Schedule(100*sim.Millisecond, func() { inject(net, member(net), 5) })
	res = net.Run()
	if res.MAC.Attempts == 0 {
		t.Fatal("pure LEACH never attempted on a hopeless channel")
	}
	if res.MAC.ChannelFails == 0 {
		t.Fatal("pure LEACH saw no channel failures at -5 dB margin")
	}
	if res.DroppedRetry == 0 {
		t.Fatal("retry cap never dropped a packet at sustained failure")
	}
	if res.Delivered != 0 {
		t.Fatalf("pure LEACH delivered %d packets through a -5 dB channel", res.Delivered)
	}
}

// Two members whose queues fill simultaneously must both eventually be
// served — contention resolves via backoff (possibly through a collision).
func TestScenarioTwoContenders(t *testing.T) {
	cfg := scenarioConfig()
	cfg.Nodes = 3
	cfg.HeadFraction = 0.05 // one head, two members
	net := New(cfg)
	net.eng.Schedule(100*sim.Millisecond, func() {
		for _, n := range net.nodes {
			if !n.isHead {
				inject(net, n, 3)
			}
		}
	})
	res := net.Run()
	if res.Delivered != 6 {
		t.Fatalf("delivered %d, want 6 (both contenders served)", res.Delivered)
	}
	for _, n := range res.Nodes {
		if n.QueueLen != 0 {
			t.Fatalf("node %d still queues %d packets", n.Index, n.QueueLen)
		}
	}
}

// The head's receive-side energy must cover exactly the burst airtime at
// the top mode: 3 packets x 1 ms at 0.305 W, within the accrual epsilon of
// the surrounding idle listening.
func TestScenarioHeadReceiveEnergy(t *testing.T) {
	cfg := scenarioConfig()
	net := New(cfg)
	net.eng.Schedule(100*sim.Millisecond, func() { inject(net, member(net), 3) })
	res := net.Run()
	rxJ := res.EnergyByCause[energy.DataRx]
	wantAirtime := 3 * cfg.Modes.Highest().Airtime(cfg.PacketSizeBits).Seconds()
	want := wantAirtime * cfg.Device.DataRxPower
	// The head dwells at Rx power from burst start (including the 500 µs
	// startup lead-in) to burst end, so allow that lead-in as slack.
	slack := (cfg.Device.DataStartupTime.Seconds() + 0.001) * cfg.Device.DataRxPower
	if rxJ < want-1e-9 || rxJ > want+slack {
		t.Fatalf("head rx energy %v J, want [%v, %v]", rxJ, want, want+slack)
	}
}

// eventLog is a minimal trace sink for scenarios.
type eventLog struct {
	events []TraceEvent
}

func (l *eventLog) observe(e TraceEvent) { l.events = append(l.events, e) }

// The trace stream for a single clean burst has the expected structure:
// round → burst-start → 3 deliveries.
func TestScenarioTraceStructure(t *testing.T) {
	cfg := scenarioConfig()
	log := &eventLog{}
	cfg.Trace = log.observe
	net := New(cfg)
	net.eng.Schedule(100*sim.Millisecond, func() { inject(net, member(net), 3) })
	net.Run()

	var kinds []TraceKind
	for _, e := range log.events {
		switch e.Kind {
		case TraceRound, TraceBurstStart, TraceDelivered:
			kinds = append(kinds, e.Kind)
		}
	}
	want := []TraceKind{TraceRound, TraceBurstStart, TraceDelivered, TraceDelivered, TraceDelivered}
	if len(kinds) != len(want) {
		t.Fatalf("trace kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace kinds = %v, want %v", kinds, want)
		}
	}
}
