package caem

import (
	"math"
	"testing"
)

func TestPredictLinkBasics(t *testing.T) {
	cfg := DefaultConfig()
	p, err := PredictLink(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.DistanceM != 20 {
		t.Errorf("distance = %v", p.DistanceM)
	}
	sum := p.BelowAllProb
	for _, o := range p.ModeOccupancy {
		if o < 0 || o > 1 {
			t.Fatalf("occupancy out of range: %v", p.ModeOccupancy)
		}
		sum += o
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("occupancies sum to %v", sum)
	}
	if p.ExpectedAirtimeMs < p.TopClassAirtimeMs {
		t.Fatal("transmit-now airtime below the top-class floor")
	}
	if p.PredictedSaving < 0 || p.PredictedSaving >= 1 {
		t.Fatalf("predicted saving = %v", p.PredictedSaving)
	}
	if p.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestPredictLinkMonotoneInDistance(t *testing.T) {
	cfg := DefaultConfig()
	var prevSNR float64 = math.Inf(1)
	var prevWait float64 = -1
	for _, d := range []float64{10, 20, 40, 80} {
		p, err := PredictLink(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		if p.MeanSNRdB >= prevSNR {
			t.Fatalf("mean SNR did not fall with distance at %v m", d)
		}
		if p.ExpectedWaitTopClassMs < prevWait {
			t.Fatalf("expected wait fell with distance at %v m", d)
		}
		prevSNR, prevWait = p.MeanSNRdB, p.ExpectedWaitTopClassMs
	}
}

func TestPredictLinkRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := PredictLink(cfg, 0); err == nil {
		t.Fatal("accepted zero distance")
	}
	cfg.Nodes = 0
	if _, err := PredictLink(cfg, 10); err == nil {
		t.Fatal("accepted invalid config")
	}
}

// The analytic prediction and a simulation must agree on the *direction*
// and rough size of the saving: the simulated Scheme 2 saving lies below
// the per-link analytic bound but well above zero.
func TestPredictionBoundsSimulation(t *testing.T) {
	cfg := quickConfig()
	cfg.DurationSeconds = 60
	results, err := RunComparison(cfg, PureLEACH, Scheme2)
	if err != nil {
		t.Fatal(err)
	}
	simSaving := 1 - results[1].EnergyPerPacketMilliJ/results[0].EnergyPerPacketMilliJ
	if simSaving <= 0.05 {
		t.Fatalf("simulated saving %.2f suspiciously small", simSaving)
	}
	// Analytic saving at a conservative far-link distance (half the field
	// diagonal): with few clusters on a small field, in-cluster distances
	// reach this scale, and the per-link saving grows with distance, so
	// this bounds the network-level saving from above.
	far := 0.5 * math.Hypot(cfg.FieldWidthM, cfg.FieldHeightM)
	pred, err := PredictLink(cfg, far)
	if err != nil {
		t.Fatal(err)
	}
	if simSaving > pred.PredictedSaving+0.15 {
		t.Fatalf("simulated saving %.2f far exceeds analytic far-link bound %.2f", simSaving, pred.PredictedSaving)
	}
}
