package cluster

import (
	"repro/internal/obs"
)

// Metric families owned by this package. Instrumentation is at lease
// and cell granularity — a handful of instrument updates per lease,
// never per simulation event — so the hot simulation loop stays
// allocation-free.
const (
	metricLeaseClaims    = "caem_lease_claims_total"
	metricLeaseRenews    = "caem_lease_renews_total"
	metricLeaseExpired   = "caem_lease_expired_total"
	metricLeaseReleased  = "caem_lease_released_total"
	metricLeaseCompleted = "caem_lease_completed_total"
	metricCellsSettled   = "caem_cells_settled_total"
	metricCellsRetried   = "caem_cells_retried_total"
	metricCellsPoisoned  = "caem_cells_poisoned_total"
	metricQueueDepth     = "caem_coordinator_queue_depth"
	metricDelayedCells   = "caem_coordinator_delayed_cells"
	metricInflight       = "caem_coordinator_inflight_leases"
	metricBatchCells     = "caem_lease_batch_cells"
	metricWorkerSettled  = "caem_worker_settled_total"

	metricClusterEpoch = "caem_cluster_epoch"
	metricFenced       = "caem_cluster_fenced_total"
	metricTakeovers    = "caem_cluster_takeovers_total"

	metricWorkerCells        = "caem_worker_cells_completed_total"
	metricWorkerFailed       = "caem_worker_cells_failed_total"
	metricWorkerSimSecs      = "caem_worker_simulated_seconds_total"
	metricWorkerPoolRuns     = "caem_worker_pool_runs_total"
	metricWorkerHeartbeat    = "caem_worker_heartbeat_rtt_seconds"
	metricWorkerClaimRetries = "caem_worker_claim_retries_total"
)

// coordMetrics holds the coordinator's instrument handles. Every
// numeric field of a /cluster/status snapshot is read back out of
// these instruments, so the JSON view and the /metrics exposition can
// never disagree.
type coordMetrics struct {
	claims        *obs.Counter
	renews        *obs.Counter
	expired       *obs.Counter
	released      *obs.Counter
	completed     *obs.Counter
	cellsSettled  *obs.Counter
	cellsRetried  *obs.Counter
	cellsPoisoned *obs.Counter
	queueDepth    *obs.Gauge
	delayed       *obs.Gauge
	inflight      *obs.Gauge
	batchCells    *obs.Histogram
	workerSettled *obs.CounterVec
	epoch         *obs.Gauge
	fenced        *obs.Counter
}

func newCoordMetrics(reg *obs.Registry) *coordMetrics {
	return &coordMetrics{
		claims: reg.Counter(metricLeaseClaims,
			"Leases granted to workers."),
		renews: reg.Counter(metricLeaseRenews,
			"Lease heartbeat renewals accepted."),
		expired: reg.Counter(metricLeaseExpired,
			"Leases reclaimed by the expiry sweep after missed heartbeats."),
		released: reg.Counter(metricLeaseReleased,
			"Leases returned early by gracefully shutting-down workers."),
		completed: reg.Counter(metricLeaseCompleted,
			"Leases settled with a full batch of results."),
		cellsSettled: reg.Counter(metricCellsSettled,
			"Cells terminally settled with a persisted result."),
		cellsRetried: reg.Counter(metricCellsRetried,
			"Cell failures scheduled for a backoff retry."),
		cellsPoisoned: reg.Counter(metricCellsPoisoned,
			"Cells poisoned after exhausting their retry budget."),
		queueDepth: reg.Gauge(metricQueueDepth,
			"Cells on the ready queue awaiting a lease."),
		delayed: reg.Gauge(metricDelayedCells,
			"Failed cells waiting out their retry backoff."),
		inflight: reg.Gauge(metricInflight,
			"Leases currently outstanding to workers."),
		batchCells: reg.Histogram(metricBatchCells,
			"Cells per granted lease — the guided self-scheduling batch size.",
			obs.SizeBuckets),
		workerSettled: reg.CounterVec(metricWorkerSettled,
			"Cells settled per worker — the per-worker throughput series.",
			"worker"),
		epoch: reg.Gauge(metricClusterEpoch,
			"Leadership epoch this coordinator was elected at."),
		fenced: reg.Counter(metricFenced,
			"Operations rejected for carrying a dead leadership epoch."),
	}
}

// TakeoverCounter returns the takeovers counter on reg — incremented by
// a standby each time it assumes leadership. Exposed as a helper (the
// obs registry is register-or-find, so callers share one instrument)
// because takeovers happen outside any coordinator's lifetime.
func TakeoverCounter(reg *obs.Registry) *obs.Counter {
	return reg.Counter(metricTakeovers,
		"Leadership takeovers completed by a standby coordinator.")
}

// workerMetrics holds one worker's instrument handles, pre-bound to
// its worker label so hot-path updates are label-lookup-free.
type workerMetrics struct {
	cells        *obs.Counter
	failed       *obs.Counter
	simSecs      *obs.Counter
	poolRuns     *obs.Counter
	hbRTT        *obs.Histogram
	claimRetries *obs.Counter
}

func newWorkerMetrics(reg *obs.Registry, worker string) *workerMetrics {
	return &workerMetrics{
		cells: reg.CounterVec(metricWorkerCells,
			"Cells executed to a result by each worker.", "worker").With(worker),
		failed: reg.CounterVec(metricWorkerFailed,
			"Cells that reported a failure on each worker.", "worker").With(worker),
		simSecs: reg.CounterVec(metricWorkerSimSecs,
			"Simulated seconds completed by each worker; rate() gives simulated-seconds/sec throughput.",
			"worker").With(worker),
		poolRuns: reg.CounterVec(metricWorkerPoolRuns,
			"Pooled simulation-context runs (context resets) per worker.", "worker").With(worker),
		hbRTT: reg.Histogram(metricWorkerHeartbeat,
			"Round-trip time of lease heartbeat renewals in seconds.",
			obs.LatencyBuckets),
		claimRetries: reg.CounterVec(metricWorkerClaimRetries,
			"Claim attempts that failed or found the coordinator unavailable, per worker.",
			"worker").With(worker),
	}
}

// RegisterMetrics registers every metric family this package can emit
// on reg without needing a live coordinator or worker — the metric
// catalog surface used by the obs-check lint.
func RegisterMetrics(reg *obs.Registry) {
	newCoordMetrics(reg)
	newWorkerMetrics(reg, "catalog")
	TakeoverCounter(reg)
	obs.RegisterHTTPMetrics(reg)
}
