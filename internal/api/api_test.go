package api

import (
	"encoding/base64"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	qh := QueryHash("scenario-a", "leach", "meanDelayMs")
	tok := EncodeCursor(42, qh)
	if strings.ContainsAny(tok, "+/=") {
		t.Fatalf("token %q is not base64url-without-padding", tok)
	}
	c, err := DecodeCursor(tok, qh)
	if err != nil {
		t.Fatal(err)
	}
	if c.Off != 42 || c.Q != qh || c.V != cursorVersion {
		t.Fatalf("decoded cursor = %+v", c)
	}
}

func TestCursorRejectsForeignQuery(t *testing.T) {
	tok := EncodeCursor(10, QueryHash("a"))
	if _, err := DecodeCursor(tok, QueryHash("b")); err == nil {
		t.Fatal("cursor minted under one query decoded under another")
	}
}

// rawToken hand-builds a token from an arbitrary cursor, bypassing
// EncodeCursor's invariants.
func rawToken(c Cursor) string {
	blob, _ := json.Marshal(c)
	return base64.RawURLEncoding.EncodeToString(blob)
}

func TestCursorRejectsGarbage(t *testing.T) {
	for name, tok := range map[string]string{
		"not base64":      "!!!!",
		"not json":        base64.RawURLEncoding.EncodeToString([]byte("{")),
		"negative offset": rawToken(Cursor{V: cursorVersion, Off: -1}),
		"future version":  rawToken(Cursor{V: 99, Off: 0}),
	} {
		if _, err := DecodeCursor(tok, ""); err == nil {
			t.Errorf("%s: token %q decoded without error", name, tok)
		}
	}
}

func TestQueryHashStable(t *testing.T) {
	if QueryHash("a", "b") == QueryHash("ab") {
		t.Fatal("hash does not separate parts")
	}
	if QueryHash("a", "b") != QueryHash("a", "b") {
		t.Fatal("hash is not deterministic")
	}
	if len(QueryHash()) != 12 {
		t.Fatalf("hash length = %d, want 12", len(QueryHash()))
	}
}

func TestWriteError(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, 404, CodeNotFound, `no campaign "x"`, map[string]string{"id": "x"})
	if rec.Code != 404 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var body struct {
		Error Error `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != CodeNotFound || body.Error.Details["id"] != "x" {
		t.Fatalf("envelope = %+v", body.Error)
	}
}

func TestRedirectV1PreservesQuery(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/campaigns/abc/results?protocol=leach&top=3", nil)
	RedirectV1(rec, req)
	if rec.Code != 301 {
		t.Fatalf("status = %d, want 301", rec.Code)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/campaigns/abc/results?protocol=leach&top=3" {
		t.Fatalf("Location = %q", loc)
	}
}
