// Package scenario is the declarative layer of the dynamic-world engine:
// a JSON-serializable Spec describes per-node heterogeneity and a timeline
// of world events — node failures and revivals, battery service, traffic
// shifts and bursts, channel-weather changes — layered on top of a base
// core.Config. Compile lowers a Spec onto a concrete configuration by
// materializing per-node overrides and translating the timeline into
// core.WorldEvent hooks executed by the discrete-event engine, so a
// scenario run is exactly as deterministic as a static one.
//
// The paper evaluates CAEM only on a static world (100 immobile nodes,
// constant Poisson load, no failures); scenarios turn the simulator into a
// general experimentation platform for the conditions the protocol was
// actually designed to adapt to. The curated library under scenarios/
// holds named Specs; the public entry points live in package caem
// (caem.RunScenario, caem.RunCampaign).
//
// # Schema
//
// A Spec has four parts: a name, an optional partial-configuration
// override object (opaque here; resolved by caem.ScenarioConfig), a list
// of NodeRule heterogeneity rules applied at t = 0, and a Timeline of
// Events in four categories — node lifecycle (kill, revive), energy
// (topup), traffic (set-rate, scale-rate, ramp-rate, burst), and channel
// (channel). Selectors pick the affected nodes (all, explicit indices,
// or strided ranges). Load rejects unknown fields and Validate enforces
// per-type required fields, so schema typos fail loudly instead of
// silently corrupting a study. The complete JSON reference with one
// worked example per category is scenarios/SPEC.md.
package scenario
