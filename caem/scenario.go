package caem

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/scenarios"
)

// Scenario is a declarative dynamic-world specification: per-node
// heterogeneity rules plus a timeline of world events (node failures and
// revivals, battery service, traffic shifts and bursts, channel-weather
// changes) layered over a base Config. Scenarios are JSON-serializable;
// the curated library under scenarios/ ships with the binary (see
// LibraryScenarios) and cmd/caem-sim runs both library and on-disk specs
// via -scenario.
//
// A scenario run is exactly as deterministic as a static one: the
// timeline compiles into discrete-event hooks scheduled before the first
// protocol event, so equal (Scenario, Config) pairs give bit-identical
// results at any worker count.
type Scenario = scenario.Spec

// Scenario building blocks, re-exported so callers outside this module
// (which cannot import internal/scenario) can construct Scenario values
// in code as well as load them from JSON.
type (
	// ScenarioEvent is one timeline entry of a Scenario.
	ScenarioEvent = scenario.Event
	// ScenarioEventType names a timeline event kind.
	ScenarioEventType = scenario.EventType
	// ScenarioNodeRule applies per-node heterogeneity at t = 0.
	ScenarioNodeRule = scenario.NodeRule
	// ScenarioSelector picks the nodes an event or rule affects.
	ScenarioSelector = scenario.Selector
	// ChannelShift is the parameter delta of an EventChannel.
	ChannelShift = scenario.ChannelShift
)

// ScenarioRegion is an axis-aligned rectangle in field coordinates,
// used by move (scatter area) and interference (burst footprint) events.
type ScenarioRegion = scenario.Region

// Timeline event kinds (see the ScenarioEventType constants of
// internal/scenario for semantics): node lifecycle (EventKill,
// EventRevive), energy (EventTopUp), traffic (EventSetRate,
// EventScaleRate, EventRampRate, EventBurst), channel (EventChannel),
// mobility (EventMove), interference (EventInterference), and sink
// (EventSinkDown, EventSinkUp).
const (
	EventKill         = scenario.EventKill
	EventRevive       = scenario.EventRevive
	EventTopUp        = scenario.EventTopUp
	EventSetRate      = scenario.EventSetRate
	EventScaleRate    = scenario.EventScaleRate
	EventRampRate     = scenario.EventRampRate
	EventBurst        = scenario.EventBurst
	EventChannel      = scenario.EventChannel
	EventMove         = scenario.EventMove
	EventInterference = scenario.EventInterference
	EventSinkDown     = scenario.EventSinkDown
	EventSinkUp       = scenario.EventSinkUp
)

// LoadScenario decodes and validates a scenario spec from JSON. Unknown
// fields are rejected so schema typos fail loudly.
func LoadScenario(r io.Reader) (Scenario, error) {
	return scenario.Load(r)
}

// LoadScenarioFile loads a scenario spec from a JSON file.
func LoadScenarioFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("caem: %w", err)
	}
	defer f.Close()
	return LoadScenario(f)
}

// LibraryScenarios returns the curated scenario library embedded in the
// binary, sorted by file name.
func LibraryScenarios() ([]Scenario, error) {
	files := scenarios.Files()
	out := make([]Scenario, 0, len(files))
	for _, name := range files {
		blob, err := scenarios.FS.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("caem: library scenario %s: %w", name, err)
		}
		sc, err := LoadScenario(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("caem: library scenario %s: %w", name, err)
		}
		out = append(out, sc)
	}
	return out, nil
}

// FindScenario returns the library scenario with the given name.
func FindScenario(name string) (Scenario, error) {
	lib, err := LibraryScenarios()
	if err != nil {
		return Scenario{}, err
	}
	for _, sc := range lib {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("caem: no library scenario named %q (have %d; see -list-scenarios)", name, len(lib))
}

// ScenarioConfig resolves the scenario's embedded config overrides over
// the package defaults: the spec's "config" object is a partial Config in
// the same JSON schema, and absent fields keep their DefaultConfig
// values. Callers typically apply their own overrides (CLI flags, sweep
// axes) on the returned Config before RunScenario.
func ScenarioConfig(sc Scenario) (Config, error) {
	cfg := DefaultConfig()
	if len(sc.Config) == 0 {
		return cfg, nil
	}
	dec := json.NewDecoder(bytes.NewReader(sc.Config))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("caem: scenario %q config overrides: %w", sc.Name, err)
	}
	return cfg, nil
}

// RunScenario executes one simulation of cfg under the scenario's node
// rules and timeline. The scenario's embedded config overrides are NOT
// applied here — resolve them explicitly with ScenarioConfig so the
// caller controls the override order.
func RunScenario(sc Scenario, cfg Config) (Result, error) {
	return runScenarioPooled(nil, sc, cfg)
}

// runScenarioPooled is RunScenario on a resident context pool (nil for a
// one-shot context); RunCampaign routes every grid cell through here.
func runScenarioPooled(p *runner.Pool, sc Scenario, cfg Config) (Result, error) {
	simCfg, err := cfg.simConfig()
	if err != nil {
		return Result{}, err
	}
	if err := scenario.Compile(sc, &simCfg); err != nil {
		return Result{}, fmt.Errorf("caem: %w", err)
	}
	return runSim(p, cfg, simCfg)
}

// CampaignCell is one grid point of a campaign: which scenario, protocol,
// and seed produced the Result.
type CampaignCell struct {
	Scenario string
	Protocol Protocol
	Seed     uint64
	Result   Result
	// Restored marks a cell whose Result was loaded from a CampaignStore
	// instead of freshly simulated (see RunCampaignWith): the headline
	// metrics are exact, but the bulky per-run detail (time series,
	// per-node outcomes, round reports, energy breakdown) is absent.
	Restored bool
}

// RunCampaign expands the scenario × protocol × seed grid over the base
// configuration and executes every cell through the worker pool
// (base.Workers; 0 = one per CPU, 1 = serial). Cells come back in
// submission order — scenario-major, then protocol, then seed — and are
// bit-identical for every worker count, so a campaign is a reproducible
// experiment artifact. Empty protocols defaults to Protocols(); empty
// seeds defaults to {base.Seed}. Tracing is incompatible with campaigns
// (one stream per run); run cells individually to trace them.
//
// RunCampaignWith adds a persistent store sink and checkpoint/resume on
// top of the same grid semantics.
func RunCampaign(base Config, scs []Scenario, protocols []Protocol, seeds []uint64) ([]CampaignCell, error) {
	return RunCampaignWith(base, scs, protocols, seeds, CampaignOptions{})
}
