// Command caem-sim runs one CAEM simulation and prints its summary.
//
// Usage:
//
//	caem-sim -protocol scheme1 -load 5 -duration 600 -nodes 100 -seed 1
//	caem-sim -list-scenarios
//	caem-sim -scenario node-churn
//	caem-sim -scenario my-world.json -protocol all -seeds 3
//	caem-sim -scenario node-churn -protocol all -seeds 5 -store out/mystore
//	caem-sim -scenario node-churn -protocol all -seeds 5 -store out/mystore -resume
//	caem-sim -list-families
//	caem-sim -gen mixed:8:42 -protocol all -seeds 3 -store out/sweep
//
// Protocols: leach (pure LEACH baseline), scheme1 (CAEM with adaptive
// threshold), scheme2 (CAEM with fixed highest threshold); "all" (with
// -scenario or -gen) runs the full protocol grid as a campaign.
//
// Scenarios are declarative dynamic-world specs (node churn, traffic
// ramps and bursts, channel weather, mobility, interference, sink
// outages, battery service) layered over the configuration; -scenario
// accepts a curated library name or a path to a JSON spec file. A
// scenario file's embedded config overrides apply first; explicitly
// passed flags override the scenario.
//
// -gen family:count[:seed] expands a preset generator family (see
// -list-families) into count deterministic scenarios and sweeps them as
// a campaign. Generation is a pure function of (family, index, seed):
// the same spelling always reproduces byte-identical specs, so a
// generated campaign persists, halts, and resumes through -store
// exactly like a curated one.
//
// Campaign persistence: -store writes every completed cell to an
// append-only results store as it finishes, and -resume skips cells the
// store already holds (matched by a content hash of the full cell
// configuration, so only bit-identical reruns are reused). A resumed
// campaign prints byte-identical output to an uninterrupted one.
// -halt-after N stops the campaign at a checkpoint after N fresh cells
// — the deterministic stand-in for a kill — leaving a store that
// -resume completes.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"repro/caem"
	"repro/internal/obs"
)

// log is the process-wide diagnostic logger. Simulation results print
// to stdout via fmt (the product output, byte-compared by the resume
// gate); everything diagnostic goes through log on stderr.
var log *slog.Logger

func main() {
	var (
		protocol = flag.String("protocol", "scheme1", "protocol: leach | scheme1 | scheme2, or all (campaign over every protocol; needs -scenario)")
		load     = flag.Float64("load", 5, "per-node traffic load, packets/second")
		duration = flag.Float64("duration", 600, "simulated seconds")
		nodes    = flag.Int("nodes", 100, "number of sensor nodes")
		seed     = flag.Uint64("seed", 1, "master random seed")
		energy   = flag.Float64("energy", 10, "initial battery energy, Joules")
		field    = flag.Float64("field", 100, "square field side, meters")
		buffer   = flag.Int("buffer", 50, "buffer capacity in packets (0 = unbounded)")
		stopDead = flag.Bool("stop-when-dead", false, "stop at network death (80% exhausted)")
		perNode  = flag.Bool("per-node", false, "print per-node outcomes")
		traceOut = flag.String("trace", "", "write the protocol event stream as CSV to this file")
		seeds    = flag.Int("seeds", 1, "number of replicate runs at consecutive seeds; >1 prints per-seed summaries plus a mean/sd aggregate")
		workers  = flag.Int("workers", 0, "concurrent replicate runs (0 = one per CPU, 1 = serial)")

		scenarioName  = flag.String("scenario", "", "dynamic-world scenario: a library name (see -list-scenarios) or a JSON spec file path")
		listScenarios = flag.Bool("list-scenarios", false, "list the curated scenario library and exit")
		genSpec       = flag.String("gen", "", "generate scenarios family:count[:seed] and sweep them as a campaign (see -list-families; seed defaults to 1)")
		listFamilies  = flag.Bool("list-families", false, "list the preset scenario-generator families and exit")

		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
		verbose   = flag.Bool("v", false, "enable debug logging")

		storeDir  = flag.String("store", "", "persist campaign cells to this results-store directory (enables campaign mode with -scenario)")
		resume    = flag.Bool("resume", false, "skip cells already present in -store (checkpoint/resume; output is byte-identical to an uninterrupted run)")
		haltAfter = flag.Int("halt-after", 0, "checkpoint: stop the campaign after N freshly executed cells (requires -store; resume later with -resume)")
	)
	flag.Parse()

	var lerr error
	if log, lerr = obs.NewLogger(os.Stderr, *logFormat, *verbose); lerr != nil {
		fmt.Fprintf(os.Stderr, "caem-sim: %v\n", lerr)
		os.Exit(2)
	}

	if *listScenarios {
		printScenarioLibrary()
		return
	}
	if *listFamilies {
		printGeneratorFamilies()
		return
	}

	// Which flags the user actually set: a scenario's embedded config
	// overrides must not be clobbered by flag defaults.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	allProtocols := strings.EqualFold(*protocol, "all")
	var proto caem.Protocol
	if !allProtocols {
		var err error
		if proto, err = caem.ParseProtocol(*protocol); err != nil {
			log.Error("bad protocol", "error", err.Error())
			os.Exit(2)
		}
	}

	var (
		scs         []caem.Scenario
		hasScenario bool
	)
	cfg := caem.DefaultConfig()
	switch {
	case *scenarioName != "" && *genSpec != "":
		log.Error("-scenario and -gen are mutually exclusive")
		os.Exit(2)
	case *scenarioName != "":
		sc, err := loadScenario(*scenarioName)
		if err != nil {
			log.Error("loading scenario failed", "scenario", *scenarioName, "error", err.Error())
			os.Exit(2)
		}
		scs = []caem.Scenario{sc}
	case *genSpec != "":
		var err error
		if scs, err = caem.ParseGenerate(*genSpec); err != nil {
			log.Error("generating scenarios failed", "gen", *genSpec, "error", err.Error())
			os.Exit(2)
		}
	}
	if len(scs) > 0 {
		// Every scenario of a generated sweep embeds the same family
		// topology, so the first spec resolves the base config for all.
		hasScenario = true
		var err error
		if cfg, err = caem.ScenarioConfig(scs[0]); err != nil {
			log.Error("resolving scenario config failed", "scenario", scs[0].Name, "error", err.Error())
			os.Exit(2)
		}
	}
	if allProtocols && !hasScenario {
		log.Error("-protocol all needs -scenario or -gen (campaign mode)")
		os.Exit(2)
	}

	if !allProtocols && (set["protocol"] || !hasScenario) {
		cfg.Protocol = proto
	}
	if set["load"] || !hasScenario {
		cfg.TrafficLoad = *load
	}
	if set["duration"] || !hasScenario {
		cfg.DurationSeconds = *duration
	}
	if set["nodes"] || !hasScenario {
		cfg.Nodes = *nodes
	}
	if set["seed"] || !hasScenario {
		cfg.Seed = *seed
	}
	if set["energy"] || !hasScenario {
		cfg.InitialEnergyJ = *energy
	}
	if set["field"] || !hasScenario {
		cfg.FieldWidthM, cfg.FieldHeightM = *field, *field
	}
	if set["buffer"] || !hasScenario {
		cfg.BufferCapacity = *buffer
	}
	if set["stop-when-dead"] || !hasScenario {
		cfg.StopWhenNetworkDead = *stopDead
	}

	if (*resume || *haltAfter > 0) && *storeDir == "" {
		log.Error("-resume and -halt-after need -store")
		os.Exit(2)
	}
	if *storeDir != "" && !hasScenario {
		log.Error("-store needs -scenario or -gen (campaign mode)")
		os.Exit(2)
	}

	// Generated sweeps are always campaigns: -gen exists to run grids.
	campaign := hasScenario && (allProtocols || *seeds > 1 || *storeDir != "" || len(scs) > 1 || *genSpec != "")

	// Reject incompatible replication flags before touching the trace
	// file: os.Create truncates, and a rejected invocation must not
	// destroy an existing trace.
	if *seeds > 1 || campaign {
		if *traceOut != "" {
			log.Error("-trace is incompatible with replicate/campaign runs (one trace stream per run)")
			os.Exit(2)
		}
		if *perNode {
			log.Error("-per-node is incompatible with replicate/campaign runs; inspect one run at a time")
			os.Exit(2)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Error("creating trace file failed", "path", *traceOut, "error", err.Error())
			os.Exit(1)
		}
		defer f.Close()
		w := bufio.NewWriterSize(f, 1<<20)
		defer w.Flush()
		cfg.TraceCSV = w
	}

	if err := cfg.Validate(); err != nil {
		log.Error("invalid configuration", "error", err.Error())
		os.Exit(2)
	}

	switch {
	case campaign:
		runCampaign(scs, cfg, allProtocols, cfg.Seed, *seeds, *workers, *storeDir, *resume, *haltAfter)
	case *seeds > 1:
		runReplicates(cfg, cfg.Seed, *seeds, *workers)
	case hasScenario:
		sc := scs[0]
		fmt.Printf("scenario          %s (%d timeline events)\n", sc.Name, sc.EventCount())
		res, err := caem.RunScenario(sc, cfg)
		if err != nil {
			log.Error("scenario run failed", "scenario", sc.Name, "error", err.Error())
			os.Exit(1)
		}
		printRun(res, *perNode)
	default:
		res, err := caem.Run(cfg)
		if err != nil {
			log.Error("run failed", "error", err.Error())
			os.Exit(1)
		}
		printRun(res, *perNode)
	}
}

// loadScenario resolves the -scenario argument: an existing file path is
// loaded from disk, anything else is looked up in the embedded library.
func loadScenario(name string) (caem.Scenario, error) {
	if _, err := os.Stat(name); err == nil {
		return caem.LoadScenarioFile(name)
	}
	if strings.HasSuffix(name, ".json") {
		return caem.Scenario{}, fmt.Errorf("scenario file %s not found", name)
	}
	return caem.FindScenario(name)
}

func printScenarioLibrary() {
	lib, err := caem.LibraryScenarios()
	if err != nil {
		log.Error("loading scenario library failed", "error", err.Error())
		os.Exit(1)
	}
	fmt.Printf("%-24s %-7s %s\n", "name", "events", "description")
	for _, sc := range lib {
		fmt.Printf("%-24s %-7d %s\n", sc.Name, sc.EventCount(), sc.Description)
	}
}

func printGeneratorFamilies() {
	fmt.Printf("%-20s %s\n", "family", "description")
	for _, f := range caem.GeneratorFamilies() {
		fmt.Printf("%-20s %s\n", f.Name, f.Description)
	}
}

func printRun(res caem.Result, perNode bool) {
	fmt.Print(res.Summary())
	if perNode {
		fmt.Println("\nnode  remaining(J)  consumed(J)  delivered  queue  status")
		for _, n := range res.Nodes {
			status := "alive"
			if n.Dead {
				status = fmt.Sprintf("died@%.1fs", n.DiedAtSeconds)
			}
			fmt.Printf("%4d  %11.3f  %10.3f  %9d  %5d  %s\n",
				n.Index, n.RemainingJ, n.ConsumedJ, n.DeliveredCount, n.QueueLen, status)
		}
	}
}

// runCampaign expands the scenario × protocol × seed grid and prints one
// row per cell plus per-(scenario, protocol) aggregates. With a store
// directory the campaign persists cells as they complete (and, with
// resume, restores already-stored cells instead of re-running them); a
// halt-after checkpoint stops early with the completed prefix safely on
// disk.
func runCampaign(scs []caem.Scenario, cfg caem.Config, allProtocols bool, firstSeed uint64, nSeeds, workers int, storeDir string, resume bool, haltAfter int) {
	protocols := []caem.Protocol{cfg.Protocol}
	if allProtocols {
		protocols = caem.Protocols()
	}
	seedList := make([]uint64, nSeeds)
	for i := range seedList {
		seedList[i] = firstSeed + uint64(i)
	}
	cfg.Workers = workers

	opts := caem.CampaignOptions{Resume: resume, MaxRuns: haltAfter, Campaign: "caem-sim"}
	if storeDir != "" {
		st, err := caem.OpenStore(storeDir)
		if err != nil {
			log.Error("opening store failed", "store", storeDir, "error", err.Error())
			os.Exit(1)
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Error("closing store failed", "error", err.Error())
			}
		}()
		if n := st.RecoveredBytes(); n > 0 {
			log.Warn("store recovered from a torn tail", "dropped_bytes", n)
		}
		opts.Store = st
	}
	cells, err := caem.RunCampaignWith(cfg, scs, protocols, seedList, opts)
	if errors.Is(err, caem.ErrCampaignHalted) {
		log.Info("campaign checkpointed; continue with -resume",
			"stored", len(cells), "total", len(scs)*len(protocols)*nSeeds, "store", storeDir)
		return
	}
	if err != nil {
		log.Error("campaign failed", "error", err.Error())
		os.Exit(1)
	}

	switch len(scs) {
	case 1:
		fmt.Printf("campaign: scenario %s, %d protocol(s) x %d seed(s)\n\n", scs[0].Name, len(protocols), len(seedList))
	default:
		fmt.Printf("campaign: %d scenario(s) x %d protocol(s) x %d seed(s)\n\n", len(scs), len(protocols), len(seedList))
	}
	// Widen the scenario column to the longest name in the sweep.
	scW := 8
	for _, sc := range scs {
		if len(sc.Name) > scW {
			scW = len(sc.Name)
		}
	}
	if len(seedList) > 1 {
		// Replicated campaigns publish the statistical summary — one row
		// per (scenario, protocol) cell group, mean ± 95% CI — not the
		// raw per-seed rows.
		fmt.Printf("%-*s  protocol      seeds  consumed(J)      delivery(%%)    delay(ms)      energy/pkt(mJ)\n", scW, "scenario")
		for _, a := range caem.AggregateCampaign(cells) {
			fmt.Printf("%-*s  %-12s  %5d  %-15s  %-13s  %-13s  %s\n",
				scW, a.Scenario, a.Protocol, a.Seeds,
				a.ConsumedJ.Format(2),
				a.DeliveryRate.Scaled(100).Format(1),
				a.MeanDelayMs.Format(1),
				a.EnergyPerPacketMilliJ.Format(3))
		}
		return
	}
	fmt.Printf("%-*s  protocol      seed  consumed(J)  delivered  delivery  delay(ms)  alive\n", scW, "scenario")
	for _, c := range cells {
		fmt.Printf("%-*s  %-12s  %4d  %11.2f  %9d  %7.1f%%  %9.1f  %5d\n",
			scW, c.Scenario, c.Protocol, c.Seed, c.Result.TotalConsumedJ, c.Result.Delivered,
			100*c.Result.DeliveryRate, c.Result.MeanDelayMs, c.Result.AliveAtEnd)
	}
}

// runReplicates fans the same configuration across consecutive seeds in
// parallel and prints per-seed summaries plus a mean/sd aggregate of the
// headline metrics.
func runReplicates(cfg caem.Config, firstSeed uint64, n, workers int) {
	seedList := make([]uint64, n)
	for i := range seedList {
		seedList[i] = firstSeed + uint64(i)
	}
	cfg.Workers = workers
	results, err := caem.RunSeeds(cfg, seedList)
	if err != nil {
		log.Error("replicate runs failed", "error", err.Error())
		os.Exit(1)
	}

	fmt.Printf("%s, %d replicates (seeds %d..%d)\n\n", cfg.Protocol, n, seedList[0], seedList[n-1])
	fmt.Println("seed  consumed(J)  delivered  delivery  energy/pkt(mJ)  delay(ms)  lifetime(s)")
	for i, r := range results {
		lifetime := "-"
		if r.NetworkDead {
			lifetime = fmt.Sprintf("%.1f", r.NetworkLifetimeSeconds)
		}
		fmt.Printf("%4d  %11.2f  %9d  %7.1f%%  %14.3f  %9.1f  %11s\n",
			seedList[i], r.TotalConsumedJ, r.Delivered, 100*r.DeliveryRate,
			r.EnergyPerPacketMilliJ, r.MeanDelayMs, lifetime)
	}

	fmt.Println()
	for _, m := range []struct {
		name string
		pick func(caem.Result) float64
	}{
		{"consumed energy (J)", func(r caem.Result) float64 { return r.TotalConsumedJ }},
		{"delivery rate", func(r caem.Result) float64 { return r.DeliveryRate }},
		{"energy per packet (mJ)", func(r caem.Result) float64 { return r.EnergyPerPacketMilliJ }},
		{"mean delay (ms)", func(r caem.Result) float64 { return r.MeanDelayMs }},
		{"p95 delay (ms)", func(r caem.Result) float64 { return r.P95DelayMs }},
	} {
		vals := make([]float64, len(results))
		for i, r := range results {
			vals[i] = m.pick(r)
		}
		a := caem.AggregateOf(vals...)
		fmt.Printf("%-24s mean %10.3f  ±%.3f (95%% CI, n=%d)  sd %8.3f\n", m.name, a.Mean, a.CI95, a.N, a.SD)
	}
}
