// Environment monitoring: the paper's motivating deployment — sensors
// scattered over a forest, battery-powered, expected to last as long as
// possible while streaming observations to cluster heads.
//
// This example compares all three protocols on identical topology, traffic
// and channel realizations (same seed), then reports the trade-off the
// paper's conclusion describes: energy/lifetime vs communication quality.
//
//	go run ./examples/envmonitor
package main

import (
	"fmt"
	"log"

	"repro/caem"
)

func main() {
	cfg := caem.DefaultConfig()
	cfg.Nodes = 80
	cfg.FieldWidthM, cfg.FieldHeightM = 120, 120 // sparse forest plot
	cfg.TrafficLoad = 3                          // slow periodic observations
	cfg.DurationSeconds = 3000
	cfg.StopWhenNetworkDead = true // run each protocol to network death
	cfg.Seed = 7

	fmt.Println("environment monitoring: 80 nodes on 120 m x 120 m, 3 pkt/s")
	fmt.Println()

	results, err := caem.RunComparison(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %12s %12s %12s %10s %12s\n",
		"protocol", "lifetime(s)", "energy/pkt", "delay(ms)", "delivery", "queue-sd")
	var leachLifetime float64
	for i, r := range results {
		lifetime := "-"
		if r.NetworkDead {
			lifetime = fmt.Sprintf("%.0f", r.NetworkLifetimeSeconds)
			if i == 0 {
				leachLifetime = r.NetworkLifetimeSeconds
			}
		}
		fmt.Printf("%-14v %12s %9.3f mJ %12.1f %9.1f%% %12.2f\n",
			r.Protocol, lifetime, r.EnergyPerPacketMilliJ, r.MeanDelayMs,
			100*r.DeliveryRate, r.QueueStdDev)
	}

	fmt.Println()
	for _, r := range results[1:] {
		if r.NetworkDead && leachLifetime > 0 {
			fmt.Printf("%v extends the monitoring lifetime by %+.0f%% over pure LEACH\n",
				r.Protocol, 100*(r.NetworkLifetimeSeconds/leachLifetime-1))
		}
	}
	fmt.Println("\nthe trade-off (paper §V): Scheme 2 maximizes lifetime but starves")
	fmt.Println("poor-channel sensors (worst delay/fairness); Scheme 1 balances both.")
}
