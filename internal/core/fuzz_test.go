package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/sim"
)

// randomConfig draws a small but structurally diverse configuration: any
// protocol, loads spanning idle to saturated, tiny to generous batteries,
// harsh to benign channels, degenerate burst rules, optional forwarding
// and CSI noise. The draw is deterministic in i.
func randomConfig(r *rng.Stream, i int) Config {
	cfg := DefaultConfig()
	cfg.Seed = uint64(1000 + i)
	cfg.Nodes = 3 + r.Intn(22)
	side := 20 + r.Float64()*80
	cfg.FieldWidth, cfg.FieldHeight = side, side
	cfg.Policy = []queueing.ThresholdPolicy{
		queueing.PolicyNone, queueing.PolicyAdaptive, queueing.PolicyFixedHighest,
	}[r.Intn(3)]
	cfg.ArrivalRatePerSecond = []float64{0, 0.5, 2, 5, 15, 40}[r.Intn(6)]
	cfg.BufferCapacity = []int{0, 1, 5, 50}[r.Intn(4)]
	cfg.InitialEnergyJ = []float64{0.05, 0.5, 10}[r.Intn(3)]
	cfg.RoundLength = sim.Time(2+r.Intn(20)) * sim.Second
	cfg.HeadFraction = []float64{0.05, 0.2, 0.5}[r.Intn(3)]
	cfg.Horizon = sim.Time(20+r.Intn(40)) * sim.Second
	cfg.SampleInterval = sim.Time(1+r.Intn(5)) * sim.Second
	cfg.Channel.ReferenceSNRdB = 15 + r.Float64()*20
	cfg.Channel.DopplerHz = []float64{0, 0.5, 2, 10}[r.Intn(4)]
	cfg.Channel.ShadowingSigmaDB = []float64{0, 2, 6}[r.Intn(3)]
	cfg.Channel.RicianK = []float64{0, 0, 3}[r.Intn(3)]
	cfg.MAC.MinBurst = 1 + r.Intn(3)
	cfg.MAC.MaxBurst = cfg.MAC.MinBurst + r.Intn(8)
	cfg.MAC.MaxRetries = r.Intn(7)
	cfg.CSINoiseSigmaDB = []float64{0, 0, 3}[r.Intn(3)]
	cfg.BaseStationForwarding = r.Intn(3) == 0
	cfg.StopWhenNetworkDead = r.Intn(2) == 0
	return cfg
}

// TestRandomizedConfigsHoldInvariants runs many randomized small
// simulations and asserts the conservation invariants on each: no panics,
// energy conserved per node and per cause, traffic accounted, series
// monotone, deaths consistent. This catches interaction bugs the
// scenario-specific tests cannot enumerate.
func TestRandomizedConfigsHoldInvariants(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 15
	}
	r := rng.NewSource(2024).Stream("fuzz", 0)
	for i := 0; i < iterations; i++ {
		cfg := randomConfig(r, i)
		label := fmt.Sprintf("iter %d: %d nodes, policy %v, load %v, energy %v, bursts %d-%d",
			i, cfg.Nodes, cfg.Policy, cfg.ArrivalRatePerSecond, cfg.InitialEnergyJ,
			cfg.MAC.MinBurst, cfg.MAC.MaxBurst)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: generated invalid config: %v", label, err)
		}
		res := func() (res Result) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("%s: simulation panicked: %v", label, p)
				}
			}()
			return New(cfg).Run()
		}()

		// Energy conservation per node.
		for _, n := range res.Nodes {
			if math.Abs(n.RemainingJ+n.ConsumedJ-cfg.InitialEnergyJ) > 1e-9 {
				t.Fatalf("%s: node %d energy not conserved", label, n.Index)
			}
			if n.RemainingJ < 0 {
				t.Fatalf("%s: node %d negative energy", label, n.Index)
			}
		}
		// Cause breakdown sums to total.
		var byCause float64
		for _, j := range res.EnergyByCause {
			if j < 0 {
				t.Fatalf("%s: negative cause energy", label)
			}
			byCause += j
		}
		if math.Abs(byCause-res.TotalConsumedJ) > 1e-6 {
			t.Fatalf("%s: breakdown %v != consumed %v", label, byCause, res.TotalConsumedJ)
		}
		// Traffic accounting.
		if res.Delivered+res.DroppedBuffer+res.DroppedRetry > res.Generated {
			t.Fatalf("%s: delivered+dropped exceeds generated", label)
		}
		if cfg.BufferCapacity == 0 && res.DroppedBuffer != 0 {
			t.Fatalf("%s: unbounded buffer dropped packets", label)
		}
		if cfg.ArrivalRatePerSecond == 0 && res.Generated != 0 {
			t.Fatalf("%s: zero-rate source generated packets", label)
		}
		// Mode counts only cover delivered packets from non-head senders;
		// never more than delivered.
		var modes uint64
		for _, m := range res.ModeCounts {
			modes += m
		}
		if modes > res.Delivered {
			t.Fatalf("%s: mode counts %d exceed delivered %d", label, modes, res.Delivered)
		}
		// Deaths consistent with alive count and ordered in time.
		if res.AliveAtEnd+len(res.Deaths) != cfg.Nodes {
			t.Fatalf("%s: alive %d + deaths %d != nodes %d", label, res.AliveAtEnd, len(res.Deaths), cfg.Nodes)
		}
		for j := 1; j < len(res.Deaths); j++ {
			if res.Deaths[j] < res.Deaths[j-1] {
				t.Fatalf("%s: deaths out of order", label)
			}
		}
		// Series monotonicity.
		pts := res.EnergySeries.Points()
		for j := 1; j < len(pts); j++ {
			if pts[j].V > pts[j-1].V+1e-9 {
				t.Fatalf("%s: energy series increased", label)
			}
		}
		alive := res.AliveSeries.Points()
		for j := 1; j < len(alive); j++ {
			if alive[j].V > alive[j-1].V {
				t.Fatalf("%s: alive series increased", label)
			}
		}
		// Elapsed within the horizon.
		if res.Elapsed > cfg.Horizon {
			t.Fatalf("%s: elapsed %v beyond horizon %v", label, res.Elapsed, cfg.Horizon)
		}
		// Forwarding only moves bits when enabled.
		if !cfg.BaseStationForwarding && res.ForwardedBits != 0 {
			t.Fatalf("%s: forwarding disabled but bits moved", label)
		}
	}
}

// TestRandomizedDeterminism re-runs a sample of random configurations and
// checks bit-identical results — determinism must hold across the whole
// configuration space, not just the defaults.
func TestRandomizedDeterminism(t *testing.T) {
	r := rng.NewSource(7777).Stream("fuzz-det", 0)
	for i := 0; i < 8; i++ {
		cfg := randomConfig(r, i)
		cfg.Horizon = 20 * sim.Second
		a := New(cfg).Run()
		b := New(cfg).Run()
		if a.TotalConsumedJ != b.TotalConsumedJ || a.Delivered != b.Delivered ||
			a.CollisionEvents != b.CollisionEvents || a.MeanDelayMs != b.MeanDelayMs {
			t.Fatalf("iter %d: runs diverged (%v/%v, %d/%d)", i,
				a.TotalConsumedJ, b.TotalConsumedJ, a.Delivered, b.Delivered)
		}
	}
}
