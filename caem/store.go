package caem

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/store"
)

// CampaignStore is the persistent, append-only results store for
// campaign cells: each completed (scenario, protocol, seed) run is one
// self-describing JSONL record keyed by a content hash of everything
// that determines its outcome, so stored cells are only ever reused for
// bit-identical reruns. It backs checkpoint/resume (RunCampaignWith),
// incremental aggregation over completed cells (Aggregates), and the
// caem-serve campaign service, which also persists its campaign specs
// here (SaveCampaignSpec) to survive restarts.
//
// A CampaignStore is safe for concurrent use within one process; keep a
// single writer per directory across processes.
type CampaignStore struct {
	s *store.Store

	// Materialized store-wide aggregates: gen counts cell writes, and
	// the cache is valid while aggGen == gen — any PutCell invalidates
	// it, so CachedAggregates is always byte-identical to Aggregates.
	aggMu    sync.Mutex
	gen      uint64
	aggGen   uint64
	aggValid bool
	aggCache []CampaignAggregate
	cacheMet *aggCacheMetrics
}

// StoreOptions tunes the underlying segmented store. The zero value
// picks the defaults (4 MiB segments, background compaction after 1024
// superseded cells).
type StoreOptions struct {
	// SegmentBytes is the active-tail size at which the store rolls the
	// tail into an immutable segment. <= 0 selects the default.
	SegmentBytes int64
	// CompactAfter schedules background compaction once this many
	// stored cells have been superseded by re-puts; 0 selects the
	// default, negative disables it.
	CompactAfter int
}

// OpenStore opens (creating if needed) the results store rooted at dir,
// recovering from a torn log tail left by a killed campaign.
func OpenStore(dir string) (*CampaignStore, error) {
	return OpenStoreWith(dir, StoreOptions{})
}

// OpenStoreWith is OpenStore with explicit store tuning.
func OpenStoreWith(dir string, opts StoreOptions) (*CampaignStore, error) {
	s, err := store.OpenWith(dir, store.Options{
		SegmentBytes: opts.SegmentBytes,
		CompactAfter: opts.CompactAfter,
	})
	if err != nil {
		return nil, fmt.Errorf("caem: %w", err)
	}
	return &CampaignStore{s: s}, nil
}

// Dir returns the store's root directory.
func (cs *CampaignStore) Dir() string { return cs.s.Dir() }

// Len returns the number of distinct stored cells.
func (cs *CampaignStore) Len() int { return cs.s.Len() }

// RecoveredBytes reports how many torn-tail bytes OpenStore dropped to
// restore a consistent log (0 for a clean shutdown).
func (cs *CampaignStore) RecoveredBytes() int64 { return cs.s.RecoveredBytes() }

// Observe attaches the store to a metrics registry: append, byte,
// fsync-latency, checkpoint-latency, fault, recovery, segment, and
// aggregate-cache instruments register get-or-create and update on
// every subsequent operation. A store never observed skips all
// instrumentation.
func (cs *CampaignStore) Observe(reg *obs.Registry) {
	cs.s.Observe(reg)
	m := RegisterAggCacheMetrics(reg)
	cs.aggMu.Lock()
	cs.cacheMet = m
	cs.aggMu.Unlock()
}

// Stats returns a snapshot of the underlying store's shape and access
// counters (segments, distinct cells, scan/roll/compaction counts).
func (cs *CampaignStore) Stats() store.Stats { return cs.s.Stats() }

// Compact synchronously rewrites store segments to drop superseded
// cells. Background compaction normally makes this unnecessary; it is
// exposed for maintenance and tests.
func (cs *CampaignStore) Compact() error { return cs.s.Compact() }

// Flush checkpoints the lookup index to disk.
func (cs *CampaignStore) Flush() error { return cs.s.Flush() }

// Close checkpoints the index and releases the store.
func (cs *CampaignStore) Close() error { return cs.s.Close() }

// CellHash returns the deterministic content hash identifying a
// campaign cell family: the base configuration with the per-cell axes
// (Protocol, Seed) and the run-orchestration fields (Workers, TraceCSV)
// normalized out, combined with the complete scenario spec. Two cells
// share a hash exactly when equal (protocol, seed) would make their
// runs bit-identical — the condition under which a stored result may
// stand in for a fresh one.
func CellHash(base Config, sc Scenario) (string, error) {
	norm := base
	norm.Protocol, norm.Seed, norm.Workers, norm.TraceCSV = 0, 0, 0, nil
	cb, err := json.Marshal(norm)
	if err != nil {
		return "", fmt.Errorf("caem: hashing config: %w", err)
	}
	sb, err := json.Marshal(sc)
	if err != nil {
		return "", fmt.Errorf("caem: hashing scenario: %w", err)
	}
	h := sha256.New()
	h.Write(cb)
	h.Write([]byte{0}) // unambiguous config/scenario boundary
	h.Write(sb)
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}

// PutCell stores one completed campaign cell under the given content
// hash (from CellHash). campaign is informative provenance — lookups go
// by content, so any later campaign with the same hash reuses the cell.
func (cs *CampaignStore) PutCell(campaign, hash string, cell CampaignCell) error {
	err := cs.s.Put(store.Record{
		Campaign: campaign,
		Hash:     hash,
		Scenario: cell.Scenario,
		Protocol: cell.Protocol.String(),
		Seed:     cell.Seed,
		Summary:  summaryOf(cell.Result),
	})
	if err != nil {
		return err
	}
	cs.aggMu.Lock()
	cs.gen++
	if cs.aggValid {
		cs.aggValid = false
		cs.cacheMet.invalidated()
	}
	cs.aggMu.Unlock()
	return nil
}

// HasCell reports whether the cell is stored.
func (cs *CampaignStore) HasCell(hash, scenario string, p Protocol, seed uint64) bool {
	return cs.s.Has(store.Key{Hash: hash, Scenario: scenario, Protocol: p.String(), Seed: seed})
}

// LookupCell returns the stored cell, if present, as a summary-level
// CampaignCell: the Result carries the headline metrics exactly as
// measured (floats round-trip bit-for-bit through the store) with
// Restored set, but not the bulky per-run detail (time series, per-node
// outcomes, round reports, energy breakdown).
func (cs *CampaignStore) LookupCell(hash, scenario string, p Protocol, seed uint64) (CampaignCell, bool, error) {
	rec, ok, err := cs.s.Get(store.Key{Hash: hash, Scenario: scenario, Protocol: p.String(), Seed: seed})
	if err != nil || !ok {
		return CampaignCell{}, false, err
	}
	return cellOf(rec)
}

// Cells returns every stored cell in first-stored order, summary-level
// (see LookupCell).
func (cs *CampaignStore) Cells() ([]CampaignCell, error) {
	recs, err := cs.s.Records()
	if err != nil {
		return nil, err
	}
	out := make([]CampaignCell, 0, len(recs))
	for _, rec := range recs {
		cell, _, err := cellOf(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, cell)
	}
	return out, nil
}

// Aggregates collapses every stored cell into per-(scenario, protocol)
// statistical summaries — incremental aggregation over whatever the
// store holds, without re-running anything.
//
// Cells are aggregated in canonical submission order — scenario name,
// then protocol, then ascending seed — not in store append order. Store
// append order is completion order when cells ran concurrently (or
// arrived from cluster workers), and floating-point accumulation is not
// associative, so order-dependent aggregation would match a serial
// campaign's only modulo final-ulp drift. Canonical ordering makes the
// aggregates of a clustered, parallel, or resumed campaign exactly
// equal — byte-identical — to the serial run's.
func (cs *CampaignStore) Aggregates() ([]CampaignAggregate, error) {
	cells, err := cs.Cells()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Scenario != cells[j].Scenario {
			return cells[i].Scenario < cells[j].Scenario
		}
		if cells[i].Protocol != cells[j].Protocol {
			return cells[i].Protocol < cells[j].Protocol
		}
		return cells[i].Seed < cells[j].Seed
	})
	return AggregateCampaign(cells), nil
}

// CachedAggregates is Aggregates behind a materialized cache: the
// first read after any cell write recomputes (a miss), every read until
// the next write returns the cached slice (a hit, no store access at
// all). The cached value is the uncut output of Aggregates, so the two
// are byte-identical under JSON encoding at every point in time —
// cache-where-reads-repeat, invalidate-where-writes-land.
//
// Callers must not mutate the returned slice.
func (cs *CampaignStore) CachedAggregates() ([]CampaignAggregate, error) {
	cs.aggMu.Lock()
	if cs.aggValid && cs.aggGen == cs.gen {
		out := cs.aggCache
		cs.cacheMet.hit()
		cs.aggMu.Unlock()
		return out, nil
	}
	gen := cs.gen
	cs.cacheMet.miss()
	cs.aggMu.Unlock()

	// Recompute outside the cache lock so concurrent writers are never
	// blocked behind an aggregation pass.
	aggs, err := cs.Aggregates()
	if err != nil {
		return nil, err
	}

	cs.aggMu.Lock()
	// Only publish if no write raced the recomputation; a racing write
	// already bumped gen, and the next read will recompute again.
	if cs.gen == gen {
		cs.aggCache = aggs
		cs.aggGen = gen
		cs.aggValid = true
	}
	cs.aggMu.Unlock()
	return aggs, nil
}

// SaveCampaignSpec persists an opaque campaign spec blob under id —
// service metadata that lets caem-serve recover in-flight campaigns
// after a restart.
func (cs *CampaignStore) SaveCampaignSpec(id string, blob []byte) error {
	return cs.s.PutCampaign(id, blob)
}

// LoadCampaignSpec returns the campaign spec blob stored under id.
func (cs *CampaignStore) LoadCampaignSpec(id string) ([]byte, error) {
	return cs.s.GetCampaign(id)
}

// CampaignIDs returns the ids of every stored campaign spec, sorted.
func (cs *CampaignStore) CampaignIDs() ([]string, error) {
	return cs.s.Campaigns()
}

// summaryOf projects a Result onto the stored metric set.
func summaryOf(r Result) store.Summary {
	return store.Summary{
		DurationSeconds:        r.DurationSeconds,
		Rounds:                 r.Rounds,
		TotalConsumedJ:         r.TotalConsumedJ,
		AvgRemainingJ:          r.AvgRemainingJ,
		AliveAtEnd:             r.AliveAtEnd,
		FirstDeathSeconds:      r.FirstDeathSeconds,
		FirstDeathValid:        r.FirstDeathValid,
		NetworkLifetimeSeconds: r.NetworkLifetimeSeconds,
		NetworkDead:            r.NetworkDead,
		EnergyPerPacketMilliJ:  r.EnergyPerPacketMilliJ,
		Generated:              r.Generated,
		Delivered:              r.Delivered,
		DroppedBuffer:          r.DroppedBuffer,
		DroppedRetry:           r.DroppedRetry,
		DeliveryRate:           r.DeliveryRate,
		ThroughputKbps:         r.ThroughputKbps,
		MeanDelayMs:            r.MeanDelayMs,
		P95DelayMs:             r.P95DelayMs,
		MaxDelayMs:             r.MaxDelayMs,
		QueueStdDev:            r.QueueStdDev,
		Collisions:             r.Collisions,
		ChannelFails:           r.ChannelFails,
	}
}

// cellOf rehydrates a stored record into a summary-level CampaignCell.
func cellOf(rec store.Record) (CampaignCell, bool, error) {
	p, err := ParseProtocol(rec.Protocol)
	if err != nil {
		return CampaignCell{}, false, fmt.Errorf("caem: stored cell: %w", err)
	}
	s := rec.Summary
	return CampaignCell{
		Scenario: rec.Scenario,
		Protocol: p,
		Seed:     rec.Seed,
		Restored: true,
		Result: Result{
			Protocol:               p,
			DurationSeconds:        s.DurationSeconds,
			Rounds:                 s.Rounds,
			TotalConsumedJ:         s.TotalConsumedJ,
			AvgRemainingJ:          s.AvgRemainingJ,
			AliveAtEnd:             s.AliveAtEnd,
			FirstDeathSeconds:      s.FirstDeathSeconds,
			FirstDeathValid:        s.FirstDeathValid,
			NetworkLifetimeSeconds: s.NetworkLifetimeSeconds,
			NetworkDead:            s.NetworkDead,
			EnergyPerPacketMilliJ:  s.EnergyPerPacketMilliJ,
			Generated:              s.Generated,
			Delivered:              s.Delivered,
			DroppedBuffer:          s.DroppedBuffer,
			DroppedRetry:           s.DroppedRetry,
			DeliveryRate:           s.DeliveryRate,
			ThroughputKbps:         s.ThroughputKbps,
			MeanDelayMs:            s.MeanDelayMs,
			P95DelayMs:             s.P95DelayMs,
			MaxDelayMs:             s.MaxDelayMs,
			QueueStdDev:            s.QueueStdDev,
			Collisions:             s.Collisions,
			ChannelFails:           s.ChannelFails,
		},
	}, true, nil
}
