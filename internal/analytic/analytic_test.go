package analytic

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestRayleighExceedProb(t *testing.T) {
	// At threshold = mean, P = exp(-1).
	if got := RayleighExceedProb(10, 10); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("P(exceed mean) = %v, want e^-1", got)
	}
	// Far below the mean: ~1. Far above: ~0.
	if got := RayleighExceedProb(30, 0); got < 0.99 {
		t.Fatalf("P(exceed mean-30dB) = %v", got)
	}
	if got := RayleighExceedProb(0, 30); got > 1e-6 {
		t.Fatalf("P(exceed mean+30dB) = %v", got)
	}
	// Monotone in threshold.
	prev := 1.0
	for thr := -20.0; thr <= 40; thr++ {
		p := RayleighExceedProb(10, thr)
		if p > prev+1e-15 {
			t.Fatalf("exceed probability increased at %v dB", thr)
		}
		prev = p
	}
}

func TestModeOccupancySumsToOne(t *testing.T) {
	table := phy.Default4Mode()
	for _, mean := range []float64{0, 5, 10, 15, 20, 30} {
		occ, below := ModeOccupancy(mean, table)
		sum := below
		for _, p := range occ {
			sum += p
			if p < 0 || p > 1 {
				t.Fatalf("occupancy out of range at mean %v: %v", mean, occ)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("occupancies at mean %v sum to %v", mean, sum)
		}
	}
}

func TestModeOccupancyLimits(t *testing.T) {
	table := phy.Default4Mode()
	// Very strong link: (almost) always top class.
	occ, below := ModeOccupancy(40, table)
	if occ[table.Len()-1] < 0.98 || below > 0.01 {
		t.Fatalf("strong link occupancy: %v below %v", occ, below)
	}
	// Very weak link: (almost) always below all.
	_, below = ModeOccupancy(-10, table)
	if below < 0.95 {
		t.Fatalf("weak link below-all = %v", below)
	}
}

// The analytic occupancy must match the empirical distribution sampled
// from the actual fading generator — this is the cross-check that the
// channel code samples the distribution the theory assumes.
func TestOccupancyMatchesChannelSimulation(t *testing.T) {
	table := phy.Default4Mode()
	params := channel.DefaultParams()
	params.ShadowingSigmaDB = 0 // isolate Rayleigh fading
	for _, dist := range []float64{15, 25, 40} {
		link := channel.NewLink(params, dist, rng.NewSource(42).Stream("analytic", uint64(dist)))
		mean := link.MeanSNRdB()
		wantOcc, wantBelow := ModeOccupancy(mean, table)

		counts := make([]float64, table.Len())
		below := 0.0
		const n = 40000
		for i := 0; i < n; i++ {
			// Sample every 150 ms (≳ coherence time) for near-independence.
			snr := link.SNRdB(sim.Time(i) * 150 * sim.Millisecond)
			if m, ok := table.PickMode(snr); ok {
				counts[m.Index]++
			} else {
				below++
			}
		}
		for i := range counts {
			got := counts[i] / n
			if math.Abs(got-wantOcc[i]) > 0.025 {
				t.Errorf("dist %v class %d: simulated %.3f, analytic %.3f", dist, i, got, wantOcc[i])
			}
		}
		if got := below / n; math.Abs(got-wantBelow) > 0.025 {
			t.Errorf("dist %v below-all: simulated %.3f, analytic %.3f", dist, got, wantBelow)
		}
	}
}

func TestExpectedAirtimeBounds(t *testing.T) {
	table := phy.Default4Mode()
	lo := table.Highest().Airtime(2000)
	hi := table.Lowest().Airtime(2000)
	for _, mean := range []float64{0, 8, 14, 25, 40} {
		at := ExpectedAirtime(mean, table, 2000)
		if at < lo || at > hi {
			t.Fatalf("expected airtime %v outside [%v, %v] at mean %v", at, lo, hi, mean)
		}
	}
	// Monotone: better links mean shorter expected airtime.
	prev := sim.Time(math.MaxInt64)
	for mean := 0.0; mean <= 40; mean += 2 {
		at := ExpectedAirtime(mean, table, 2000)
		if at > prev {
			t.Fatalf("expected airtime increased with mean SNR at %v dB", mean)
		}
		prev = at
	}
}

func TestExpectedWaitForClass(t *testing.T) {
	poll := 50 * sim.Millisecond
	// Admission probability e^-1 at threshold = mean: wait = 50ms*(1-p)/p.
	p := math.Exp(-1)
	want := 0.05 * (1 - p) / p
	if got := ExpectedWaitForClass(16, 16, poll); math.Abs(got-want) > 1e-9 {
		t.Fatalf("wait = %v, want %v", got, want)
	}
	// Hopeless link: infinite wait.
	if !math.IsInf(ExpectedWaitForClass(-300, 16, poll), 1) {
		t.Fatal("hopeless link should wait forever")
	}
	// Excellent link: negligible wait.
	if got := ExpectedWaitForClass(40, 16, poll); got > 0.001 {
		t.Fatalf("excellent link waits %v s", got)
	}
}

func TestDeferralProbabilityComplement(t *testing.T) {
	for _, mean := range []float64{5, 12, 20} {
		d := DeferralProbability(mean, 16)
		e := RayleighExceedProb(mean, 16)
		if math.Abs(d+e-1) > 1e-12 {
			t.Fatalf("deferral + exceed = %v", d+e)
		}
	}
}

func TestExpectedHeads(t *testing.T) {
	if got := ExpectedHeads(100, 0.05); got != 5 {
		t.Fatalf("ExpectedHeads = %v, want 5", got)
	}
}

func TestClusterCapacityAndSaturation(t *testing.T) {
	// 1 ms airtime -> 1000 pkt/s channel capacity.
	if got := ClusterCapacityPktPerSec(sim.Millisecond); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("capacity = %v", got)
	}
	// 20-node cluster -> 50 pkt/s per node.
	if got := SaturationLoad(20, sim.Millisecond); math.Abs(got-50) > 1e-9 {
		t.Fatalf("saturation load = %v", got)
	}
	if !math.IsInf(SaturationLoad(0, sim.Millisecond), 1) {
		t.Fatal("empty cluster should never saturate")
	}
}

func TestEnergyPerPacketTx(t *testing.T) {
	table := phy.Default4Mode()
	// 2000 bits at 2 Mbps = 1 ms at 0.66 W = 0.66 mJ.
	got := EnergyPerPacketTx(table.Highest(), 2000, 0.66)
	if math.Abs(got-0.00066) > 1e-9 {
		t.Fatalf("energy = %v, want 0.66 mJ", got)
	}
}

// The analytic saving must reproduce the paper's headline band for the
// link qualities the deployment actually produces (median links in the
// 12-18 dB local-mean range).
func TestPredictedSavingInPaperBand(t *testing.T) {
	table := phy.Default4Mode()
	for _, mean := range []float64{12, 14, 16, 18} {
		s := PredictedSavingVsTopClass(mean, table, 2000)
		if s < 0.25 || s > 0.85 {
			t.Errorf("predicted saving at %v dB = %.2f, outside plausible band", mean, s)
		}
	}
	// Saving falls toward zero for excellent links (nothing to save).
	if s := PredictedSavingVsTopClass(40, table, 2000); s > 0.05 {
		t.Errorf("saving on excellent link = %v", s)
	}
}

func TestOccupancyString(t *testing.T) {
	occ, below := ModeOccupancy(14, phy.Default4Mode())
	s := OccupancyString(occ, below)
	if s == "" {
		t.Fatal("empty occupancy string")
	}
}
