package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// smallSeg rolls the active tail every couple of records — segment
// mechanics at test scale.
const smallSeg = 1000

// openSmall opens a store that rolls eagerly and never compacts in the
// background, so tests control compaction explicitly.
func openSmall(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenWith(dir, Options{SegmentBytes: smallSeg, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRollCreatesSegments: Puts past the threshold roll the tail into
// immutable segments; every record stays readable through point lookups
// and the global Records order is unchanged, before and after reopen.
func TestRollCreatesSegments(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	const n = 20
	want := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := rec(i)
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
		r.V = recordVersion
		want = append(want, r)
	}
	st := s.Stats()
	if st.Segments == 0 || st.Rolls == 0 {
		t.Fatalf("no segments after %d puts at threshold %d: %+v", n, smallSeg, st)
	}
	if st.Distinct != n {
		t.Fatalf("Distinct = %d, want %d", st.Distinct, n)
	}
	got, err := s.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Records across segments diverged:\n got %+v\nwant %+v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir) // default options: reopen must read v2 layout
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		r, ok, err := s2.Get(want[i].Key())
		if err != nil || !ok {
			t.Fatalf("Get(%d) after reopen = ok=%v err=%v", i, ok, err)
		}
		if !reflect.DeepEqual(r, want[i]) {
			t.Fatalf("Get(%d) diverged after reopen", i)
		}
	}
	got2, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("Records diverged after reopen")
	}
}

// TestFlatLogMigration: a v1 store (flat log, v1 index document) opened
// by the segmented store rolls into segments on open, with every cell
// readable and the record set bit-identical.
func TestFlatLogMigration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	want := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := rec(i)
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
		r.V = recordVersion
		want = append(want, r)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the index checkpoint as the pre-segmentation v1 document.
	blob, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		t.Fatal(err)
	}
	var doc indexDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	doc.V = 1
	doc.Distinct = 0
	blob, err = json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openSmall(t, dir)
	defer s2.Close()
	st := s2.Stats()
	if st.Segments == 0 {
		t.Fatal("migration open did not roll the flat log into segments")
	}
	if st.ActiveRecords != 0 {
		t.Fatalf("migration left %d records in the tail", st.ActiveRecords)
	}
	if s2.Len() != n {
		t.Fatalf("migrated Len = %d, want %d", s2.Len(), n)
	}
	got, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("migrated records diverged from the v1 store")
	}
}

// TestRePutAcrossRollLastWins: re-putting a key whose older version
// lives in a segment serves the tail version, counts segment garbage,
// and survives reopen.
func TestRePutAcrossRollLastWins(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	const n = 8
	for i := 0; i < n; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Segments == 0 {
		t.Fatal("precondition: no segments rolled")
	}
	r := rec(2)
	r.Summary.Delivered = 777777
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SegGarbage == 0 {
		t.Fatalf("superseding a segment-resident key left SegGarbage=0: %+v", st)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d after re-put, want %d", s.Len(), n)
	}
	got, ok, err := s.Get(r.Key())
	if err != nil || !ok || got.Summary.Delivered != 777777 {
		t.Fatalf("Get after re-put = %+v ok=%v err=%v", got.Summary.Delivered, ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), n)
	}
	got, ok, err = s2.Get(r.Key())
	if err != nil || !ok || got.Summary.Delivered != 777777 {
		t.Fatalf("reopened Get lost the re-put: %+v ok=%v err=%v", got.Summary.Delivered, ok, err)
	}
}

// TestCompactionDropsSuperseded: after re-putting every key, compaction
// removes exactly the superseded segment copies; reads, order, and a
// reopen all agree with the latest versions.
func TestCompactionDropsSuperseded(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := rec(i)
		r.Summary.Delivered = uint64(100000 + i)
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
		r.V = recordVersion
		want = append(want, r)
	}
	before := s.Stats()
	if before.SegGarbage == 0 {
		t.Fatalf("no garbage accumulated: %+v", before)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Compactions != before.Compactions+1 {
		t.Fatalf("Compactions = %d, want %d", after.Compactions, before.Compactions+1)
	}
	if after.CompactedRecords == 0 {
		t.Fatalf("compaction dropped nothing: %+v", after)
	}
	if after.SegGarbage != 0 {
		t.Fatalf("SegGarbage = %d after compaction", after.SegGarbage)
	}
	if after.Distinct != n {
		t.Fatalf("Distinct = %d after compaction, want %d", after.Distinct, n)
	}
	got, err := s.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records after compaction diverged:\n got %+v\nwant %+v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err = s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("records diverged after compaction + reopen")
	}
}

// TestCompactionCrashMidway: a fault after the first segment rewrite
// aborts compaction with a typed error, leaving a mix of rewritten and
// original segments; reopen resolves every key to its latest version
// with nothing lost.
func TestCompactionCrashMidway(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	const n = 12
	for i := 0; i < n; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := rec(i)
		r.Summary.Delivered = uint64(200000 + i)
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
		r.V = recordVersion
		want = append(want, r)
	}
	if s.Stats().Segments < 3 {
		t.Fatalf("precondition: want >= 3 segments, have %d", s.Stats().Segments)
	}
	// Allow one rewrite, then die: compaction is killed mid-pass.
	calls := 0
	s.SetFault(func(op string) error {
		if op != "compact" {
			return nil
		}
		calls++
		if calls > 1 {
			return errors.New("power cut mid-compaction")
		}
		return nil
	})
	err := s.Compact()
	var we *WriteError
	if !errors.As(err, &we) || we.Op != "compact" {
		t.Fatalf("interrupted Compact = %v, want *WriteError{Op: compact}", err)
	}
	s.SetFault(nil)
	// The in-process store must still read correctly...
	for i := range want {
		got, ok, err := s.Get(want[i].Key())
		if err != nil || !ok || !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("Get(%d) after interrupted compaction = %+v ok=%v err=%v", i, got, ok, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and so must a fresh process.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after interrupted compaction: %v", err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), n)
	}
	got, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("records diverged after interrupted compaction + reopen")
	}
	// A second, uninterrupted compaction completes the job.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err = s2.Records()
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("records diverged after finishing compaction: %v", err)
	}
}

// TestRollFaultLeavesTailIntact: a failed roll surfaces as a typed
// error, but the triggering record is already durable and readable, and
// the roll succeeds once the fault clears.
func TestRollFaultLeavesTailIntact(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	s.SetFault(func(op string) error {
		if op == "roll" {
			return errors.New("segment disk full")
		}
		return nil
	})
	var rollErr error
	const n = 6
	faulted := 0
	for ; faulted < n; faulted++ {
		if err := s.Put(rec(faulted)); err != nil {
			rollErr = err
			break
		}
	}
	var we *WriteError
	if !errors.As(rollErr, &we) || we.Op != "roll" {
		t.Fatalf("faulted roll = %v, want *WriteError{Op: roll}", rollErr)
	}
	if s.Stats().Segments != 0 {
		t.Fatal("faulted roll still published a segment")
	}
	// Every record Put so far — including the one whose roll failed — is
	// durable in the tail.
	for i := 0; i <= faulted; i++ {
		if !s.Has(rec(i).Key()) {
			t.Fatalf("record %d lost by failed roll", i)
		}
	}
	s.SetFault(nil)
	for i := faulted + 1; i < 2*n; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Segments == 0 {
		t.Fatal("roll did not recover after the fault cleared")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2*n {
		t.Fatalf("Len = %d, want %d", s2.Len(), 2*n)
	}
}

// TestCrashBetweenSegmentPublishAndTailTruncate reconstructs the
// narrowest roll crash window: the segment file is durable but the tail
// still holds the same records and the index checkpoint predates the
// roll. Last-write-wins resolution must read every cell exactly once.
func TestCrashBetweenSegmentPublishAndTailTruncate(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{SegmentBytes: 1 << 20, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	want := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := rec(i)
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
		r.V = recordVersion
		want = append(want, r)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	tailBlob, err := os.ReadFile(filepath.Join(dir, dataFile))
	if err != nil {
		t.Fatal(err)
	}
	indexBlob, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		t.Fatal(err)
	}

	// Reopen past the threshold: the open rolls the tail into a segment.
	s2 := openSmall(t, dir)
	if s2.Stats().Segments == 0 {
		t.Fatal("precondition: reopen did not roll")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// Undo the truncate + checkpoint, keeping the published segment: the
	// exact on-disk state of a crash between rename and truncate.
	if err := os.WriteFile(filepath.Join(dir, dataFile), tailBlob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile), indexBlob, 0o644); err != nil {
		t.Fatal(err)
	}

	for pass := 0; pass < 2; pass++ {
		s3, err := Open(dir)
		if err != nil {
			t.Fatalf("pass %d: reopen in crash window state: %v", pass, err)
		}
		if s3.Len() != n {
			t.Fatalf("pass %d: Len = %d, want %d (duplicates double-counted?)", pass, s3.Len(), n)
		}
		got, err := s3.Records()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: records diverged in crash window state", pass)
		}
		if err := s3.Close(); err != nil {
			t.Fatal(err)
		}
		// Second pass: same state but with the checkpoint gone, forcing
		// the rebuild path to union segments with the duplicate tail.
		if pass == 0 {
			if err := os.WriteFile(filepath.Join(dir, dataFile), tailBlob, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPointReadsNeverFullScan: the acceptance-criteria counter test —
// point lookups across a segmented store (hits and misses) perform zero
// global-order materializations, and each segment index loads at most
// once.
func TestPointReadsNeverFullScan(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	const n = 30
	for i := 0; i < n; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openSmall(t, dir)
	defer s2.Close()
	base := s2.Stats()
	if base.FullScans != 0 {
		t.Fatalf("checkpointed reopen performed %d full scans", base.FullScans)
	}
	for i := 0; i < n; i++ {
		if _, ok, err := s2.Get(rec(i).Key()); err != nil || !ok {
			t.Fatalf("Get(%d) = ok=%v err=%v", i, ok, err)
		}
	}
	for i := 0; i < 10; i++ {
		k := Key{Hash: "absent", Scenario: fmt.Sprintf("zz-%d", i), Protocol: "none", Seed: uint64(i)}
		if _, ok, _ := s2.Get(k); ok {
			t.Fatalf("absent key %d reported present", i)
		}
	}
	st := s2.Stats()
	if st.FullScans != 0 {
		t.Fatalf("point reads performed %d full scans", st.FullScans)
	}
	if st.SegmentLoads > uint64(st.Segments) {
		t.Fatalf("SegmentLoads = %d > segments = %d (indexes reloaded?)", st.SegmentLoads, st.Segments)
	}
}

// TestBloomRangePruning: with one scenario per segment, a lookup loads
// only the one segment that can hold the key — footer ranges and bloom
// filters prune the rest without touching their data.
func TestBloomRangePruning(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{SegmentBytes: 1, CompactAfter: -1}) // roll every Put
	if err != nil {
		t.Fatal(err)
	}
	scens := []string{"alpha", "beta", "gamma", "delta"}
	for _, sc := range scens {
		r := rec(0)
		r.Scenario = sc
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenWith(dir, Options{SegmentBytes: 1 << 20, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Segments; got != len(scens) {
		t.Fatalf("segments = %d, want %d", got, len(scens))
	}
	k := rec(0).Key()
	k.Scenario = "delta"
	if _, ok, err := s2.Get(k); err != nil || !ok {
		t.Fatalf("Get = ok=%v err=%v", ok, err)
	}
	if st := s2.Stats(); st.SegmentLoads != 1 {
		t.Fatalf("SegmentLoads = %d, want 1 (range pruning failed)", st.SegmentLoads)
	}
}

// TestBackgroundCompaction: enough superseding re-puts schedule an
// automatic compaction that drains the garbage without any explicit
// Compact call.
func TestBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{SegmentBytes: 1, CompactAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 6
	for i := 0; i < n; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ { // supersede segment-resident keys
		r := rec(i)
		r.Summary.Delivered = uint64(300000 + i)
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := s.Stats()
	if st.CompactedRecords == 0 {
		t.Fatalf("background compaction dropped nothing: %+v", st)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d after background compaction, want %d", s.Len(), n)
	}
	for i := 0; i < 4; i++ {
		got, ok, err := s.Get(rec(i).Key())
		if err != nil || !ok || got.Summary.Delivered != uint64(300000+i) {
			t.Fatalf("Get(%d) after background compaction = %+v ok=%v err=%v", i, got.Summary.Delivered, ok, err)
		}
	}
}

// TestDistinctSurvivesRebuildWithSegments: deleting the checkpoint on a
// segmented store forces the recount path, which must union segment
// keys with the tail (counting one full scan) and keep Len exact.
func TestDistinctSurvivesRebuildWithSegments(t *testing.T) {
	dir := t.TempDir()
	s := openSmall(t, dir)
	const n = 15
	for i := 0; i < n; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ { // duplicates across segments and tail
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}
	s2 := openSmall(t, dir)
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("rebuilt Len = %d, want %d", s2.Len(), n)
	}
	if st := s2.Stats(); st.FullScans == 0 {
		t.Fatal("rebuild with segments did not count as a full scan")
	}
}

// TestBloomRoundTrip: the footer bloom filter survives JSON and never
// yields a false negative; false positives stay rare.
func TestBloomRoundTrip(t *testing.T) {
	b := newBloom(200)
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("hash%d/scen-%d/proto-%d/%d", i, i%7, i%3, i)
		b.add(keys[i])
	}
	blob, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var got bloom
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !got.has(k) {
			t.Fatalf("false negative for %q after JSON round trip", k)
		}
	}
	fp := 0
	const probes = 1000
	for i := 0; i < probes; i++ {
		if got.has(fmt.Sprintf("absent-%d/x/y/%d", i, i)) {
			fp++
		}
	}
	if fp > probes/10 { // ~1% expected at 10 bits/key; 10% is a hard fail
		t.Fatalf("false positive rate %d/%d far above spec", fp, probes)
	}
	if (&bloom{}).has("anything") != true {
		t.Fatal("zero-value bloom must not exclude")
	}
	var nilBloom *bloom
	if !nilBloom.has("anything") {
		t.Fatal("nil bloom must not exclude")
	}
}
