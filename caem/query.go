package caem

import (
	"fmt"
	"math"
	"sort"
)

// metricGetters maps the queryable metric names — the JSON field names
// of the stored per-cell summary — to their Result projections. This is
// the single registry behind MetricNames, MetricOf, query filtering,
// top-k ordering, and percentile surfaces.
var metricGetters = map[string]func(Result) float64{
	"durationSeconds":        func(r Result) float64 { return r.DurationSeconds },
	"rounds":                 func(r Result) float64 { return float64(r.Rounds) },
	"totalConsumedJ":         func(r Result) float64 { return r.TotalConsumedJ },
	"avgRemainingJ":          func(r Result) float64 { return r.AvgRemainingJ },
	"aliveAtEnd":             func(r Result) float64 { return float64(r.AliveAtEnd) },
	"firstDeathSeconds":      func(r Result) float64 { return r.FirstDeathSeconds },
	"networkLifetimeSeconds": func(r Result) float64 { return r.NetworkLifetimeSeconds },
	"energyPerPacketMilliJ":  func(r Result) float64 { return r.EnergyPerPacketMilliJ },
	"generated":              func(r Result) float64 { return float64(r.Generated) },
	"delivered":              func(r Result) float64 { return float64(r.Delivered) },
	"droppedBuffer":          func(r Result) float64 { return float64(r.DroppedBuffer) },
	"droppedRetry":           func(r Result) float64 { return float64(r.DroppedRetry) },
	"deliveryRate":           func(r Result) float64 { return r.DeliveryRate },
	"throughputKbps":         func(r Result) float64 { return r.ThroughputKbps },
	"meanDelayMs":            func(r Result) float64 { return r.MeanDelayMs },
	"p95DelayMs":             func(r Result) float64 { return r.P95DelayMs },
	"maxDelayMs":             func(r Result) float64 { return r.MaxDelayMs },
	"queueStdDev":            func(r Result) float64 { return r.QueueStdDev },
	"collisions":             func(r Result) float64 { return float64(r.Collisions) },
	"channelFails":           func(r Result) float64 { return float64(r.ChannelFails) },
}

// MetricNames returns the queryable metric names, sorted — the JSON
// field names of the stored per-cell summary.
func MetricNames() []string {
	names := make([]string, 0, len(metricGetters))
	for name := range metricGetters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MetricOf extracts a named summary metric from a result. The second
// return is false for unknown names.
func MetricOf(r Result, name string) (float64, bool) {
	g, ok := metricGetters[name]
	if !ok {
		return 0, false
	}
	return g(r), true
}

// CellRef identifies one cell of a campaign grid in the store: the
// content hash of the cell family plus the (scenario, protocol, seed)
// axes. Refs let QueryCells resolve a campaign's cells with point reads
// only — the store prunes segments by bloom filter and key range, so no
// query ever rescans the log.
type CellRef struct {
	Hash     string
	Scenario string
	Protocol Protocol
	Seed     uint64
}

// CellQuery filters and orders a cell set. The zero value selects
// everything in grid order.
type CellQuery struct {
	// Scenario/Protocol select exact matches; empty selects all. They
	// prune refs before any store read. Protocol accepts any spelling
	// ParseProtocol does ("leach", "pure-LEACH", "s1", ...).
	Scenario string
	Protocol string
	// Metric names the summary metric (see MetricNames) that Min, Max,
	// and Top operate on. Required when any of those is set.
	Metric string
	// Min/Max, when non-nil, keep only cells whose Metric value is
	// >= *Min / <= *Max.
	Min *float64
	Max *float64
	// Top, when positive, keeps only the k cells with the largest
	// Metric values (stable: ties keep grid order). Zero keeps all, in
	// grid order.
	Top int
}

// validate reports the first structural problem with the query.
func (q CellQuery) validate() error {
	if q.Protocol != "" {
		if _, err := ParseProtocol(q.Protocol); err != nil {
			return err
		}
	}
	if q.Metric == "" {
		if q.Min != nil || q.Max != nil || q.Top > 0 {
			return fmt.Errorf("caem: query needs a metric for min/max/top")
		}
		return nil
	}
	if _, ok := metricGetters[q.Metric]; !ok {
		return fmt.Errorf("caem: unknown metric %q (see MetricNames)", q.Metric)
	}
	if q.Top < 0 {
		return fmt.Errorf("caem: negative top %d", q.Top)
	}
	if q.Min != nil && q.Max != nil && *q.Min > *q.Max {
		return fmt.Errorf("caem: empty metric range [%g, %g]", *q.Min, *q.Max)
	}
	return nil
}

// protocol resolves the query's protocol filter; the second return is
// false when no filter is set. Callers run after validate, so the
// parse cannot fail here.
func (q CellQuery) protocol() (Protocol, bool) {
	if q.Protocol == "" {
		return 0, false
	}
	p, _ := ParseProtocol(q.Protocol)
	return p, true
}

// QueryCells resolves the refs that match the query to stored cells:
// scenario/protocol filters prune refs before any read, surviving refs
// become point lookups (one indexed record read each — never a log
// scan), the metric range filter drops out-of-range cells, and top-k
// orders by the metric descending. Refs not yet stored are skipped, so
// querying an in-flight campaign returns its settled subset.
func (cs *CampaignStore) QueryCells(refs []CellRef, q CellQuery) ([]CampaignCell, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	proto, haveProto := q.protocol()
	cells := make([]CampaignCell, 0, len(refs))
	for _, ref := range refs {
		if q.Scenario != "" && ref.Scenario != q.Scenario {
			continue
		}
		if haveProto && ref.Protocol != proto {
			continue
		}
		cell, ok, err := cs.LookupCell(ref.Hash, ref.Scenario, ref.Protocol, ref.Seed)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		cells = append(cells, cell)
	}
	return FilterCells(cells, q)
}

// FilterCells applies the query to an in-memory cell set: exact
// scenario/protocol match, metric range, then top-k. Callers holding a
// materialized snapshot (for example the campaign service's results
// cache) filter it without touching the store at all.
func FilterCells(cells []CampaignCell, q CellQuery) ([]CampaignCell, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	proto, haveProto := q.protocol()
	out := make([]CampaignCell, 0, len(cells))
	for _, cell := range cells {
		if q.Scenario != "" && cell.Scenario != q.Scenario {
			continue
		}
		if haveProto && cell.Protocol != proto {
			continue
		}
		if q.Metric != "" && (q.Min != nil || q.Max != nil) {
			v, _ := MetricOf(cell.Result, q.Metric)
			if q.Min != nil && !(v >= *q.Min) {
				continue
			}
			if q.Max != nil && !(v <= *q.Max) {
				continue
			}
		}
		out = append(out, cell)
	}
	if q.Top > 0 && q.Metric != "" {
		sort.SliceStable(out, func(i, j int) bool {
			vi, _ := MetricOf(out[i].Result, q.Metric)
			vj, _ := MetricOf(out[j].Result, q.Metric)
			// NaN sorts last so defined values win the top-k slots.
			if math.IsNaN(vj) {
				return !math.IsNaN(vi)
			}
			if math.IsNaN(vi) {
				return false
			}
			return vi > vj
		})
		if len(out) > q.Top {
			out = out[:q.Top]
		}
	}
	return out, nil
}

// PercentilePoint is one point of a percentile surface: the requested
// percentile and the metric value at it.
type PercentilePoint struct {
	P     float64 `json:"p"`
	Value float64 `json:"value"`
}

// MetricSurface is the percentile surface of one metric over one
// (scenario, protocol) cell group: exact order statistics over the
// group's replicates, linearly interpolated between ranks.
type MetricSurface struct {
	Scenario    string            `json:"scenario"`
	Protocol    string            `json:"protocol"`
	Metric      string            `json:"metric"`
	N           int               `json:"n"`
	Percentiles []PercentilePoint `json:"percentiles"`
}

// PercentileSurface computes exact percentile surfaces of a metric per
// (scenario, protocol) group, in the cells' first-appearance order —
// the same group order AggregateCampaign reports. Percentiles are in
// [0, 100]; values between ranks interpolate linearly (the usual
// "linear" definition, exact because every replicate is held).
func PercentileSurface(cells []CampaignCell, metric string, ps []float64) ([]MetricSurface, error) {
	if _, ok := metricGetters[metric]; !ok {
		return nil, fmt.Errorf("caem: unknown metric %q (see MetricNames)", metric)
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("caem: percentile surface needs at least one percentile")
	}
	for _, p := range ps {
		if p < 0 || p > 100 || math.IsNaN(p) {
			return nil, fmt.Errorf("caem: percentile %g outside [0, 100]", p)
		}
	}
	type key struct {
		scenario string
		protocol Protocol
	}
	order := make([]key, 0, 8)
	groups := make(map[key][]float64, 8)
	for _, c := range cells {
		k := key{c.Scenario, c.Protocol}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		v, _ := MetricOf(c.Result, metric)
		groups[k] = append(groups[k], v)
	}
	out := make([]MetricSurface, 0, len(order))
	for _, k := range order {
		vs := groups[k]
		sort.Float64s(vs)
		points := make([]PercentilePoint, 0, len(ps))
		for _, p := range ps {
			points = append(points, PercentilePoint{P: p, Value: percentileOf(vs, p)})
		}
		out = append(out, MetricSurface{
			Scenario:    k.scenario,
			Protocol:    k.protocol.String(),
			Metric:      metric,
			N:           len(vs),
			Percentiles: points,
		})
	}
	return out, nil
}

// percentileOf returns the p-th percentile of sorted values with linear
// interpolation between closest ranks.
func percentileOf(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
