package cluster

import (
	"context"
	"errors"
	"log/slog"
	"sync/atomic"
	"time"

	"repro/caem"
	"repro/internal/obs"
)

// ErrWorkerKilled is returned by Worker.Run when the Chaos kill budget
// fires: the worker "dies" mid-lease without completing or releasing,
// so its cells can only come back through heartbeat expiry.
var ErrWorkerKilled = errors.New("cluster: worker killed by chaos injection")

// Worker pulls leases from a Queue and executes their cells on a
// resident caem.SimPool. One Worker drives one executor loop; run
// several (each with its own Worker value) to use more cores. Workers
// are stateless between leases — all fault tolerance lives with the
// coordinator — so a worker process can appear, disappear, or be killed
// at any point without corrupting a campaign.
type Worker struct {
	// Queue distributes the work: the Coordinator itself for in-process
	// workers, a Remote for workers joined over HTTP.
	Queue Queue
	// Name identifies the worker in leases and /cluster/status.
	Name string
	// Poll is the idle re-claim interval when no work is available
	// (default 200ms).
	Poll time.Duration
	// MaxBatch caps how many cells one claim may return (default: the
	// coordinator's batch limit).
	MaxBatch int
	// Chaos, when non-nil, injects deterministic faults.
	Chaos *Chaos
	// Metrics receives the worker's instruments (cells completed,
	// simulated seconds, heartbeat RTT). Nil gets a private registry.
	Metrics *obs.Registry
	// Logger receives structured worker records. Nil discards.
	Logger *slog.Logger

	cellsRun int
	met      *workerMetrics
	log      *slog.Logger
}

// Run claims and executes leases until ctx is cancelled. Cancellation
// is graceful: the in-flight cell finishes, then the lease is released
// — finished results settle, unfinished cells re-queue immediately for
// other workers — and Run returns nil. A Queue error (coordinator
// unreachable) is retried at the poll interval rather than returned, so
// a worker survives coordinator restarts.
func (w *Worker) Run(ctx context.Context) error {
	reg := w.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w.met = newWorkerMetrics(reg, w.Name)
	w.log = w.Logger
	if w.log == nil {
		w.log = obs.NopLogger()
	}
	w.log = w.log.With("worker_id", w.Name)
	pool := caem.NewSimPool()
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	claimFails := 0
	var lastTTL time.Duration // most recent lease TTL; caps the backoff
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		if w.Chaos.shouldDie(w.cellsRun) {
			// Kill budget spent between leases: die here rather than
			// claiming (and stranding) more work.
			w.log.Warn("worker killed by chaos injection", "cells_run", w.cellsRun)
			return ErrWorkerKilled
		}
		lease, err := w.Queue.Claim(w.Name, w.MaxBatch)
		if err != nil {
			claimFails++
			w.met.claimRetries.Inc()
			var ua *UnavailableError
			if errors.Is(err, ErrFenced) || errors.As(err, &ua) {
				// The member we reached is not the leader: fenced means it
				// was deposed, 503 means it is a standby (or draining).
				// Either way, skip straight to whoever leads, when the
				// Queue can tell us — a worker joined only to standbys
				// would otherwise poll 503s forever.
				if res, ok := w.Queue.(interface{ ResolveLeader() (LeaderInfo, error) }); ok {
					if info, rerr := res.ResolveLeader(); rerr == nil {
						w.log.Info("re-resolved cluster leader",
							"leader_url", info.LeaderURL, "epoch", info.Epoch)
					}
				}
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(w.claimBackoff(claimFails, lastTTL, err, poll)):
			}
			continue
		}
		claimFails = 0
		if lease == nil {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
			continue
		}
		if ttl := time.Duration(lease.TTLMillis) * time.Millisecond; ttl > 0 {
			lastTTL = ttl
		}
		if err := w.runLease(ctx, pool, lease); err != nil {
			return err
		}
	}
}

// claimBackoff sizes the wait after the n-th consecutive failed claim:
// exponential from the poll interval with deterministic jitter, never
// exceeding the lease TTL — a worker that waits longer than a TTL
// between probes could miss an entire failover window. A coordinator
// that answered 503 with a Retry-After hint gets that hint honored
// (under the same cap) instead of the exponential schedule.
func (w *Worker) claimBackoff(n int, leaseTTL time.Duration, cause error, poll time.Duration) time.Duration {
	cap := 15 * time.Second
	if leaseTTL > 0 && leaseTTL < cap {
		cap = leaseTTL
	}
	var ua *UnavailableError
	if errors.As(cause, &ua) && ua.RetryAfter > 0 {
		if ua.RetryAfter < cap {
			return ua.RetryAfter
		}
		return cap
	}
	shift := n - 1
	if shift > 6 {
		shift = 6
	}
	delay := poll << shift
	if delay > cap {
		delay = cap
	}
	delay += jitter(w.Name, n, delay/2)
	if delay > cap {
		delay = cap
	}
	return delay
}

// runLease executes one lease under a heartbeat, then settles it.
func (w *Worker) runLease(ctx context.Context, pool *caem.SimPool, l *Lease) error {
	// Heartbeat: renew at TTL/3 until the lease settles. A lost lease
	// (ErrLeaseGone) flips gone so the executor abandons the rest of the
	// batch — the coordinator has already re-queued it.
	var gone atomic.Bool
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	ttl := time.Duration(l.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for n := 1; ; n++ {
			select {
			case <-hbStop:
				return
			case <-t.C:
			}
			if w.Chaos.dropRenewal(l.ID, n) {
				continue
			}
			if d := w.Chaos.delayRenewal(l.ID, n); d > 0 {
				select {
				case <-hbStop:
					return
				case <-time.After(d):
				}
			}
			start := time.Now()
			err := w.Queue.Renew(l.ID)
			w.met.hbRTT.Observe(time.Since(start).Seconds())
			if errors.Is(err, ErrLeaseGone) || errors.Is(err, ErrFenced) {
				// Gone and fenced both mean the batch belongs to someone
				// else now — a fenced lease's epoch died with its grantor.
				w.log.Warn("lease lost mid-batch", "lease_id", l.ID,
					"fenced", errors.Is(err, ErrFenced))
				gone.Store(true)
				return
			}
		}
	}()
	stopHeartbeat := func() {
		close(hbStop)
		<-hbDone
	}

	w.log.Debug("lease claimed", "lease_id", l.ID, "cells", len(l.Cells))
	results := make([]CellResult, 0, len(l.Cells))
	for _, cell := range l.Cells {
		if w.Chaos.shouldDie(w.cellsRun) {
			stopHeartbeat() // SIGKILL stand-in: heartbeats stop with the process
			w.log.Warn("worker killed by chaos injection",
				"lease_id", l.ID, "cells_run", w.cellsRun)
			return ErrWorkerKilled
		}
		if gone.Load() {
			break // lease expired under us; the batch is someone else's now
		}
		r := CellResult{Campaign: cell.Campaign, Index: cell.Index}
		if err := w.Chaos.failCell(cell); err != nil {
			r.Error = err.Error()
		} else {
			w.met.poolRuns.Inc()
			if res, err := pool.RunScenario(cell.Scenario, cell.Config); err != nil {
				r.Error = err.Error()
			} else {
				r.Result = &res
			}
		}
		if r.Error != "" {
			w.met.failed.Inc()
			w.log.Warn("cell failed",
				"lease_id", l.ID, "campaign", cell.Campaign, "cell", cell.Index, "error", r.Error)
		} else {
			w.met.cells.Inc()
			w.met.simSecs.Add(cell.Config.DurationSeconds)
		}
		w.cellsRun++
		results = append(results, r)
		if ctx.Err() != nil {
			break // graceful shutdown: release what we have
		}
	}
	stopHeartbeat()

	if gone.Load() {
		return nil // nothing to settle; results are recomputed elsewhere
	}
	if ctx.Err() != nil || len(results) < len(l.Cells) {
		w.log.Info("lease released", "lease_id", l.ID, "results", len(results))
		w.Queue.Release(l.ID, results)
		return nil
	}
	// Complete's only failure mode that matters is a lost lease, and
	// dropping the batch is the correct response to it either way.
	w.log.Debug("lease completed", "lease_id", l.ID, "results", len(results))
	w.Queue.Complete(l.ID, results)
	return nil
}
