// Package gen is the deterministic scenario generator: it expands a
// parameterized Family plus a (index, seed) pair into unlimited
// distinct-but-valid scenario.Specs, so campaigns can sweep
// scenario-space the way they sweep seeds.
//
// Generation is a pure function: Generate(family, index, seed) draws
// every value from one rng stream keyed by (seed, family name, index),
// so the same inputs always produce a byte-identical spec — which is
// what lets a campaign store re-derive a generated scenario's content
// hash after a restart, and lets the fuzz harness treat any generated
// spec as a reproducible test case.
package gen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/scenario"
)

// Family parameterizes one scenario family. The knobs set the expected
// event mix; the generator turns them into a concrete timeline per
// (index, seed). Zero values mean the documented defaults.
type Family struct {
	// Name identifies the family (generation stream key and spec-name
	// prefix).
	Name string
	// Description is a one-line human summary.
	Description string

	// Nodes is the network size (default 64).
	Nodes int
	// FieldWidthM, FieldHeightM are the deployment area (default 100x100).
	FieldWidthM  float64
	FieldHeightM float64
	// DurationSeconds is the simulated horizon the timeline fills
	// (default 600).
	DurationSeconds float64

	// ChurnRate is the expected node-failure events per 100 simulated
	// seconds; each failure may be followed by a revive, and service
	// crews add occasional battery topups at half the churn rate.
	ChurnRate float64
	// LoadShape picks the traffic trajectory: "steady" (no load events),
	// "diurnal" (ramp waves), "bursty" (random multiplicative bursts), or
	// "ramping" (one long monotone ramp).
	LoadShape string
	// Weather picks the channel regime: "calm" (no channel events),
	// "variable" (mild parameter shifts), or "stormy" (frequent harsh
	// shifts).
	Weather string
	// Heterogeneity is the fraction of nodes (0..1) given per-node
	// rate/energy rules at t = 0.
	Heterogeneity float64
	// EventDensity scales every event rate at once (default 1).
	EventDensity float64
	// MobilityRate is the expected move events per 100 simulated seconds.
	MobilityRate float64
	// InterferenceRate is the expected interference bursts per 100
	// simulated seconds.
	InterferenceRate float64
	// SinkOutages is the number of sink down/up pairs across the run.
	SinkOutages int
}

// withDefaults returns the family with zero knobs filled in.
func (f Family) withDefaults() Family {
	if f.Nodes == 0 {
		f.Nodes = 64
	}
	if f.FieldWidthM == 0 {
		f.FieldWidthM = 100
	}
	if f.FieldHeightM == 0 {
		f.FieldHeightM = 100
	}
	if f.DurationSeconds == 0 {
		f.DurationSeconds = 600
	}
	if f.LoadShape == "" {
		f.LoadShape = "steady"
	}
	if f.Weather == "" {
		f.Weather = "calm"
	}
	if f.EventDensity == 0 {
		f.EventDensity = 1
	}
	return f
}

// Validate reports the first invalid knob, or nil.
func (f Family) Validate() error {
	g := f.withDefaults()
	switch {
	case g.Name == "":
		return fmt.Errorf("gen: family needs a name")
	case g.Nodes < 4:
		return fmt.Errorf("gen: family %q: need at least 4 nodes, got %d", g.Name, g.Nodes)
	case g.FieldWidthM <= 0 || g.FieldHeightM <= 0:
		return fmt.Errorf("gen: family %q: non-positive field", g.Name)
	case g.DurationSeconds < 60:
		return fmt.Errorf("gen: family %q: duration %v below 60 s", g.Name, g.DurationSeconds)
	case g.ChurnRate < 0 || g.MobilityRate < 0 || g.InterferenceRate < 0:
		return fmt.Errorf("gen: family %q: negative event rate", g.Name)
	case g.Heterogeneity < 0 || g.Heterogeneity > 1:
		return fmt.Errorf("gen: family %q: heterogeneity %v outside [0, 1]", g.Name, g.Heterogeneity)
	case g.EventDensity <= 0:
		return fmt.Errorf("gen: family %q: non-positive event density %v", g.Name, g.EventDensity)
	case g.SinkOutages < 0:
		return fmt.Errorf("gen: family %q: negative sink outages", g.Name)
	}
	switch g.LoadShape {
	case "steady", "diurnal", "bursty", "ramping":
	default:
		return fmt.Errorf("gen: family %q: unknown load shape %q", g.Name, g.LoadShape)
	}
	switch g.Weather {
	case "calm", "variable", "stormy":
	default:
		return fmt.Errorf("gen: family %q: unknown weather %q", g.Name, g.Weather)
	}
	return nil
}

// Families returns the preset families, covering all seven event
// categories between them.
func Families() []Family {
	return []Family{
		{
			Name:        "mixed",
			Description: "a bit of everything: churn, bursts, weather, mobility, interference, one sink outage",
			ChurnRate:   1.5, LoadShape: "bursty", Weather: "variable",
			Heterogeneity: 0.2, MobilityRate: 1, InterferenceRate: 0.8, SinkOutages: 1,
		},
		{
			Name:        "churn-heavy",
			Description: "relentless node failures and repairs on steady load",
			ChurnRate:   6, LoadShape: "steady", Weather: "calm", Heterogeneity: 0.1,
		},
		{
			Name:         "mobile",
			Description:  "nodes on the move: re-placements dominate, mild weather",
			MobilityRate: 5, InterferenceRate: 0.5, LoadShape: "steady", Weather: "variable",
		},
		{
			Name:             "interference-storm",
			Description:      "overlapping interference bursts under stormy propagation",
			InterferenceRate: 4, Weather: "stormy", LoadShape: "bursty",
		},
		{
			Name:        "sink-flaky",
			Description: "repeated base-station outages over diurnal load",
			SinkOutages: 3, LoadShape: "diurnal", ChurnRate: 0.5,
		},
		{
			Name:        "load-waves",
			Description: "heterogeneous nodes riding diurnal traffic waves",
			LoadShape:   "diurnal", Heterogeneity: 0.5, Weather: "calm",
		},
		{
			Name:        "dense",
			Description: "stress mix: every category at high density",
			ChurnRate:   3, LoadShape: "bursty", Weather: "stormy",
			Heterogeneity: 0.4, EventDensity: 4,
			MobilityRate: 3, InterferenceRate: 2, SinkOutages: 2,
		},
	}
}

// Find returns the preset family with the given name.
func Find(name string) (Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	names := make([]string, 0, len(Families()))
	for _, f := range Families() {
		names = append(names, f.Name)
	}
	return Family{}, fmt.Errorf("gen: unknown family %q (have %v)", name, names)
}

// genEvent pairs a generated event with its draw order, so the final
// time sort is stable against equal (rounded) timestamps.
type genEvent struct {
	seq int
	ev  scenario.Event
}

// generator bundles the stream and accumulating timeline.
type generator struct {
	st     *rng.Stream
	f      Family
	events []genEvent
}

// round3 truncates to millisecond/10^-3 precision so generated specs
// serialize tidily and identically everywhere.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func (g *generator) add(ev scenario.Event) {
	g.events = append(g.events, genEvent{seq: len(g.events), ev: ev})
}

// count draws a Poisson event count for a per-100s rate over the run.
func (g *generator) count(ratePer100s float64) int {
	mean := ratePer100s * g.f.DurationSeconds / 100 * g.f.EventDensity
	if mean <= 0 {
		return 0
	}
	return g.st.Poisson(mean)
}

// uniform draws from [lo, hi).
func (g *generator) uniform(lo, hi float64) float64 {
	return lo + g.st.Float64()*(hi-lo)
}

// someNodes draws a small random node selection: either a strided range
// or explicit indices.
func (g *generator) someNodes() scenario.Selector {
	n := g.f.Nodes
	if g.st.Float64() < 0.5 {
		from := g.st.Intn(n - 1)
		to := from + 1 + g.st.Intn(n-from-1)
		every := 1 + g.st.Intn(3)
		return scenario.Selector{From: from, To: to, Every: every}
	}
	k := 1 + g.st.Intn(max(1, n/10))
	seen := make(map[int]bool, k)
	idx := make([]int, 0, k)
	for len(idx) < k {
		i := g.st.Intn(n)
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return scenario.Selector{Indices: idx}
}

// someRegion draws a rectangle covering at least ~20% of each field
// dimension, fully inside the field.
func (g *generator) someRegion() scenario.Region {
	w := g.uniform(0.2*g.f.FieldWidthM, g.f.FieldWidthM)
	h := g.uniform(0.2*g.f.FieldHeightM, g.f.FieldHeightM)
	x := g.uniform(0, g.f.FieldWidthM-w)
	y := g.uniform(0, g.f.FieldHeightM-h)
	return scenario.Region{X: round3(x), Y: round3(y), Width: round3(w), Height: round3(h)}
}

// Generate expands the family at (index, seed) into a complete valid
// spec. It is a pure function of its arguments: the same triple always
// returns a byte-identical spec.
func Generate(f Family, index int, seed uint64) (scenario.Spec, error) {
	if err := f.Validate(); err != nil {
		return scenario.Spec{}, err
	}
	if index < 0 {
		return scenario.Spec{}, fmt.Errorf("gen: negative index %d", index)
	}
	f = f.withDefaults()
	g := &generator{
		st: rng.NewSource(seed).Stream("scenario-gen/"+f.Name, uint64(index)),
		f:  f,
	}

	spec := scenario.Spec{
		Name:        fmt.Sprintf("gen/%s/%d/%d", f.Name, seed, index),
		Description: fmt.Sprintf("generated from family %q (index %d, seed %d)", f.Name, index, seed),
		Config:      configJSON(f),
		Nodes:       g.nodeRules(),
	}

	g.churn()
	g.load()
	g.weather()
	g.mobility()
	g.interference()
	g.sink()

	sort.SliceStable(g.events, func(i, j int) bool {
		if g.events[i].ev.AtSeconds != g.events[j].ev.AtSeconds {
			return g.events[i].ev.AtSeconds < g.events[j].ev.AtSeconds
		}
		return g.events[i].seq < g.events[j].seq
	})
	spec.Timeline = make([]scenario.Event, len(g.events))
	for i, e := range g.events {
		spec.Timeline[i] = e.ev
	}

	if err := spec.Validate(); err != nil {
		return scenario.Spec{}, fmt.Errorf("gen: family %q produced an invalid spec: %w", f.Name, err)
	}
	return spec, nil
}

// configJSON renders the family's topology as a partial public-config
// overlay (the caem.Config JSON keys scenarios/SPEC.md documents).
func configJSON(f Family) []byte {
	return fmt.Appendf(nil,
		`{"nodes": %d, "fieldWidthM": %s, "fieldHeightM": %s, "durationSeconds": %s}`,
		f.Nodes, num(f.FieldWidthM), num(f.FieldHeightM), num(f.DurationSeconds))
}

// num formats a float the way encoding/json would.
func num(v float64) string { return fmt.Sprintf("%g", v) }

// nodeRules emits the heterogeneity mix: a leading fraction of the
// index space gets scaled rates, a trailing fraction scaled batteries.
func (g *generator) nodeRules() []scenario.NodeRule {
	if g.f.Heterogeneity <= 0 {
		return nil
	}
	k := int(math.Round(g.f.Heterogeneity * float64(g.f.Nodes)))
	if k < 1 {
		k = 1
	}
	rules := []scenario.NodeRule{{
		Nodes:     scenario.Selector{From: 0, To: k},
		RateScale: round3(g.uniform(0.25, 3)),
	}}
	if g.st.Float64() < 0.7 {
		rules = append(rules, scenario.NodeRule{
			Nodes:       scenario.Selector{From: g.f.Nodes - k, To: g.f.Nodes},
			EnergyScale: round3(g.uniform(0.5, 2)),
		})
	}
	return rules
}

// churn emits kill events, mostly-paired revives, and service topups.
func (g *generator) churn() {
	d := g.f.DurationSeconds
	for i, n := 0, g.count(g.f.ChurnRate); i < n; i++ {
		at := round3(g.uniform(0.05*d, 0.8*d))
		sel := g.someNodes()
		g.add(scenario.Event{AtSeconds: at, Type: scenario.EventKill, Nodes: sel})
		if g.st.Float64() < 0.7 {
			back := round3(at + g.uniform(5, 0.15*d))
			g.add(scenario.Event{AtSeconds: back, Type: scenario.EventRevive, Nodes: sel})
		}
	}
	for i, n := 0, g.count(g.f.ChurnRate*0.5); i < n; i++ {
		g.add(scenario.Event{
			AtSeconds: round3(g.uniform(0.1*d, 0.9*d)),
			Type:      scenario.EventTopUp,
			Nodes:     g.someNodes(),
			EnergyJ:   round3(g.uniform(0.5, 2)),
		})
	}
}

// load emits the traffic trajectory for the family's shape.
func (g *generator) load() {
	d := g.f.DurationSeconds
	switch g.f.LoadShape {
	case "steady":
		// No load events: the base rate carries the run.
	case "diurnal":
		waves := 2 + g.st.Intn(3)
		for w := 0; w < waves; w++ {
			at := round3(g.uniform(0, 0.8*d))
			peak := round3(g.uniform(4, 12))
			g.add(scenario.Event{
				AtSeconds:       at,
				Type:            scenario.EventRampRate,
				RatePerSecond:   &peak,
				DurationSeconds: round3(g.uniform(0.05*d, 0.15*d)),
				Steps:           4 + g.st.Intn(7),
			})
		}
	case "bursty":
		for i, n := 0, g.count(2); i < n; i++ {
			ev := scenario.Event{
				AtSeconds:       round3(g.uniform(0, 0.9*d)),
				Type:            scenario.EventBurst,
				Scale:           round3(g.uniform(1.5, 4)),
				DurationSeconds: round3(g.uniform(0.02*d, 0.1*d)),
			}
			if g.st.Float64() < 0.5 {
				ev.Nodes = g.someNodes()
			}
			g.add(ev)
		}
	case "ramping":
		target := round3(g.uniform(6, 15))
		g.add(scenario.Event{
			AtSeconds:       round3(g.uniform(0, 0.2*d)),
			Type:            scenario.EventRampRate,
			RatePerSecond:   &target,
			DurationSeconds: round3(g.uniform(0.3*d, 0.6*d)),
			Steps:           8,
		})
	}
}

// weather emits channel-parameter shifts for the family's regime. The
// drawn values stay inside channel.Params.Validate's accepted ranges,
// so every generated shift passes the compile-time pre-flight.
func (g *generator) weather() {
	d := g.f.DurationSeconds
	var n int
	harsh := false
	switch g.f.Weather {
	case "calm":
		return
	case "variable":
		n = g.count(1.5)
	case "stormy":
		n = g.count(3)
		harsh = true
	}
	for i := 0; i < n; i++ {
		shift := &scenario.ChannelShift{}
		pick := g.st.Intn(4)
		switch pick {
		case 0:
			v := round3(g.uniform(2.2, 3.5))
			if harsh {
				v = round3(g.uniform(3, 4.5))
			}
			shift.PathLossExponent = &v
		case 1:
			v := round3(g.uniform(2, 8))
			if harsh {
				v = round3(g.uniform(6, 12))
			}
			shift.ShadowingSigmaDB = &v
		case 2:
			v := round3(g.uniform(18, 35))
			if harsh {
				v = round3(g.uniform(12, 25))
			}
			shift.ReferenceSNRdB = &v
		case 3:
			v := round3(g.uniform(1, 30))
			shift.DopplerHz = &v
		}
		g.add(scenario.Event{
			AtSeconds: round3(g.uniform(0, 0.95*d)),
			Type:      scenario.EventChannel,
			Channel:   shift,
		})
	}
}

// mobility emits move events: mostly region scatters, sometimes a
// single-node point move.
func (g *generator) mobility() {
	d := g.f.DurationSeconds
	for i, n := 0, g.count(g.f.MobilityRate); i < n; i++ {
		at := round3(g.uniform(0.02*d, 0.95*d))
		if g.st.Float64() < 0.7 {
			r := g.someRegion()
			g.add(scenario.Event{
				AtSeconds: at,
				Type:      scenario.EventMove,
				Nodes:     g.someNodes(),
				Region:    &r,
			})
		} else {
			x := round3(g.uniform(0, g.f.FieldWidthM))
			y := round3(g.uniform(0, g.f.FieldHeightM))
			g.add(scenario.Event{
				AtSeconds: at,
				Type:      scenario.EventMove,
				Nodes:     scenario.Selector{Indices: []int{g.st.Intn(g.f.Nodes)}},
				X:         &x, Y: &y,
			})
		}
	}
}

// interference emits penalty bursts over random footprints.
func (g *generator) interference() {
	d := g.f.DurationSeconds
	for i, n := 0, g.count(g.f.InterferenceRate); i < n; i++ {
		r := g.someRegion()
		g.add(scenario.Event{
			AtSeconds:       round3(g.uniform(0, 0.9*d)),
			Type:            scenario.EventInterference,
			Region:          &r,
			PenaltyDB:       round3(g.uniform(3, 20)),
			DurationSeconds: round3(g.uniform(0.02*d, 0.2*d)),
		})
	}
}

// sink emits outage down/up pairs.
func (g *generator) sink() {
	d := g.f.DurationSeconds
	for i := 0; i < g.f.SinkOutages; i++ {
		down := round3(g.uniform(0.1*d, 0.8*d))
		up := round3(down + g.uniform(0.02*d, 0.15*d))
		g.add(scenario.Event{AtSeconds: down, Type: scenario.EventSinkDown})
		g.add(scenario.Event{AtSeconds: up, Type: scenario.EventSinkUp})
	}
}
