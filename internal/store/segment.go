package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segmentsDir = "segments"
	segmentExt  = ".jsonl"
	// footerVersion is the on-disk segment footer format version.
	footerVersion = 2
	// segTrailerLen is the fixed length of the final trailer line: a
	// zero-padded decimal byte offset of the footer line plus "\n". A
	// fixed-width trailer lets Open find the footer by reading the last
	// 21 bytes instead of scanning the records.
	segTrailerLen = 21
)

// segFooter is the self-describing metadata appended after a segment's
// record lines: enough to route lookups (bloom + key ranges) and to
// validate the record region, without decoding a single record. Open
// reads only footers, which is what makes startup O(segments) + active
// tail instead of O(cells).
type segFooter struct {
	V        int    `json:"v"`
	Records  int    `json:"records"`  // record lines (one per distinct key)
	DataSize int64  `json:"dataSize"` // bytes of the record region
	MinScen  string `json:"minScenario"`
	MaxScen  string `json:"maxScenario"`
	MinProto string `json:"minProtocol"`
	MaxProto string `json:"maxProtocol"`
	MinSeed  uint64 `json:"minSeed"`
	MaxSeed  uint64 `json:"maxSeed"`
	Bloom    *bloom `json:"bloom"`
}

// segEntry locates one record line inside a segment's record region.
type segEntry struct {
	Off int64
	Len int
}

// segment is one immutable segment file: record lines in first-put
// order (deduplicated — a roll keeps only the latest version of each
// key), then a footer line, then the fixed-width trailer. The footer is
// resident from Open; the per-key index is loaded lazily on the first
// lookup that the bloom filter cannot rule out, and cached.
type segment struct {
	path   string
	seq    int
	footer segFooter
	f      *os.File            // lazily opened read handle
	index  map[string]segEntry // lazily built key index
	order  []Key               // keys in record order
}

// segName renders the canonical file name for a sequence number.
func segName(seq int) string {
	return fmt.Sprintf("seg-%06d%s", seq, segmentExt)
}

// parseSegSeq extracts the sequence number from a segment file name.
func parseSegSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, segmentExt) {
		return 0, false
	}
	seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), segmentExt))
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// mayContain reports whether the segment could hold the key: the bloom
// filter plus the footer's scenario/protocol/seed ranges. False means
// definitely absent, so the lookup skips the segment entirely.
func (g *segment) mayContain(k Key, ks string) bool {
	ft := &g.footer
	if k.Scenario < ft.MinScen || k.Scenario > ft.MaxScen {
		return false
	}
	if k.Protocol < ft.MinProto || k.Protocol > ft.MaxProto {
		return false
	}
	if k.Seed < ft.MinSeed || k.Seed > ft.MaxSeed {
		return false
	}
	return ft.Bloom.has(ks)
}

// open returns the segment's read handle, opening it on first use.
func (g *segment) open() (*os.File, error) {
	if g.f != nil {
		return g.f, nil
	}
	f, err := os.Open(g.path)
	if err != nil {
		return nil, fmt.Errorf("store: opening segment: %w", err)
	}
	g.f = f
	return f, nil
}

// closeHandle drops the cached read handle (after a compaction swapped
// the file underneath it, or on store close).
func (g *segment) closeHandle() {
	if g.f != nil {
		g.f.Close()
		g.f = nil
	}
}

// ensureIndex loads the segment's key index on first use: one read of
// the record region, one JSON key-decode per line. The caller holds the
// store lock.
func (g *segment) ensureIndex() error {
	if g.index != nil {
		return nil
	}
	f, err := g.open()
	if err != nil {
		return err
	}
	buf := make([]byte, g.footer.DataSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("store: reading segment %s records: %w", filepath.Base(g.path), err)
	}
	index := make(map[string]segEntry, g.footer.Records)
	order := make([]Key, 0, g.footer.Records)
	off := int64(0)
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			return fmt.Errorf("store: segment %s record region is not line-terminated", filepath.Base(g.path))
		}
		var r Record
		if err := json.Unmarshal(buf[:nl], &r); err != nil {
			return fmt.Errorf("store: segment %s holds a corrupt record at %d: %w", filepath.Base(g.path), off, err)
		}
		ks := r.Key().String()
		if _, dup := index[ks]; !dup {
			order = append(order, r.Key())
		}
		index[ks] = segEntry{Off: off, Len: nl + 1}
		off += int64(nl + 1)
		buf = buf[nl+1:]
	}
	g.index, g.order = index, order
	return nil
}

// readAt decodes the record at a segment entry.
func (g *segment) readAt(e segEntry, r *Record) error {
	f, err := g.open()
	if err != nil {
		return err
	}
	buf := make([]byte, e.Len)
	if _, err := f.ReadAt(buf, e.Off); err != nil {
		return fmt.Errorf("store: reading segment record at %d: %w", e.Off, err)
	}
	if err := json.Unmarshal(bytes.TrimSuffix(buf, []byte{'\n'}), r); err != nil {
		return fmt.Errorf("store: corrupt segment record at %d: %w", e.Off, err)
	}
	return nil
}

// rawAt returns the raw line bytes (newline included) at a segment entry.
func (g *segment) rawAt(e segEntry) ([]byte, error) {
	f, err := g.open()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, e.Len)
	if _, err := f.ReadAt(buf, e.Off); err != nil {
		return nil, fmt.Errorf("store: reading segment record at %d: %w", e.Off, err)
	}
	return buf, nil
}

// footerOf builds the footer for a set of record lines about to become
// a segment.
func footerOf(keys []Key, dataSize int64) segFooter {
	ft := segFooter{V: footerVersion, Records: len(keys), DataSize: dataSize, Bloom: newBloom(len(keys))}
	for i, k := range keys {
		if i == 0 {
			ft.MinScen, ft.MaxScen = k.Scenario, k.Scenario
			ft.MinProto, ft.MaxProto = k.Protocol, k.Protocol
			ft.MinSeed, ft.MaxSeed = k.Seed, k.Seed
		} else {
			ft.MinScen = min(ft.MinScen, k.Scenario)
			ft.MaxScen = max(ft.MaxScen, k.Scenario)
			ft.MinProto = min(ft.MinProto, k.Protocol)
			ft.MaxProto = max(ft.MaxProto, k.Protocol)
			ft.MinSeed = min(ft.MinSeed, k.Seed)
			ft.MaxSeed = max(ft.MaxSeed, k.Seed)
		}
		ft.Bloom.add(k.String())
	}
	return ft
}

// writeSegmentFile writes record lines + footer + trailer to path via a
// temp file and atomic rename. A crash at any point leaves either no
// segment (ignored .tmp) or the complete one — never a partial segment.
func writeSegmentFile(path string, lines [][]byte, footer segFooter) error {
	ftBlob, err := json.Marshal(footer)
	if err != nil {
		return fmt.Errorf("store: marshaling segment footer: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp) // no-op after a successful rename
	off := int64(0)
	for _, line := range lines {
		if _, err := f.Write(line); err != nil {
			f.Close()
			return fmt.Errorf("store: writing segment: %w", err)
		}
		off += int64(len(line))
	}
	if off != footer.DataSize {
		f.Close()
		return fmt.Errorf("store: segment data size mismatch (%d written, footer says %d)", off, footer.DataSize)
	}
	if _, err := f.Write(append(ftBlob, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("store: writing segment footer: %w", err)
	}
	trailer := fmt.Sprintf("%0*d\n", segTrailerLen-1, off)
	if _, err := f.WriteString(trailer); err != nil {
		f.Close()
		return fmt.Errorf("store: writing segment trailer: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: publishing segment: %w", err)
	}
	return nil
}

// openSegment loads a segment's footer (not its records): read the
// fixed-width trailer, seek to the footer line, decode it, and validate
// it against the file size.
func openSegment(path string, seq int) (*segment, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size < segTrailerLen {
		return nil, fmt.Errorf("store: segment %s is too short (%d bytes)", filepath.Base(path), size)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	trailer := make([]byte, segTrailerLen)
	if _, err := f.ReadAt(trailer, size-segTrailerLen); err != nil {
		return nil, fmt.Errorf("store: reading segment trailer: %w", err)
	}
	footerOff, err := strconv.ParseInt(strings.TrimLeft(strings.TrimSuffix(string(trailer), "\n"), "0"), 10, 64)
	if err != nil {
		if strings.Trim(string(trailer), "0\n") == "" {
			footerOff = 0 // all-zero trailer: footer at offset 0 (empty segment)
		} else {
			return nil, fmt.Errorf("store: segment %s trailer is corrupt: %w", filepath.Base(path), err)
		}
	}
	if footerOff < 0 || footerOff > size-segTrailerLen {
		return nil, fmt.Errorf("store: segment %s footer offset %d out of range", filepath.Base(path), footerOff)
	}
	ftBlob := make([]byte, size-segTrailerLen-footerOff)
	if _, err := f.ReadAt(ftBlob, footerOff); err != nil {
		return nil, fmt.Errorf("store: reading segment footer: %w", err)
	}
	var ft segFooter
	if err := json.Unmarshal(ftBlob, &ft); err != nil {
		return nil, fmt.Errorf("store: segment %s footer is corrupt: %w", filepath.Base(path), err)
	}
	if ft.V != footerVersion || ft.DataSize != footerOff || ft.Records < 0 || ft.Bloom == nil {
		return nil, fmt.Errorf("store: segment %s footer is inconsistent (v=%d dataSize=%d off=%d)",
			filepath.Base(path), ft.V, ft.DataSize, footerOff)
	}
	return &segment{path: path, seq: seq, footer: ft}, nil
}

// loadSegments enumerates dir's segment files in sequence order,
// loading footers only. Stray .tmp files from a crashed roll or
// compaction are removed — their contents either never became durable
// (roll republishes from the still-intact active log) or are an
// abandoned rewrite of a segment that still exists in full.
func loadSegments(dir string) ([]*segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segs []*segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		seq, ok := parseSegSeq(name)
		if !ok {
			continue
		}
		seg, err := openSegment(filepath.Join(dir, name), seq)
		if err != nil {
			return nil, err
		}
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}
