package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable time source shared by contending locks.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func lockAt(path, holder string, c *fakeClock) *LeaderLock {
	return &LeaderLock{Path: path, TTL: time.Second, Holder: holder, URL: "http://" + holder, now: c.now}
}

// TestLeaderLockHandoff walks the full leadership lifecycle: acquire,
// contention, renewal, voluntary release, takeover with an epoch bump,
// and fencing of the deposed holder's renewals.
func TestLeaderLockHandoff(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "leader.lock")
	primary := lockAt(path, "primary", clk)
	standby := lockAt(path, "standby", clk)

	epoch, err := primary.TryAcquire()
	if err != nil || epoch != 1 {
		t.Fatalf("TryAcquire = %d, %v; want 1, nil", epoch, err)
	}
	if _, err := standby.TryAcquire(); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("standby acquired a live lock: %v", err)
	}
	clk.advance(600 * time.Millisecond)
	if err := primary.Renew(epoch); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	// The renewal pushed the deadline out; the standby still loses.
	clk.advance(600 * time.Millisecond)
	if _, err := standby.TryAcquire(); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("standby acquired a renewed lock: %v", err)
	}

	// Voluntary release: the standby takes over immediately at epoch 2.
	if err := primary.Release(epoch); err != nil {
		t.Fatal(err)
	}
	e2, err := standby.TryAcquire()
	if err != nil || e2 != 2 {
		t.Fatalf("standby TryAcquire after release = %d, %v; want 2, nil", e2, err)
	}
	// The deposed primary's renewals are rejected — it must fence.
	if err := primary.Renew(epoch); !errors.Is(err, ErrLockLost) {
		t.Fatalf("deposed primary Renew = %v, want ErrLockLost", err)
	}
	info, err := ReadLockFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Holder != "standby" || info.Epoch != 2 || info.URL != "http://standby" {
		t.Fatalf("lock = %+v, want standby at epoch 2", info)
	}
}

// TestLeaderLockExpiry: a holder that stops renewing is deposed once
// its deadline lapses, and re-acquiring after deposition bumps the
// epoch past the usurper's.
func TestLeaderLockExpiry(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "leader.lock")
	primary := lockAt(path, "primary", clk)
	standby := lockAt(path, "standby", clk)

	if _, err := primary.TryAcquire(); err != nil {
		t.Fatal(err)
	}
	clk.advance(1100 * time.Millisecond) // past the 1s TTL: primary presumed dead
	e2, err := standby.TryAcquire()
	if err != nil || e2 != 2 {
		t.Fatalf("standby TryAcquire after expiry = %d, %v; want 2, nil", e2, err)
	}
	// The resurrected primary cannot renew epoch 1, but can rejoin the
	// rotation and win epoch 3 after the standby in turn goes silent.
	if err := primary.Renew(1); !errors.Is(err, ErrLockLost) {
		t.Fatalf("zombie Renew = %v, want ErrLockLost", err)
	}
	clk.advance(1100 * time.Millisecond)
	e3, err := primary.TryAcquire()
	if err != nil || e3 != 3 {
		t.Fatalf("primary re-acquire = %d, %v; want 3, nil", e3, err)
	}
}

// TestLeaderLockCrashedClaimer: a claim sidecar left behind by a dead
// claimer does not block acquisition — the kernel released the flock
// with the process, so the file's mere existence means nothing.
func TestLeaderLockCrashedClaimer(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "leader.lock")
	lock := lockAt(path, "primary", clk)

	claim := path + ".claim"
	if err := os.MkdirAll(filepath.Dir(claim), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(claim, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if epoch, err := lock.TryAcquire(); err != nil || epoch != 1 {
		t.Fatalf("TryAcquire over an unlocked claim file = %d, %v; want 1, nil", epoch, err)
	}
}

// TestLeaderLockClaimContention: while one claimer holds the claim, a
// contender's TryAcquire degrades to ErrLockHeld instead of blocking
// forever; once the holder releases, the contender acquires.
func TestLeaderLockClaimContention(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "leader.lock")
	a := lockAt(path, "a", clk)
	b := lockAt(path, "b", clk)

	entered := make(chan struct{})
	exit := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- a.withClaim(func() error {
			close(entered)
			<-exit
			return nil
		})
	}()
	<-entered
	if _, err := b.TryAcquire(); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("TryAcquire against a held claim = %v, want ErrLockHeld", err)
	}
	close(exit)
	if err := <-done; err != nil {
		t.Fatalf("withClaim: %v", err)
	}
	if epoch, err := b.TryAcquire(); err != nil || epoch != 1 {
		t.Fatalf("TryAcquire after release = %d, %v; want 1, nil", epoch, err)
	}
}

// TestLeaderLockConcurrentTakeover: many contenders racing to take over
// an expired lock produce exactly one winner and exactly one epoch bump
// — the serialization the claim exists to provide. (Under the old
// stale-claim sweep, two sweepers could remove each other's sidecars
// and both win the same epoch.)
func TestLeaderLockConcurrentTakeover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "leader.lock")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	seed := &LeaderLock{Path: path, Holder: "dead", TTL: time.Minute}
	if err := seed.writeLocked(LockInfo{
		Epoch:    4,
		Holder:   "dead",
		Deadline: time.Now().Add(-time.Hour).UnixMilli(),
	}); err != nil {
		t.Fatal(err)
	}

	const contenders = 8
	wins := make(chan int64, contenders)
	var wg sync.WaitGroup
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := &LeaderLock{Path: path, Holder: fmt.Sprintf("c%d", i), TTL: time.Minute}
			if epoch, err := l.TryAcquire(); err == nil {
				wins <- epoch
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var got []int64
	for e := range wins {
		got = append(got, e)
	}
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("winners = %v, want exactly one at epoch 5", got)
	}
	info, err := ReadLockFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 5 {
		t.Fatalf("final epoch = %d, want 5", info.Epoch)
	}
}

// TestLeaderLockVerify covers the synchronous fence check: a live
// holder passes, a lapsed-but-unchallenged holder renews inline, and a
// deposed holder gets ErrLockLost.
func TestLeaderLockVerify(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "leader.lock")
	primary := lockAt(path, "primary", clk)
	standby := lockAt(path, "standby", clk)

	epoch, err := primary.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Verify(epoch); err != nil {
		t.Fatalf("Verify while live: %v", err)
	}
	if err := primary.Verify(epoch + 1); !errors.Is(err, ErrLockLost) {
		t.Fatalf("Verify at the wrong epoch = %v, want ErrLockLost", err)
	}
	// Deadline lapsed but no successor appeared: Verify renews inline so
	// the guarded write proceeds under a live lease.
	clk.advance(1100 * time.Millisecond)
	if err := primary.Verify(epoch); err != nil {
		t.Fatalf("Verify after lapse without successor: %v", err)
	}
	if info, err := ReadLockFile(path); err != nil || info.Expired(clk.t) {
		t.Fatalf("lock not renewed inline: %+v, %v", info, err)
	}
	// A successor took over: the zombie's Verify must fence it.
	clk.advance(1100 * time.Millisecond)
	if _, err := standby.TryAcquire(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Verify(epoch); !errors.Is(err, ErrLockLost) {
		t.Fatalf("zombie Verify = %v, want ErrLockLost", err)
	}
}
