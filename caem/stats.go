package caem

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Aggregate summarizes one metric across seed replicates: the sample
// mean with its dispersion and a 95% Student-t confidence interval.
// SD and CI95 are NaN for fewer than two replicates (a single run
// carries no dispersion information); String renders such aggregates
// as the bare mean.
type Aggregate struct {
	// N is the number of replicates aggregated.
	N int
	// Mean is the sample mean.
	Mean float64
	// SD is the unbiased sample standard deviation (NaN for N < 2).
	SD float64
	// CI95 is the half width of the two-sided 95% confidence interval
	// for the mean (NaN for N < 2); the interval is Mean ± CI95.
	CI95 float64
	// Min and Max bound the observed replicates.
	Min, Max float64
}

// AggregateOf summarizes a sample of metric values, typically one
// metric across seed replicates.
func AggregateOf(values ...float64) Aggregate {
	var s stats.Stream
	for _, v := range values {
		s.Add(v)
	}
	return newAggregate(&s)
}

func newAggregate(s *stats.Stream) Aggregate {
	return Aggregate{
		N:    int(s.Count()),
		Mean: s.Mean(),
		SD:   s.SampleStdDev(),
		CI95: s.CI95(),
		Min:  s.Min(),
		Max:  s.Max(),
	}
}

// String renders "mean±ci95" (or the bare mean when no interval is
// defined) with three decimals; use Format for other precisions.
func (a Aggregate) String() string { return a.Format(3) }

// Format renders "mean±ci95" at the given decimal precision, falling
// back to the bare mean when the interval is undefined (N < 2).
func (a Aggregate) Format(prec int) string {
	if a.N < 2 || math.IsNaN(a.CI95) {
		return fmt.Sprintf("%.*f", prec, a.Mean)
	}
	return fmt.Sprintf("%.*f±%.*f", prec, a.Mean, prec, a.CI95)
}

// MarshalJSON encodes the aggregate with undefined statistics (the NaN
// SD/CI95 of a single-replicate sample) as JSON null instead of failing
// the whole document, so campaign reports serialize at any replication
// level. Decoding null back yields NaN via UnmarshalJSON.
func (a Aggregate) MarshalJSON() ([]byte, error) {
	return json.Marshal(aggregateJSON{
		N:    a.N,
		Mean: a.Mean,
		SD:   nanToNil(a.SD),
		CI95: nanToNil(a.CI95),
		Min:  a.Min,
		Max:  a.Max,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON: null dispersion fields
// decode to NaN, matching AggregateOf's NaN policy.
func (a *Aggregate) UnmarshalJSON(data []byte) error {
	var v aggregateJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*a = Aggregate{N: v.N, Mean: v.Mean, SD: nilToNaN(v.SD), CI95: nilToNaN(v.CI95), Min: v.Min, Max: v.Max}
	return nil
}

// aggregateJSON is the wire form of Aggregate: dispersion fields are
// nullable because they are NaN below two replicates.
type aggregateJSON struct {
	N    int      `json:"n"`
	Mean float64  `json:"mean"`
	SD   *float64 `json:"sd"`
	CI95 *float64 `json:"ci95"`
	Min  float64  `json:"min"`
	Max  float64  `json:"max"`
}

func nanToNil(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

func nilToNaN(v *float64) float64 {
	if v == nil {
		return math.NaN()
	}
	return *v
}

// Scaled returns the aggregate with every statistic multiplied by f —
// unit conversions for display (fractions to percent, J to mJ).
func (a Aggregate) Scaled(f float64) Aggregate {
	a.Mean *= f
	a.SD *= f
	a.CI95 *= f
	a.Min *= f
	a.Max *= f
	return a
}

// CampaignAggregate is the statistical summary of one campaign
// (scenario, protocol) cell group across its seed replicates.
type CampaignAggregate struct {
	Scenario string
	Protocol Protocol
	// Seeds is the number of replicates behind every Aggregate.
	Seeds int

	ConsumedJ             Aggregate
	DeliveryRate          Aggregate
	MeanDelayMs           Aggregate
	P95DelayMs            Aggregate
	EnergyPerPacketMilliJ Aggregate
	AliveAtEnd            Aggregate
}

// AggregateCampaign collapses RunCampaign's per-seed cells into one
// statistical summary per (scenario, protocol) group, in first-
// appearance order — the submission order of the campaign grid. This
// is the report campaigns should publish: mean ± 95% CI per cell group
// rather than raw per-seed rows.
func AggregateCampaign(cells []CampaignCell) []CampaignAggregate {
	type key struct {
		scenario string
		protocol Protocol
	}
	type acc struct {
		consumed, delivery, delay, p95, epp, alive stats.Stream
	}
	order := make([]key, 0, 8)
	groups := make(map[key]*acc, 8)
	for _, c := range cells {
		k := key{c.Scenario, c.Protocol}
		g, ok := groups[k]
		if !ok {
			g = &acc{}
			groups[k] = g
			order = append(order, k)
		}
		g.consumed.Add(c.Result.TotalConsumedJ)
		g.delivery.Add(c.Result.DeliveryRate)
		g.delay.Add(c.Result.MeanDelayMs)
		g.p95.Add(c.Result.P95DelayMs)
		g.epp.Add(c.Result.EnergyPerPacketMilliJ)
		g.alive.Add(float64(c.Result.AliveAtEnd))
	}
	out := make([]CampaignAggregate, 0, len(order))
	for _, k := range order {
		g := groups[k]
		out = append(out, CampaignAggregate{
			Scenario:              k.scenario,
			Protocol:              k.protocol,
			Seeds:                 int(g.consumed.Count()),
			ConsumedJ:             newAggregate(&g.consumed),
			DeliveryRate:          newAggregate(&g.delivery),
			MeanDelayMs:           newAggregate(&g.delay),
			P95DelayMs:            newAggregate(&g.p95),
			EnergyPerPacketMilliJ: newAggregate(&g.epp),
			AliveAtEnd:            newAggregate(&g.alive),
		})
	}
	return out
}
