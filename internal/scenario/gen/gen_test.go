package gen

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// TestGenerateReproducible is the generator's core contract: the same
// (family, index, seed) triple yields a byte-identical spec, and
// different indices yield distinct specs.
func TestGenerateReproducible(t *testing.T) {
	for _, f := range Families() {
		a, err := Generate(f, 3, 42)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		b, err := Generate(f, 3, 42)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Errorf("%s: same inputs produced different specs", f.Name)
		}
		c, err := Generate(f, 4, 42)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		jc, _ := json.Marshal(c)
		if bytes.Equal(ja, jc) {
			t.Errorf("%s: indices 3 and 4 produced identical specs", f.Name)
		}
		d, err := Generate(f, 3, 43)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		jd, _ := json.Marshal(d)
		if bytes.Equal(ja, jd) {
			t.Errorf("%s: seeds 42 and 43 produced identical specs", f.Name)
		}
	}
}

// TestGeneratedSpecsRoundTrip checks generated specs survive the strict
// loader (marshal → Load → Validate) and compile onto a core config.
func TestGeneratedSpecsRoundTrip(t *testing.T) {
	for _, f := range Families() {
		for idx := 0; idx < 4; idx++ {
			s, err := Generate(f, idx, 7)
			if err != nil {
				t.Fatalf("%s/%d: %v", f.Name, idx, err)
			}
			blob, err := json.Marshal(s)
			if err != nil {
				t.Fatalf("%s/%d: marshal: %v", f.Name, idx, err)
			}
			loaded, err := scenario.Load(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("%s/%d: load: %v", f.Name, idx, err)
			}
			cfg := core.DefaultConfig()
			cfg.Nodes = f.withDefaults().Nodes
			cfg.FieldWidth = f.withDefaults().FieldWidthM
			cfg.FieldHeight = f.withDefaults().FieldHeightM
			if err := scenario.Compile(loaded, &cfg); err != nil {
				t.Fatalf("%s/%d: compile: %v", f.Name, idx, err)
			}
		}
	}
}

// TestFamiliesCoverAllCategories proves the preset families between them
// exercise all seven event categories.
func TestFamiliesCoverAllCategories(t *testing.T) {
	categories := map[scenario.EventType]string{
		scenario.EventKill: "lifecycle", scenario.EventRevive: "lifecycle",
		scenario.EventTopUp:   "energy",
		scenario.EventSetRate: "traffic", scenario.EventScaleRate: "traffic",
		scenario.EventRampRate: "traffic", scenario.EventBurst: "traffic",
		scenario.EventChannel:      "channel",
		scenario.EventMove:         "mobility",
		scenario.EventInterference: "interference",
		scenario.EventSinkDown:     "sink", scenario.EventSinkUp: "sink",
	}
	seen := map[string]bool{}
	for _, f := range Families() {
		for idx := 0; idx < 8; idx++ {
			s, err := Generate(f, idx, 1)
			if err != nil {
				t.Fatalf("%s/%d: %v", f.Name, idx, err)
			}
			for _, ev := range s.Timeline {
				seen[categories[ev.Type]] = true
			}
		}
	}
	for _, want := range []string{"lifecycle", "energy", "traffic", "channel", "mobility", "interference", "sink"} {
		if !seen[want] {
			t.Errorf("no preset family generated a %s event", want)
		}
	}
}

// TestFamilyValidate rejects bad knobs.
func TestFamilyValidate(t *testing.T) {
	bad := []Family{
		{},                               // no name
		{Name: "x", Nodes: 2},            // too few nodes
		{Name: "x", DurationSeconds: 10}, // too short
		{Name: "x", LoadShape: "sawtooth"},
		{Name: "x", Weather: "apocalyptic"},
		{Name: "x", Heterogeneity: 1.5},
		{Name: "x", ChurnRate: -1},
		{Name: "x", EventDensity: -2},
		{Name: "x", SinkOutages: -1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad family %d validated", i)
		}
		if _, err := Generate(f, 0, 1); err == nil {
			t.Errorf("bad family %d generated", i)
		}
	}
	if _, err := Generate(Families()[0], -1, 1); err == nil {
		t.Error("negative index generated")
	}
	if _, err := Find("no-such-family"); err == nil {
		t.Error("unknown family found")
	}
	for _, f := range Families() {
		if err := f.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", f.Name, err)
		}
		got, err := Find(f.Name)
		if err != nil || got.Name != f.Name {
			t.Errorf("Find(%s) = %v, %v", f.Name, got.Name, err)
		}
	}
}

// FuzzGeneratorValidity is the property-based half of the generator
// contract: for ANY preset family and (index, seed) pair, the generated
// spec must marshal, re-load through the strict schema loader without
// error, and regenerate byte-identically.
func FuzzGeneratorValidity(f *testing.F) {
	for fi := range Families() {
		f.Add(uint8(fi), 0, uint64(1))
		f.Add(uint8(fi), 17, uint64(0xdeadbeef))
	}
	f.Add(uint8(200), 5, uint64(9)) // family index wraps
	f.Fuzz(func(t *testing.T, familyIdx uint8, index int, seed uint64) {
		fams := Families()
		fam := fams[int(familyIdx)%len(fams)]
		if index < 0 {
			index = -(index + 1)
		}
		s, err := Generate(fam, index, seed)
		if err != nil {
			t.Fatalf("generate(%s, %d, %d): %v", fam.Name, index, seed, err)
		}
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if _, err := scenario.Load(bytes.NewReader(blob)); err != nil {
			t.Fatalf("generated spec rejected by loader: %v\n%s", err, blob)
		}
		s2, err := Generate(fam, index, seed)
		if err != nil {
			t.Fatalf("regenerate: %v", err)
		}
		blob2, _ := json.Marshal(s2)
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("generation not reproducible for (%s, %d, %d)", fam.Name, index, seed)
		}
	})
}
