package store

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// bloom is the per-segment key membership filter carried in a segment
// footer. It answers "might this segment hold the key?" in O(1) so that
// point lookups and compaction touch only the segments a key can live
// in — the per-partition pruning that keeps read work proportional to
// the touched partition rather than the whole store.
//
// Sizing is ~10 bits per key with 6 probes (double hashing over one
// FNV-64a pass), which puts the false-positive rate near 1%: a false
// positive costs one lazy segment-index load, never a wrong answer.
type bloom struct {
	m    uint64 // filter size in bits
	k    int    // probes per key
	bits []uint64
}

const (
	bloomBitsPerKey = 10
	bloomProbes     = 6
	bloomMinBits    = 64
)

// newBloom sizes a filter for n keys.
func newBloom(n int) *bloom {
	m := uint64(n * bloomBitsPerKey)
	if m < bloomMinBits {
		m = bloomMinBits
	}
	m = (m + 63) &^ 63 // whole words
	return &bloom{m: m, k: bloomProbes, bits: make([]uint64, m/64)}
}

// hashes derives the two double-hashing bases for a key.
func bloomHashes(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	// Mix for an independent-enough second base; the constant is the
	// 64-bit golden ratio used by Fibonacci hashing.
	h2 := (h1 ^ (h1 >> 29)) * 0x9E3779B97F4A7C15
	h2 ^= h2 >> 32
	if h2 == 0 {
		h2 = 0x9E3779B97F4A7C15
	}
	return h1, h2
}

// add inserts a key.
func (b *bloom) add(key string) {
	h1, h2 := bloomHashes(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// has reports whether the key might be present (false = definitely not).
func (b *bloom) has(key string) bool {
	if b == nil || b.m == 0 {
		return true // absent filter cannot exclude anything
	}
	h1, h2 := bloomHashes(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// bloomJSON is the wire form stored in segment footers: dimensions plus
// the bit array as base64 of little-endian 64-bit words.
type bloomJSON struct {
	M uint64 `json:"m"`
	K int    `json:"k"`
	B string `json:"b"`
}

func (b *bloom) MarshalJSON() ([]byte, error) {
	raw := make([]byte, 8*len(b.bits))
	for i, w := range b.bits {
		binary.LittleEndian.PutUint64(raw[8*i:], w)
	}
	return json.Marshal(bloomJSON{M: b.m, K: b.k, B: base64.StdEncoding.EncodeToString(raw)})
}

func (b *bloom) UnmarshalJSON(data []byte) error {
	var v bloomJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	raw, err := base64.StdEncoding.DecodeString(v.B)
	if err != nil {
		return fmt.Errorf("bloom bits: %w", err)
	}
	if v.M == 0 || v.M%64 != 0 || uint64(len(raw)) != v.M/8 || v.K <= 0 || v.K > 64 {
		return fmt.Errorf("bloom dimensions inconsistent (m=%d k=%d bytes=%d)", v.M, v.K, len(raw))
	}
	b.m, b.k = v.M, v.K
	b.bits = make([]uint64, v.M/64)
	for i := range b.bits {
		b.bits[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return nil
}
